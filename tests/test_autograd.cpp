#include "autograd/ops.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "tensor/tensor_ops.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

using testing::expect_gradients_match;

Var leaf(Shape s, Rng& rng) {
  return Var(Tensor::randn(std::move(s), rng), /*requires_grad=*/true);
}

TEST(NoGradMode, GuardSkipsTapeConstruction) {
  Rng rng(99);
  Var a = leaf({3, 3}, rng);
  {
    NoGradGuard no_grad;
    EXPECT_FALSE(GradMode::enabled());
    // As in torch.no_grad(): the leaf keeps its flag, only recording stops.
    EXPECT_TRUE(a.requires_grad());
    Var y = ops::gelu(ops::add(ops::mul(a, a), a));
    // No graph nodes recorded anywhere on the chain.
    EXPECT_FALSE(y.requires_grad());
    EXPECT_EQ(y.impl()->node, nullptr);
  }
  // Guard is scoped: recording resumes and values still match.
  EXPECT_TRUE(GradMode::enabled());
  Var z = ops::mul(a, a);
  EXPECT_TRUE(z.requires_grad());
  EXPECT_NE(z.impl()->node, nullptr);
}

TEST(NoGradMode, ModelsConstructUnderGuard) {
  // register_parameter checks requires_grad(); building a model inside a
  // serving scope (NoGradGuard) must still work.
  NoGradGuard no_grad;
  auto model = train::make_model("SAU-FNO", 3, 1, /*seed=*/5);
  EXPECT_GT(model->num_parameters(), 0);
  Rng rng(6);
  Var out = model->forward(Var(Tensor::randn({1, 3, 8, 8}, rng)));
  EXPECT_FALSE(out.requires_grad());
  EXPECT_EQ(out.impl()->node, nullptr);
}

TEST(NoGradMode, GuardNestsAndRestores) {
  EXPECT_TRUE(GradMode::enabled());
  {
    NoGradGuard outer;
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradMode::enabled());
    }
    EXPECT_FALSE(GradMode::enabled());  // inner restored outer's "disabled"
  }
  EXPECT_TRUE(GradMode::enabled());
}

TEST(NoGradMode, ValuesMatchGradModeValues) {
  Rng rng(100);
  Var a = leaf({4, 4}, rng);
  Var with_grad = ops::tanh(ops::matmul(a, a));
  Tensor without;
  {
    NoGradGuard no_grad;
    without = ops::tanh(ops::matmul(a, a)).value();
  }
  EXPECT_TRUE(without.allclose(with_grad.value(), 0.f, 0.f));
}

TEST(AutogradCore, BackwardRequiresScalar) {
  Rng rng(1);
  Var a = leaf({2, 2}, rng);
  Var b = ops::add(a, a);
  EXPECT_THROW(b.backward(), std::runtime_error);
}

TEST(AutogradCore, LeafWithoutGradGetsNone) {
  Rng rng(2);
  Var a(Tensor::randn({3}, rng), /*requires_grad=*/false);
  Var b = leaf({3}, rng);
  Var loss = ops::sum_all(ops::mul(a, b));
  loss.backward();
  EXPECT_TRUE(b.grad().allclose(a.value()));
  // Non-grad leaf: grad() returns zeros and no graph was recorded for it.
  EXPECT_TRUE(a.grad().allclose(Tensor::zeros({3})));
}

TEST(AutogradCore, GradAccumulatesAcrossUses) {
  Rng rng(3);
  Var a = leaf({4}, rng);
  // loss = sum(a) + sum(a) -> da = 2.
  Var loss = ops::add(ops::sum_all(a), ops::sum_all(a));
  loss.backward();
  EXPECT_TRUE(a.grad().allclose(Tensor::full({4}, 2.f)));
}

TEST(AutogradCore, DiamondGraphTopologicalOrder) {
  // a feeds two paths of different depth that rejoin; the deeper path must
  // not fire its backward before the shallow consumer contributed.
  Rng rng(4);
  Var a = leaf({3}, rng);
  Var p1 = ops::mul_scalar(a, 2.f);          // shallow
  Var p2 = ops::exp(ops::mul_scalar(a, 0.5f));  // deep
  Var loss = ops::sum_all(ops::mul(p1, p2));
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var q1 = ops::mul_scalar(ls[0], 2.f);
        Var q2 = ops::exp(ops::mul_scalar(ls[0], 0.5f));
        return ops::sum_all(ops::mul(q1, q2));
      },
      {a});
}

TEST(AutogradCore, DetachCutsGraph) {
  Rng rng(5);
  Var a = leaf({3}, rng);
  Var d = ops::mul_scalar(a, 3.f).detach();
  Var loss = ops::sum_all(ops::mul(d, a));
  loss.backward();
  // Only the direct-use path contributes: da = d (not d + 3a).
  EXPECT_TRUE(a.grad().allclose(d.value()));
}

TEST(AutogradCore, ZeroGradResets) {
  Rng rng(6);
  Var a = leaf({2}, rng);
  ops::sum_all(a).backward();
  EXPECT_TRUE(a.grad().allclose(Tensor::ones({2})));
  a.zero_grad();
  EXPECT_TRUE(a.grad().allclose(Tensor::zeros({2})));
}

// --- Finite-difference checks for each op ---

TEST(GradCheck, AddWithBroadcast) {
  Rng rng(10);
  Var a = leaf({2, 3}, rng);
  Var b = leaf({3}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::sum_all(ops::square(ops::add(ls[0], ls[1])));
      },
      {a, b});
}

TEST(GradCheck, SubMulDiv) {
  Rng rng(11);
  Var a = leaf({2, 2}, rng);
  Var b(add_scalar(Tensor::rand_uniform({2, 2}, rng, 0.5f, 1.5f), 0.f),
        true);  // keep denominators away from zero
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var s = ops::sub(ls[0], ls[1]);
        Var m = ops::mul(ls[0], ls[1]);
        Var d = ops::div(ls[0], ls[1]);
        return ops::sum_all(ops::add(ops::add(s, m), d));
      },
      {a, b});
}

TEST(GradCheck, ScalarOpsAndNeg) {
  Rng rng(12);
  Var a = leaf({5}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::sum_all(
            ops::neg(ops::add_scalar(ops::mul_scalar(ls[0], 1.7f), 0.3f)));
      },
      {a});
}

TEST(GradCheck, Nonlinearities) {
  Rng rng(13);
  Var a = leaf({8}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var x = ls[0];
        Var y = ops::add(ops::gelu(x), ops::tanh(x));
        y = ops::add(y, ops::sigmoid(x));
        return ops::sum_all(y);
      },
      {a});
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(14);
  // Keep |x| > 0.1 so finite differences do not straddle the kink.
  Tensor t = Tensor::rand_uniform({6}, rng, 0.2f, 1.f);
  t.at(1) *= -1.f;
  t.at(4) *= -1.f;
  Var a(t, true);
  expect_gradients_match(
      [](std::vector<Var>& ls) { return ops::sum_all(ops::relu(ls[0])); },
      {a}, /*eps=*/1e-3f);
}

TEST(GradCheck, ExpLogSqrtSquare) {
  Rng rng(15);
  Var a(Tensor::rand_uniform({6}, rng, 0.5f, 2.f), true);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var x = ls[0];
        Var y = ops::add(ops::exp(ops::mul_scalar(x, 0.3f)), ops::log(x));
        y = ops::add(y, ops::add(ops::sqrt(x), ops::square(x)));
        return ops::sum_all(y);
      },
      {a});
}

TEST(GradCheck, MatMul) {
  Rng rng(16);
  Var a = leaf({3, 4}, rng);
  Var b = leaf({4, 2}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::sum_all(ops::square(ops::matmul(ls[0], ls[1])));
      },
      {a, b});
}

TEST(GradCheck, BatchedMatMulWithBroadcastBatch) {
  Rng rng(17);
  Var a = leaf({3, 2, 4}, rng);
  Var b = leaf({1, 4, 2}, rng);  // broadcast over batch
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::sum_all(ops::square(ops::bmm(ls[0], ls[1])));
      },
      {a, b});
}

TEST(GradCheck, ReshapePermute) {
  Rng rng(18);
  Var a = leaf({2, 3, 4}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var p = ops::permute(ls[0], {2, 0, 1});
        Var r = ops::reshape(p, {4, 6});
        return ops::sum_all(ops::square(r));
      },
      {a});
}

TEST(GradCheck, SliceCatPad) {
  Rng rng(19);
  Var a = leaf({2, 4, 3, 3}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var s0 = ops::slice(ls[0], 1, 0, 2);
        Var s1 = ops::slice(ls[0], 1, 2, 2);
        Var c = ops::cat({s1, s0}, 1);   // swapped halves
        Var p = ops::pad2d(c, 1, 0, 0, 1);
        return ops::sum_all(ops::square(p));
      },
      {a});
}

TEST(GradCheck, SumDimKeepAndDrop) {
  Rng rng(20);
  Var a = leaf({3, 4}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var k = ops::sum_dim(ls[0], 1, true);
        Var d = ops::sum_dim(ls[0], 0, false);
        return ops::add(ops::sum_all(ops::square(k)),
                        ops::sum_all(ops::square(d)));
      },
      {a});
}

TEST(GradCheck, SoftmaxLastDim) {
  Rng rng(21);
  Var a = leaf({3, 5}, rng);
  Tensor w = Tensor::randn({3, 5}, rng);
  expect_gradients_match(
      [w](std::vector<Var>& ls) {
        return ops::sum_all(
            ops::mul(ops::softmax_lastdim(ls[0]), Var(w, false)));
      },
      {a}, /*eps=*/1e-2f, /*rtol=*/3e-2f, /*atol=*/3e-3f);
}

TEST(GradCheck, AbsAwayFromKink) {
  Rng rng(26);
  Tensor t = Tensor::randn({3, 4}, rng);
  // Keep every element at least 3*eps from the |.| kink so the central
  // difference never straddles it (same trick as ReluAwayFromKink).
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (std::fabs(t.at(i)) < 5e-2f) t.at(i) = t.at(i) < 0 ? -5e-2f : 5e-2f;
  }
  Var a(t, true);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::sum_all(ops::mul(ops::abs(ls[0]), ls[0]));
      },
      {a});
}

TEST(GradCheck, Permute4d) {
  // The 4-D layouts the attention path shuffles through; the rank-3 check
  // above can't catch a stride bug specific to higher ranks.
  Rng rng(27);
  Var a = leaf({2, 3, 2, 4}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var p = ops::permute(ls[0], {0, 2, 1, 3});
        Var q = ops::permute(p, {3, 0, 2, 1});
        return ops::sum_all(ops::square(q));
      },
      {a});
}

TEST(GradCheck, AttentionComposition) {
  // bmm -> softmax -> bmm with a permuted key, the exact op chain inside
  // core::Attention. Checks the INTERACTION of the three backward rules,
  // which the per-op checks above cannot.
  Rng rng(28);
  Var q = leaf({2, 3, 4}, rng);
  Var k = leaf({2, 3, 4}, rng);
  Var v = leaf({2, 3, 4}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var scores = ops::bmm(ls[0], ops::permute(ls[1], {0, 2, 1}));
        Var attn = ops::softmax_lastdim(ops::mul_scalar(scores, 0.5f));
        return ops::sum_all(ops::square(ops::bmm(attn, ls[2])));
      },
      {q, k, v}, /*eps=*/1e-2f, /*rtol=*/3e-2f, /*atol=*/3e-3f);
}

TEST(GradCheck, ResizeBilinear) {
  Rng rng(22);
  Var a = leaf({1, 2, 3, 3}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::sum_all(ops::square(ops::resize_bilinear(ls[0], 5, 6)));
      },
      {a});
}

TEST(GradCheck, MseAndL1Loss) {
  Rng rng(23);
  Var a = leaf({2, 3}, rng);
  Var t(Tensor::randn({2, 3}, rng), false);
  expect_gradients_match(
      [t](std::vector<Var>& ls) { return ops::mse_loss(ls[0], t); }, {a});
}

TEST(GradCheck, RelativeL2Loss) {
  Rng rng(26);
  Var a = leaf({2, 4}, rng);
  Var t(Tensor::randn({2, 4}, rng), false);
  expect_gradients_match(
      [t](std::vector<Var>& ls) {
        return ops::relative_l2_loss(ls[0], t);
      },
      {a});
}

TEST(Losses, RelativeL2KnownValue) {
  // pred = 2 * target  ->  ||pred - target|| / ||target|| = 1.
  Var t(Tensor::full({3}, 2.f), false);
  Var p(Tensor::full({3}, 4.f), false);
  EXPECT_NEAR(ops::relative_l2_loss(p, t).value().item(), 1.f, 1e-5f);
  // Perfect prediction -> 0.
  EXPECT_NEAR(ops::relative_l2_loss(t, t).value().item(), 0.f, 1e-6f);
}

TEST(GradCheck, MeanAll) {
  Rng rng(24);
  Var a = leaf({4, 4}, rng);
  expect_gradients_match(
      [](std::vector<Var>& ls) { return ops::mean_all(ops::square(ls[0])); },
      {a});
}

TEST(OperatorSugar, MatchesNamedOps) {
  Rng rng(25);
  Var a = leaf({3}, rng);
  Var b = leaf({3}, rng);
  EXPECT_TRUE((a + b).value().allclose(ops::add(a, b).value()));
  EXPECT_TRUE((a - b).value().allclose(ops::sub(a, b).value()));
  EXPECT_TRUE((a * b).value().allclose(ops::mul(a, b).value()));
  EXPECT_TRUE((2.f * a).value().allclose(ops::mul_scalar(a, 2.f).value()));
}

// Parameterized gradcheck across tensor ranks for the broadcast reducers.
class BroadcastGradP
    : public ::testing::TestWithParam<std::pair<Shape, Shape>> {};

TEST_P(BroadcastGradP, MulGradcheck) {
  auto [sa, sb] = GetParam();
  Rng rng(101);
  Var a = Var(Tensor::randn(sa, rng), true);
  Var b = Var(Tensor::randn(sb, rng), true);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::sum_all(ops::square(ops::mul(ls[0], ls[1])));
      },
      {a, b});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastGradP,
    ::testing::Values(std::pair<Shape, Shape>{{2, 3}, {3}},
                      std::pair<Shape, Shape>{{2, 1}, {1, 3}},
                      std::pair<Shape, Shape>{{1, 2, 2}, {3, 1, 1}},
                      std::pair<Shape, Shape>{{4}, {4}}));

}  // namespace
}  // namespace saufno
