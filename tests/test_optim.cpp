#include "optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/lr_schedule.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

/// Loss = ||w - target||^2 (a strongly convex bowl).
Var bowl_loss(Var& w, const Tensor& target) {
  return ops::sum_all(ops::square(ops::sub(w, Var(target, false))));
}

TEST(Sgd, ConvergesOnQuadratic) {
  Rng rng(1);
  Var w(Tensor::randn({8}, rng), true);
  Tensor target = Tensor::randn({8}, rng);
  optim::SGD opt({w}, /*lr=*/0.05);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    bowl_loss(w, target).backward();
    opt.step();
  }
  EXPECT_TRUE(w.value().allclose(target, 1e-3f, 1e-3f));
}

TEST(Sgd, MomentumAcceleratesIllConditioned) {
  // Anisotropic quadratic: momentum should reach the optimum in fewer
  // steps than plain SGD at the same stable lr.
  Rng rng(2);
  Tensor scales({4}, {10.f, 1.f, 0.5f, 0.1f});
  auto loss_of = [&](Var& w) {
    return ops::sum_all(
        ops::square(ops::mul(w, Var(scales, false))));
  };
  auto run = [&](double momentum) {
    Var w(Tensor::ones({4}), true);
    optim::SGD opt({w}, 0.004, momentum);
    for (int i = 0; i < 300; ++i) {
      opt.zero_grad();
      loss_of(w).backward();
      opt.step();
    }
    return loss_of(w).value().item();
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Adam, ConvergesOnQuadratic) {
  Rng rng(3);
  Var w(Tensor::randn({8}, rng), true);
  Tensor target = Tensor::randn({8}, rng);
  optim::Adam opt({w}, /*lr=*/0.05);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    bowl_loss(w, target).backward();
    opt.step();
  }
  EXPECT_TRUE(w.value().allclose(target, 5e-3f, 5e-3f));
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the very first Adam step has magnitude ~lr
  // regardless of gradient scale.
  Var w(Tensor::full({1}, 5.f), true);
  optim::Adam opt({w}, 0.1);
  opt.zero_grad();
  ops::sum_all(ops::mul_scalar(w, 1000.f)).backward();  // huge gradient
  opt.step();
  EXPECT_NEAR(w.value().at(0), 5.f - 0.1f, 1e-4f);
}

TEST(Adam, WeightDecayShrinksWeightsWithZeroGrad) {
  Var w(Tensor::full({4}, 2.f), true);
  optim::Adam opt({w}, 0.01, 0.9, 0.999, 1e-8, /*weight_decay=*/0.1);
  // Gradient of a constant loss is zero; decay alone must shrink w.
  for (int i = 0; i < 50; ++i) {
    opt.zero_grad();
    // Build a zero gradient by backwarding a loss independent of w... the
    // graph requires participation, so multiply by zero instead.
    ops::sum_all(ops::mul_scalar(w, 0.f)).backward();
    opt.step();
  }
  EXPECT_LT(std::fabs(w.value().at(0)), 2.f);
}

TEST(StepLr, DecaysAtSchedule) {
  Var w(Tensor::zeros({1}), true);
  optim::Adam opt({w}, 1e-3);
  optim::StepLR sched(opt, /*step=*/3, /*gamma=*/0.1);
  EXPECT_DOUBLE_EQ(opt.lr(), 1e-3);
  sched.step();  // epoch 1
  sched.step();  // epoch 2
  EXPECT_DOUBLE_EQ(opt.lr(), 1e-3);
  sched.step();  // epoch 3 -> decay
  EXPECT_NEAR(opt.lr(), 1e-4, 1e-12);
  sched.step();
  sched.step();
  sched.step();  // epoch 6 -> decay again
  EXPECT_NEAR(opt.lr(), 1e-5, 1e-13);
}

TEST(Optimizer, ZeroGradClearsParameterGrads) {
  Var w(Tensor::ones({3}), true);
  optim::SGD opt({w}, 0.1);
  ops::sum_all(w).backward();
  EXPECT_GT(sum_all(abs(w.grad())), 0.f);
  opt.zero_grad();
  EXPECT_EQ(sum_all(abs(w.grad())), 0.f);
}

TEST(Optimizer, MultiParameterGroups) {
  Rng rng(4);
  Var w1(Tensor::randn({3}, rng), true);
  Var w2(Tensor::randn({2}, rng), true);
  Tensor t1 = Tensor::zeros({3});
  Tensor t2 = Tensor::ones({2});
  optim::Adam opt({w1, w2}, 0.05);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    Var loss = ops::add(bowl_loss(w1, t1), bowl_loss(w2, t2));
    loss.backward();
    opt.step();
  }
  EXPECT_TRUE(w1.value().allclose(t1, 1e-2f, 1e-2f));
  EXPECT_TRUE(w2.value().allclose(t2, 1e-2f, 1e-2f));
}

}  // namespace
}  // namespace saufno
