#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "common/ascii.h"
#include "common/csv.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"

namespace saufno {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(8);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NextBelowIsUnbiasedOverSmallRange) {
  Rng rng(9);
  int counts[5] = {0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(10);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_NE(v[0] * 49 + v[1], 0 * 49 + 1);  // astronomically unlikely identity
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(11);
  Rng child = parent.split();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

TEST(AsciiHeatmap, DimensionsAndRamp) {
  std::vector<float> f = {0.f, 0.5f, 1.f, 0.f};
  const std::string s = ascii_heatmap(f, 2, 2, 0.f, 1.f);
  // 2 rows of 2 chars + newlines.
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s[0], ' ');   // cold
  EXPECT_EQ(s[1], '+');   // middle of the ramp
  EXPECT_EQ(s[3], '@');   // hot
}

TEST(AsciiHeatmap, AutoscaleHandlesConstantField) {
  std::vector<float> f(9, 3.f);
  const std::string s = ascii_heatmap(f, 3, 3);
  EXPECT_EQ(s.size(), 12u);  // no crash, well-formed grid
}

TEST(TablePrinter, AlignsColumnsAndRule) {
  TablePrinter t({"A", "B"}, {4, 6});
  t.add_row({"1", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("A   B"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("1   22"), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Csv, QuotesSpecialCells) {
  const std::string path = ::testing::TempDir() + "/saufno_csv_test.csv";
  {
    CsvWriter w(path);
    w.row({"plain", "with,comma", "with\"quote"});
    w.row({"1", "2", "3"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "plain,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(line2, "1,2,3");
  std::filesystem::remove(path);
}

TEST(Csv, FieldDump) {
  const std::string path = ::testing::TempDir() + "/saufno_field_test.csv";
  write_field_csv(path, {1.f, 2.f, 3.f, 4.f}, 2, 2);
  std::ifstream in(path);
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "1,2");
  EXPECT_EQ(l2, "3,4");
  std::filesystem::remove(path);
}

TEST(Env, ScaleParsing) {
  // Default (unset or junk) is smoke.
  unsetenv("SAUFNO_SCALE");
  EXPECT_EQ(bench_scale(), Scale::kSmoke);
  setenv("SAUFNO_SCALE", "paper", 1);
  EXPECT_EQ(bench_scale(), Scale::kPaper);
  EXPECT_EQ(scaled(1, 2), 2);
  setenv("SAUFNO_SCALE", "garbage", 1);
  EXPECT_EQ(bench_scale(), Scale::kSmoke);
  EXPECT_EQ(scaled(1, 2), 1);
  unsetenv("SAUFNO_SCALE");
}

TEST(Env, IntOverride) {
  unsetenv("SAUFNO_TEST_INT");
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  setenv("SAUFNO_TEST_INT", "12", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 12);
  setenv("SAUFNO_TEST_INT", "-7", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), -7);
  setenv("SAUFNO_TEST_INT", "oops", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  unsetenv("SAUFNO_TEST_INT");
}

TEST(Env, IntRejectsTrailingGarbage) {
  // "8x" or "1e3" is a user mistake, not the number 8 / 1 — fall back.
  setenv("SAUFNO_TEST_INT", "8x", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  setenv("SAUFNO_TEST_INT", "1e3", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  setenv("SAUFNO_TEST_INT", "3.5", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  setenv("SAUFNO_TEST_INT", "", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  unsetenv("SAUFNO_TEST_INT");
}

TEST(Env, IntRejectsOverflow) {
  // Values past int range used to be blindly truncated by the long->int
  // cast (e.g. 4294967296 -> 0); they must fall back instead.
  setenv("SAUFNO_TEST_INT", "4294967296", 1);  // 2^32: would truncate to 0
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  setenv("SAUFNO_TEST_INT", "-4294967296", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  setenv("SAUFNO_TEST_INT", "99999999999999999999", 1);  // > LONG_MAX: ERANGE
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 5);
  setenv("SAUFNO_TEST_INT", "2147483647", 1);  // INT_MAX itself is fine
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), 2147483647);
  setenv("SAUFNO_TEST_INT", "-2147483648", 1);
  EXPECT_EQ(env_int("SAUFNO_TEST_INT", 5), -2147483648);
  unsetenv("SAUFNO_TEST_INT");
}

TEST(Env, IntInRange) {
  unsetenv("SAUFNO_TEST_INT");
  EXPECT_EQ(env_int_in_range("SAUFNO_TEST_INT", 4, 1, 8), 4);
  // Fallback itself is clamped into range.
  EXPECT_EQ(env_int_in_range("SAUFNO_TEST_INT", 99, 1, 8), 8);
  setenv("SAUFNO_TEST_INT", "6", 1);
  EXPECT_EQ(env_int_in_range("SAUFNO_TEST_INT", 4, 1, 8), 6);
  setenv("SAUFNO_TEST_INT", "0", 1);
  EXPECT_EQ(env_int_in_range("SAUFNO_TEST_INT", 4, 1, 8), 4);
  setenv("SAUFNO_TEST_INT", "9", 1);
  EXPECT_EQ(env_int_in_range("SAUFNO_TEST_INT", 4, 1, 8), 4);
  setenv("SAUFNO_TEST_INT", "6x", 1);
  EXPECT_EQ(env_int_in_range("SAUFNO_TEST_INT", 4, 1, 8), 4);
  setenv("SAUFNO_TEST_INT", "99999999999999999999", 1);
  EXPECT_EQ(env_int_in_range("SAUFNO_TEST_INT", 4, 1, 8), 4);
  unsetenv("SAUFNO_TEST_INT");
}

TEST(Env, ChoiceByNameCaseInsensitive) {
  static const char* const kNames[] = {"debug", "info", "warn", "error"};
  unsetenv("SAUFNO_TEST_CHOICE");
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 1, kNames, 4), 1);
  setenv("SAUFNO_TEST_CHOICE", "warn", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 1, kNames, 4), 2);
  setenv("SAUFNO_TEST_CHOICE", "ERROR", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 1, kNames, 4), 3);
  setenv("SAUFNO_TEST_CHOICE", "Debug", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 1, kNames, 4), 0);
  unsetenv("SAUFNO_TEST_CHOICE");
}

TEST(Env, ChoiceByNumericIndex) {
  static const char* const kNames[] = {"debug", "info", "warn", "error"};
  setenv("SAUFNO_TEST_CHOICE", "0", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 1, kNames, 4), 0);
  setenv("SAUFNO_TEST_CHOICE", "3", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 1, kNames, 4), 3);
  // Out-of-range index is an unknown value, not a clamp.
  setenv("SAUFNO_TEST_CHOICE", "4", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 1, kNames, 4), 1);
  setenv("SAUFNO_TEST_CHOICE", "-1", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 1, kNames, 4), 1);
  unsetenv("SAUFNO_TEST_CHOICE");
}

TEST(Env, ChoiceUnknownFallsBack) {
  static const char* const kNames[] = {"debug", "info", "warn", "error"};
  setenv("SAUFNO_TEST_CHOICE", "verbose", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 2, kNames, 4), 2);
  setenv("SAUFNO_TEST_CHOICE", "", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 2, kNames, 4), 2);
  // A fallback outside [0, n) is clamped so callers can never index
  // out of bounds with the result.
  setenv("SAUFNO_TEST_CHOICE", "junk", 1);
  EXPECT_EQ(env_choice("SAUFNO_TEST_CHOICE", 99, kNames, 4), 3);
  unsetenv("SAUFNO_TEST_CHOICE");
}

TEST(Logging, EnvLevelKnob) {
  // set_log_level marks the env knob consumed, so this test controls the
  // level deterministically regardless of SAUFNO_LOG_LEVEL in the
  // environment; here we just confirm setter/getter agreement.
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

TEST(Logging, CheckMacroThrowsWithMessage) {
  try {
    SAUFNO_CHECK(false, "the message");
    FAIL() << "did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
  }
}

TEST(Logging, LevelFilters) {
  // Just exercise the paths; output goes to stderr.
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  SAUFNO_INFO << "should be filtered";
  SAUFNO_ERROR << "should appear";
  set_log_level(before);
}

// ---------------------------------------------------------------------------
// Fault injection spec parsing and deterministic firing (common/fault.h).
// The config is process-global, so each test clears it on the way out.
// ---------------------------------------------------------------------------

TEST(Fault, ParsesMultiRuleSpec) {
  std::string err;
  const auto rules = fault::parse_spec(
      "alloc:p=0.01,forward:throw:p=0.001,delay:ms=50:p=0.05", &err);
  ASSERT_EQ(rules.size(), 3u) << err;
  EXPECT_EQ(rules[0].site, "alloc");
  EXPECT_EQ(rules[0].action, fault::Rule::kThrow);
  EXPECT_DOUBLE_EQ(rules[0].p, 0.01);
  EXPECT_EQ(rules[1].site, "forward");
  EXPECT_EQ(rules[1].action, fault::Rule::kThrow);
  EXPECT_DOUBLE_EQ(rules[1].p, 0.001);
  // Action-first rule: applies to every site via the "*" wildcard.
  EXPECT_EQ(rules[2].site, "*");
  EXPECT_EQ(rules[2].action, fault::Rule::kDelay);
  EXPECT_EQ(rules[2].delay_ms, 50);
  EXPECT_DOUBLE_EQ(rules[2].p, 0.05);
}

TEST(Fault, ParsesFirstNAndBareSite) {
  std::string err;
  const auto rules = fault::parse_spec("forward:throw:n=3,gemm", &err);
  ASSERT_EQ(rules.size(), 2u) << err;
  EXPECT_EQ(rules[0].first_n, 3);
  EXPECT_EQ(rules[1].site, "gemm");
  EXPECT_EQ(rules[1].action, fault::Rule::kThrow);
  EXPECT_DOUBLE_EQ(rules[1].p, 1.0);
}

TEST(Fault, RejectsMalformedSpecs) {
  for (const char* bad : {"forward:p=2",        // probability out of range
                          "forward:p=abc",      // not a number
                          "forward:bogus=1",    // unknown parameter
                          "forward:throw:ms=x", // garbage delay
                          ",,",                 // empty tokens
                          "forward:n=-2"}) {    // negative first_n
    std::string err;
    const auto rules = fault::parse_spec(bad, &err);
    EXPECT_TRUE(rules.empty()) << "accepted: " << bad;
    EXPECT_FALSE(err.empty()) << "no diagnostic for: " << bad;
  }
}

TEST(Fault, FirstNFiresExactlyNTimesThenGoesQuiet) {
  ASSERT_TRUE(fault::configure("unit_test_site:throw:n=2", 7));
  int thrown = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      fault::point("unit_test_site");
    } catch (const fault::FaultInjectedError&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 2);
  EXPECT_EQ(fault::injected_count("unit_test_site"), 2);
  fault::clear();
  EXPECT_NO_THROW(fault::point("unit_test_site"));
}

TEST(Fault, ProbabilisticFiringIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    EXPECT_TRUE(fault::configure("unit_test_site:throw:p=0.3", seed));
    std::vector<int> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        fault::point("unit_test_site");
      } catch (const fault::FaultInjectedError&) {
        fired.push_back(i);
      }
    }
    fault::clear();
    return fired;
  };
  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b) << "same seed produced different firing patterns";
  EXPECT_NE(a, c) << "different seeds produced identical firing patterns";
  EXPECT_GT(a.size(), 8u);   // p=0.3 over 64 evals: ~19 expected
  EXPECT_LT(a.size(), 32u);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Busy-wait a short, measurable interval.
  volatile double x = 0;
  while (t.seconds() < 0.01) x += 1;
  EXPECT_GE(t.millis(), 10.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.01);
}

}  // namespace
}  // namespace saufno
