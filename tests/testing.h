#pragma once

// Shared test utilities for the whole suite:
//   - expect_allclose: rel/abs tensor & complex-vector comparison with
//     worst-element reporting (which element, got/want, abs/rel error)
//   - expect_gradients_match: finite-difference gradient verification
//     (promoted from the former gradcheck.h)
//   - test_rng: deterministic per-test RNG seeding
//   - TmpFile: RAII temp-file path that cleans up after the test
//   - write_tensor_file / read_tensor_file: tiny binary tensor IO used by
//     the golden-regression fixtures under tests/data/

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace saufno {
namespace testing {

/// Elementwise |got - want| <= atol + rtol * |want| over two tensors, with
/// a report naming the worst element when it fails — EXPECT_TRUE(allclose)
/// tells you *that* two fields differ, this tells you *where* and by how
/// much, which is what you need when a spectral refactor drifts one mode.
inline void expect_allclose(const Tensor& got, const Tensor& want,
                            float rtol = 1e-5f, float atol = 1e-6f,
                            const std::string& what = "tensor") {
  ASSERT_EQ(got.shape(), want.shape())
      << what << ": shape " << shape_str(got.shape()) << " vs "
      << shape_str(want.shape());
  int64_t violations = 0, worst = -1;
  double worst_excess = 0.0;
  for (int64_t i = 0; i < got.numel(); ++i) {
    const double diff = std::fabs(static_cast<double>(got.at(i)) - want.at(i));
    const double tol = atol + rtol * std::fabs(want.at(i));
    if (diff > tol) {
      ++violations;
      if (diff - tol > worst_excess) {
        worst_excess = diff - tol;
        worst = i;
      }
    }
  }
  EXPECT_EQ(violations, 0)
      << what << ": " << violations << "/" << got.numel()
      << " elements out of tolerance (rtol=" << rtol << ", atol=" << atol
      << "); worst at flat index " << worst << ": got " << got.at(worst)
      << ", want " << want.at(worst) << ", |diff| "
      << std::fabs(static_cast<double>(got.at(worst)) - want.at(worst));
}

/// Same contract for complex vectors (FFT tests): the tolerance applies to
/// real and imaginary parts independently.
inline void expect_allclose(const std::vector<std::complex<float>>& got,
                            const std::vector<std::complex<float>>& want,
                            float rtol = 0.f, float atol = 1e-5f,
                            const std::string& what = "spectrum") {
  ASSERT_EQ(got.size(), want.size()) << what;
  std::size_t violations = 0, worst = 0;
  double worst_excess = 0.0;
  bool worst_imag = false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double parts[2][2] = {{got[i].real(), want[i].real()},
                                {got[i].imag(), want[i].imag()}};
    for (int p = 0; p < 2; ++p) {
      const double diff = std::fabs(parts[p][0] - parts[p][1]);
      const double tol = atol + rtol * std::fabs(parts[p][1]);
      if (diff > tol) {
        ++violations;
        if (diff - tol > worst_excess) {
          worst_excess = diff - tol;
          worst = i;
          worst_imag = p == 1;
        }
      }
    }
  }
  EXPECT_EQ(violations, 0u)
      << what << ": " << violations << " parts out of tolerance (rtol="
      << rtol << ", atol=" << atol << "); worst at index " << worst << " ("
      << (worst_imag ? "imag" : "real") << "): got " << got[worst]
      << ", want " << want[worst];
}

/// Deterministic per-test RNG: seeds from the running test's full name, so
/// two tests that both write `test_rng()` still draw independent streams,
/// and a re-run of one test reproduces its data exactly.
inline Rng test_rng(std::uint64_t salt = 0) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    for (const std::string& part :
         {std::string(info->test_suite_name()), std::string(info->name())}) {
      for (const char c : part) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ull;
      }
    }
  }
  return Rng(h ^ salt);
}

/// RAII guard for a file under the gtest temp dir: builds the path, removes
/// the file on scope exit, so a failing test cannot leak fixtures into the
/// next run.
class TmpFile {
 public:
  explicit TmpFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TmpFile() { std::remove(path_.c_str()); }
  TmpFile(const TmpFile&) = delete;
  TmpFile& operator=(const TmpFile&) = delete;
  const std::string& path() const { return path_; }
  operator const std::string&() const { return path_; }

 private:
  std::string path_;
};

/// Tiny binary tensor file ("SFT1": magic, rank, dims, float32 payload) —
/// the storage format of the committed golden fixtures in tests/data/.
inline void write_tensor_file(const Tensor& t, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  const char magic[4] = {'S', 'F', 'T', '1'};
  out.write(magic, 4);
  const std::int64_t rank = t.dim();
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (const int64_t d : t.shape()) {
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float) * t.numel()));
  ASSERT_TRUE(out.good()) << "short write to " << path;
}

inline Tensor read_tensor_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path
                         << " (regenerate golden fixtures with "
                            "SAUFNO_REGEN_GOLDEN=1, see README)";
  if (!in.good()) return Tensor();
  char magic[4] = {};
  in.read(magic, 4);
  EXPECT_TRUE(in.good() && magic[0] == 'S' && magic[1] == 'F' &&
              magic[2] == 'T' && magic[3] == '1')
      << path << " is not a tensor fixture";
  std::int64_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  EXPECT_TRUE(in.good() && rank >= 0 && rank <= 8) << path;
  Shape shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof(d));
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(sizeof(float) * t.numel()));
  EXPECT_TRUE(in.good()) << path << " is truncated";
  return t;
}

/// Finite-difference gradient verification.
///
/// `fn` maps the leaf variables to a SCALAR Var; every leaf in `leaves`
/// must require grad. For each leaf entry we compare the autograd gradient
/// against a central difference of the loss. This is the ground truth for
/// every backward rule in the library — including the hand-derived FFT
/// adjoints of the spectral convolution.
inline void expect_gradients_match(
    const std::function<Var(std::vector<Var>&)>& fn, std::vector<Var> leaves,
    float eps = 1e-2f, float rtol = 2e-2f, float atol = 2e-3f) {
  for (auto& leaf : leaves) {
    ASSERT_TRUE(leaf.requires_grad()) << "leaf must require grad";
    leaf.zero_grad();
  }
  Var loss = fn(leaves);
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();

  for (std::size_t li = 0; li < leaves.size(); ++li) {
    Tensor analytic = leaves[li].grad();
    Tensor& value = leaves[li].value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float orig = value.at(i);
      value.at(i) = orig + eps;
      const float up = fn(leaves).value().item();
      value.at(i) = orig - eps;
      const float down = fn(leaves).value().item();
      value.at(i) = orig;
      const float numeric = (up - down) / (2.f * eps);
      const float got = analytic.at(i);
      const float tol = atol + rtol * std::fabs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "leaf " << li << " element " << i;
    }
  }
}

}  // namespace testing
}  // namespace saufno
