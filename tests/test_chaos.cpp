// Chaos soak for the overload-safe serving stack: thousands of mixed
// requests and concurrent rollout sessions driven THROUGH injected faults
// (common/fault.h). The acceptance bar is liveness and isolation, not
// throughput: every future must resolve (value or typed error), no request
// may hang, no fault may take down the engine or a batch-mate, and the
// whole run must be ASan/TSan clean. Labeled `slow` in CMake; scale knobs
// respect SAUFNO_SCALE so the smoke lane stays fast.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/fault.h"
#include "common/rng.h"
#include "data/normalizer.h"
#include "data/sequence.h"
#include "runtime/inference_engine.h"
#include "runtime/rollout_engine.h"
#include "tensor/tensor.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

using runtime::InferenceEngine;
using runtime::RolloutEngine;
using runtime::RolloutSession;
using runtime::SubmitOptions;

struct FaultGuard {
  FaultGuard(const char* spec, std::uint64_t seed) {
    EXPECT_TRUE(fault::configure(spec, seed));
  }
  ~FaultGuard() { fault::clear(); }
};

bool all_finite(const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

// Every client outcome lands in exactly one bucket; the soak asserts the
// buckets sum to the number of submits — i.e. no future was lost.
struct Tally {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> faulted{0};    // RequestError / injected faults
  std::atomic<int64_t> shed{0};       // OverloadedError at submit
  std::atomic<int64_t> expired{0};    // DeadlineExceededError
  std::atomic<int64_t> cancelled{0};  // CancelledError
  std::atomic<int64_t> shutdown{0};   // ShutdownError (drain/stop races)
  int64_t total() const {
    return ok + faulted + shed + expired + cancelled + shutdown;
  }
};

TEST(Chaos, MixedRequestSoakEveryFutureResolves) {
  // >=5k requests (smoke scale) from 8 threads, three resolutions, a
  // sprinkle of deadlines and cancellations, under throw + delay faults in
  // the forward and gemm paths. The engine must classify every single
  // outcome — a lost future deadlocks this test and trips the ctest
  // TIMEOUT.
  const int kThreads = 8;
  const int kPerThread = scaled(640, 2560);  // 5120 total at smoke
  FaultGuard fg("forward:throw:p=0.02,gemm:throw:p=0.002,delay:ms=1:p=0.002",
                20250807);

  InferenceEngine::Config cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 200;
  cfg.queue_capacity = 256;
  InferenceEngine engine(train::make_model("SAU-FNO", 3, 1, 42, 0), cfg);

  Tally tally;
  std::atomic<int64_t> submitted{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 7919 + 13);
      const int64_t res_choices[3] = {8, 10, 12};
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t res = res_choices[rng.next_below(3)];
        Tensor input = Tensor::randn({3, res, res}, rng);
        SubmitOptions opts;
        const std::uint64_t dice = rng.next_below(100);
        if (dice < 5) {
          // Tight deadline: may or may not make it — both are legal, but
          // it must never hang and never deliver late.
          opts.deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(1 + rng.next_below(5));
        }
        runtime::CancelToken token;
        if (dice >= 5 && dice < 10) {
          token = runtime::CancelToken::make();
          opts.cancel = token;
        }
        std::future<Tensor> fut;
        try {
          fut = engine.submit(std::move(input), opts);
          submitted.fetch_add(1);
        } catch (const runtime::OverloadedError&) {
          tally.shed.fetch_add(1);
          submitted.fetch_add(1);
          continue;
        } catch (const runtime::RequestError&) {
          tally.faulted.fetch_add(1);
          submitted.fetch_add(1);
          continue;
        }
        if (token.valid() && rng.next_below(2) == 0) token.request_cancel();
        try {
          const Tensor out = fut.get();
          EXPECT_TRUE(all_finite(out));
          tally.ok.fetch_add(1);
        } catch (const runtime::DeadlineExceededError&) {
          tally.expired.fetch_add(1);
        } catch (const runtime::CancelledError&) {
          tally.cancelled.fetch_add(1);
        } catch (const runtime::ShutdownError&) {
          tally.shutdown.fetch_add(1);
        } catch (const runtime::RequestError&) {
          tally.faulted.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(submitted.load(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(tally.total(), submitted.load())
      << "a future was lost or double-counted";
  // The faults were actually armed (the soak is vacuous otherwise) and the
  // engine survived them: the overwhelming majority of requests succeed.
  EXPECT_GT(fault::injected_count("forward"), 0);
  EXPECT_GT(tally.ok.load(), submitted.load() / 2);
  EXPECT_EQ(tally.shutdown.load(), 0) << "engine shut itself down mid-soak";

  // Clean aftermath: faults off, a fresh request serves normally.
  fault::clear();
  Rng rng(99);
  EXPECT_NO_THROW(engine.submit(Tensor::randn({3, 10, 10}, rng)).get());
  const auto s = engine.stats();
  EXPECT_EQ(s.requests + s.failed + s.expired + s.cancelled,
            submitted.load() - tally.shed.load() + 1);
  EXPECT_EQ(s.rejected, tally.shed.load());
}

TEST(Chaos, ConcurrentRolloutSessionsSurviveInjectedFaults) {
  // >=8 sessions x 20 steps under forward faults. A failed step throws out
  // of step(); the session stays re-submittable, so clients retry the same
  // power map until it lands. Every trajectory must complete with finite
  // physical state. The n=6 rule makes the first forwards throw
  // DETERMINISTICALLY (lockstep sessions coalesce into few batches, so a
  // purely probabilistic rule could legally never fire); the p-rule keeps
  // background pressure on for the rest of the run.
  const int kSessions = 8;
  const int kSteps = scaled(20, 60);
  const int64_t res = 10;
  FaultGuard fg("forward:throw:n=6,forward:throw:p=0.05", 424242);

  data::RolloutSpec spec;
  spec.dt = 0.01;
  spec.state_channels = 1;
  spec.power_channels = 1;
  auto model = train::make_model("SAU-FNO-micro", spec.in_channels(),
                                 spec.out_channels(), /*seed=*/7);
  const auto norm =
      data::Normalizer::from_stats(318.0, 3e4, 9.0, /*power_channels=*/1);
  RolloutEngine engine(model, norm, spec);

  std::atomic<int64_t> retries{0};
  std::vector<std::thread> clients;
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      auto session =
          engine.open_session(Tensor::full({1, res, res}, 318.f));
      Rng rng(static_cast<std::uint64_t>(s) * 104729 + 17);
      for (int k = 0; k < kSteps; ++k) {
        const Tensor power =
            Tensor::rand_uniform({1, res, res}, rng, 0.f, 9e4f);
        // A step that faults is retryable: await_step consumed the broken
        // future, so the session accepts the same submission again.
        for (int attempt = 0;; ++attempt) {
          ASSERT_LT(attempt, 200) << "session " << s << " step " << k
                                  << " never succeeded";
          try {
            const Tensor state = session->step(power.clone());
            ASSERT_EQ(state.shape(), (Shape{1, res, res}));
            EXPECT_TRUE(all_finite(state))
                << "session " << s << " produced non-finite state";
            break;
          } catch (const runtime::RequestError&) {
            retries.fetch_add(1);
          }
        }
      }
      EXPECT_EQ(session->steps_done(), kSteps);
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_GT(fault::injected_count("forward"), 0);
  EXPECT_GT(retries.load(), 0) << "the 5% fault never fired";
}

}  // namespace
}  // namespace saufno
