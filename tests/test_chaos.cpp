// Chaos soak for the overload-safe serving stack: thousands of mixed
// requests and concurrent rollout sessions driven THROUGH injected faults
// (common/fault.h). The acceptance bar is liveness and isolation, not
// throughput: every future must resolve (value or typed error), no request
// may hang, no fault may take down the engine or a batch-mate, and the
// whole run must be ASan/TSan clean. Labeled `slow` in CMake; scale knobs
// respect SAUFNO_SCALE so the smoke lane stays fast.

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/fault.h"
#include "common/rng.h"
#include "data/normalizer.h"
#include "data/sequence.h"
#include "runtime/inference_engine.h"
#include "runtime/rollout_engine.h"
#include "serve/client.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "tensor/tensor.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

using runtime::InferenceEngine;
using runtime::RolloutEngine;
using runtime::RolloutSession;
using runtime::SubmitOptions;

struct FaultGuard {
  FaultGuard(const char* spec, std::uint64_t seed) {
    EXPECT_TRUE(fault::configure(spec, seed));
  }
  ~FaultGuard() { fault::clear(); }
};

bool all_finite(const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

// Every client outcome lands in exactly one bucket; the soak asserts the
// buckets sum to the number of submits — i.e. no future was lost.
struct Tally {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> faulted{0};    // RequestError / injected faults
  std::atomic<int64_t> shed{0};       // OverloadedError at submit
  std::atomic<int64_t> expired{0};    // DeadlineExceededError
  std::atomic<int64_t> cancelled{0};  // CancelledError
  std::atomic<int64_t> shutdown{0};   // ShutdownError (drain/stop races)
  int64_t total() const {
    return ok + faulted + shed + expired + cancelled + shutdown;
  }
};

TEST(Chaos, MixedRequestSoakEveryFutureResolves) {
  // >=5k requests (smoke scale) from 8 threads, three resolutions, a
  // sprinkle of deadlines and cancellations, under throw + delay faults in
  // the forward and gemm paths. The engine must classify every single
  // outcome — a lost future deadlocks this test and trips the ctest
  // TIMEOUT.
  const int kThreads = 8;
  const int kPerThread = scaled(640, 2560);  // 5120 total at smoke
  FaultGuard fg("forward:throw:p=0.02,gemm:throw:p=0.002,delay:ms=1:p=0.002",
                20250807);

  InferenceEngine::Config cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 200;
  cfg.queue_capacity = 256;
  InferenceEngine engine(train::make_model("SAU-FNO", 3, 1, 42, 0), cfg);

  Tally tally;
  std::atomic<int64_t> submitted{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 7919 + 13);
      const int64_t res_choices[3] = {8, 10, 12};
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t res = res_choices[rng.next_below(3)];
        Tensor input = Tensor::randn({3, res, res}, rng);
        SubmitOptions opts;
        const std::uint64_t dice = rng.next_below(100);
        if (dice < 5) {
          // Tight deadline: may or may not make it — both are legal, but
          // it must never hang and never deliver late.
          opts.deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(1 + rng.next_below(5));
        }
        runtime::CancelToken token;
        if (dice >= 5 && dice < 10) {
          token = runtime::CancelToken::make();
          opts.cancel = token;
        }
        std::future<Tensor> fut;
        try {
          fut = engine.submit(std::move(input), opts);
          submitted.fetch_add(1);
        } catch (const runtime::OverloadedError&) {
          tally.shed.fetch_add(1);
          submitted.fetch_add(1);
          continue;
        } catch (const runtime::RequestError&) {
          tally.faulted.fetch_add(1);
          submitted.fetch_add(1);
          continue;
        }
        if (token.valid() && rng.next_below(2) == 0) token.request_cancel();
        try {
          const Tensor out = fut.get();
          EXPECT_TRUE(all_finite(out));
          tally.ok.fetch_add(1);
        } catch (const runtime::DeadlineExceededError&) {
          tally.expired.fetch_add(1);
        } catch (const runtime::CancelledError&) {
          tally.cancelled.fetch_add(1);
        } catch (const runtime::ShutdownError&) {
          tally.shutdown.fetch_add(1);
        } catch (const runtime::RequestError&) {
          tally.faulted.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(submitted.load(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(tally.total(), submitted.load())
      << "a future was lost or double-counted";
  // The faults were actually armed (the soak is vacuous otherwise) and the
  // engine survived them: the overwhelming majority of requests succeed.
  EXPECT_GT(fault::injected_count("forward"), 0);
  EXPECT_GT(tally.ok.load(), submitted.load() / 2);
  EXPECT_EQ(tally.shutdown.load(), 0) << "engine shut itself down mid-soak";

  // Clean aftermath: faults off, a fresh request serves normally.
  fault::clear();
  Rng rng(99);
  EXPECT_NO_THROW(engine.submit(Tensor::randn({3, 10, 10}, rng)).get());
  const auto s = engine.stats();
  EXPECT_EQ(s.requests + s.failed + s.expired + s.cancelled,
            submitted.load() - tally.shed.load() + 1);
  EXPECT_EQ(s.rejected, tally.shed.load());
}

TEST(Chaos, ConcurrentRolloutSessionsSurviveInjectedFaults) {
  // >=8 sessions x 20 steps under forward faults. A failed step throws out
  // of step(); the session stays re-submittable, so clients retry the same
  // power map until it lands. Every trajectory must complete with finite
  // physical state. The n=6 rule makes the first forwards throw
  // DETERMINISTICALLY (lockstep sessions coalesce into few batches, so a
  // purely probabilistic rule could legally never fire); the p-rule keeps
  // background pressure on for the rest of the run.
  const int kSessions = 8;
  const int kSteps = scaled(20, 60);
  const int64_t res = 10;
  FaultGuard fg("forward:throw:n=6,forward:throw:p=0.05", 424242);

  data::RolloutSpec spec;
  spec.dt = 0.01;
  spec.state_channels = 1;
  spec.power_channels = 1;
  auto model = train::make_model("SAU-FNO-micro", spec.in_channels(),
                                 spec.out_channels(), /*seed=*/7);
  const auto norm =
      data::Normalizer::from_stats(318.0, 3e4, 9.0, /*power_channels=*/1);
  RolloutEngine engine(model, norm, spec);

  std::atomic<int64_t> retries{0};
  std::vector<std::thread> clients;
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      auto session =
          engine.open_session(Tensor::full({1, res, res}, 318.f));
      Rng rng(static_cast<std::uint64_t>(s) * 104729 + 17);
      for (int k = 0; k < kSteps; ++k) {
        const Tensor power =
            Tensor::rand_uniform({1, res, res}, rng, 0.f, 9e4f);
        // A step that faults is retryable: await_step consumed the broken
        // future, so the session accepts the same submission again.
        for (int attempt = 0;; ++attempt) {
          ASSERT_LT(attempt, 200) << "session " << s << " step " << k
                                  << " never succeeded";
          try {
            const Tensor state = session->step(power.clone());
            ASSERT_EQ(state.shape(), (Shape{1, res, res}));
            EXPECT_TRUE(all_finite(state))
                << "session " << s << " produced non-finite state";
            break;
          } catch (const runtime::RequestError&) {
            retries.fetch_add(1);
          }
        }
      }
      EXPECT_EQ(session->steps_done(), kSteps);
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_GT(fault::injected_count("forward"), 0);
  EXPECT_GT(retries.load(), 0) << "the 5% fault never fired";
}

// ---------------------------------------------------------------------------
// Over-the-wire chaos: client threads vs a FAULTED TCP server
// ---------------------------------------------------------------------------

/// Open fds in this process — the leak detector for the socket soak. Every
/// accepted connection costs the server one fd; a reap bug shows up here as
/// a monotonically growing count.
int open_fd_count() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  int n = 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n - 3;  // ".", "..", and the opendir fd itself
}

/// Raw loopback connect (no Client): the garbage-injection path needs a
/// socket the framing layer has never touched.
int raw_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct WireTally {
  std::atomic<int64_t> infer_sent{0};      // well-formed infers, read back
  std::atomic<int64_t> infer_answered{0};  // responses received for them
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> typed_error{0};     // any non-ok, non-protocol code
  std::atomic<int64_t> garbage_conns{0};   // streams we deliberately garbled
  std::atomic<int64_t> garbage_rejected{0};  // ... answered kProtocol+close
  std::atomic<int64_t> abandoned{0};       // infers sent then conn dropped
};

/// The shared chaos driver: `threads` clients hammer a faulted server with
/// mixed well-formed traffic, garbage streams and mid-pipeline disconnects.
/// Invariants, per the ISSUE contract:
///   - every well-formed request on a connection the client keeps open gets
///     EXACTLY one response (value or typed error, never silence);
///   - every garbled stream gets a kProtocol response then a clean close;
///   - abrupt disconnects never poison other connections;
///   - after stop(), the process fd count returns to its baseline (no fd
///     leaked per connection, client or server side).
void run_wire_chaos(int threads, int sessions_per_thread,
                    const char* fault_spec, std::uint64_t seed) {
  // Warm process-wide singletons (thread pool, obs registry, one full
  // server lifecycle) BEFORE the fd baseline so lazily-created fds are not
  // misread as leaks from the soak itself.
  {
    serve::Fleet::Config fc;
    auto fleet = std::make_shared<serve::Fleet>(fc);
    InferenceEngine::Config ecfg;
    ecfg.max_batch = 4;
    ecfg.max_wait_us = 200;
    fleet->add_engine("warm", std::make_shared<InferenceEngine>(
                                  train::make_model("SAU-FNO", 3, 1, 42, 0),
                                  ecfg));
    serve::Server::Config scfg;
    scfg.default_model = "warm";
    serve::Server warm(fleet, scfg);
    warm.start();
    serve::Client c;
    c.connect("127.0.0.1", warm.port());
    Rng rng(seed);
    (void)c.infer(Tensor::randn({3, 8, 8}, rng));
    c.close();
    warm.stop();
  }
  const int fd_baseline = open_fd_count();
  ASSERT_GT(fd_baseline, 0);

  FaultGuard fg(fault_spec, seed);
  serve::Fleet::Config fc;
  auto fleet = std::make_shared<serve::Fleet>(fc);
  InferenceEngine::Config ecfg;
  ecfg.max_batch = 8;
  ecfg.max_wait_us = 200;
  ecfg.queue_capacity = 256;
  fleet->add_engine("sau-fno", std::make_shared<InferenceEngine>(
                                   train::make_model("SAU-FNO", 3, 1, 42, 0),
                                   ecfg));
  serve::Server::Config scfg;
  scfg.default_model = "sau-fno";
  scfg.quota_spec = "*=128";
  auto server = std::make_unique<serve::Server>(fleet, scfg);
  server->start();
  const std::uint16_t port = server->port();

  WireTally tally;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(seed + static_cast<std::uint64_t>(t) * 6151 + 3);
      const int64_t res_choices[3] = {8, 10, 12};
      for (int s = 0; s < sessions_per_thread; ++s) {
        const std::uint64_t dice = rng.next_below(10);
        if (dice == 0) {
          // Garbage stream: random bytes that are overwhelmingly NOT a
          // valid header. Contract: one kProtocol response, then EOF.
          const int fd = raw_connect(port);
          if (fd < 0) continue;
          tally.garbage_conns.fetch_add(1);
          std::uint8_t junk[24];
          for (auto& b : junk) {
            b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
          }
          junk[0] = 0xFF;  // never the magic's first byte
          (void)::send(fd, junk, sizeof(junk), MSG_NOSIGNAL);
          try {
            std::vector<std::uint8_t> body;
            if (serve::read_frame(fd, body)) {
              const serve::AnyFrame f =
                  serve::decode_frame(body.data(), body.size());
              if (f.kind == serve::FrameKind::kResponse &&
                  f.response.code == serve::WireCode::kProtocol &&
                  !serve::read_frame(fd, body)) {
                tally.garbage_rejected.fetch_add(1);
              }
            }
          } catch (const serve::ProtocolError&) {
            // Close raced the response write: acceptable, the connection
            // still terminated instead of wedging.
            tally.garbage_rejected.fetch_add(1);
          }
          ::close(fd);
          continue;
        }
        serve::Client c;
        try {
          c.connect("127.0.0.1", port);
        } catch (const std::exception&) {
          continue;  // accept raced stop(); not this test's concern
        }
        const int burst = 1 + static_cast<int>(rng.next_below(6));
        if (dice == 1) {
          // Abrupt disconnect: pipeline a burst, close without reading.
          // The server must drain the futures and release the quota slots
          // without wedging anyone else.
          for (int i = 0; i < burst; ++i) {
            try {
              c.send_infer(Tensor::randn({3, 8, 8}, rng));
              tally.abandoned.fetch_add(1);
            } catch (const serve::ProtocolError&) {
              break;
            }
          }
          c.close();
          continue;
        }
        // Well-formed burst: pipeline, then read every response back.
        int sent = 0;
        for (int i = 0; i < burst; ++i) {
          const int64_t res = res_choices[rng.next_below(3)];
          const std::uint32_t deadline =
              rng.next_below(20) == 0
                  ? 1 + static_cast<std::uint32_t>(rng.next_below(5))
                  : 0;
          try {
            c.send_infer(Tensor::randn({3, res, res}, rng), "", "default",
                         deadline);
            ++sent;
          } catch (const serve::ProtocolError&) {
            break;
          }
        }
        tally.infer_sent.fetch_add(sent);
        for (int i = 0; i < sent; ++i) {
          try {
            const serve::Response r = c.recv_response();
            tally.infer_answered.fetch_add(1);
            if (r.code == serve::WireCode::kOk) {
              EXPECT_TRUE(r.has_tensor);
              EXPECT_TRUE(all_finite(r.tensor));
              tally.ok.fetch_add(1);
            } else {
              EXPECT_NE(r.code, serve::WireCode::kProtocol)
                  << "well-formed frames must never classify as protocol "
                     "errors: "
                  << r.message;
              tally.typed_error.fetch_add(1);
            }
          } catch (const serve::ProtocolError& e) {
            ADD_FAILURE() << "client " << t << " lost a response: "
                          << e.what();
            break;
          }
        }
        c.close();
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(tally.infer_answered.load(), tally.infer_sent.load())
      << "every well-formed request on an open connection gets a response";
  EXPECT_GT(tally.ok.load(), 0);
  EXPECT_GT(fault::injected_count("forward"), 0)
      << "the chaos spec never fired; the soak is vacuous";
  EXPECT_EQ(tally.garbage_rejected.load(), tally.garbage_conns.load())
      << "a garbled stream was not answered-and-closed";

  EXPECT_GE(server->stats().protocol_errors, tally.garbage_conns.load());
  server->stop();
  EXPECT_EQ(server->stats().conns_active, 0)
      << "connections outlived their clients";
  server.reset();

  // The soak's server and every client socket are gone: fd-for-fd.
  const int fd_after = open_fd_count();
  EXPECT_EQ(fd_after, fd_baseline)
      << "fd leak: " << (fd_after - fd_baseline) << " descriptors";
}

TEST(WireChaosSmoke, FaultedServerAnswersOrCleanlyCloses) {
  // Tier-1 sized: enough traffic to hit the throw/delay/garbage/disconnect
  // paths, small enough for the ASan/TSan lanes. The full-size soak lives
  // in WireChaosSoak (ctest entry test_chaos_wire_soak, labeled `soak`).
  run_wire_chaos(/*threads=*/4, /*sessions_per_thread=*/6,
                 "forward:throw:p=0.05,gemm:throw:p=0.005,delay:ms=1:p=0.01",
                 20260807);
}

TEST(WireChaosSoak, ManyClientsVsFaultedServer) {
  run_wire_chaos(/*threads=*/8, /*sessions_per_thread=*/scaled(30, 150),
                 "forward:throw:p=0.05,gemm:throw:p=0.005,"
                 "delay:ms=2:p=0.02,forward:delay:ms=5:p=0.01",
                 424243);
}

}  // namespace
}  // namespace saufno
