#include "data/generator.h"

#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/io.h"
#include "data/normalizer.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

data::GenConfig tiny_cfg(int n = 6, int res = 10) {
  data::GenConfig cfg;
  cfg.resolution = res;
  cfg.n_samples = n;
  cfg.seed = 99;
  cfg.cache = false;
  return cfg;
}

TEST(Generator, ShapesAndChannelLayout) {
  const auto spec = chip::make_chip1();
  const auto d = data::generate_dataset(spec, tiny_cfg());
  EXPECT_EQ(d.size(), 6);
  // chip1: 2 device layers -> 2 power channels + 2 coord channels.
  EXPECT_EQ(d.in_channels(), 4);
  EXPECT_EQ(d.out_channels(), 2);
  EXPECT_EQ(d.inputs.shape(), (Shape{6, 4, 10, 10}));
  EXPECT_EQ(d.targets.shape(), (Shape{6, 2, 10, 10}));
  EXPECT_EQ(d.chip_name, "chip1");
  EXPECT_DOUBLE_EQ(d.ambient, spec.ambient);
}

TEST(Generator, CoordinateChannelsNormalized) {
  const auto d = data::generate_dataset(chip::make_chip1(), tiny_cfg(2, 8));
  // Channel 2 is y, channel 3 is x; corners are 0 and 1.
  const int64_t plane = 64;
  const float* x0 = d.inputs.data();  // sample 0
  EXPECT_EQ(x0[2 * plane + 0], 0.f);              // y at (0,0)
  EXPECT_EQ(x0[2 * plane + 63], 1.f);             // y at (7,7)
  EXPECT_EQ(x0[3 * plane + 7], 1.f);              // x at (0,7)
}

TEST(Generator, TargetsAreCredibleTemperatures) {
  const auto spec = chip::make_chip1();
  const auto d = data::generate_dataset(spec, tiny_cfg(4, 10));
  const float lo = min_all(d.targets), hi = max_all(d.targets);
  EXPECT_GT(lo, spec.ambient);   // everything above ambient
  EXPECT_LT(hi, 520.0);          // nothing absurd
  EXPECT_GT(hi - lo, 1.0);       // real variation across the die
}

TEST(Generator, DeterministicForSameSeed) {
  const auto spec = chip::make_chip1();
  const auto a = data::generate_dataset(spec, tiny_cfg(3, 8));
  const auto b = data::generate_dataset(spec, tiny_cfg(3, 8));
  EXPECT_TRUE(a.inputs.allclose(b.inputs));
  EXPECT_TRUE(a.targets.allclose(b.targets));
}

TEST(Generator, CacheRoundTrip) {
  auto cfg = tiny_cfg(3, 8);
  cfg.cache = true;
  cfg.cache_dir = ::testing::TempDir() + "/saufno_ds_cache";
  std::filesystem::remove_all(cfg.cache_dir);
  const auto spec = chip::make_chip2();
  const auto fresh = data::generate_dataset(spec, cfg);
  // Second call must hit the cache and reproduce identical data.
  const auto cached = data::generate_dataset(spec, cfg);
  EXPECT_TRUE(fresh.inputs.allclose(cached.inputs));
  EXPECT_TRUE(fresh.targets.allclose(cached.targets));
  std::filesystem::remove_all(cfg.cache_dir);
}

TEST(DatasetOps, SplitAndTake) {
  const auto d = data::generate_dataset(chip::make_chip1(), tiny_cfg(6, 8));
  auto [train, test] = d.split(4);
  EXPECT_EQ(train.size(), 4);
  EXPECT_EQ(test.size(), 2);
  // Split is a partition: sample 4 of d equals sample 0 of test.
  Tensor d4 = slice(d.inputs, 0, 4, 1);
  Tensor t0 = slice(test.inputs, 0, 0, 1);
  EXPECT_TRUE(d4.allclose(t0));
  EXPECT_EQ(d.take(2).size(), 2);
  EXPECT_THROW(d.take(100), std::runtime_error);
}

TEST(DatasetOps, GatherSelectsRows) {
  const auto d = data::generate_dataset(chip::make_chip1(), tiny_cfg(5, 8));
  auto [xi, yt] = d.gather({4, 0});
  EXPECT_EQ(xi.size(0), 2);
  EXPECT_TRUE(slice(xi, 0, 0, 1).allclose(slice(d.inputs, 0, 4, 1)));
  EXPECT_TRUE(slice(yt, 0, 1, 1).allclose(slice(d.targets, 0, 0, 1)));
}

TEST(BatchSampler, CoversEveryIndexOncePerEpoch) {
  Rng rng(1);
  data::BatchSampler sampler(10, 3, rng);
  std::vector<int> seen;
  for (auto b = sampler.next(); !b.empty(); b = sampler.next()) {
    seen.insert(seen.end(), b.begin(), b.end());
  }
  EXPECT_EQ(seen.size(), 10u);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(sampler.batches_per_epoch(), 4);
}

TEST(BatchSampler, ReshufflesBetweenEpochs) {
  Rng rng(2);
  data::BatchSampler sampler(32, 32, rng);
  auto e1 = sampler.next();
  sampler.reset();
  auto e2 = sampler.next();
  EXPECT_NE(e1, e2);  // 1/32! chance of false failure
}

TEST(DatasetIo, RoundTrip) {
  const auto d = data::generate_dataset(chip::make_chip1(), tiny_cfg(3, 8));
  const std::string path = ::testing::TempDir() + "/saufno_ds.bin";
  data::save_dataset(d, path);
  const auto back = data::load_dataset(path);
  EXPECT_EQ(back.chip_name, d.chip_name);
  EXPECT_EQ(back.resolution, d.resolution);
  EXPECT_DOUBLE_EQ(back.ambient, d.ambient);
  EXPECT_TRUE(back.inputs.allclose(d.inputs));
  EXPECT_TRUE(back.targets.allclose(d.targets));
  std::filesystem::remove(path);
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW(data::load_dataset("/nonexistent/nope.bin"),
               std::runtime_error);
}

TEST(Normalizer, TargetRoundTripAndStats) {
  const auto d = data::generate_dataset(chip::make_chip1(), tiny_cfg(5, 10));
  const auto norm = data::Normalizer::fit(d, 2);
  EXPECT_GT(norm.power_scale(), 0.0);
  EXPECT_GT(norm.temp_scale(), 0.0);
  Tensor enc = norm.encode_targets(d.targets);
  // Encoded rise has roughly unit scale (the mean/std ratio of a skewed
  // rise distribution on a tiny dataset can reach a few units).
  EXPECT_LT(std::fabs(mean_all(enc)), 4.f);
  Tensor dec = norm.decode_targets(enc);
  EXPECT_TRUE(dec.allclose(d.targets, 1e-4f, 1e-2f));
}

TEST(Normalizer, InputEncodingLeavesCoordsAlone) {
  const auto d = data::generate_dataset(chip::make_chip1(), tiny_cfg(3, 8));
  const auto norm = data::Normalizer::fit(d, 2);
  Tensor enc = norm.encode_inputs(d.inputs);
  // Coord channels (2, 3) unchanged; power channels scaled.
  Tensor coords_raw = slice(d.inputs, 1, 2, 2);
  Tensor coords_enc = slice(enc, 1, 2, 2);
  EXPECT_TRUE(coords_raw.allclose(coords_enc));
  Tensor p_raw = slice(d.inputs, 1, 0, 2);
  Tensor p_enc = slice(enc, 1, 0, 2);
  EXPECT_NEAR(max_all(p_enc) * static_cast<float>(norm.power_scale()),
              max_all(p_raw), 1e-2f * max_all(p_raw));
}

TEST(RegenerateAssignments, MatchesDatasetSeed) {
  const auto spec = chip::make_chip1();
  auto cfg = tiny_cfg(4, 8);
  const auto as1 = data::regenerate_assignments(spec, cfg);
  const auto as2 = data::regenerate_assignments(spec, cfg);
  ASSERT_EQ(as1.size(), 4u);
  for (std::size_t i = 0; i < as1.size(); ++i) {
    EXPECT_DOUBLE_EQ(as1[i].total(), as2[i].total());
  }
}

}  // namespace
}  // namespace saufno
