#include "core/volumetric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "fft/fft.h"
#include "testing.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

TEST(Fft3d, RoundTrip) {
  Rng rng(1);
  const int64_t b = 2, d = 3, h = 4, w = 6;
  std::vector<cfloat> x(static_cast<std::size_t>(b * d * h * w));
  for (auto& v : x) {
    v = cfloat(static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal()));
  }
  auto y = x;
  fft_3d(y.data(), b, d, h, w, false);
  fft_3d(y.data(), b, d, h, w, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-3f);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-3f);
  }
}

TEST(Fft3d, ImpulseFlatSpectrum) {
  std::vector<cfloat> x(2 * 4 * 4, cfloat(0, 0));
  x[0] = cfloat(1, 0);
  fft_3d(x.data(), 1, 2, 4, 4, false);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.f, 1e-5f);
  }
}

TEST(SpectralConv3d, ConstantVolumePassesThroughDcWeight) {
  const int64_t D = 4, H = 8, W = 8;
  Var x(Tensor::full({1, 1, D, H, W}, 2.5f), false);
  Tensor wt({1, 1, 2, 2, 1, 2});
  // Real part 1 on every kept mode slot.
  for (int64_t i = 0; i < wt.numel(); i += 2) wt.at(i) = 1.f;
  Var w(wt, false);
  Var y = ops::spectral_conv3d(x, w, 1, 1, 1, 1);
  EXPECT_TRUE(y.value().allclose(x.value(), 1e-4f, 1e-4f));
}

TEST(SpectralConv3d, LinearInInput) {
  Rng rng(2);
  Var x1(Tensor::randn({1, 2, 4, 6, 6}, rng), false);
  Var x2(Tensor::randn({1, 2, 4, 6, 6}, rng), false);
  Var w(Tensor::randn({2, 2, 2, 4, 2, 2}, rng, 0.f, 0.3f), false);
  Var y1 = ops::spectral_conv3d(x1, w, 1, 2, 2, 2);
  Var y2 = ops::spectral_conv3d(x2, w, 1, 2, 2, 2);
  Var ys = ops::spectral_conv3d(ops::add(x1, x2), w, 1, 2, 2, 2);
  EXPECT_TRUE(ys.value().allclose(add(y1.value(), y2.value()), 1e-3f, 1e-3f));
}

TEST(SpectralConv3d, ModesClampOnThinAxis) {
  // Depth 2 with modes1 = 4: the kept depth modes clamp to D/2 = 1.
  Rng rng(3);
  Var x(Tensor::randn({1, 1, 2, 8, 8}, rng), false);
  Var w(Tensor::randn({1, 1, 8, 6, 3, 2}, rng, 0.f, 0.2f), false);
  Var y = ops::spectral_conv3d(x, w, 4, 3, 3, 1);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 8, 8}));
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.value().at(i)));
  }
}

TEST(SpectralConv3dGrad, JointGradcheck) {
  Rng rng(4);
  Var x(Tensor::randn({1, 1, 2, 4, 4}, rng), true);
  Var w(Tensor::randn({1, 1, 2, 2, 2, 2}, rng, 0.f, 0.3f), true);
  testing::expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var y = ops::spectral_conv3d(ls[0], ls[1], 1, 1, 2, 1);
        return ops::sum_all(ops::square(y));
      },
      {x, w}, /*eps=*/1e-2f, /*rtol=*/3e-2f, /*atol=*/3e-3f);
}

TEST(Fno3d, ForwardShapeAndMeshInvariance) {
  Rng rng(5);
  core::Fno3d::Config cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 1;
  cfg.width = 6;
  cfg.modes1 = 1;
  cfg.modes2 = 3;
  cfg.modes3 = 3;
  cfg.n_layers = 2;
  core::Fno3d model(cfg, rng);
  Var a(Tensor::randn({2, 2, 4, 8, 8}, rng), false);
  Var b(Tensor::randn({1, 2, 6, 12, 12}, rng), false);
  EXPECT_EQ(model.forward(a).shape(), (Shape{2, 1, 4, 8, 8}));
  EXPECT_EQ(model.forward(b).shape(), (Shape{1, 1, 6, 12, 12}));
}

TEST(Fno3d, TrainsOnSyntheticSmoothingTask) {
  // Learn a simple volumetric operator: y = local average of x along all
  // axes (a band-limited map a spectral model fits quickly).
  Rng rng(6);
  core::Fno3d::Config cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.width = 6;
  cfg.modes1 = 2;
  cfg.modes2 = 2;
  cfg.modes3 = 2;
  cfg.n_layers = 2;
  core::Fno3d model(cfg, rng);

  // Build inputs as random low-frequency volumes; target = 0.5 * x.
  const int64_t n = 6, D = 4, H = 8, W = 8;
  Rng drng(7);
  Tensor x({n, 1, D, H, W});
  for (int64_t s = 0; s < n; ++s) {
    const double a = drng.uniform(-1, 1), b = drng.uniform(-1, 1);
    for (int64_t iz = 0; iz < D; ++iz) {
      for (int64_t iy = 0; iy < H; ++iy) {
        for (int64_t ix = 0; ix < W; ++ix) {
          x.at(((s * D + iz) * H + iy) * W + ix) = static_cast<float>(
              a * std::cos(2 * M_PI * iy / H) +
              b * std::sin(2 * M_PI * ix / W));
        }
      }
    }
  }
  Tensor y = mul_scalar(x, 0.5f);

  optim::Adam opt(model.parameters(), 5e-3);
  double first = 0, last = 0;
  for (int step = 0; step < 40; ++step) {
    Var pred = model.forward(Var(x, false));
    Var loss = ops::mse_loss(pred, Var(y, false));
    opt.zero_grad();
    loss.backward();
    opt.step();
    if (step == 0) first = loss.value().item();
    last = loss.value().item();
  }
  EXPECT_LT(last, 0.3 * first);
}

}  // namespace
}  // namespace saufno
