#include "autograd/spectral_ops.h"

#include <cmath>
#include <complex>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/spectral3d_ops.h"
#include "core/spectral_conv.h"
#include "fft/fft.h"
#include "testing.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

using testing::expect_gradients_match;

/// A spectral weight that multiplies every kept mode by `scale` (real).
Var uniform_weight(int64_t cin, int64_t cout, int64_t m1, int64_t m2,
                   float scale, bool requires_grad = false) {
  Tensor w({cin, cout, 2 * m1, m2, 2});
  float* p = w.data();
  for (int64_t i = 0; i < w.numel(); i += 2) p[i] = scale;  // re only
  return Var(w, requires_grad);
}

TEST(SpectralConv, ConstantFieldPassesThroughDcWeight) {
  // A constant field lives entirely in the DC mode; a unit weight on the
  // kept modes must reproduce it exactly.
  const int64_t H = 8, W = 8;
  Var x(Tensor::full({1, 1, H, W}, 3.f), false);
  Var w = uniform_weight(1, 1, 2, 2, 1.f);
  Var y = ops::spectral_conv2d(x, w, 2, 2, 1);
  EXPECT_TRUE(y.value().allclose(x.value(), 1e-4f, 1e-4f));
}

TEST(SpectralConv, LowPassRemovesHighFrequency) {
  // Input: DC + the highest row frequency. Keeping only 1 mode must
  // recover the DC part alone.
  const int64_t H = 8, W = 8;
  Tensor x({1, 1, H, W});
  for (int64_t i = 0; i < H; ++i) {
    for (int64_t j = 0; j < W; ++j) {
      x.at(i * W + j) = 2.f + ((i % 2 == 0) ? 1.f : -1.f);  // Nyquist row
    }
  }
  Var xv(x, false);
  Var w = uniform_weight(1, 1, 1, 1, 1.f);  // keep only k1 in {0,-1}, k2=0
  Var y = ops::spectral_conv2d(xv, w, 1, 1, 1);
  EXPECT_TRUE(y.value().allclose(Tensor::full({1, 1, H, W}, 2.f), 1e-4f, 1e-4f));
}

TEST(SpectralConv, LinearInInput) {
  Rng rng(1);
  Var x1(Tensor::randn({1, 2, 8, 8}, rng), false);
  Var x2(Tensor::randn({1, 2, 8, 8}, rng), false);
  Rng wr(2);
  Var w(Tensor::randn({2, 3, 6, 3, 2}, wr, 0.f, 0.3f), false);
  Var y1 = ops::spectral_conv2d(x1, w, 3, 3, 3);
  Var y2 = ops::spectral_conv2d(x2, w, 3, 3, 3);
  Var ysum = ops::spectral_conv2d(ops::add(x1, x2), w, 3, 3, 3);
  EXPECT_TRUE(
      ysum.value().allclose(add(y1.value(), y2.value()), 1e-3f, 1e-3f));
}

TEST(SpectralConv, ChannelMixing) {
  // Two input channels with weights [1, 0] and [0, 0] on channel-0->out
  // and channel-1->out: output equals channel 0's content only.
  const int64_t H = 8, W = 8;
  Rng rng(3);
  Tensor x({1, 2, H, W});
  Tensor c0 = Tensor::full({H * W}, 1.5f);
  for (int64_t i = 0; i < H * W; ++i) {
    x.at(i) = c0.at(i);
    x.at(H * W + i) = static_cast<float>(rng.normal());
  }
  Tensor w({2, 1, 4, 2, 2});
  // channel 0 weight = 1 on all kept modes; channel 1 weight = 0.
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 2; ++c) {
      w.at(((0 * 1 + 0) * 4 + r) * 2 * 2 + c * 2) = 1.f;
    }
  }
  Var y = ops::spectral_conv2d(Var(x, false), Var(w, false), 2, 2, 1);
  EXPECT_TRUE(y.value().allclose(Tensor::full({1, 1, H, W}, 1.5f), 1e-4f, 1e-4f));
}

TEST(SpectralConv, ModesClampedAtCoarseResolution) {
  // Configured modes exceed H/2: must clamp, not crash — the property the
  // multi-fidelity transfer relies on.
  Rng rng(4);
  Var x(Tensor::randn({1, 1, 4, 4}, rng), false);
  Var w(Tensor::randn({1, 1, 12, 6, 2}, rng, 0.f, 0.2f), false);
  Var y = ops::spectral_conv2d(x, w, 6, 6, 1);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4, 4}));
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.value().at(i)));
  }
}

TEST(SpectralConv, WeightShapeMismatchThrows) {
  Var x(Tensor::zeros({1, 1, 8, 8}), false);
  Var w(Tensor::zeros({1, 1, 3, 2, 2}), false);  // rows != 2*m1
  EXPECT_THROW(ops::spectral_conv2d(x, w, 2, 2, 1), std::runtime_error);
}

TEST(SpectralConvGrad, InputGradcheck) {
  Rng rng(5);
  Var x(Tensor::randn({1, 2, 6, 6}, rng), true);
  Var w(Tensor::randn({2, 2, 4, 2, 2}, rng, 0.f, 0.3f), false);
  expect_gradients_match(
      [w](std::vector<Var>& ls) {
        Var y = ops::spectral_conv2d(ls[0], w, 2, 2, 2);
        return ops::sum_all(ops::square(y));
      },
      {x}, /*eps=*/1e-2f, /*rtol=*/3e-2f, /*atol=*/3e-3f);
}

TEST(SpectralConvGrad, WeightGradcheck) {
  Rng rng(6);
  Var x(Tensor::randn({2, 1, 6, 6}, rng), false);
  Var w(Tensor::randn({1, 2, 4, 2, 2}, rng, 0.f, 0.3f), true);
  expect_gradients_match(
      [x](std::vector<Var>& ls) {
        Var y = ops::spectral_conv2d(x, ls[0], 2, 2, 2);
        return ops::sum_all(ops::square(y));
      },
      {w}, /*eps=*/1e-2f, /*rtol=*/3e-2f, /*atol=*/3e-3f);
}

TEST(SpectralConvGrad, JointGradcheckNonPow2) {
  // 6x10 exercises the Bluestein path inside autograd.
  Rng rng(7);
  Var x(Tensor::randn({1, 1, 6, 10}, rng), true);
  Var w(Tensor::randn({1, 1, 4, 3, 2}, rng, 0.f, 0.3f), true);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var y = ops::spectral_conv2d(ls[0], ls[1], 2, 3, 1);
        return ops::sum_all(ops::square(y));
      },
      {x, w}, /*eps=*/1e-2f, /*rtol=*/3e-2f, /*atol=*/3e-3f);
}

/// The seed's spectral_conv2d forward, kept verbatim as a reference: widen
/// the real input to complex, full-spectrum FFT2, per-mode channel mixing,
/// full-spectrum inverse, take the real part. The production op must match
/// it within train-time float tolerance at every grid size — this guards
/// the rfft/truncated/mixing rewrite against silent accuracy regressions.
Tensor reference_spectral_conv2d(const Tensor& x, const Tensor& w, int64_t m1,
                                 int64_t m2, int64_t cout) {
  const int64_t B = x.size(0), cin = x.size(1), H = x.size(2), W = x.size(3);
  const int64_t plane = H * W;
  const auto mm = ops::spectral::make_mode_map(H, W, m1, m2);
  std::vector<cfloat> xf(static_cast<std::size_t>(B * cin * plane));
  const float* xp = x.data();
  for (int64_t i = 0; i < B * cin * plane; ++i) {
    xf[static_cast<std::size_t>(i)] = cfloat(xp[i], 0.f);
  }
  fft_2d(xf.data(), B * cin, H, W, /*inverse=*/false);
  auto widx = [m2, m1, cout](int64_t i, int64_t o, int64_t r, int64_t c) {
    return (((i * cout + o) * (2 * m1) + r) * m2 + c) * 2;
  };
  std::vector<cfloat> yf(static_cast<std::size_t>(B * cout * plane),
                         cfloat(0.f, 0.f));
  const float* wp = w.data();
  for (int64_t b = 0; b < B; ++b) {
    for (const auto& [wr, kr] : mm.rows) {
      for (int64_t c = 0; c < mm.m2e; ++c) {
        const int64_t koff = kr * W + c;
        for (int64_t o = 0; o < cout; ++o) {
          cfloat acc(0.f, 0.f);
          for (int64_t i = 0; i < cin; ++i) {
            const float* wc = wp + widx(i, o, wr, c);
            acc += cfloat(wc[0], wc[1]) *
                   xf[static_cast<std::size_t>((b * cin + i) * plane + koff)];
          }
          yf[static_cast<std::size_t>((b * cout + o) * plane + koff)] = acc;
        }
      }
    }
  }
  fft_2d(yf.data(), B * cout, H, W, /*inverse=*/true);
  Tensor out({B, cout, H, W});
  for (int64_t i = 0; i < B * cout * plane; ++i) {
    out.data()[i] = yf[static_cast<std::size_t>(i)].real();
  }
  return out;
}

TEST(SpectralConvEquivalence, MatchesFullComplexReference2d) {
  for (const auto& [B, cin, cout, H, W, m1, m2] :
       {std::tuple<int, int, int, int, int, int, int>{2, 3, 4, 16, 16, 4, 4},
        std::tuple<int, int, int, int, int, int, int>{1, 2, 2, 12, 40, 3, 5},
        std::tuple<int, int, int, int, int, int, int>{2, 1, 1, 6, 10, 2, 3},
        std::tuple<int, int, int, int, int, int, int>{1, 1, 2, 4, 4, 6, 6}}) {
    Rng rng(600 + H * W + B);
    const Tensor x = Tensor::randn({B, cin, H, W}, rng);
    const Tensor w = Tensor::randn({cin, cout, 2 * m1, m2, 2}, rng, 0.f, 0.4f);
    const Tensor ref = reference_spectral_conv2d(x, w, m1, m2, cout);
    const Tensor got =
        ops::spectral_conv2d(Var(x, false), Var(w, false), m1, m2, cout)
            .value();
    testing::expect_allclose(got, ref, 1e-3f, 1e-4f,
                             "spectral_conv2d H=" + std::to_string(H) +
                                 " W=" + std::to_string(W));
  }
}

TEST(SpectralConvEquivalence, MatchesFullComplexReference3d) {
  // Reference: widen, full fft_3d, seed mixing loops, full inverse.
  const int64_t B = 1, cin = 2, cout = 2, D = 6, H = 8, W = 10;
  const int64_t m1 = 2, m2 = 3, m3 = 3;
  Rng rng(700);
  const Tensor x = Tensor::randn({B, cin, D, H, W}, rng);
  const Tensor w =
      Tensor::randn({cin, cout, 2 * m1, 2 * m2, m3, 2}, rng, 0.f, 0.4f);
  const int64_t vol = D * H * W;
  const auto map_d = ops::spectral::signed_axis_map(D, m1);
  const auto map_h = ops::spectral::signed_axis_map(H, m2);
  const int64_t m3e = std::min<int64_t>(m3, W / 2);
  std::vector<cfloat> xf(static_cast<std::size_t>(B * cin * vol));
  for (int64_t i = 0; i < B * cin * vol; ++i) {
    xf[static_cast<std::size_t>(i)] = cfloat(x.data()[i], 0.f);
  }
  fft_3d(xf.data(), B * cin, D, H, W, false);
  auto widx = [=](int64_t i, int64_t o, int64_t r, int64_t c, int64_t k) {
    return ((((i * cout + o) * (2 * m1) + r) * (2 * m2) + c) * m3 + k) * 2;
  };
  std::vector<cfloat> yf(static_cast<std::size_t>(B * cout * vol),
                         cfloat(0.f, 0.f));
  for (int64_t b = 0; b < B; ++b) {
    for (const auto& [wr, kd] : map_d) {
      for (const auto& [wc, kh] : map_h) {
        for (int64_t k = 0; k < m3e; ++k) {
          const int64_t off = (kd * H + kh) * W + k;
          for (int64_t o = 0; o < cout; ++o) {
            cfloat acc(0.f, 0.f);
            for (int64_t i = 0; i < cin; ++i) {
              const float* wc2 = w.data() + widx(i, o, wr, wc, k);
              acc += cfloat(wc2[0], wc2[1]) *
                     xf[static_cast<std::size_t>((b * cin + i) * vol + off)];
            }
            yf[static_cast<std::size_t>((b * cout + o) * vol + off)] = acc;
          }
        }
      }
    }
  }
  fft_3d(yf.data(), B * cout, D, H, W, true);
  Tensor ref({B, cout, D, H, W});
  for (int64_t i = 0; i < B * cout * vol; ++i) {
    ref.data()[i] = yf[static_cast<std::size_t>(i)].real();
  }
  const Tensor got =
      ops::spectral_conv3d(Var(x, false), Var(w, false), m1, m2, m3, cout)
          .value();
  testing::expect_allclose(got, ref, 1e-3f, 1e-4f, "spectral_conv3d");
}

TEST(SpectralConvModule, ResolutionInvariantShapes) {
  Rng rng(8);
  core::SpectralConv2d conv(3, 5, 4, 4, rng);
  Var x16(Tensor::randn({2, 3, 16, 16}, rng), false);
  Var x24(Tensor::randn({2, 3, 24, 24}, rng), false);
  EXPECT_EQ(conv.forward(x16).shape(), (Shape{2, 5, 16, 16}));
  EXPECT_EQ(conv.forward(x24).shape(), (Shape{2, 5, 24, 24}));
  EXPECT_EQ(conv.num_parameters(), 3 * 5 * 8 * 4 * 2);
}

TEST(SpectralConvModule, SameFunctionAcrossResolutionsOnSmoothField) {
  // Mesh invariance in the operator sense: applying the module to the SAME
  // band-limited function sampled at two resolutions gives fields that
  // agree after resampling.
  Rng rng(9);
  core::SpectralConv2d conv(1, 1, 2, 2, rng);
  auto sample = [](int64_t n) {
    Tensor t({1, 1, n, n});
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        const double u = 2.0 * M_PI * i / n, v = 2.0 * M_PI * j / n;
        t.at(i * n + j) =
            static_cast<float>(1.0 + 0.5 * std::cos(u) + 0.25 * std::sin(v));
      }
    }
    return t;
  };
  Var y16 = conv.forward(Var(sample(16), false));
  Var y32 = conv.forward(Var(sample(32), false));
  // Compare y32 downsampled (every 2nd point) to y16.
  double max_diff = 0;
  for (int64_t i = 0; i < 16; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      max_diff = std::max(
          max_diff,
          std::fabs(static_cast<double>(y16.value().at(i * 16 + j)) -
                    y32.value().at((2 * i) * 32 + 2 * j)));
    }
  }
  EXPECT_LT(max_diff, 1e-3);
}

}  // namespace
}  // namespace saufno
