// Transient rollout subsystem: sequence datasets, the rollout codec, the
// K-step trainer, and the streaming RolloutEngine/RolloutSession serving
// layer. The load-bearing property pinned here is the acceptance criterion
// of the subsystem: a trajectory served through many concurrent sessions is
// BIT-identical to the same trajectory served alone, and to the offline
// train::rollout_unroll reference on the same checkpoint.

#include "runtime/rollout_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chip/chips.h"
#include "data/sequence.h"
#include "testing.h"
#include "train/model_zoo.h"
#include "train/rollout.h"

namespace saufno {
namespace {

using runtime::RolloutEngine;
using runtime::RolloutSession;

constexpr int64_t kRes = 10;
constexpr int64_t kCs = 1, kCp = 1;

data::RolloutSpec tiny_spec() {
  data::RolloutSpec s;
  s.dt = 0.01;
  s.state_channels = kCs;
  s.power_channels = kCp;
  return s;
}

std::shared_ptr<nn::Module> tiny_model(std::uint64_t seed = 42) {
  const auto s = tiny_spec();
  return train::make_model("SAU-FNO-micro", s.in_channels(),
                           s.out_channels(), seed);
}

data::Normalizer tiny_norm() {
  return data::Normalizer::from_stats(/*ambient=*/318.0, /*power_scale=*/3e4,
                                      /*temp_scale=*/9.0, kCp);
}

Tensor ambient_field(double ambient) {
  return Tensor::full({kCs, kRes, kRes}, static_cast<float>(ambient));
}

std::vector<Tensor> random_power_seq(int64_t k, Rng& rng) {
  std::vector<Tensor> out;
  for (int64_t i = 0; i < k; ++i) {
    out.push_back(Tensor::rand_uniform({kCp, kRes, kRes}, rng, 0.f, 9e4f));
  }
  return out;
}

Tensor stack_steps(const std::vector<Tensor>& steps) {
  Tensor out({static_cast<int64_t>(steps.size()), kCp, kRes, kRes});
  const int64_t row = kCp * kRes * kRes;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    std::memcpy(out.data() + static_cast<int64_t>(i) * row, steps[i].data(),
                sizeof(float) * static_cast<std::size_t>(row));
  }
  return out;
}

// --------------------------------------------------------------------------
// Sequence dataset + codec
// --------------------------------------------------------------------------

TEST(SequenceData, CoordChannelsMatchSteadyGeneratorLayout) {
  const Tensor c = data::coord_channels(4, 4);
  ASSERT_EQ(c.shape(), (Shape{2, 4, 4}));
  EXPECT_FLOAT_EQ(c.at(0), 0.f);             // y at row 0
  EXPECT_FLOAT_EQ(c.at(12), 1.f);            // y at row 3
  EXPECT_FLOAT_EQ(c.at(16), 0.f);            // x at col 0
  EXPECT_FLOAT_EQ(c.at(16 + 3), 1.f);        // x at col 3
  EXPECT_FLOAT_EQ(c.at(5), 1.f / 3.f);       // y at row 1
}

TEST(SequenceData, AssembleStepInputLayoutAndScaling) {
  const auto norm = tiny_norm();
  Rng rng = testing::test_rng();
  const Tensor state = Tensor::randn({kCs, kRes, kRes}, rng);
  const Tensor power = Tensor::rand_uniform({kCp, kRes, kRes}, rng, 0.f, 9e4f);
  const Tensor in = data::assemble_step_input(state, power, norm);
  ASSERT_EQ(in.shape(), (Shape{kCs + kCp + 2, kRes, kRes}));
  const int64_t plane = kRes * kRes;
  // State channels pass through untouched (already normalized).
  EXPECT_EQ(std::memcmp(in.data(), state.data(),
                        sizeof(float) * static_cast<std::size_t>(kCs * plane)),
            0);
  // Power channels are scaled by 1/power_scale.
  const float inv = static_cast<float>(1.0 / norm.power_scale());
  for (int64_t i = 0; i < plane; ++i) {
    EXPECT_FLOAT_EQ(in.at(kCs * plane + i), power.at(i) * inv);
  }
  // Trailing channels are the coordinates.
  const Tensor coords = data::coord_channels(kRes, kRes);
  EXPECT_EQ(std::memcmp(in.data() + (kCs + kCp) * plane, coords.data(),
                        sizeof(float) * static_cast<std::size_t>(2 * plane)),
            0);
}

TEST(SequenceData, GeneratedTrajectoriesAreConsistent) {
  const auto spec = chip::make_chip1();
  data::TransientGenConfig cfg;
  cfg.resolution = 8;
  cfg.n_sequences = 2;
  cfg.steps = 5;
  cfg.phases = 2;
  cfg.dt = 5e-3;
  const auto d = data::generate_transient_sequences(spec, cfg);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.steps(), 5);
  EXPECT_EQ(d.state_channels(), spec.num_device_layers());
  EXPECT_EQ(d.power_channels(), spec.num_device_layers());
  EXPECT_DOUBLE_EQ(d.dt, cfg.dt);
  // Cold power-on: init is the uniform ambient field, and the temperature
  // rises monotonically in max over the first (heating) phase.
  for (int64_t i = 0; i < d.init.numel(); ++i) {
    EXPECT_FLOAT_EQ(d.init.at(i), static_cast<float>(spec.ambient));
  }
  const int64_t row = d.state_channels() * 8 * 8;
  float prev_max = static_cast<float>(spec.ambient);
  for (int64_t k = 0; k < 2; ++k) {  // first phase only (power re-samples)
    float mx = 0.f;
    for (int64_t i = 0; i < row; ++i) {
      mx = std::max(mx, d.targets.at(k * row + i));
    }
    EXPECT_GT(mx, prev_max - 1e-6f);
    prev_max = mx;
  }
  // Powers are piecewise-constant: steps 0 and 1 share a phase.
  EXPECT_EQ(std::memcmp(d.powers.data(), d.powers.data() + row,
                        sizeof(float) * static_cast<std::size_t>(row)),
            0);
  // Fitted normalizer carries the chip ambient and positive scales.
  const auto norm = data::fit_sequence_normalizer(d);
  EXPECT_DOUBLE_EQ(norm.ambient(), spec.ambient);
  EXPECT_GT(norm.power_scale(), 0.0);
  EXPECT_GT(norm.temp_scale(), 0.0);
}

TEST(SequenceData, GatherAndSplitPreserveRows) {
  const auto spec = chip::make_chip1();
  data::TransientGenConfig cfg;
  cfg.resolution = 6;
  cfg.n_sequences = 3;
  cfg.steps = 3;
  cfg.phases = 1;
  const auto d = data::generate_transient_sequences(spec, cfg);
  auto [a, b] = d.split(2);
  EXPECT_EQ(a.size(), 2);
  EXPECT_EQ(b.size(), 1);
  const int64_t row = d.targets.numel() / d.size();
  EXPECT_EQ(std::memcmp(b.targets.data(), d.targets.data() + 2 * row,
                        sizeof(float) * static_cast<std::size_t>(row)),
            0);
  auto [gi, gp, gt] = d.gather({2, 0});
  EXPECT_EQ(gi.size(0), 2);
  EXPECT_EQ(std::memcmp(gt.data(), d.targets.data() + 2 * row,
                        sizeof(float) * static_cast<std::size_t>(row)),
            0);
  EXPECT_THROW(d.gather({3}), std::runtime_error);
}

// --------------------------------------------------------------------------
// Serving: sessions, batching, equivalence
// --------------------------------------------------------------------------

TEST(RolloutEngine, SerialSessionMatchesOfflineUnroll) {
  auto model = tiny_model();
  const auto norm = tiny_norm();
  const auto spec = tiny_spec();
  Rng rng = testing::test_rng();
  const auto powers = random_power_seq(5, rng);

  const Tensor expected =
      train::rollout_unroll(*model, norm, ambient_field(norm.ambient()),
                            stack_steps(powers));

  RolloutEngine engine(model, norm, spec);
  auto session = engine.open_session(ambient_field(norm.ambient()));
  const int64_t row = kCs * kRes * kRes;
  for (std::size_t k = 0; k < powers.size(); ++k) {
    const Tensor state = session->step(powers[k].clone());
    ASSERT_EQ(state.shape(), (Shape{kCs, kRes, kRes}));
    EXPECT_EQ(std::memcmp(state.data(),
                          expected.data() + static_cast<int64_t>(k) * row,
                          sizeof(float) * static_cast<std::size_t>(row)),
              0)
        << "step " << k << " diverged from the offline unroll";
  }
  EXPECT_EQ(session->steps_done(), 5);
}

TEST(RolloutEngine, ConcurrentSessionsBitIdenticalToSerial) {
  // The acceptance criterion: rolling out in a crowd changes the batch
  // composition of every forward but must not change a single bit of any
  // trajectory.
  auto model = tiny_model();
  const auto norm = tiny_norm();
  const auto spec = tiny_spec();
  const int n_sessions = 6;
  const int64_t steps = 4;

  std::vector<Tensor> seqs;
  for (int s = 0; s < n_sessions; ++s) {
    Rng rng = testing::test_rng(static_cast<std::uint64_t>(s) + 1);
    seqs.push_back(stack_steps(random_power_seq(steps, rng)));
  }

  // Serial references, one isolated session each (batch size 1 throughout).
  std::vector<Tensor> serial;
  {
    RolloutEngine engine(model, norm, spec);
    for (int s = 0; s < n_sessions; ++s) {
      auto session = engine.open_session(ambient_field(norm.ambient()));
      std::vector<RolloutSession*> one{session.get()};
      std::vector<Tensor> traj =
          engine.run(one, {seqs[static_cast<std::size_t>(s)]});
      serial.push_back(std::move(traj[0]));
    }
  }

  // Concurrent lockstep rollout: every wave coalesces into shared batches.
  RolloutEngine engine(model, norm, spec);
  std::vector<std::unique_ptr<RolloutSession>> sessions;
  std::vector<RolloutSession*> raw;
  std::vector<Tensor> powers;
  for (int s = 0; s < n_sessions; ++s) {
    sessions.push_back(engine.open_session(ambient_field(norm.ambient())));
    raw.push_back(sessions.back().get());
    powers.push_back(seqs[static_cast<std::size_t>(s)]);
  }
  const auto got = engine.run(raw, powers);
  ASSERT_EQ(got.size(), serial.size());
  for (int s = 0; s < n_sessions; ++s) {
    const auto& a = got[static_cast<std::size_t>(s)];
    const auto& b = serial[static_cast<std::size_t>(s)];
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) *
                              static_cast<std::size_t>(a.numel())),
              0)
        << "session " << s << " not bit-identical to its serial rollout";
  }
  // The lockstep waves actually batched (the throughput property).
  EXPECT_GT(engine.stats().avg_batch_size, 1.0);
}

TEST(RolloutEngine, ThreadedClientsMatchOfflineUnroll) {
  // Free-threaded streaming (one client thread per session) instead of the
  // lockstep driver: arrival order is nondeterministic, results must not be.
  auto model = tiny_model();
  const auto norm = tiny_norm();
  const int n_sessions = 4;
  const int64_t steps = 4;
  std::vector<Tensor> seqs;
  std::vector<Tensor> expected;
  for (int s = 0; s < n_sessions; ++s) {
    Rng rng = testing::test_rng(static_cast<std::uint64_t>(s) + 100);
    seqs.push_back(stack_steps(random_power_seq(steps, rng)));
    expected.push_back(train::rollout_unroll(
        *model, norm, ambient_field(norm.ambient()), seqs.back()));
  }
  RolloutEngine engine(model, norm, tiny_spec());
  std::vector<Tensor> got(static_cast<std::size_t>(n_sessions));
  std::vector<std::thread> clients;
  for (int s = 0; s < n_sessions; ++s) {
    clients.emplace_back([&, s] {
      auto session = engine.open_session(ambient_field(norm.ambient()));
      std::vector<RolloutSession*> one{session.get()};
      got[static_cast<std::size_t>(s)] =
          engine.run(one, {seqs[static_cast<std::size_t>(s)]})[0];
    });
  }
  for (auto& t : clients) t.join();
  for (int s = 0; s < n_sessions; ++s) {
    EXPECT_EQ(
        std::memcmp(got[static_cast<std::size_t>(s)].data(),
                    expected[static_cast<std::size_t>(s)].data(),
                    sizeof(float) * static_cast<std::size_t>(
                                        expected[static_cast<std::size_t>(s)]
                                            .numel())),
        0)
        << "threaded client " << s;
  }
}

TEST(RolloutEngine, FromCheckpointRebuildsIdenticalPipeline) {
  auto model = tiny_model(/*seed=*/77);
  const auto norm = tiny_norm();
  const auto spec = tiny_spec();
  testing::TmpFile ckpt("saufno_rollout_v3.ckpt");
  train::save_rollout_deployable(*model, "SAU-FNO-micro", norm, spec,
                                 ckpt.path());

  // Meta round-trips the rollout section.
  const nn::CheckpointMeta meta = nn::read_checkpoint_meta(ckpt.path());
  EXPECT_EQ(meta.version, 3);
  ASSERT_TRUE(meta.has_rollout);
  EXPECT_DOUBLE_EQ(meta.rollout.dt, spec.dt);
  EXPECT_EQ(meta.rollout.state_channels, spec.state_channels);
  EXPECT_EQ(meta.rollout.power_channels, spec.power_channels);
  ASSERT_TRUE(meta.has_normalizer);

  Rng rng = testing::test_rng();
  const auto powers = stack_steps(random_power_seq(3, rng));
  const Tensor expected = train::rollout_unroll(
      *model, norm, ambient_field(norm.ambient()), powers);

  auto engine = RolloutEngine::from_checkpoint(ckpt.path());
  EXPECT_DOUBLE_EQ(engine->spec().dt, spec.dt);
  auto session = engine->open_session(ambient_field(norm.ambient()));
  std::vector<RolloutSession*> one{session.get()};
  const Tensor got = engine->run(one, {powers})[0];
  EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                        sizeof(float) *
                            static_cast<std::size_t>(expected.numel())),
            0)
      << "checkpoint round-trip changed the trajectory";
}

TEST(RolloutEngine, NonRolloutCheckpointIsRejected) {
  auto model = train::make_model("CNN", 3, 1, /*seed=*/5);
  testing::TmpFile ckpt("saufno_plain_v3.ckpt");
  train::save_deployable(*model, "CNN", 3, 1, tiny_norm(), ckpt.path());
  EXPECT_THROW(RolloutEngine::from_checkpoint(ckpt.path()),
               std::runtime_error);
}

TEST(RolloutSession, RejectsProtocolViolations) {
  RolloutEngine engine(tiny_model(), tiny_norm(), tiny_spec());
  // Wrong start shape.
  EXPECT_THROW(engine.open_session(Tensor::full({kCs + 1, kRes, kRes}, 318.f)),
               std::runtime_error);
  auto session = engine.open_session(ambient_field(318.0));
  // Wrong power shape / resolution.
  EXPECT_THROW(session->submit_step(Tensor::full({kCp + 1, kRes, kRes}, 1.f)),
               std::runtime_error);
  EXPECT_THROW(session->submit_step(Tensor::full({kCp, kRes + 2, kRes}, 1.f)),
               std::runtime_error);
  // Await without a submit; double submit.
  EXPECT_THROW(session->await_step(), std::runtime_error);
  session->submit_step(Tensor::full({kCp, kRes, kRes}, 1.f));
  EXPECT_THROW(session->submit_step(Tensor::full({kCp, kRes, kRes}, 1.f)),
               std::runtime_error);
  EXPECT_NO_THROW(session->await_step());
  EXPECT_EQ(session->steps_done(), 1);
}

TEST(RolloutEngine, MixedResolutionSessionsCoexist) {
  // Two sessions at different grids: the shape-sharded queue keeps both
  // progressing, each against its own resolution.
  auto model = tiny_model();
  const auto norm = tiny_norm();
  RolloutEngine engine(model, norm, tiny_spec());
  auto small = engine.open_session(Tensor::full({kCs, 8, 8}, 318.f));
  auto large = engine.open_session(Tensor::full({kCs, 12, 12}, 318.f));
  small->submit_step(Tensor::full({kCp, 8, 8}, 2e4f));
  large->submit_step(Tensor::full({kCp, 12, 12}, 2e4f));
  const Tensor a = small->await_step();
  const Tensor b = large->await_step();
  EXPECT_EQ(a.shape(), (Shape{kCs, 8, 8}));
  EXPECT_EQ(b.shape(), (Shape{kCs, 12, 12}));
}

TEST(RolloutSession, StepAfterEngineStopThrowsTypedShutdownError) {
  RolloutEngine engine(tiny_model(), tiny_norm(), tiny_spec());
  auto session = engine.open_session(ambient_field(318.0));
  EXPECT_NO_THROW(session->step(Tensor::full({kCp, kRes, kRes}, 1.f)));
  engine.stop();
  try {
    session->step(Tensor::full({kCp, kRes, kRes}, 1.f));
    FAIL() << "step on a stopped engine returned a value";
  } catch (const runtime::ShutdownError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rollout step refused"), std::string::npos) << msg;
    EXPECT_NE(msg.find("step 1"), std::string::npos) << msg;
  }
  // The session object itself stays valid (destruction after stop is safe).
  EXPECT_EQ(session->steps_done(), 1);
}

TEST(RolloutEngine, ShortLivedClientThreadsCanDropSessions) {
  // Rollout flavor of the engine's short-lived-client ASan regression:
  // client threads open a session, run a couple of steps, and exit while
  // other clients are still mid-flight. Session teardown must not leave
  // dangling arena blocks or touch freed engine state.
  auto model = tiny_model();
  const auto norm = tiny_norm();
  RolloutEngine engine(model, norm, tiny_spec());
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&engine, &norm, c] {
      auto session = engine.open_session(ambient_field(norm.ambient()));
      Rng rng = testing::test_rng(static_cast<std::uint64_t>(c) + 100);
      const int steps = 1 + c % 3;  // staggered lifetimes
      const auto powers = random_power_seq(steps, rng);
      for (const Tensor& p : powers) {
        const Tensor state = session->step(p.clone());
        EXPECT_EQ(state.shape(), (Shape{kCs, kRes, kRes}));
      }
      // Session (and its last result tensor) dies here, possibly while the
      // batcher is serving another client's wave.
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GE(engine.stats().requests, 8);
}

// --------------------------------------------------------------------------
// Training side
// --------------------------------------------------------------------------

data::SequenceDataset synthetic_sequences(int n, int64_t k,
                                          std::uint64_t seed) {
  // Analytic dynamics (exponential relaxation toward a power-dependent
  // fixed point) instead of the solver: fast, and a learnable target for
  // the smoke-scale trainer.
  data::SequenceDataset d;
  d.chip_name = "synthetic";
  d.resolution = static_cast<int>(kRes);
  d.ambient = 318.0;
  d.dt = 0.01;
  Rng rng(seed);
  d.init = Tensor::full({n, kCs, kRes, kRes}, 318.f);
  d.powers = Tensor::rand_uniform({n, k, kCp, kRes, kRes}, rng, 0.f, 9e4f);
  d.targets = Tensor({n, k, kCs, kRes, kRes});
  const int64_t plane = kRes * kRes;
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t i = 0; i < plane; ++i) {
      float t = 318.f;
      for (int64_t step = 0; step < k; ++step) {
        const float p = d.powers.at(((s * k + step) * kCp) * plane + i);
        const float t_inf = 318.f + p * 3e-4f;
        t = t + 0.4f * (t_inf - t);
        d.targets.at(((s * k + step) * kCs) * plane + i) = t;
      }
    }
  }
  return d;
}

TEST(RolloutTrainer, FitReducesLossAndEvalTracksHorizon) {
  const auto d = synthetic_sequences(12, 4, 9);
  const auto norm = data::fit_sequence_normalizer(d);
  const auto spec = d.spec();
  auto model = train::make_model("SAU-FNO-micro", spec.in_channels(),
                                 spec.out_channels(), 3);
  train::RolloutTrainConfig cfg;
  cfg.epochs = 6;
  cfg.teacher_forced_epochs = 3;  // exercises both loss modes
  cfg.batch_size = 4;
  cfg.lr = 2e-3;
  train::RolloutTrainer trainer(*model, norm, spec, cfg);
  const auto report = trainer.fit(d);
  ASSERT_EQ(report.epoch_loss.size(), 6u);
  EXPECT_LT(report.final_loss(), report.epoch_loss.front());
  for (const double l : report.epoch_loss) EXPECT_TRUE(std::isfinite(l));

  const auto tf = trainer.evaluate(d, /*teacher_forced=*/true);
  const auto fr = trainer.evaluate(d, /*teacher_forced=*/false);
  ASSERT_EQ(tf.mae_per_step.size(), 4u);
  ASSERT_EQ(fr.mae_per_step.size(), 4u);
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(std::isfinite(tf.mae_per_step[static_cast<std::size_t>(k)]));
    EXPECT_GE(fr.rmse_per_step[static_cast<std::size_t>(k)],
              fr.mae_per_step[static_cast<std::size_t>(k)] - 1e-12);
  }
  // Step 0 sees the reference start in both modes: identical by
  // construction, a cheap invariant that catches feedback-path mixups.
  EXPECT_DOUBLE_EQ(tf.mae_per_step[0], fr.mae_per_step[0]);
}

TEST(RolloutTrainer, RejectsMismatchedDataset) {
  auto d = synthetic_sequences(2, 3, 10);
  const auto norm = data::fit_sequence_normalizer(d);
  auto spec = d.spec();
  spec.dt = d.dt * 2;  // wrong step semantics
  auto model = train::make_model("SAU-FNO-micro", spec.in_channels(),
                                 spec.out_channels(), 3);
  train::RolloutTrainer trainer(*model, norm, spec);
  EXPECT_THROW(trainer.fit(d), std::runtime_error);
  EXPECT_THROW(trainer.evaluate(d, true), std::runtime_error);
}

}  // namespace
}  // namespace saufno
