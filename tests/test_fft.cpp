#include "fft/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace saufno {
namespace {

std::vector<cfloat> random_signal(int64_t n, Rng& rng) {
  std::vector<cfloat> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    v = cfloat(static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal()));
  }
  return x;
}

/// O(n^2) reference DFT.
std::vector<cfloat> naive_dft(const std::vector<cfloat>& x, bool inverse) {
  const int64_t n = static_cast<int64_t>(x.size());
  std::vector<cfloat> out(x.size());
  const double sign = inverse ? 1.0 : -1.0;
  for (int64_t k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (int64_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * M_PI * k * j / n;
      acc += std::complex<double>(x[static_cast<std::size_t>(j)]) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    if (inverse) acc /= static_cast<double>(n);
    out[static_cast<std::size_t>(k)] =
        cfloat(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
  return out;
}

void expect_close(const std::vector<cfloat>& a, const std::vector<cfloat>& b,
                  float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "re at " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "im at " << i;
  }
}

TEST(Fft1d, ImpulseGivesFlatSpectrum) {
  std::vector<cfloat> x(8, cfloat(0, 0));
  x[0] = cfloat(1, 0);
  fft_1d(x.data(), 8, false);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.f, 1e-6f);
    EXPECT_NEAR(v.imag(), 0.f, 1e-6f);
  }
}

TEST(Fft1d, SingleToneLandsInOneBin) {
  const int64_t n = 16;
  std::vector<cfloat> x(static_cast<std::size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    const double ang = 2.0 * M_PI * 3 * j / n;  // frequency bin 3
    x[static_cast<std::size_t>(j)] =
        cfloat(static_cast<float>(std::cos(ang)),
               static_cast<float>(std::sin(ang)));
  }
  fft_1d(x.data(), n, false);
  for (int64_t k = 0; k < n; ++k) {
    const float mag = std::abs(x[static_cast<std::size_t>(k)]);
    if (k == 3) {
      EXPECT_NEAR(mag, static_cast<float>(n), 1e-3f);
    } else {
      EXPECT_NEAR(mag, 0.f, 1e-3f);
    }
  }
}

TEST(Fft1d, LengthOneIsIdentity) {
  std::vector<cfloat> x = {cfloat(3.5f, -2.f)};
  fft_1d(x.data(), 1, false);
  EXPECT_EQ(x[0], cfloat(3.5f, -2.f));
}

// Parameterized: forward matches the naive DFT and inverse round-trips,
// for power-of-two AND Bluestein (non-pow2) lengths — including 40, the
// paper's training resolution.
class Fft1dP : public ::testing::TestWithParam<int> {};

TEST_P(Fft1dP, MatchesNaiveDft) {
  const int64_t n = GetParam();
  Rng rng(21 + n);
  auto x = random_signal(n, rng);
  auto want = naive_dft(x, false);
  auto got = x;
  fft_1d(got.data(), n, false);
  expect_close(got, want, 1e-3f * static_cast<float>(n));
}

TEST_P(Fft1dP, RoundTripIsIdentity) {
  const int64_t n = GetParam();
  Rng rng(90 + n);
  auto x = random_signal(n, rng);
  auto y = x;
  fft_1d(y.data(), n, false);
  fft_1d(y.data(), n, true);
  expect_close(y, x, 1e-4f * static_cast<float>(n));
}

TEST_P(Fft1dP, ParsevalEnergyConservation) {
  const int64_t n = GetParam();
  Rng rng(55 + n);
  auto x = random_signal(n, rng);
  double time_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  auto f = x;
  fft_1d(f.data(), n, false);
  double freq_energy = 0;
  for (const auto& v : f) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-3 * time_energy + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Fft1dP,
                         ::testing::Values(2, 4, 8, 64, 3, 5, 12, 40, 63, 100));

TEST(Fft2d, RoundTripBatch) {
  Rng rng(31);
  const int64_t b = 3, h = 12, w = 40;  // non-pow2 on purpose
  auto x = random_signal(b * h * w, rng);
  auto y = x;
  fft_2d(y.data(), b, h, w, false);
  fft_2d(y.data(), b, h, w, true);
  expect_close(y, x, 1e-2f);
}

TEST(Fft2d, SeparableAgainstNaive1d) {
  // 2-D DFT == row DFTs then column DFTs (naive on both axes).
  Rng rng(41);
  const int64_t h = 4, w = 6;
  auto x = random_signal(h * w, rng);
  // Reference: naive on rows, then naive on columns.
  std::vector<cfloat> ref = x;
  for (int64_t i = 0; i < h; ++i) {
    std::vector<cfloat> row(ref.begin() + i * w, ref.begin() + (i + 1) * w);
    row = naive_dft(row, false);
    std::copy(row.begin(), row.end(), ref.begin() + i * w);
  }
  for (int64_t j = 0; j < w; ++j) {
    std::vector<cfloat> col(static_cast<std::size_t>(h));
    for (int64_t i = 0; i < h; ++i) col[static_cast<std::size_t>(i)] = ref[static_cast<std::size_t>(i * w + j)];
    col = naive_dft(col, false);
    for (int64_t i = 0; i < h; ++i) ref[static_cast<std::size_t>(i * w + j)] = col[static_cast<std::size_t>(i)];
  }
  auto got = x;
  fft_2d(got.data(), 1, h, w, false);
  expect_close(got, ref, 1e-3f);
}

TEST(Fft2d, RealInputHasHermitianSpectrum) {
  Rng rng(51);
  const int64_t h = 8, w = 8;
  std::vector<float> real(static_cast<std::size_t>(h * w));
  for (auto& v : real) v = static_cast<float>(rng.normal());
  auto spec = fft_2d_real(real.data(), h, w);
  // X[k1, k2] == conj(X[-k1 mod h, -k2 mod w]).
  for (int64_t k1 = 0; k1 < h; ++k1) {
    for (int64_t k2 = 0; k2 < w; ++k2) {
      const auto a = spec[static_cast<std::size_t>(k1 * w + k2)];
      const auto b = spec[static_cast<std::size_t>(((h - k1) % h) * w +
                                                   (w - k2) % w)];
      EXPECT_NEAR(a.real(), b.real(), 1e-3f);
      EXPECT_NEAR(a.imag(), -b.imag(), 1e-3f);
    }
  }
}

}  // namespace
}  // namespace saufno
