#include "fft/fft.h"

#include <cmath>
#include <cstring>
#include <thread>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "autograd/spectral3d_ops.h"
#include "autograd/spectral_ops.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "testing.h"

namespace saufno {
namespace {

std::vector<cfloat> random_signal(int64_t n, Rng& rng) {
  std::vector<cfloat> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    v = cfloat(static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal()));
  }
  return x;
}

/// O(n^2) reference DFT.
std::vector<cfloat> naive_dft(const std::vector<cfloat>& x, bool inverse) {
  const int64_t n = static_cast<int64_t>(x.size());
  std::vector<cfloat> out(x.size());
  const double sign = inverse ? 1.0 : -1.0;
  for (int64_t k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (int64_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * M_PI * k * j / n;
      acc += std::complex<double>(x[static_cast<std::size_t>(j)]) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    if (inverse) acc /= static_cast<double>(n);
    out[static_cast<std::size_t>(k)] =
        cfloat(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
  return out;
}

void expect_close(const std::vector<cfloat>& a, const std::vector<cfloat>& b,
                  float tol) {
  // Shared comparison with worst-element reporting (tests/testing.h).
  testing::expect_allclose(a, b, /*rtol=*/0.f, /*atol=*/tol);
}

TEST(Fft1d, ImpulseGivesFlatSpectrum) {
  std::vector<cfloat> x(8, cfloat(0, 0));
  x[0] = cfloat(1, 0);
  fft_1d(x.data(), 8, false);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.f, 1e-6f);
    EXPECT_NEAR(v.imag(), 0.f, 1e-6f);
  }
}

TEST(Fft1d, SingleToneLandsInOneBin) {
  const int64_t n = 16;
  std::vector<cfloat> x(static_cast<std::size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    const double ang = 2.0 * M_PI * 3 * j / n;  // frequency bin 3
    x[static_cast<std::size_t>(j)] =
        cfloat(static_cast<float>(std::cos(ang)),
               static_cast<float>(std::sin(ang)));
  }
  fft_1d(x.data(), n, false);
  for (int64_t k = 0; k < n; ++k) {
    const float mag = std::abs(x[static_cast<std::size_t>(k)]);
    if (k == 3) {
      EXPECT_NEAR(mag, static_cast<float>(n), 1e-3f);
    } else {
      EXPECT_NEAR(mag, 0.f, 1e-3f);
    }
  }
}

TEST(Fft1d, LengthOneIsIdentity) {
  std::vector<cfloat> x = {cfloat(3.5f, -2.f)};
  fft_1d(x.data(), 1, false);
  EXPECT_EQ(x[0], cfloat(3.5f, -2.f));
}

// Parameterized: forward matches the naive DFT and inverse round-trips,
// for power-of-two AND Bluestein (non-pow2) lengths — including 40, the
// paper's training resolution.
class Fft1dP : public ::testing::TestWithParam<int> {};

TEST_P(Fft1dP, MatchesNaiveDft) {
  const int64_t n = GetParam();
  Rng rng(21 + n);
  auto x = random_signal(n, rng);
  auto want = naive_dft(x, false);
  auto got = x;
  fft_1d(got.data(), n, false);
  expect_close(got, want, 1e-3f * static_cast<float>(n));
}

TEST_P(Fft1dP, RoundTripIsIdentity) {
  const int64_t n = GetParam();
  Rng rng(90 + n);
  auto x = random_signal(n, rng);
  auto y = x;
  fft_1d(y.data(), n, false);
  fft_1d(y.data(), n, true);
  expect_close(y, x, 1e-4f * static_cast<float>(n));
}

TEST_P(Fft1dP, ParsevalEnergyConservation) {
  const int64_t n = GetParam();
  Rng rng(55 + n);
  auto x = random_signal(n, rng);
  double time_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  auto f = x;
  fft_1d(f.data(), n, false);
  double freq_energy = 0;
  for (const auto& v : f) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-3 * time_energy + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Fft1dP,
                         ::testing::Values(2, 4, 8, 64, 3, 5, 12, 40, 63, 100));

TEST(Fft2d, RoundTripBatch) {
  Rng rng(31);
  const int64_t b = 3, h = 12, w = 40;  // non-pow2 on purpose
  auto x = random_signal(b * h * w, rng);
  auto y = x;
  fft_2d(y.data(), b, h, w, false);
  fft_2d(y.data(), b, h, w, true);
  expect_close(y, x, 1e-2f);
}

TEST(Fft2d, SeparableAgainstNaive1d) {
  // 2-D DFT == row DFTs then column DFTs (naive on both axes).
  Rng rng(41);
  const int64_t h = 4, w = 6;
  auto x = random_signal(h * w, rng);
  // Reference: naive on rows, then naive on columns.
  std::vector<cfloat> ref = x;
  for (int64_t i = 0; i < h; ++i) {
    std::vector<cfloat> row(ref.begin() + i * w, ref.begin() + (i + 1) * w);
    row = naive_dft(row, false);
    std::copy(row.begin(), row.end(), ref.begin() + i * w);
  }
  for (int64_t j = 0; j < w; ++j) {
    std::vector<cfloat> col(static_cast<std::size_t>(h));
    for (int64_t i = 0; i < h; ++i) col[static_cast<std::size_t>(i)] = ref[static_cast<std::size_t>(i * w + j)];
    col = naive_dft(col, false);
    for (int64_t i = 0; i < h; ++i) ref[static_cast<std::size_t>(i * w + j)] = col[static_cast<std::size_t>(i)];
  }
  auto got = x;
  fft_2d(got.data(), 1, h, w, false);
  expect_close(got, ref, 1e-3f);
}

TEST(Fft2d, RealInputHasHermitianSpectrum) {
  Rng rng(51);
  const int64_t h = 8, w = 8;
  std::vector<float> real(static_cast<std::size_t>(h * w));
  for (auto& v : real) v = static_cast<float>(rng.normal());
  auto spec = fft_2d_real(real.data(), h, w);
  // X[k1, k2] == conj(X[-k1 mod h, -k2 mod w]).
  for (int64_t k1 = 0; k1 < h; ++k1) {
    for (int64_t k2 = 0; k2 < w; ++k2) {
      const auto a = spec[static_cast<std::size_t>(k1 * w + k2)];
      const auto b = spec[static_cast<std::size_t>(((h - k1) % h) * w +
                                                   (w - k2) % w)];
      EXPECT_NEAR(a.real(), b.real(), 1e-3f);
      EXPECT_NEAR(a.imag(), -b.imag(), 1e-3f);
    }
  }
}

// ---------------------------------------------------------------------------
// Real/Hermitian half-spectrum path.
// ---------------------------------------------------------------------------

std::vector<float> random_real(int64_t n, Rng& rng) {
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  return x;
}

/// Full complex forward 2-D DFT of a real plane (reference path).
std::vector<cfloat> complex_fft2(const std::vector<float>& x, int64_t h,
                                 int64_t w) {
  std::vector<cfloat> buf(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = cfloat(x[i], 0.f);
  fft_2d(buf.data(), 1, h, w, /*inverse=*/false);
  return buf;
}

class Rfft2dP : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Rfft2dP, MatchesComplexFftOnHalfSpectrum) {
  const auto [h, w] = GetParam();
  Rng rng(100 + h * w);
  const auto x = random_real(h * w, rng);
  const auto ref = complex_fft2(x, h, w);
  const int64_t wk = rfft_cols(w);
  std::vector<cfloat> half(static_cast<std::size_t>(h * wk));
  rfft_2d(x.data(), half.data(), 1, h, w, wk);
  const float tol = 1e-3f;
  for (int64_t k1 = 0; k1 < h; ++k1) {
    for (int64_t k2 = 0; k2 < wk; ++k2) {
      const cfloat got = half[static_cast<std::size_t>(k1 * wk + k2)];
      const cfloat want = ref[static_cast<std::size_t>(k1 * w + k2)];
      EXPECT_NEAR(got.real(), want.real(), tol) << k1 << "," << k2;
      EXPECT_NEAR(got.imag(), want.imag(), tol) << k1 << "," << k2;
    }
  }
}

TEST_P(Rfft2dP, IrfftRoundTripRecoversSignal) {
  const auto [h, w] = GetParam();
  Rng rng(200 + h + w);
  const auto x = random_real(h * w, rng);
  const int64_t wk = rfft_cols(w);
  std::vector<cfloat> half(static_cast<std::size_t>(h * wk));
  rfft_2d(x.data(), half.data(), 1, h, w, wk);
  std::vector<float> back(x.size());
  irfft_2d(half.data(), back.data(), 1, h, w, wk, 1.f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-4f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Rfft2dP,
    ::testing::Values(std::pair<int, int>{8, 8}, std::pair<int, int>{12, 40},
                      std::pair<int, int>{9, 6}, std::pair<int, int>{7, 7},
                      std::pair<int, int>{1, 16}, std::pair<int, int>{16, 2},
                      std::pair<int, int>{5, 13}));

// Pruned forward: keeping only the m2e columns make_mode_map would keep
// must reproduce exactly those columns of the full transform.
TEST(RfftPruned, ForwardMatchesFullOnKeptColumns) {
  for (const auto& [h, w, m1, m2] :
       {std::tuple<int, int, int, int>{16, 16, 4, 4},
        std::tuple<int, int, int, int>{12, 40, 3, 5},
        std::tuple<int, int, int, int>{4, 4, 6, 6}}) {
    const auto mm = ops::spectral::make_mode_map(h, w, m1, m2);
    const int64_t wk = mm.m2e;
    ASSERT_GE(wk, 1);
    Rng rng(300 + h * w);
    const auto x = random_real(h * w, rng);
    std::vector<cfloat> full(static_cast<std::size_t>(h * rfft_cols(w)));
    rfft_2d(x.data(), full.data(), 1, h, w, rfft_cols(w));
    std::vector<cfloat> pruned(static_cast<std::size_t>(h * wk));
    rfft_2d(x.data(), pruned.data(), 1, h, w, wk);
    for (const auto& [wr, kr] : mm.rows) {
      (void)wr;
      for (int64_t c = 0; c < wk; ++c) {
        const cfloat a = pruned[static_cast<std::size_t>(kr * wk + c)];
        const cfloat b = full[static_cast<std::size_t>(kr * rfft_cols(w) + c)];
        EXPECT_NEAR(a.real(), b.real(), 1e-4f);
        EXPECT_NEAR(a.imag(), b.imag(), 1e-4f);
      }
    }
  }
}

// Pruned inverse: truncating a real field's half-spectrum to the kept
// columns and inverting must equal the full complex inverse of the same
// spectrum with those columns (and their Hermitian mirrors) kept.
TEST(RfftPruned, TruncatedInverseMatchesFullInverse) {
  for (const auto& [h, w, m2] : {std::tuple<int, int, int>{16, 16, 4},
                                 std::tuple<int, int, int>{12, 40, 5},
                                 std::tuple<int, int, int>{8, 10, 3}}) {
    const int64_t wk = ops::spectral::make_mode_map(h, w, 4, m2).m2e;
    ASSERT_GE(wk, 1);
    Rng rng(400 + h + w);
    const auto u = random_real(h * w, rng);
    // Full spectrum of u with columns outside the kept set (and mirrors)
    // zeroed — still exactly Hermitian, so its inverse is real.
    auto spec = complex_fft2(u, h, w);
    for (int64_t k1 = 0; k1 < h; ++k1) {
      for (int64_t k2 = 0; k2 < w; ++k2) {
        const int64_t mirror = (w - k2) % w;
        if (k2 >= wk && mirror >= wk) {
          spec[static_cast<std::size_t>(k1 * w + k2)] = cfloat(0.f, 0.f);
        }
      }
    }
    auto ref = spec;
    fft_2d(ref.data(), 1, h, w, /*inverse=*/true);
    // Truncated path: first wk columns only.
    std::vector<cfloat> half(static_cast<std::size_t>(h * wk));
    for (int64_t k1 = 0; k1 < h; ++k1) {
      for (int64_t k2 = 0; k2 < wk; ++k2) {
        half[static_cast<std::size_t>(k1 * wk + k2)] =
            spec[static_cast<std::size_t>(k1 * w + k2)];
      }
    }
    std::vector<float> got(static_cast<std::size_t>(h * w));
    irfft_2d(half.data(), got.data(), 1, h, w, wk, 1.f);
    for (int64_t i = 0; i < h * w; ++i) {
      EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)].real(), 1e-4f)
          << "at " << i << " (h=" << h << ", w=" << w << ")";
      EXPECT_NEAR(ref[static_cast<std::size_t>(i)].imag(), 0.f, 1e-3f);
    }
  }
}

TEST(Rfft3d, PrunedForwardAndRoundTrip) {
  const int64_t d = 6, h = 8, w = 10, m2 = 3;
  const int64_t wk = std::min<int64_t>(4, w / 2);
  const auto map_h = ops::spectral::signed_axis_map(h, m2);
  Rng rng(500);
  const auto x = random_real(d * h * w, rng);
  // Reference: full complex 3-D transform.
  std::vector<cfloat> full(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) full[i] = cfloat(x[i], 0.f);
  fft_3d(full.data(), 1, d, h, w, /*inverse=*/false);
  // Pruned half-spectrum forward: valid at every (kd, kept kh, k3 < wk).
  std::vector<cfloat> half(static_cast<std::size_t>(d * h * wk));
  rfft_3d(x.data(), half.data(), 1, d, h, w, wk, /*mh=*/m2);
  for (int64_t kd = 0; kd < d; ++kd) {
    for (const auto& [wc, kh] : map_h) {
      (void)wc;
      for (int64_t k = 0; k < wk; ++k) {
        const cfloat a = half[static_cast<std::size_t>((kd * h + kh) * wk + k)];
        const cfloat b = full[static_cast<std::size_t>((kd * h + kh) * w + k)];
        EXPECT_NEAR(a.real(), b.real(), 2e-3f);
        EXPECT_NEAR(a.imag(), b.imag(), 2e-3f);
      }
    }
  }
  // Unpruned round trip through the 3-D half-spectrum path.
  std::vector<cfloat> half_full(static_cast<std::size_t>(d * h * rfft_cols(w)));
  rfft_3d(x.data(), half_full.data(), 1, d, h, w, rfft_cols(w), /*mh=*/h);
  std::vector<float> back(x.size());
  irfft_3d(half_full.data(), back.data(), 1, d, h, w, rfft_cols(w), h, 1.f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-4f) << "at " << i;
  }
}

// ---------------------------------------------------------------------------
// Silent-accuracy guard: forward/inverse round trip must stay at float
// round-off for EVERY length 8..193 — pow2, smooth composites and primes
// all included (primes exercise Bluestein with the largest pad factor).
// ---------------------------------------------------------------------------
TEST(FftAccuracy, RoundTripMaxErrorAcrossSizes8To193) {
  for (int64_t n = 8; n <= 193; ++n) {
    Rng rng(1000 + n);
    auto x = random_signal(n, rng);
    auto y = x;
    fft_1d(y.data(), n, false);
    fft_1d(y.data(), n, true);
    float max_err = 0.f;
    for (int64_t i = 0; i < n; ++i) {
      max_err = std::max(max_err,
                         std::abs(y[static_cast<std::size_t>(i)] -
                                  x[static_cast<std::size_t>(i)]));
    }
    EXPECT_LT(max_err, 1e-4f) << "complex round trip at n=" << n;
    // Real path round trip at the same length (h=1 exercises the row
    // algorithm alone, including the odd-length fallback).
    auto xr = random_real(n, rng);
    std::vector<cfloat> half(static_cast<std::size_t>(rfft_cols(n)));
    rfft_2d(xr.data(), half.data(), 1, 1, n, rfft_cols(n));
    std::vector<float> back(xr.size());
    irfft_2d(half.data(), back.data(), 1, 1, n, rfft_cols(n), 1.f);
    float max_err_r = 0.f;
    for (int64_t i = 0; i < n; ++i) {
      max_err_r = std::max(max_err_r,
                           std::fabs(back[static_cast<std::size_t>(i)] -
                                     xr[static_cast<std::size_t>(i)]));
    }
    EXPECT_LT(max_err_r, 1e-4f) << "real round trip at n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Plan cache.
// ---------------------------------------------------------------------------

TEST(PlanCache, ConcurrentFirstUseIsCorrectAndCached) {
  fft::clear_plan_cache();
  ASSERT_EQ(fft::plan_cache_size(), 0);
  // Serial references (computed after a second clear so the references
  // themselves rebuild plans the same way the threads will).
  Rng rng(77);
  const auto sig64 = random_signal(64, rng);
  const auto sig40 = random_signal(40, rng);
  auto ref64 = sig64, ref40 = sig40;
  fft_1d(ref64.data(), 64, false);
  fft_1d(ref40.data(), 40, false);
  fft::clear_plan_cache();

  constexpr int kThreads = 8;
  std::vector<std::vector<cfloat>> got64(kThreads, sig64);
  std::vector<std::vector<cfloat>> got40(kThreads, sig40);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      fft_1d(got64[static_cast<std::size_t>(t)].data(), 64, false);
      fft_1d(got40[static_cast<std::size_t>(t)].data(), 40, false);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    // Bit-identical to the serial result: every thread used (a copy of)
    // the same published plan tables.
    EXPECT_EQ(0, std::memcmp(got64[static_cast<std::size_t>(t)].data(),
                             ref64.data(), sizeof(cfloat) * 64));
    EXPECT_EQ(0, std::memcmp(got40[static_cast<std::size_t>(t)].data(),
                             ref40.data(), sizeof(cfloat) * 40));
  }
  // Exactly one plan per length: 64, 40, and 40's Bluestein sub-length 128.
  EXPECT_EQ(fft::plan_cache_size(), 3);
}

TEST(PlanCache, BluesteinReusesPrecomputedSpectra) {
  // Two calls at a non-pow2 length must agree bit-for-bit (shared tables)
  // and match the naive DFT.
  const int64_t n = 100;
  Rng rng(88);
  auto x = random_signal(n, rng);
  auto a = x, b = x;
  fft_1d(a.data(), n, false);
  fft_1d(b.data(), n, false);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           sizeof(cfloat) * static_cast<std::size_t>(n)));
  expect_close(a, naive_dft(x, false), 1e-3f * static_cast<float>(n));
}

}  // namespace
}  // namespace saufno
