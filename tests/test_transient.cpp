#include "thermal/transient.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "chip/chips.h"

namespace saufno {
namespace {

chip::PowerAssignment sample_power(const chip::ChipSpec& c,
                                   std::uint64_t seed) {
  chip::PowerGenerator gen(c);
  Rng rng(seed);
  return gen.sample(rng);
}

TEST(Transient, HeatingCurveIsMonotoneFromAmbient) {
  // Power step from ambient: the junction temperature must rise
  // monotonically toward the steady state (no oscillation — implicit
  // Euler on an SPD system is L-stable).
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 1);
  const auto g = thermal::build_grid(c, pa, 10, 10);
  thermal::TransientSolver::Options opt;
  opt.dt = 2e-3;
  opt.steps = 30;
  const auto res = thermal::TransientSolver(opt).solve(g);
  ASSERT_EQ(res.max_temperature_history.size(), 30u);
  for (std::size_t i = 1; i < res.max_temperature_history.size(); ++i) {
    EXPECT_GE(res.max_temperature_history[i],
              res.max_temperature_history[i - 1] - 1e-9);
  }
  EXPECT_GT(res.max_temperature_history.front(), c.ambient);
}

TEST(Transient, RelaxesToSteadyState) {
  // Long integration converges to the FdmSolver solution — the transient
  // operator's fixed point IS the steady problem.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 2);
  const auto g = thermal::build_grid(c, pa, 8, 8);
  const auto steady = thermal::FdmSolver().solve(g);

  thermal::TransientSolver::Options opt;
  opt.dt = 0.2;  // large steps: implicit Euler is unconditionally stable
  opt.steps = 200;
  const auto res = thermal::TransientSolver(opt).solve(g);
  EXPECT_NEAR(res.final_state.max_temperature(), steady.max_temperature(),
              0.05);
  double max_diff = 0;
  for (std::size_t i = 0; i < steady.temperature.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(res.final_state.temperature[i] -
                                  steady.temperature[i]));
  }
  EXPECT_LT(max_diff, 0.1);
}

TEST(Transient, CoolingFromHotStartDecays) {
  // Power-off cooldown from a hot uniform start: with q = 0 the maximum
  // principle guarantees a monotone decay toward ambient.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 3);
  auto g = thermal::build_grid(c, pa, 8, 8);
  for (auto& q : g.q) q = 0.0;  // chip switched off
  thermal::TransientSolver::Options opt;
  opt.dt = 5e-3;
  opt.steps = 20;
  const auto res = thermal::TransientSolver(opt).solve(g, /*initial_K=*/500.0);
  for (std::size_t i = 1; i < res.max_temperature_history.size(); ++i) {
    EXPECT_LE(res.max_temperature_history[i],
              res.max_temperature_history[i - 1] + 1e-9);
  }
}

TEST(Transient, SmallerTimeStepTracksSlowerRise) {
  // After the same wall-clock window the temperature must be (almost)
  // independent of dt — consistency of the integrator. Compare T(40 ms)
  // computed with dt = 4 ms vs dt = 2 ms.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 4);
  const auto g = thermal::build_grid(c, pa, 8, 8);
  thermal::TransientSolver::Options coarse;
  coarse.dt = 4e-3;
  coarse.steps = 10;
  thermal::TransientSolver::Options fine;
  fine.dt = 2e-3;
  fine.steps = 20;
  const auto a = thermal::TransientSolver(coarse).solve(g);
  const auto b = thermal::TransientSolver(fine).solve(g);
  // First-order method: agreement to a few percent of the rise.
  const double rise = a.final_state.max_temperature() - c.ambient;
  EXPECT_NEAR(a.final_state.max_temperature(),
              b.final_state.max_temperature(), 0.1 * rise + 0.05);
}

TEST(Transient, ThermalTimeConstantIsPhysical) {
  // The stack's dominant RC time constant: tau = C_total * R_total. With
  // Table I's capacities and our h_top, tau is tens of milliseconds —
  // check the step response reaches ~63% of the final rise within a
  // factor-of-5 band of that estimate. Guards against unit slips (mm vs m,
  // J vs kJ) that a pure convergence test would not catch.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 5);
  const auto g = thermal::build_grid(c, pa, 8, 8);
  const auto steady = thermal::FdmSolver().solve(g);
  const double rise_inf = steady.max_temperature() - c.ambient;

  // Analytic estimate.
  double c_total = 0, r_total;
  {
    double area = c.die_w * c.die_h;
    for (const auto& l : c.layers) {
      c_total += l.material.heat_capacity * l.thickness * area;
    }
    r_total = 1.0 / (c.h_top * area);
    for (const auto& l : c.layers) {
      r_total += 0.5 * l.thickness / (l.material.conductivity * area);
    }
  }
  const double tau = c_total * r_total;

  thermal::TransientSolver::Options opt;
  opt.dt = tau / 20;
  opt.steps = 200;
  const auto res = thermal::TransientSolver(opt).solve(g);
  // Find the time where the rise crosses 63.2% of final.
  int cross = -1;
  for (std::size_t i = 0; i < res.max_temperature_history.size(); ++i) {
    if (res.max_temperature_history[i] - c.ambient >= 0.632 * rise_inf) {
      cross = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(cross, 0) << "never reached 63% of the steady rise";
  const double t63 = (cross + 1) * opt.dt;
  EXPECT_GT(t63, tau / 5);
  EXPECT_LT(t63, tau * 5);
}

TEST(Transient, RejectsBadOptions) {
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 6);
  const auto g = thermal::build_grid(c, pa, 6, 6);
  thermal::TransientSolver::Options opt;
  opt.dt = 0;
  EXPECT_THROW(thermal::TransientSolver(opt).solve(g), std::runtime_error);
  opt.dt = -1e-3;
  EXPECT_THROW(thermal::TransientSolver(opt).solve(g), std::runtime_error);
  opt.dt = 1e-3;
  opt.steps = 0;
  EXPECT_THROW(thermal::TransientSolver(opt).solve(g), std::runtime_error);
  opt.steps = -4;
  EXPECT_THROW(thermal::TransientSolver(opt).solve(g), std::runtime_error);
}

TEST(Transient, SolveFromRejectsMismatchedField) {
  // A field sized for a different grid must be rejected up front, not read
  // out of bounds inside the stencil loop.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 7);
  const auto g = thermal::build_grid(c, pa, 6, 6);
  thermal::TransientSolver solver;
  const auto n = static_cast<std::size_t>(g.num_cells());
  EXPECT_THROW(solver.solve_from(g, std::vector<double>(n - 1, g.ambient)),
               std::runtime_error);
  EXPECT_THROW(solver.solve_from(g, std::vector<double>(n + 1, g.ambient)),
               std::runtime_error);
  EXPECT_THROW(solver.solve_from(g, {}), std::runtime_error);
  EXPECT_NO_THROW(solver.solve_from(g, std::vector<double>(n, g.ambient)));
}

TEST(Transient, ChainedPhasesMatchOneLongRun) {
  // Splitting a constant-power window into two solve_from phases must
  // reproduce the single-run trajectory: the carried field is the whole
  // state of the integrator.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 8);
  const auto g = thermal::build_grid(c, pa, 8, 8);
  thermal::TransientSolver::Options whole;
  whole.dt = 5e-3;
  whole.steps = 12;
  const auto full = thermal::TransientSolver(whole).solve(g);

  thermal::TransientSolver::Options half = whole;
  half.steps = 6;
  thermal::TransientSolver solver(half);
  const auto a = solver.solve(g);
  const auto b = solver.solve_from(g, a.final_state.temperature);
  ASSERT_EQ(full.max_temperature_history.size(), 12u);
  for (int k = 0; k < 6; ++k) {
    EXPECT_NEAR(a.max_temperature_history[static_cast<std::size_t>(k)],
                full.max_temperature_history[static_cast<std::size_t>(k)],
                1e-6);
    EXPECT_NEAR(b.max_temperature_history[static_cast<std::size_t>(k)],
                full.max_temperature_history[static_cast<std::size_t>(k + 6)],
                1e-6);
  }
}

TEST(Transient, StepCallbackSeesEveryFieldAndFinalMatches) {
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 9);
  const auto g = thermal::build_grid(c, pa, 6, 6);
  thermal::TransientSolver::Options opt;
  opt.dt = 2e-3;
  opt.steps = 5;
  std::vector<int> seen;
  std::vector<double> step_max;
  std::vector<double> last_field;
  const auto res = thermal::TransientSolver(opt).solve_from(
      g, std::vector<double>(static_cast<std::size_t>(g.num_cells()),
                             g.ambient),
      [&](int step, const std::vector<double>& field) {
        seen.push_back(step);
        ASSERT_EQ(field.size(), static_cast<std::size_t>(g.num_cells()));
        step_max.push_back(*std::max_element(field.begin(), field.end()));
        last_field = field;
      });
  ASSERT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
  // The last callback field IS the final state.
  ASSERT_EQ(last_field.size(), res.final_state.temperature.size());
  for (std::size_t i = 0; i < last_field.size(); ++i) {
    EXPECT_DOUBLE_EQ(last_field[i], res.final_state.temperature[i]);
  }
  // And per-step maxima line up with the returned history.
  ASSERT_EQ(res.max_temperature_history.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(step_max[k], res.max_temperature_history[k]);
  }
}

}  // namespace
}  // namespace saufno
