// Golden end-to-end regression fixtures.
//
// tests/data/ holds a committed deterministic checkpoint (SAU-FNO-micro,
// full architecture: spectral convs + U-Net + attention), a raw input
// batch, and the kelvin predictions the seed of this test produced for
// them. The tests pin Trainer::predict and the InferenceEngine serving path
// to those stored values, so a spectral or runtime refactor that drifts the
// physics fails HERE with a worst-element report instead of silently
// shifting every downstream number.
//
// Regenerate after an INTENTIONAL numerical change with
//   SAUFNO_REGEN_GOLDEN=1 ./build/test_golden
// and commit the refreshed files (see README "Testing").

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/normalizer.h"
#include "runtime/inference_engine.h"
#include "testing.h"
#include "train/model_zoo.h"
#include "train/rollout.h"
#include "train/trainer.h"

#ifndef SAUFNO_TEST_DATA_DIR
#define SAUFNO_TEST_DATA_DIR "tests/data"
#endif

namespace saufno {
namespace {

// The fixtures' provenance, fully deterministic: our own Rng drives both
// the weight init and the input draw, so regeneration on any platform
// produces identical bytes — only the model OUTPUT depends on float
// arithmetic, which is exactly what the tolerance guards.
constexpr std::uint64_t kModelSeed = 77;
constexpr std::uint64_t kInputSeed = 123;
constexpr int64_t kRes = 12;
constexpr int64_t kBatch = 2;
// "Tolerance 1e-6": relative, so ~3e-4 K on a ~320 K field — tight enough
// to catch any algorithmic drift, loose enough for compiler-to-compiler
// float reassociation.
constexpr float kRtol = 1e-6f;
constexpr float kAtol = 1e-6f;

std::string fixture(const char* name) {
  return std::string(SAUFNO_TEST_DATA_DIR) + "/" + name;
}

data::Normalizer golden_norm() {
  return data::Normalizer::from_stats(/*ambient=*/318.0, /*power_scale=*/2.5,
                                      /*temp_scale=*/7.25,
                                      /*n_power_channels=*/1);
}

std::shared_ptr<nn::Module> golden_model() {
  return train::make_model("SAU-FNO-micro", /*in_channels=*/3,
                           /*out_channels=*/1, kModelSeed);
}

Tensor golden_input() {
  Rng rng(kInputSeed);
  return Tensor::rand_uniform({kBatch, 3, kRes, kRes}, rng, 0.f, 5.f);
}

bool regen_requested() {
  const char* v = std::getenv("SAUFNO_REGEN_GOLDEN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TEST(Golden, RegenerateFixturesWhenRequested) {
  if (!regen_requested()) {
    GTEST_SKIP() << "set SAUFNO_REGEN_GOLDEN=1 to rewrite tests/data/";
  }
  auto model = golden_model();
  const auto norm = golden_norm();
  train::save_deployable(*model, "SAU-FNO-micro", 3, 1, norm,
                         fixture("golden.ckpt"));
  const Tensor input = golden_input();
  testing::write_tensor_file(input, fixture("golden_input.bin"));
  train::Trainer trainer(*model, norm);
  testing::write_tensor_file(trainer.predict(input),
                             fixture("golden_output.bin"));
  std::printf("rewrote golden fixtures under %s\n", SAUFNO_TEST_DATA_DIR);
}

TEST(Golden, CheckpointWeightsMatchDeterministicInit) {
  // The committed checkpoint must BIT-match a fresh deterministic build of
  // the same model: catches accidental drift in the Rng stream or the init
  // rules, which the tolerance-based output checks below would ascribe to
  // numerics.
  auto fresh = golden_model();
  const auto loaded = train::load_deployable(fixture("golden.ckpt"));
  EXPECT_EQ(loaded.meta.model_name, "SAU-FNO-micro");
  const auto a = nn::state_dict(*fresh);
  const auto b = nn::state_dict(*loaded.model);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, t] : a) {
    const auto it = b.find(name);
    ASSERT_NE(it, b.end()) << name;
    ASSERT_EQ(it->second.shape(), t.shape()) << name;
    EXPECT_EQ(std::memcmp(it->second.data(), t.data(),
                          sizeof(float) * static_cast<std::size_t>(t.numel())),
              0)
        << "parameter " << name
        << " differs from the deterministic init (Rng or init-rule drift?)";
  }
}

TEST(Golden, TrainerPredictMatchesFixture) {
  const auto loaded = train::load_deployable(fixture("golden.ckpt"));
  ASSERT_TRUE(loaded.meta.has_normalizer);
  const Tensor input = testing::read_tensor_file(fixture("golden_input.bin"));
  const Tensor want = testing::read_tensor_file(fixture("golden_output.bin"));
  ASSERT_EQ(input.shape(), (Shape{kBatch, 3, kRes, kRes}));
  train::Trainer trainer(*loaded.model, loaded.meta.normalizer);
  const Tensor got = trainer.predict(input);
  testing::expect_allclose(got, want, kRtol, kAtol,
                           "Trainer::predict kelvin field");
}

TEST(Golden, CommittedInputMatchesDeterministicDraw) {
  // Same rationale as the weights check: the input file must equal the
  // seeded draw bit-for-bit, so fixture staleness is distinguishable from
  // numeric drift.
  const Tensor stored = testing::read_tensor_file(fixture("golden_input.bin"));
  const Tensor drawn = golden_input();
  ASSERT_EQ(stored.shape(), drawn.shape());
  EXPECT_EQ(std::memcmp(stored.data(), drawn.data(),
                        sizeof(float) *
                            static_cast<std::size_t>(drawn.numel())),
            0);
}

TEST(Golden, InferenceEngineServesFixtureKelvin) {
  // The serving path on the same artifact: raw power maps in, kelvin out,
  // within the golden tolerance of the stored predictions (and therefore
  // bit-identical to Trainer::predict, which PR 2's equivalence test pins).
  runtime::InferenceEngine::Config cfg;
  cfg.max_batch = 2;
  cfg.max_wait_us = 50000;
  auto engine =
      runtime::InferenceEngine::from_checkpoint(fixture("golden.ckpt"), cfg);
  ASSERT_TRUE(engine->has_normalizer());
  const Tensor input = testing::read_tensor_file(fixture("golden_input.bin"));
  const Tensor want = testing::read_tensor_file(fixture("golden_output.bin"));
  const int64_t sample = 3 * kRes * kRes;
  const int64_t out_sample = kRes * kRes;
  std::vector<std::future<Tensor>> futs;
  for (int64_t i = 0; i < kBatch; ++i) {
    Tensor one({3, kRes, kRes});
    std::memcpy(one.data(), input.data() + i * sample,
                sizeof(float) * static_cast<std::size_t>(sample));
    futs.push_back(engine->submit(std::move(one)));
  }
  for (int64_t i = 0; i < kBatch; ++i) {
    const Tensor got = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(got.shape(), (Shape{1, kRes, kRes}));
    Tensor expect({1, kRes, kRes});
    std::memcpy(expect.data(), want.data() + i * out_sample,
                sizeof(float) * static_cast<std::size_t>(out_sample));
    testing::expect_allclose(got, expect, kRtol, kAtol,
                             "engine kelvin sample " + std::to_string(i));
  }
}

}  // namespace
}  // namespace saufno
