#include "core/attention.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

TEST(Attention, PreservesShape) {
  Rng rng(1);
  core::SelfAttentionBlock attn(6, 4, rng);
  Var x(Tensor::randn({2, 6, 5, 5}, rng), false);
  EXPECT_EQ(attn.forward(x).shape(), (Shape{2, 6, 5, 5}));
}

TEST(Attention, MeshInvariantAcrossResolutions) {
  // The same parameter set must accept any spatial size (1x1 convs only).
  Rng rng(2);
  core::SelfAttentionBlock attn(4, 4, rng);
  for (int64_t n : {4, 7, 12, 16}) {
    Var x(Tensor::randn({1, 4, n, n}, rng), false);
    EXPECT_EQ(attn.forward(x).shape(), (Shape{1, 4, n, n}));
  }
}

TEST(Attention, ResidualPathDominatesAtZeroOutputWeight) {
  // Zeroing W_o turns the block into the identity (residual only).
  Rng rng(3);
  core::SelfAttentionBlock attn(4, 4, rng);
  for (auto& [name, p] : attn.named_parameters()) {
    if (name.rfind("wo", 0) == 0) p.value().fill_(0.f);
  }
  Var x(Tensor::randn({1, 4, 6, 6}, rng), false);
  EXPECT_TRUE(attn.forward(x).value().allclose(x.value(), 1e-5f, 1e-6f));
}

TEST(Attention, UniformFieldStaysUniform) {
  // On a spatially constant field every position attends identically, so
  // the output must also be spatially constant per channel.
  Rng rng(4);
  core::SelfAttentionBlock attn(3, 3, rng);
  Tensor x({1, 3, 4, 4});
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t i = 0; i < 16; ++i) x.at(c * 16 + i) = 1.f + 0.5f * c;
  }
  Tensor y = attn.forward(Var(x, false)).value();
  for (int64_t c = 0; c < 3; ++c) {
    const float first = y.at(c * 16);
    for (int64_t i = 1; i < 16; ++i) {
      EXPECT_NEAR(y.at(c * 16 + i), first, 1e-4f);
    }
  }
}

TEST(Attention, BatchItemsIndependent) {
  // Attention must not mix information across the batch dimension.
  Rng rng(5);
  core::SelfAttentionBlock attn(3, 3, rng);
  Rng dr(6);
  Tensor a = Tensor::randn({1, 3, 4, 4}, dr);
  Tensor b = Tensor::randn({1, 3, 4, 4}, dr);
  Tensor both = cat({a, b}, 0);
  Tensor y_both = attn.forward(Var(both, false)).value();
  Tensor y_a = attn.forward(Var(a, false)).value();
  Tensor y_b = attn.forward(Var(b, false)).value();
  EXPECT_TRUE(slice(y_both, 0, 0, 1).allclose(y_a, 1e-4f, 1e-5f));
  EXPECT_TRUE(slice(y_both, 0, 1, 1).allclose(y_b, 1e-4f, 1e-5f));
}

TEST(Attention, GradientsFlowToAllProjections) {
  Rng rng(7);
  core::SelfAttentionBlock attn(4, 3, rng);
  Var x(Tensor::randn({1, 4, 4, 4}, rng), false);
  ops::sum_all(ops::square(attn.forward(x))).backward();
  for (auto& [name, p] : attn.named_parameters()) {
    EXPECT_GT(sum_all(abs(p.grad())), 0.f) << "no grad reached " << name;
  }
}

TEST(Attention, GradcheckSmall) {
  Rng rng(8);
  core::SelfAttentionBlock attn(2, 2, rng);
  Var x(Tensor::randn({1, 2, 3, 3}, rng), true);
  testing::expect_gradients_match(
      [&attn](std::vector<Var>& ls) {
        return ops::sum_all(ops::square(attn.forward(ls[0])));
      },
      {x}, /*eps=*/1e-2f, /*rtol=*/4e-2f, /*atol=*/4e-3f);
}

}  // namespace
}  // namespace saufno
