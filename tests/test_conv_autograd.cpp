#include "autograd/conv_ops.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

using testing::expect_gradients_match;

TEST(Conv2dForward, IdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Rng rng(1);
  Tensor x = Tensor::randn({1, 1, 3, 3}, rng);
  Var xv(x, false);
  Var w(Tensor::ones({1, 1, 1, 1}), false);
  Var out = ops::conv2d(xv, w, Var(), 1, 0);
  EXPECT_TRUE(out.value().allclose(x));
}

TEST(Conv2dForward, KnownAveragingKernel) {
  // 2x2 all-ones kernel on a ramp.
  Var x(Tensor({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9}), false);
  Var w(Tensor::ones({1, 1, 2, 2}), false);
  Var out = ops::conv2d(x, w, Var(), 1, 0);
  EXPECT_TRUE(out.value().allclose(Tensor({1, 1, 2, 2}, {12, 16, 24, 28})));
}

TEST(Conv2dForward, PaddingKeepsSize) {
  Rng rng(2);
  Var x(Tensor::randn({2, 3, 5, 5}, rng), false);
  Var w(Tensor::randn({4, 3, 3, 3}, rng), false);
  Var b(Tensor::randn({4}, rng), false);
  Var out = ops::conv2d(x, w, b, 1, 1);
  EXPECT_EQ(out.shape(), (Shape{2, 4, 5, 5}));
}

TEST(Conv2dForward, StrideTwoHalves) {
  Rng rng(3);
  Var x(Tensor::randn({1, 2, 6, 6}, rng), false);
  Var w(Tensor::randn({2, 2, 3, 3}, rng), false);
  Var out = ops::conv2d(x, w, Var(), 2, 1);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 3, 3}));
}

TEST(Conv2dForward, BiasBroadcasts) {
  Var x(Tensor::zeros({1, 1, 2, 2}), false);
  Var w(Tensor::ones({3, 1, 1, 1}), false);
  Var b(Tensor({3}, {1.f, 2.f, 3.f}), false);
  Var out = ops::conv2d(x, w, b, 1, 0);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(out.value().at(c * 4 + i), static_cast<float>(c + 1));
    }
  }
}

TEST(Conv2dForward, ChannelMismatchThrows) {
  Var x(Tensor::zeros({1, 2, 4, 4}), false);
  Var w(Tensor::zeros({1, 3, 3, 3}), false);
  EXPECT_THROW(ops::conv2d(x, w, Var(), 1, 1), std::runtime_error);
}

TEST(Conv2dGrad, FullGradcheckSmall) {
  Rng rng(4);
  Var x(Tensor::randn({2, 2, 4, 4}, rng), true);
  Var w(Tensor::randn({3, 2, 3, 3}, rng, 0.f, 0.5f), true);
  Var b(Tensor::randn({3}, rng), true);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::mse_loss(
            ops::conv2d(ls[0], ls[1], ls[2], 1, 1),
            Var(Tensor::zeros({2, 3, 4, 4}), false));
      },
      {x, w, b});
}

TEST(Conv2dGrad, StridedGradcheck) {
  Rng rng(5);
  Var x(Tensor::randn({1, 2, 5, 5}, rng), true);
  Var w(Tensor::randn({2, 2, 3, 3}, rng, 0.f, 0.5f), true);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var out = ops::conv2d(ls[0], ls[1], Var(), 2, 0);
        return ops::sum_all(ops::square(out));
      },
      {x, w});
}

TEST(Conv2dGrad, PointwiseKernelGradcheck) {
  Rng rng(6);
  Var x(Tensor::randn({2, 3, 3, 3}, rng), true);
  Var w(Tensor::randn({2, 3, 1, 1}, rng), true);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        Var out = ops::conv2d(ls[0], ls[1], Var(), 1, 0);
        return ops::sum_all(ops::square(out));
      },
      {x, w});
}

TEST(MaxPool, ForwardValuesAndShape) {
  Var x(Tensor({1, 1, 4, 4},
               {1, 2, 3, 4,
                5, 6, 7, 8,
                9, 10, 11, 12,
                13, 14, 15, 16}),
        false);
  Var out = ops::maxpool2d(x, 2);
  EXPECT_TRUE(out.value().allclose(Tensor({1, 1, 2, 2}, {6, 8, 14, 16})));
}

TEST(MaxPool, GradientScattersToArgmax) {
  Var x(Tensor({1, 1, 2, 2}, {1, 4, 3, 2}), true);
  Var loss = ops::sum_all(ops::maxpool2d(x, 2));
  loss.backward();
  EXPECT_TRUE(x.grad().allclose(Tensor({1, 1, 2, 2}, {0, 1, 0, 0})));
}

TEST(MaxPool, GradcheckAwayFromTies) {
  Rng rng(7);
  // Random values make exact ties measure-zero; jitter eps small enough
  // not to change the argmax.
  Var x(Tensor::randn({2, 2, 4, 4}, rng), true);
  expect_gradients_match(
      [](std::vector<Var>& ls) {
        return ops::sum_all(ops::square(ops::maxpool2d(ls[0], 2)));
      },
      {x}, /*eps=*/1e-3f);
}

TEST(MaxPool, InputSmallerThanKernelThrows) {
  Var x(Tensor::zeros({1, 1, 1, 1}), false);
  EXPECT_THROW(ops::maxpool2d(x, 2), std::runtime_error);
}

}  // namespace
}  // namespace saufno
