#include "thermal/fdm_solver.h"

#include <cmath>

#include <gtest/gtest.h>

#include "chip/chips.h"
#include "thermal/compact_rc.h"

namespace saufno {
namespace {

using chip::ChipSpec;

chip::PowerAssignment sample_power(const ChipSpec& c, std::uint64_t seed) {
  chip::PowerGenerator gen(c);
  Rng rng(seed);
  return gen.sample(rng);
}

TEST(Grid, LayoutMatchesSpec) {
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 1);
  const auto g = thermal::build_grid(c, pa, 12, 12);
  EXPECT_EQ(g.nx, 12);
  EXPECT_EQ(g.ny, 12);
  // chip1: 2 device (1 cell each) + TIM (1) + spreader (2) + sink (3) = 8.
  EXPECT_EQ(g.nz, 8);
  EXPECT_EQ(g.layer_of_z.front(), 0);
  EXPECT_EQ(g.layer_of_z.back(), static_cast<int>(c.layers.size()) - 1);
  // z-cell thicknesses sum to the physical stack height.
  double stack = 0;
  for (const auto& l : c.layers) stack += l.thickness;
  double zsum = 0;
  for (double dz : g.dz) zsum += dz;
  EXPECT_NEAR(zsum, stack, 1e-12);
}

TEST(Grid, PowerConservedThroughVoxelization) {
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 2);
  const auto g = thermal::build_grid(c, pa, 16, 16);
  EXPECT_NEAR(g.total_power(), pa.total(), 1e-6 * pa.total());
}

TEST(Grid, RefinementPreservesPowerAndGeometry) {
  const auto c = chip::make_chip2();
  const auto pa = sample_power(c, 3);
  const auto g1 = thermal::build_grid(c, pa, 10, 10, 1);
  const auto g2 = thermal::build_grid(c, pa, 10, 10, 2);
  EXPECT_EQ(g2.nx, 20);
  EXPECT_EQ(g2.nz, g1.nz * 2);
  EXPECT_NEAR(g1.total_power(), g2.total_power(), 1e-6 * g1.total_power());
}

TEST(FdmSolver, ConvergesOnChip1) {
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 4);
  const auto g = thermal::build_grid(c, pa, 16, 16);
  thermal::FdmSolver solver;
  const auto sol = solver.solve(g);
  EXPECT_TRUE(sol.converged);
  EXPECT_LT(sol.residual, 1e-7);
  EXPECT_GT(sol.iterations, 0);
}

TEST(FdmSolver, TemperatureAboveAmbientEverywhere) {
  // With positive power and positive-k materials the steady field is
  // strictly above ambient (maximum principle).
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 5);
  const auto g = thermal::build_grid(c, pa, 12, 12);
  const auto sol = thermal::FdmSolver().solve(g);
  for (double t : sol.temperature) EXPECT_GT(t, c.ambient);
}

TEST(FdmSolver, EnergyBalanceAtBoundaries) {
  // In steady state the heat leaving through the Robin faces equals the
  // injected power. Flux out = sum h_eff A (T_face - T_amb), with the
  // half-cell conduction in series exactly as the solver discretizes it.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 6);
  const auto g = thermal::build_grid(c, pa, 12, 12);
  thermal::FdmSolver::Options opt;
  opt.tol = 1e-10;
  const auto sol = thermal::FdmSolver(opt).solve(g);
  ASSERT_TRUE(sol.converged);
  const double a = g.dx * g.dy;
  double out = 0.0;
  for (int iy = 0; iy < g.ny; ++iy) {
    for (int ix = 0; ix < g.nx; ++ix) {
      {
        const int iz = g.nz - 1;
        const double k = g.k[static_cast<std::size_t>(g.cell(iz, iy, ix))];
        const double r = 0.5 * g.dz[static_cast<std::size_t>(iz)] / k + 1.0 / g.h_top;
        out += (sol.temperature[static_cast<std::size_t>(g.cell(iz, iy, ix))] -
                g.ambient) *
               a / r;
      }
      {
        const double k = g.k[static_cast<std::size_t>(g.cell(0, iy, ix))];
        const double r = 0.5 * g.dz[0] / k + 1.0 / g.h_bottom;
        out += (sol.temperature[static_cast<std::size_t>(g.cell(0, iy, ix))] -
                g.ambient) *
               a / r;
      }
    }
  }
  EXPECT_NEAR(out, pa.total(), 1e-3 * pa.total());
}

TEST(FdmSolver, MonotoneInPower) {
  // Doubling every block power doubles the temperature rise (linearity of
  // the steady heat equation with linear BCs).
  const auto c = chip::make_chip1();
  auto pa = sample_power(c, 7);
  const auto g1 = thermal::build_grid(c, pa, 10, 10);
  auto pa2 = pa;
  for (auto& layer : pa2.power) {
    for (double& p : layer) p *= 2.0;
  }
  const auto g2 = thermal::build_grid(c, pa2, 10, 10);
  thermal::FdmSolver solver;
  const auto s1 = solver.solve(g1);
  const auto s2 = solver.solve(g2);
  const double rise1 = s1.max_temperature() - c.ambient;
  const double rise2 = s2.max_temperature() - c.ambient;
  EXPECT_NEAR(rise2, 2.0 * rise1, 1e-3 * rise2);
}

TEST(FdmSolver, HotspotSitsInHighestDensityBlock) {
  // Put all power into one core block: the lateral argmax of the core
  // layer temperature must fall inside that block's rectangle.
  const auto c = chip::make_chip1();
  chip::PowerAssignment pa;
  pa.power.resize(c.layers.size());
  pa.power[0] = {1e-6, 1e-6, 1e-6};         // cache layer: negligible
  pa.power[1] = {80.0, 1e-6, 1e-6, 1e-6};   // everything in "Core"
  const int res = 16;
  const auto g = thermal::build_grid(c, pa, res, res);
  const auto sol = thermal::FdmSolver().solve(g);
  const auto map = sol.layer_map(g, 1);
  int best = 0;
  for (int i = 1; i < res * res; ++i) {
    if (map[static_cast<std::size_t>(i)] > map[static_cast<std::size_t>(best)]) best = i;
  }
  const double y = (best / res + 0.5) / res;
  const double x = (best % res + 0.5) / res;
  const auto* core = c.layers[1].floorplan.find("Core");
  ASSERT_NE(core, nullptr);
  EXPECT_GE(x, core->x);
  EXPECT_LE(x, core->x + core->w);
  EXPECT_GE(y, core->y);
  EXPECT_LE(y, core->h + core->y);
}

TEST(FdmSolver, RefinedMeshAgreesWithCoarse) {
  // The refine=2 "COMSOL" mesh must agree with the production mesh within
  // discretization error (~tenths of a kelvin), mirroring Table IV where
  // COMSOL and MTA differ by < 0.2 K.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 8);
  thermal::FdmSolver solver;
  const auto s1 = solver.solve(thermal::build_grid(c, pa, 12, 12, 1));
  const auto s2 = solver.solve(thermal::build_grid(c, pa, 12, 12, 2));
  EXPECT_NEAR(s1.max_temperature(), s2.max_temperature(), 0.8);
  EXPECT_NEAR(s1.min_temperature(), s2.min_temperature(), 0.8);
}

TEST(FdmSolver, LayerMapShapeAndRange) {
  const auto c = chip::make_chip3();
  const auto pa = sample_power(c, 9);
  const auto g = thermal::build_grid(c, pa, 14, 14);
  const auto sol = thermal::FdmSolver().solve(g);
  const auto map = sol.layer_map(g, 1);
  EXPECT_EQ(map.size(), 14u * 14u);
  for (float t : map) {
    EXPECT_GT(t, c.ambient);
    EXPECT_LT(t, 600.0);  // sanity: no runaway temperatures
  }
}

TEST(FdmSolver, NoEscapePathIsRejected) {
  auto c = chip::make_chip1();
  c.h_top = 0.0;
  c.h_bottom = 0.0;
  const auto pa = sample_power(c, 10);
  const auto g = thermal::build_grid(c, pa, 8, 8);
  EXPECT_THROW(thermal::FdmSolver().solve(g), std::runtime_error);
}

class RcAllChipsP : public ::testing::TestWithParam<std::string> {};

TEST_P(RcAllChipsP, CompactRcSanityAndHotspotBias) {
  const auto c = chip::chip_by_name(GetParam());
  const auto pa = sample_power(c, 11);
  thermal::CompactRcSolver rc(c);
  const auto res = rc.solve(pa);
  EXPECT_GT(res.blocks.size(), 3u);
  EXPECT_GT(res.min_temperature(), c.ambient);
  EXPECT_GT(res.max_temperature(), res.min_temperature());

  // The paper's Table IV: HotSpot reads systematically HOTTER than the
  // field solvers. Verify the bias direction against our FDM solver.
  const auto g = thermal::build_grid(c, pa, 16, 16);
  const auto fdm = thermal::FdmSolver().solve(g);
  EXPECT_GT(res.max_temperature(), fdm.max_temperature() - 1.0);
}

INSTANTIATE_TEST_SUITE_P(Chips, RcAllChipsP,
                         ::testing::Values("chip1", "chip2", "chip3"));

TEST(CompactRc, GridModeMatchesBlockModeBias) {
  // Grid mode shares block mode's derated sink, so both read hotter than
  // the field solver; grid mode resolves intra-block structure, so its
  // max is at least the neighbourhood of block mode's.
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 21);
  thermal::CompactRcSolver rc(c);
  const auto block = rc.solve(pa);
  const auto grid = rc.solve_grid(pa, 12);
  EXPECT_TRUE(grid.converged);
  EXPECT_GT(grid.iterations, 0);
  EXPECT_GT(grid.min_temperature, c.ambient);
  EXPECT_GT(grid.max_temperature, block.max_temperature() - 2.0);
  // Both biased above the field solver.
  const auto fdm =
      thermal::FdmSolver().solve(thermal::build_grid(c, pa, 12, 12));
  EXPECT_GT(grid.max_temperature, fdm.max_temperature());
}

TEST(CompactRc, GridModeRejectsTinyGrid) {
  const auto c = chip::make_chip1();
  const auto pa = sample_power(c, 22);
  thermal::CompactRcSolver rc(c);
  EXPECT_THROW(rc.solve_grid(pa, 2), std::runtime_error);
}

TEST(CompactRc, MoreCorePowerRaisesCoreBlock) {
  const auto c = chip::make_chip1();
  chip::PowerAssignment pa;
  pa.power.resize(c.layers.size());
  pa.power[0] = {5.0, 5.0, 5.0};
  pa.power[1] = {10.0, 2.0, 2.0, 5.0};
  thermal::CompactRcSolver rc(c);
  const auto base = rc.solve(pa);
  auto hot = pa;
  hot.power[1][0] = 40.0;  // crank the core
  const auto hotter = rc.solve(hot);
  double base_core = 0, hot_core = 0;
  for (const auto& b : base.blocks) {
    if (b.name == "Core") base_core = b.temperature;
  }
  for (const auto& b : hotter.blocks) {
    if (b.name == "Core") hot_core = b.temperature;
  }
  EXPECT_GT(hot_core, base_core + 1.0);
}

}  // namespace
}  // namespace saufno
