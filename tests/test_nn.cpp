#include "nn/module.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "testing.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

TEST(Linear, ShapeAndAffine) {
  Rng rng(1);
  nn::Linear lin(4, 3, rng);
  Var x(Tensor::randn({5, 4}, rng), false);
  Var y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
  // Leading dims flatten through.
  Var x3(Tensor::randn({2, 5, 4}, rng), false);
  EXPECT_EQ(lin.forward(x3).shape(), (Shape{2, 5, 3}));
}

TEST(Linear, ZeroInputGivesBias) {
  Rng rng(2);
  nn::Linear lin(3, 2, rng);
  Var x(Tensor::zeros({1, 3}), false);
  Var y = lin.forward(x);
  auto named = lin.named_parameters();
  Tensor bias;
  for (auto& [n, v] : named) {
    if (n == "bias") bias = v.value();
  }
  EXPECT_TRUE(y.value().reshape({2}).allclose(bias));
}

TEST(Linear, WrongLastDimThrows) {
  Rng rng(3);
  nn::Linear lin(3, 2, rng);
  Var x(Tensor::zeros({2, 4}), false);
  EXPECT_THROW(lin.forward(x), std::runtime_error);
}

TEST(Linear, NoBiasOption) {
  Rng rng(4);
  nn::Linear lin(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  Var x(Tensor::zeros({1, 3}), false);
  EXPECT_TRUE(lin.forward(x).value().allclose(Tensor::zeros({1, 2})));
}

TEST(PointwiseConv, ActsPerPixel) {
  Rng rng(5);
  nn::PointwiseConv pw(2, 3, rng);
  Var x(Tensor::randn({2, 2, 4, 4}, rng), false);
  Var y = pw.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 4, 4}));
  // Per-pixel property: permuting spatial positions commutes with the op.
  Tensor xp = permute(x.value(), {0, 1, 3, 2});  // transpose H/W
  Var yp = pw.forward(Var(xp, false));
  Tensor y_t = permute(y.value(), {0, 1, 3, 2});
  EXPECT_TRUE(yp.value().allclose(y_t, 1e-4f, 1e-5f));
}

TEST(PointwiseConv, GradFlowsToWeights) {
  Rng rng(6);
  nn::PointwiseConv pw(2, 2, rng);
  Var x(Tensor::randn({1, 2, 3, 3}, rng), false);
  Var loss = ops::sum_all(ops::square(pw.forward(x)));
  loss.backward();
  for (auto& p : pw.parameters()) {
    EXPECT_GT(sum_all(abs(p.grad())), 0.f);
  }
}

TEST(Conv2dModule, EndToEndGradcheck) {
  Rng rng(7);
  nn::Conv2d conv(2, 2, 3, rng, 1, 1);
  Var x(Tensor::randn({1, 2, 4, 4}, rng), true);
  auto params = conv.parameters();
  std::vector<Var> leaves = {x};
  for (auto& p : params) leaves.push_back(p);
  testing::expect_gradients_match(
      [&conv](std::vector<Var>& ls) {
        return ops::sum_all(ops::square(conv.forward(ls[0])));
      },
      leaves);
}

TEST(ModuleTree, NamedParametersDottedPaths) {
  Rng rng(8);
  auto seq = std::make_shared<nn::Sequential>();
  seq->append(std::make_shared<nn::Linear>(4, 8, rng));
  seq->append(std::make_shared<nn::ReLU>());
  seq->append(std::make_shared<nn::Linear>(8, 2, rng));
  auto named = seq->named_parameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "0.weight");
  EXPECT_EQ(named[1].first, "0.bias");
  EXPECT_EQ(named[2].first, "2.weight");
  EXPECT_EQ(named[3].first, "2.bias");
  EXPECT_EQ(seq->num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(ModuleTree, ZeroGradClearsAll) {
  Rng rng(9);
  nn::Linear lin(3, 3, rng);
  Var x(Tensor::randn({2, 3}, rng), false);
  ops::sum_all(lin.forward(x)).backward();
  bool any_nonzero = false;
  for (auto& p : lin.parameters()) {
    if (sum_all(abs(p.grad())) > 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  lin.zero_grad();
  for (auto& p : lin.parameters()) {
    EXPECT_EQ(sum_all(abs(p.grad())), 0.f);
  }
}

TEST(Sequential, AppliesInOrder) {
  Rng rng(10);
  auto seq = std::make_shared<nn::Sequential>();
  seq->append(std::make_shared<nn::Lambda>(
      [](const Var& v) { return ops::mul_scalar(v, 2.f); }));
  seq->append(std::make_shared<nn::Lambda>(
      [](const Var& v) { return ops::add_scalar(v, 1.f); }));
  Var x(Tensor::ones({2}), false);
  // (1*2)+1 = 3, not (1+1)*2 = 4.
  EXPECT_TRUE(seq->forward(x).value().allclose(Tensor::full({2}, 3.f)));
}

TEST(Pooling, MaxPoolModuleAndUpsample) {
  Rng rng(11);
  nn::MaxPool2d pool(2);
  nn::UpsampleBilinear up(2);
  Var x(Tensor::randn({1, 2, 4, 4}, rng), false);
  EXPECT_EQ(pool.forward(x).shape(), (Shape{1, 2, 2, 2}));
  EXPECT_EQ(up.forward(x).shape(), (Shape{1, 2, 8, 8}));
}

TEST(Activations, Modules) {
  Var x(Tensor({3}, {-1.f, 0.f, 1.f}), false);
  nn::ReLU relu;
  nn::GELU gelu_m;
  nn::Tanh tanh_m;
  EXPECT_TRUE(relu.forward(x).value().allclose(Tensor({3}, {0.f, 0.f, 1.f})));
  EXPECT_NEAR(gelu_m.forward(x).value().at(2), 0.841345f, 1e-4f);
  EXPECT_NEAR(tanh_m.forward(x).value().at(0), -0.76159f, 1e-4f);
}

TEST(StateDict, RoundTripThroughMap) {
  Rng rng(12);
  nn::Linear a(4, 4, rng);
  nn::Linear b(4, 4, rng);
  Var x(Tensor::randn({2, 4}, rng), false);
  // Different init -> different outputs.
  EXPECT_FALSE(a.forward(x).value().allclose(b.forward(x).value()));
  nn::load_state_dict(b, nn::state_dict(a));
  EXPECT_TRUE(a.forward(x).value().allclose(b.forward(x).value()));
}

TEST(StateDict, StrictMissingThrowsLooseIgnores) {
  Rng rng(13);
  nn::Linear a(4, 4, rng);
  std::map<std::string, Tensor> empty;
  EXPECT_THROW(nn::load_state_dict(a, empty, /*strict=*/true),
               std::runtime_error);
  nn::load_state_dict(a, empty, /*strict=*/false);  // no-op, no throw
}

TEST(StateDict, ShapeMismatchThrows) {
  Rng rng(14);
  nn::Linear a(4, 4, rng);
  std::map<std::string, Tensor> bad;
  bad.emplace("weight", Tensor::zeros({2, 2}));
  bad.emplace("bias", Tensor::zeros({4}));
  EXPECT_THROW(nn::load_state_dict(a, bad), std::runtime_error);
}

TEST(Checkpoint, SaveLoadPreservesForward) {
  Rng rng(15);
  auto seq = std::make_shared<nn::Sequential>();
  seq->append(std::make_shared<nn::Linear>(6, 10, rng));
  seq->append(std::make_shared<nn::GELU>());
  seq->append(std::make_shared<nn::Linear>(10, 2, rng));
  Var x(Tensor::randn({3, 6}, rng), false);
  Tensor before = seq->forward(x).value().clone();

  const std::string path = ::testing::TempDir() + "/saufno_ckpt.bin";
  nn::save_checkpoint(*seq, path);

  auto seq2 = std::make_shared<nn::Sequential>();
  Rng rng2(999);
  seq2->append(std::make_shared<nn::Linear>(6, 10, rng2));
  seq2->append(std::make_shared<nn::GELU>());
  seq2->append(std::make_shared<nn::Linear>(10, 2, rng2));
  nn::load_checkpoint(*seq2, path);
  EXPECT_TRUE(seq2->forward(x).value().allclose(before));
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptFileThrows) {
  const std::string path = ::testing::TempDir() + "/saufno_bad.bin";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  Rng rng(16);
  nn::Linear lin(2, 2, rng);
  EXPECT_THROW(nn::load_checkpoint(lin, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace saufno
