#include "train/active_learning.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "data/generator.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

struct AlFixture {
  data::Dataset seed, pool, test;
  data::Normalizer norm;
};

AlFixture make_fixture() {
  set_log_level(LogLevel::kWarn);
  data::GenConfig cfg;
  cfg.resolution = 10;
  cfg.n_samples = 40;
  cfg.seed = 606;
  cfg.cache = false;
  auto d = data::generate_dataset(chip::make_chip1(), cfg);
  AlFixture f;
  auto [ab, test] = d.split(32);
  auto [seed, pool] = ab.split(8);
  f.seed = std::move(seed);
  f.pool = std::move(pool);
  f.test = std::move(test);
  f.norm = data::Normalizer::fit(f.seed, 2);
  return f;
}

train::ActiveLearner::Config fast_cfg() {
  train::ActiveLearner::Config cfg;
  cfg.ensemble_size = 2;
  cfg.rounds = 2;
  cfg.acquire_per_round = 6;
  cfg.train.epochs = 4;
  cfg.train.batch_size = 4;
  cfg.train.lr = 2e-3;
  cfg.model_name = "FNO";
  return cfg;
}

TEST(ActiveLearning, LoopGrowsLabeledSetAndTracksRmse) {
  auto f = make_fixture();
  train::ActiveLearner al(fast_cfg(), f.norm);
  const auto report = al.run(f.seed, f.pool, f.test);
  ASSERT_EQ(report.labeled_sizes.size(), 3u);  // rounds + 1 evaluations
  EXPECT_EQ(report.labeled_sizes[0], 8);
  EXPECT_EQ(report.labeled_sizes[1], 14);
  EXPECT_EQ(report.labeled_sizes[2], 20);
  for (double rmse : report.test_rmse) {
    EXPECT_GT(rmse, 0.0);
    EXPECT_LT(rmse, 100.0);
  }
  EXPECT_NE(al.final_model(), nullptr);
}

TEST(ActiveLearning, AcquisitionsAreUniqueAndFromPool) {
  auto f = make_fixture();
  train::ActiveLearner al(fast_cfg(), f.norm);
  const auto report = al.run(f.seed, f.pool, f.test);
  std::set<int> seen;
  for (const auto& round : report.acquired) {
    for (int idx : round) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, f.pool.size());
      EXPECT_TRUE(seen.insert(idx).second) << "sample acquired twice";
    }
  }
}

TEST(ActiveLearning, DisagreementIsNonNegativeAndVaries) {
  auto f = make_fixture();
  auto cfg = fast_cfg();
  cfg.rounds = 0;  // just train the committee once
  train::ActiveLearner al(cfg, f.norm);
  al.run(f.seed, f.pool, f.test);
  const auto scores = al.disagreement(f.pool);
  ASSERT_EQ(scores.size(), static_cast<std::size_t>(f.pool.size()));
  double lo = scores[0], hi = scores[0];
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  // Differently-initialized members disagree by different amounts across
  // candidates; a flat score vector would make acquisition meaningless.
  EXPECT_GT(hi, lo);
}

TEST(ActiveLearning, RequiresCommittee) {
  auto f = make_fixture();
  auto cfg = fast_cfg();
  cfg.ensemble_size = 1;
  EXPECT_THROW(train::ActiveLearner(cfg, f.norm), std::runtime_error);
}

TEST(ActiveLearning, MoreDataHelpsOnAverage) {
  // Not a strict guarantee at this tiny scale, but the final round
  // (20 labels) should not be dramatically worse than the seed round
  // (8 labels) — catches sign errors in the acquisition plumbing.
  auto f = make_fixture();
  train::ActiveLearner al(fast_cfg(), f.norm);
  const auto report = al.run(f.seed, f.pool, f.test);
  EXPECT_LT(report.test_rmse.back(), 1.5 * report.test_rmse.front());
}

}  // namespace
}  // namespace saufno
