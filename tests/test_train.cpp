#include "train/trainer.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tensor/tensor_ops.h"
#include "data/generator.h"
#include "train/model_zoo.h"
#include "train/transfer.h"

namespace saufno {
namespace {

struct Fixture {
  data::Dataset train_set, test_set;
  data::Normalizer norm;
};

Fixture make_fixture(int n = 16, int res = 12) {
  set_log_level(LogLevel::kWarn);
  data::GenConfig cfg;
  cfg.resolution = res;
  cfg.n_samples = n;
  cfg.seed = 4242;
  cfg.cache = false;
  auto d = data::generate_dataset(chip::make_chip1(), cfg);
  Fixture f;
  auto [tr, te] = d.split(d.size() * 3 / 4);
  f.train_set = std::move(tr);
  f.test_set = std::move(te);
  f.norm = data::Normalizer::fit(f.train_set, 2);
  return f;
}

train::TrainConfig fast_cfg(int epochs = 6) {
  train::TrainConfig c;
  c.epochs = epochs;
  c.batch_size = 4;
  c.lr = 2e-3;
  c.seed = 7;
  return c;
}

TEST(Trainer, LossDecreasesOnSmallFno) {
  auto f = make_fixture();
  auto model = train::make_model("FNO", 4, 2, 1);
  train::Trainer tr(*model, f.norm, fast_cfg(8));
  const auto report = tr.fit(f.train_set);
  ASSERT_EQ(report.epoch_loss.size(), 8u);
  EXPECT_LT(report.final_loss(), 0.6 * report.epoch_loss.front());
  EXPECT_GT(report.seconds, 0.0);
}

TEST(Trainer, EvaluateProducesFiniteKelvinMetrics) {
  auto f = make_fixture();
  auto model = train::make_model("FNO", 4, 2, 2);
  train::Trainer tr(*model, f.norm, fast_cfg(4));
  tr.fit(f.train_set);
  const auto m = tr.evaluate(f.test_set);
  EXPECT_GT(m.rmse, 0.0);
  EXPECT_LT(m.rmse, 100.0);
  EXPECT_GE(m.max_err, 0.0);
  EXPECT_GE(m.pape, m.mape - 1e-12);  // the peak bounds the mean
}

TEST(Trainer, TrainingBeatsUntrainedBaseline) {
  auto f = make_fixture(20);
  auto untrained = train::make_model("FNO", 4, 2, 3);
  auto trained = train::make_model("FNO", 4, 2, 3);
  train::Trainer t0(*untrained, f.norm, fast_cfg(0));
  train::Trainer t1(*trained, f.norm, fast_cfg(10));
  t1.fit(f.train_set);
  const auto m0 = t0.evaluate(f.test_set);
  const auto m1 = t1.evaluate(f.test_set);
  EXPECT_LT(m1.rmse, m0.rmse);
}

TEST(Trainer, PredictShapeAndDecodedRange) {
  auto f = make_fixture();
  auto model = train::make_model("FNO", 4, 2, 4);
  train::Trainer tr(*model, f.norm, fast_cfg(6));
  tr.fit(f.train_set);
  Tensor pred = tr.predict(f.test_set.inputs);
  EXPECT_EQ(pred.shape(), f.test_set.targets.shape());
  // Decoded predictions live near the kelvin range of the data.
  EXPECT_GT(mean_all(pred), 300.f);
  EXPECT_LT(mean_all(pred), 450.f);
}

TEST(Trainer, TimeInferenceIsPositiveAndSmall) {
  auto f = make_fixture(8);
  auto model = train::make_model("FNO", 4, 2, 5);
  train::Trainer tr(*model, f.norm, fast_cfg(1));
  const double sec = tr.time_inference(f.test_set.inputs, 2);
  EXPECT_GT(sec, 0.0);
  EXPECT_LT(sec, 5.0);
}

TEST(Transfer, PipelineRunsAndKeepsAccuracy) {
  set_log_level(LogLevel::kWarn);
  // Low fidelity: coarse grid; high fidelity: finer grid, fewer samples.
  data::GenConfig lo_cfg;
  lo_cfg.resolution = 10;
  lo_cfg.n_samples = 16;
  lo_cfg.seed = 11;
  lo_cfg.cache = false;
  data::GenConfig hi_cfg;
  hi_cfg.resolution = 16;
  hi_cfg.n_samples = 6;
  hi_cfg.seed = 12;
  hi_cfg.cache = false;
  const auto spec = chip::make_chip1();
  auto lo = data::generate_dataset(spec, lo_cfg);
  auto hi = data::generate_dataset(spec, hi_cfg);
  auto [hi_train, hi_test] = hi.split(4);

  const auto norm = data::Normalizer::fit(lo, 2);
  auto model = train::make_model("FNO", 4, 2, 21);

  train::TransferConfig tc = train::TransferConfig::defaults();
  tc.pretrain = fast_cfg(6);
  tc.finetune = fast_cfg(3);
  tc.finetune.lr = tc.pretrain.lr / 10;
  const auto report =
      train::transfer_train(*model, norm, lo, hi_train, tc);
  EXPECT_EQ(report.pretrain.epoch_loss.size(), 6u);
  EXPECT_EQ(report.finetune.epoch_loss.size(), 3u);
  EXPECT_GT(report.total_seconds(), 0.0);

  // The fine-tuned model must beat an untrained one on the high-fidelity
  // test split (basic sanity that transfer actually learned).
  train::Trainer eval_tr(*model, norm, fast_cfg(0));
  auto fresh = train::make_model("FNO", 4, 2, 22);
  train::Trainer fresh_tr(*fresh, norm, fast_cfg(0));
  EXPECT_LT(eval_tr.evaluate(hi_test).rmse, fresh_tr.evaluate(hi_test).rmse);
}

TEST(TransferConfig, DefaultsFollowPaperRatios) {
  const auto c = train::TransferConfig::defaults();
  EXPECT_NEAR(c.finetune.lr, c.pretrain.lr / 10.0, 1e-12);
  EXPECT_LE(c.finetune.epochs, c.pretrain.epochs);
}

TEST(Trainer, EmptyTrainingSetThrows) {
  auto f = make_fixture(8);
  auto model = train::make_model("FNO", 4, 2, 30);
  train::Trainer tr(*model, f.norm, fast_cfg(1));
  data::Dataset empty;
  EXPECT_THROW(tr.fit(empty), std::runtime_error);
}

}  // namespace
}  // namespace saufno
