// Telemetry subsystem tests: counter accuracy under concurrency, histogram
// quantile error bounds against exact sorted samples, trace JSON validity
// and span nesting, and registry scrapes while writers are hot.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_writer.h"
#include "common/rng.h"
#include "obs/export.h"
#include "obs/kernel_profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace saufno {
namespace {

TEST(Counter, ConcurrentIncrementsAreExact) {
  obs::Counter c;
  const int n_threads = 8;
  const int64_t per_thread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&] {
      for (int64_t i = 0; i < per_thread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), n_threads * per_thread);
  c.reset();
  EXPECT_EQ(c.value(), 0);
  c.add(42);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, AddAndSet) {
  obs::Gauge g;
  g.add(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  g.set(17);
  EXPECT_EQ(g.value(), 17);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Gauge, ConcurrentAddBalancesOut) {
  obs::Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        g.add(1);
        g.add(-1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, QuantilesWithinLogBucketErrorBound) {
  // Log-uniform samples spanning six decades: every octave of the table
  // gets exercised, and the exact quantiles vary over orders of magnitude.
  obs::Histogram h;
  Rng rng(123);
  std::vector<double> samples;
  const int n = 20000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double v = std::pow(10.0, rng.uniform(-3.0, 3.0));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(h.count(), n);

  // Midpoint interpolation bounds the relative error by ~1/(2*kSubBuckets)
  // = 6.25%; allow a whisker on top for the rank convention.
  const double tol = 0.07;
  for (const double p : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p * n)) - 1;
    const double exact = samples[std::min(rank, samples.size() - 1)];
    const double approx = h.quantile(p);
    EXPECT_NEAR(approx / exact, 1.0, tol)
        << "p=" << p << " exact=" << exact << " approx=" << approx;
  }

  // Extremes and moments are tracked exactly, not bucketed.
  EXPECT_DOUBLE_EQ(h.min(), samples.front());
  EXPECT_DOUBLE_EQ(h.max(), samples.back());
  EXPECT_DOUBLE_EQ(h.quantile(0.0), samples.front());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), samples.back());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  EXPECT_NEAR(h.mean(), sum / n, std::abs(sum / n) * 1e-9);
}

TEST(Histogram, EmptyAndDegenerateInputs) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  // Zero / negative values land in the underflow bucket but keep exact
  // min/max, and quantile stays clamped to the observed range.
  h.record(0.0);
  h.record(-3.0);
  h.record(5.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_GE(h.quantile(0.5), -3.0);
  EXPECT_LE(h.quantile(0.5), 5.0);

  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, SingleValueIsExactEverywhere) {
  obs::Histogram h;
  h.record(3.25);
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(p), 3.25) << "p=" << p;
  }
}

TEST(Histogram, ConcurrentRecordKeepsExactCountAndExtremes) {
  obs::Histogram h;
  std::vector<std::thread> threads;
  const int n_threads = 4, per_thread = 50000;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(1000 + t));
      for (int i = 0; i < per_thread; ++i) h.record(rng.uniform(1.0, 2.0));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<int64_t>(n_threads) * per_thread);
  EXPECT_GE(h.min(), 1.0);
  EXPECT_LE(h.max(), 2.0);
  const double p50 = h.quantile(0.5);
  EXPECT_NEAR(p50, 1.5, 0.15);
}

TEST(Registry, ScrapeWhileWritersHot) {
  auto& reg = obs::Registry::instance();
  obs::Counter& c = obs::counter("test.hot_counter");
  obs::Histogram& h = obs::histogram("test.hot_hist");
  c.reset();
  h.reset();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        h.record(1.5);
      }
    });
  }

  // Wait until the writers are visibly running (thread startup can outlast
  // the whole scrape loop on a loaded CI box), then scrape repeatedly while
  // they hammer; counter values observed across scrapes must be monotone
  // (no torn or lost reads).
  while (c.value() == 0) std::this_thread::yield();
  int64_t last = -1;
  for (int i = 0; i < 200; ++i) {
    const auto snap = reg.snapshot();
    for (const auto& m : snap) {
      if (m.name == "test.hot_counter") {
        EXPECT_EQ(m.kind, obs::MetricKind::kCounter);
        const int64_t v = static_cast<int64_t>(m.value);
        EXPECT_GE(v, last);
        last = v;
      }
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GT(last, 0);
  EXPECT_EQ(c.value(), h.count());
}

TEST(Registry, SameNameReturnsSameMetricAndKindsAreStable) {
  obs::Counter& a = obs::counter("test.same_name");
  obs::Counter& b = obs::counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(Registry, CallbackGaugesAppearInSnapshot) {
  auto& reg = obs::Registry::instance();
  reg.register_callback("test.cb_value", [] { return 12.5; });
  bool found = false;
  for (const auto& m : reg.snapshot()) {
    if (m.name == "test.cb_value") {
      found = true;
      EXPECT_EQ(m.kind, obs::MetricKind::kCallback);
      EXPECT_DOUBLE_EQ(m.value, 12.5);
    }
  }
  EXPECT_TRUE(found);
  reg.unregister_callback("test.cb_value");
  for (const auto& m : reg.snapshot()) {
    EXPECT_NE(m.name, "test.cb_value");
  }
}

TEST(Registry, BuiltinRuntimeCallbacksPresent) {
  // The registry self-registers scrape hooks for the workspace arena and
  // FFT plan cache at construction.
  std::vector<std::string> names;
  for (const auto& m : obs::Registry::instance().snapshot()) {
    names.push_back(m.name);
  }
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("arena.hit_rate"));
  EXPECT_TRUE(has("fft.plan_cache.size"));
}

TEST(Exporters, JsonAndPrometheusCarryMetrics) {
  obs::Counter& c = obs::counter("test.export_counter");
  obs::Histogram& h = obs::histogram("test.export_hist");
  c.reset();
  h.reset();
  c.add(7);
  h.record(2.0);
  h.record(4.0);

  const std::string js = obs::dump_json();
  EXPECT_NE(js.find("\"test.export_counter\""), std::string::npos);
  EXPECT_NE(js.find("\"test.export_hist\""), std::string::npos);
  EXPECT_NE(js.find("\"p99\""), std::string::npos);
  // Structural sanity: balanced braces.
  int depth = 0;
  for (const char ch : js) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  const std::string prom = obs::dump_prometheus();
  EXPECT_NE(prom.find("# TYPE saufno_test_export_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("saufno_test_export_counter 7"), std::string::npos);
  EXPECT_NE(prom.find("saufno_test_export_hist_count 2"), std::string::npos);
}

/// Minimal parser for the one-event-per-line trace format trace_stop()
/// writes; enough to check structure without a JSON library.
struct ParsedEvent {
  std::string name;
  double ts = 0.0, dur = 0.0;
  int tid = 0;
};

std::vector<ParsedEvent> parse_trace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "trace file missing: " << path;
  std::vector<ParsedEvent> events;
  std::string line;
  auto field = [](const std::string& l, const char* key) -> std::string {
    const std::string pat = std::string("\"") + key + "\": ";
    const std::size_t at = l.find(pat);
    if (at == std::string::npos) return "";
    std::size_t start = at + pat.size();
    std::size_t end = l.find_first_of(",}", start);
    std::string v = l.substr(start, end - start);
    if (!v.empty() && v.front() == '"') v = v.substr(1, v.size() - 2);
    return v;
  };
  while (std::getline(in, line)) {
    if (line.find("\"ph\": \"X\"") == std::string::npos) continue;
    ParsedEvent e;
    e.name = field(line, "name");
    e.ts = std::stod(field(line, "ts"));
    e.dur = std::stod(field(line, "dur"));
    e.tid = std::stoi(field(line, "tid"));
    events.push_back(e);
  }
  return events;
}

TEST(Trace, FileIsValidAndSpansNestCorrectly) {
  const std::string path = ::testing::TempDir() + "/saufno_trace_test.json";
  obs::trace_start(path);
  {
    SAUFNO_TRACE_SPAN("outer");
    {
      SAUFNO_TRACE_SPAN("inner");
      volatile int sink = 0;
      for (int i = 0; i < 10000; ++i) sink += i;
    }
  }
  std::thread worker([] {
    SAUFNO_TRACE_SPAN("worker_span");
  });
  worker.join();
  obs::trace_stop();

  // Structural validity: one top-level object, balanced brackets,
  // traceEvents array present.
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  int braces = 0, brackets = 0;
  for (const char ch : doc) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  const auto events = parse_trace(path);
  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  const ParsedEvent* worker_span = nullptr;
  for (const auto& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
    if (e.name == "worker_span") worker_span = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker_span, nullptr);

  // Nesting: the inner span is contained in the outer span on the same
  // thread. Timestamps carry ns precision as fractional us; allow a 1ns
  // formatting epsilon.
  EXPECT_EQ(outer->tid, inner->tid);
  const double eps = 0.002;
  EXPECT_LE(outer->ts, inner->ts + eps);
  EXPECT_GE(outer->ts + outer->dur, inner->ts + inner->dur - eps);
  // The worker thread got its own tid.
  EXPECT_NE(worker_span->tid, outer->tid);

  EXPECT_EQ(obs::trace_dropped_events(), 0);
  std::filesystem::remove(path);
}

TEST(Trace, DisabledSpansAreFreeAndStopIsIdempotent) {
  // After trace_stop, spans must not record (state is off).
  obs::trace_stop();  // idempotent no-op if already stopped
  {
    SAUFNO_TRACE_SPAN("should_not_record");
  }
  const std::string path = ::testing::TempDir() + "/saufno_trace_test2.json";
  obs::trace_start(path);
  obs::trace_stop();
  const auto events = parse_trace(path);
  for (const auto& e : events) {
    EXPECT_NE(e.name, "should_not_record");
  }
  std::filesystem::remove(path);
}

TEST(KernelProfile, TimerRecordsOnlyWhenEnabled) {
  obs::Histogram h;
  obs::force_profile_kernels(false);
  {
    obs::KernelTimer t(h, "test.kernel");
  }
  EXPECT_EQ(h.count(), 0);

  obs::force_profile_kernels(true);
  {
    obs::KernelTimer t(h, "test.kernel");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
  obs::force_profile_kernels(false);
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(h.max(), 0.0);  // microseconds, strictly positive
}

TEST(JsonWriterLib, EscapesAndNests) {
  JsonWriter w;
  w.begin_object();
  w.field("plain", "a\"b\\c");
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value(2.5, 1);
  w.value(true);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.field("inf_is_null", std::numeric_limits<double>::infinity(), 3);
  w.end_object();
  w.end_object();
  const std::string s = w.str();
  EXPECT_NE(s.find("\"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("true"), std::string::npos);
  EXPECT_NE(s.find("null"), std::string::npos);
  int depth = 0;
  for (const char ch : s) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace saufno
