#include "runtime/parallel_for.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fft/fft.h"
#include "runtime/request_queue.h"
#include "runtime/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

using runtime::ThreadPool;
using runtime::parallel_for;
using runtime::parallel_invoke;
using runtime::parallel_sum;

/// RAII thread-count override so a failing assertion cannot leak a resized
/// pool into later tests.
struct PoolSize {
  explicit PoolSize(int n) { ThreadPool::instance().resize(n); }
  ~PoolSize() { ThreadPool::instance().resize(1); }
};

TEST(ThreadPool, ResizeReportsLanes) {
  PoolSize guard(4);
  EXPECT_EQ(ThreadPool::instance().num_threads(), 4);
  ThreadPool::instance().resize(1);
  EXPECT_EQ(ThreadPool::instance().num_threads(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  PoolSize guard(4);
  constexpr int64_t kN = 10007;  // prime, so chunks never divide evenly
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(3, kN, 17, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 0);
  for (int64_t i = 3; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ParallelFor, EmptyAndSingleChunkRanges) {
  PoolSize guard(2);
  int calls = 0;
  parallel_for(5, 5, 4, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(0, 3, 100, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 3);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsRunInline) {
  PoolSize guard(4);
  std::atomic<int> total{0};
  parallel_for(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      EXPECT_TRUE(runtime::in_parallel_region());
      parallel_for(0, 10, 1, [&](int64_t nb, int64_t ne) {
        total += static_cast<int>(ne - nb);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  PoolSize guard(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](int64_t b, int64_t) {
                     if (b == 37) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
}

TEST(ParallelInvoke, RunsAllTasks) {
  PoolSize guard(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> fns;
  for (int i = 0; i < 13; ++i) fns.push_back([&ran] { ++ran; });
  parallel_invoke(std::move(fns));
  EXPECT_EQ(ran.load(), 13);
}

// ---------------------------------------------------------------------------
// Determinism: every parallelized kernel must produce bit-identical results
// for SAUFNO_NUM_THREADS in {1, 2, 8}.
// ---------------------------------------------------------------------------

template <typename Fn>
void expect_bitwise_stable(Fn compute) {
  ThreadPool::instance().resize(1);
  const Tensor ref = compute();
  for (const int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    const Tensor got = compute();
    ASSERT_EQ(got.shape(), ref.shape());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          sizeof(float) * static_cast<std::size_t>(ref.numel())),
              0)
        << "result differs at " << threads << " threads";
  }
  ThreadPool::instance().resize(1);
}

runtime::InferenceRequest make_request(const Shape& shape) {
  runtime::InferenceRequest req;
  req.input = Tensor::zeros(shape);
  req.enqueued_at = std::chrono::steady_clock::now();
  return req;
}

TEST(RequestQueue, ShardsByShapeAndDrainsRoundRobin) {
  runtime::RequestQueue q;
  // Interleaved two-shape traffic: the sharded queue must produce full
  // same-shape batches, not the batch-size-1 collapse of a single FIFO.
  const Shape a{3, 10, 10}, b{3, 14, 14};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.push(make_request(a)));
    ASSERT_TRUE(q.push(make_request(b)));
  }
  EXPECT_EQ(q.size(), 8u);
  EXPECT_EQ(q.shard_count(), 2u);

  auto first = q.pop_batch(4, /*max_wait_us=*/0);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first.front().input.shape(), a);
  auto second = q.pop_batch(4, 0);
  ASSERT_EQ(second.size(), 4u);
  EXPECT_EQ(second.front().input.shape(), b);
  for (auto& r : first) r.result.set_value(Tensor::zeros({1}));
  for (auto& r : second) r.result.set_value(Tensor::zeros({1}));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.shard_count(), 0u);
}

TEST(RequestQueue, RoundRobinAlternatesBetweenLiveShards) {
  runtime::RequestQueue q;
  const Shape a{1, 8, 8}, b{1, 12, 12};
  for (int i = 0; i < 8; ++i) q.push(make_request(i % 2 == 0 ? a : b));
  // max_batch 2 forces two drains per shard; shapes must alternate so one
  // hot resolution cannot starve the other.
  std::vector<Shape> order;
  for (int i = 0; i < 8; i += 2) {
    auto batch = q.pop_batch(2, 0);
    ASSERT_EQ(batch.size(), 2u);
    order.push_back(batch.front().input.shape());
    for (auto& r : batch) r.result.set_value(Tensor::zeros({1}));
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_NE(order[0], order[1]);
  EXPECT_NE(order[1], order[2]);
  EXPECT_NE(order[2], order[3]);
}

TEST(RequestQueue, BatchDeadlineAnchorsToEnqueueTime) {
  runtime::RequestQueue q;
  q.push(make_request({3, 10, 10}));
  // The request has already waited longer than max_wait_us by the time the
  // batcher pops, so pop_batch must return it immediately instead of
  // waiting max_wait_us again for stragglers.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const auto t0 = std::chrono::steady_clock::now();
  auto batch = q.pop_batch(8, /*max_wait_us=*/200000);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_LT(waited, 0.150) << "pop_batch re-armed the wait at pop time";
  batch.front().result.set_value(Tensor::zeros({1}));
}

TEST(RuntimeDeterminism, Gemm) {
  Rng rng(11);
  const Tensor a = Tensor::randn({37, 53}, rng);
  const Tensor b = Tensor::randn({53, 41}, rng);
  expect_bitwise_stable([&] { return matmul(a, b); });
}

TEST(RuntimeDeterminism, GemmAccumulate) {
  Rng rng(12);
  const Tensor a = Tensor::randn({19, 31}, rng);
  const Tensor b = Tensor::randn({31, 23}, rng);
  expect_bitwise_stable([&] {
    Tensor c = Tensor::ones({19, 23});
    gemm(a.data(), b.data(), c.data(), 19, 23, 31, /*accumulate=*/true);
    return c;
  });
}

TEST(RuntimeDeterminism, Fft2dBatched) {
  Rng rng(13);
  // 12x12 is not a power of two -> exercises the Bluestein path too.
  const Tensor real = Tensor::randn({6 * 12 * 12}, rng);
  const Tensor imag = Tensor::randn({6 * 12 * 12}, rng);
  expect_bitwise_stable([&] {
    std::vector<cfloat> buf(6 * 12 * 12);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = cfloat(real.at(static_cast<int64_t>(i)),
                      imag.at(static_cast<int64_t>(i)));
    }
    fft_2d(buf.data(), 6, 12, 12, /*inverse=*/false);
    fft_2d(buf.data(), 6, 12, 12, /*inverse=*/true);
    Tensor out({6 * 12 * 12 * 2});
    for (std::size_t i = 0; i < buf.size(); ++i) {
      out.at(static_cast<int64_t>(2 * i)) = buf[i].real();
      out.at(static_cast<int64_t>(2 * i + 1)) = buf[i].imag();
    }
    return out;
  });
}

TEST(RuntimeDeterminism, ElementwiseAndReductions) {
  Rng rng(14);
  const Tensor a = Tensor::randn({50000}, rng);
  const Tensor b = Tensor::randn({50000}, rng);
  expect_bitwise_stable([&] { return add(a, b); });
  expect_bitwise_stable([&] { return gelu(a); });
  expect_bitwise_stable([&] {
    return Tensor({1}, {sum_all(a)});
  });
  expect_bitwise_stable([&] { return softmax_lastdim(a.reshape({100, 500})); });
  expect_bitwise_stable([&] { return sum_dim(a.reshape({100, 500}), 1, false); });
}

TEST(RuntimeDeterminism, Im2colCol2im) {
  Rng rng(15);
  const int64_t c = 5, h = 17, w = 13, kh = 3, kw = 3, stride = 1, pad = 1;
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const Tensor img = Tensor::randn({c, h, w}, rng);
  const Tensor cols_in = Tensor::randn({c * kh * kw, oh * ow}, rng);
  expect_bitwise_stable([&] {
    Tensor cols({c * kh * kw, oh * ow});
    im2col(img.data(), cols.data(), c, h, w, kh, kw, stride, pad);
    return cols;
  });
  expect_bitwise_stable([&] {
    Tensor grad = Tensor::zeros({c, h, w});
    col2im(cols_in.data(), grad.data(), c, h, w, kh, kw, stride, pad);
    return grad;
  });
}

TEST(RuntimeDeterminism, PermuteAndBmm) {
  Rng rng(16);
  const Tensor a = Tensor::randn({7, 9, 11, 5}, rng);
  expect_bitwise_stable([&] { return permute(a, {2, 0, 3, 1}); });
  const Tensor x = Tensor::randn({6, 14, 10}, rng);
  const Tensor y = Tensor::randn({6, 10, 12}, rng);
  expect_bitwise_stable([&] { return bmm(x, y); });
}

TEST(ParallelSum, MatchesSequentialForEveryThreadCount) {
  Rng rng(17);
  const Tensor a = Tensor::randn({123457}, rng);
  const float* p = a.data();
  auto chunk = [&](int64_t b, int64_t e) {
    double s = 0.0;
    for (int64_t i = b; i < e; ++i) s += p[i];
    return s;
  };
  ThreadPool::instance().resize(1);
  const double ref = parallel_sum(a.numel(), 4096, chunk);
  for (const int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    EXPECT_EQ(parallel_sum(a.numel(), 4096, chunk), ref);
  }
  ThreadPool::instance().resize(1);
}

}  // namespace
}  // namespace saufno
