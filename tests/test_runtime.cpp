#include "runtime/parallel_for.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/spectral_ops.h"
#include "fft/fft.h"
#include "runtime/request_queue.h"
#include "runtime/task_group.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

using runtime::ThreadPool;
using runtime::parallel_for;
using runtime::parallel_invoke;
using runtime::parallel_sum;

/// RAII thread-count override so a failing assertion cannot leak a resized
/// pool into later tests.
struct PoolSize {
  explicit PoolSize(int n) { ThreadPool::instance().resize(n); }
  ~PoolSize() { ThreadPool::instance().resize(1); }
};

TEST(ThreadPool, ResizeReportsLanes) {
  PoolSize guard(4);
  EXPECT_EQ(ThreadPool::instance().num_threads(), 4);
  ThreadPool::instance().resize(1);
  EXPECT_EQ(ThreadPool::instance().num_threads(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  PoolSize guard(4);
  constexpr int64_t kN = 10007;  // prime, so chunks never divide evenly
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(3, kN, 17, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 0);
  for (int64_t i = 3; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ParallelFor, EmptyAndSingleChunkRanges) {
  PoolSize guard(2);
  int calls = 0;
  parallel_for(5, 5, 4, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(0, 3, 100, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 3);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsCoverEveryIndex) {
  PoolSize guard(4);
  std::atomic<int> total{0};
  parallel_for(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      EXPECT_TRUE(runtime::in_parallel_region());
      // Nested loops decompose onto the pool (they no longer serialize);
      // coverage must still be exact.
      parallel_for(0, 10, 1, [&](int64_t nb, int64_t ne) {
        EXPECT_TRUE(runtime::in_parallel_region());
        total += static_cast<int>(ne - nb);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ParallelFor, DepthCapRunsDeepLoopsInlineInChunkOrder) {
  PoolSize guard(4);
  // Beyond SAUFNO_MAX_NEST (default 4) loops must fall back to the inline
  // path; chunk order there is sequential, so the recorded boundaries are
  // exactly [0,2),[2,4),...
  std::vector<std::pair<int64_t, int64_t>> chunks;
  parallel_for(0, 1, 1, [&](int64_t, int64_t) {
    parallel_for(0, 1, 1, [&](int64_t, int64_t) {
      parallel_for(0, 1, 1, [&](int64_t, int64_t) {
        parallel_for(0, 1, 1, [&](int64_t, int64_t) {
          EXPECT_TRUE(runtime::in_parallel_region());
          // Depth 5 > cap: runs inline on this thread, in order.
          parallel_for(0, 8, 2, [&](int64_t b, int64_t e) {
            EXPECT_TRUE(runtime::in_parallel_region());
            chunks.emplace_back(b, e);
          });
        });
      });
    });
  });
  ASSERT_EQ(chunks.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(chunks[c].first, static_cast<int64_t>(2 * c));
    EXPECT_EQ(chunks[c].second, static_cast<int64_t>(2 * c + 2));
  }
}

TEST(ParallelFor, InParallelRegionSemantics) {
  for (const int threads : {1, 4}) {
    PoolSize guard(threads);
    EXPECT_FALSE(runtime::in_parallel_region());
    // True inside a chunk on EVERY path: multi-chunk, single-chunk (inline
    // fallback), and nested — never dependent on the thread count.
    parallel_for(0, 8, 1, [&](int64_t, int64_t) {
      EXPECT_TRUE(runtime::in_parallel_region());
    });
    parallel_for(0, 1, 1, [&](int64_t, int64_t) {
      EXPECT_TRUE(runtime::in_parallel_region());
    });
    runtime::TaskGroup g;
    g.run([] { EXPECT_TRUE(runtime::in_parallel_region()); });
    g.wait();
    EXPECT_FALSE(runtime::in_parallel_region());
  }
}

TEST(ParallelFor, NestedLoopsAreBitIdenticalAcrossThreadCounts) {
  // An outer batch loop of row loops writing disjoint slots — the FFT / bmm
  // nesting shape. Identical bits required at 1/2/8 threads.
  Rng rng(41);
  const Tensor src = Tensor::randn({16 * 64}, rng);
  auto compute = [&] {
    Tensor out({16 * 64});
    const float* in = src.data();
    float* o = out.data();
    parallel_for(0, 16, 1, [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) {
        parallel_for(0, 64, 8, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const float v = in[b * 64 + i];
            o[b * 64 + i] = v * v + 0.5f * v;
          }
        });
      }
    });
    return out;
  };
  ThreadPool::instance().resize(1);
  const Tensor ref = compute();
  for (const int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    const Tensor got = compute();
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          sizeof(float) * static_cast<std::size_t>(ref.numel())),
              0)
        << "nested loops differ at " << threads << " threads";
  }
  ThreadPool::instance().resize(1);
}

TEST(TaskGroup, RunsTasksAndIsReusable) {
  PoolSize guard(4);
  runtime::TaskGroup g;
  std::atomic<int> ran{0};
  for (int i = 0; i < 9; ++i) g.run([&ran] { ++ran; });
  g.wait();
  EXPECT_EQ(ran.load(), 9);
  for (int i = 0; i < 5; ++i) g.run([&ran] { ++ran; });
  g.wait();
  EXPECT_EQ(ran.load(), 14);
}

TEST(TaskGroup, PropagatesFirstExceptionAndRecovers) {
  PoolSize guard(4);
  runtime::TaskGroup g;
  g.run([] { throw std::runtime_error("task failed"); });
  g.run([] {});
  EXPECT_THROW(g.wait(), std::runtime_error);
  // Error state resets: the group is reusable after a failed wait.
  std::atomic<int> ran{0};
  g.run([&ran] { ++ran; });
  EXPECT_NO_THROW(g.wait());
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGroup, RecursiveGroupsAreBitIdenticalAcrossThreadCounts) {
  // Fork-join recursion: groups inside tasks inside groups, every leaf
  // writing one disjoint slot. The plan-executor / batch-partition nesting
  // shape; must not deadlock and must be exact at every thread count.
  auto compute = [&] {
    Tensor out({4 * 4 * 16});
    float* o = out.data();
    runtime::TaskGroup outer;
    for (int64_t a = 0; a < 4; ++a) {
      outer.run([o, a] {
        runtime::TaskGroup inner;
        for (int64_t b = 0; b < 4; ++b) {
          inner.run([o, a, b] {
            parallel_for(0, 16, 4, [&](int64_t i0, int64_t i1) {
              for (int64_t i = i0; i < i1; ++i) {
                o[(a * 4 + b) * 16 + i] =
                    static_cast<float>(a * 1000 + b * 100 + i) * 1.5f;
              }
            });
          });
        }
        inner.wait();
      });
    }
    outer.wait();
    return out;
  };
  ThreadPool::instance().resize(1);
  const Tensor ref = compute();
  for (const int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    const Tensor got = compute();
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          sizeof(float) * static_cast<std::size_t>(ref.numel())),
              0)
        << "recursive groups differ at " << threads << " threads";
  }
  ThreadPool::instance().resize(1);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  PoolSize guard(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](int64_t b, int64_t) {
                     if (b == 37) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
}

TEST(ParallelInvoke, RunsAllTasks) {
  PoolSize guard(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> fns;
  for (int i = 0; i < 13; ++i) fns.push_back([&ran] { ++ran; });
  parallel_invoke(std::move(fns));
  EXPECT_EQ(ran.load(), 13);
}

// ---------------------------------------------------------------------------
// Determinism: every parallelized kernel must produce bit-identical results
// for SAUFNO_NUM_THREADS in {1, 2, 8}.
// ---------------------------------------------------------------------------

template <typename Fn>
void expect_bitwise_stable(Fn compute) {
  ThreadPool::instance().resize(1);
  const Tensor ref = compute();
  for (const int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    const Tensor got = compute();
    ASSERT_EQ(got.shape(), ref.shape());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          sizeof(float) * static_cast<std::size_t>(ref.numel())),
              0)
        << "result differs at " << threads << " threads";
  }
  ThreadPool::instance().resize(1);
}

runtime::InferenceRequest make_request(const Shape& shape) {
  runtime::InferenceRequest req;
  req.input = Tensor::zeros(shape);
  req.result = std::make_shared<runtime::ResultSlot>();
  req.enqueued_at = std::chrono::steady_clock::now();
  return req;
}

TEST(RequestQueue, ShardsByShapeAndDrainsRoundRobin) {
  runtime::RequestQueue q;
  // Interleaved two-shape traffic: the sharded queue must produce full
  // same-shape batches, not the batch-size-1 collapse of a single FIFO.
  const Shape a{3, 10, 10}, b{3, 14, 14};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.push(make_request(a)).ok());
    ASSERT_TRUE(q.push(make_request(b)).ok());
  }
  EXPECT_EQ(q.size(), 8u);
  EXPECT_EQ(q.shard_count(), 2u);

  auto first = q.pop_batch(4, /*max_wait_us=*/0);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first.front().input.shape(), a);
  auto second = q.pop_batch(4, 0);
  ASSERT_EQ(second.size(), 4u);
  EXPECT_EQ(second.front().input.shape(), b);
  for (auto& r : first) r.result->try_value(Tensor::zeros({1}));
  for (auto& r : second) r.result->try_value(Tensor::zeros({1}));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.shard_count(), 0u);
}

TEST(RequestQueue, RoundRobinAlternatesBetweenLiveShards) {
  runtime::RequestQueue q;
  const Shape a{1, 8, 8}, b{1, 12, 12};
  for (int i = 0; i < 8; ++i) q.push(make_request(i % 2 == 0 ? a : b));
  // max_batch 2 forces two drains per shard; shapes must alternate so one
  // hot resolution cannot starve the other.
  std::vector<Shape> order;
  for (int i = 0; i < 8; i += 2) {
    auto batch = q.pop_batch(2, 0);
    ASSERT_EQ(batch.size(), 2u);
    order.push_back(batch.front().input.shape());
    for (auto& r : batch) r.result->try_value(Tensor::zeros({1}));
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_NE(order[0], order[1]);
  EXPECT_NE(order[1], order[2]);
  EXPECT_NE(order[2], order[3]);
}

TEST(RequestQueue, BatchDeadlineAnchorsToEnqueueTime) {
  runtime::RequestQueue q;
  q.push(make_request({3, 10, 10}));
  // The request has already waited longer than max_wait_us by the time the
  // batcher pops, so pop_batch must return it immediately instead of
  // waiting max_wait_us again for stragglers.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const auto t0 = std::chrono::steady_clock::now();
  auto batch = q.pop_batch(8, /*max_wait_us=*/200000);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_LT(waited, 0.150) << "pop_batch re-armed the wait at pop time";
  batch.front().result->try_value(Tensor::zeros({1}));
}

TEST(RequestQueue, TotalCapacityRejectsThenRecovers) {
  runtime::RequestQueue q;
  q.set_capacity(/*total=*/3, /*per_shard=*/0);
  const Shape a{3, 10, 10};
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.push(make_request(a)).ok());
  auto rejected = q.push(make_request(a));
  EXPECT_EQ(rejected.status, runtime::RequestQueue::PushStatus::kQueueFull);
  EXPECT_EQ(rejected.depth, 3u);
  EXPECT_EQ(q.size(), 3u) << "rejected push leaked into the queue";

  // Draining frees capacity: the same push succeeds afterwards.
  auto batch = q.pop_batch(3, 0);
  ASSERT_EQ(batch.size(), 3u);
  for (auto& r : batch) r.result->try_value(Tensor::zeros({1}));
  EXPECT_TRUE(q.push(make_request(a)).ok());
  q.pop_batch(1, 0).front().result->try_value(Tensor::zeros({1}));
}

TEST(RequestQueue, PerShardCapacityIsolatesHotResolution) {
  runtime::RequestQueue q;
  q.set_capacity(/*total=*/100, /*per_shard=*/2);
  const Shape hot{3, 10, 10}, cold{3, 14, 14};
  ASSERT_TRUE(q.push(make_request(hot)).ok());
  ASSERT_TRUE(q.push(make_request(hot)).ok());
  auto full = q.push(make_request(hot));
  EXPECT_EQ(full.status, runtime::RequestQueue::PushStatus::kShardFull);
  // The hot shard being full must not block other resolutions.
  EXPECT_TRUE(q.push(make_request(cold)).ok());
  EXPECT_EQ(q.shard_count(), 2u);
  std::size_t drained = 0;
  while (q.size() > 0) {
    auto batch = q.pop_batch(8, 0);
    drained += batch.size();
    for (auto& r : batch) r.result->try_value(Tensor::zeros({1}));
  }
  EXPECT_EQ(drained, 3u);
}

TEST(RequestQueue, ReapsExpiredAndCancelledHeadsAtDequeue) {
  runtime::RequestQueue q;
  const Shape a{3, 10, 10};
  auto expired = make_request(a);
  expired.opts.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto expired_slot = expired.result;
  auto cancelled = make_request(a);
  auto token = runtime::CancelToken::make();
  cancelled.opts.cancel = token;
  auto cancelled_slot = cancelled.result;
  auto live = make_request(a);
  auto live_slot = live.result;
  ASSERT_TRUE(q.push(std::move(expired)).ok());
  ASSERT_TRUE(q.push(std::move(cancelled)).ok());
  ASSERT_TRUE(q.push(std::move(live)).ok());
  token.request_cancel();

  auto batch = q.pop_batch(8, 0);
  ASSERT_EQ(batch.size(), 1u) << "dead heads were handed to the batcher";
  EXPECT_THROW(expired_slot->get_future().get(),
               runtime::DeadlineExceededError);
  EXPECT_THROW(cancelled_slot->get_future().get(), runtime::CancelledError);
  EXPECT_EQ(q.expired_count(), 1);
  EXPECT_EQ(q.cancelled_count(), 1);
  batch.front().result->try_value(Tensor::zeros({1}));
  EXPECT_NO_THROW(live_slot->get_future().get());
  EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, FailPendingResolvesEveryWaiterWithTheGivenError) {
  runtime::RequestQueue q;
  std::vector<std::shared_ptr<runtime::ResultSlot>> slots;
  for (int i = 0; i < 5; ++i) {
    auto req = make_request(i % 2 == 0 ? Shape{3, 10, 10} : Shape{3, 14, 14});
    slots.push_back(req.result);
    ASSERT_TRUE(q.push(std::move(req)).ok());
  }
  const std::size_t failed = q.fail_pending(std::make_exception_ptr(
      runtime::ShutdownError("engine drained: request not served")));
  EXPECT_EQ(failed, 5u);
  EXPECT_EQ(q.size(), 0u);
  for (auto& s : slots) {
    EXPECT_THROW(s->get_future().get(), runtime::ShutdownError);
  }
}

TEST(RuntimeDeterminism, Gemm) {
  Rng rng(11);
  const Tensor a = Tensor::randn({37, 53}, rng);
  const Tensor b = Tensor::randn({53, 41}, rng);
  expect_bitwise_stable([&] { return matmul(a, b); });
}

TEST(RuntimeDeterminism, GemmAccumulate) {
  Rng rng(12);
  const Tensor a = Tensor::randn({19, 31}, rng);
  const Tensor b = Tensor::randn({31, 23}, rng);
  expect_bitwise_stable([&] {
    Tensor c = Tensor::ones({19, 23});
    gemm(a.data(), b.data(), c.data(), 19, 23, 31, /*accumulate=*/true);
    return c;
  });
}

TEST(RuntimeDeterminism, Fft2dBatched) {
  Rng rng(13);
  // 12x12 is not a power of two -> exercises the Bluestein path too.
  const Tensor real = Tensor::randn({6 * 12 * 12}, rng);
  const Tensor imag = Tensor::randn({6 * 12 * 12}, rng);
  expect_bitwise_stable([&] {
    std::vector<cfloat> buf(6 * 12 * 12);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = cfloat(real.at(static_cast<int64_t>(i)),
                      imag.at(static_cast<int64_t>(i)));
    }
    fft_2d(buf.data(), 6, 12, 12, /*inverse=*/false);
    fft_2d(buf.data(), 6, 12, 12, /*inverse=*/true);
    Tensor out({6 * 12 * 12 * 2});
    for (std::size_t i = 0; i < buf.size(); ++i) {
      out.at(static_cast<int64_t>(2 * i)) = buf[i].real();
      out.at(static_cast<int64_t>(2 * i + 1)) = buf[i].imag();
    }
    return out;
  });
}

TEST(RuntimeDeterminism, ElementwiseAndReductions) {
  Rng rng(14);
  const Tensor a = Tensor::randn({50000}, rng);
  const Tensor b = Tensor::randn({50000}, rng);
  expect_bitwise_stable([&] { return add(a, b); });
  expect_bitwise_stable([&] { return gelu(a); });
  expect_bitwise_stable([&] {
    return Tensor({1}, {sum_all(a)});
  });
  expect_bitwise_stable([&] { return softmax_lastdim(a.reshape({100, 500})); });
  expect_bitwise_stable([&] { return sum_dim(a.reshape({100, 500}), 1, false); });
}

TEST(RuntimeDeterminism, Im2colCol2im) {
  Rng rng(15);
  const int64_t c = 5, h = 17, w = 13, kh = 3, kw = 3, stride = 1, pad = 1;
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const Tensor img = Tensor::randn({c, h, w}, rng);
  const Tensor cols_in = Tensor::randn({c * kh * kw, oh * ow}, rng);
  expect_bitwise_stable([&] {
    Tensor cols({c * kh * kw, oh * ow});
    im2col(img.data(), cols.data(), c, h, w, kh, kw, stride, pad);
    return cols;
  });
  expect_bitwise_stable([&] {
    Tensor grad = Tensor::zeros({c, h, w});
    col2im(cols_in.data(), grad.data(), c, h, w, kh, kw, stride, pad);
    return grad;
  });
}

TEST(RuntimeDeterminism, PermuteAndBmm) {
  Rng rng(16);
  const Tensor a = Tensor::randn({7, 9, 11, 5}, rng);
  expect_bitwise_stable([&] { return permute(a, {2, 0, 3, 1}); });
  const Tensor x = Tensor::randn({6, 14, 10}, rng);
  const Tensor y = Tensor::randn({6, 10, 12}, rng);
  expect_bitwise_stable([&] { return bmm(x, y); });
}

TEST(RuntimeDeterminism, SpectralConv2dForward) {
  Rng rng(18);
  const Tensor x = Tensor::randn({2, 3, 12, 12}, rng);  // Bluestein path too
  const Tensor w = Tensor::randn({3, 4, 6, 3, 2}, rng, 0.f, 0.3f);
  expect_bitwise_stable([&] {
    return ops::spectral_conv2d(Var(x, false), Var(w, false), 3, 3, 4).value();
  });
}

// ---------------------------------------------------------------------------
// Workspace arena: size-bucketed reuse, cross-thread release, counters.
// ---------------------------------------------------------------------------

TEST(Workspace, ReleasedBlockIsReusedWithinBucket) {
  PoolSize guard(1);  // no worker arenas in play
  runtime::arena_trim();
  runtime::arena_reset_counters();
  const int64_t base_outstanding = runtime::arena_stats().outstanding;
  void* p = runtime::arena_acquire(1000 * sizeof(float));
  EXPECT_EQ(runtime::arena_stats().misses, 1);
  EXPECT_EQ(runtime::arena_stats().outstanding, base_outstanding + 1);
  runtime::arena_release(p, 1000 * sizeof(float));
  // A smaller request in the same power-of-two bucket reuses the block.
  void* q = runtime::arena_acquire(700 * sizeof(float));
  EXPECT_EQ(q, p);
  const auto s = runtime::arena_stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  runtime::arena_release(q, 700 * sizeof(float));
}

TEST(Workspace, ScratchRaiiReturnsToArena) {
  PoolSize guard(1);
  runtime::arena_trim();
  runtime::arena_reset_counters();
  {
    runtime::Scratch<float> a(4096);
    a.zero();
    a.data()[0] = 1.f;
    a.data()[4095] = 2.f;
    EXPECT_EQ(a.size(), 4096u);
  }
  const auto after_first = runtime::arena_stats();
  EXPECT_EQ(after_first.misses, 1);
  EXPECT_EQ(after_first.releases, 1);
  {
    runtime::Scratch<float> b(4096);
    (void)b;
  }
  EXPECT_EQ(runtime::arena_stats().hits, 1);
  EXPECT_EQ(runtime::arena_stats().misses, 1);
}

TEST(Workspace, CrossThreadReleaseIsSafe) {
  runtime::arena_trim();
  runtime::arena_reset_counters();
  void* p = runtime::arena_acquire(512 * sizeof(float));
  std::thread t([p] { runtime::arena_release(p, 512 * sizeof(float)); });
  t.join();
  EXPECT_EQ(runtime::arena_stats().releases, 1);
}

TEST(Workspace, CrossThreadCycleConvergesViaOverflowPool) {
  // Producer/consumer pattern of the serving path: this thread acquires,
  // a client thread frees. Once the client's freelist overflows into the
  // shared pool, the producer's next acquire must reuse instead of
  // allocating.
  PoolSize guard(1);
  runtime::arena_trim();
  constexpr std::size_t kBytes = 2048 * sizeof(float);
  constexpr int kBlocks = 20;  // > per-bucket freelist cap of 16
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) {
    blocks.push_back(runtime::arena_acquire(kBytes));
  }
  std::thread client([&] {
    for (void* p : blocks) runtime::arena_release(p, kBytes);
  });
  client.join();  // client freelist (16) freed at thread exit; rest pooled
  runtime::arena_reset_counters();
  void* p = runtime::arena_acquire(kBytes);
  const auto s = runtime::arena_stats();
  EXPECT_EQ(s.misses, 0) << "producer did not reuse the pooled block";
  EXPECT_EQ(s.hits, 1);
  runtime::arena_release(p, kBytes);
}

TEST(Workspace, TrimDropsCachedBytes) {
  PoolSize guard(1);
  runtime::arena_trim();
  {
    runtime::Scratch<float> a(1 << 14);
    (void)a;
  }
  EXPECT_GT(runtime::arena_stats().bytes_cached, 0);
  runtime::arena_trim();
  // Worker threads may still hold caches of their own; this thread's are
  // gone, and with a 1-thread pool nothing else allocated since the trim.
  EXPECT_EQ(runtime::arena_stats().bytes_cached, 0);
}

TEST(Workspace, TensorScratchRoundTrip) {
  PoolSize guard(1);
  runtime::arena_trim();
  runtime::arena_reset_counters();
  {
    Tensor t = Tensor::scratch({4, 8});
    ASSERT_EQ(t.numel(), 32);
    t.fill_(3.f);
    EXPECT_FLOAT_EQ(t.at(31), 3.f);
    Tensor c = t.clone();  // clones land on the heap
    EXPECT_TRUE(c.allclose(t));
  }
  const int64_t misses = runtime::arena_stats().misses;
  {
    Tensor t2 = Tensor::scratch({4, 8});
    t2.fill_(0.f);
  }
  // Same bucket: the second scratch tensor hit the freelist.
  EXPECT_EQ(runtime::arena_stats().misses, misses);
  EXPECT_GE(runtime::arena_stats().hits, 1);
}

TEST(Workspace, SpectralSteadyStateDoesNotTouchTheHeap) {
  PoolSize guard(1);  // single arena: warmup fills every bucket it needs
  Rng rng(19);
  const Tensor x = Tensor::randn({2, 4, 16, 16}, rng);
  const Tensor w = Tensor::randn({4, 4, 8, 4, 2}, rng, 0.f, 0.3f);
  auto forward = [&] {
    return ops::spectral_conv2d(Var(x, false), Var(w, false), 4, 4, 4).value();
  };
  // Warm up: builds FFT plans and fills every bucket the op touches. The
  // reference is cloned to the heap so the warm-up output block itself
  // returns to the arena before the measured pass.
  const Tensor ref = forward().clone();
  runtime::arena_reset_counters();
  const Tensor again = forward();
  const auto s = runtime::arena_stats();
  EXPECT_EQ(s.misses, 0) << "spectral hot loop allocated after warmup";
  EXPECT_GT(s.hits, 0);
  EXPECT_TRUE(again.allclose(ref, 0.f, 0.f)) << "reuse changed results";
}

TEST(ParallelSum, MatchesSequentialForEveryThreadCount) {
  Rng rng(17);
  const Tensor a = Tensor::randn({123457}, rng);
  const float* p = a.data();
  auto chunk = [&](int64_t b, int64_t e) {
    double s = 0.0;
    for (int64_t i = b; i < e; ++i) s += p[i];
    return s;
  };
  ThreadPool::instance().resize(1);
  const double ref = parallel_sum(a.numel(), 4096, chunk);
  for (const int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    EXPECT_EQ(parallel_sum(a.numel(), 4096, chunk), ref);
  }
  ThreadPool::instance().resize(1);
}

}  // namespace
}  // namespace saufno
