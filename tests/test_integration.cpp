// End-to-end integration tests: the full pipeline the benches run —
// chip spec -> power sampling -> FDM ground truth -> dataset -> training
// -> evaluation -> checkpointing — exercised at miniature scale.

#include <filesystem>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tensor/tensor_ops.h"
#include "data/generator.h"
#include "nn/serialize.h"
#include "thermal/compact_rc.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "train/transfer.h"

namespace saufno {
namespace {

TEST(Integration, SauFnoLearnsChip1EndToEnd) {
  set_log_level(LogLevel::kWarn);
  data::GenConfig cfg;
  cfg.resolution = 12;
  cfg.n_samples = 20;
  cfg.seed = 31337;
  cfg.cache = false;
  const auto spec = chip::make_chip1();
  auto d = data::generate_dataset(spec, cfg);
  auto [train_set, test_set] = d.split(16);
  const auto norm = data::Normalizer::fit(train_set, 2);

  auto model = train::make_model("SAU-FNO", 4, 2, /*seed=*/5);
  train::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 4;
  tc.lr = 2e-3;
  train::Trainer tr(*model, norm, tc);
  const auto report = tr.fit(train_set);
  EXPECT_LT(report.final_loss(), report.epoch_loss.front());

  const auto m = tr.evaluate(test_set);
  // Untrained models sit at several kelvin RMSE on this data; a briefly
  // trained SAU-FNO must already be clearly better than that.
  auto fresh = train::make_model("SAU-FNO", 4, 2, /*seed=*/6);
  train::Trainer fresh_tr(*fresh, norm, tc);
  const auto m0 = fresh_tr.evaluate(test_set);
  EXPECT_LT(m.rmse, 0.7 * m0.rmse);
  EXPECT_LT(m.max_err, m0.max_err + 5.0);
}

TEST(Integration, CheckpointPreservesPredictionsExactly) {
  set_log_level(LogLevel::kWarn);
  data::GenConfig cfg;
  cfg.resolution = 10;
  cfg.n_samples = 8;
  cfg.seed = 77;
  cfg.cache = false;
  auto d = data::generate_dataset(chip::make_chip1(), cfg);
  const auto norm = data::Normalizer::fit(d, 2);

  auto model = train::make_model("SAU-FNO", 4, 2, 9);
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 4;
  train::Trainer tr(*model, norm, tc);
  tr.fit(d);
  Tensor pred_before = tr.predict(d.inputs);

  const std::string path = ::testing::TempDir() + "/saufno_int_ckpt.bin";
  nn::save_checkpoint(*model, path);
  auto model2 = train::make_model("SAU-FNO", 4, 2, /*different seed=*/10);
  nn::load_checkpoint(*model2, path);
  train::Trainer tr2(*model2, norm, tc);
  Tensor pred_after = tr2.predict(d.inputs);
  EXPECT_TRUE(pred_after.allclose(pred_before, 1e-6f, 1e-4f));
  std::filesystem::remove(path);
}

TEST(Integration, MeshInvarianceTrainCoarseEvalFine) {
  // The property Section III-C builds on: a model trained at one grid can
  // be evaluated at a finer grid and still beat an untrained model there.
  set_log_level(LogLevel::kWarn);
  const auto spec = chip::make_chip1();
  data::GenConfig lo;
  lo.resolution = 10;
  lo.n_samples = 18;
  lo.seed = 1;
  lo.cache = false;
  data::GenConfig hi;
  hi.resolution = 16;
  hi.n_samples = 5;
  hi.seed = 2;
  hi.cache = false;
  auto lo_set = data::generate_dataset(spec, lo);
  auto hi_set = data::generate_dataset(spec, hi);
  const auto norm = data::Normalizer::fit(lo_set, 2);

  auto model = train::make_model("U-FNO", 4, 2, 3);
  train::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 6;
  tc.lr = 2e-3;
  train::Trainer tr(*model, norm, tc);
  tr.fit(lo_set);

  auto fresh = train::make_model("U-FNO", 4, 2, 4);
  train::Trainer fresh_tr(*fresh, norm, tc);
  EXPECT_LT(tr.evaluate(hi_set).rmse, fresh_tr.evaluate(hi_set).rmse);
}

TEST(Integration, SolversAgreeOnOrdering) {
  // All three solver paths (FDM coarse, FDM refined, compact RC) must tell
  // a consistent story on the same workload: same hottest chip behaviour
  // as Table IV (refined and coarse within a kelvin, RC biased high).
  const auto spec = chip::make_chip3();
  chip::PowerGenerator gen(spec);
  Rng rng(5);
  const auto pa = gen.sample(rng);

  thermal::FdmSolver solver;
  const auto coarse = solver.solve(thermal::build_grid(spec, pa, 14, 14, 1));
  const auto fine = solver.solve(thermal::build_grid(spec, pa, 14, 14, 2));
  thermal::CompactRcSolver rc(spec);
  const auto rc_res = rc.solve(pa);

  EXPECT_NEAR(coarse.max_temperature(), fine.max_temperature(), 1.0);
  EXPECT_GT(rc_res.max_temperature(), fine.max_temperature() - 1.0);
}

TEST(Integration, DatasetPowerChannelsDrivePrediction) {
  // Sanity on the learned mapping: scaling the input power up must raise
  // the predicted temperatures of a trained model (physical monotonicity
  // learned from data).
  set_log_level(LogLevel::kWarn);
  data::GenConfig cfg;
  cfg.resolution = 12;
  cfg.n_samples = 20;
  cfg.seed = 13;
  cfg.cache = false;
  auto d = data::generate_dataset(chip::make_chip1(), cfg);
  const auto norm = data::Normalizer::fit(d, 2);
  auto model = train::make_model("FNO", 4, 2, 14);
  train::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 5;
  tc.lr = 2e-3;
  train::Trainer tr(*model, norm, tc);
  tr.fit(d);

  Tensor one = slice(d.inputs, 0, 0, 1);
  Tensor boosted = one.clone();
  // Scale the two power channels by 1.5 (channels 0, 1), leave coords.
  const int64_t plane = 12 * 12;
  for (int64_t i = 0; i < 2 * plane; ++i) boosted.data()[i] *= 1.5f;
  const float mean_base = mean_all(tr.predict(one));
  const float mean_boost = mean_all(tr.predict(boosted));
  EXPECT_GT(mean_boost, mean_base);
}

}  // namespace
}  // namespace saufno
