// Compiled execution plans: trace/compile/execute must be BIT-identical to
// the define-by-run interpreter (memcmp, not allclose) — the plan path runs
// the same kernels in the same order, so there is no tolerance to hide
// behind. Covers every zoo model on pow2 and non-pow2 grids, the fusion /
// folding compiler passes, the per-shape plan cache (including concurrent
// first use), the interpreter fallback for untraceable models, and the
// plan-arena Reservation plumbing.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "plan/ir.h"
#include "plan/runner.h"
#include "plan/trace.h"
#include "runtime/inference_engine.h"
#include "runtime/workspace.h"
#include "tensor/tensor_ops.h"
#include "testing.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

void expect_bitwise(const Tensor& got, const Tensor& want,
                    const std::string& what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                           sizeof(float) * static_cast<std::size_t>(
                                               got.numel())))
      << what << ": plan output is not bit-identical to the interpreter";
}

// Every model the zoo can build, including the ablations — if it can be
// served, it must be plannable (or fall back loudly, which would fail the
// executor_for assertion here).
const std::vector<std::string> kZooNames = {
    "SAU-FNO-micro", "SAU-FNO", "SAU-FNO-all-attn", "U-FNO",
    "FNO",           "DeepOHeat", "GAR",            "CNN"};

TEST(PlanVsInterp, AllZooModelsBitIdenticalOnPow2AndNonPow2) {
  for (const std::string& name : kZooNames) {
    SCOPED_TRACE(name);
    auto model = train::make_model(name, 3, 1, /*seed=*/7);
    model->set_training(false);
    plan::PlanRunner planned(model, plan::Mode::kOn);
    plan::PlanRunner interp(model, plan::Mode::kOff);
    Rng rng = testing::test_rng();
    for (const Shape& shape :
         {Shape{2, 3, 16, 16}, Shape{1, 3, 12, 20}}) {
      SCOPED_TRACE(shape_str(shape));
      Tensor x = Tensor::randn(shape, rng);
      Tensor want = interp.forward(x);
      Tensor got = planned.forward(x);
      // The plan must actually have compiled — a silent fallback would make
      // this test vacuous.
      ASSERT_NE(planned.executor_for(shape), nullptr);
      expect_bitwise(got, want, name);
      // Second run exercises the pooled BoundBuffer path.
      expect_bitwise(planned.forward(x), want, name + " (rerun)");
    }
  }
}

TEST(PlanCompile, FusesBiasActAndScaledSoftmaxInSauFno) {
  auto model = train::make_model("SAU-FNO-micro", 3, 1, 7);
  model->set_training(false);
  plan::PlanRunner runner(model, plan::Mode::kOn);
  const Shape shape{1, 3, 16, 16};
  Rng rng = testing::test_rng();
  runner.forward(Tensor::randn(shape, rng));
  auto exec = runner.executor_for(shape);
  ASSERT_NE(exec, nullptr);
  // gelu(K(v) + W(v)) in every Fourier layer and softmax(scores / sqrt(d))
  // in the attention block both fuse.
  EXPECT_GT(exec->plan().fused_ops, 0);
  EXPECT_GT(exec->plan().arena_floats, 0);
  EXPECT_FALSE(plan::to_string(exec->plan()).empty());
}

TEST(PlanCompile, FoldsConstantTrunkInDeepOHeat) {
  auto model = train::make_model("DeepOHeat", 3, 1, 7);
  model->set_training(false);
  plan::PlanRunner runner(model, plan::Mode::kOn);
  const Shape shape{1, 3, 16, 16};
  Rng rng = testing::test_rng();
  runner.forward(Tensor::randn(shape, rng));
  auto exec = runner.executor_for(shape);
  ASSERT_NE(exec, nullptr);
  // The trunk MLP runs on a shape-derived constant coordinate grid: the
  // whole chain folds to one kConst at compile time.
  EXPECT_GT(exec->plan().folded_ops, 0);
}

TEST(PlanKernels, FusedAddActBitIdenticalToUnfusedChain) {
  Rng rng = testing::test_rng();
  const Shape s{2, 8, 6, 6};
  Tensor a = Tensor::randn(s, rng), b = Tensor::randn(s, rng),
         c = Tensor::randn(s, rng);
  // 3-input same-shape form: gelu((a + b) + c).
  Tensor want = gelu(add(add(a, b), c));
  Tensor out(s);
  fused_add_act_into(a, b, &c, /*act=*/2, out);
  expect_bitwise(out, want, "gelu((a+b)+c)");
  // 2-input broadcasting form: relu(a + bias).
  Tensor bias = Tensor::randn({1, 8, 1, 1}, rng);
  Tensor want2 = relu(add(a, bias));
  Tensor out2(s);
  fused_add_act_into(a, bias, nullptr, /*act=*/1, out2);
  expect_bitwise(out2, want2, "relu(a+bias)");
}

TEST(PlanKernels, ScaledSoftmaxBitIdenticalToMulScalarSoftmax) {
  Rng rng = testing::test_rng();
  Tensor a = Tensor::randn({2, 5, 7}, rng);
  Tensor want = softmax_lastdim(mul_scalar(a, 0.37f));
  Tensor out({2, 5, 7});
  scaled_softmax_lastdim_into(a, 0.37f, out);
  expect_bitwise(out, want, "softmax(0.37*a)");
}

TEST(PlanRunner, CompileOnlyValidatesButInterprets) {
  auto model = train::make_model("FNO", 3, 1, 9);
  model->set_training(false);
  plan::PlanRunner canary(model, plan::Mode::kCompileOnly);
  plan::PlanRunner interp(model, plan::Mode::kOff);
  const Shape shape{1, 3, 16, 16};
  Rng rng = testing::test_rng();
  Tensor x = Tensor::randn(shape, rng);
  expect_bitwise(canary.forward(x), interp.forward(x), "compile-only");
  // compile-only still compiles (that is its job)...
  EXPECT_EQ(canary.cache_size(), 1u);
  EXPECT_NE(canary.executor_for(shape), nullptr);
  // ...while off never touches the tracer.
  EXPECT_EQ(interp.cache_size(), 0u);
}

TEST(PlanRunner, CachesOnePlanPerShape) {
  auto model = train::make_model("CNN", 3, 1, 9);
  model->set_training(false);
  plan::PlanRunner runner(model, plan::Mode::kOn);
  Rng rng = testing::test_rng();
  runner.forward(Tensor::randn({1, 3, 16, 16}, rng));
  runner.forward(Tensor::randn({1, 3, 16, 16}, rng));
  EXPECT_EQ(runner.cache_size(), 1u);
  runner.forward(Tensor::randn({2, 3, 12, 20}, rng));
  EXPECT_EQ(runner.cache_size(), 2u);
}

// Mirrors TEST(PlanCache, ConcurrentFirstUseIsCorrectAndCached) in
// test_fft.cpp: racing first-users may compile twice, but exactly one plan
// is published and every thread's result is bit-identical.
TEST(PlanCache, ConcurrentFirstUseIsCorrectAndCached) {
  auto model = train::make_model("SAU-FNO-micro", 3, 1, 11);
  model->set_training(false);
  plan::PlanRunner runner(model, plan::Mode::kOn);
  plan::PlanRunner interp(model, plan::Mode::kOff);
  const Shape shape{1, 3, 16, 16};
  Rng rng = testing::test_rng();
  Tensor x = Tensor::randn(shape, rng);
  Tensor want = interp.forward(x);

  constexpr int kThreads = 4;
  std::vector<Tensor> results(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      results[static_cast<std::size_t>(t)] = runner.forward(x);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(runner.cache_size(), 1u);
  for (int t = 0; t < kThreads; ++t) {
    expect_bitwise(results[static_cast<std::size_t>(t)], want,
                   "thread " + std::to_string(t));
  }
}

TEST(PlanRunner, UnsupportedOpFallsBackToInterpreter) {
  // sum_all has no plan opcode: the trace poisons itself and the runner
  // serves the interpreted forward instead — identical results, negative
  // cache entry so the compile is not retried per call.
  auto model = std::make_shared<nn::Lambda>([](const Var& x) {
    Var pooled = ops::sum_all(x);  // untraceable on purpose
    (void)pooled;
    return ops::relu(x);
  });
  plan::PlanRunner runner(model, plan::Mode::kOn);
  const Shape shape{2, 3, 4, 4};
  Rng rng = testing::test_rng();
  Tensor x = Tensor::randn(shape, rng);
  Tensor got = runner.forward(x);
  expect_bitwise(got, relu(x), "fallback");
  EXPECT_EQ(runner.cache_size(), 1u);
  EXPECT_EQ(runner.executor_for(shape), nullptr);
}

TEST(InferenceEngine, PlanModeBitIdenticalToInterpretedServing) {
  // Same seed => same weights; only the forward path differs.
  runtime::InferenceEngine::Config on_cfg;
  on_cfg.plan_mode = 1;
  runtime::InferenceEngine::Config off_cfg;
  off_cfg.plan_mode = 0;
  auto planned = runtime::InferenceEngine::from_zoo("SAU-FNO-micro", 3, 1,
                                                    21, "", on_cfg);
  auto interp = runtime::InferenceEngine::from_zoo("SAU-FNO-micro", 3, 1,
                                                   21, "", off_cfg);
  Rng rng = testing::test_rng();
  for (int i = 0; i < 3; ++i) {
    Tensor x = Tensor::randn({3, 16, 16}, rng);
    Tensor a = planned->submit(x.clone()).get();
    Tensor b = interp->submit(x.clone()).get();
    expect_bitwise(a, b, "request " + std::to_string(i));
  }
  EXPECT_EQ(planned->plan_runner().mode(), plan::Mode::kOn);
  EXPECT_GE(planned->plan_runner().cache_size(), 1u);
}

TEST(Reservation, TracksBytesAndAlignment) {
  const runtime::ArenaStats before = runtime::arena_stats();
  {
    runtime::Reservation r(4096);
    ASSERT_NE(r.floats(), nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(r.floats()) % 64, 0u);
    EXPECT_EQ(r.bytes(), 4096u);
    const runtime::ArenaStats mid = runtime::arena_stats();
    EXPECT_EQ(mid.reservations, before.reservations + 1);
    EXPECT_EQ(mid.reserved_bytes, before.reserved_bytes + 4096);
    // Move transfers ownership without double-counting.
    runtime::Reservation moved = std::move(r);
    EXPECT_EQ(runtime::arena_stats().reservations, before.reservations + 1);
    EXPECT_EQ(moved.bytes(), 4096u);
  }
  const runtime::ArenaStats after = runtime::arena_stats();
  EXPECT_EQ(after.reservations, before.reservations);
  EXPECT_EQ(after.reserved_bytes, before.reserved_bytes);
}

TEST(Tensor, WrapExternalSharesCallerMemory) {
  std::vector<float> buf(8, 0.f);
  Tensor t = Tensor::wrap_external(buf.data(), {2, 4});
  t.fill_(3.f);
  EXPECT_EQ(buf[5], 3.f);
  // Reshape views stay on the external buffer...
  Tensor view = t.reshape({4, 2});
  view.data()[0] = 7.f;
  EXPECT_EQ(buf[0], 7.f);
  // ...while clone() detaches to the heap.
  Tensor copy = t.clone();
  copy.fill_(0.f);
  EXPECT_EQ(buf[5], 3.f);
}

}  // namespace
}  // namespace saufno
