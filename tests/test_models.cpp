#include "train/model_zoo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/sau_fno.h"
#include "core/unet.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

TEST(UNet, PreservesShapeAtPow2AndOddDepthClamp) {
  Rng rng(1);
  core::UNet unet(4, 6, 3, rng);
  for (int64_t n : {8, 16, 12}) {
    Var x(Tensor::randn({1, 4, n, n}, rng), false);
    EXPECT_EQ(unet.forward(x).shape(), (Shape{1, 4, n, n})) << "n=" << n;
  }
}

TEST(UNet, TinyInputSkipsPooling) {
  Rng rng(2);
  core::UNet unet(3, 4, 3, rng);
  Var x(Tensor::randn({1, 3, 4, 4}, rng), false);
  // 4x4 < 8: no pooling level engages but the net still runs.
  EXPECT_EQ(unet.forward(x).shape(), (Shape{1, 3, 4, 4}));
}

TEST(UNet, TrainsGradientsThroughSkips) {
  Rng rng(3);
  core::UNet unet(2, 4, 2, rng);
  Var x(Tensor::randn({1, 2, 8, 8}, rng), false);
  ops::sum_all(ops::square(unet.forward(x))).backward();
  int64_t with_grad = 0, total = 0;
  for (auto& [name, p] : unet.named_parameters()) {
    ++total;
    if (sum_all(abs(p.grad())) > 0) ++with_grad;
  }
  // All levels engaged at 8x8 with depth 2 (8 -> 4); every parameter that
  // participates must receive gradient. in/out convs + enc/dec of level 0
  // participate; deeper levels may be clamped out.
  EXPECT_GE(with_grad, total - 4);
}

TEST(SauFno, ForwardShapeAndFiniteness) {
  Rng rng(4);
  core::SauFno::Config cfg = core::SauFno::Config::chip_default(4, 2);
  cfg.width = 8;
  cfg.modes1 = 4;
  cfg.modes2 = 4;
  cfg.unet_base = 8;
  cfg.attention_dim = 8;
  core::SauFno model(cfg, rng);
  Var x(Tensor::randn({2, 4, 16, 16}, rng), false);
  Var y = model.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 2, 16, 16}));
  for (int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(y.value().at(i)));
  }
}

TEST(SauFno, MeshInvarianceTrainCoarseInferFine) {
  // The headline operator property: one parameter set runs at 16x16 and
  // 24x24 without modification.
  Rng rng(5);
  core::SauFno::Config cfg = core::SauFno::Config::chip_default(3, 1);
  cfg.width = 8;
  cfg.modes1 = 4;
  cfg.modes2 = 4;
  cfg.unet_base = 8;
  cfg.attention_dim = 8;
  core::SauFno model(cfg, rng);
  Var coarse(Tensor::randn({1, 3, 16, 16}, rng), false);
  Var fine(Tensor::randn({1, 3, 24, 24}, rng), false);
  EXPECT_EQ(model.forward(coarse).shape(), (Shape{1, 1, 16, 16}));
  EXPECT_EQ(model.forward(fine).shape(), (Shape{1, 1, 24, 24}));
}

TEST(SauFno, AttentionPlacementChangesParameterCount) {
  auto count = [](core::AttentionPlacement p) {
    Rng rng(6);
    core::SauFno::Config cfg = core::SauFno::Config::chip_default(3, 1);
    cfg.width = 8;
    cfg.modes1 = 4;
    cfg.modes2 = 4;
    cfg.unet_base = 8;
    cfg.attention_dim = 8;
    cfg.attention = p;
    core::SauFno m(cfg, rng);
    return m.num_parameters();
  };
  const int64_t none = count(core::AttentionPlacement::kNone);
  const int64_t last = count(core::AttentionPlacement::kLast);
  const int64_t all = count(core::AttentionPlacement::kAll);
  EXPECT_LT(none, last);
  EXPECT_LT(last, all);
}

TEST(SauFno, RejectsWrongChannelCount) {
  Rng rng(7);
  core::SauFno::Config cfg = core::SauFno::Config::chip_default(3, 1);
  cfg.width = 8;
  cfg.unet_base = 8;
  core::SauFno model(cfg, rng);
  Var bad(Tensor::randn({1, 5, 16, 16}, rng), false);
  EXPECT_THROW(model.forward(bad), std::runtime_error);
}

class ZooModelP : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelP, ForwardShapeGradFlowDeterminism) {
  const std::string name = GetParam();
  auto model = train::make_model(name, 4, 2, /*seed=*/77);
  Rng rng(8);
  Var x(Tensor::randn({2, 4, 16, 16}, rng), false);
  Var y = model->forward(x);
  ASSERT_EQ(y.shape(), (Shape{2, 2, 16, 16}));
  for (int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(y.value().at(i))) << name;
  }
  // Same seed => identical model => identical output.
  auto model2 = train::make_model(name, 4, 2, /*seed=*/77);
  EXPECT_TRUE(model2->forward(x).value().allclose(y.value()))
      << name << " is not seed-deterministic";
  // Gradients reach at least 80% of parameters on a generic input (the
  // U-Net's deepest levels are depth-clamped at 16x16 and legitimately
  // receive none — see core/unet.h).
  ops::sum_all(ops::square(y)).backward();
  int64_t with_grad = 0, total = 0;
  for (auto& [pname, p] : model->named_parameters()) {
    ++total;
    if (sum_all(abs(p.grad())) > 0) ++with_grad;
  }
  EXPECT_GE(with_grad * 5, total * 4) << name;
}

TEST_P(ZooModelP, MeshInvariantModelsAcceptOtherResolutions) {
  const std::string name = GetParam();
  if (name == "CNN") {
    // The CNN is the one deliberately non-operator baseline; it does run
    // at any size (convs are size-agnostic) but makes no invariance claim.
    GTEST_SKIP();
  }
  auto model = train::make_model(name, 3, 1, /*seed=*/3);
  Rng rng(9);
  Var a(Tensor::randn({1, 3, 16, 16}, rng), false);
  Var b(Tensor::randn({1, 3, 24, 24}, rng), false);
  EXPECT_EQ(model->forward(a).shape(), (Shape{1, 1, 16, 16}));
  EXPECT_EQ(model->forward(b).shape(), (Shape{1, 1, 24, 24}));
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, ZooModelP,
                         ::testing::Values("SAU-FNO", "U-FNO", "FNO",
                                           "DeepOHeat", "GAR", "CNN",
                                           "SAU-FNO-all-attn"));

TEST(ModelZoo, UnknownNameThrows) {
  EXPECT_THROW(train::make_model("NOPE", 3, 1, 0), std::runtime_error);
}

TEST(ModelZoo, Table2NamesMatchPaperOrder) {
  const auto names = train::table2_model_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names.front(), "DeepOHeat");
  EXPECT_EQ(names.back(), "SAU-FNO");
}

TEST(ModelZoo, UFnoIsSauFnoWithoutAttention) {
  // The ablation relationship: U-FNO must have strictly fewer parameters
  // than SAU-FNO at the same seed, with the difference exactly the
  // attention block.
  auto sau = train::make_model("SAU-FNO", 3, 1, 42);
  auto ufno = train::make_model("U-FNO", 3, 1, 42);
  EXPECT_GT(sau->num_parameters(), ufno->num_parameters());
}

}  // namespace
}  // namespace saufno
