#pragma once

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace saufno {
namespace testing {

/// Finite-difference gradient verification.
///
/// `fn` maps the leaf variables to a SCALAR Var; every leaf in `leaves`
/// must require grad. For each leaf entry we compare the autograd gradient
/// against a central difference of the loss. This is the ground truth for
/// every backward rule in the library — including the hand-derived FFT
/// adjoints of the spectral convolution.
inline void expect_gradients_match(
    const std::function<Var(std::vector<Var>&)>& fn, std::vector<Var> leaves,
    float eps = 1e-2f, float rtol = 2e-2f, float atol = 2e-3f) {
  for (auto& leaf : leaves) {
    ASSERT_TRUE(leaf.requires_grad()) << "leaf must require grad";
    leaf.zero_grad();
  }
  Var loss = fn(leaves);
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();

  for (std::size_t li = 0; li < leaves.size(); ++li) {
    Tensor analytic = leaves[li].grad();
    Tensor& value = leaves[li].value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float orig = value.at(i);
      value.at(i) = orig + eps;
      const float up = fn(leaves).value().item();
      value.at(i) = orig - eps;
      const float down = fn(leaves).value().item();
      value.at(i) = orig;
      const float numeric = (up - down) / (2.f * eps);
      const float got = analytic.at(i);
      const float tol = atol + rtol * std::fabs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "leaf " << li << " element " << i;
    }
  }
}

}  // namespace testing
}  // namespace saufno
