// Checkpoint formats: v3 ("SAUFNOC3") self-describing artifacts that carry
// the model-zoo identity, the fitted normalizer and (for transient
// surrogates) the rollout spec; legacy v2/v1 loading; and clean rejection
// of corrupt or truncated files.

#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/normalizer.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

std::shared_ptr<nn::Module> tiny_model(std::uint64_t seed) {
  return train::make_model("CNN", /*in_channels=*/3, /*out_channels=*/1, seed);
}

data::Normalizer fitted_norm() {
  return data::Normalizer::from_stats(/*ambient=*/298.15,
                                      /*power_scale=*/2.5,
                                      /*temp_scale=*/7.25,
                                      /*n_power_channels=*/1);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

bool same_params(const nn::Module& a, const nn::Module& b) {
  auto sa = nn::state_dict(a);
  auto sb = nn::state_dict(b);
  if (sa.size() != sb.size()) return false;
  for (const auto& [name, t] : sa) {
    auto it = sb.find(name);
    if (it == sb.end() || it->second.shape() != t.shape()) return false;
    if (std::memcmp(it->second.data(), t.data(),
                    sizeof(float) * static_cast<std::size_t>(t.numel())) != 0)
      return false;
  }
  return true;
}

template <typename T>
void write_pod(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

TEST(CheckpointV2, RoundTripPreservesMetaAndWeights) {
  auto model = tiny_model(1);
  const std::string path = temp_path("saufno_v2.ckpt");
  train::save_deployable(*model, "CNN", 3, 1, fitted_norm(), path);

  auto model2 = tiny_model(2);
  ASSERT_FALSE(same_params(*model, *model2));
  const nn::CheckpointMeta meta = nn::load_checkpoint(*model2, path);
  EXPECT_TRUE(same_params(*model, *model2));
  EXPECT_EQ(meta.version, 3);
  EXPECT_EQ(meta.model_name, "CNN");
  EXPECT_FALSE(meta.has_rollout);
  EXPECT_EQ(meta.in_channels, 3);
  EXPECT_EQ(meta.out_channels, 1);
  ASSERT_TRUE(meta.has_normalizer);
  EXPECT_DOUBLE_EQ(meta.normalizer.ambient(), 298.15);
  EXPECT_DOUBLE_EQ(meta.normalizer.power_scale(), 2.5);
  EXPECT_DOUBLE_EQ(meta.normalizer.temp_scale(), 7.25);
  EXPECT_EQ(meta.normalizer.n_power_channels(), 1);

  // Meta-only read must agree without touching parameter data.
  const nn::CheckpointMeta peek = nn::read_checkpoint_meta(path);
  EXPECT_EQ(peek.model_name, "CNN");
  EXPECT_TRUE(peek.has_normalizer);
  std::remove(path.c_str());
}

TEST(CheckpointV2, DefaultSaveHasNoNormalizer) {
  auto model = tiny_model(3);
  const std::string path = temp_path("saufno_v2_plain.ckpt");
  nn::save_checkpoint(*model, path);  // weights-only, but still v3
  const nn::CheckpointMeta meta = nn::read_checkpoint_meta(path);
  EXPECT_EQ(meta.version, 3);
  EXPECT_FALSE(meta.has_normalizer);
  auto model2 = tiny_model(4);
  nn::load_checkpoint(*model2, path);
  EXPECT_TRUE(same_params(*model, *model2));
  std::remove(path.c_str());
}

TEST(CheckpointV2, LegacyV1FilesStillLoad) {
  auto model = tiny_model(5);
  const std::string path = temp_path("saufno_v1.ckpt");
  nn::save_checkpoint_v1(*model, path);

  auto model2 = tiny_model(6);
  const nn::CheckpointMeta meta = nn::load_checkpoint(*model2, path);
  EXPECT_TRUE(same_params(*model, *model2));
  EXPECT_EQ(meta.version, 1);
  EXPECT_TRUE(meta.model_name.empty());
  EXPECT_FALSE(meta.has_normalizer);
  EXPECT_EQ(nn::read_checkpoint_meta(path).version, 1);
  std::remove(path.c_str());
}

TEST(CheckpointV2, LegacyV2LayoutStillLoads) {
  // Hand-written v2 file (the pre-rollout layout: meta stops after the
  // normalizer flag). The reader must not consume a rollout flag that v2
  // never wrote.
  const std::string path = temp_path("saufno_legacy_v2.ckpt");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  write_pod<std::uint64_t>(out, 0x53415546'4e4f4332ULL);  // "SAUFNOC2"
  write_pod<std::uint64_t>(out, 3);
  out.write("CNN", 3);
  write_pod<std::int64_t>(out, 3);  // in_channels
  write_pod<std::int64_t>(out, 1);  // out_channels
  write_pod<std::int64_t>(out, 0);  // size_hint
  write_pod<std::uint8_t>(out, 0);  // no normalizer
  write_pod<std::uint64_t>(out, 0); // no parameters
  out.close();
  const nn::CheckpointMeta meta = nn::read_checkpoint_meta(path);
  EXPECT_EQ(meta.version, 2);
  EXPECT_EQ(meta.model_name, "CNN");
  EXPECT_FALSE(meta.has_normalizer);
  EXPECT_FALSE(meta.has_rollout);
  auto victim = tiny_model(12);
  // Zero stored parameters: legal in non-strict mode, nothing overwritten.
  EXPECT_NO_THROW(nn::load_checkpoint(*victim, path, /*strict=*/false));
  std::remove(path.c_str());
}

TEST(CheckpointV2, LoadDeployableRebuildsModelFromFileAlone) {
  auto model = tiny_model(7);
  const std::string path = temp_path("saufno_deploy.ckpt");
  train::save_deployable(*model, "CNN", 3, 1, fitted_norm(), path);

  const train::LoadedModel loaded = train::load_deployable(path);
  ASSERT_NE(loaded.model, nullptr);
  EXPECT_TRUE(same_params(*model, *loaded.model));
  EXPECT_EQ(loaded.meta.model_name, "CNN");
  ASSERT_TRUE(loaded.meta.has_normalizer);
  std::remove(path.c_str());
}

TEST(CheckpointV2, LoadDeployableRejectsV1) {
  auto model = tiny_model(8);
  const std::string path = temp_path("saufno_v1_only.ckpt");
  nn::save_checkpoint_v1(*model, path);
  EXPECT_THROW(train::load_deployable(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointV2, TruncatedFilesAreRejected) {
  auto model = tiny_model(9);
  const std::string full_path = temp_path("saufno_full.ckpt");
  train::save_deployable(*model, "CNN", 3, 1, fitted_norm(), full_path);

  std::ifstream in(full_path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  // Cut mid-meta, mid-header and mid-tensor-data: every prefix must fail
  // with a clean error, never a garbage tensor.
  const std::string cut_path = temp_path("saufno_cut.ckpt");
  for (const std::size_t keep :
       {std::size_t{12}, std::size_t{40}, bytes.size() / 2,
        bytes.size() - 5}) {
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    auto victim = tiny_model(10);
    EXPECT_THROW(nn::load_checkpoint(*victim, cut_path), std::runtime_error)
        << "truncation at byte " << keep << " was not rejected";
  }
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

TEST(CheckpointV2, GarbageDimsRejectedBeforeAllocation) {
  // Hand-crafted v1 files whose header claims absurd tensor geometry. The
  // loader must bound per-dim size and total numel BEFORE allocating.
  struct Case {
    const char* what;
    std::vector<std::int64_t> dims;
  };
  const Case cases[] = {
      {"negative dim", {4, -3}},
      {"zero dim", {0, 4}},
      {"oversized dim", {std::int64_t{1} << 40, 2}},
      // Each dim individually fine, product overflows the numel bound.
      {"oversized numel", {std::int64_t{1} << 20, std::int64_t{1} << 20}},
  };
  const std::string path = temp_path("saufno_garbage.ckpt");
  for (const Case& c : cases) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    write_pod<std::uint64_t>(out, 0x53415546'4e4f4331ULL);  // "SAUFNOC1"
    write_pod<std::uint64_t>(out, 1);                       // one parameter
    write_pod<std::uint64_t>(out, 1);                       // name length
    out.put('w');
    write_pod<std::uint64_t>(out, c.dims.size());           // rank
    for (std::int64_t d : c.dims) write_pod<std::int64_t>(out, d);
    out.close();
    auto victim = tiny_model(11);
    EXPECT_THROW(nn::load_checkpoint(*victim, path), std::runtime_error)
        << c.what << " was not rejected";
  }
  std::remove(path.c_str());
}

TEST(CheckpointV2, GarbageMetaChannelsRejected) {
  // A corrupt v2 header must not feed absurd channel counts into
  // make_model's tensor sizing.
  const std::string path = temp_path("saufno_badmeta.ckpt");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  write_pod<std::uint64_t>(out, 0x53415546'4e4f4332ULL);  // "SAUFNOC2"
  write_pod<std::uint64_t>(out, 3);
  out.write("CNN", 3);
  write_pod<std::int64_t>(out, std::int64_t{1} << 40);  // in_channels
  write_pod<std::int64_t>(out, 1);                      // out_channels
  write_pod<std::int64_t>(out, 0);                      // size_hint
  write_pod<std::uint8_t>(out, 0);                      // no normalizer
  write_pod<std::uint64_t>(out, 0);                     // no parameters
  out.close();
  EXPECT_THROW(nn::read_checkpoint_meta(path), std::runtime_error);
  EXPECT_THROW(train::load_deployable(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace saufno
