#include "tensor/tensor.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace {

TEST(TensorBasics, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  // Zero initialized.
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.f);
}

TEST(TensorBasics, FromValuesAndItem) {
  Tensor t({3}, {1.f, 2.f, 3.f});
  EXPECT_EQ(t.at(1), 2.f);
  Tensor s({1}, {42.f});
  EXPECT_EQ(s.item(), 42.f);
  EXPECT_THROW(t.item(), std::runtime_error);
}

TEST(TensorBasics, ShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.f, 2.f, 3.f}), std::runtime_error);
}

TEST(TensorBasics, ReshapeSharesStorage) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshape({3, 2});
  r.at(0) = 99.f;
  EXPECT_EQ(t.at(0), 99.f);  // same storage
  EXPECT_THROW(t.reshape({4, 2}), std::runtime_error);
}

TEST(TensorBasics, ReshapeInfersDimension) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.reshape({-1, 4}).shape(), (Shape{6, 4}));
  EXPECT_EQ(t.reshape({2, -1}).shape(), (Shape{2, 12}));
  EXPECT_THROW(t.reshape({-1, -1}), std::runtime_error);
  EXPECT_THROW(t.reshape({-1, 5}), std::runtime_error);
}

TEST(TensorBasics, CloneIsDeep) {
  Tensor t({2}, {1.f, 2.f});
  Tensor c = t.clone();
  c.at(0) = 7.f;
  EXPECT_EQ(t.at(0), 1.f);
}

TEST(TensorBasics, FillAddMul) {
  Tensor t({3});
  t.fill_(2.f);
  Tensor u({3});
  u.fill_(1.f);
  t.add_(u, 3.f);
  EXPECT_EQ(t.at(0), 5.f);
  t.mul_(0.5f);
  EXPECT_EQ(t.at(2), 2.5f);
}

TEST(TensorBasics, RandnStatistics) {
  Rng rng(5);
  Tensor t = Tensor::randn({10000}, rng);
  const float m = mean_all(t);
  EXPECT_NEAR(m, 0.f, 0.05f);
  float var = 0.f;
  for (int64_t i = 0; i < t.numel(); ++i) var += (t.at(i) - m) * (t.at(i) - m);
  var /= static_cast<float>(t.numel());
  EXPECT_NEAR(var, 1.f, 0.1f);
}

TEST(BroadcastShape, Rules) {
  EXPECT_EQ(broadcast_shape({2, 3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shape({2, 1}, {1, 3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shape({3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shape({4, 1, 2}, {3, 1}), (Shape{4, 3, 2}));
  EXPECT_THROW(broadcast_shape({2, 3}, {4, 3}), std::runtime_error);
}

TEST(ElementwiseOps, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = add(a, b);
  EXPECT_TRUE(c.allclose(Tensor({2, 2}, {11, 22, 33, 44})));
}

TEST(ElementwiseOps, AddBroadcastRow) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  Tensor c = add(a, b);
  EXPECT_TRUE(c.allclose(Tensor({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(ElementwiseOps, MulBroadcastColumn) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({2, 1}, {2, 3});
  Tensor c = mul(a, b);
  EXPECT_TRUE(c.allclose(Tensor({2, 3}, {2, 4, 6, 12, 15, 18})));
}

TEST(ElementwiseOps, DivAndSub) {
  Tensor a({2}, {8, 9});
  Tensor b({2}, {2, 3});
  EXPECT_TRUE(div(a, b).allclose(Tensor({2}, {4, 3})));
  EXPECT_TRUE(sub(a, b).allclose(Tensor({2}, {6, 6})));
}

TEST(ElementwiseOps, UnaryFunctions) {
  Tensor a({3}, {-1.f, 0.f, 2.f});
  EXPECT_TRUE(relu(a).allclose(Tensor({3}, {0.f, 0.f, 2.f})));
  EXPECT_TRUE(neg(a).allclose(Tensor({3}, {1.f, 0.f, -2.f})));
  EXPECT_TRUE(abs(a).allclose(Tensor({3}, {1.f, 0.f, 2.f})));
  Tensor e = exp(Tensor({2}, {0.f, 1.f}));
  EXPECT_NEAR(e.at(0), 1.f, 1e-6f);
  EXPECT_NEAR(e.at(1), 2.718281f, 1e-5f);
}

TEST(ElementwiseOps, GeluMatchesDefinition) {
  // GELU(x) = x * Phi(x); spot-check a few points.
  Tensor x({3}, {-1.f, 0.f, 1.f});
  Tensor g = gelu(x);
  EXPECT_NEAR(g.at(0), -0.158655f, 1e-4f);
  EXPECT_NEAR(g.at(1), 0.f, 1e-7f);
  EXPECT_NEAR(g.at(2), 0.841345f, 1e-4f);
}

TEST(ElementwiseOps, GeluGradMatchesFiniteDifference) {
  Tensor x({5}, {-2.f, -0.5f, 0.f, 0.7f, 1.9f});
  Tensor g = gelu_grad(x);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    Tensor up = x.clone(), dn = x.clone();
    up.at(i) += eps;
    dn.at(i) -= eps;
    const float num = (gelu(up).at(i) - gelu(dn).at(i)) / (2 * eps);
    EXPECT_NEAR(g.at(i), num, 1e-3f);
  }
}

TEST(Reductions, SumMeanMaxMin) {
  Tensor a({2, 2}, {1, -5, 3, 9});
  EXPECT_EQ(sum_all(a), 8.f);
  EXPECT_EQ(mean_all(a), 2.f);
  EXPECT_EQ(max_all(a), 9.f);
  EXPECT_EQ(min_all(a), -5.f);
}

TEST(Reductions, SumDim) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(sum_dim(a, 0, false).allclose(Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(sum_dim(a, 1, false).allclose(Tensor({2}, {6, 15})));
  EXPECT_TRUE(sum_dim(a, 1, true).allclose(Tensor({2, 1}, {6, 15})));
}

TEST(Reductions, ReduceToBroadcastAdjoint) {
  Tensor g({2, 3}, {1, 1, 1, 1, 1, 1});
  EXPECT_TRUE(reduce_to(g, {3}).allclose(Tensor({3}, {2, 2, 2})));
  EXPECT_TRUE(reduce_to(g, {2, 1}).allclose(Tensor({2, 1}, {3, 3})));
  EXPECT_TRUE(reduce_to(g, {2, 3}).allclose(g));
}

TEST(LayoutOps, Transpose2d) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(transpose2d(a).allclose(Tensor({3, 2}, {1, 4, 2, 5, 3, 6})));
}

TEST(LayoutOps, PermuteRoundTrip) {
  Rng rng(3);
  Tensor a = Tensor::randn({2, 3, 4, 5}, rng);
  Tensor p = permute(a, {2, 0, 3, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 5, 3}));
  Tensor back = permute(p, {1, 3, 0, 2});
  EXPECT_TRUE(back.allclose(a));
}

TEST(LayoutOps, SliceAndCatInverse) {
  Rng rng(4);
  Tensor a = Tensor::randn({3, 4, 5}, rng);
  Tensor s0 = slice(a, 1, 0, 2);
  Tensor s1 = slice(a, 1, 2, 2);
  EXPECT_EQ(s0.shape(), (Shape{3, 2, 5}));
  Tensor back = cat({s0, s1}, 1);
  EXPECT_TRUE(back.allclose(a));
}

TEST(LayoutOps, SliceOutOfRangeThrows) {
  Tensor a({2, 2});
  EXPECT_THROW(slice(a, 0, 1, 2), std::runtime_error);
  EXPECT_THROW(slice(a, 3, 0, 1), std::runtime_error);
}

TEST(LayoutOps, Pad2dZeroBorder) {
  Tensor a({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor p = pad2d(a, 1, 0, 0, 1);
  EXPECT_EQ(p.shape(), (Shape{1, 1, 3, 3}));
  // Row 0 is padding; column 2 is padding.
  EXPECT_EQ(p.at(0), 0.f);
  EXPECT_EQ(p.at(3), 1.f);
  EXPECT_EQ(p.at(5), 0.f);
  EXPECT_EQ(p.at(7), 4.f);
}

TEST(MatMul, Known2x2) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  EXPECT_TRUE(matmul(a, b).allclose(Tensor({2, 2}, {19, 22, 43, 50})));
}

TEST(MatMul, RectangularAndMismatch) {
  Tensor a({2, 3}, {1, 0, 2, 0, 1, 1});
  Tensor b({3, 1}, {1, 2, 3});
  EXPECT_TRUE(matmul(a, b).allclose(Tensor({2, 1}, {7, 5})));
  EXPECT_THROW(matmul(a, a), std::runtime_error);
}

TEST(MatMul, BatchedWithBroadcast) {
  Tensor a({2, 1, 2}, {1, 2, 3, 4});
  Tensor b({1, 2, 2}, {1, 0, 0, 1});  // identity, broadcast over batch
  Tensor c = bmm(a, b);
  EXPECT_TRUE(c.allclose(a));
}

TEST(Softmax, RowsSumToOneAndStable) {
  // Large magnitudes must not overflow (stability shift).
  Tensor a({2, 3}, {1000.f, 1000.f, 1000.f, -1000.f, 0.f, 1000.f});
  Tensor s = softmax_lastdim(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.f;
    for (int c = 0; c < 3; ++c) sum += s.at(r * 3 + c);
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
  EXPECT_NEAR(s.at(0), 1.f / 3.f, 1e-5f);
  EXPECT_NEAR(s.at(5), 1.f, 1e-5f);
}

TEST(Resize, IdentityWhenSameSize) {
  Rng rng(6);
  Tensor a = Tensor::randn({2, 3, 4, 4}, rng);
  EXPECT_TRUE(resize_bilinear(a, 4, 4).allclose(a, 1e-5f, 1e-6f));
}

TEST(Resize, CornersExactWithAlignCorners) {
  Tensor a({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor r = resize_bilinear(a, 5, 5);
  EXPECT_NEAR(r.at(0), 1.f, 1e-6f);
  EXPECT_NEAR(r.at(4), 2.f, 1e-6f);
  EXPECT_NEAR(r.at(20), 3.f, 1e-6f);
  EXPECT_NEAR(r.at(24), 4.f, 1e-6f);
  // Center is the mean of the corners.
  EXPECT_NEAR(r.at(12), 2.5f, 1e-6f);
}

TEST(Resize, AdjointIsTransposeOfForward) {
  // <R x, y> == <x, R^T y> for random x, y — the defining property the
  // autograd rule depends on.
  Rng rng(7);
  Tensor x = Tensor::randn({1, 1, 3, 4}, rng);
  Tensor y = Tensor::randn({1, 1, 7, 5}, rng);
  Tensor rx = resize_bilinear(x, 7, 5);
  Tensor rty = resize_bilinear_adjoint(y, 3, 4);
  EXPECT_NEAR(sum_all(mul(rx, y)), sum_all(mul(x, rty)), 1e-3f);
}

TEST(Gemm, AccumulateFlag) {
  Tensor a({2, 2}, {1, 0, 0, 1});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c({2, 2}, {1, 1, 1, 1});
  gemm(a.data(), b.data(), c.data(), 2, 2, 2, /*accumulate=*/true);
  EXPECT_TRUE(c.allclose(Tensor({2, 2}, {6, 7, 8, 9})));
}

TEST(Gemm, PropagatesNanAndInfFromB) {
  // The seed kernel's `a[i,k] == 0` skip silently dropped whole columns of
  // B, so NaN/Inf there never reached C — a data-dependent result. The
  // dense kernel must honor IEEE: 0 * NaN = NaN, 0 * Inf = NaN.
  const int64_t m = 3, n = 5, k = 4;
  Tensor a = Tensor::zeros({m, k});
  a.at(0 * k + 1) = 1.f;  // row 0 touches only B row 1 (finite values)
  Tensor b({k, n});
  for (int64_t i = 0; i < b.numel(); ++i) b.at(i) = 1.f;
  b.at(2 * n + 0) = std::numeric_limits<float>::quiet_NaN();
  b.at(3 * n + 1) = std::numeric_limits<float>::infinity();
  Tensor c({m, n});
  gemm(a.data(), b.data(), c.data(), m, n, k, /*accumulate=*/false);
  // Every row multiplies the NaN at B[2,0] by a[i,2] (possibly 0) — NaN
  // must survive into column 0; the Inf at B[3,1] times 0 is also NaN.
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isnan(c.at(i * n + 0))) << "row " << i;
    EXPECT_TRUE(std::isnan(c.at(i * n + 1))) << "row " << i;
  }
  // Columns that only ever meet finite B values stay finite.
  EXPECT_FLOAT_EQ(c.at(0 * n + 4), 1.f);

  // The preserved seed kernel exhibits the old buggy behavior — pin it so
  // the bench baseline is honestly labeled.
  Tensor c_seed({m, n});
  gemm_seed_reference(a.data(), b.data(), c_seed.data(), m, n, k, false);
  EXPECT_FALSE(std::isnan(c_seed.at(1 * n + 0)));  // all-zero row skipped B
}

TEST(Gemm, BlockedMatchesSeedKernelOnDenseData) {
  // On dense (zero-free) random data the seed kernel is correct, so the
  // blocked kernel must agree within fp32 accumulation noise. Shapes chosen
  // to hit every edge: MR/NR-aligned, ragged tails, single row/col, and a
  // K larger than the 512-wide K-block.
  const struct { int64_t m, n, k; } shapes[] = {
      {6, 16, 8},  {12, 32, 16}, {7, 17, 5},   {1, 40, 3},  {13, 1, 9},
      {5, 9, 600}, {32, 48, 64}, {25, 100, 7}, {2, 2, 1100}};
  for (const auto& s : shapes) {
    Rng rng(0xC0FFEEULL + static_cast<std::uint64_t>(s.m * 131 + s.n));
    Tensor a = Tensor::randn({s.m, s.k}, rng);
    Tensor b = Tensor::randn({s.k, s.n}, rng);
    // Shift away from zero so the seed zero-skip cannot fire and relative
    // comparison is well-conditioned.
    a = add_scalar(a, 3.f);
    b = add_scalar(b, 3.f);
    Tensor c_seed({s.m, s.n}), c_new({s.m, s.n});
    gemm_seed_reference(a.data(), b.data(), c_seed.data(), s.m, s.n, s.k,
                        false);
    gemm(a.data(), b.data(), c_new.data(), s.m, s.n, s.k, false);
    EXPECT_TRUE(c_new.allclose(c_seed, 1e-4f, 1e-4f * s.k))
        << "shape " << s.m << "x" << s.n << "x" << s.k;
    // accumulate=true must add on top of existing C in both kernels.
    Tensor acc_seed = c_seed.clone(), acc_new = c_new.clone();
    gemm_seed_reference(a.data(), b.data(), acc_seed.data(), s.m, s.n, s.k,
                        true);
    gemm(a.data(), b.data(), acc_new.data(), s.m, s.n, s.k, true);
    EXPECT_TRUE(acc_new.allclose(acc_seed, 1e-4f, 2e-4f * s.k))
        << "accumulate shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(Gemm, ForceSeedReferenceHookRoutesAndRestores) {
  Rng rng(99);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor b = Tensor::randn({3, 4}, rng);
  Tensor c_ref({4, 4}), c_hook({4, 4});
  gemm_seed_reference(a.data(), b.data(), c_ref.data(), 4, 4, 3, false);
  gemm_force_seed_reference(true);
  gemm(a.data(), b.data(), c_hook.data(), 4, 4, 3, false);
  gemm_force_seed_reference(false);
  // Routed results must be bitwise the seed kernel's.
  for (int64_t i = 0; i < 16; ++i) EXPECT_EQ(c_hook.at(i), c_ref.at(i));
}

TEST(Gemm, EmptyKZeroesOrPreservesC) {
  Tensor a({2, 0}), b({0, 3});
  Tensor c({2, 3}, {1, 2, 3, 4, 5, 6});
  gemm(a.data(), b.data(), c.data(), 2, 3, 0, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c.at(0), 1.f);  // accumulate: C untouched
  gemm(a.data(), b.data(), c.data(), 2, 3, 0, /*accumulate=*/false);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(c.at(i), 0.f);
}

TEST(Im2Col, RoundTripAgainstDirectConvolution) {
  // conv of a 1-channel 3x3 image with a 2x2 kernel via im2col+gemm must
  // match the direct sliding-window sum.
  Tensor img({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor ker({1, 1, 2, 2}, {1, 0, 0, 1});  // picks x[i][j] + x[i+1][j+1]
  const int64_t oh = conv_out_size(3, 2, 1, 0), ow = oh;
  std::vector<float> cols(1 * 2 * 2 * oh * ow);
  im2col(img.data(), cols.data(), 1, 3, 3, 2, 2, 1, 0);
  Tensor out({oh * ow});
  gemm(ker.data(), cols.data(), out.data(), 1, oh * ow, 4, false);
  EXPECT_TRUE(out.allclose(Tensor({4}, {6, 8, 12, 14})));
}

// Property sweep: resize adjoint identity across a grid of sizes.
class ResizeAdjointP
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ResizeAdjointP, DotProductIdentity) {
  auto [ih, iw, oh, ow] = GetParam();
  Rng rng(11);
  Tensor x = Tensor::randn({1, 2, ih, iw}, rng);
  Tensor y = Tensor::randn({1, 2, oh, ow}, rng);
  Tensor rx = resize_bilinear(x, oh, ow);
  Tensor rty = resize_bilinear_adjoint(y, ih, iw);
  EXPECT_NEAR(sum_all(mul(rx, y)), sum_all(mul(x, rty)),
              2e-3f * (1 + std::abs(sum_all(mul(rx, y)))));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ResizeAdjointP,
    ::testing::Values(std::tuple{2, 2, 4, 4}, std::tuple{4, 4, 2, 2},
                      std::tuple{3, 5, 7, 2}, std::tuple{8, 8, 16, 16},
                      std::tuple{1, 4, 3, 3}, std::tuple{5, 5, 5, 5}));

// Property sweep: broadcasting binary ops agree with manual loops.
class BroadcastP : public ::testing::TestWithParam<std::pair<Shape, Shape>> {};

TEST_P(BroadcastP, AddMatchesManualExpansion) {
  auto [sa, sb] = GetParam();
  Rng rng(13);
  Tensor a = Tensor::randn(sa, rng);
  Tensor b = Tensor::randn(sb, rng);
  Tensor c = add(a, b);
  const Shape out = broadcast_shape(sa, sb);
  ASSERT_EQ(c.shape(), out);
  // Verify a handful of entries by explicit index math.
  const auto strides_of = [](const Shape& s, const Shape& full) {
    std::vector<int64_t> st(full.size(), 0);
    const auto cs = contiguous_strides(s);
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != 1) st[full.size() - s.size() + i] = cs[i];
    }
    return st;
  };
  const auto sta = strides_of(sa, out);
  const auto stb = strides_of(sb, out);
  const auto sto = contiguous_strides(out);
  for (int64_t lin = 0; lin < c.numel(); lin += std::max<int64_t>(1, c.numel() / 13)) {
    int64_t rem = lin, oa = 0, ob = 0;
    for (std::size_t d = 0; d < out.size(); ++d) {
      const int64_t id = rem / sto[d];
      rem %= sto[d];
      oa += id * sta[d];
      ob += id * stb[d];
    }
    EXPECT_NEAR(c.at(lin), a.at(oa) + b.at(ob), 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastP,
    ::testing::Values(std::pair<Shape, Shape>{{4, 5}, {5}},
                      std::pair<Shape, Shape>{{4, 1}, {1, 5}},
                      std::pair<Shape, Shape>{{2, 3, 4}, {3, 1}},
                      std::pair<Shape, Shape>{{1}, {3, 2, 2}},
                      std::pair<Shape, Shape>{{2, 1, 4}, {2, 3, 1}},
                      std::pair<Shape, Shape>{{6}, {6}}));

}  // namespace
}  // namespace saufno
