#include "runtime/inference_engine.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "data/normalizer.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"
#include "train/model_zoo.h"
#include "train/trainer.h"

namespace saufno {
namespace {

using runtime::InferenceEngine;
using runtime::ThreadPool;

std::shared_ptr<nn::Module> smoke_model() {
  return train::make_model("SAU-FNO", /*in_channels=*/3, /*out_channels=*/1,
                           /*seed=*/42, /*size_hint=*/0);
}

std::vector<Tensor> random_maps(int n, int64_t res, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> maps;
  for (int i = 0; i < n; ++i) {
    maps.push_back(Tensor::randn({3, res, res}, rng));
  }
  return maps;
}

TEST(InferenceEngine, BatchedResultsMatchSequentialForward) {
  auto model = smoke_model();
  const auto maps = random_maps(6, 12, 7);

  // Reference: one-at-a-time forwards, no engine involved.
  std::vector<Tensor> expected;
  for (const auto& m : maps) {
    Var out = model->forward(Var(m.reshape({1, 3, 12, 12}).clone()));
    expected.push_back(out.value().reshape({1, 12, 12}).clone());
  }

  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 50000;  // generous: all submits must coalesce
  InferenceEngine engine(model, cfg);
  std::vector<std::future<Tensor>> futs;
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Tensor got = futs[i].get();
    ASSERT_EQ(got.shape(), expected[i].shape());
    EXPECT_EQ(std::memcmp(got.data(), expected[i].data(),
                          sizeof(float) *
                              static_cast<std::size_t>(got.numel())),
              0)
        << "request " << i << " differs from the sequential forward";
  }
}

TEST(InferenceEngine, ConcurrentSubmittersGetSequentialResults) {
  auto model = smoke_model();
  const auto maps = random_maps(8, 10, 8);
  std::vector<Tensor> expected;
  for (const auto& m : maps) {
    Var out = model->forward(Var(m.reshape({1, 3, 10, 10}).clone()));
    expected.push_back(out.value().reshape({1, 10, 10}).clone());
  }

  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 20000;
  InferenceEngine engine(model, cfg);
  std::vector<Tensor> got(maps.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < maps.size(); ++i) {
    clients.emplace_back([&, i] { got[i] = engine.submit(maps[i].clone()).get(); });
  }
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < maps.size(); ++i) {
    EXPECT_EQ(std::memcmp(got[i].data(), expected[i].data(),
                          sizeof(float) *
                              static_cast<std::size_t>(expected[i].numel())),
              0)
        << "client " << i;
  }
}

TEST(InferenceEngine, PaddedBatchesDoNotChangeRealRows) {
  auto model = smoke_model();
  const auto maps = random_maps(3, 12, 9);
  std::vector<Tensor> expected;
  for (const auto& m : maps) {
    Var out = model->forward(Var(m.reshape({1, 3, 12, 12}).clone()));
    expected.push_back(out.value().reshape({1, 12, 12}).clone());
  }
  InferenceEngine::Config cfg;
  cfg.max_batch = 8;  // > number of requests: every batch gets zero-padded
  cfg.max_wait_us = 20000;
  cfg.pad_to_full_batch = true;
  InferenceEngine engine(model, cfg);
  std::vector<std::future<Tensor>> futs;
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Tensor got = futs[i].get();
    EXPECT_EQ(std::memcmp(got.data(), expected[i].data(),
                          sizeof(float) *
                              static_cast<std::size_t>(got.numel())),
              0);
  }
}

TEST(InferenceEngine, SubmitValidatesExactChannelCount) {
  // A wider-than-expected input used to pass the normalizer's `>=` lower
  // bound and then die inside model_->forward with an opaque shape error;
  // the exact check must reject it at submit() with both counts named.
  InferenceEngine::Config cfg;
  cfg.expected_in_channels = 3;
  InferenceEngine engine(smoke_model(), cfg);
  Rng rng(41);
  try {
    engine.submit(Tensor::randn({5, 10, 10}, rng));
    FAIL() << "5-channel submit on a 3-channel model did not throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("5 channels"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expects exactly 3"), std::string::npos) << msg;
  }
  EXPECT_THROW(engine.submit(Tensor::randn({2, 10, 10}, rng)),
               std::runtime_error);
  EXPECT_NO_THROW(engine.submit(Tensor::randn({3, 10, 10}, rng)).get());
}

TEST(InferenceEngine, FromZooFillsExpectedChannels) {
  auto engine = InferenceEngine::from_zoo("SAU-FNO", 3, 1, /*seed=*/42,
                                          /*checkpoint=*/"",
                                          InferenceEngine::Config{});
  EXPECT_EQ(engine->config().expected_in_channels, 3);
  Rng rng(43);
  EXPECT_THROW(engine->submit(Tensor::randn({4, 10, 10}, rng)),
               std::runtime_error);
}

TEST(InferenceEngine, PaddedBatchBitIdenticalToUnpaddedWithNormalizer) {
  // Padding rows are zeros at submit time but encode_inputs maps them to
  // whatever the encoder sends 0 to — they do NOT stay zero in general.
  // Real rows must still be bit-identical to an unpadded engine because
  // every kernel is per-sample independent; this pins that invariant down
  // through the full encode -> forward -> decode path.
  auto model = smoke_model();
  const auto norm =
      data::Normalizer::from_stats(298.15, 2.0, 10.0, /*n_power=*/1);
  const auto maps = random_maps(3, 12, 77);

  auto serve = [&](bool pad) {
    InferenceEngine::Config cfg;
    cfg.max_batch = 8;  // > request count: the padded engine always pads
    cfg.max_wait_us = 50000;
    cfg.pad_to_full_batch = pad;
    InferenceEngine engine(model, norm, cfg);
    std::vector<std::future<Tensor>> futs;
    for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
    std::vector<Tensor> out;
    for (auto& f : futs) out.push_back(f.get());
    return out;
  };
  const auto unpadded = serve(false);
  const auto padded = serve(true);
  for (std::size_t i = 0; i < maps.size(); ++i) {
    ASSERT_EQ(padded[i].shape(), unpadded[i].shape());
    EXPECT_EQ(std::memcmp(padded[i].data(), unpadded[i].data(),
                          sizeof(float) *
                              static_cast<std::size_t>(padded[i].numel())),
              0)
        << "request " << i << ": padding perturbed a real row";
  }
}

TEST(InferenceEngine, PartitionedBatchBitIdenticalToWholeBatchForward) {
  // batch_partitions splits one batched forward into contiguous row
  // sub-forwards run concurrently; per-sample independence (pinned above)
  // makes that bit-identical to the whole-batch forward. Run at several
  // thread counts so the TaskGroup actually schedules concurrently.
  auto model = smoke_model();
  const auto norm =
      data::Normalizer::from_stats(298.15, 2.0, 10.0, /*n_power=*/1);
  const auto maps = random_maps(8, 12, 99);

  auto serve = [&](int64_t parts) {
    InferenceEngine::Config cfg;
    cfg.max_batch = 8;
    cfg.max_wait_us = 50000;
    cfg.pad_to_full_batch = true;  // stable batch of 8 -> stable partitions
    cfg.batch_partitions = parts;
    InferenceEngine engine(model, norm, cfg);
    std::vector<std::future<Tensor>> futs;
    for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
    std::vector<Tensor> out;
    for (auto& f : futs) out.push_back(f.get());
    return out;
  };
  const auto whole = serve(1);
  for (const int threads : {2, 8}) {
    runtime::ThreadPool::instance().resize(threads);
    const auto split = serve(4);
    runtime::ThreadPool::instance().resize(1);
    for (std::size_t i = 0; i < maps.size(); ++i) {
      ASSERT_EQ(split[i].shape(), whole[i].shape());
      EXPECT_EQ(std::memcmp(split[i].data(), whole[i].data(),
                            sizeof(float) *
                                static_cast<std::size_t>(split[i].numel())),
                0)
          << "request " << i << " at " << threads
          << " threads: partitioning changed a row";
    }
  }
}

TEST(InferenceEngine, ShortLivedClientThreadsCanDropResults) {
  // Regression for the cross-thread arena hazard: results used to be
  // arena-backed, so a client thread dropping its tensor at thread exit
  // released the block into a dying thread's freelist (and a release after
  // that thread's arena teardown is use-after-destruction — caught by the
  // ASan lane, which runs this test). Results are now plain heap tensors;
  // hammer the pattern with many short-lived client threads to keep it so.
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 2000;
  InferenceEngine engine(smoke_model(), cfg);
  const auto maps = random_maps(4, 10, 55);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> clients;
    for (int i = 0; i < 4; ++i) {
      clients.emplace_back([&, i] {
        // get() the result, touch it, and let the thread exit immediately
        // while still owning the tensor — the destructor runs during
        // thread teardown.
        Tensor result = engine.submit(maps[static_cast<std::size_t>(i)].clone()).get();
        ASSERT_GT(result.numel(), 0);
      });
    }
    for (auto& t : clients) t.join();
  }
  EXPECT_EQ(engine.stats().requests, 8 * 4);
}

TEST(InferenceEngine, CoalescesAndReportsStats) {
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100000;
  InferenceEngine engine(smoke_model(), cfg);
  const auto maps = random_maps(8, 10, 10);
  std::vector<std::future<Tensor>> futs;
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  for (auto& f : futs) f.get();

  const auto s = engine.stats();
  EXPECT_EQ(s.requests, 8);
  EXPECT_GE(s.batches, 2);        // 8 requests cannot fit one batch of 4
  EXPECT_LE(s.avg_batch_size, 4.0);
  EXPECT_GT(s.avg_batch_size, 0.0);
  EXPECT_GT(s.latency_p50_ms, 0.0);
  EXPECT_GE(s.latency_p99_ms, s.latency_p50_ms);
  EXPECT_GE(s.latency_max_ms, s.latency_p99_ms);
  EXPECT_GT(s.throughput_rps, 0.0);
}

TEST(InferenceEngine, MixedResolutionsServeInSeparateBatches) {
  InferenceEngine::Config cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 20000;
  InferenceEngine engine(smoke_model(), cfg);
  Rng rng(11);
  auto small = engine.submit(Tensor::randn({3, 10, 10}, rng));
  auto large = engine.submit(Tensor::randn({3, 14, 14}, rng));
  const Tensor ts = small.get();
  const Tensor tl = large.get();
  EXPECT_EQ(ts.shape(), (Shape{1, 10, 10}));
  EXPECT_EQ(tl.shape(), (Shape{1, 14, 14}));
  EXPECT_EQ(engine.stats().batches, 2);
}

TEST(InferenceEngine, StopDrainsPendingRequests) {
  InferenceEngine::Config cfg;
  cfg.max_batch = 2;
  cfg.max_wait_us = 1000;
  auto engine = std::make_unique<InferenceEngine>(smoke_model(), cfg);
  const auto maps = random_maps(5, 10, 12);
  std::vector<std::future<Tensor>> futs;
  for (const auto& m : maps) futs.push_back(engine->submit(m.clone()));
  engine->stop();  // must not abandon the 5 in-flight promises
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  EXPECT_THROW(engine->submit(maps[0].clone()), std::runtime_error);
}

TEST(InferenceEngine, V2CheckpointServesKelvinIdenticalToTrainerPredict) {
  // Fit a real normalizer on a synthetic dataset, deploy the model as a
  // self-describing v2 checkpoint, and check that the engine's raw-in/
  // kelvin-out path is BIT-identical to Trainer::predict on the same file.
  const int64_t res = 12;
  Rng rng(21);
  data::Dataset train_set;
  train_set.chip_name = "synthetic";
  train_set.resolution = static_cast<int>(res);
  train_set.ambient = 298.15;
  train_set.inputs = Tensor::rand_uniform({6, 3, res, res}, rng, 0.f, 5.f);
  train_set.targets = Tensor::rand_uniform({6, 1, res, res}, rng, 300.f, 340.f);
  const auto norm = data::Normalizer::fit(train_set, /*n_power_channels=*/1);

  auto model = smoke_model();
  const std::string path = ::testing::TempDir() + "/saufno_serve_v2.ckpt";
  train::save_deployable(*model, "SAU-FNO", 3, 1, norm, path);

  // Reference: the training-side prediction path on the raw inputs.
  train::Trainer trainer(*model, norm);
  const auto maps = random_maps(5, res, 22);
  std::vector<Tensor> expected;
  for (const auto& m : maps) {
    expected.push_back(
        trainer.predict(m.reshape({1, 3, res, res}).clone()));
  }

  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 50000;  // mixed batch compositions vs the reference
  auto engine = InferenceEngine::from_checkpoint(path, cfg);
  ASSERT_TRUE(engine->has_normalizer());
  EXPECT_DOUBLE_EQ(engine->normalizer().temp_scale(), norm.temp_scale());
  std::vector<std::future<Tensor>> futs;
  for (const auto& m : maps) futs.push_back(engine->submit(m.clone()));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Tensor got = futs[i].get();
    ASSERT_EQ(got.shape(), (Shape{1, res, res}));
    EXPECT_EQ(std::memcmp(got.data(), expected[i].data(),
                          sizeof(float) *
                              static_cast<std::size_t>(got.numel())),
              0)
        << "request " << i << " is not bit-identical to Trainer::predict";
  }
  std::remove(path.c_str());
}

TEST(InferenceEngine, FromZooPicksUpV2Normalizer) {
  auto model = smoke_model();
  const auto norm =
      data::Normalizer::from_stats(298.15, 2.0, 10.0, /*n_power=*/1);
  const std::string path = ::testing::TempDir() + "/saufno_zoo_v2.ckpt";
  train::save_deployable(*model, "SAU-FNO", 3, 1, norm, path);
  auto engine = InferenceEngine::from_zoo("SAU-FNO", 3, 1, /*seed=*/42, path,
                                          InferenceEngine::Config{});
  EXPECT_TRUE(engine->has_normalizer());
  EXPECT_DOUBLE_EQ(engine->normalizer().power_scale(), 2.0);
  std::remove(path.c_str());
}

TEST(InferenceEngine, InterleavedResolutionsStillCoalesce) {
  // An A,B,A,B,... stream through the old single-FIFO queue degraded to
  // batch-size-1 (every pop stopped at the first foreign shape). The
  // sharded queue must keep avg batch size > 1 under the same traffic.
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100000;  // generous so stragglers coalesce deterministically
  InferenceEngine engine(smoke_model(), cfg);
  const auto small = random_maps(8, 10, 30);
  const auto large = random_maps(8, 14, 31);
  std::vector<std::future<Tensor>> futs;
  for (std::size_t i = 0; i < small.size(); ++i) {
    futs.push_back(engine.submit(small[i].clone()));
    futs.push_back(engine.submit(large[i].clone()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Tensor got = futs[i].get();
    const int64_t r = (i % 2 == 0) ? 10 : 14;
    EXPECT_EQ(got.shape(), (Shape{1, r, r}));
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.requests, 16);
  EXPECT_GT(s.avg_batch_size, 1.0)
      << "head-of-line blocking collapsed mixed-shape batching";
  // 16 requests at max_batch 4 need >= 4 batches; well-coalesced traffic
  // should stay close to that rather than near 16.
  EXPECT_LE(s.batches, 12);
}

TEST(InferenceEngine, ThroughputMeasuredOverBusyWindowNotLifetime) {
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 1000;
  const auto t0 = std::chrono::steady_clock::now();
  InferenceEngine engine(smoke_model(), cfg);
  // Idle before the first request must not dilute throughput.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto maps = random_maps(4, 10, 32);
  std::vector<std::future<Tensor>> futs;
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  for (auto& f : futs) f.get();
  const auto s = engine.stats();
  const double lifetime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_GT(s.wall_seconds, 0.0);
  // The busy window starts at the first enqueue, so the 300 ms idle prefix
  // is excluded from it but included in the lifetime. Comparing against the
  // measured lifetime (rather than an absolute bound) keeps this robust on
  // loaded CI runners: preemption stretches both clocks equally, while the
  // sleep only ever widens the gap.
  EXPECT_LT(s.wall_seconds, lifetime - 0.200);
  EXPECT_GT(s.throughput_rps, 0.0);
}

// ---------------------------------------------------------------------------
// Overload safety: admission control, deadlines, cancellation, fault
// isolation, drain, watchdog. Fault injection (common/fault.h) is process-
// global, so every test that arms it uses the RAII guard below.
// ---------------------------------------------------------------------------

struct FaultGuard {
  FaultGuard(const char* spec, std::uint64_t seed) {
    EXPECT_TRUE(fault::configure(spec, seed));
  }
  ~FaultGuard() { fault::clear(); }
};

TEST(InferenceEngine, SubmitAfterStopThrowsTypedShutdownError) {
  InferenceEngine engine(smoke_model(), InferenceEngine::Config{});
  engine.stop();
  Rng rng(61);
  EXPECT_THROW(engine.submit(Tensor::randn({3, 10, 10}, rng)),
               runtime::ShutdownError);
}

TEST(InferenceEngine, AdmissionControlShedsWithRetryAfterHint) {
  // Slow every forward down so the bounded queue actually backs up; with
  // capacity 4 and max_batch 1, at most ~6 of 16 rapid submits can be
  // admitted (1 in flight + 4 queued + 1 popped) and the rest must shed
  // fast with OverloadedError instead of growing the backlog.
  FaultGuard fg("forward:delay:ms=30:p=1", 1);
  InferenceEngine::Config cfg;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 4;
  InferenceEngine engine(smoke_model(), cfg);
  const auto maps = random_maps(16, 10, 62);
  std::vector<std::future<Tensor>> accepted;
  int shed = 0;
  double last_retry_ms = 0.0;
  for (const auto& m : maps) {
    try {
      accepted.push_back(engine.submit(m.clone()));
    } catch (const runtime::OverloadedError& e) {
      ++shed;
      last_retry_ms = e.retry_after_ms();
      EXPECT_NE(std::string(e.what()).find("retry after"), std::string::npos);
    }
  }
  ASSERT_GT(shed, 0) << "16 rapid submits against capacity 4 never shed";
  EXPECT_GT(last_retry_ms, 0.0);
  for (auto& f : accepted) EXPECT_NO_THROW(f.get());
  const auto s = engine.stats();
  EXPECT_EQ(s.rejected, shed);
  EXPECT_EQ(s.requests, static_cast<int64_t>(accepted.size()));
}

TEST(InferenceEngine, ExpiredDeadlineFailsTypedAndNeverDeliversLate) {
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 1000;
  InferenceEngine engine(smoke_model(), cfg);
  Rng rng(63);
  // Already expired at submit: must resolve with DeadlineExceededError (at
  // dequeue), never with a value.
  runtime::SubmitOptions past;
  past.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  auto doomed = engine.submit(Tensor::randn({3, 10, 10}, rng), past);
  EXPECT_THROW(doomed.get(), runtime::DeadlineExceededError);
  // A generous deadline serves normally, and the engine is unharmed.
  runtime::SubmitOptions future_ok;
  future_ok.deadline = std::chrono::steady_clock::now() +
                       std::chrono::seconds(30);
  EXPECT_NO_THROW(engine.submit(Tensor::randn({3, 10, 10}, rng), future_ok)
                      .get());
  const auto s = engine.stats();
  EXPECT_EQ(s.expired, 1);
  EXPECT_EQ(s.requests, 1);
}

TEST(InferenceEngine, TightDeadlineBehindSlowBatchNeverResolvesWithValue) {
  // The forward takes ~60 ms; the second request's 5 ms deadline passes
  // while it waits behind the first. Wherever the expiry is detected
  // (dequeue, pre-forward, delivery), the future must resolve with
  // DeadlineExceededError — a value after the deadline is a contract bug.
  FaultGuard fg("forward:delay:ms=60:p=1", 1);
  InferenceEngine::Config cfg;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  InferenceEngine engine(smoke_model(), cfg);
  Rng rng(64);
  auto first = engine.submit(Tensor::randn({3, 10, 10}, rng));
  runtime::SubmitOptions opts;
  opts.deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(5);
  auto tight = engine.submit(Tensor::randn({3, 10, 10}, rng), opts);
  EXPECT_NO_THROW(first.get());
  EXPECT_THROW(tight.get(), runtime::DeadlineExceededError);
}

TEST(InferenceEngine, CancelTokenResolvesQueuedRequestWithCancelledError) {
  FaultGuard fg("forward:delay:ms=60:p=1", 1);
  InferenceEngine::Config cfg;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  InferenceEngine engine(smoke_model(), cfg);
  Rng rng(65);
  auto busy = engine.submit(Tensor::randn({3, 10, 10}, rng));
  runtime::SubmitOptions opts;
  opts.cancel = runtime::CancelToken::make();
  auto queued = engine.submit(Tensor::randn({3, 10, 10}, rng), opts);
  opts.cancel.request_cancel();  // fires while the request is still queued
  EXPECT_THROW(queued.get(), runtime::CancelledError);
  EXPECT_NO_THROW(busy.get());
  EXPECT_EQ(engine.stats().cancelled, 1);
}

TEST(InferenceEngine, NonFiniteInputRejectedAtSubmitNamingTheRequest) {
  InferenceEngine engine(smoke_model(), InferenceEngine::Config{});
  Tensor poisoned = Tensor::zeros({3, 10, 10});
  poisoned.data()[17] = std::numeric_limits<float>::quiet_NaN();
  try {
    engine.submit(std::move(poisoned));
    FAIL() << "NaN input passed validate_finite";
  } catch (const runtime::RequestError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("non-finite"), std::string::npos) << msg;
    EXPECT_NE(msg.find("seq="), std::string::npos) << msg;
  }
  // The engine is untouched: a clean request still serves.
  Rng rng(66);
  EXPECT_NO_THROW(engine.submit(Tensor::randn({3, 10, 10}, rng)).get());
}

TEST(InferenceEngine, PoisonedBatchFailsOnlyTheCulpableRequest) {
  // validate_finite off lets a NaN input reach the batch; every kernel is
  // per-sample independent, so only the poisoned row's output is non-finite.
  // The output guard must fail exactly that request and deliver batch-mates
  // bit-identical to a clean engine's results.
  auto model = smoke_model();
  const auto maps = random_maps(3, 12, 67);
  std::vector<Tensor> expected;
  for (const auto& m : maps) {
    Var out = model->forward(Var(m.reshape({1, 3, 12, 12}).clone()));
    expected.push_back(out.value().reshape({1, 12, 12}).clone());
  }
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100000;  // the four submits must coalesce into one batch
  cfg.validate_finite = false;
  InferenceEngine engine(model, cfg);
  Tensor poisoned = Tensor::zeros({3, 12, 12});
  poisoned.data()[5] = std::numeric_limits<float>::infinity();
  std::vector<std::future<Tensor>> futs;
  futs.push_back(engine.submit(std::move(poisoned)));
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  try {
    futs[0].get();
    FAIL() << "poisoned request resolved with a value";
  } catch (const runtime::RequestError& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }
  for (std::size_t i = 0; i < maps.size(); ++i) {
    const Tensor got = futs[i + 1].get();
    EXPECT_EQ(std::memcmp(got.data(), expected[i].data(),
                          sizeof(float) *
                              static_cast<std::size_t>(got.numel())),
              0)
        << "batch-mate " << i << " was perturbed by the poisoned row";
  }
  EXPECT_EQ(engine.stats().failed, 1);
}

TEST(InferenceEngine, TransientBatchFaultIsolatedByBisectionAllSucceed) {
  // The fault fires on the FIRST forward attempt only (n=1): the batch-wide
  // attempt throws, the bisected halves run clean, so every request must
  // still succeed — bit-identical to the sequential reference.
  auto model = smoke_model();
  const auto maps = random_maps(4, 12, 68);
  std::vector<Tensor> expected;
  for (const auto& m : maps) {
    Var out = model->forward(Var(m.reshape({1, 3, 12, 12}).clone()));
    expected.push_back(out.value().reshape({1, 12, 12}).clone());
  }
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100000;
  InferenceEngine engine(model, cfg);
  FaultGuard fg("forward:throw:n=1", 1);
  std::vector<std::future<Tensor>> futs;
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    Tensor got;
    ASSERT_NO_THROW(got = futs[i].get()) << "request " << i;
    EXPECT_EQ(std::memcmp(got.data(), expected[i].data(),
                          sizeof(float) *
                              static_cast<std::size_t>(got.numel())),
              0)
        << "bisection retry changed request " << i << "'s result";
  }
  EXPECT_EQ(engine.stats().requests, 4);
  EXPECT_EQ(engine.stats().failed, 0);
}

TEST(InferenceEngine, PersistentBatchFaultFailsEveryRequestByName) {
  // n=7 throws on the whole batch (1 eval), both halves (2), and all four
  // singles (4): 7 attempts, all failing. Every request must get a typed
  // RequestError that NAMES it — the old behavior fanned out one anonymous
  // batch-wide exception.
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100000;
  InferenceEngine engine(smoke_model(), cfg);
  FaultGuard fg("forward:throw:n=7", 1);
  const auto maps = random_maps(4, 12, 69);
  std::vector<std::future<Tensor>> futs;
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    try {
      futs[i].get();
      FAIL() << "request " << i << " resolved despite a persistent fault";
    } catch (const runtime::RequestError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("seq="), std::string::npos) << msg;
      EXPECT_NE(msg.find("shape=[3, 12, 12]"), std::string::npos) << msg;
    }
  }
  EXPECT_EQ(engine.stats().failed, 4);
  EXPECT_EQ(engine.stats().requests, 0);
}

TEST(InferenceEngine, DrainServesBacklogAndFailsStragglersTyped) {
  {
    // Generous timeout: everything already queued must be SERVED.
    InferenceEngine::Config cfg;
    cfg.max_batch = 2;
    cfg.max_wait_us = 1000;
    InferenceEngine engine(smoke_model(), cfg);
    const auto maps = random_maps(5, 10, 70);
    std::vector<std::future<Tensor>> futs;
    for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
    const std::size_t failed = engine.drain(std::chrono::seconds(30));
    EXPECT_EQ(failed, 0u);
    for (auto& f : futs) EXPECT_NO_THROW(f.get());
    EXPECT_THROW(engine.submit(maps[0].clone()), runtime::ShutdownError);
  }
  {
    // Zero timeout with the batcher wedged on a slow forward: the queued
    // straggler must resolve with ShutdownError instead of hanging.
    FaultGuard fg("forward:delay:ms=80:p=1", 1);
    InferenceEngine::Config cfg;
    cfg.max_batch = 1;
    cfg.max_wait_us = 0;
    InferenceEngine engine(smoke_model(), cfg);
    Rng rng(71);
    auto busy = engine.submit(Tensor::randn({3, 10, 10}, rng));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto straggler = engine.submit(Tensor::randn({3, 10, 10}, rng));
    const std::size_t failed = engine.drain(std::chrono::milliseconds(0));
    EXPECT_EQ(failed, 1u);
    EXPECT_NO_THROW(busy.get());  // in-flight work still completes
    EXPECT_THROW(straggler.get(), runtime::ShutdownError);
  }
}

TEST(InferenceEngine, WatchdogFailsFuturesWhenBatcherStopsProgressing) {
  // The injected forward takes 900 ms but the watchdog allows 100 ms: the
  // client's future must fail long before the forward finishes, and the
  // engine must refuse new work afterwards instead of queueing into a
  // wedged batcher.
  FaultGuard fg("forward:delay:ms=900:p=1", 1);
  InferenceEngine::Config cfg;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.watchdog_timeout_ms = 100;
  InferenceEngine engine(smoke_model(), cfg);
  Rng rng(72);
  auto fut = engine.submit(Tensor::randn({3, 10, 10}, rng));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(fut.get(), runtime::EngineError);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 0.7) << "future waited for the wedged forward";
  EXPECT_THROW(engine.submit(Tensor::randn({3, 10, 10}, rng)),
               runtime::ShutdownError);
  EXPECT_GE(engine.stats().failed, 1);
}

TEST(InferenceEngine, DestructionWithInFlightFuturesAndOutlivingClients) {
  // Clients hold futures in their own threads and outlive the engine: the
  // destructor must serve (or typed-fail) every promise, and the result
  // tensors must stay valid after the engine is gone. The ASan lane runs
  // this against the cross-thread arena hazard from PR 5.
  const auto maps = random_maps(6, 10, 73);
  std::vector<std::thread> clients;
  {
    InferenceEngine::Config cfg;
    cfg.max_batch = 2;
    cfg.max_wait_us = 2000;
    auto engine = std::make_unique<InferenceEngine>(smoke_model(), cfg);
    for (const auto& m : maps) {
      auto fut = engine->submit(m.clone());
      clients.emplace_back(
          [f = std::move(fut)]() mutable {
            Tensor result;
            EXPECT_NO_THROW(result = f.get());
            // Keep the tensor alive past the engine's destruction window.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            EXPECT_GT(result.numel(), 0);
          });
    }
    engine.reset();  // destructor runs with all six futures in flight
  }
  for (auto& t : clients) t.join();
}

TEST(InferenceEngine, DeterministicAcrossThreadCounts) {
  auto model = smoke_model();
  const auto maps = random_maps(4, 12, 13);
  auto run = [&](int threads) {
    ThreadPool::instance().resize(threads);
    InferenceEngine::Config cfg;
    cfg.max_batch = 4;
    cfg.max_wait_us = 20000;
    InferenceEngine engine(model, cfg);
    std::vector<std::future<Tensor>> futs;
    for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
    std::vector<Tensor> out;
    for (auto& f : futs) out.push_back(f.get());
    return out;
  };
  const auto ref = run(1);
  for (const int threads : {2, 8}) {
    const auto got = run(threads);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(std::memcmp(got[i].data(), ref[i].data(),
                            sizeof(float) *
                                static_cast<std::size_t>(ref[i].numel())),
                0)
          << "threads=" << threads << " request=" << i;
    }
  }
  ThreadPool::instance().resize(1);
}

}  // namespace
}  // namespace saufno
