#include "chip/chips.h"

#include <cmath>

#include <gtest/gtest.h>

#include "chip/power_gen.h"

namespace saufno {
namespace {

using chip::ChipSpec;

class AllChipsP : public ::testing::TestWithParam<std::string> {
 protected:
  ChipSpec spec() const { return chip::chip_by_name(GetParam()); }
};

TEST_P(AllChipsP, SpecValidates) {
  const ChipSpec c = spec();
  EXPECT_NO_THROW(c.validate());
  EXPECT_GE(c.num_device_layers(), 2);
  EXPECT_GT(c.num_power_blocks(), 0);
}

TEST_P(AllChipsP, StackEndsWithCoolingLayers) {
  const ChipSpec c = spec();
  const auto& names = c.layers;
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[names.size() - 3].name, "TIM");
  EXPECT_EQ(names[names.size() - 2].name, "heat-spreader");
  EXPECT_EQ(names[names.size() - 1].name, "heat-sink-base");
  // Cooling layers carry no power.
  EXPECT_FALSE(names[names.size() - 1].is_device);
}

TEST_P(AllChipsP, PowerSampleWithinConfiguredRange) {
  const ChipSpec c = spec();
  chip::PowerGenerator gen(c);
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const auto pa = gen.sample(rng);
    const double total = pa.total();
    EXPECT_GE(total, c.total_power_min - 1e-9);
    EXPECT_LE(total, c.total_power_max + 1e-9);
    // Every device block gets strictly positive power.
    for (std::size_t li = 0; li < c.layers.size(); ++li) {
      if (!c.layers[li].is_device) continue;
      for (double p : pa.power[li]) EXPECT_GT(p, 0.0);
    }
  }
}

TEST_P(AllChipsP, RasterizationConservesPower) {
  // Integral of the W/m^2 map over the die must equal the assigned watts,
  // at any raster resolution (blocks are axis-aligned so overlap is exact).
  const ChipSpec c = spec();
  chip::PowerGenerator gen(c);
  Rng rng(18);
  const auto pa = gen.sample(rng);
  for (int res : {8, 17, 32}) {
    const auto maps = gen.rasterize(pa, res, res);
    const double cell_area = (c.die_w / res) * (c.die_h / res);
    double total = 0.0;
    for (const auto& m : maps) {
      for (float v : m) total += static_cast<double>(v) * cell_area;
    }
    EXPECT_NEAR(total, pa.total(), 1e-6 * pa.total()) << "res=" << res;
  }
}

TEST_P(AllChipsP, CoreDensityExceedsCacheDensity) {
  // The workload generator's point: cores run hotter per area.
  const ChipSpec c = spec();
  chip::PowerGenerator gen(c);
  Rng rng(19);
  double core_density = 0, cache_density = 0;
  int core_n = 0, cache_n = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto pa = gen.sample(rng);
    for (std::size_t li = 0; li < c.layers.size(); ++li) {
      if (!c.layers[li].is_device) continue;
      const auto& blocks = c.layers[li].floorplan.blocks;
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        const double d = pa.power[li][b] / blocks[b].area_fraction();
        if (blocks[b].kind == chip::BlockKind::kCore) {
          core_density += d;
          ++core_n;
        } else if (blocks[b].kind == chip::BlockKind::kL2Cache) {
          cache_density += d;
          ++cache_n;
        }
      }
    }
  }
  if (core_n > 0 && cache_n > 0) {
    EXPECT_GT(core_density / core_n, 1.5 * cache_density / cache_n);
  }
}

INSTANTIATE_TEST_SUITE_P(Chips, AllChipsP,
                         ::testing::Values("chip1", "chip2", "chip3"));

TEST(ChipCatalog, MatchesTable1Geometry) {
  const auto c1 = chip::make_chip1();
  EXPECT_DOUBLE_EQ(c1.die_w, 16e-3);
  EXPECT_DOUBLE_EQ(c1.layers[0].thickness, 0.15e-3);  // L2 cache layer
  const auto c2 = chip::make_chip2();
  EXPECT_DOUBLE_EQ(c2.die_w, 12.4e-3);
  EXPECT_DOUBLE_EQ(c2.die_h, 12.76e-3);
  EXPECT_EQ(c2.num_device_layers(), 3);
  const auto c3 = chip::make_chip3();
  EXPECT_DOUBLE_EQ(c3.die_w, 10e-3);
  EXPECT_DOUBLE_EQ(c3.layers[0].thickness, 0.1e-3);
  // TIM thickness differs on chip3 per Table I (0.052 mm vs 0.02 mm).
  EXPECT_NEAR(c3.layers[c3.layers.size() - 3].thickness, 0.052e-3, 1e-9);
}

TEST(ChipCatalog, Chip1FloorplanBlocks) {
  const auto c1 = chip::make_chip1();
  const auto& core_layer = c1.layers[1];
  ASSERT_TRUE(core_layer.is_device);
  EXPECT_NE(core_layer.floorplan.find("Core"), nullptr);
  EXPECT_NE(core_layer.floorplan.find("L1_1"), nullptr);
  EXPECT_EQ(core_layer.floorplan.find("missing"), nullptr);
  // Chip1 fig: cache layer has exactly three L2s.
  EXPECT_EQ(c1.layers[0].floorplan.blocks.size(), 3u);
}

TEST(ChipCatalog, Chip3HasEightCoresAndCrossbar) {
  const auto c3 = chip::make_chip3();
  const auto& cl = c3.layers[1].floorplan;
  int cores = 0, xbar = 0;
  for (const auto& b : cl.blocks) {
    if (b.kind == chip::BlockKind::kCore) ++cores;
    if (b.kind == chip::BlockKind::kInterconnect) ++xbar;
  }
  EXPECT_EQ(cores, 8);
  EXPECT_EQ(xbar, 1);
}

TEST(ChipCatalog, UnknownChipThrows) {
  EXPECT_THROW(chip::chip_by_name("chip9"), std::runtime_error);
}

TEST(Floorplan, OverlapDetectionRejectsBadPlan) {
  chip::Floorplan fp;
  fp.blocks = {
      {"a", chip::BlockKind::kCore, 0.0, 0.0, 0.6, 0.6},
      {"b", chip::BlockKind::kCore, 0.5, 0.5, 0.5, 0.5},  // overlaps a
  };
  EXPECT_THROW(fp.validate(), std::runtime_error);
}

TEST(Floorplan, OutsideDieRejected) {
  chip::Floorplan fp;
  fp.blocks = {{"a", chip::BlockKind::kCore, 0.8, 0.0, 0.4, 0.4}};
  EXPECT_THROW(fp.validate(), std::runtime_error);
}

TEST(Materials, Table1Values) {
  EXPECT_DOUBLE_EQ(chip::materials::device_silicon().conductivity, 100.0);
  EXPECT_DOUBLE_EQ(chip::materials::device_silicon().heat_capacity, 1.75e6);
  EXPECT_DOUBLE_EQ(chip::materials::tim().conductivity, 4.0);
  EXPECT_DOUBLE_EQ(chip::materials::tim().heat_capacity, 4.0e6);
  EXPECT_DOUBLE_EQ(chip::materials::copper().conductivity, 400.0);
}

TEST(Materials, TsvEffectiveConductivity) {
  // Equal conductivities: identity.
  EXPECT_NEAR(chip::tsv_effective_conductivity(100, 100, 1e-5, 1e-5), 100.0,
              1e-9);
  // Copper vias through oxide raise k by the area-fraction mixture.
  const double k = chip::tsv_effective_conductivity(1.4, 400, 1e-5, 2e-5);
  const double f = M_PI / 16.0;  // (pi d^2/4) / pitch^2 with d = pitch/2
  EXPECT_NEAR(k, (1 - f) * 1.4 + f * 400, 1e-9);
  // Diameter beyond pitch is geometrically impossible.
  EXPECT_THROW(chip::tsv_effective_conductivity(1, 1, 2e-5, 1e-5),
               std::runtime_error);
}

}  // namespace
}  // namespace saufno
