#include "serve/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/rng.h"
#include "data/normalizer.h"
#include "runtime/errors.h"
#include "runtime/inference_engine.h"
#include "serve/client.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "tensor/tensor.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

using runtime::InferenceEngine;
using serve::AnyFrame;
using serve::Client;
using serve::Fleet;
using serve::FrameKind;
using serve::InferRequest;
using serve::ProtocolError;
using serve::Response;
using serve::Server;
using serve::TenantQuotas;
using serve::WireCode;

/// RAII fault-injection spec (mirrors test_chaos.cpp): a failing assertion
/// must not leak a fault config into later tests.
struct FaultGuard {
  FaultGuard(const char* spec, std::uint64_t seed) {
    EXPECT_TRUE(fault::configure(spec, seed)) << "bad fault spec: " << spec;
  }
  ~FaultGuard() { fault::clear(); }
};

std::shared_ptr<nn::Module> smoke_model() {
  return train::make_model("SAU-FNO", /*in_channels=*/3, /*out_channels=*/1,
                           /*seed=*/42, /*size_hint=*/0);
}

Tensor random_map(int64_t res, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({3, res, res}, rng);
}

/// Strip the 8-byte header off a full encoded frame -> (body ptr, body len),
/// validating the header on the way (every encode_* output must decode).
std::pair<const std::uint8_t*, std::size_t> body_of(
    const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), serve::kFrameHeaderBytes);
  const std::size_t body_len =
      serve::decode_header(frame.data(), serve::kDefaultMaxFrameBytes);
  EXPECT_EQ(body_len, frame.size() - serve::kFrameHeaderBytes);
  return {frame.data() + serve::kFrameHeaderBytes, body_len};
}

// ---------------------------------------------------------------------------
// Frame codec round-trips
// ---------------------------------------------------------------------------

TEST(WireCodec, InferRoundTripAllFields) {
  InferRequest req;
  req.id = 0xDEADBEEFCAFEF00Dull;
  req.tenant = "alice";
  req.model = "sau-fno-v2";
  req.priority = 7;
  req.deadline_ms = 1500;
  req.input = random_map(6, 11);

  const auto frame = serve::encode_infer(req);
  auto [body, len] = body_of(frame);
  const AnyFrame got = serve::decode_frame(body, len);
  ASSERT_EQ(got.kind, FrameKind::kInfer);
  EXPECT_EQ(got.infer.id, req.id);
  EXPECT_EQ(got.infer.tenant, "alice");
  EXPECT_EQ(got.infer.model, "sau-fno-v2");
  EXPECT_EQ(got.infer.priority, 7);
  EXPECT_EQ(got.infer.deadline_ms, 1500u);
  ASSERT_EQ(got.infer.input.shape(), req.input.shape());
  EXPECT_EQ(std::memcmp(got.infer.input.data(), req.input.data(),
                        sizeof(float) *
                            static_cast<std::size_t>(req.input.numel())),
            0)
      << "f32 payload must survive the wire bit-exactly";
}

TEST(WireCodec, InferRoundTripDefaultsAndEmptyStrings) {
  // "" tenant/model and deadline 0 are the common fast path — they must
  // round-trip as-is (the server, not the codec, applies defaults).
  InferRequest req;
  req.id = 1;
  req.input = random_map(4, 12);
  const auto frame = serve::encode_infer(req);
  auto [body, len] = body_of(frame);
  const AnyFrame got = serve::decode_frame(body, len);
  ASSERT_EQ(got.kind, FrameKind::kInfer);
  EXPECT_EQ(got.infer.tenant, "");
  EXPECT_EQ(got.infer.model, "");
  EXPECT_EQ(got.infer.priority, 0);
  EXPECT_EQ(got.infer.deadline_ms, 0u);
}

TEST(WireCodec, ControlFramesRoundTrip) {
  {
    const auto f = serve::encode_cancel(99);
    auto [body, len] = body_of(f);
    const AnyFrame got = serve::decode_frame(body, len);
    EXPECT_EQ(got.kind, FrameKind::kCancel);
    EXPECT_EQ(got.id, 99u);
  }
  {
    const auto f = serve::encode_ping(7);
    auto [body, len] = body_of(f);
    const AnyFrame got = serve::decode_frame(body, len);
    EXPECT_EQ(got.kind, FrameKind::kPing);
    EXPECT_EQ(got.id, 7u);
  }
  {
    const auto f = serve::encode_load_model(3, "hotspot", "/tmp/m.ckpt");
    auto [body, len] = body_of(f);
    const AnyFrame got = serve::decode_frame(body, len);
    EXPECT_EQ(got.kind, FrameKind::kLoadModel);
    EXPECT_EQ(got.id, 3u);
    EXPECT_EQ(got.name, "hotspot");
    EXPECT_EQ(got.path, "/tmp/m.ckpt");
  }
  {
    const auto f = serve::encode_evict_model(4, "hotspot");
    auto [body, len] = body_of(f);
    const AnyFrame got = serve::decode_frame(body, len);
    EXPECT_EQ(got.kind, FrameKind::kEvictModel);
    EXPECT_EQ(got.id, 4u);
    EXPECT_EQ(got.name, "hotspot");
  }
}

TEST(WireCodec, ResponseRoundTripEveryCodeWithAndWithoutTensor) {
  for (int code = 0; code <= 8; ++code) {
    Response r;
    r.id = 1000 + static_cast<std::uint64_t>(code);
    r.code = static_cast<WireCode>(code);
    r.retry_after_ms = code == 1 ? 12.5 : 0.0;
    r.message = "code " + std::to_string(code);
    if (code == 0) {
      r.has_tensor = true;
      r.tensor = random_map(5, 20 + static_cast<std::uint64_t>(code));
    }
    const auto frame = serve::encode_response(r);
    auto [body, len] = body_of(frame);
    const AnyFrame got = serve::decode_frame(body, len);
    ASSERT_EQ(got.kind, FrameKind::kResponse);
    EXPECT_EQ(got.response.id, r.id);
    EXPECT_EQ(got.response.code, r.code);
    EXPECT_DOUBLE_EQ(got.response.retry_after_ms, r.retry_after_ms);
    EXPECT_EQ(got.response.message, r.message);
    EXPECT_EQ(got.response.has_tensor, r.has_tensor);
    if (r.has_tensor) {
      ASSERT_EQ(got.response.tensor.shape(), r.tensor.shape());
      EXPECT_EQ(std::memcmp(got.response.tensor.data(), r.tensor.data(),
                            sizeof(float) *
                                static_cast<std::size_t>(r.tensor.numel())),
                0);
    }
  }
}

// ---------------------------------------------------------------------------
// Malformed frame rejection (the fuzz-safety surface)
// ---------------------------------------------------------------------------

TEST(WireCodec, HeaderRejectsBadMagicAndOversizedBody) {
  std::uint8_t hdr[serve::kFrameHeaderBytes];
  const auto put_u32 = [&](std::size_t off, std::uint32_t v) {
    std::memcpy(hdr + off, &v, 4);
  };
  put_u32(0, serve::kWireMagic);
  put_u32(4, 16);
  EXPECT_EQ(serve::decode_header(hdr, 1024), 16u);  // sane header passes
  put_u32(0, 0x44414544u);  // wrong magic
  EXPECT_THROW(serve::decode_header(hdr, 1024), ProtocolError);
  put_u32(0, serve::kWireMagic);
  put_u32(4, 0xFFFFFFFFu);  // 4 GB body claim: reject BEFORE allocating
  EXPECT_THROW(serve::decode_header(hdr, 1024), ProtocolError);
  put_u32(4, 1025);  // one past the cap
  EXPECT_THROW(serve::decode_header(hdr, 1024), ProtocolError);
  put_u32(4, 1024);  // exactly the cap is fine
  EXPECT_EQ(serve::decode_header(hdr, 1024), 1024u);
}

TEST(WireCodec, EveryTruncationOfAValidBodyIsRejected) {
  // Chop a valid infer body at EVERY length: each prefix must throw
  // ProtocolError (never crash, never return a half-parsed request).
  InferRequest req;
  req.id = 2;
  req.tenant = "t";
  req.model = "m";
  req.deadline_ms = 5;
  req.input = random_map(4, 13);
  const auto frame = serve::encode_infer(req);
  auto [body, len] = body_of(frame);
  for (std::size_t cut = 0; cut < len; ++cut) {
    EXPECT_THROW(serve::decode_frame(body, cut), ProtocolError)
        << "prefix of " << cut << "/" << len << " bytes parsed successfully";
  }
  // The full body plus trailing garbage must ALSO fail: a frame that does
  // not consume exactly its declared body is malformed.
  std::vector<std::uint8_t> padded(body, body + len);
  padded.push_back(0xAB);
  EXPECT_THROW(serve::decode_frame(padded.data(), padded.size()),
               ProtocolError);
}

TEST(WireCodec, RejectsHostileTensorGeometry) {
  // Hand-build infer bodies with adversarial rank/dims. Layout per wire.h:
  // kind u8, id u64, str tenant, str model, prio u8, deadline u32, rank u8,
  // dims i64[rank], f32 data.
  const auto build = [](std::uint8_t rank,
                        const std::vector<std::int64_t>& dims,
                        std::size_t data_bytes) {
    std::vector<std::uint8_t> b;
    const auto raw = [&](const void* p, std::size_t n) {
      const auto* u = static_cast<const std::uint8_t*>(p);
      b.insert(b.end(), u, u + n);
    };
    const std::uint8_t kind = 0;  // kInfer
    const std::uint64_t id = 1;
    const std::uint16_t zero16 = 0;
    const std::uint8_t prio = 0;
    const std::uint32_t deadline = 0;
    raw(&kind, 1);
    raw(&id, 8);
    raw(&zero16, 2);  // tenant ""
    raw(&zero16, 2);  // model ""
    raw(&prio, 1);
    raw(&deadline, 4);
    raw(&rank, 1);
    for (std::int64_t d : dims) raw(&d, 8);
    b.insert(b.end(), data_bytes, 0);
    return b;
  };

  {  // rank over kMaxRank
    auto b = build(9, std::vector<std::int64_t>(9, 1), 4);
    EXPECT_THROW(serve::decode_frame(b.data(), b.size()), ProtocolError);
  }
  {  // negative dim
    auto b = build(2, {4, -1}, 16);
    EXPECT_THROW(serve::decode_frame(b.data(), b.size()), ProtocolError);
  }
  {  // dim over kMaxDim
    auto b = build(1, {serve::kMaxDim + 1}, 16);
    EXPECT_THROW(serve::decode_frame(b.data(), b.size()), ProtocolError);
  }
  {  // numel claims far more f32s than the body carries (alloc bomb)
    auto b = build(3, {1024, 1024, 1024}, 64);
    EXPECT_THROW(serve::decode_frame(b.data(), b.size()), ProtocolError);
  }
  {  // honest geometry still parses
    auto b = build(3, {1, 2, 2}, 16);
    const AnyFrame got = serve::decode_frame(b.data(), b.size());
    EXPECT_EQ(got.kind, FrameKind::kInfer);
    EXPECT_EQ(got.infer.input.numel(), 4);
  }
}

TEST(WireCodec, FuzzedBodiesNeverCrash) {
  // Deterministic fuzz: random bodies and bit-flipped valid bodies. The
  // only acceptable outcomes are a parsed frame or ProtocolError — the
  // ASan/TSan CI lanes turn any over-read into a hard failure here.
  Rng fuzz(0xF022u);
  std::size_t parsed = 0, rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t len = static_cast<std::size_t>(fuzz.next_u64() % 256);
    std::vector<std::uint8_t> body(len);
    for (auto& byte : body) {
      byte = static_cast<std::uint8_t>(fuzz.next_u64() & 0xFF);
    }
    try {
      (void)serve::decode_frame(body.data(), body.size());
      ++parsed;
    } catch (const ProtocolError&) {
      ++rejected;
    }
  }

  InferRequest req;
  req.id = 3;
  req.tenant = "fz";
  req.input = random_map(4, 14);
  const auto frame = serve::encode_infer(req);
  auto [vbody, vlen] = body_of(frame);
  std::vector<std::uint8_t> mut(vbody, vbody + vlen);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t pos = static_cast<std::size_t>(fuzz.next_u64() % vlen);
    const std::uint8_t old = mut[pos];
    mut[pos] = static_cast<std::uint8_t>(fuzz.next_u64() & 0xFF);
    try {
      (void)serve::decode_frame(mut.data(), mut.size());
      ++parsed;
    } catch (const ProtocolError&) {
      ++rejected;
    }
    mut[pos] = old;
  }
  EXPECT_GT(rejected, 0u);  // the fuzzer actually exercised rejection paths
}

TEST(WireIo, ReadFrameReportsCleanEofDistinctFromMidFrameEof) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Clean close with nothing sent: read_frame returns false, no throw.
  ::close(sv[1]);
  std::vector<std::uint8_t> body;
  EXPECT_FALSE(serve::read_frame(sv[0], body));
  ::close(sv[0]);

  // Close MID-frame: a valid header promising bytes that never arrive must
  // throw (the peer lied), not report a clean close.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const auto frame = serve::encode_ping(1);
  const std::vector<std::uint8_t> half(frame.begin(),
                                       frame.begin() + frame.size() - 3);
  ASSERT_EQ(::send(sv[1], half.data(), half.size(), 0),
            static_cast<ssize_t>(half.size()));
  ::close(sv[1]);
  EXPECT_THROW(serve::read_frame(sv[0], body), ProtocolError);
  ::close(sv[0]);
}

// ---------------------------------------------------------------------------
// Error taxonomy: every typed error in runtime/errors.h crosses the wire
// ---------------------------------------------------------------------------

template <typename E, typename... Args>
std::exception_ptr as_ptr(Args&&... args) {
  return std::make_exception_ptr(E(std::forward<Args>(args)...));
}

TEST(WireErrors, EveryTypedErrorMapsToItsCodeAndBack) {
  struct Case {
    std::exception_ptr thrown;
    WireCode want;
    double want_retry;
  };
  const std::vector<Case> cases = {
      {as_ptr<runtime::OverloadedError>("shed", 42.5), WireCode::kOverloaded,
       42.5},
      {as_ptr<runtime::DeadlineExceededError>("late"),
       WireCode::kDeadlineExceeded, 0.0},
      {as_ptr<runtime::CancelledError>("cancelled"), WireCode::kCancelled,
       0.0},
      {as_ptr<runtime::ShutdownError>("draining"), WireCode::kShutdown, 0.0},
      {as_ptr<runtime::RequestError>("bad input"), WireCode::kRequest, 0.0},
      {as_ptr<runtime::EngineError>("unclassified"), WireCode::kEngine, 0.0},
      {as_ptr<ProtocolError>("garbled"), WireCode::kProtocol, 0.0},
      {as_ptr<std::runtime_error>("surprise"), WireCode::kInternal, 0.0},
  };
  for (const auto& c : cases) {
    double retry = -1.0;
    std::string msg;
    const WireCode code = serve::code_for_exception(c.thrown, &retry, &msg);
    EXPECT_EQ(code, c.want) << serve::wire_code_name(c.want);
    EXPECT_DOUBLE_EQ(retry, c.want_retry);
    EXPECT_FALSE(msg.empty());

    // Encode the classified error into a response frame, decode it, and
    // rethrow: the reconstructed exception must classify IDENTICALLY —
    // code_for_exception(throw_wire_error(x)) is a fixed point.
    Response r;
    r.id = 1;
    r.code = code;
    r.retry_after_ms = retry;
    r.message = msg;
    const auto frame = serve::encode_response(r);
    auto [body, len] = body_of(frame);
    const AnyFrame wire = serve::decode_frame(body, len);
    std::exception_ptr reconstructed;
    try {
      serve::throw_wire_error(wire.response);
      FAIL() << "throw_wire_error must throw for non-ok codes";
    } catch (...) {
      reconstructed = std::current_exception();
    }
    double retry2 = -1.0;
    std::string msg2;
    EXPECT_EQ(serve::code_for_exception(reconstructed, &retry2, &msg2), code);
    EXPECT_DOUBLE_EQ(retry2, retry);
  }

  // kOk never throws.
  Response ok;
  ok.code = WireCode::kOk;
  EXPECT_NO_THROW(serve::throw_wire_error(ok));
}

TEST(WireErrors, OverloadedRetryAfterSurvivesTheWire) {
  std::exception_ptr e = as_ptr<runtime::OverloadedError>("q full", 17.25);
  double retry = 0.0;
  std::string msg;
  Response r;
  r.code = serve::code_for_exception(e, &retry, &msg);
  r.retry_after_ms = retry;
  r.message = msg;
  try {
    serve::throw_wire_error(r);
    FAIL();
  } catch (const runtime::OverloadedError& oe) {
    EXPECT_DOUBLE_EQ(oe.retry_after_ms(), 17.25);
  }
}

// ---------------------------------------------------------------------------
// Tenant quotas
// ---------------------------------------------------------------------------

TEST(TenantQuotasTest, ParsesSpecAndEnforcesCaps) {
  TenantQuotas q("alice=2,bob=0,*=3");
  EXPECT_EQ(q.limit_for("alice"), 2);
  EXPECT_EQ(q.limit_for("bob"), 0);
  EXPECT_EQ(q.limit_for("mallory"), 3);

  EXPECT_TRUE(q.try_admit("alice", nullptr, nullptr));
  EXPECT_TRUE(q.try_admit("alice", nullptr, nullptr));
  int inflight = -1, limit = -1;
  EXPECT_FALSE(q.try_admit("alice", &inflight, &limit));
  EXPECT_EQ(inflight, 2);
  EXPECT_EQ(limit, 2);
  q.release("alice");
  EXPECT_TRUE(q.try_admit("alice", nullptr, nullptr));

  EXPECT_FALSE(q.try_admit("bob", nullptr, nullptr)) << "0 = banned";
  EXPECT_EQ(q.inflight("alice"), 2);
}

TEST(TenantQuotasTest, NoDefaultRuleMeansUnlimitedAndEmptySpecIsLegal) {
  TenantQuotas named_only("vip=1");
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(named_only.try_admit("anyone", nullptr, nullptr));
  }
  TenantQuotas unlimited("");
  EXPECT_EQ(unlimited.limit_for("x"), -1);
  EXPECT_TRUE(unlimited.try_admit("x", nullptr, nullptr));
}

TEST(TenantQuotasTest, MalformedSpecsThrow) {
  EXPECT_THROW(TenantQuotas("alice"), std::invalid_argument);
  EXPECT_THROW(TenantQuotas("=3"), std::invalid_argument);
  EXPECT_THROW(TenantQuotas("alice="), std::invalid_argument);
  EXPECT_THROW(TenantQuotas("alice=-1"), std::invalid_argument);
  EXPECT_THROW(TenantQuotas("alice=notanum"), std::invalid_argument);
  EXPECT_THROW(TenantQuotas("alice=99999999999"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------------

std::string write_smoke_checkpoint(const std::string& tag,
                                   std::uint64_t seed) {
  auto model = train::make_model("SAU-FNO", 3, 1, seed, 0);
  const auto norm =
      data::Normalizer::from_stats(298.15, 2.0, 10.0, /*n_power=*/1);
  const std::string path =
      ::testing::TempDir() + "/saufno_fleet_" + tag + ".ckpt";
  train::save_deployable(*model, "SAU-FNO", 3, 1, norm, path);
  return path;
}

InferenceEngine::Config fast_engine_cfg() {
  InferenceEngine::Config cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 500;
  return cfg;
}

TEST(FleetTest, AcquireUnknownModelIsARequestError) {
  Fleet::Config fc;
  fc.engine = fast_engine_cfg();
  Fleet fleet(fc);
  EXPECT_THROW(fleet.acquire("nope"), runtime::RequestError);
}

TEST(FleetTest, PinnedEngineServesAndSurvivesEvictionPressure) {
  Fleet::Config fc;
  fc.max_loaded = 1;
  fc.engine = fast_engine_cfg();
  Fleet fleet(fc);
  fleet.add_engine("mem", std::make_shared<InferenceEngine>(
                              smoke_model(), fast_engine_cfg()));
  auto e1 = fleet.acquire("mem");
  auto e2 = fleet.acquire("mem");
  EXPECT_EQ(e1.get(), e2.get()) << "same resident engine, shared handle";

  // A checkpoint load pushing residency to 2 with cap 1 must evict the
  // CHECKPOINT model, never the pinned in-memory one (here "disk" is the
  // only unpinned entry, so it is evicted right after its own load).
  const std::string path = write_smoke_checkpoint("pin", 7);
  fleet.register_checkpoint("disk", path);
  auto e3 = fleet.acquire("disk");
  EXPECT_TRUE(fleet.is_loaded("mem"));
  EXPECT_FALSE(fleet.is_loaded("disk"));
  // The stale handle fails TYPED (the eviction drained the engine), never
  // crashes: shared ownership keeps the object alive for every holder.
  EXPECT_THROW(e3->submit(random_map(8, 31)), runtime::ShutdownError);
  // The pinned engine is untouched by the eviction pressure.
  Tensor out = fleet.acquire("mem")->submit(random_map(8, 31)).get();
  EXPECT_EQ(out.shape(), (Shape{1, 8, 8}));
  std::remove(path.c_str());
}

TEST(FleetTest, LruEvictionBoundsResidencyAndReloadsOnDemand) {
  Fleet::Config fc;
  fc.max_loaded = 2;
  fc.engine = fast_engine_cfg();
  Fleet fleet(fc);
  const std::string p1 = write_smoke_checkpoint("m1", 1);
  const std::string p2 = write_smoke_checkpoint("m2", 2);
  const std::string p3 = write_smoke_checkpoint("m3", 3);
  fleet.register_checkpoint("m1", p1);
  fleet.register_checkpoint("m2", p2);
  fleet.register_checkpoint("m3", p3);

  (void)fleet.acquire("m1");
  (void)fleet.acquire("m2");
  EXPECT_EQ(fleet.loaded_count(), 2u);
  (void)fleet.acquire("m2");  // bump m2; m1 becomes the LRU
  (void)fleet.acquire("m3");  // over cap: m1 must go
  EXPECT_FALSE(fleet.is_loaded("m1"));
  EXPECT_TRUE(fleet.is_loaded("m2"));
  EXPECT_TRUE(fleet.is_loaded("m3"));
  EXPECT_EQ(fleet.loads(), 3);
  EXPECT_EQ(fleet.evictions(), 1);

  // m1 is still registered: the next acquire hot-reloads it from disk.
  auto e1 = fleet.acquire("m1");
  EXPECT_EQ(fleet.loads(), 4);
  Tensor out = e1->submit(random_map(8, 32)).get();
  EXPECT_EQ(out.shape(), (Shape{1, 8, 8}));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::remove(p3.c_str());
}

TEST(FleetTest, ConcurrentFirstAcquiresLoadExactlyOnce) {
  Fleet::Config fc;
  fc.engine = fast_engine_cfg();
  Fleet fleet(fc);
  const std::string path = write_smoke_checkpoint("race", 9);
  fleet.register_checkpoint("race", path);
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<InferenceEngine>> handles(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] { handles[static_cast<std::size_t>(i)] =
                                      fleet.acquire("race"); });
  }
  for (auto& t : threads) t.join();
  for (const auto& h : handles) EXPECT_EQ(h.get(), handles[0].get());
  EXPECT_EQ(fleet.loads(), 1) << "the loading latch must dedupe the load";
  std::remove(path.c_str());
}

TEST(FleetTest, DrainAllClosesAdmissions) {
  Fleet::Config fc;
  fc.engine = fast_engine_cfg();
  Fleet fleet(fc);
  fleet.add_engine("m", std::make_shared<InferenceEngine>(
                            smoke_model(), fast_engine_cfg()));
  fleet.drain_all(std::chrono::milliseconds(2000));
  EXPECT_THROW(fleet.acquire("m"), runtime::ShutdownError);
}

// ---------------------------------------------------------------------------
// Server end-to-end over real TCP loopback
// ---------------------------------------------------------------------------

struct ServerFixture {
  std::shared_ptr<Fleet> fleet;
  std::unique_ptr<Server> server;
  std::shared_ptr<InferenceEngine> engine;

  explicit ServerFixture(Server::Config scfg = {},
                         InferenceEngine::Config ecfg = fast_engine_cfg()) {
    Fleet::Config fc;
    fc.engine = ecfg;
    fleet = std::make_shared<Fleet>(fc);
    engine = std::make_shared<InferenceEngine>(smoke_model(), ecfg);
    fleet->add_engine("sau-fno", engine);
    if (scfg.default_model.empty()) scfg.default_model = "sau-fno";
    server = std::make_unique<Server>(fleet, scfg);
    server->start();
  }

  Client client() const {
    Client c;
    c.connect("127.0.0.1", server->port());
    return c;
  }
};

TEST(ServerTest, InferOverTcpIsBitIdenticalToInProcessSubmit) {
  ServerFixture fx;
  const int64_t res = 10;
  const Tensor input = random_map(res, 40);
  const Tensor expected = fx.engine->submit(input.clone()).get();

  Client c = fx.client();
  const Tensor got = c.infer(input.clone());
  ASSERT_EQ(got.shape(), expected.shape());
  EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                        sizeof(float) *
                            static_cast<std::size_t>(got.numel())),
            0)
      << "the wire path must not perturb results";
}

TEST(ServerTest, PipelinedRequestsComeBackInOrder) {
  ServerFixture fx;
  Client c = fx.client();
  const int kN = 12;
  std::vector<Tensor> inputs;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kN; ++i) {
    inputs.push_back(random_map(8, 50 + static_cast<std::uint64_t>(i)));
    ids.push_back(c.send_infer(inputs.back().clone()));
  }
  for (int i = 0; i < kN; ++i) {
    const Response r = c.recv_response();
    EXPECT_EQ(r.id, ids[static_cast<std::size_t>(i)])
        << "responses must preserve per-connection request order";
    ASSERT_EQ(r.code, WireCode::kOk) << r.message;
    const Tensor expected =
        fx.engine->submit(inputs[static_cast<std::size_t>(i)].clone()).get();
    EXPECT_EQ(std::memcmp(r.tensor.data(), expected.data(),
                          sizeof(float) *
                              static_cast<std::size_t>(expected.numel())),
              0);
  }
}

/// Classify what one operation threw, using the SAME mapping the server
/// uses — so "in-process submit" and "wire client" failures are directly
/// comparable as WireCodes.
template <typename Fn>
WireCode classify(Fn&& fn) {
  try {
    fn();
    return WireCode::kOk;
  } catch (...) {
    double retry = 0.0;
    std::string msg;
    return serve::code_for_exception(std::current_exception(), &retry, &msg);
  }
}

TEST(ServerTest, TypedErrorDifferentialConformance) {
  // For each failure scenario, trigger it (a) against the in-process engine
  // and (b) through the TCP client, and require the SAME typed outcome.
  // This is the load-bearing guarantee of the wire protocol: a remote
  // client's catch blocks behave exactly like a local caller's.
  InferenceEngine::Config ecfg = fast_engine_cfg();
  ecfg.expected_in_channels = 3;
  ServerFixture fx({}, ecfg);
  Client c = fx.client();
  const int64_t res = 8;

  {  // RequestError: non-finite input (validate_finite).
    Tensor nan_map = random_map(res, 60);
    nan_map.data()[3] = std::numeric_limits<float>::quiet_NaN();
    const WireCode local = classify(
        [&] { fx.engine->submit(nan_map.clone()).get(); });
    const WireCode wire = classify([&] { c.infer(nan_map.clone()); });
    EXPECT_EQ(local, WireCode::kRequest);
    EXPECT_EQ(wire, local);
    EXPECT_THROW(c.infer(nan_map.clone()), runtime::RequestError);
  }
  {  // RequestError: wrong channel count.
    Rng rng(61);
    Tensor two_ch = Tensor::randn({2, res, res}, rng);
    const WireCode local = classify(
        [&] { fx.engine->submit(two_ch.clone()).get(); });
    const WireCode wire = classify([&] { c.infer(two_ch.clone()); });
    EXPECT_EQ(local, WireCode::kRequest);
    EXPECT_EQ(wire, local);
  }
  {  // RequestError: unknown model (fleet-level; locally = unknown engine).
    EXPECT_THROW(c.infer(random_map(res, 62), "no-such-model"),
                 runtime::RequestError);
  }
  {  // DeadlineExceededError: 1 ms deadline vs a 150 ms injected forward
     // delay — the future must resolve typed, and so must the wire client.
    FaultGuard fg("forward:delay:ms=150:p=1", 7);
    runtime::SubmitOptions opts;
    opts.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(1);
    const WireCode local = classify(
        [&] { fx.engine->submit(random_map(res, 63), opts).get(); });
    const WireCode wire = classify(
        [&] { c.infer(random_map(res, 64), "", "default", /*deadline_ms=*/1); });
    EXPECT_EQ(local, WireCode::kDeadlineExceeded);
    EXPECT_EQ(wire, local);
  }
  {  // ShutdownError: drained server refuses; drained engine refuses.
    fx.server->drain(std::chrono::milliseconds(2000));
    const WireCode local = classify(
        [&] { fx.engine->submit(random_map(res, 65)).get(); });
    const WireCode wire = classify([&] { c.infer(random_map(res, 66)); });
    EXPECT_EQ(local, WireCode::kShutdown);
    EXPECT_EQ(wire, local);
    EXPECT_THROW(c.infer(random_map(res, 67)), runtime::ShutdownError);
  }
}

TEST(ServerTest, CancelFrameResolvesRequestAsCancelled) {
  // Wedge the batcher on request A (200 ms forward delay, batch size 1), so
  // request B sits in the queue; cancelling B over the wire must resolve it
  // with kCancelled — exactly what an in-process CancelToken produces.
  InferenceEngine::Config ecfg = fast_engine_cfg();
  ecfg.max_batch = 1;
  ServerFixture fx({}, ecfg);
  FaultGuard fg("forward:delay:ms=200:p=1:n=1", 11);
  Client c = fx.client();
  const std::uint64_t id_a = c.send_infer(random_map(8, 70));
  const std::uint64_t id_b = c.send_infer(random_map(8, 71));
  c.send_cancel(id_b);
  const Response ra = c.recv_response();
  EXPECT_EQ(ra.id, id_a);
  EXPECT_EQ(ra.code, WireCode::kOk) << ra.message;
  const Response rb = c.recv_response();
  EXPECT_EQ(rb.id, id_b);
  EXPECT_EQ(rb.code, WireCode::kCancelled) << rb.message;
}

TEST(ServerTest, TenantQuotaShedsWithOverloadedAndRetryAfter) {
  // Quota 1 for tenant "capped": while its first request is wedged in a
  // 200 ms forward, the next three MUST shed with kOverloaded + a positive
  // retry-after — same contract as engine admission control. A "roomy"
  // tenant is unaffected by capped's backlog.
  Server::Config scfg;
  scfg.quota_spec = "capped=1,*=64";
  InferenceEngine::Config ecfg = fast_engine_cfg();
  ecfg.max_batch = 1;
  ServerFixture fx(scfg, ecfg);
  FaultGuard fg("forward:delay:ms=200:p=1:n=1", 13);
  Client c = fx.client();
  for (int i = 0; i < 4; ++i) {
    c.send_infer(random_map(8, 80 + static_cast<std::uint64_t>(i)), "",
                 "capped");
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < 4; ++i) {
    const Response r = c.recv_response();
    if (r.code == WireCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.code, WireCode::kOverloaded) << r.message;
      EXPECT_GT(r.retry_after_ms, 0.0);
      ++shed;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1) << "quota must have shed at least one request";
  EXPECT_EQ(ok + shed, 4) << "every request gets exactly one response";

  Client other = fx.client();
  EXPECT_NO_THROW(other.infer(random_map(8, 90), "", "roomy"));
  EXPECT_GE(fx.server->stats().quota_rejected, 1);
}

TEST(ServerTest, ConcurrentClientsAllServedCorrectly) {
  ServerFixture fx;
  const int kClients = 6, kPerClient = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c = fx.client();
      for (int i = 0; i < kPerClient; ++i) {
        const Tensor input =
            random_map(8, 100 + static_cast<std::uint64_t>(t * 31 + i));
        const Tensor got = c.infer(input.clone());
        const Tensor expected = fx.engine->submit(input.clone()).get();
        if (got.shape() == expected.shape() &&
            std::memcmp(got.data(), expected.data(),
                        sizeof(float) *
                            static_cast<std::size_t>(got.numel())) == 0) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  EXPECT_GE(fx.server->stats().conns_accepted, kClients);
}

TEST(ServerTest, ConnectionLimitRejectsWithOverloadedThenCloses) {
  Server::Config scfg;
  scfg.max_conns = 1;
  ServerFixture fx(scfg);
  Client first = fx.client();
  EXPECT_NO_THROW(first.ping());  // occupy the only slot

  Client second;
  second.connect("127.0.0.1", fx.server->port());
  const Response r = second.recv_response();
  EXPECT_EQ(r.code, WireCode::kOverloaded);
  EXPECT_GT(r.retry_after_ms, 0.0);
  EXPECT_THROW(second.recv_response(), serve::ConnectionClosedError);
  EXPECT_GE(fx.server->stats().conns_rejected, 1);
}

TEST(ServerTest, MalformedStreamGetsProtocolResponseThenClose) {
  ServerFixture fx;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";  // not our magic
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));

  std::vector<std::uint8_t> body;
  ASSERT_TRUE(serve::read_frame(fd, body));
  const AnyFrame frame = serve::decode_frame(body.data(), body.size());
  ASSERT_EQ(frame.kind, FrameKind::kResponse);
  EXPECT_EQ(frame.response.code, WireCode::kProtocol);
  EXPECT_FALSE(serve::read_frame(fd, body)) << "server must close after";
  ::close(fd);
  EXPECT_GE(fx.server->stats().protocol_errors, 1);
}

TEST(ServerTest, HotLoadInferEvictAndReloadOverTheWire) {
  Server::Config scfg;
  InferenceEngine::Config ecfg = fast_engine_cfg();
  Fleet::Config fc;
  fc.engine = ecfg;
  auto fleet = std::make_shared<Fleet>(fc);
  Server server(fleet, scfg);
  server.start();
  const std::string path = write_smoke_checkpoint("wire", 17);

  Client c;
  c.connect("127.0.0.1", server.port());
  // Nothing is loaded yet: naming the model before load_model is kRequest.
  EXPECT_THROW(c.infer(random_map(8, 120), "hot"), runtime::RequestError);

  c.load_model("hot", path);
  EXPECT_TRUE(fleet->is_loaded("hot"));
  const Tensor first = c.infer(random_map(8, 121), "hot");
  EXPECT_EQ(first.shape(), (Shape{1, 8, 8}));
  // Kelvin sanity: the v2 checkpoint carries a normalizer, so outputs land
  // in absolute temperature, not normalized units.
  EXPECT_GT(first.at(0), 100.f);

  c.evict_model("hot");
  EXPECT_FALSE(fleet->is_loaded("hot"));
  // Still registered: the next request hot-reloads from disk transparently.
  const Tensor second = c.infer(random_map(8, 121), "hot");
  EXPECT_TRUE(fleet->is_loaded("hot"));
  EXPECT_EQ(std::memcmp(first.data(), second.data(),
                        sizeof(float) *
                            static_cast<std::size_t>(first.numel())),
            0)
      << "reloaded weights must serve identical results";

  // load_model on a RESIDENT name is a hot reload (fresh engine, same file).
  c.load_model("hot", path);
  EXPECT_TRUE(fleet->is_loaded("hot"));
  server.stop();
  std::remove(path.c_str());
}

TEST(ServerTest, DrainWhileServingResolvesEveryInFlightRequest) {
  InferenceEngine::Config ecfg = fast_engine_cfg();
  ecfg.max_batch = 2;
  ServerFixture fx({}, ecfg);
  FaultGuard fg("forward:delay:ms=50:p=1", 19);
  Client c = fx.client();
  EXPECT_EQ(c.ping(), "serving");  // before pipelining: FIFO would queue it
  const int kN = 6;
  for (int i = 0; i < kN; ++i) {
    c.send_infer(random_map(8, 130 + static_cast<std::uint64_t>(i)));
  }
  // request_drain is the SIGTERM path: only sets a flag; the accept loop
  // runs the drain. Every already-submitted request must still resolve —
  // value or kShutdown, never silence.
  fx.server->request_drain();
  int resolved = 0;
  for (int i = 0; i < kN; ++i) {
    const Response r = c.recv_response();
    EXPECT_TRUE(r.code == WireCode::kOk || r.code == WireCode::kShutdown)
        << "unexpected code " << serve::wire_code_name(r.code) << ": "
        << r.message;
    ++resolved;
  }
  EXPECT_EQ(resolved, kN);
  // The existing connection survives the drain and reports its state.
  EXPECT_EQ(c.ping(), "draining");
  // New connections are no longer accepted once drained.
  for (int tries = 0; tries < 50 && !fx.server->draining(); ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(fx.server->draining());
}

TEST(ServerTest, DefaultModelFallbackAndPing) {
  ServerFixture fx;
  Client c = fx.client();
  EXPECT_EQ(c.ping(), "serving");
  // model "" routes to cfg.default_model — same engine, same bits.
  const Tensor input = random_map(8, 140);
  const Tensor via_default = c.infer(input.clone(), "");
  const Tensor via_name = c.infer(input.clone(), "sau-fno");
  EXPECT_EQ(std::memcmp(via_default.data(), via_name.data(),
                        sizeof(float) *
                            static_cast<std::size_t>(via_name.numel())),
            0);
}

}  // namespace
}  // namespace saufno
