#include "data/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace saufno {
namespace {

TEST(Metrics, PerfectPredictionIsAllZero) {
  Rng rng(1);
  Tensor t = Tensor::rand_uniform({3, 2, 4, 4}, rng, 330.f, 380.f);
  const auto m = data::compute_metrics(t, t, 318.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.mape, 0.0);
  EXPECT_DOUBLE_EQ(m.pape, 0.0);
  EXPECT_DOUBLE_EQ(m.max_err, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_err, 0.0);
}

TEST(Metrics, ConstantOffsetKnownValues) {
  // pred = true + 2 K everywhere, field is 10 K above a 300 K ambient.
  Tensor t = Tensor::full({2, 1, 3, 3}, 310.f);
  Tensor p = Tensor::full({2, 1, 3, 3}, 312.f);
  const auto m = data::compute_metrics(p, t, 300.0);
  EXPECT_NEAR(m.rmse, 2.0, 1e-6);
  EXPECT_NEAR(m.mean_err, 2.0, 1e-6);
  EXPECT_NEAR(m.max_err, 2.0, 1e-6);
  EXPECT_NEAR(m.mape, 0.2, 1e-6);  // 2 / 10
  EXPECT_NEAR(m.pape, 0.2, 1e-6);
}

TEST(Metrics, RmseExceedsMaeForNonUniformError) {
  // RMSE >= MAE always; strictly greater when errors vary.
  Tensor t = Tensor::full({1, 1, 1, 4}, 350.f);
  Tensor p({1, 1, 1, 4}, {350.f, 354.f, 350.f, 350.f});
  const auto m = data::compute_metrics(p, t, 318.0);
  EXPECT_NEAR(m.mean_err, 1.0, 1e-6);
  EXPECT_NEAR(m.rmse, 2.0, 1e-6);
  EXPECT_GT(m.rmse, m.mean_err);
}

TEST(Metrics, JunctionTemperatureUsesFieldMax) {
  // "Max" compares field maxima, not pixel-wise errors: shifting which
  // pixel is hottest without changing the max value keeps max_err = 0.
  Tensor t({1, 1, 1, 3}, {350.f, 340.f, 330.f});
  Tensor p({1, 1, 1, 3}, {330.f, 340.f, 350.f});  // mirrored
  const auto m = data::compute_metrics(p, t, 318.0);
  EXPECT_NEAR(m.max_err, 0.0, 1e-6);
  EXPECT_GT(m.rmse, 0.0);
}

TEST(Metrics, PapeIsWorstPixelAveragedOverCases) {
  // Case 1: one pixel 50% off; case 2: perfect. PAPE = (0.5 + 0) / 2.
  Tensor t({2, 1, 1, 2}, {328.f, 338.f, 328.f, 338.f});
  Tensor p({2, 1, 1, 2}, {328.f, 328.f, 328.f, 338.f});
  const auto m = data::compute_metrics(p, t, 318.0);
  EXPECT_NEAR(m.pape, 0.25, 1e-6);
}

TEST(Metrics, RiseFloorGuardsAmbientPixels) {
  // A pixel at ambient with a small error must not produce a huge APE.
  Tensor t = Tensor::full({1, 1, 1, 2}, 318.0f);
  Tensor p = Tensor::full({1, 1, 1, 2}, 318.5f);
  const auto m = data::compute_metrics(p, t, 318.0);
  EXPECT_LE(m.mape, 0.5 + 1e-9);  // floored at 1 K rise
}

TEST(Metrics, ShapeMismatchThrows) {
  Tensor a = Tensor::zeros({1, 1, 2, 2});
  Tensor b = Tensor::zeros({1, 1, 3, 3});
  EXPECT_THROW(data::compute_metrics(a, b, 300.0), std::runtime_error);
}

TEST(Metrics, ToStringContainsAllFields) {
  data::Metrics m;
  m.rmse = 0.5;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("RMSE"), std::string::npos);
  EXPECT_NE(s.find("PAPE"), std::string::npos);
  EXPECT_NE(s.find("Mean"), std::string::npos);
}

}  // namespace
}  // namespace saufno
