// Quickstart: the five-minute tour of the public API.
//
//   1. Pick a chip (the paper's Chip1).
//   2. Generate a small supervised dataset with the built-in FDM solver.
//   3. Train a SAU-FNO surrogate.
//   4. Predict a thermal field and compare against the solver.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "chip/chips.h"
#include "common/ascii.h"
#include "common/logging.h"
#include "data/generator.h"
#include "data/normalizer.h"
#include "train/model_zoo.h"
#include "train/trainer.h"

using namespace saufno;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("SAU-FNO quickstart\n==================\n\n");

  // 1. The chip: a two-device-layer single-core 3D IC (Table I / Fig. 3).
  const auto spec = chip::make_chip1();
  std::printf("chip: %s, %zu stack layers, %d device layers, die %.0fx%.0f mm\n",
              spec.name.c_str(), spec.layers.size(), spec.num_device_layers(),
              spec.die_w * 1e3, spec.die_h * 1e3);

  // 2. Data: random block powers -> FDM steady-state temperature fields.
  data::GenConfig gen;
  gen.resolution = 16;
  gen.n_samples = 48;
  gen.seed = 42;
  std::printf("generating %d samples at %dx%d (cached in ./dataset_cache)...\n",
              gen.n_samples, gen.resolution, gen.resolution);
  auto dataset = data::generate_dataset(spec, gen);
  auto [train_set, test_set] = dataset.split(40);

  // 3. Train the surrogate. The normalizer maps power maps and
  //    temperature-rise fields to unit scale and back.
  const auto norm = data::Normalizer::fit(train_set, spec.num_device_layers());
  auto model = train::make_model("SAU-FNO", train_set.in_channels(),
                                 train_set.out_channels(), /*seed=*/1);
  std::printf("model: SAU-FNO with %lld parameters\n",
              static_cast<long long>(model->num_parameters()));
  train::TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 8;
  tc.lr = 2e-3;
  tc.verbose = false;
  train::Trainer trainer(*model, norm, tc);
  const auto report = trainer.fit(train_set);
  std::printf("trained %d epochs in %.1f s (loss %.4f -> %.4f)\n", tc.epochs,
              report.seconds, report.epoch_loss.front(),
              report.final_loss());

  // 4. Evaluate and visualize one case.
  const auto metrics = trainer.evaluate(test_set);
  std::printf("\ntest metrics (kelvin): %s\n\n", metrics.to_string().c_str());

  auto [x, y] = test_set.gather({0});
  Tensor pred = trainer.predict(x);
  const int res = gen.resolution;
  const int64_t plane = static_cast<int64_t>(res) * res;
  std::vector<float> truth(static_cast<std::size_t>(plane)),
      guess(static_cast<std::size_t>(plane));
  // Layer 2 (the core layer) is where the hotspot lives.
  std::copy(y.data() + plane, y.data() + 2 * plane, truth.begin());
  std::copy(pred.data() + plane, pred.data() + 2 * plane, guess.begin());
  std::printf("core-layer ground truth (FDM):\n%s\n",
              ascii_heatmap(truth, res, res).c_str());
  std::printf("core-layer SAU-FNO prediction:\n%s\n",
              ascii_heatmap(guess, res, res).c_str());
  std::printf("junction temperature: truth %.2f K, predicted %.2f K\n",
              *std::max_element(truth.begin(), truth.end()),
              *std::max_element(guess.begin(), guess.end()));
  return 0;
}
