// Transfer-learning walkthrough (Section III-C of the paper).
//
// Trains a SAU-FNO on cheap COARSE-grid solver data, then fine-tunes on a
// handful of FINE-grid cases at lr/10, and compares against training from
// scratch on the fine grid — demonstrating the paper's data-efficiency
// claim end to end, including checkpointing the pre-trained weights.

#include <cstdio>

#include "chip/chips.h"
#include "common/logging.h"
#include "common/timer.h"
#include "data/generator.h"
#include "nn/serialize.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "train/transfer.h"

using namespace saufno;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("transfer learning demo (chip1)\n");
  std::printf("==============================\n\n");
  const auto spec = chip::make_chip1();

  // Low fidelity: lots of cheap coarse cases. High fidelity: few fine ones.
  const int res_lo = 12, res_hi = 20;
  data::GenConfig lo_cfg;
  lo_cfg.resolution = res_lo;
  lo_cfg.n_samples = 64;
  lo_cfg.seed = 100;
  data::GenConfig hi_cfg;
  hi_cfg.resolution = res_hi;
  hi_cfg.n_samples = 28;
  hi_cfg.seed = 200;

  Timer gen_t;
  auto lo_set = data::generate_dataset(spec, lo_cfg);
  const double lo_secs = gen_t.seconds();
  gen_t.reset();
  auto hi_all = data::generate_dataset(spec, hi_cfg);
  const double hi_secs = gen_t.seconds();
  auto [hi_train, hi_test] = hi_all.split(16);
  std::printf("data: %d coarse cases (%.1f s) + %d fine cases (%.1f s)\n",
              lo_cfg.n_samples, lo_secs, hi_cfg.n_samples, hi_secs);
  std::printf("per-case cost ratio fine/coarse: %.1fx (the paper cites "
              "4-6x)\n\n",
              (hi_secs / hi_cfg.n_samples) / (lo_secs / lo_cfg.n_samples));

  const auto norm = data::Normalizer::fit(lo_set, spec.num_device_layers());

  // --- Route A: transfer learning ---
  auto model_a = train::make_model("SAU-FNO", lo_set.in_channels(),
                                   lo_set.out_channels(), /*seed=*/1);
  train::TransferConfig tc = train::TransferConfig::defaults();
  tc.pretrain.epochs = 12;
  tc.pretrain.batch_size = 8;
  tc.pretrain.lr = 2e-3;
  tc.finetune = tc.pretrain;
  tc.finetune.epochs = 6;
  tc.finetune.lr = tc.pretrain.lr / 10;
  std::printf("route A: pre-train %d epochs @%dx%d, fine-tune %d epochs "
              "@%dx%d (lr/10)\n",
              tc.pretrain.epochs, res_lo, res_lo, tc.finetune.epochs, res_hi,
              res_hi);
  const auto rep_a =
      train::transfer_train(*model_a, norm, lo_set, hi_train.take(8), tc);
  // Persist the transferred model the way a design flow would.
  nn::save_checkpoint(*model_a, "saufno_transferred.ckpt");
  std::printf("  total %.1f s (pretrain %.1f + finetune %.1f); checkpoint "
              "saved to saufno_transferred.ckpt\n",
              rep_a.total_seconds(), rep_a.pretrain.seconds,
              rep_a.finetune.seconds);

  // --- Route B: from scratch on the fine grid ---
  auto model_b = train::make_model("SAU-FNO", lo_set.in_channels(),
                                   lo_set.out_channels(), /*seed=*/1);
  train::TrainConfig scratch = tc.pretrain;
  scratch.epochs = tc.pretrain.epochs + tc.finetune.epochs;
  train::Trainer tr_b(*model_b, norm, scratch);
  Timer t_b;
  tr_b.fit(hi_train);
  std::printf("route B: from scratch on %lld fine cases, %.1f s\n",
              static_cast<long long>(hi_train.size()), t_b.seconds());

  // --- Compare on held-out fine-grid cases ---
  train::Trainer eval_a(*model_a, norm, tc.finetune);
  const auto ma = eval_a.evaluate(hi_test);
  const auto mb = tr_b.evaluate(hi_test);
  std::printf("\nheld-out fine-grid metrics:\n");
  std::printf("  transfer (8 fine cases):     %s\n", ma.to_string().c_str());
  std::printf("  from scratch (16 fine cases): %s\n", mb.to_string().c_str());
  std::printf(
      "\nthe transfer route used half the fine-grid cases; per Table III "
      "it should land within ~10%% of from-scratch accuracy.\n");
  return 0;
}
