// Minimal serving deployment of the SAU-FNO thermal predictor.
//
// Starts an InferenceEngine and fires concurrent client threads at it with
// power maps at TWO resolutions (even clients 16x16, odd clients 20x20) to
// exercise the shape-sharded batching, then prints the throughput/latency
// report.
//
// With SAUFNO_CHECKPOINT pointing at a self-describing v2 artifact (written
// by train::save_deployable), the whole pipeline — model identity, weights
// and normalizer — is rebuilt from the file and the engine serves
// raw-in/kelvin-out. A weights-only checkpoint (or none) falls back to the
// zoo model and raw model outputs.
//
//   SAUFNO_NUM_THREADS   pool lanes for the kernels (default: all cores)
//   SAUFNO_MAX_BATCH     coalescing limit per forward        (default 8)
//   SAUFNO_MAX_WAIT_US   batching wait after first request   (default 2000)
//   SAUFNO_CHECKPOINT    optional checkpoint path to restore from
//   SAUFNO_TRACE         write a Chrome trace-event JSON here at exit
//   SAUFNO_PROFILE_KERNELS  1 = per-kernel timing histograms
//   SAUFNO_OBS_SCRAPE    "prom" emits a Prometheus-style text scrape
//                        instead of the default JSON metrics dump
//
// With `--tcp` the same engine is published over a TCP socket instead of
// being driven by in-process clients: length-prefixed binary frames (see
// src/serve/wire.h), multi-tenant quotas, graceful drain on SIGTERM/SIGINT.
// Knobs in that mode:
//
//   SAUFNO_PORT          listen port          (default 7470; 0 = ephemeral)
//   SAUFNO_MAX_CONNS     concurrent connections            (default 64)
//   SAUFNO_TENANT_QUOTA  in-flight quota spec, e.g. "alice=8,*=64"
//
// Usage: serving_demo [n_clients] [requests_per_client]
//        serving_demo --tcp

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "data/normalizer.h"
#include "nn/serialize.h"
#include "obs/export.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "train/model_zoo.h"
#include "runtime/inference_engine.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace {

// SIGTERM/SIGINT -> graceful drain. request_drain() only stores an atomic
// flag (async-signal-safe); the server's accept loop runs the actual drain.
saufno::serve::Server* g_server = nullptr;
void on_shutdown_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace saufno;

  bool tcp = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tcp") == 0) tcp = true;
  }
  const int n_clients = (argc > 1 && !tcp) ? std::atoi(argv[1]) : 4;
  const int per_client = (argc > 2 && !tcp) ? std::atoi(argv[2]) : 8;

  runtime::InferenceEngine::Config cfg;
  cfg.max_batch = env_int_in_range("SAUFNO_MAX_BATCH", 8, 1, 1024);
  cfg.max_wait_us = env_int_in_range("SAUFNO_MAX_WAIT_US", 2000, 0, 10000000);

  const char* ckpt = std::getenv("SAUFNO_CHECKPOINT");
  std::unique_ptr<runtime::InferenceEngine> engine;
  const bool self_describing =
      ckpt != nullptr && !nn::read_checkpoint_meta(ckpt).model_name.empty();
  if (self_describing) {
    engine = runtime::InferenceEngine::from_checkpoint(ckpt, cfg);
    std::printf("restored self-describing v2 checkpoint %s\n", ckpt);
  } else if (ckpt != nullptr) {
    engine = runtime::InferenceEngine::from_zoo(
        "SAU-FNO", /*in_channels=*/3, /*out_channels=*/1, /*seed=*/42,
        std::string(ckpt), cfg);
  } else {
    // No checkpoint at all: untrained zoo weights plus synthetic normalizer
    // stats, so the demo still drives the full encode -> forward -> decode
    // pipeline (a SAUFNO_TRACE of this binary shows every serving stage).
    cfg.expected_in_channels = 3;
    engine = std::make_unique<runtime::InferenceEngine>(
        train::make_model("SAU-FNO", /*in_channels=*/3, /*out_channels=*/1,
                          /*seed=*/42),
        data::Normalizer::from_stats(318.0, 3e4, 9.0, /*n_power_channels=*/1),
        cfg);
  }

  std::printf("serving SAU-FNO on %d kernel lanes, max_batch=%lld, "
              "max_wait=%lldus\n",
              runtime::ThreadPool::instance().num_threads(),
              static_cast<long long>(cfg.max_batch),
              static_cast<long long>(cfg.max_wait_us));
  std::printf("contract: %s\n",
              engine->has_normalizer()
                  ? "raw W-per-pixel power maps in -> kelvin fields out"
                  : "normalized tensors in -> raw model outputs out "
                    "(weights-only checkpoint)");

  if (tcp) {
    // Network mode: hand the engine to a single-model fleet and serve the
    // wire protocol until a shutdown signal drains us.
    serve::Fleet::Config fc;
    fc.engine = cfg;
    auto fleet = std::make_shared<serve::Fleet>(fc);
    fleet->add_engine("sau-fno",
                      std::shared_ptr<runtime::InferenceEngine>(
                          std::move(engine)));
    serve::Server::Config scfg;
    scfg.port = static_cast<std::uint16_t>(
        env_int_in_range("SAUFNO_PORT", 7470, 0, 65535));
    scfg.max_conns = env_int_in_range("SAUFNO_MAX_CONNS", 64, 1, 4096);
    if (const char* q = std::getenv("SAUFNO_TENANT_QUOTA"); q != nullptr) {
      scfg.quota_spec = q;
    }
    scfg.default_model = "sau-fno";
    serve::Server server(fleet, scfg);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, on_shutdown_signal);
    std::signal(SIGINT, on_shutdown_signal);
    std::printf("listening on 127.0.0.1:%u (max_conns=%d, quota=\"%s\") — "
                "SIGTERM/SIGINT drains gracefully\n",
                server.port(), scfg.max_conns, scfg.quota_spec.c_str());
    while (!server.draining()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
    g_server = nullptr;
    const auto ss = server.stats();
    std::printf("\n-- server stats --\n");
    std::printf("connections     %lld accepted, %lld rejected\n",
                static_cast<long long>(ss.conns_accepted),
                static_cast<long long>(ss.conns_rejected));
    std::printf("requests        %lld (%lld responses)\n",
                static_cast<long long>(ss.requests),
                static_cast<long long>(ss.responses));
    std::printf("quota rejected  %lld\n",
                static_cast<long long>(ss.quota_rejected));
    std::printf("protocol errors %lld\n",
                static_cast<long long>(ss.protocol_errors));
    return 0;
  }

  std::printf("%d clients x %d requests, 16x16 and 20x20 power maps "
              "interleaved\n\n",
              n_clients, per_client);

  std::vector<std::thread> clients;
  std::atomic<int> request_errors{0};
  for (int c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      // Two live resolutions: the shape-sharded queue batches each shape
      // separately instead of collapsing to single-request forwards.
      const int64_t res = (c % 2 == 0) ? 16 : 20;
      Rng rng(static_cast<std::uint64_t>(1000 + c));
      for (int r = 0; r < per_client; ++r) {
        // A power map plus the two coordinate channels the model lifts.
        Tensor request = Tensor::rand_uniform({3, res, res}, rng, 0.f, 1.f);
        try {
          const Tensor temperature = engine->submit(std::move(request)).get();
          if (r == 0 && c == 0) {
            std::printf("first response: temperature field %s, range "
                        "[%.3f, %.3f]%s\n",
                        shape_str(temperature.shape()).c_str(),
                        min_all(temperature), max_all(temperature),
                        engine->has_normalizer() ? " K" : " (normalized)");
          }
        } catch (const runtime::EngineError& e) {
          // Per-request failures (SAUFNO_FAULT injection, shed load,
          // deadline) are part of the serving contract: report, keep going.
          request_errors.fetch_add(1, std::memory_order_relaxed);
          std::printf("[client %d] request %d failed: %s\n", c, r, e.what());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  if (const int errs = request_errors.load(); errs > 0) {
    std::printf("\n%d request(s) resolved with a typed error (see above)\n",
                errs);
  }

  const auto s = engine->stats();
  std::printf("\n-- engine stats --\n");
  std::printf("requests        %lld\n", static_cast<long long>(s.requests));
  std::printf("batches         %lld (avg batch %.2f)\n",
              static_cast<long long>(s.batches), s.avg_batch_size);
  std::printf("throughput      %.1f req/s over %.3f s busy window\n",
              s.throughput_rps, s.wall_seconds);
  std::printf("latency p50     %.2f ms\n", s.latency_p50_ms);
  std::printf("latency p95     %.2f ms\n", s.latency_p95_ms);
  std::printf("latency p99     %.2f ms\n", s.latency_p99_ms);
  std::printf("latency max     %.2f ms\n", s.latency_max_ms);

  // Full telemetry scrape: everything the obs registry collected across
  // the pool, queue, engine, arena and FFT plan cache. This is what a
  // metrics endpoint would serve; the demo prints it to stdout.
  const char* scrape = std::getenv("SAUFNO_OBS_SCRAPE");
  const bool prom = scrape != nullptr && std::string(scrape) == "prom";
  std::printf("\n-- obs scrape (%s) --\n%s\n", prom ? "prometheus" : "json",
              prom ? obs::dump_prometheus().c_str()
                   : obs::dump_json().c_str());
  return 0;
}
