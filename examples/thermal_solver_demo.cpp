// Thermal-solver demo: use the simulation substrate directly, no ML.
//
// Defines a CUSTOM two-layer chip (not one of the built-ins), assigns an
// asymmetric workload, solves the steady heat equation with the
// finite-volume solver, cross-checks with the compact RC network, and
// prints per-layer heatmaps — i.e., the library as a miniature MTA.

#include <cstdio>

#include "chip/floorplan.h"
#include "common/ascii.h"
#include "thermal/compact_rc.h"
#include "thermal/fdm_solver.h"

using namespace saufno;

namespace {

chip::ChipSpec make_custom_chip() {
  using chip::BlockKind;
  chip::ChipSpec c;
  c.name = "custom-dual-core";
  c.die_w = 8e-3;
  c.die_h = 8e-3;

  chip::LayerSpec cache;
  cache.name = "cache-layer";
  cache.thickness = 0.1e-3;
  cache.material = chip::materials::device_silicon();
  cache.is_device = true;
  cache.floorplan.blocks = {
      {"SRAM_L", BlockKind::kL2Cache, 0.0, 0.0, 0.5, 1.0},
      {"SRAM_R", BlockKind::kL2Cache, 0.5, 0.0, 0.5, 1.0},
  };

  chip::LayerSpec cores;
  cores.name = "core-layer";
  cores.thickness = 0.1e-3;
  cores.material = chip::materials::device_silicon();
  cores.is_device = true;
  cores.floorplan.blocks = {
      {"BigCore", BlockKind::kCore, 0.00, 0.00, 0.55, 0.70},
      {"LittleCore", BlockKind::kCore, 0.55, 0.00, 0.45, 0.45},
      {"Uncore", BlockKind::kInterconnect, 0.00, 0.70, 1.00, 0.30},
      {"IO", BlockKind::kL1Cache, 0.55, 0.45, 0.45, 0.25},
  };

  c.layers = {cache, cores};
  c.layers.push_back({"TIM", 0.02e-3, chip::materials::tim(), false, {}});
  c.layers.push_back(
      {"heat-spreader", 1e-3, chip::materials::copper(), false, {}});
  c.layers.push_back(
      {"heat-sink-base", 6.9e-3, chip::materials::copper(), false, {}});
  c.total_power_min = 20;
  c.total_power_max = 60;
  c.validate();
  return c;
}

}  // namespace

int main() {
  std::printf("thermal solver demo: custom chip, no ML\n");
  std::printf("=======================================\n\n");
  const auto spec = make_custom_chip();

  // An asymmetric workload: the big core is sprinting.
  chip::PowerAssignment pa;
  pa.power.resize(spec.layers.size());
  pa.power[0] = {3.0, 3.0};              // SRAM_L, SRAM_R
  pa.power[1] = {28.0, 5.0, 4.0, 1.0};   // BigCore sprint
  std::printf("workload: %.1f W total, BigCore at 28 W\n\n", pa.total());

  const int res = 24;
  const auto grid = thermal::build_grid(spec, pa, res, res);
  thermal::FdmSolver solver;
  const auto sol = solver.solve(grid);
  std::printf("FDM solve: %d CG iterations, residual %.1e, converged=%s\n",
              sol.iterations, sol.residual, sol.converged ? "yes" : "no");
  std::printf("field: max %.2f K, min %.2f K (ambient %.0f K)\n\n",
              sol.max_temperature(), sol.min_temperature(), spec.ambient);

  for (int layer = 0; layer < 2; ++layer) {
    const auto map = sol.layer_map(grid, layer);
    std::printf("%s temperature map:\n%s\n", spec.layers[static_cast<std::size_t>(layer)].name.c_str(),
                ascii_heatmap(map, res, res).c_str());
  }

  // Cross-check with the compact RC network (HotSpot-class estimate).
  thermal::CompactRcSolver rc(spec);
  const auto rc_res = rc.solve(pa);
  std::printf("compact RC block temperatures (fast estimate):\n");
  for (const auto& b : rc_res.blocks) {
    std::printf("  layer %d  %-14s %.2f K\n", b.layer, b.name.c_str(),
                b.temperature);
  }
  std::printf(
      "\nnote the RC model reads hotter than the field solver — the same "
      "bias the paper's Table IV shows for HotSpot.\n");
  return 0;
}
