// Hotspot explorer: the iterative-design use case that motivates the
// paper's 842x speedup. A floorplanning loop needs junction temperatures
// for MANY candidate power allocations; the FDM solver is far too slow for
// that inner loop, so we train a SAU-FNO surrogate once and then sweep
// hundreds of candidate workload splits through it, picking the allocation
// with the lowest junction temperature — and verify the winner with the
// solver afterwards.

#include <cstdio>

#include "chip/chips.h"
#include "common/logging.h"
#include "common/timer.h"
#include "tensor/tensor_ops.h"
#include "data/generator.h"
#include "thermal/fdm_solver.h"
#include "train/model_zoo.h"
#include "train/trainer.h"

using namespace saufno;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("hotspot explorer: surrogate-driven workload placement\n");
  std::printf("=====================================================\n\n");
  const auto spec = chip::make_chip2();  // quad-core
  const int res = 16;

  // Train the surrogate once (this is the offline cost).
  data::GenConfig gen;
  gen.resolution = res;
  gen.n_samples = 80;
  gen.seed = 777;
  auto dataset = data::generate_dataset(spec, gen);
  const auto norm = data::Normalizer::fit(dataset, spec.num_device_layers());
  auto model = train::make_model("SAU-FNO", dataset.in_channels(),
                                 dataset.out_channels(), /*seed=*/3);
  train::TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 8;
  tc.lr = 2e-3;
  train::Trainer trainer(*model, norm, tc);
  Timer t_train;
  trainer.fit(dataset);
  std::printf("surrogate trained in %.1f s on %d solver cases\n\n",
              t_train.seconds(), gen.n_samples);

  // Design question: 60 W of work must be split across the four cores
  // (the two L2 layers idle at 2 W per cache). Which split minimizes the
  // junction temperature?
  chip::PowerGenerator pgen(spec);
  Rng rng(2025);
  const int candidates = 200;
  Timer t_sweep;
  double best_tj = 1e30, worst_tj = 0;
  std::vector<double> best_split;
  const int64_t plane = static_cast<int64_t>(res) * res;
  const int n_dev = spec.num_device_layers();
  for (int trial = 0; trial < candidates; ++trial) {
    // Random 4-way split of 60 W.
    double w[4], sum = 0;
    for (double& v : w) {
      v = rng.uniform(0.05, 1.0);
      sum += v;
    }
    chip::PowerAssignment pa;
    pa.power.resize(spec.layers.size());
    pa.power[0] = {2.0, 2.0};
    pa.power[1] = {2.0, 2.0};
    pa.power[2] = {60 * w[0] / sum, 60 * w[1] / sum, 60 * w[2] / sum,
                   60 * w[3] / sum};
    const auto maps = pgen.rasterize(pa, res, res);
    Tensor x({1, n_dev + 2, res, res});
    for (int c = 0; c < n_dev; ++c) {
      std::copy(maps[static_cast<std::size_t>(c)].begin(),
                maps[static_cast<std::size_t>(c)].end(),
                x.data() + c * plane);
    }
    for (int i = 0; i < res; ++i) {
      for (int j = 0; j < res; ++j) {
        x.data()[n_dev * plane + i * res + j] =
            static_cast<float>(i) / (res - 1);
        x.data()[(n_dev + 1) * plane + i * res + j] =
            static_cast<float>(j) / (res - 1);
      }
    }
    const double tj = max_all(trainer.predict(x));
    worst_tj = std::max(worst_tj, tj);
    if (tj < best_tj) {
      best_tj = tj;
      best_split = {pa.power[2][0], pa.power[2][1], pa.power[2][2],
                    pa.power[2][3]};
    }
  }
  const double sweep_secs = t_sweep.seconds();
  std::printf("swept %d candidate splits in %.2f s (%.1f ms per candidate)\n",
              candidates, sweep_secs, 1e3 * sweep_secs / candidates);
  std::printf("predicted junction temperature: best %.2f K, worst %.2f K\n",
              best_tj, worst_tj);
  std::printf("best split: C1 %.1f W, C2 %.1f W, C3 %.1f W, C4 %.1f W\n\n",
              best_split[0], best_split[1], best_split[2], best_split[3]);

  // Verify the chosen design point with the real solver.
  chip::PowerAssignment best_pa;
  best_pa.power.resize(spec.layers.size());
  best_pa.power[0] = {2.0, 2.0};
  best_pa.power[1] = {2.0, 2.0};
  best_pa.power[2] = best_split;
  Timer t_solve;
  const auto sol =
      thermal::FdmSolver().solve(thermal::build_grid(spec, best_pa, res, res));
  std::printf("FDM verification of the winner: Tj = %.2f K (solve took "
              "%.2f s)\n",
              sol.max_temperature(), t_solve.seconds());
  std::printf("surrogate-vs-solver gap: %.2f K\n",
              best_tj - sol.max_temperature());
  std::printf(
      "\nthe sweep would have cost %d solver runs (~%.0f s) without the "
      "surrogate — this inner-loop saving is the paper's core pitch.\n",
      candidates, candidates * t_solve.seconds());
  return 0;
}
