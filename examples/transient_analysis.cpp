// Transient thermal analysis: the time-dependent form of the heat
// equation (Eq. 1-2 of the paper) that Section V names as future work.
//
// Simulates a power-state sequence on Chip1 — idle, sprint, throttle —
// chaining the implicit-Euler transient solver phase to phase through the
// full temperature field, and prints the junction-temperature trajectory.
// The design question it answers: how long can the core sprint before Tj
// crosses a thermal limit?

#include <algorithm>
#include <cstdio>
#include <vector>

#include "chip/chips.h"
#include "thermal/transient.h"

using namespace saufno;

namespace {

chip::PowerAssignment phase_power(const chip::ChipSpec& spec, double core_w,
                                  double cache_w) {
  chip::PowerAssignment pa;
  pa.power.resize(spec.layers.size());
  pa.power[0] = {cache_w, cache_w, cache_w};                  // L2 caches
  pa.power[1] = {core_w, cache_w / 2, cache_w / 2, cache_w};  // core layer
  return pa;
}

}  // namespace

int main() {
  std::printf("transient thermal analysis (chip1 power-state sequence)\n");
  std::printf("=======================================================\n\n");
  const auto spec = chip::make_chip1();
  const int res = 16;
  const double dt = 0.05;  // 50 ms steps
  const int steps = 40;    // 2 s per phase

  thermal::TransientSolver::Options opt;
  opt.dt = dt;
  opt.steps = steps;
  thermal::TransientSolver solver(opt);

  struct Phase {
    const char* name;
    double core_w, cache_w;
  } phases[] = {
      {"idle", 15.0, 4.0},
      {"sprint", 120.0, 10.0},
      {"throttle", 45.0, 8.0},
  };

  std::vector<double> tj;       // junction temperature per step
  std::vector<double> state;    // field carried across phases
  for (const auto& ph : phases) {
    const auto grid = thermal::build_grid(
        spec, phase_power(spec, ph.core_w, ph.cache_w), res, res);
    const auto result =
        state.empty() ? solver.solve(grid)
                      : solver.solve_from(grid, std::move(state));
    tj.insert(tj.end(), result.max_temperature_history.begin(),
              result.max_temperature_history.end());
    state = result.final_state.temperature;
    std::printf("phase %-9s core %5.1f W -> Tj %.2f K after %.1f s "
                "(solve %.2f s)\n",
                ph.name, ph.core_w, tj.back(), dt * steps,
                result.total_seconds);
  }

  // ASCII strip chart of the Tj trajectory.
  std::printf("\nTj trajectory (%.0f ms per column):\n", dt * 1e3);
  const double lo = *std::min_element(tj.begin(), tj.end());
  const double hi = *std::max_element(tj.begin(), tj.end());
  const int rows = 12;
  for (int r = rows; r >= 0; --r) {
    const double level = lo + (hi - lo) * r / rows;
    std::printf("%7.1fK |", level);
    for (double v : tj) std::printf("%c", v >= level ? '#' : ' ');
    std::printf("\n");
  }
  std::printf("          +");
  for (std::size_t i = 0; i < tj.size(); ++i) std::printf("-");
  std::printf("\n           0s%*s\n", static_cast<int>(tj.size()), "6s");

  // Sprint budget: time into the sprint phase until Tj crosses 390 K.
  const double limit = 390.0;
  int cross = -1;
  for (int i = steps; i < 2 * steps; ++i) {
    if (tj[static_cast<std::size_t>(i)] >= limit) {
      cross = i - steps;
      break;
    }
  }
  if (cross >= 0) {
    std::printf("\nsprint budget at the %.0f K limit: %.2f s\n", limit,
                (cross + 1) * dt);
  } else {
    std::printf("\nsprint stays below the %.0f K limit for the full phase\n",
                limit);
  }
  return 0;
}
