// Transient thermal analysis on the streaming rollout stack.
//
// The original version of this example drove the implicit-Euler solver
// directly. This one runs the full surrogate pipeline the rollout subsystem
// provides:
//
//   1. generate transient trajectories from thermal::TransientSolver
//   2. train the autoregressive one-step surrogate (teacher-forced, then
//      free-running BPTT)
//   3. persist it as a self-describing v3 rollout checkpoint
//   4. rebuild the serving pipeline with RolloutEngine::from_checkpoint and
//      stream a power-state scenario — idle, sprint, throttle — through
//      CONCURRENT sessions, one per candidate sprint power, so one batched
//      engine answers "how hard can this core sprint?" for several design
//      points at once
//   5. sanity-check the served trajectory against the reference solver
//
// Runtime is a couple of minutes on one core; SAUFNO_EPOCHS / SAUFNO_NSEQ
// shrink or grow the training stage.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "chip/chips.h"
#include "common/env.h"
#include "data/sequence.h"
#include "runtime/rollout_engine.h"
#include "thermal/transient.h"
#include "train/model_zoo.h"
#include "train/rollout.h"

using namespace saufno;

namespace {

constexpr int kRes = 12;
constexpr double kDt = 0.05;     // 50 ms per surrogate step
constexpr int kPhaseSteps = 10;  // 0.5 s per phase

struct Phase {
  const char* name;
  double core_w, cache_w;
};

chip::PowerAssignment phase_power(double core_w, double cache_w) {
  chip::PowerAssignment pa;
  pa.power.resize(2);
  pa.power[0] = {cache_w, cache_w, cache_w};                  // L2 caches
  pa.power[1] = {core_w, cache_w / 2, cache_w / 2, cache_w};  // core layer
  return pa;
}

/// Rasterized [K, C_power, H, W] power sequence for a 3-phase scenario.
Tensor scenario_powers(const chip::ChipSpec& spec,
                       const std::vector<Phase>& phases) {
  chip::PowerGenerator pgen(spec);
  const int n_dev = spec.num_device_layers();
  const int64_t plane = static_cast<int64_t>(kRes) * kRes;
  Tensor out({static_cast<int64_t>(phases.size()) * kPhaseSteps, n_dev, kRes,
              kRes});
  int64_t k = 0;
  for (const auto& ph : phases) {
    const auto maps =
        pgen.rasterize(phase_power(ph.core_w, ph.cache_w), kRes, kRes);
    for (int s = 0; s < kPhaseSteps; ++s, ++k) {
      float* dst = out.data() + k * n_dev * plane;
      for (int c = 0; c < n_dev; ++c) {
        std::copy(maps[static_cast<std::size_t>(c)].begin(),
                  maps[static_cast<std::size_t>(c)].end(), dst + c * plane);
      }
    }
  }
  return out;
}

/// Reference Tj trajectory from the implicit-Euler solver.
std::vector<double> reference_tj(const chip::ChipSpec& spec,
                                 const std::vector<Phase>& phases) {
  thermal::TransientSolver::Options opt;
  opt.dt = kDt;
  opt.steps = kPhaseSteps;
  thermal::TransientSolver solver(opt);
  std::vector<double> tj;
  std::vector<double> state;
  for (const auto& ph : phases) {
    const auto grid = thermal::build_grid(
        spec, phase_power(ph.core_w, ph.cache_w), kRes, kRes);
    const auto res = state.empty() ? solver.solve(grid)
                                   : solver.solve_from(grid, std::move(state));
    tj.insert(tj.end(), res.max_temperature_history.begin(),
              res.max_temperature_history.end());
    state = res.final_state.temperature;
  }
  return tj;
}

void chart(const std::vector<std::vector<float>>& curves,
           const std::vector<const char*>& names) {
  double lo = 1e30, hi = -1e30;
  for (const auto& c : curves) {
    for (const double v : c) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const int rows = 12;
  const double band = (hi - lo) / rows;
  for (int r = rows; r >= 0; --r) {
    const double level = lo + band * r;
    std::printf("%7.1fK |", level);
    for (std::size_t i = 0; i < curves[0].size(); ++i) {
      char ch = ' ';
      for (std::size_t c = 0; c < curves.size(); ++c) {
        // Line plot, not area fill: mark the band the value falls in, so
        // cooler curves stay visible below hotter ones.
        const double v = curves[c][i];
        if (v >= level && (r == rows || v < level + band)) {
          ch = static_cast<char>('1' + c);
        }
      }
      std::printf("%c", ch);
    }
    std::printf("\n");
  }
  std::printf("          +");
  for (std::size_t i = 0; i < curves[0].size(); ++i) std::printf("-");
  std::printf("\n");
  for (std::size_t c = 0; c < curves.size(); ++c) {
    std::printf("  [%zu] %s\n", c + 1, names[c]);
  }
}

}  // namespace

int main() {
  std::printf("transient rollout serving (chip1 power-state sequences)\n");
  std::printf("=======================================================\n\n");
  const auto spec = chip::make_chip1();

  // 1. Trajectories from the reference solver.
  data::TransientGenConfig gen;
  gen.resolution = kRes;
  gen.n_sequences = env_int_in_range("SAUFNO_NSEQ", 12, 2, 1000);
  gen.steps = 12;
  gen.phases = 3;
  gen.dt = kDt;
  std::printf("generating %d solver trajectories (%d steps, dt=%.0f ms)...\n",
              gen.n_sequences, gen.steps, kDt * 1e3);
  const auto train_set = data::generate_transient_sequences(spec, gen);
  const auto norm = data::fit_sequence_normalizer(train_set);
  const auto rspec = train_set.spec();

  // 2. Train the one-step surrogate with the unrolled loss.
  auto model = train::make_model("SAU-FNO-micro", rspec.in_channels(),
                                 rspec.out_channels(), /*seed=*/11);
  train::RolloutTrainConfig tc;
  tc.epochs = env_int_in_range("SAUFNO_EPOCHS", 24, 1, 10000);
  tc.teacher_forced_epochs = tc.epochs / 2;
  tc.batch_size = 4;
  tc.lr = 2e-3;
  train::RolloutTrainer trainer(*model, norm, rspec, tc);
  std::printf("training %d epochs (%d teacher-forced, then free-running)...\n",
              tc.epochs, tc.teacher_forced_epochs);
  const auto report = trainer.fit(train_set);
  std::printf("final unrolled loss %.4g after %.1f s\n", report.final_loss(),
              report.seconds);
  const auto eval = trainer.evaluate(train_set, /*teacher_forced=*/false);
  std::printf("free-running MAE: step 1 %.3f K -> step %zu %.3f K\n\n",
              eval.mae_per_step.front(), eval.mae_per_step.size(),
              eval.mae_per_step.back());

  // 3. Deploy as a self-describing rollout artifact.
  const std::string ckpt = "transient_rollout.ckpt";
  train::save_rollout_deployable(*model, "SAU-FNO-micro", norm, rspec, ckpt);
  std::printf("saved %s (dt=%.0f ms, %lld state + %lld power channels)\n",
              ckpt.c_str(), rspec.dt * 1e3,
              static_cast<long long>(rspec.state_channels),
              static_cast<long long>(rspec.power_channels));

  // 4. Rebuild the serving pipeline from the file and stream the scenario
  //    for three candidate sprint powers as CONCURRENT sessions.
  auto engine = runtime::RolloutEngine::from_checkpoint(ckpt);
  const std::vector<double> sprint_watts = {80.0, 120.0, 160.0};
  std::vector<std::unique_ptr<runtime::RolloutSession>> sessions;
  std::vector<runtime::RolloutSession*> raw;
  std::vector<Tensor> powers;
  const Tensor init = Tensor::full(
      {rspec.state_channels, kRes, kRes}, static_cast<float>(spec.ambient));
  for (const double w : sprint_watts) {
    const std::vector<Phase> phases = {
        {"idle", 15.0, 4.0}, {"sprint", w, 10.0}, {"throttle", 45.0, 8.0}};
    sessions.push_back(engine->open_session(init.clone()));
    raw.push_back(sessions.back().get());
    powers.push_back(scenario_powers(spec, phases));
  }
  const auto trajectories = engine->run(raw, powers);
  const auto stats = engine->stats();
  std::printf("\nserved %lld session-steps in %lld batches "
              "(avg batch %.2f, p95 %.2f ms/step)\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches), stats.avg_batch_size,
              stats.latency_p95_ms);

  // Per-step surrogate Tj = max over the served kelvin field.
  std::vector<std::vector<float>> tj_curves;
  std::vector<const char*> names = {"sprint  80 W (surrogate)",
                                    "sprint 120 W (surrogate)",
                                    "sprint 160 W (surrogate)"};
  const int64_t row = rspec.state_channels * kRes * kRes;
  for (const auto& traj : trajectories) {
    std::vector<float> tj;
    for (int64_t k = 0; k < traj.size(0); ++k) {
      float mx = -1e30f;
      for (int64_t i = 0; i < row; ++i) {
        mx = std::max(mx, traj.at(k * row + i));
      }
      tj.push_back(mx);
    }
    tj_curves.push_back(std::move(tj));
  }
  std::printf("\nTj trajectories, %.0f ms per column "
              "(idle | sprint | throttle):\n",
              kDt * 1e3);
  chart(tj_curves, names);

  // 5. Reference check for the 120 W scenario.
  const std::vector<Phase> mid = {
      {"idle", 15.0, 4.0}, {"sprint", 120.0, 10.0}, {"throttle", 45.0, 8.0}};
  const auto ref = reference_tj(spec, mid);
  double max_err = 0.0;
  for (std::size_t k = 0; k < ref.size(); ++k) {
    max_err = std::max(max_err, std::fabs(ref[k] - tj_curves[1][k]));
  }
  std::printf("\n120 W scenario vs implicit-Euler reference: "
              "max |Tj error| %.2f K over %.1f s\n",
              max_err, ref.size() * kDt);
  std::printf("(a smoke-scale surrogate; raise SAUFNO_NSEQ / SAUFNO_EPOCHS "
              "to tighten it)\n");
  return 0;
}
