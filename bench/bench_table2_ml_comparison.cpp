// Reproduces Table II: comparison of SAU-FNO with the neural-operator
// baselines (DeepOHeat, FNO, U-FNO, GAR) on Chip2 at two resolutions,
// reporting RMSE / MAPE / PAPE / Max (junction temperature error) / Mean.
//
// Paper's published numbers (Chip2):
//   Method      Res    RMSE   MAPE   PAPE   Max    Mean
//   DeepOHeat   40x40  0.457  0.093  0.811  2.936  0.297
//   FNO         40x40  0.438  0.086  0.730  2.774  0.329
//   U-FNO       40x40  0.221  0.049  0.195  0.741  0.185
//   GAR         40x40  0.576  0.127  0.893  4.639  0.153
//   Ours        40x40  0.197  0.041  0.168  0.650  0.146
// (and similar ordering at 64x64). The reproduction checks the SHAPE:
// SAU-FNO <= U-FNO < FNO/DeepOHeat/GAR on RMSE and junction temperature.

#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"

using namespace saufno;
using namespace saufno::bench;

int main() {
  set_log_level(LogLevel::kWarn);
  print_header("Table II: ML method comparison on chip2");
  const BenchScale s = BenchScale::current();
  const auto spec = chip::make_chip2();

  CsvWriter csv("table2_results.csv");
  csv.row({"method", "resolution", "rmse", "mape", "pape", "max", "mean",
           "params", "train_s"});

  TablePrinter table(
      {"Method", "Resolution", "RMSE", "MAPE", "PAPE", "Max", "Mean"},
      {14, 12, 9, 9, 9, 9, 9});

  for (int res : {s.res_low, s.res_high}) {
    auto [train_set, test_set] =
        make_split(spec, res, s.n_train, s.n_test, /*seed=*/2024);
    const auto norm = data::Normalizer::fit(
        train_set, spec.num_device_layers());
    for (const auto& name : train::table2_model_names()) {
      Timer t;
      const auto run =
          run_model(name, train_set, test_set, norm, s, /*seed=*/7001);
      const auto& m = run.metrics;
      const std::string shown = name == "SAU-FNO" ? "Ours (SAU-FNO)" : name;
      table.add_row({shown, std::to_string(res) + "x" + std::to_string(res),
                     fmt(m.rmse), fmt(m.mape), fmt(m.pape), fmt(m.max_err),
                     fmt(m.mean_err)});
      csv.row({name, std::to_string(res), fmt(m.rmse, 4), fmt(m.mape, 4),
               fmt(m.pape, 4), fmt(m.max_err, 4), fmt(m.mean_err, 4),
               std::to_string(run.parameters), fmt(run.train_seconds, 1)});
      std::fprintf(stderr, "[table2] %s @ %d done in %.1fs\n", name.c_str(),
                   res, t.seconds());
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("rows also written to table2_results.csv\n");
  std::printf(
      "expected shape (paper): Ours <= U-FNO << FNO/DeepOHeat/GAR on RMSE "
      "and Max\n");
  return 0;
}
