// Threads x batch-size sweep for the serving path.
//
// Baseline is the seed's deployment story: single thread, one sample per
// forward, straight model->forward calls. Each sweep cell routes the same
// request stream through the InferenceEngine with the pool resized to T
// lanes and batches capped at B, and reports requests/second plus the
// speedup over that baseline. On a machine with >= 4 cores the 4-thread
// batched rows show the >= 2x target; on fewer cores the batching rows
// still win by amortizing per-call overhead across coalesced requests.
//
// The overload scenario drives OPEN-LOOP arrivals at 2x the measured
// closed-loop capacity against a bounded queue: the engine must shed with
// OverloadedError + a retry-after hint instead of growing the backlog, no
// accepted request may resolve with a value after its deadline, and
// requests resubmitted after waiting out their hint should mostly land.
// Shed rate, p99 of accepted requests and retry-after accuracy are merged
// into BENCH_rollout.json under the "overload" key (run bench_rollout
// first — it rewrites that file wholesale).
//
// Knobs: SAUFNO_SERVE_N (requests per cell), SAUFNO_NUM_THREADS (initial
// pool size; the sweep resizes in-process), SAUFNO_SCALE=paper for the
// larger model/grid. `--smoke` (or SAUFNO_SMOKE=1) turns the overload
// invariants into hard failures for CI.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/json_writer.h"
#include "common/timer.h"
#include "runtime/errors.h"
#include "runtime/inference_engine.h"
#include "runtime/request_queue.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

std::vector<Tensor> request_stream(int n, int64_t res, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> maps;
  maps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) maps.push_back(Tensor::randn({3, res, res}, rng));
  return maps;
}

double baseline_rps(nn::Module& model, const std::vector<Tensor>& maps,
                    int64_t res) {
  runtime::ThreadPool::instance().resize(1);
  NoGradGuard no_grad;
  Timer t;
  for (const auto& m : maps) {
    model.forward(Var(m.reshape({1, 3, res, res}).clone()));
  }
  return static_cast<double>(maps.size()) / t.seconds();
}

// Interleaved A,B,A,B,... two-resolution stream. Under the old single-FIFO
// queue every batch ended at the first foreign shape, collapsing to
// batch-size-1 forwards; the shape-sharded queue keeps each resolution
// coalescing independently, which is what this scenario measures.
std::vector<Tensor> mixed_stream(int n, int64_t res_a, int64_t res_b,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> maps;
  maps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int64_t res = (i % 2 == 0) ? res_a : res_b;
    maps.push_back(Tensor::randn({3, res, res}, rng));
  }
  return maps;
}

double engine_rps(const std::shared_ptr<nn::Module>& model,
                  const std::vector<Tensor>& maps, int threads, int64_t batch,
                  runtime::InferenceStats* stats_out) {
  runtime::ThreadPool::instance().resize(threads);
  runtime::InferenceEngine::Config cfg;
  cfg.max_batch = batch;
  cfg.max_wait_us = 2000;
  runtime::InferenceEngine engine(model, cfg);
  Timer t;
  std::vector<std::future<Tensor>> futs;
  futs.reserve(maps.size());
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  for (auto& f : futs) f.get();
  const double rps = static_cast<double>(maps.size()) / t.seconds();
  if (stats_out != nullptr) *stats_out = engine.stats();
  return rps;
}

// ---------------------------------------------------------------------------
// Overload scenario: open-loop arrivals at 2x saturation.
// ---------------------------------------------------------------------------

struct OverloadResult {
  int threads = 0;  // pool size during the overload phase
  int arrivals = 0;
  int accepted = 0;
  int shed = 0;
  int retries = 0;
  int retries_accepted = 0;
  int deadline_violations = 0;  // value delivered AFTER the deadline: bug
  int64_t value_ok = 0;
  int64_t expired = 0;
  int64_t failed = 0;
  double capacity_rps = 0.0;   // measured closed-loop throughput
  double offered_rps = 0.0;    // open-loop arrival rate actually achieved
  double shed_rate = 0.0;
  double p99_accepted_ms = 0.0;
  double mean_retry_after_ms = 0.0;
  double retry_accept_rate = 0.0;  // retries admitted after waiting the hint
};

OverloadResult run_overload(const std::shared_ptr<nn::Module>& model,
                            const std::vector<Tensor>& maps, int n_arrivals,
                            int deadline_ms) {
  using clock = std::chrono::steady_clock;
  OverloadResult r;

  // Closed-loop capacity at the overload serving config (4 lanes, batch 8).
  // Two passes: the first warms the plan cache and arena so the capacity
  // estimate reflects steady state, not compilation.
  runtime::InferenceStats warm_stats;
  engine_rps(model, maps, /*threads=*/4, /*batch=*/8, &warm_stats);
  r.capacity_rps = engine_rps(model, maps, 4, 8, nullptr);

  runtime::ThreadPool::instance().resize(4);
  runtime::InferenceEngine::Config cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 1000;
  cfg.queue_capacity = 32;  // the bounded buffer overload pushes against
  runtime::InferenceEngine engine(model, cfg);

  // Harvesters observe each accepted future against its ABSOLUTE deadline:
  // wait_until(deadline) timing out and then get() yielding a value means
  // the engine delivered late — the contract violation the smoke gate trips
  // on. The check is exact regardless of harvester lag because the verdict
  // is taken at the deadline, not at get() time.
  struct Item {
    std::future<Tensor> fut;
    clock::time_point deadline;
  };
  std::mutex m;
  std::condition_variable cv;
  std::deque<Item> inbox;
  bool done = false;
  std::atomic<int64_t> value_ok{0}, expired{0}, failed{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> harvesters;
  for (int h = 0; h < 8; ++h) {
    harvesters.emplace_back([&] {
      for (;;) {
        Item item;
        {
          std::unique_lock<std::mutex> lk(m);
          cv.wait(lk, [&] { return done || !inbox.empty(); });
          if (inbox.empty()) return;
          item = std::move(inbox.front());
          inbox.pop_front();
        }
        const bool in_time =
            item.fut.wait_until(item.deadline) == std::future_status::ready;
        try {
          item.fut.get();
          value_ok.fetch_add(1);
          if (!in_time) violations.fetch_add(1);
        } catch (const runtime::DeadlineExceededError&) {
          expired.fetch_add(1);
        } catch (const std::exception&) {
          failed.fetch_add(1);
        }
      }
    });
  }

  // Open-loop: arrival i is DUE at t0 + i*period regardless of how the
  // engine is doing — that is what distinguishes overload from a polite
  // closed-loop client, and why the queue must shed rather than buffer.
  const double period_s = 1.0 / (2.0 * r.capacity_rps);
  struct Retry {
    clock::time_point due;
    std::size_t map_idx;
  };
  std::deque<Retry> retry_queue;
  double retry_after_sum_ms = 0.0;
  const auto t0 = clock::now();
  auto submit_one = [&](std::size_t map_idx, bool is_retry) {
    runtime::SubmitOptions opts;
    opts.deadline = clock::now() + std::chrono::milliseconds(deadline_ms);
    try {
      auto fut = engine.submit(maps[map_idx % maps.size()].clone(), opts);
      {
        std::lock_guard<std::mutex> lk(m);
        inbox.push_back(Item{std::move(fut), opts.deadline});
      }
      cv.notify_one();
      if (is_retry) ++r.retries_accepted;
      else ++r.accepted;
      return true;
    } catch (const runtime::OverloadedError& e) {
      if (!is_retry) {
        ++r.shed;
        retry_after_sum_ms += e.retry_after_ms();
        // Honor the hint: resubmit this request once, when the engine said
        // capacity should be back.
        retry_queue.push_back(
            Retry{clock::now() + std::chrono::milliseconds(static_cast<int64_t>(
                      e.retry_after_ms() + 0.5)),
                  map_idx});
      }
      return false;
    }
  };
  for (int i = 0; i < n_arrivals; ++i) {
    const auto due =
        t0 + std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(period_s * i));
    std::this_thread::sleep_until(due);
    while (!retry_queue.empty() && retry_queue.front().due <= clock::now()) {
      ++r.retries;
      submit_one(retry_queue.front().map_idx, /*is_retry=*/true);
      retry_queue.pop_front();
    }
    submit_one(static_cast<std::size_t>(i), /*is_retry=*/false);
    ++r.arrivals;
  }
  r.offered_rps = r.arrivals /
                  std::chrono::duration<double>(clock::now() - t0).count();
  // Fire any still-pending retries so the accuracy sample isn't truncated.
  while (!retry_queue.empty()) {
    std::this_thread::sleep_until(retry_queue.front().due);
    ++r.retries;
    submit_one(retry_queue.front().map_idx, true);
    retry_queue.pop_front();
  }
  {
    std::lock_guard<std::mutex> lk(m);
    done = true;
  }
  cv.notify_all();
  for (auto& h : harvesters) h.join();

  const auto st = engine.stats();
  r.threads = runtime::ThreadPool::instance().num_threads();
  r.value_ok = value_ok.load();
  r.expired = expired.load();
  r.failed = failed.load();
  r.deadline_violations = violations.load();
  r.shed_rate = r.arrivals > 0 ? static_cast<double>(r.shed) / r.arrivals : 0;
  r.p99_accepted_ms = st.latency_p99_ms;
  r.mean_retry_after_ms = r.shed > 0 ? retry_after_sum_ms / r.shed : 0.0;
  r.retry_accept_rate =
      r.retries > 0 ? static_cast<double>(r.retries_accepted) / r.retries : 0;
  return r;
}

std::string overload_json(const OverloadResult& r) {
  JsonWriter w;
  w.begin_object();
  w.field("threads", r.threads);
  w.field("capacity_rps", r.capacity_rps, 1);
  w.field("offered_rps", r.offered_rps, 1);
  w.field("arrivals", r.arrivals);
  w.field("accepted", r.accepted);
  w.field("shed", r.shed);
  w.field("shed_rate", r.shed_rate, 4);
  w.field("p99_accepted_ms", r.p99_accepted_ms, 3);
  w.field("deadline_violations", r.deadline_violations);
  w.field("retries", r.retries);
  w.field("retries_accepted", r.retries_accepted);
  w.field("retry_accept_rate", r.retry_accept_rate, 4);
  w.field("mean_retry_after_ms", r.mean_retry_after_ms, 3);
  w.end_object();
  return w.str();
}

}  // namespace
}  // namespace saufno

int main(int argc, char** argv) {
  using namespace saufno;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* smoke_env = std::getenv("SAUFNO_SMOKE");
  if (smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0') {
    smoke = true;
  }

  const int64_t res = scaled(16, 40);
  const int n_requests = env_int("SAUFNO_SERVE_N", scaled(64, 512));
  const int size_hint = bench_scale() == Scale::kPaper ? 1 : 0;
  auto model = train::make_model("SAU-FNO", 3, 1, /*seed=*/42, size_hint);
  const auto maps = request_stream(n_requests, res, /*seed=*/7);

  std::printf("== runtime scaling: SAU-FNO forward serving (%s scale) ==\n",
              scale_name(bench_scale()));
  std::printf("grid %lldx%lld, %d requests per cell\n\n",
              static_cast<long long>(res), static_cast<long long>(res),
              n_requests);

  const double base = baseline_rps(*model, maps, res);
  std::printf("baseline (1 thread, batch 1, direct forward): %8.1f req/s\n\n",
              base);

  std::printf("%8s %6s %12s %9s %10s %10s\n", "threads", "batch", "req/s",
              "speedup", "p50 ms", "p95 ms");
  for (const int threads : {1, 2, 4}) {
    for (const int64_t batch : {int64_t{1}, int64_t{4}, int64_t{8}}) {
      runtime::InferenceStats st;
      const double rps = engine_rps(model, maps, threads, batch, &st);
      std::printf("%8d %6lld %12.1f %8.2fx %10.2f %10.2f\n", threads,
                  static_cast<long long>(batch), rps, rps / base,
                  st.latency_p50_ms, st.latency_p95_ms);
    }
  }
  std::printf("\n== mixed-resolution serving (shape-sharded queue) ==\n");
  const int64_t res_b = scaled(24, 56);
  const auto mixed = mixed_stream(n_requests, res, res_b, /*seed=*/9);
  std::printf("interleaved %lldx%lld / %lldx%lld stream, %d requests\n\n",
              static_cast<long long>(res), static_cast<long long>(res),
              static_cast<long long>(res_b), static_cast<long long>(res_b),
              n_requests);
  std::printf("%8s %6s %12s %10s %10s %10s\n", "threads", "batch", "req/s",
              "avg batch", "p50 ms", "p95 ms");
  for (const int threads : {1, 4}) {
    for (const int64_t batch : {int64_t{1}, int64_t{8}}) {
      runtime::InferenceStats st;
      const double rps = engine_rps(model, mixed, threads, batch, &st);
      std::printf("%8d %6lld %12.1f %10.2f %10.2f %10.2f\n", threads,
                  static_cast<long long>(batch), rps, st.avg_batch_size,
                  st.latency_p50_ms, st.latency_p95_ms);
    }
  }
  std::printf("\n== overload: open-loop arrivals at 2x saturation ==\n");
  const int n_arrivals = smoke ? 200 : 1000;
  const int deadline_ms = smoke ? 300 : 1000;
  const auto ov = run_overload(model, maps, n_arrivals, deadline_ms);
  std::printf("capacity %.1f req/s, offered %.1f req/s, %d arrivals\n",
              ov.capacity_rps, ov.offered_rps, ov.arrivals);
  std::printf("accepted %d, shed %d (%.1f%%), p99 accepted %.2f ms\n",
              ov.accepted, ov.shed, ov.shed_rate * 100.0, ov.p99_accepted_ms);
  std::printf("retries %d, admitted after waiting the hint %d (%.0f%%), "
              "mean hint %.2f ms\n",
              ov.retries, ov.retries_accepted, ov.retry_accept_rate * 100.0,
              ov.mean_retry_after_ms);
  std::printf("deadline violations (value after deadline): %d\n",
              ov.deadline_violations);
  json_merge_field("BENCH_rollout.json", "overload", overload_json(ov));

  runtime::ThreadPool::instance().resize(1);

  if (smoke) {
    // CI gates. A value delivered past its deadline is a contract bug at
    // any load; 2x saturation against a 32-slot queue that never sheds
    // means admission control is not actually bounding the backlog.
    if (ov.deadline_violations > 0) {
      std::printf("FAIL: %d accepted request(s) resolved with a value after "
                  "their deadline\n", ov.deadline_violations);
      return 1;
    }
    if (ov.shed == 0) {
      std::printf("FAIL: 2x saturation never shed a request — admission "
                  "control is not engaging\n");
      return 1;
    }
  }
  return 0;
}
