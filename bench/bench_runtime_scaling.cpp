// Threads x batch-size sweep for the serving path.
//
// Baseline is the seed's deployment story: single thread, one sample per
// forward, straight model->forward calls. Each sweep cell routes the same
// request stream through the InferenceEngine with the pool resized to T
// lanes and batches capped at B, and reports requests/second plus the
// speedup over that baseline. On a machine with >= 4 cores the 4-thread
// batched rows show the >= 2x target; on fewer cores the batching rows
// still win by amortizing per-call overhead across coalesced requests.
//
// Knobs: SAUFNO_SERVE_N (requests per cell), SAUFNO_NUM_THREADS (initial
// pool size; the sweep resizes in-process), SAUFNO_SCALE=paper for the
// larger model/grid.

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "common/env.h"
#include "common/timer.h"
#include "runtime/inference_engine.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

std::vector<Tensor> request_stream(int n, int64_t res, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> maps;
  maps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) maps.push_back(Tensor::randn({3, res, res}, rng));
  return maps;
}

double baseline_rps(nn::Module& model, const std::vector<Tensor>& maps,
                    int64_t res) {
  runtime::ThreadPool::instance().resize(1);
  NoGradGuard no_grad;
  Timer t;
  for (const auto& m : maps) {
    model.forward(Var(m.reshape({1, 3, res, res}).clone()));
  }
  return static_cast<double>(maps.size()) / t.seconds();
}

// Interleaved A,B,A,B,... two-resolution stream. Under the old single-FIFO
// queue every batch ended at the first foreign shape, collapsing to
// batch-size-1 forwards; the shape-sharded queue keeps each resolution
// coalescing independently, which is what this scenario measures.
std::vector<Tensor> mixed_stream(int n, int64_t res_a, int64_t res_b,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> maps;
  maps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int64_t res = (i % 2 == 0) ? res_a : res_b;
    maps.push_back(Tensor::randn({3, res, res}, rng));
  }
  return maps;
}

double engine_rps(const std::shared_ptr<nn::Module>& model,
                  const std::vector<Tensor>& maps, int threads, int64_t batch,
                  runtime::InferenceStats* stats_out) {
  runtime::ThreadPool::instance().resize(threads);
  runtime::InferenceEngine::Config cfg;
  cfg.max_batch = batch;
  cfg.max_wait_us = 2000;
  runtime::InferenceEngine engine(model, cfg);
  Timer t;
  std::vector<std::future<Tensor>> futs;
  futs.reserve(maps.size());
  for (const auto& m : maps) futs.push_back(engine.submit(m.clone()));
  for (auto& f : futs) f.get();
  const double rps = static_cast<double>(maps.size()) / t.seconds();
  if (stats_out != nullptr) *stats_out = engine.stats();
  return rps;
}

}  // namespace
}  // namespace saufno

int main() {
  using namespace saufno;

  const int64_t res = scaled(16, 40);
  const int n_requests = env_int("SAUFNO_SERVE_N", scaled(64, 512));
  const int size_hint = bench_scale() == Scale::kPaper ? 1 : 0;
  auto model = train::make_model("SAU-FNO", 3, 1, /*seed=*/42, size_hint);
  const auto maps = request_stream(n_requests, res, /*seed=*/7);

  std::printf("== runtime scaling: SAU-FNO forward serving (%s scale) ==\n",
              scale_name(bench_scale()));
  std::printf("grid %lldx%lld, %d requests per cell\n\n",
              static_cast<long long>(res), static_cast<long long>(res),
              n_requests);

  const double base = baseline_rps(*model, maps, res);
  std::printf("baseline (1 thread, batch 1, direct forward): %8.1f req/s\n\n",
              base);

  std::printf("%8s %6s %12s %9s %10s %10s\n", "threads", "batch", "req/s",
              "speedup", "p50 ms", "p95 ms");
  for (const int threads : {1, 2, 4}) {
    for (const int64_t batch : {int64_t{1}, int64_t{4}, int64_t{8}}) {
      runtime::InferenceStats st;
      const double rps = engine_rps(model, maps, threads, batch, &st);
      std::printf("%8d %6lld %12.1f %8.2fx %10.2f %10.2f\n", threads,
                  static_cast<long long>(batch), rps, rps / base,
                  st.latency_p50_ms, st.latency_p95_ms);
    }
  }
  std::printf("\n== mixed-resolution serving (shape-sharded queue) ==\n");
  const int64_t res_b = scaled(24, 56);
  const auto mixed = mixed_stream(n_requests, res, res_b, /*seed=*/9);
  std::printf("interleaved %lldx%lld / %lldx%lld stream, %d requests\n\n",
              static_cast<long long>(res), static_cast<long long>(res),
              static_cast<long long>(res_b), static_cast<long long>(res_b),
              n_requests);
  std::printf("%8s %6s %12s %10s %10s %10s\n", "threads", "batch", "req/s",
              "avg batch", "p50 ms", "p95 ms");
  for (const int threads : {1, 4}) {
    for (const int64_t batch : {int64_t{1}, int64_t{8}}) {
      runtime::InferenceStats st;
      const double rps = engine_rps(model, mixed, threads, batch, &st);
      std::printf("%8d %6lld %12.1f %10.2f %10.2f %10.2f\n", threads,
                  static_cast<long long>(batch), rps, st.avg_batch_size,
                  st.latency_p50_ms, st.latency_p95_ms);
    }
  }
  runtime::ThreadPool::instance().resize(1);
  return 0;
}
