// google-benchmark micro suite for the performance-critical kernels:
// gemm, FFT, conv2d, spectral conv, the FDM solve, and full-model
// inference. Not a paper table — engineering validation that the
// substrate's cost model (and therefore the speedup bench) is sane.

#include <benchmark/benchmark.h>

#include "autograd/conv_ops.h"
#include "autograd/spectral_ops.h"
#include "chip/chips.h"
#include "common/rng.h"
#include "fft/fft.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"
#include "thermal/fdm_solver.h"
#include "train/model_zoo.h"

namespace {

using namespace saufno;

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Fft2d(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  std::vector<cfloat> x(static_cast<std::size_t>(n * n));
  for (auto& v : x) {
    v = cfloat(static_cast<float>(rng.normal()), 0.f);
  }
  for (auto _ : state) {
    auto y = x;
    fft_2d(y.data(), 1, n, n, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Fft2d)->Arg(16)->Arg(40)->Arg(64);  // 40 = Bluestein path

void BM_Conv2dForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Var x(Tensor::randn({1, 16, n, n}, rng), false);
  Var w(Tensor::randn({16, 16, 3, 3}, rng, 0.f, 0.1f), false);
  Var b(Tensor::zeros({16}), false);
  for (auto _ : state) {
    Var y = ops::conv2d(x, w, b, 1, 1);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32);

void BM_SpectralConvForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  Var x(Tensor::randn({1, 16, n, n}, rng), false);
  Var w(Tensor::randn({16, 16, 16, 8, 2}, rng, 0.f, 0.01f), false);
  for (auto _ : state) {
    Var y = ops::spectral_conv2d(x, w, 8, 8, 16);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_SpectralConvForward)->Arg(16)->Arg(32);

void BM_FdmSolve(benchmark::State& state) {
  const int res = static_cast<int>(state.range(0));
  const auto spec = chip::make_chip1();
  chip::PowerGenerator gen(spec);
  Rng rng(5);
  const auto pa = gen.sample(rng);
  const auto grid = thermal::build_grid(spec, pa, res, res);
  thermal::FdmSolver solver;
  for (auto _ : state) {
    auto sol = solver.solve(grid);
    benchmark::DoNotOptimize(sol.temperature.data());
  }
}
BENCHMARK(BM_FdmSolve)->Arg(16)->Arg(24)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SauFnoInference(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto model = saufno::train::make_model("SAU-FNO", 4, 2, 6);
  Rng rng(7);
  Var x(Tensor::randn({1, 4, n, n}, rng), false);
  for (auto _ : state) {
    Var y = model->forward(x);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_SauFnoInference)->Arg(16)->Arg(24)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
