#pragma once

// Shared scaffolding for the table/figure-reproduction benches.
//
// Every bench prints the paper row/series layout at a CPU-tractable scale.
// SAUFNO_SCALE=paper raises sample counts / epochs / resolutions toward the
// published configuration (Section IV-A: 5000 samples per chip, 40x40 and
// 64x64 grids, 200+ epochs); the default `smoke` scale keeps the full bench
// suite within minutes on one core while preserving the comparisons.

#include <cstdio>
#include <string>

#include "chip/chips.h"
#include "common/ascii.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/timer.h"
#include "data/generator.h"
#include "data/normalizer.h"
#include "train/model_zoo.h"
#include "train/trainer.h"

namespace saufno {
namespace bench {

struct BenchScale {
  int res_low;      // the paper's 40x40 analogue
  int res_high;     // the paper's 64x64 analogue
  int n_train;
  int n_test;
  int epochs;
  int batch;
  int size_hint;    // model-zoo capacity knob
  double lr;

  static BenchScale current() {
    BenchScale s;
    if (bench_scale() == Scale::kPaper) {
      s.res_low = 40;
      s.res_high = 64;
      s.n_train = 4000;
      s.n_test = 1000;
      s.epochs = 200;
      s.batch = 16;
      s.size_hint = 1;
      s.lr = 1e-4;
    } else {
      s.res_low = 16;
      s.res_high = 24;
      s.n_train = env_int("SAUFNO_NTRAIN", 96);
      s.n_test = env_int("SAUFNO_NTEST", 24);
      s.epochs = env_int("SAUFNO_EPOCHS", 10);
      s.batch = 8;
      s.size_hint = 0;
      s.lr = 2e-3;
    }
    return s;
  }
};

inline void print_header(const std::string& what) {
  const BenchScale s = BenchScale::current();
  std::printf("== %s ==\n", what.c_str());
  std::printf(
      "scale=%s  (res %dx%d / %dx%d, train %d, test %d, epochs %d)\n",
      scale_name(bench_scale()), s.res_low, s.res_low, s.res_high, s.res_high,
      s.n_train, s.n_test, s.epochs);
  std::printf(
      "paper reference: 40x40 / 64x64 grids, 4000/1000 samples, 200 epochs "
      "(RTX 3090)\n\n");
}

/// Generate train/test datasets for one chip at one resolution, cached
/// under ./dataset_cache so repeated bench runs skip the solver.
inline std::pair<data::Dataset, data::Dataset> make_split(
    const chip::ChipSpec& spec, int resolution, int n_train, int n_test,
    std::uint64_t seed) {
  data::GenConfig cfg;
  cfg.resolution = resolution;
  cfg.n_samples = n_train + n_test;
  cfg.seed = seed;
  auto d = data::generate_dataset(spec, cfg);
  return d.split(n_train);
}

/// Train one zoo model and return (metrics, train seconds, s/prediction).
struct ModelRun {
  data::Metrics metrics;
  double train_seconds = 0.0;
  double sec_per_prediction = 0.0;
  int64_t parameters = 0;
};

inline ModelRun run_model(const std::string& name,
                          const data::Dataset& train_set,
                          const data::Dataset& test_set,
                          const data::Normalizer& norm, const BenchScale& s,
                          std::uint64_t seed) {
  auto model = train::make_model(name, train_set.in_channels(),
                                 train_set.out_channels(), seed, s.size_hint);
  train::TrainConfig tc;
  tc.epochs = s.epochs;
  tc.batch_size = s.batch;
  tc.lr = s.lr;
  tc.lr_step = std::max(1, s.epochs / 3);
  tc.seed = seed + 1;
  train::Trainer tr(*model, norm, tc);
  ModelRun run;
  run.train_seconds = tr.fit(train_set).seconds;
  run.metrics = tr.evaluate(test_set);
  run.sec_per_prediction = tr.time_inference(test_set.inputs, 1);
  run.parameters = model->num_parameters();
  return run;
}

}  // namespace bench
}  // namespace saufno
