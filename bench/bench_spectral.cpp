// Spectral hot-path benchmark: FFT plan cache (cold vs warm), real/Hermitian
// vs full-complex transforms, mode-truncated vs full inverse, and end-to-end
// spectral_conv2d/3d against a verbatim replica of the pre-plan-cache
// algorithm (widen to complex, full-spectrum FFT, scalar mixing loops).
//
// Results are printed AND written to BENCH_spectral.json so the performance
// trajectory is machine-trackable across PRs. `--smoke` (or SAUFNO_SMOKE=1)
// shrinks every size so CI can keep the binary from bit-rotting in seconds.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "autograd/spectral3d_ops.h"
#include "autograd/spectral_ops.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "fft/fft.h"
#include "fft/plan.h"
#include "obs/export.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace.h"
#include "tensor/tensor.h"

namespace saufno {
namespace {

struct Entry {
  std::string name;
  double seconds = 0.0;   // per call
  double speedup = 0.0;   // vs the entry's baseline (0 = n/a)
};

std::vector<Entry> g_entries;

void record(const std::string& name, double seconds, double speedup = 0.0) {
  g_entries.push_back({name, seconds, speedup});
  if (speedup > 0.0) {
    std::printf("%-44s %12.3f us   %5.2fx\n", name.c_str(), seconds * 1e6,
                speedup);
  } else {
    std::printf("%-44s %12.3f us\n", name.c_str(), seconds * 1e6);
  }
}

/// Best-of-3 timing of `iters` calls to fn; returns seconds per call.
template <typename Fn>
double time_per_call(int iters, Fn fn) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, t.seconds() / iters);
  }
  return best;
}

/// Verbatim replica of the seed's spectral_conv2d forward (full-complex
/// transforms + scalar mixing), the baseline for the end-to-end speedup.
Tensor reference_spectral_conv2d(const Tensor& x, const Tensor& w, int64_t m1,
                                 int64_t m2, int64_t cout) {
  const int64_t B = x.size(0), cin = x.size(1), H = x.size(2), W = x.size(3);
  const int64_t plane = H * W;
  const auto mm = ops::spectral::make_mode_map(H, W, m1, m2);
  std::vector<cfloat> xf(static_cast<std::size_t>(B * cin * plane));
  const float* xp = x.data();
  for (int64_t i = 0; i < B * cin * plane; ++i) {
    xf[static_cast<std::size_t>(i)] = cfloat(xp[i], 0.f);
  }
  fft_2d(xf.data(), B * cin, H, W, /*inverse=*/false);
  auto widx = [m2, m1, cout](int64_t i, int64_t o, int64_t r, int64_t c) {
    return (((i * cout + o) * (2 * m1) + r) * m2 + c) * 2;
  };
  std::vector<cfloat> yf(static_cast<std::size_t>(B * cout * plane),
                         cfloat(0.f, 0.f));
  const float* wp = w.data();
  for (int64_t b = 0; b < B; ++b) {
    for (const auto& [wr, kr] : mm.rows) {
      for (int64_t c = 0; c < mm.m2e; ++c) {
        const int64_t koff = kr * W + c;
        for (int64_t o = 0; o < cout; ++o) {
          cfloat acc(0.f, 0.f);
          for (int64_t i = 0; i < cin; ++i) {
            const float* wc = wp + widx(i, o, wr, c);
            acc += cfloat(wc[0], wc[1]) *
                   xf[static_cast<std::size_t>((b * cin + i) * plane + koff)];
          }
          yf[static_cast<std::size_t>((b * cout + o) * plane + koff)] = acc;
        }
      }
    }
  }
  fft_2d(yf.data(), B * cout, H, W, /*inverse=*/true);
  Tensor out({B, cout, H, W});
  for (int64_t i = 0; i < B * cout * plane; ++i) {
    out.data()[i] = yf[static_cast<std::size_t>(i)].real();
  }
  return out;
}

/// Same for the 3-D op.
Tensor reference_spectral_conv3d(const Tensor& x, const Tensor& w, int64_t m1,
                                 int64_t m2, int64_t m3, int64_t cout) {
  const int64_t B = x.size(0), cin = x.size(1), D = x.size(2), H = x.size(3),
                W = x.size(4);
  const int64_t vol = D * H * W;
  const auto map_d = ops::spectral::signed_axis_map(D, m1);
  const auto map_h = ops::spectral::signed_axis_map(H, m2);
  const int64_t m3e = std::min(m3, W / 2);
  std::vector<cfloat> xf(static_cast<std::size_t>(B * cin * vol));
  for (int64_t i = 0; i < B * cin * vol; ++i) {
    xf[static_cast<std::size_t>(i)] = cfloat(x.data()[i], 0.f);
  }
  fft_3d(xf.data(), B * cin, D, H, W, false);
  auto widx = [=](int64_t i, int64_t o, int64_t r, int64_t c, int64_t k) {
    return ((((i * cout + o) * (2 * m1) + r) * (2 * m2) + c) * m3 + k) * 2;
  };
  std::vector<cfloat> yf(static_cast<std::size_t>(B * cout * vol),
                         cfloat(0.f, 0.f));
  for (int64_t b = 0; b < B; ++b) {
    for (const auto& [wr, kd] : map_d) {
      for (const auto& [wc, kh] : map_h) {
        for (int64_t k = 0; k < m3e; ++k) {
          const int64_t off = (kd * H + kh) * W + k;
          for (int64_t o = 0; o < cout; ++o) {
            cfloat acc(0.f, 0.f);
            for (int64_t i = 0; i < cin; ++i) {
              const float* wc2 = w.data() + widx(i, o, wr, wc, k);
              acc += cfloat(wc2[0], wc2[1]) *
                     xf[static_cast<std::size_t>((b * cin + i) * vol + off)];
            }
            yf[static_cast<std::size_t>((b * cout + o) * vol + off)] = acc;
          }
        }
      }
    }
  }
  fft_3d(yf.data(), B * cout, D, H, W, true);
  Tensor out({B, cout, D, H, W});
  for (int64_t i = 0; i < B * cout * vol; ++i) {
    out.data()[i] = yf[static_cast<std::size_t>(i)].real();
  }
  return out;
}

void bench_plan_cache(bool smoke) {
  std::printf("\n-- FFT plan cache: cold (build + transform) vs warm --\n");
  for (const int64_t n : {int64_t{64}, int64_t{40}, int64_t{193}}) {
    Rng rng(1 + n);
    std::vector<cfloat> sig(static_cast<std::size_t>(n));
    for (auto& v : sig) {
      v = cfloat(static_cast<float>(rng.normal()),
                 static_cast<float>(rng.normal()));
    }
    auto work = sig;
    fft::clear_plan_cache();
    Timer t;
    fft_1d(work.data(), n, false);
    const double cold = t.seconds();
    const int iters = smoke ? 20 : 2000;
    const double warm = time_per_call(iters, [&] {
      work = sig;
      fft_1d(work.data(), n, false);
    });
    record("fft_1d n=" + std::to_string(n) + " cold(first use)", cold);
    record("fft_1d n=" + std::to_string(n) + " warm", warm, cold / warm);
  }
}

void bench_rfft_vs_complex(bool smoke) {
  std::printf("\n-- rfft/irfft vs full-complex round trip --\n");
  const int64_t batch = smoke ? 4 : 64;
  const int64_t h = smoke ? 16 : 64, w = h;
  Rng rng(7);
  const Tensor x = Tensor::randn({batch, h, w}, rng);
  const int iters = smoke ? 3 : 30;

  runtime::Scratch<cfloat> full(static_cast<std::size_t>(batch * h * w));
  const double complex_s = time_per_call(iters, [&] {
    for (int64_t i = 0; i < batch * h * w; ++i) {
      full.data()[i] = cfloat(x.data()[i], 0.f);
    }
    fft_2d(full.data(), batch, h, w, false);
    fft_2d(full.data(), batch, h, w, true);
  });
  const int64_t wk = rfft_cols(w);
  runtime::Scratch<cfloat> half(static_cast<std::size_t>(batch * h * wk));
  runtime::Scratch<float> back(static_cast<std::size_t>(batch * h * w));
  const double rfft_s = time_per_call(iters, [&] {
    rfft_2d(x.data(), half.data(), batch, h, w, wk);
    irfft_2d(half.data(), back.data(), batch, h, w, wk, 1.f);
  });
  const std::string sz = std::to_string(h) + "x" + std::to_string(w);
  record("complex fft_2d+ifft_2d " + sz, complex_s);
  record("rfft_2d+irfft_2d " + sz, rfft_s, complex_s / rfft_s);

  // Mode truncation on top of the real path: keep only m2e columns.
  const int64_t modes = smoke ? 4 : 12;
  runtime::Scratch<cfloat> trunc(static_cast<std::size_t>(batch * h * modes));
  const double trunc_s = time_per_call(iters, [&] {
    rfft_2d(x.data(), trunc.data(), batch, h, w, modes);
    irfft_2d(trunc.data(), back.data(), batch, h, w, modes, 1.f);
  });
  record("rfft_2d+irfft_2d " + sz + " wk=" + std::to_string(modes), trunc_s,
         complex_s / trunc_s);
}

double bench_spectral_conv2d(bool smoke) {
  std::printf("\n-- end-to-end spectral_conv2d forward (old vs new) --\n");
  const int64_t B = smoke ? 2 : 8, C = smoke ? 4 : 32;
  const int64_t H = smoke ? 16 : 64, W = H;
  const int64_t m = smoke ? 4 : 12;
  Rng rng(11);
  const Tensor x = Tensor::randn({B, C, H, W}, rng);
  const Tensor w = Tensor::randn({C, C, 2 * m, m, 2}, rng, 0.f, 0.3f);
  const int iters = smoke ? 2 : 5;

  // Warm both paths (plans, arena) before timing.
  Tensor ref = reference_spectral_conv2d(x, w, m, m, C);
  Tensor got =
      ops::spectral_conv2d(Var(x, false), Var(w, false), m, m, C).value();
  if (!got.allclose(ref, 1e-2f, 1e-3f)) {
    std::printf("WARNING: old/new outputs disagree beyond tolerance!\n");
  }

  const double old_s = time_per_call(iters, [&] {
    reference_spectral_conv2d(x, w, m, m, C);
  });
  const double new_s = time_per_call(iters, [&] {
    ops::spectral_conv2d(Var(x, false), Var(w, false), m, m, C);
  });
  const std::string cfg = "B=" + std::to_string(B) + ",C=" + std::to_string(C) +
                          "," + std::to_string(H) + "x" + std::to_string(W) +
                          ",m=" + std::to_string(m);
  record("spectral_conv2d OLD (full complex) " + cfg, old_s);
  record("spectral_conv2d NEW (rfft+truncated) " + cfg, new_s, old_s / new_s);
  return old_s / new_s;
}

double bench_spectral_conv3d(bool smoke) {
  std::printf("\n-- end-to-end spectral_conv3d forward (old vs new) --\n");
  const int64_t B = smoke ? 1 : 2, C = smoke ? 2 : 8;
  const int64_t D = smoke ? 4 : 8, H = smoke ? 8 : 24, W = H;
  const int64_t m = smoke ? 2 : 4;
  Rng rng(13);
  const Tensor x = Tensor::randn({B, C, D, H, W}, rng);
  const Tensor w = Tensor::randn({C, C, 2 * m, 2 * m, m, 2}, rng, 0.f, 0.3f);
  const int iters = smoke ? 2 : 5;

  Tensor ref = reference_spectral_conv3d(x, w, m, m, m, C);
  Tensor got =
      ops::spectral_conv3d(Var(x, false), Var(w, false), m, m, m, C).value();
  if (!got.allclose(ref, 1e-2f, 1e-3f)) {
    std::printf("WARNING: old/new 3-D outputs disagree beyond tolerance!\n");
  }

  const double old_s = time_per_call(iters, [&] {
    reference_spectral_conv3d(x, w, m, m, m, C);
  });
  const double new_s = time_per_call(iters, [&] {
    ops::spectral_conv3d(Var(x, false), Var(w, false), m, m, m, C);
  });
  const std::string cfg = "B=" + std::to_string(B) + ",C=" + std::to_string(C) +
                          "," + std::to_string(D) + "x" + std::to_string(H) +
                          "x" + std::to_string(W) + ",m=" + std::to_string(m);
  record("spectral_conv3d OLD (full complex) " + cfg, old_s);
  record("spectral_conv3d NEW (rfft+truncated) " + cfg, new_s, old_s / new_s);
  return old_s / new_s;
}

void write_json(const char* path, bool smoke, double speedup2d,
                double speedup3d) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "bench_spectral");
  w.field("mode", smoke ? "smoke" : "full");
  w.field("speedup_spectral_conv2d", speedup2d, 4);
  w.field("speedup_spectral_conv3d", speedup3d, 4);
  w.field("arena_hit_rate", runtime::arena_stats().hit_rate(), 4);
  w.key("results");
  w.begin_array();
  for (const auto& e : g_entries) {
    w.begin_object();
    w.field("name", e.name);
    w.field("threads", runtime::ThreadPool::instance().num_threads());
    w.field("seconds_per_call", e.seconds, 9);
    w.field("speedup", e.speedup, 4);
    w.end_object();
  }
  w.end_array();
  // Full telemetry scrape: plan-cache hit rates and arena behavior under
  // the benched workload ride along with the timings.
  w.key("obs");
  w.raw_value(obs::dump_json());
  w.end_object();
  w.write_file(path);
}

}  // namespace
}  // namespace saufno

int main(int argc, char** argv) {
  using namespace saufno;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* env = std::getenv("SAUFNO_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') smoke = true;

  std::printf("== bench_spectral (%s mode) ==\n", smoke ? "smoke" : "full");
  bench_plan_cache(smoke);
  bench_rfft_vs_complex(smoke);
  const double s2 = bench_spectral_conv2d(smoke);
  const double s3 = bench_spectral_conv3d(smoke);
  write_json("BENCH_spectral.json", smoke, s2, s3);
  std::printf("\nend-to-end speedup: conv2d %.2fx, conv3d %.2fx\n", s2, s3);
  return 0;
}
