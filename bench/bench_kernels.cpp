// Kernel-core benchmark: the packed/SIMD-blocked gemm against a byte-level
// preserved copy of the seed scalar kernel (gemm_seed_reference), across the
// matrix shapes the zoo models actually hit at serving scale (B=8, C=32,
// 64x64 grids), plus an end-to-end SAU-FNO forward with gemm routed through
// each implementation.
//
// Also times the compiled-execution-plan forward (plan::PlanRunner) against
// the define-by-run interpreter on the same weights and input: the two are
// bit-identical by construction, so the delta is pure dispatch/fusion/arena
// win.
//
// Results are printed AND written to BENCH_kernels.json so the performance
// trajectory is machine-trackable across PRs. `--smoke` (or SAUFNO_SMOKE=1)
// shrinks sizes so CI runs in seconds; in smoke mode the binary exits
// nonzero if the new gemm is SLOWER than the seed kernel at the reference
// shape, or if the plan-mode forward is slower than the interpreted one —
// either perf regression fails CI instead of just flattening a graph.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "obs/export.h"
#include "plan/executor.h"
#include "plan/runner.h"
#include "runtime/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

struct Entry {
  std::string name;
  int64_t m = 0, n = 0, k = 0;
  double gflops_seed = 0.0;
  double gflops_new = 0.0;
  double speedup = 0.0;
};

std::vector<Entry> g_entries;

/// Best-of-3 timing of `iters` calls to fn; returns seconds per call.
template <typename Fn>
double time_per_call(int iters, Fn fn) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, t.seconds() / iters);
  }
  return best;
}

/// Time one gemm shape under both kernels. Also cross-checks that the
/// blocked kernel agrees with the seed kernel on dense random data (where
/// the zero-skip cannot fire), so the bench doubles as a smoke-level
/// equivalence test at real shapes.
Entry bench_shape(const std::string& name, int64_t m, int64_t n, int64_t k,
                  int iters) {
  Rng rng(0x5eedULL + static_cast<std::uint64_t>(m * 31 + n * 7 + k));
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_seed({m, n});
  Tensor c_new({m, n});

  const double flop = 2.0 * static_cast<double>(m) * n * k;
  const double sec_seed = time_per_call(iters, [&] {
    gemm_seed_reference(a.data(), b.data(), c_seed.data(), m, n, k,
                        /*accumulate=*/false);
  });
  const double sec_new = time_per_call(iters, [&] {
    gemm(a.data(), b.data(), c_new.data(), m, n, k, /*accumulate=*/false);
  });
  // atol scales with k: fp32 accumulation error grows ~eps * k for both
  // kernels (the blocked one is measurably CLOSER to a double reference),
  // so near-zero outputs need k-proportional slack.
  const float atol = 2e-6f * static_cast<float>(k);
  if (!c_new.allclose(c_seed, /*rtol=*/1e-4f, atol)) {
    std::printf("FATAL: blocked gemm diverges from seed kernel at %s\n",
                name.c_str());
    std::exit(2);
  }

  Entry e;
  e.name = name;
  e.m = m;
  e.n = n;
  e.k = k;
  e.gflops_seed = flop / sec_seed * 1e-9;
  e.gflops_new = flop / sec_new * 1e-9;
  e.speedup = sec_seed / sec_new;
  g_entries.push_back(e);
  std::printf("%-28s m=%-6lld n=%-6lld k=%-5lld %8.2f -> %8.2f GFLOP/s  %5.2fx\n",
              name.c_str(), static_cast<long long>(m),
              static_cast<long long>(n), static_cast<long long>(k),
              e.gflops_seed, e.gflops_new, e.speedup);
  return e;
}

/// End-to-end SAU-FNO forward (conv + attention + pointwise + spectral
/// layers), gemm routed through each implementation via the bench hook.
double bench_end_to_end(bool smoke, double* fwd_per_sec_out) {
  const int64_t B = smoke ? 2 : 8;
  const int64_t H = smoke ? 16 : 64, W = H;
  const int64_t cin = 3, cout = 1;
  auto model = train::make_model(smoke ? "SAU-FNO-micro" : "SAU-FNO", cin,
                                 cout, /*seed=*/7);
  model->set_training(false);
  Rng rng(11);
  Tensor x = Tensor::randn({B, cin, H, W}, rng);
  const int iters = smoke ? 2 : 5;

  NoGradGuard no_grad;
  auto forward = [&] { (void)model->forward(Var(x)); };
  forward();  // warm FFT plans + arena so both sides time steady state

  gemm_force_seed_reference(true);
  const double sec_seed = time_per_call(iters, forward);
  gemm_force_seed_reference(false);
  const double sec_new = time_per_call(iters, forward);

  *fwd_per_sec_out = 1.0 / sec_new;
  std::printf("\nend-to-end forward (B=%lld, %lldx%lld): %.2f ms -> %.2f ms  "
              "%.2fx  (%.1f fwd/s)\n",
              static_cast<long long>(B), static_cast<long long>(H),
              static_cast<long long>(W), sec_seed * 1e3, sec_new * 1e3,
              sec_seed / sec_new, 1.0 / sec_new);
  return sec_seed / sec_new;
}

struct PlanBench {
  double compile_ms = 0.0;
  double speedup = 0.0;  // interpreted sec/call over plan sec/call
  int64_t instr_count = 0;
  int64_t fused_kernels = 0;
  int64_t folded_ops = 0;
  // Per-phase split of the compile from PlanRunner::last_compile_breakdown:
  // trace (the recorded forward — the dominant term), lower (graph
  // extraction), passes (fusion/liveness/arena/leveling).
  double compile_trace_ms = 0.0;
  double compile_lower_ms = 0.0;
  double compile_passes_ms = 0.0;
};

/// Compiled plan vs interpreter on the same model/input. The outputs are
/// bit-identical (tests/test_plan.cpp proves it), so this only measures the
/// fused-dispatch win. Compile cost is reported as first-call time minus a
/// steady-state call, i.e. what one cache miss actually adds to a request.
PlanBench bench_plan(bool smoke) {
  const int64_t B = smoke ? 2 : 8;
  const int64_t H = smoke ? 16 : 64, W = H;
  auto model = train::make_model(smoke ? "SAU-FNO-micro" : "SAU-FNO", 3, 1,
                                 /*seed=*/7);
  model->set_training(false);
  Rng rng(13);
  Tensor x = Tensor::randn({B, 3, H, W}, rng);
  const int iters = smoke ? 4 : 10;

  plan::PlanRunner interp(model, plan::Mode::kOff);
  plan::PlanRunner planned(model, plan::Mode::kOn);

  (void)interp.forward(x);  // warm FFT plans + arena freelists
  Timer t;
  (void)planned.forward(x);  // first call traces + compiles + runs
  const double first_call = t.seconds();

  const double sec_interp =
      time_per_call(iters, [&] { (void)interp.forward(x); });
  const double sec_plan =
      time_per_call(iters, [&] { (void)planned.forward(x); });

  PlanBench r;
  r.compile_ms = std::max(0.0, (first_call - sec_plan) * 1e3);
  r.speedup = sec_interp / sec_plan;
  if (auto exec = planned.executor_for(x.shape())) {
    r.instr_count = static_cast<int64_t>(exec->plan().instrs.size());
    r.fused_kernels = exec->plan().fused_ops;
    r.folded_ops = exec->plan().folded_ops;
  }
  const auto bd = planned.last_compile_breakdown();
  r.compile_trace_ms = bd.trace_ms;
  r.compile_lower_ms = bd.lower_ms;
  r.compile_passes_ms = bd.passes_ms;
  std::printf("\nplan vs interpreter (B=%lld, %lldx%lld): %.2f ms -> %.2f ms  "
              "%.2fx  (compile %.1f ms, %lld instrs, %lld fused, %lld "
              "folded)\n",
              static_cast<long long>(B), static_cast<long long>(H),
              static_cast<long long>(W), sec_interp * 1e3, sec_plan * 1e3,
              r.speedup, r.compile_ms, static_cast<long long>(r.instr_count),
              static_cast<long long>(r.fused_kernels),
              static_cast<long long>(r.folded_ops));
  std::printf("plan compile breakdown: trace %.1f ms (the recorded forward), "
              "lower %.1f ms, passes %.1f ms\n",
              r.compile_trace_ms, r.compile_lower_ms, r.compile_passes_ms);
  return r;
}

void write_json(const char* path, bool smoke, double ref_speedup,
                double e2e_speedup, double fwd_per_sec,
                const PlanBench& plan) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "bench_kernels");
  w.field("mode", smoke ? "smoke" : "full");
  w.field("simd_level", simd::level_name());
  w.field("threads", runtime::ThreadPool::instance().num_threads());
  w.field("gemm_speedup_reference_shape", ref_speedup, 4);
  w.field("end_to_end_forward_speedup", e2e_speedup, 4);
  w.field("end_to_end_forward_per_sec", fwd_per_sec, 4);
  w.field("plan_compile_ms", plan.compile_ms, 4);
  w.field("plan_compile_trace_ms", plan.compile_trace_ms, 4);
  w.field("plan_compile_lower_ms", plan.compile_lower_ms, 4);
  w.field("plan_compile_passes_ms", plan.compile_passes_ms, 4);
  w.field("plan_vs_interp_speedup", plan.speedup, 4);
  w.field("plan_instr_count", plan.instr_count);
  w.field("plan_fused_kernels", plan.fused_kernels);
  w.field("plan_folded_ops", plan.folded_ops);
  w.key("results");
  w.begin_array();
  for (const auto& e : g_entries) {
    w.begin_object();
    w.field("name", e.name);
    w.field("threads", runtime::ThreadPool::instance().num_threads());
    w.field("m", e.m);
    w.field("n", e.n);
    w.field("k", e.k);
    w.field("gflops_seed", e.gflops_seed, 4);
    w.field("gflops_new", e.gflops_new, 4);
    w.field("speedup", e.speedup, 4);
    w.end_object();
  }
  w.end_array();
  w.key("obs");
  w.raw_value(obs::dump_json());
  w.end_object();
  w.write_file(path);
}

}  // namespace
}  // namespace saufno

int main(int argc, char** argv) {
  using namespace saufno;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* env = std::getenv("SAUFNO_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') smoke = true;

  std::printf("== bench_kernels (%s mode, simd=%s) ==\n",
              smoke ? "smoke" : "full", simd::level_name());
  std::printf("shapes are the B=8, C=32, 64x64 serving hot path\n\n");

  // Reference shape for the CI gate: the U-Net 3x3 conv gemm, the fattest
  // per-sample contraction in the forward.
  Entry ref;
  if (smoke) {
    ref = bench_shape("conv3x3_ref", 32, 1024, 288, 8);
    bench_shape("pointwise", 4096, 32, 32, 8);
    bench_shape("attn_scores", 256, 256, 16, 8);
  } else {
    ref = bench_shape("conv3x3_ref", 32, 4096, 288, 20);
    bench_shape("pointwise", 32768, 32, 32, 20);
    bench_shape("attn_scores", 1024, 1024, 16, 20);
    bench_shape("attn_mix", 32, 1024, 1024, 20);
    bench_shape("decoder_mlp", 32768, 64, 32, 20);
    bench_shape("conv_grad_weight", 32, 288, 4096, 20);
  }

  double fwd_per_sec = 0.0;
  const double e2e = bench_end_to_end(smoke, &fwd_per_sec);
  const PlanBench plan = bench_plan(smoke);

  write_json("BENCH_kernels.json", smoke, ref.speedup, e2e, fwd_per_sec,
             plan);

  int rc = 0;
  if (smoke && ref.speedup < 1.0) {
    std::printf("FAIL: blocked gemm slower than the seed kernel at the "
                "reference shape (%.2fx)\n", ref.speedup);
    rc = 1;
  }
  if (smoke && plan.speedup < 1.0) {
    std::printf("FAIL: plan-mode forward slower than the interpreter "
                "(%.2fx)\n", plan.speedup);
    rc = 1;
  }
  return rc;
}
