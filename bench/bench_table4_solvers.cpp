// Reproduces Table IV: maximum and minimum temperature comparison among
// COMSOL (refined-mesh FDM substitute), MTA (FDM substitute), HotSpot
// (compact RC substitute) and SAU-FNO on steady-state samples of chips 1-3,
// plus the Ours-vs-COMSOL error column.
//
// Paper's published shape: COMSOL ~= MTA ~= Ours (within ~0.25 K), HotSpot
// ~10 K hotter across the board.

#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"
#include "tensor/tensor_ops.h"
#include "thermal/compact_rc.h"

using namespace saufno;
using namespace saufno::bench;

int main() {
  set_log_level(LogLevel::kWarn);
  print_header("Table IV: solver comparison on chips 1-3");
  const BenchScale s = BenchScale::current();
  const int n_eval = bench_scale() == Scale::kPaper ? 20 : 5;

  CsvWriter csv("table4_results.csv");
  csv.row({"chip", "metric", "comsol", "mta", "hotspot", "ours", "err"});
  TablePrinter table(
      {"Chip", "Metric", "COMSOL*", "MTA*", "HotSpot*", "Ours", "Err"},
      {8, 9, 11, 11, 11, 11, 9});

  for (const auto& spec : chip::all_chips()) {
    // Train a SAU-FNO surrogate for this chip at the high resolution.
    auto [train_set, test_set] =
        make_split(spec, s.res_high, s.n_train, s.n_test, /*seed=*/2024);
    const auto norm =
        data::Normalizer::fit(train_set, spec.num_device_layers());
    auto model =
        train::make_model("SAU-FNO", train_set.in_channels(),
                          train_set.out_channels(), 3200, s.size_hint);
    train::TrainConfig tc;
    tc.epochs = s.epochs;
    tc.batch_size = s.batch;
    tc.lr = s.lr;
    tc.lr_step = std::max(1, s.epochs / 3);
    train::Trainer tr(*model, norm, tc);
    tr.fit(train_set);

    // Fresh power samples for the comparison (a different seed from the
    // training data, as in the paper's 20 held-out distributions).
    data::GenConfig eval_cfg;
    eval_cfg.resolution = s.res_high;
    eval_cfg.n_samples = n_eval;
    eval_cfg.seed = 9000;
    eval_cfg.cache = false;
    const auto assignments = data::regenerate_assignments(spec, eval_cfg);

    thermal::FdmSolver solver;
    thermal::CompactRcSolver rc(spec);
    chip::PowerGenerator pgen(spec);

    double comsol_max = 0, comsol_min = 0, mta_max = 0, mta_min = 0;
    double hs_max = 0, hs_min = 0, ours_max = 0, ours_min = 0;
    for (const auto& pa : assignments) {
      // COMSOL substitute: refined mesh.
      const auto fine =
          solver.solve(thermal::build_grid(spec, pa, s.res_high, s.res_high, 2));
      comsol_max += fine.max_temperature();
      comsol_min += fine.min_temperature();
      // MTA substitute: production mesh.
      const auto coarse =
          solver.solve(thermal::build_grid(spec, pa, s.res_high, s.res_high, 1));
      mta_max += coarse.max_temperature();
      mta_min += coarse.min_temperature();
      // HotSpot substitute: compact RC network.
      const auto rc_res = rc.solve(pa);
      hs_max += rc_res.max_temperature();
      hs_min += rc_res.min_temperature();
      // Ours: SAU-FNO surrogate on the rasterized power maps.
      const auto maps = pgen.rasterize(pa, s.res_high, s.res_high);
      const int n_dev = spec.num_device_layers();
      Tensor x({1, n_dev + 2, s.res_high, s.res_high});
      const int64_t plane = static_cast<int64_t>(s.res_high) * s.res_high;
      for (int c = 0; c < n_dev; ++c) {
        std::copy(maps[static_cast<std::size_t>(c)].begin(),
                  maps[static_cast<std::size_t>(c)].end(),
                  x.data() + c * plane);
      }
      for (int i = 0; i < s.res_high; ++i) {
        for (int j = 0; j < s.res_high; ++j) {
          x.data()[n_dev * plane + i * s.res_high + j] =
              static_cast<float>(i) / (s.res_high - 1);
          x.data()[(n_dev + 1) * plane + i * s.res_high + j] =
              static_cast<float>(j) / (s.res_high - 1);
        }
      }
      Tensor pred = tr.predict(x);
      ours_max += max_all(pred);
      ours_min += min_all(pred);
    }
    const double inv = 1.0 / n_eval;
    comsol_max *= inv; comsol_min *= inv;
    mta_max *= inv;    mta_min *= inv;
    hs_max *= inv;     hs_min *= inv;
    ours_max *= inv;   ours_min *= inv;

    table.add_row({spec.name, "Max(K)", fmt(comsol_max), fmt(mta_max),
                   fmt(hs_max), fmt(ours_max), fmt(ours_max - comsol_max)});
    table.add_row({spec.name, "Min(K)", fmt(comsol_min), fmt(mta_min),
                   fmt(hs_min), fmt(ours_min), fmt(ours_min - comsol_min)});
    csv.row({spec.name, "max", fmt(comsol_max, 3), fmt(mta_max, 3),
             fmt(hs_max, 3), fmt(ours_max, 3), fmt(ours_max - comsol_max, 3)});
    csv.row({spec.name, "min", fmt(comsol_min, 3), fmt(mta_min, 3),
             fmt(hs_min, 3), fmt(ours_min, 3), fmt(ours_min - comsol_min, 3)});
    std::fprintf(stderr, "[table4] %s done\n", spec.name.c_str());
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("* substitutes: COMSOL = refined-mesh FDM, MTA = FDM, HotSpot "
              "= compact RC network (DESIGN.md)\n");
  std::printf("rows also written to table4_results.csv\n");
  std::printf(
      "expected shape (paper): COMSOL ~= MTA ~= Ours; HotSpot ~10 K "
      "hotter; |Err| small\n");
  return 0;
}
