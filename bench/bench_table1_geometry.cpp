// Reproduces Table I: "Geometric Structures and Thermal Parameters of
// 3D-ICs" — printed from the in-code chip catalog, verifying that the
// library's built-in specs are the paper's.

#include <cstdio>

#include "chip/chips.h"
#include "common/ascii.h"

using namespace saufno;

namespace {

std::string size_str(double w, double h, double t) {
  return fmt(w * 1e3, 2) + "x" + fmt(h * 1e3, 2) + "x" + fmt(t * 1e3, 3) +
         " mm";
}

}  // namespace

int main() {
  std::printf("== Table I: geometric structures & thermal parameters ==\n\n");
  const auto chips = chip::all_chips();

  TablePrinter table(
      {"Layer", "Chip", "Size (WxHxT)", "k (W/mK)", "c (J/m3K)", "power?"},
      {22, 8, 26, 12, 14, 8});
  for (const auto& c : chips) {
    for (const auto& l : c.layers) {
      table.add_row({l.name, c.name, size_str(c.die_w, c.die_h, l.thickness),
                     fmt(l.material.conductivity, 0),
                     fmt(l.material.heat_capacity, 0),
                     l.is_device ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("TSV array: diameter %.3f mm, pitch %.3f mm, k = %.0f W/mK\n",
              chips[0].tsv_diameter * 1e3, chips[0].tsv_pitch * 1e3,
              chips[0].tsv_conductivity);
  std::printf(
      "note: spreader (30x30x1 mm) and sink (60x60x6.9 mm + 21 fins of\n"
      "1x60x50 mm) are modeled at the die footprint with the fins folded\n"
      "into h_top (see DESIGN.md substitutions)\n\n");

  TablePrinter fp({"Chip", "Device layer", "Blocks"}, {8, 22, 60});
  for (const auto& c : chips) {
    for (const auto& l : c.layers) {
      if (!l.is_device) continue;
      std::string blocks;
      for (const auto& b : l.floorplan.blocks) {
        if (!blocks.empty()) blocks += ", ";
        blocks += b.name;
      }
      fp.add_row({c.name, l.name, blocks});
    }
  }
  std::printf("%s\n", fp.str().c_str());
  return 0;
}
