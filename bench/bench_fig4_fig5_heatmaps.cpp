// Reproduces Fig. 4 and Fig. 5: prediction-vs-ground-truth temperature
// heatmaps for two high-variation Chip1 cases, per heating layer. The
// terminal rendering is ASCII art; the exact fields are dumped to CSV for
// external plotting.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"

using namespace saufno;
using namespace saufno::bench;

int main() {
  set_log_level(LogLevel::kWarn);
  print_header("Fig. 4 / Fig. 5: SAU-FNO vs ground truth heatmaps (chip1)");
  const BenchScale s = BenchScale::current();
  const auto spec = chip::make_chip1();

  auto [train_set, test_set] =
      make_split(spec, s.res_high, s.n_train, s.n_test, /*seed=*/2024);
  const auto norm =
      data::Normalizer::fit(train_set, spec.num_device_layers());
  auto model = train::make_model("SAU-FNO", train_set.in_channels(),
                                 train_set.out_channels(), 4200, s.size_hint);
  train::TrainConfig tc;
  // A single model carries both figures, so spend extra epochs on it —
  // the visual comparison needs a converged surrogate, not a smoke-test
  // checkpoint.
  tc.epochs = 3 * s.epochs;
  tc.batch_size = s.batch;
  tc.lr = s.lr;
  tc.lr_step = std::max(1, tc.epochs / 3);
  train::Trainer tr(*model, norm, tc);
  tr.fit(train_set);

  // Pick the two test cases with the largest power-distribution variation
  // (max/min ratio of total per-layer power), the paper's selection rule
  // "two representative cases with significant power distribution
  // variations".
  const int res = s.res_high;
  const int64_t plane = static_cast<int64_t>(res) * res;
  std::vector<std::pair<double, int>> spread;
  for (int64_t i = 0; i < test_set.size(); ++i) {
    const float* t = test_set.targets.data() + i * 2 * plane;
    float lo = t[0], hi = t[0];
    for (int64_t j = 0; j < 2 * plane; ++j) {
      lo = std::min(lo, t[j]);
      hi = std::max(hi, t[j]);
    }
    spread.emplace_back(hi - lo, static_cast<int>(i));
  }
  std::sort(spread.rbegin(), spread.rend());

  for (int fig = 0; fig < 2; ++fig) {
    const int case_idx = spread[static_cast<std::size_t>(fig)].second;
    std::printf("---- Fig. %d (case %d, temperature span %.1f K) ----\n",
                4 + fig, case_idx, spread[static_cast<std::size_t>(fig)].first);
    auto [bx, by] = test_set.gather({case_idx});
    Tensor pred = tr.predict(bx);
    for (int layer = 0; layer < 2; ++layer) {
      std::vector<float> truth(static_cast<std::size_t>(plane)),
          guess(static_cast<std::size_t>(plane));
      std::copy(by.data() + layer * plane, by.data() + (layer + 1) * plane,
                truth.begin());
      std::copy(pred.data() + layer * plane,
                pred.data() + (layer + 1) * plane, guess.begin());
      float lo = truth[0], hi = truth[0];
      for (float v : truth) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      std::printf("layer %d  (scale %.1f..%.1f K)\n", layer + 1, lo, hi);
      std::printf("ground truth:\n%s", ascii_heatmap(truth, res, res, lo, hi).c_str());
      std::printf("SAU-FNO prediction:\n%s",
                  ascii_heatmap(guess, res, res, lo, hi).c_str());
      double max_abs = 0, mae = 0;
      for (int64_t j = 0; j < plane; ++j) {
        const double e = std::fabs(static_cast<double>(guess[static_cast<std::size_t>(j)]) -
                                   truth[static_cast<std::size_t>(j)]);
        max_abs = std::max(max_abs, e);
        mae += e;
      }
      std::printf("layer %d error: MAE %.3f K, worst pixel %.3f K\n\n",
                  layer + 1, mae / plane, max_abs);
      const std::string base = "fig" + std::to_string(4 + fig) + "_layer" +
                               std::to_string(layer + 1);
      write_field_csv(base + "_truth.csv", truth, res, res);
      write_field_csv(base + "_pred.csv", guess, res, res);
    }
  }
  std::printf("fields written to fig4_/fig5_*.csv\n");
  std::printf(
      "expected shape (paper): prediction visually indistinguishable from "
      "ground truth,\nhotspot location and junction temperature preserved\n");
  return 0;
}
