// End-to-end load generator for the TCP serving frontend (src/serve/).
//
// Three phases, all over REAL loopback sockets (frame codec, reader/
// completer threads, tenant quotas — the full wire path, not an in-process
// shortcut):
//
//   1. saturation: closed-loop pipelined clients push the server as hard as
//      the socket allows; the measured ceiling anchors the open-loop rates.
//   2. steady: open-loop POISSON arrivals at ~70% of saturation with mixed
//      resolutions and a skewed tenant distribution — the paper's
//      steady-state thermal-monitoring traffic.
//   3. rollout: the same arrival process but bursty — each "session" sends
//      a back-to-back run of same-shape steps (transient rollout traffic),
//      so per-shape batches form and die repeatedly.
//
// Open-loop means arrival i is DUE at its scheduled instant no matter how
// the server is doing; a slow server grows latency (and eventually sheds),
// it does not slow the generator down. Latency is recorded per request from
// send() to response receipt and percentiles are EXACT (full sample sort,
// no histogram error) — at the default 1M+ requests that is an 8 MB sort,
// well worth the precision.
//
// The default (no-flag) run drives >= 1M open-loop requests. `--smoke` (or
// SAUFNO_SMOKE=1) shrinks the counts for CI and turns the SLO checks into
// hard failures: p99 of the steady phase must clear SAUFNO_SERVING_SLO_MS
// (default 750 ms), every request must be answered, and the error rate must
// stay under 1%.
//
// Results land in BENCH_serving.json (rewritten wholesale):
//   saturation_rps, per-phase {requests, offered/achieved rps, ok/shed/
//   errors, p50/p99/p99.9/max ms}, tenant mix.
//
// Knobs: SAUFNO_SERVING_N (total open-loop requests), SAUFNO_SERVING_CONNS
// (client connections), SAUFNO_SERVING_UTIL (fraction of saturation to
// offer, default 0.7), SAUFNO_SERVING_SLO_MS, SAUFNO_TENANT_SKEW
// (hot-tenant share, default 0.8), SAUFNO_SCALE=paper for the larger model.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "runtime/inference_engine.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "tensor/tensor.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

using clock_t_ = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || v[0] == '\0') ? fallback : std::atof(v);
}

struct PhaseResult {
  std::string name;
  int threads = 0;  // pool size while the phase ran (the pool is resized
                    // to 1 before JSON writing, so record it here)
  int64_t requests = 0;
  int64_t ok = 0;
  int64_t shed = 0;     // kOverloaded (quota or queue)
  int64_t errors = 0;   // every other non-ok code
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  // responses per second of generator wall time
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

/// Exact percentiles by full sort — the whole point of storing every
/// latency sample.
void fill_percentiles(std::vector<double>& lat, PhaseResult* r) {
  if (lat.empty()) return;
  std::sort(lat.begin(), lat.end());
  const auto at = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(lat.size() - 1) + 0.5);
    return lat[std::min(idx, lat.size() - 1)];
  };
  r->p50_ms = at(0.50);
  r->p99_ms = at(0.99);
  r->p999_ms = at(0.999);
  r->max_ms = lat.back();
}

struct Workload {
  std::vector<Tensor> maps;       // request templates, cycled per shape mix
  std::vector<std::string> tenants;
  double hot_share = 0.8;         // P(request comes from tenants[0])
  int burst_len = 1;              // same-map run length (rollout sessions)
};

/// Mixed-resolution request templates: mostly the small steady-state grid,
/// a tail of the larger one — enough shape diversity that the server's
/// per-shape shards actually multiplex.
Workload make_workload(int64_t res_a, int64_t res_b, int burst_len,
                       double hot_share, std::uint64_t seed) {
  Workload w;
  Rng rng(seed);
  for (int i = 0; i < 12; ++i) {
    const int64_t res = (i % 4 == 3) ? res_b : res_a;  // 25% large
    w.maps.push_back(Tensor::randn({3, res, res}, rng));
  }
  w.tenants = {"hot", "warm-1", "warm-2", "cold-1", "cold-2"};
  w.hot_share = hot_share;
  w.burst_len = burst_len;
  return w;
}

/// One open-loop generator connection: the sender fires requests at their
/// Poisson-scheduled instants; the receiver timestamps responses. A Client
/// is not thread-safe in general, but this split is: the sender only
/// touches send_*/the write side, the receiver only recv_response/the read
/// side, and request ids are sequential so `sent_at[id]` needs no lock.
void run_conn_open_loop(std::uint16_t port, const Workload& w,
                        int64_t n_requests, double rate_rps,
                        std::uint64_t seed, std::vector<double>* latencies,
                        PhaseResult* tally, std::atomic<int64_t>* lost) {
  serve::Client c;
  c.connect("127.0.0.1", port);
  // Send timestamps cross from the sender to the receiver thread; atomics
  // (relaxed is enough — the socket round trip orders the accesses, the
  // atomic just makes the handoff formal) keep the bench TSan-clean.
  std::vector<std::atomic<int64_t>> sent_at(
      static_cast<std::size_t>(n_requests) + 1);

  std::atomic<int64_t> ok{0}, shed{0}, errors{0};
  latencies->reserve(static_cast<std::size_t>(n_requests));
  std::thread receiver([&] {
    for (int64_t i = 0; i < n_requests; ++i) {
      serve::Response r;
      try {
        r = c.recv_response();
      } catch (const serve::ProtocolError&) {
        lost->fetch_add(n_requests - i);
        return;
      }
      const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 clock_t_::now().time_since_epoch())
                                 .count();
      if (r.code == serve::WireCode::kOk) {
        ok.fetch_add(1);
        const int64_t sent_ns =
            sent_at[r.id].load(std::memory_order_relaxed);
        latencies->push_back(static_cast<double>(now_ns - sent_ns) * 1e-6);
      } else if (r.code == serve::WireCode::kOverloaded) {
        shed.fetch_add(1);
      } else {
        errors.fetch_add(1);
      }
    }
  });

  Rng rng(seed);
  const double mean_gap_s = 1.0 / rate_rps;
  const auto t0 = clock_t_::now();
  double due_s = 0.0;
  std::size_t map_idx = 0;
  int in_burst = 0;
  for (int64_t i = 0; i < n_requests; ++i) {
    // Poisson process: exponential inter-arrival gaps, exact schedule.
    const double u =
        (static_cast<double>(rng.next_u64() >> 11) + 1.0) / 9007199254740993.0;
    due_s += -std::log(u) * mean_gap_s;
    const auto due = t0 + std::chrono::duration_cast<clock_t_::duration>(
                              std::chrono::duration<double>(due_s));
    std::this_thread::sleep_until(due);
    if (in_burst == 0) {
      map_idx = rng.next_below(w.maps.size());
      in_burst = w.burst_len;
    }
    --in_burst;  // rollout mix: burst_len same-shape sends back to back
    const std::string& tenant =
        (static_cast<double>(rng.next_below(1000)) / 1000.0 < w.hot_share)
            ? w.tenants[0]
            : w.tenants[1 + rng.next_below(w.tenants.size() - 1)];
    sent_at[static_cast<std::size_t>(i) + 1].store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock_t_::now().time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    c.send_infer(w.maps[map_idx].clone(), "", tenant);
  }
  const double gen_s =
      std::chrono::duration<double>(clock_t_::now() - t0).count();
  receiver.join();
  c.close();

  // Per-connection tallies merge under the caller's lock-free scheme: each
  // connection owns its own PhaseResult slot.
  tally->requests = n_requests;
  tally->ok = ok.load();
  tally->shed = shed.load();
  tally->errors = errors.load();
  tally->offered_rps = rate_rps;
  tally->achieved_rps = gen_s > 0 ? static_cast<double>(n_requests) / gen_s : 0;
}

PhaseResult run_open_loop_phase(const std::string& name, std::uint16_t port,
                                const Workload& w, int conns,
                                int64_t total_requests, double rate_rps,
                                std::uint64_t seed) {
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(conns));
  std::vector<PhaseResult> per_conn(static_cast<std::size_t>(conns));
  std::atomic<int64_t> lost{0};
  std::vector<std::thread> threads;
  const int64_t per = total_requests / conns;
  for (int t = 0; t < conns; ++t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    threads.emplace_back([&, t, ti] {
      run_conn_open_loop(port, w, per, rate_rps / conns,
                         seed + static_cast<std::uint64_t>(t) * 7919,
                         &latencies[ti], &per_conn[ti], &lost);
    });
  }
  for (auto& t : threads) t.join();

  PhaseResult r;
  r.name = name;
  r.threads = runtime::ThreadPool::instance().num_threads();
  std::vector<double> all;
  for (int t = 0; t < conns; ++t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    r.requests += per_conn[ti].requests;
    r.ok += per_conn[ti].ok;
    r.shed += per_conn[ti].shed;
    r.errors += per_conn[ti].errors;
    r.offered_rps += per_conn[ti].offered_rps;
    r.achieved_rps += per_conn[ti].achieved_rps;
    all.insert(all.end(), latencies[ti].begin(), latencies[ti].end());
  }
  r.errors += lost.load();  // a dropped connection counts against the server
  fill_percentiles(all, &r);
  return r;
}

/// Closed-loop saturation probe: `conns` connections keep `window` requests
/// pipelined each; responses/second over the steady window IS the ceiling
/// (TCP backpressure throttles the senders at the server's natural rate).
double run_saturation(std::uint16_t port, const Workload& w, int conns,
                      int64_t per_conn, int window, std::uint64_t seed) {
  std::atomic<int64_t> served{0};
  std::vector<std::thread> threads;
  const auto t0 = clock_t_::now();
  for (int t = 0; t < conns; ++t) {
    threads.emplace_back([&, t] {
      serve::Client c;
      c.connect("127.0.0.1", port);
      Rng rng(seed + static_cast<std::uint64_t>(t));
      int64_t sent = 0, recvd = 0;
      while (recvd < per_conn) {
        while (sent < per_conn && sent - recvd < window) {
          c.send_infer(w.maps[rng.next_below(w.maps.size())].clone(), "",
                       "hot");
          ++sent;
        }
        (void)c.recv_response();
        ++recvd;
        served.fetch_add(1);
      }
      c.close();
    });
  }
  for (auto& t : threads) t.join();
  const double secs = std::chrono::duration<double>(clock_t_::now() - t0).count();
  return secs > 0 ? static_cast<double>(served.load()) / secs : 0.0;
}

void phase_json(JsonWriter* jw, const PhaseResult& r) {
  jw->key(r.name);
  jw->begin_object();
  jw->field("threads", r.threads);
  jw->field("requests", r.requests);
  jw->field("ok", r.ok);
  jw->field("shed", r.shed);
  jw->field("errors", r.errors);
  jw->field("offered_rps", r.offered_rps, 1);
  jw->field("achieved_rps", r.achieved_rps, 1);
  jw->field("latency_p50_ms", r.p50_ms, 3);
  jw->field("latency_p99_ms", r.p99_ms, 3);
  jw->field("latency_p999_ms", r.p999_ms, 3);
  jw->field("latency_max_ms", r.max_ms, 3);
  jw->end_object();
}

void print_phase(const PhaseResult& r) {
  std::printf("%-10s %9lld req  offered %8.0f r/s  achieved %8.0f r/s\n",
              r.name.c_str(), static_cast<long long>(r.requests),
              r.offered_rps, r.achieved_rps);
  std::printf("           ok %lld, shed %lld, errors %lld\n",
              static_cast<long long>(r.ok), static_cast<long long>(r.shed),
              static_cast<long long>(r.errors));
  std::printf("           p50 %.2f ms  p99 %.2f ms  p99.9 %.2f ms  max %.2f "
              "ms\n",
              r.p50_ms, r.p99_ms, r.p999_ms, r.max_ms);
}

}  // namespace
}  // namespace saufno

int main(int argc, char** argv) {
  using namespace saufno;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* smoke_env = std::getenv("SAUFNO_SMOKE");
  if (smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0') {
    smoke = true;
  }

  // The micro model keeps per-request compute small enough that the DEFAULT
  // run pushes >= 1M requests through the socket path in minutes — this
  // bench measures the serving stack, not the spectral kernels (bench_fno
  // does that). Paper scale swaps in the full model on a bigger grid.
  const bool paper = bench_scale() == Scale::kPaper;
  const char* model_name = paper ? "SAU-FNO" : "SAU-FNO-micro";
  const int64_t res_a = paper ? 32 : 12;
  const int64_t res_b = paper ? 48 : 16;
  const int conns = env_int("SAUFNO_SERVING_CONNS", 8);
  const int64_t total_n = static_cast<int64_t>(env_int(
      "SAUFNO_SERVING_N", smoke ? 6000 : 1000000));
  const double util = env_double("SAUFNO_SERVING_UTIL", 0.7);
  const double slo_ms = env_double("SAUFNO_SERVING_SLO_MS", 750.0);
  const double hot_share = env_double("SAUFNO_TENANT_SKEW", 0.8);

  runtime::ThreadPool::instance().resize(env_int("SAUFNO_NUM_THREADS", 4));

  serve::Fleet::Config fc;
  auto fleet = std::make_shared<serve::Fleet>(fc);
  runtime::InferenceEngine::Config ecfg;
  ecfg.max_batch = 16;
  ecfg.max_wait_us = 500;
  ecfg.queue_capacity = 4096;
  fleet->add_engine("bench", std::make_shared<runtime::InferenceEngine>(
                                 train::make_model(model_name, 3, 1, 42, 0),
                                 ecfg));
  serve::Server::Config scfg;
  scfg.default_model = "bench";
  scfg.max_conns = conns + 4;
  scfg.max_pipelined = 4096;
  // The hot tenant gets a deep in-flight budget, cold tenants the default:
  // realistic skew, and the quota layer is actually on the hot path.
  scfg.quota_spec = "hot=4096,*=1024";
  serve::Server server(fleet, scfg);
  server.start();

  std::printf("== serving: open-loop load over TCP loopback (%s scale) ==\n",
              scale_name(bench_scale()));
  std::printf("model %s, grids %lldx%lld/%lldx%lld, %d connections, "
              "%lld open-loop requests, tenant skew hot=%.2f\n\n",
              model_name, static_cast<long long>(res_a),
              static_cast<long long>(res_a), static_cast<long long>(res_b),
              static_cast<long long>(res_b), conns,
              static_cast<long long>(total_n), hot_share);

  const Workload steady_w = make_workload(res_a, res_b, /*burst_len=*/1,
                                          hot_share, /*seed=*/11);
  const Workload rollout_w = make_workload(res_a, res_b, /*burst_len=*/16,
                                           hot_share, /*seed=*/13);

  // Phase 1: saturation (with a warmup pass so plan compilation and arena
  // warmup are off the books).
  const int64_t sat_per_conn = smoke ? 150 : 4000;
  (void)run_saturation(server.port(), steady_w, conns, sat_per_conn / 4, 32,
                       3);
  const double sat_rps =
      run_saturation(server.port(), steady_w, conns, sat_per_conn, 32, 5);
  std::printf("saturation: %.0f req/s closed-loop (%d conns x %lld req)\n\n",
              sat_rps, conns, static_cast<long long>(sat_per_conn));

  // Phases 2+3: open-loop Poisson at util x saturation. 60/40 steady vs
  // rollout split of the request budget.
  const double rate = util * sat_rps;
  const int64_t steady_n = total_n * 6 / 10;
  const int64_t rollout_n = total_n - steady_n;
  const PhaseResult steady = run_open_loop_phase(
      "steady", server.port(), steady_w, conns, steady_n, rate, 101);
  print_phase(steady);
  const PhaseResult rollout = run_open_loop_phase(
      "rollout", server.port(), rollout_w, conns, rollout_n, rate, 202);
  print_phase(rollout);

  const auto stats = server.stats();
  const int serve_threads = runtime::ThreadPool::instance().num_threads();
  server.stop();
  runtime::ThreadPool::instance().resize(1);

  JsonWriter jw;
  jw.begin_object();
  jw.field("scale", scale_name(bench_scale()));
  jw.field("model", model_name);
  jw.field("threads", serve_threads);
  jw.field("connections", conns);
  jw.field("tenant_hot_share", hot_share, 2);
  jw.field("utilization_target", util, 2);
  jw.field("saturation_rps", sat_rps, 1);
  phase_json(&jw, steady);
  phase_json(&jw, rollout);
  jw.key("server");
  jw.begin_object();
  jw.field("conns_accepted", stats.conns_accepted);
  jw.field("requests", stats.requests);
  jw.field("responses", stats.responses);
  jw.field("quota_rejected", stats.quota_rejected);
  jw.field("protocol_errors", stats.protocol_errors);
  jw.end_object();
  jw.end_object();
  if (!jw.write_file("BENCH_serving.json")) return 1;

  if (smoke) {
    // CI gates: the serving stack must answer EVERYTHING it was offered,
    // barely error at 70%% utilization, and hold the p99 SLO.
    const int64_t answered =
        steady.ok + steady.shed + steady.errors + rollout.ok + rollout.shed +
        rollout.errors;
    if (answered != steady.requests + rollout.requests) {
      std::printf("FAIL: %lld of %lld requests never answered\n",
                  static_cast<long long>(steady.requests + rollout.requests -
                                         answered),
                  static_cast<long long>(steady.requests + rollout.requests));
      return 1;
    }
    const double err_rate =
        static_cast<double>(steady.errors + rollout.errors) /
        static_cast<double>(steady.requests + rollout.requests);
    if (err_rate > 0.01) {
      std::printf("FAIL: error rate %.2f%% exceeds 1%%\n", err_rate * 100);
      return 1;
    }
    if (steady.p99_ms > slo_ms) {
      std::printf("FAIL: steady p99 %.2f ms exceeds SLO %.0f ms\n",
                  steady.p99_ms, slo_ms);
      return 1;
    }
    std::printf("smoke gates passed: p99 %.2f ms <= SLO %.0f ms, "
                "error rate %.3f%%\n",
                steady.p99_ms, slo_ms, err_rate * 100);
  }
  return 0;
}
