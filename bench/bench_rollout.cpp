// Transient rollout serving benchmark: sessions x steps scaling of the
// RolloutEngine. The property being measured is the core claim of the
// rollout layer — throughput scales with CONCURRENT SESSION COUNT, not
// rollout length, because the engine coalesces the current step of every
// live session into one batched forward.
//
// Results are printed AND written to BENCH_rollout.json. `--smoke` (or
// SAUFNO_SMOKE=1) shrinks sizes so CI can run it in seconds; in smoke mode
// the binary FAILS if >= 4 concurrent sessions do not reach an average
// batch size > 1, so a batching regression breaks the pipeline instead of
// a graph.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/normalizer.h"
#include "data/sequence.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/rollout_engine.h"
#include "runtime/thread_pool.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

struct Entry {
  int threads = 0;
  int sessions = 0;
  int steps = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;      // session-steps served per second
  double per_step_latency_ms = 0.0;
  double avg_batch_size = 0.0;
};

std::vector<Entry> g_entries;

/// The pool size SAUFNO_NUM_THREADS would produce — the matrix sweep
/// resizes the pool per row and restores this before the telemetry probe.
int env_default_threads() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  return env_int_in_range("SAUFNO_NUM_THREADS", hw, 1, 1024);
}

Entry run_config(const std::shared_ptr<nn::Module>& model,
                 const data::Normalizer& norm, const data::RolloutSpec& spec,
                 int n_sessions, int steps, int64_t res) {
  runtime::RolloutEngine::Config cfg;
  // Lockstep waves are exactly n_sessions wide: with max_batch matching,
  // each wave pops the moment the last submission lands instead of idling
  // out the batching deadline (which is only the straggler fallback here).
  cfg.engine.max_batch =
      env_int_in_range("SAUFNO_MAX_BATCH", n_sessions, 1, 1024);
  cfg.engine.max_wait_us = 20000;
  runtime::RolloutEngine engine(model, norm, spec, cfg);

  Rng rng(17);
  std::vector<std::unique_ptr<runtime::RolloutSession>> sessions;
  std::vector<runtime::RolloutSession*> raw;
  std::vector<Tensor> powers;
  const Tensor init =
      Tensor::full({spec.state_channels, res, res},
                   static_cast<float>(norm.ambient()));
  for (int s = 0; s < n_sessions; ++s) {
    sessions.push_back(engine.open_session(init.clone()));
    raw.push_back(sessions.back().get());
    powers.push_back(Tensor::rand_uniform(
        {steps, spec.power_channels, res, res}, rng, 0.f, 9e4f));
  }

  Timer t;
  const auto trajectories = engine.run(raw, powers);
  Entry e;
  e.threads = runtime::ThreadPool::instance().num_threads();
  e.sessions = n_sessions;
  e.steps = steps;
  e.seconds = t.seconds();
  const double total_steps = static_cast<double>(n_sessions) * steps;
  e.steps_per_sec = total_steps / e.seconds;
  e.per_step_latency_ms = e.seconds / steps * 1e3;  // wall time per wave
  e.avg_batch_size = engine.stats().avg_batch_size;
  (void)trajectories;
  return e;
}

/// Telemetry overhead probe: re-run a reference config with every obs
/// feature live (tracing to a file + kernel profiling forced on) and
/// compare steps/s against the plain run. Best-of-3 on each side damps
/// scheduler noise; the ISSUE budget is 2%.
double measure_telemetry_overhead(const std::shared_ptr<nn::Module>& model,
                                  const data::Normalizer& norm,
                                  const data::RolloutSpec& spec, int n_sessions,
                                  int steps, int64_t res,
                                  double* on_steps_per_sec) {
  auto best_of = [&](int reps) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      const Entry e = run_config(model, norm, spec, n_sessions, steps, res);
      best = std::max(best, e.steps_per_sec);
    }
    return best;
  };

  const double off = best_of(3);
  obs::trace_start("BENCH_rollout_trace.json");
  obs::force_profile_kernels(true);
  const double on = best_of(3);
  obs::force_profile_kernels(false);
  obs::trace_stop();

  *on_steps_per_sec = on;
  const double overhead_pct = (off - on) / off * 100.0;
  std::printf("\ntelemetry overhead: %.1f steps/s off, %.1f steps/s on "
              "(%.2f%%)\n", off, on, overhead_pct);
  return overhead_pct;
}

void write_json(const char* path, bool smoke, int64_t res,
                double telemetry_overhead_pct) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "bench_rollout");
  w.field("mode", smoke ? "smoke" : "full");
  w.field("resolution", res);
  w.field("threads", runtime::ThreadPool::instance().num_threads());
  w.field("telemetry_overhead_pct", telemetry_overhead_pct, 2);
  w.key("results");
  w.begin_array();
  for (const auto& e : g_entries) {
    w.begin_object();
    w.field("threads", e.threads);
    w.field("sessions", e.sessions);
    w.field("steps", e.steps);
    w.field("seconds", e.seconds, 6);
    w.field("steps_per_sec", e.steps_per_sec, 2);
    w.field("per_step_latency_ms", e.per_step_latency_ms, 3);
    w.field("avg_batch_size", e.avg_batch_size, 3);
    w.end_object();
  }
  w.end_array();
  w.key("obs");
  w.raw_value(obs::dump_json());
  w.end_object();
  w.write_file(path);
}

}  // namespace
}  // namespace saufno

int main(int argc, char** argv) {
  using namespace saufno;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* env = std::getenv("SAUFNO_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') smoke = true;

  const int64_t res = smoke ? 12 : 16;
  const int steps = smoke ? 6 : 32;
  const std::vector<int> session_counts =
      smoke ? std::vector<int>{1, 4, 8} : std::vector<int>{1, 2, 4, 8, 16};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};

  data::RolloutSpec spec;
  spec.dt = 0.01;
  spec.state_channels = 1;
  spec.power_channels = 1;
  // Untrained weights: identical compute cost to a trained surrogate, and
  // the bench stays self-contained (no dataset / training dependency).
  auto model = train::make_model(smoke ? "SAU-FNO-micro" : "SAU-FNO",
                                 spec.in_channels(), spec.out_channels(),
                                 /*seed=*/42);
  const auto norm =
      data::Normalizer::from_stats(318.0, 3e4, 9.0, spec.power_channels);

  std::printf("== bench_rollout (%s mode) ==\n", smoke ? "smoke" : "full");
  std::printf("res %lldx%lld, %d steps/session, threads x sessions matrix\n\n",
              static_cast<long long>(res), static_cast<long long>(res), steps);
  std::printf("%8s %10s %8s %12s %16s %16s %12s\n", "threads", "sessions",
              "steps", "seconds", "steps/sec", "ms/step-wave", "avg batch");
  // threads x sessions matrix: the pool is resized between configs (each
  // engine is constructed and joined inside run_config, so no submissions
  // race the resize).
  for (const int threads : thread_counts) {
    runtime::ThreadPool::instance().resize(threads);
    for (const int n : session_counts) {
      const auto e = run_config(model, norm, spec, n, steps, res);
      g_entries.push_back(e);
      std::printf("%8d %10d %8d %12.4f %16.1f %16.3f %12.2f\n", e.threads,
                  e.sessions, e.steps, e.seconds, e.steps_per_sec,
                  e.per_step_latency_ms, e.avg_batch_size);
    }
  }
  // Telemetry overhead probe at the widest smoke config (8 sessions keeps
  // the batcher busy, so idle-queue time doesn't mask per-event cost), back
  // at the environment-default pool size.
  runtime::ThreadPool::instance().resize(env_default_threads());
  double on_steps_per_sec = 0.0;
  const double overhead_pct = measure_telemetry_overhead(
      model, norm, spec, smoke ? 8 : 16, steps, res, &on_steps_per_sec);

  write_json("BENCH_rollout.json", smoke, res, overhead_pct);

  // Smoke-mode CI gate: concurrent sessions must actually coalesce.
  for (const auto& e : g_entries) {
    if (smoke && e.sessions >= 4 && e.avg_batch_size <= 1.0) {
      std::printf("FAIL: %d concurrent sessions averaged batch size %.2f "
                  "(<= 1): rollout batching regressed\n",
                  e.sessions, e.avg_batch_size);
      return 1;
    }
  }
  // Smoke-mode CI gate: telemetry must stay within the 2% budget. The
  // best-of-3 on both sides keeps this stable on noisy CI runners.
  if (smoke && overhead_pct > 2.0) {
    std::printf("FAIL: telemetry overhead %.2f%% exceeds the 2%% budget\n",
                overhead_pct);
    return 1;
  }
  // Smoke-mode CI gate: multicore scaling. On a machine with >= 4 real
  // cores, the widest session count at 8 threads must be measurably above
  // the same config at 1 thread — a modest 1.15x bar so a scheduler hiccup
  // doesn't flake CI, but a regression to serialized nesting (1.0x) fails.
  // Skipped on smaller runners, where an 8-lane pool timeshares cores and
  // the comparison measures nothing.
  if (smoke && std::thread::hardware_concurrency() >= 4) {
    const int widest = session_counts.back();
    double at1 = 0.0, at8 = 0.0;
    for (const auto& e : g_entries) {
      if (e.sessions != widest) continue;
      if (e.threads == 1) at1 = e.steps_per_sec;
      if (e.threads == 8) at8 = e.steps_per_sec;
    }
    if (at1 > 0.0 && at8 > 0.0 && at8 < 1.15 * at1) {
      std::printf("FAIL: %d-session rollout at 8 threads (%.1f steps/s) is "
                  "not measurably above 1 thread (%.1f steps/s): multicore "
                  "scaling regressed\n",
                  widest, at8, at1);
      return 1;
    }
  }
  return 0;
}
