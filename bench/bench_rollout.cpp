// Transient rollout serving benchmark: sessions x steps scaling of the
// RolloutEngine. The property being measured is the core claim of the
// rollout layer — throughput scales with CONCURRENT SESSION COUNT, not
// rollout length, because the engine coalesces the current step of every
// live session into one batched forward.
//
// Results are printed AND written to BENCH_rollout.json. `--smoke` (or
// SAUFNO_SMOKE=1) shrinks sizes so CI can run it in seconds; in smoke mode
// the binary FAILS if >= 4 concurrent sessions do not reach an average
// batch size > 1, so a batching regression breaks the pipeline instead of
// a graph.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/normalizer.h"
#include "data/sequence.h"
#include "runtime/rollout_engine.h"
#include "runtime/thread_pool.h"
#include "train/model_zoo.h"

namespace saufno {
namespace {

struct Entry {
  int sessions = 0;
  int steps = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;      // session-steps served per second
  double per_step_latency_ms = 0.0;
  double avg_batch_size = 0.0;
};

std::vector<Entry> g_entries;

Entry run_config(const std::shared_ptr<nn::Module>& model,
                 const data::Normalizer& norm, const data::RolloutSpec& spec,
                 int n_sessions, int steps, int64_t res) {
  runtime::RolloutEngine::Config cfg;
  // Lockstep waves are exactly n_sessions wide: with max_batch matching,
  // each wave pops the moment the last submission lands instead of idling
  // out the batching deadline (which is only the straggler fallback here).
  cfg.engine.max_batch =
      env_int_in_range("SAUFNO_MAX_BATCH", n_sessions, 1, 1024);
  cfg.engine.max_wait_us = 20000;
  runtime::RolloutEngine engine(model, norm, spec, cfg);

  Rng rng(17);
  std::vector<std::unique_ptr<runtime::RolloutSession>> sessions;
  std::vector<runtime::RolloutSession*> raw;
  std::vector<Tensor> powers;
  const Tensor init =
      Tensor::full({spec.state_channels, res, res},
                   static_cast<float>(norm.ambient()));
  for (int s = 0; s < n_sessions; ++s) {
    sessions.push_back(engine.open_session(init.clone()));
    raw.push_back(sessions.back().get());
    powers.push_back(Tensor::rand_uniform(
        {steps, spec.power_channels, res, res}, rng, 0.f, 9e4f));
  }

  Timer t;
  const auto trajectories = engine.run(raw, powers);
  Entry e;
  e.sessions = n_sessions;
  e.steps = steps;
  e.seconds = t.seconds();
  const double total_steps = static_cast<double>(n_sessions) * steps;
  e.steps_per_sec = total_steps / e.seconds;
  e.per_step_latency_ms = e.seconds / steps * 1e3;  // wall time per wave
  e.avg_batch_size = engine.stats().avg_batch_size;
  (void)trajectories;
  return e;
}

void write_json(const char* path, bool smoke, int64_t res) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_rollout\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"resolution\": %lld,\n", static_cast<long long>(res));
  std::fprintf(f, "  \"threads\": %d,\n",
               runtime::ThreadPool::instance().num_threads());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_entries.size(); ++i) {
    const auto& e = g_entries[i];
    std::fprintf(f,
                 "    {\"sessions\": %d, \"steps\": %d, \"seconds\": %.6f, "
                 "\"steps_per_sec\": %.2f, \"per_step_latency_ms\": %.3f, "
                 "\"avg_batch_size\": %.3f}%s\n",
                 e.sessions, e.steps, e.seconds, e.steps_per_sec,
                 e.per_step_latency_ms, e.avg_batch_size,
                 i + 1 < g_entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace saufno

int main(int argc, char** argv) {
  using namespace saufno;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* env = std::getenv("SAUFNO_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') smoke = true;

  const int64_t res = smoke ? 12 : 16;
  const int steps = smoke ? 6 : 32;
  const std::vector<int> session_counts =
      smoke ? std::vector<int>{1, 4, 8} : std::vector<int>{1, 2, 4, 8, 16};

  data::RolloutSpec spec;
  spec.dt = 0.01;
  spec.state_channels = 1;
  spec.power_channels = 1;
  // Untrained weights: identical compute cost to a trained surrogate, and
  // the bench stays self-contained (no dataset / training dependency).
  auto model = train::make_model(smoke ? "SAU-FNO-micro" : "SAU-FNO",
                                 spec.in_channels(), spec.out_channels(),
                                 /*seed=*/42);
  const auto norm =
      data::Normalizer::from_stats(318.0, 3e4, 9.0, spec.power_channels);

  std::printf("== bench_rollout (%s mode) ==\n", smoke ? "smoke" : "full");
  std::printf("res %lldx%lld, %d steps/session, %d kernel lanes\n\n",
              static_cast<long long>(res), static_cast<long long>(res), steps,
              runtime::ThreadPool::instance().num_threads());
  std::printf("%10s %8s %12s %16s %16s %12s\n", "sessions", "steps",
              "seconds", "steps/sec", "ms/step-wave", "avg batch");
  for (const int n : session_counts) {
    const auto e = run_config(model, norm, spec, n, steps, res);
    g_entries.push_back(e);
    std::printf("%10d %8d %12.4f %16.1f %16.3f %12.2f\n", e.sessions, e.steps,
                e.seconds, e.steps_per_sec, e.per_step_latency_ms,
                e.avg_batch_size);
  }
  write_json("BENCH_rollout.json", smoke, res);

  // Smoke-mode CI gate: concurrent sessions must actually coalesce.
  for (const auto& e : g_entries) {
    if (smoke && e.sessions >= 4 && e.avg_batch_size <= 1.0) {
      std::printf("FAIL: %d concurrent sessions averaged batch size %.2f "
                  "(<= 1): rollout batching regressed\n",
                  e.sessions, e.avg_batch_size);
      return 1;
    }
  }
  return 0;
}
