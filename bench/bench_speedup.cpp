// Reproduces the Section IV-D speed claim: SAU-FNO inference vs MTA
// (FDM substitute) and HotSpot (compact RC substitute) per steady-state
// prediction. The paper reports 0.27 s per SAU-FNO prediction vs 227.31 s
// (MTA) and 98.47 s (HotSpot): 842x and 365x. Absolute numbers here differ
// (CPU surrogate vs GPU, small meshes vs the authors' full meshes); the
// reproduced SHAPE is the ordering surrogate << compact model, surrogate
// << field solver, with the gap widening as the solver mesh refines.

#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"
#include "tensor/tensor_ops.h"
#include "thermal/compact_rc.h"

using namespace saufno;
using namespace saufno::bench;

int main() {
  set_log_level(LogLevel::kWarn);
  print_header("Speedup: SAU-FNO vs solver per prediction (chip1)");
  const BenchScale s = BenchScale::current();
  const auto spec = chip::make_chip1();

  auto [train_set, test_set] =
      make_split(spec, s.res_high, s.n_train, s.n_test, /*seed=*/2024);
  const auto norm =
      data::Normalizer::fit(train_set, spec.num_device_layers());
  auto model = train::make_model("SAU-FNO", train_set.in_channels(),
                                 train_set.out_channels(), 5200, s.size_hint);
  train::TrainConfig tc;
  tc.epochs = std::max(1, s.epochs / 2);  // speed bench needs a model, not SOTA
  tc.batch_size = s.batch;
  tc.lr = s.lr;
  train::Trainer tr(*model, norm, tc);
  tr.fit(train_set);

  // One representative power assignment.
  chip::PowerGenerator pgen(spec);
  Rng rng(5300);
  const auto pa = pgen.sample(rng);

  // SAU-FNO inference time (single sample).
  auto [one_x, one_y] = test_set.gather({0});
  const double t_model = tr.time_inference(one_x, 5);

  // Solver times at increasing mesh refinement ("finest mesh" comparison).
  thermal::FdmSolver solver;
  CsvWriter csv("speedup_results.csv");
  csv.row({"engine", "mesh", "seconds_per_prediction", "speedup_vs_engine"});
  TablePrinter table({"Engine", "Mesh", "s/prediction", "SAU-FNO speedup"},
                     {20, 16, 16, 18});
  table.add_row({"SAU-FNO (ours)", std::to_string(s.res_high) + "^2",
                 fmt(t_model, 5), "1x"});
  csv.row({"SAU-FNO", std::to_string(s.res_high), fmt(t_model, 6), "1"});

  for (int refine : {1, 2, 3}) {
    Timer t;
    const auto sol =
        solver.solve(thermal::build_grid(spec, pa, s.res_high, s.res_high,
                                         refine));
    const double secs = t.seconds();
    const std::string mesh = std::to_string(s.res_high * refine) + "^2 x" +
                             std::to_string(refine);
    table.add_row({refine == 1 ? "MTA* (FDM)" : "COMSOL*-like (FDM)", mesh,
                   fmt(secs, 4), fmt(secs / t_model, 1) + "x"});
    csv.row({refine == 1 ? "MTA" : "FDM-refined", mesh, fmt(secs, 6),
             fmt(secs / t_model, 1)});
    (void)sol;
  }
  {
    // HotSpot block mode: tens of nodes, microseconds — faster than any
    // surrogate but far less accurate (the Table IV bias).
    thermal::CompactRcSolver rc(spec);
    Timer t;
    const int reps = 100;
    for (int i = 0; i < reps; ++i) (void)rc.solve(pa);
    const double secs = t.seconds() / reps;
    table.add_row({"HotSpot* block mode", "block-level", fmt(secs, 6),
                   fmt(secs / t_model, 2) + "x"});
    csv.row({"HotSpot-block", "blocks", fmt(secs, 7),
             fmt(secs / t_model, 2)});
  }
  {
    // HotSpot grid mode: the configuration behind the paper's published
    // 98 s — a per-voxel RC network relaxed with Gauss-Seidel.
    thermal::CompactRcSolver rc(spec);
    for (int gres : {s.res_high, 2 * s.res_high}) {
      Timer t;
      const auto gr = rc.solve_grid(pa, gres);
      const double secs = t.seconds();
      table.add_row({"HotSpot* grid mode", std::to_string(gres) + "^2 GS",
                     fmt(secs, 4), fmt(secs / t_model, 1) + "x"});
      csv.row({"HotSpot-grid", std::to_string(gres), fmt(secs, 6),
               fmt(secs / t_model, 2)});
      (void)gr;
    }
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("* substitutes per DESIGN.md\n");
  std::printf(
      "paper reference: 0.27 s/prediction vs MTA 227.31 s (842x) and "
      "HotSpot 98.47 s (365x)\n"
      "expected shape: surrogate cost is resolution-flat; solver cost grows "
      "superlinearly with mesh,\nso the speedup factor widens with "
      "refinement (at the paper's full meshes it reaches the 100x-1000x "
      "class)\n");
  std::printf("rows also written to speedup_results.csv\n");
  return 0;
}
