// Data-efficiency ablation backing the paper's motivation (Section I:
// "FNO still demands considerable high-fidelity simulation data"; the
// transfer-learning contribution exists because data is the bottleneck).
//
// Sweeps the training-set size and reports test RMSE for FNO vs SAU-FNO.
// Expected shape: accuracy improves with data for both; SAU-FNO reaches a
// given accuracy with fewer samples (its U-Net/attention inductive biases
// pay most when data is scarce).

#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"

using namespace saufno;
using namespace saufno::bench;

int main() {
  set_log_level(LogLevel::kWarn);
  print_header("Ablation: accuracy vs training-set size (chip1)");
  const BenchScale s = BenchScale::current();
  const auto spec = chip::make_chip1();

  auto [train_full, test_set] =
      make_split(spec, s.res_low, s.n_train, s.n_test, /*seed=*/2024);
  const auto norm =
      data::Normalizer::fit(train_full, spec.num_device_layers());

  CsvWriter csv("ablation_dataeff_results.csv");
  csv.row({"model", "n_train", "rmse", "max", "mean"});
  TablePrinter table({"Model", "N train", "RMSE", "Max", "Mean"},
                     {10, 9, 9, 9, 9});

  const int fractions[] = {4, 2, 1};  // n_train/4, /2, full
  for (const auto& name : {std::string("FNO"), std::string("SAU-FNO")}) {
    for (int frac : fractions) {
      const int n = s.n_train / frac;
      auto subset = train_full.take(n);
      const auto run = run_model(name, subset, test_set, norm, s,
                                 /*seed=*/8800);
      table.add_row({name, std::to_string(n), fmt(run.metrics.rmse),
                     fmt(run.metrics.max_err), fmt(run.metrics.mean_err)});
      csv.row({name, std::to_string(n), fmt(run.metrics.rmse, 4),
               fmt(run.metrics.max_err, 4), fmt(run.metrics.mean_err, 4)});
      std::fprintf(stderr, "[dataeff] %s n=%d done\n", name.c_str(), n);
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("rows also written to ablation_dataeff_results.csv\n");
  std::printf(
      "expected shape: RMSE falls with data for both models; SAU-FNO "
      "dominates at every budget,\nwith the largest margin at the smallest "
      "budget (the data-scarcity regime the paper targets)\n");
  return 0;
}
