// Ablation backing the Section III-B design decision: "adding
// self-attention blocks after all U-FNO layers yields similar performance
// to adding them only after the last one", so the paper places a single
// block after the last layer to cut cost. This bench trains SAU-FNO with
// attention = none / last / all and reports accuracy vs train time.

#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"

using namespace saufno;
using namespace saufno::bench;

int main() {
  set_log_level(LogLevel::kWarn);
  print_header("Ablation: attention placement (chip1)");
  const BenchScale s = BenchScale::current();
  const auto spec = chip::make_chip1();

  auto [train_set, test_set] =
      make_split(spec, s.res_low, s.n_train, s.n_test, /*seed=*/2024);
  const auto norm =
      data::Normalizer::fit(train_set, spec.num_device_layers());

  CsvWriter csv("ablation_attention_results.csv");
  csv.row({"placement", "rmse", "max", "mean", "params", "train_s"});
  TablePrinter table(
      {"Placement", "RMSE", "Max", "Mean", "Params", "train s"},
      {22, 9, 9, 9, 10, 9});

  const std::pair<const char*, const char*> variants[] = {
      {"U-FNO (no attention)", "U-FNO"},
      {"attention after last", "SAU-FNO"},
      {"attention after all", "SAU-FNO-all-attn"},
  };
  for (const auto& [label, zoo_name] : variants) {
    const auto run =
        run_model(zoo_name, train_set, test_set, norm, s, /*seed=*/6200);
    table.add_row({label, fmt(run.metrics.rmse), fmt(run.metrics.max_err),
                   fmt(run.metrics.mean_err),
                   std::to_string(run.parameters),
                   fmt(run.train_seconds, 1)});
    csv.row({label, fmt(run.metrics.rmse, 4), fmt(run.metrics.max_err, 4),
             fmt(run.metrics.mean_err, 4), std::to_string(run.parameters),
             fmt(run.train_seconds, 1)});
    std::fprintf(stderr, "[ablation] %s done\n", label);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("rows also written to ablation_attention_results.csv\n");
  std::printf(
      "expected shape (paper): last ~= all in accuracy, last cheaper to "
      "train; both beat no-attention on junction temperature\n");
  return 0;
}
