// Reproduces Table III: transfer learning vs from-scratch high-fidelity
// training on Chip1 for FNO, U-FNO and SAU-FNO.
//
// Protocol (Section IV-C): pre-train on 4N low-fidelity (coarse-grid)
// cases, fine-tune on N high-fidelity cases at lr/10; the benchmark row
// ("Transfer = -") trains from scratch on 4N high-fidelity cases. The
// paper's claim: transfer loses only a little accuracy (RMSE 0.090 -> 0.097
// for Ours) while cutting total data-collection + training cost ~2.5x.

#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"
#include "train/transfer.h"

using namespace saufno;
using namespace saufno::bench;

int main() {
  set_log_level(LogLevel::kWarn);
  print_header("Table III: transfer learning on chip1");
  const BenchScale s = BenchScale::current();
  const auto spec = chip::make_chip1();

  // 4:1 low:high ratio, the paper's optimum.
  const int n_low = s.n_train;
  const int n_high = std::max(4, s.n_train / 4);

  data::GenConfig lo_cfg;
  lo_cfg.resolution = s.res_low;
  lo_cfg.n_samples = n_low;
  lo_cfg.seed = 2024;
  auto lo_train = data::generate_dataset(spec, lo_cfg);

  auto [hi_train_full, hi_test] =
      make_split(spec, s.res_high, s.n_train, s.n_test, /*seed=*/2024);
  auto hi_train_small = hi_train_full.take(n_high);

  const auto norm =
      data::Normalizer::fit(lo_train, spec.num_device_layers());

  CsvWriter csv("table3_results.csv");
  csv.row({"method", "transfer", "rmse", "mape", "pape", "max", "mean",
           "train_s", "hifi_cases"});
  TablePrinter table(
      {"Method", "Transfer", "RMSE", "MAPE", "PAPE", "Max", "Mean",
       "train s", "hi-fi N"},
      {14, 10, 9, 9, 9, 9, 9, 9, 9});

  for (const auto& name : {std::string("FNO"), std::string("U-FNO"),
                           std::string("SAU-FNO")}) {
    // From scratch on the full high-fidelity set (the paper's benchmark).
    {
      auto model = train::make_model(name, hi_train_full.in_channels(),
                                     hi_train_full.out_channels(), 601,
                                     s.size_hint);
      train::TrainConfig tc;
      tc.epochs = s.epochs;
      tc.batch_size = s.batch;
      tc.lr = s.lr;
      tc.lr_step = std::max(1, s.epochs / 3);
      train::Trainer tr(*model, norm, tc);
      const double secs = tr.fit(hi_train_full).seconds;
      const auto m = tr.evaluate(hi_test);
      const std::string shown = name == "SAU-FNO" ? "Ours" : name;
      table.add_row({shown, "-", fmt(m.rmse), fmt(m.mape), fmt(m.pape),
                     fmt(m.max_err), fmt(m.mean_err), fmt(secs, 1),
                     std::to_string(s.n_train)});
      csv.row({name, "no", fmt(m.rmse, 4), fmt(m.mape, 4), fmt(m.pape, 4),
               fmt(m.max_err, 4), fmt(m.mean_err, 4), fmt(secs, 1),
               std::to_string(s.n_train)});
    }
    // Transfer: pre-train low fidelity, fine-tune on the small high set.
    {
      auto model = train::make_model(name, lo_train.in_channels(),
                                     lo_train.out_channels(), 601,
                                     s.size_hint);
      train::TransferConfig tc = train::TransferConfig::defaults();
      tc.pretrain.epochs = s.epochs;
      tc.pretrain.batch_size = s.batch;
      tc.pretrain.lr = s.lr;
      tc.pretrain.lr_step = std::max(1, s.epochs / 3);
      tc.finetune = tc.pretrain;
      tc.finetune.epochs = std::max(1, s.epochs / 2);
      tc.finetune.lr = s.lr / 10.0;  // Section III-C
      const auto rep =
          train::transfer_train(*model, norm, lo_train, hi_train_small, tc);
      train::Trainer eval_tr(*model, norm, tc.finetune);
      const auto m = eval_tr.evaluate(hi_test);
      const std::string shown = name == "SAU-FNO" ? "Ours" : name;
      table.add_row({shown, "yes", fmt(m.rmse), fmt(m.mape), fmt(m.pape),
                     fmt(m.max_err), fmt(m.mean_err),
                     fmt(rep.total_seconds(), 1), std::to_string(n_high)});
      csv.row({name, "yes", fmt(m.rmse, 4), fmt(m.mape, 4), fmt(m.pape, 4),
               fmt(m.max_err, 4), fmt(m.mean_err, 4),
               fmt(rep.total_seconds(), 1), std::to_string(n_high)});
    }
    std::fprintf(stderr, "[table3] %s done\n", name.c_str());
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("rows also written to table3_results.csv\n");
  std::printf(
      "expected shape (paper): transfer rows within ~10%% of from-scratch "
      "rows\nwhile using 4x fewer high-fidelity cases (plus ~4-6x cheaper "
      "per-case generation)\n");
  return 0;
}
