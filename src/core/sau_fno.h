#pragma once

#include "core/attention.h"
#include "core/ufno_layer.h"
#include "nn/linear.h"

namespace saufno {
namespace core {

/// Where to insert self-attention blocks in the iterative stack. The paper
/// finds "last layer only" matches "after every layer" at lower cost
/// (Section III-B); the enum exists so the ablation bench can verify that
/// claim on our reproduction.
enum class AttentionPlacement { kNone, kLast, kAll };

/// SAU-FNO — the paper's primary contribution (Section III).
///
/// Pipeline: lifting P (pointwise MLP to `width` channels) -> L plain
/// Fourier layers -> M U-Fourier layers (Eq. 7) -> self-attention block(s)
/// -> projection Q (pointwise MLP back to output channels).
///
/// With `n_ufourier = 0` and attention kNone this degenerates to the FNO
/// baseline; with attention kNone it is exactly U-FNO [34] — the paper uses
/// those two ablations as its comparison set, and the model zoo builds them
/// from this one class plus the dedicated baselines.
class SauFno : public nn::Module {
 public:
  struct Config {
    int64_t in_channels = 3;    // device-layer power maps + 2 coord channels
    int64_t out_channels = 1;   // device-layer temperature maps
    int64_t width = 16;         // lifted channel dimension
    int64_t modes1 = 12;        // "model structure [12, 12, 2]": modes1
    int64_t modes2 = 12;        //                                 modes2
    int64_t n_fourier = 2;      // L plain Fourier layers
    int64_t n_ufourier = 2;     //                       ...and 2 U-Fourier
    int64_t unet_base = 16;
    int64_t unet_depth = 3;
    int64_t attention_dim = 16;  // Q/K embedding size d
    AttentionPlacement attention = AttentionPlacement::kLast;

    /// The published configuration for Chip1/Chip2 ([12,12,2], attention on
    /// the last layer). Width differs from the paper's text (which is
    /// internally inconsistent, see DESIGN.md); 16 fits the CPU budget.
    static Config chip_default(int64_t in_ch, int64_t out_ch);
  };

  SauFno(const Config& cfg, Rng& rng);

  /// [B, in_channels, H, W] -> [B, out_channels, H, W]; any H, W.
  Var forward(const Var& x) override;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  nn::PointwiseConv* lift1_;
  nn::PointwiseConv* lift2_;
  std::vector<UFourierLayer*> layers_;
  std::vector<SelfAttentionBlock*> attn_;  // parallel to layers_ when kAll
  nn::PointwiseConv* proj1_;
  nn::PointwiseConv* proj2_;
};

}  // namespace core
}  // namespace saufno
