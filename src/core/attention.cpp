#include "core/attention.h"

#include <cmath>
#include <memory>

#include "common/logging.h"
#include "plan/trace.h"

namespace saufno {
namespace core {

SelfAttentionBlock::SelfAttentionBlock(int64_t channels, int64_t d, Rng& rng)
    : channels_(channels), d_(d) {
  wq_ = register_module("wq", std::make_shared<nn::PointwiseConv>(
                                  channels, d, rng, /*bias=*/false));
  wk_ = register_module("wk", std::make_shared<nn::PointwiseConv>(
                                  channels, d, rng, /*bias=*/false));
  wh_ = register_module("wh", std::make_shared<nn::PointwiseConv>(
                                  channels, channels, rng, /*bias=*/false));
  wo_ = register_module("wo",
                        std::make_shared<nn::PointwiseConv>(channels, channels,
                                                            rng));
}

Var SelfAttentionBlock::forward(const Var& x) {
  plan::TraceScope scope("attention");
  SAUFNO_CHECK(x.value().dim() == 4, "attention input must be [B,C,H,W]");
  const int64_t B = x.size(0), H = x.size(2), W = x.size(3);
  const int64_t N = H * W;

  Var q = wq_->forward(x);  // [B, d, H, W]
  Var k = wk_->forward(x);  // [B, d, H, W]
  Var v = wh_->forward(x);  // [B, C, H, W] — the channel-attention map A_c

  Var qn = ops::permute(ops::reshape(q, {B, d_, N}), {0, 2, 1});  // [B, N, d]
  Var kn = ops::reshape(k, {B, d_, N});                           // [B, d, N]
  // s_ij = <Q_i, K_j> / sqrt(d)  — scaling keeps the softmax out of
  // saturation, standard since Vaswani et al. [30].
  Var scores =
      ops::mul_scalar(ops::bmm(qn, kn),
                      1.f / std::sqrt(static_cast<float>(d_)));  // [B, N, N]
  Var a_s = ops::softmax_lastdim(scores);

  Var vn = ops::reshape(v, {B, channels_, N});  // [B, C, N]
  // V'_i = sum_j A_s[i,j] A_c[:,j]  ->  V' = A_c * A_s^T  ([B, C, N]).
  Var out = ops::bmm(vn, ops::permute(a_s, {0, 2, 1}));
  out = ops::reshape(out, {B, channels_, H, W});
  // Residual connection so the block can no-op early in training.
  return ops::add(x, wo_->forward(out));
}

}  // namespace core
}  // namespace saufno
