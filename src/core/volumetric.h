#pragma once

#include "autograd/spectral3d_ops.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace saufno {
namespace core {

/// 3-D Fourier-domain convolution module over [B, C, D, H, W] volumes.
class SpectralConv3d : public nn::Module {
 public:
  SpectralConv3d(int64_t cin, int64_t cout, int64_t modes1, int64_t modes2,
                 int64_t modes3, Rng& rng);
  Var forward(const Var& x) override;

 private:
  int64_t cin_, cout_, m1_, m2_, m3_;
  Var weight_;  // [cin, cout, 2*m1, 2*m2, m3, 2]
};

/// Volumetric Fourier Neural Operator: maps a 3-D power-density volume to
/// the full 3-D temperature distribution — the paper's literal output
/// space ("the model output is a three-dimensional temperature
/// distribution", Section IV-A). The layer-map (2-D) pipeline remains the
/// primary reproduction because the paper's resolutions (40x40, 64x64) and
/// figures are per-layer maps, but this model serves users who need the
/// stack interior (e.g. TSV or TIM temperatures).
///
/// Pipeline: pointwise lifting -> n_layers x [spectral conv + pointwise
/// linear, GELU] -> pointwise projection. Mesh invariant along all three
/// axes (modes clamp per axis, so the thin z-direction of real chip stacks
/// is handled with 1-2 kept modes).
class Fno3d : public nn::Module {
 public:
  struct Config {
    int64_t in_channels = 4;   // power volume + 3 coord channels
    int64_t out_channels = 1;  // temperature volume
    int64_t width = 8;
    int64_t modes1 = 2;        // depth modes (chip stacks are thin)
    int64_t modes2 = 6;
    int64_t modes3 = 6;
    int64_t n_layers = 3;
  };

  Fno3d(const Config& cfg, Rng& rng);
  /// [B, in_channels, D, H, W] -> [B, out_channels, D, H, W].
  Var forward(const Var& x) override;

 private:
  /// Apply a PointwiseConv across the channel dim of a 5-D volume.
  static Var pointwise5d(nn::PointwiseConv& pw, const Var& x);

  Config cfg_;
  nn::PointwiseConv* lift_;
  std::vector<SpectralConv3d*> spectral_;
  std::vector<nn::PointwiseConv*> linear_;
  nn::PointwiseConv* proj1_;
  nn::PointwiseConv* proj2_;
};

}  // namespace core
}  // namespace saufno
