#pragma once

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pool.h"

namespace saufno {
namespace core {

/// U-Net bypass of the U-Fourier layer (Section III-A).
///
/// Encoder: `depth` levels of [3x3 conv + ReLU, 2x2 max-pool] with channel
/// counts doubling per level (the paper's reference config is
/// [64,128,256,512]; here the base count is configurable so the model fits
/// a CPU budget). Decoder: bilinear upsampling + skip concatenation + 3x3
/// conv, restoring the original resolution; a final 1x1 conv maps back to
/// `width` channels so the bypass adds to the Fourier and linear paths.
///
/// Mesh invariance caveat: pooling halves resolution, so at forward time
/// the effective depth is clamped to keep the bottleneck at least 4x4. The
/// unused deeper levels simply receive no gradient at coarse resolutions —
/// this is what lets one parameter set train at 40x40 and infer at 64x64.
class UNet : public nn::Module {
 public:
  /// `width`: channels entering/leaving the bypass.
  /// `base`: channels of the first encoder level.
  /// `depth`: maximum number of pooling levels.
  UNet(int64_t width, int64_t base, int64_t depth, Rng& rng);

  Var forward(const Var& x) override;

 private:
  int64_t width_, base_, depth_;
  nn::Conv2d* in_conv_;
  std::vector<nn::Conv2d*> enc_;   // conv at each level (after pool)
  std::vector<nn::Conv2d*> dec_;   // conv after upsample+skip concat
  nn::PointwiseConv* out_conv_;
  nn::ReLU relu_;
  nn::MaxPool2d pool_{2};
  nn::UpsampleBilinear up_{2};
};

}  // namespace core
}  // namespace saufno
