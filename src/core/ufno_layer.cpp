#include "core/ufno_layer.h"

#include <memory>

#include "plan/trace.h"

namespace saufno {
namespace core {

UFourierLayer::UFourierLayer(const Config& cfg, Rng& rng) : cfg_(cfg) {
  k_ = register_module("spectral",
                       std::make_shared<SpectralConv2d>(
                           cfg.width, cfg.width, cfg.modes1, cfg.modes2, rng));
  if (cfg.with_unet) {
    u_ = register_module(
        "unet",
        std::make_shared<UNet>(cfg.width, cfg.unet_base, cfg.unet_depth, rng));
  }
  w_ = register_module(
      "linear", std::make_shared<nn::PointwiseConv>(cfg.width, cfg.width, rng));
}

Var UFourierLayer::forward(const Var& v) {
  plan::TraceScope scope(cfg_.with_unet ? "ufourier" : "fourier");
  Var s = ops::add(k_->forward(v), w_->forward(v));
  if (u_ != nullptr) s = ops::add(s, u_->forward(v));
  return cfg_.final_activation ? ops::gelu(s) : s;
}

}  // namespace core
}  // namespace saufno
