#pragma once

#include "autograd/spectral_ops.h"
#include "nn/init.h"
#include "nn/module.h"

namespace saufno {
namespace core {

/// Fourier-domain convolution module — the kernel integral transformation K
/// of Eq. (6)/(8). Keeps `modes1` frequencies along H (positive and
/// negative) and `modes2` along W, with a learnable complex kernel per
/// (cin, cout, mode) triple.
///
/// The module is resolution invariant: the same weights apply at any H, W
/// (modes are clamped to the resolution's Nyquist limit, see
/// autograd/spectral_ops.h), which is the property the paper's transfer
/// learning between 40x40 and 64x64 grids relies on.
class SpectralConv2d : public nn::Module {
 public:
  SpectralConv2d(int64_t cin, int64_t cout, int64_t modes1, int64_t modes2,
                 Rng& rng);

  Var forward(const Var& x) override;

  int64_t modes1() const { return m1_; }
  int64_t modes2() const { return m2_; }

 private:
  int64_t cin_, cout_, m1_, m2_;
  Var weight_;  // [cin, cout, 2*m1, m2, 2] (re, im)
};

}  // namespace core
}  // namespace saufno
