#pragma once

#include "core/spectral_conv.h"
#include "core/unet.h"
#include "nn/linear.h"

namespace saufno {
namespace core {

/// One iterative layer of the operator (Section III-A).
///
/// Plain Fourier layer (Eq. 6):    v' = sigma( K v + W v )
/// U-Fourier layer    (Eq. 8):     v' = sigma( K v + U v + W v )
/// where K is the spectral convolution, U the U-Net bypass and W a 1x1
/// channel map ("linear bias term"). `with_unet` selects between the two,
/// so the same class implements both halves of the iterative stack
/// v_l0 -> ... -> v_lL -> v_m0 -> ... -> v_mM (Eq. 7).
class UFourierLayer : public nn::Module {
 public:
  struct Config {
    int64_t width = 16;       // channel dimension c
    int64_t modes1 = 12;      // kept Fourier modes along H
    int64_t modes2 = 12;      // kept Fourier modes along W
    bool with_unet = true;    // U-Fourier (true) vs plain Fourier (false)
    int64_t unet_base = 16;   // first-level U-Net channels
    int64_t unet_depth = 3;   // max pooling levels in the bypass
    bool final_activation = true;  // last layer may skip sigma
  };

  UFourierLayer(const Config& cfg, Rng& rng);

  Var forward(const Var& v) override;

 private:
  Config cfg_;
  SpectralConv2d* k_;
  UNet* u_ = nullptr;
  nn::PointwiseConv* w_;
};

}  // namespace core
}  // namespace saufno
