#include "core/volumetric.h"

#include <memory>

#include "common/logging.h"
#include "plan/trace.h"

namespace saufno {
namespace core {

SpectralConv3d::SpectralConv3d(int64_t cin, int64_t cout, int64_t modes1,
                               int64_t modes2, int64_t modes3, Rng& rng)
    : cin_(cin), cout_(cout), m1_(modes1), m2_(modes2), m3_(modes3) {
  weight_ = register_parameter(
      "weight",
      Var(nn::spectral_init({cin_, cout_, 2 * m1_, 2 * m2_, m3_, 2}, cin_,
                            cout_, rng),
          /*requires_grad=*/true));
}

Var SpectralConv3d::forward(const Var& x) {
  plan::TraceScope scope("spectral3d");
  return ops::spectral_conv3d(x, weight_, m1_, m2_, m3_, cout_);
}

Fno3d::Fno3d(const Config& cfg, Rng& rng) : cfg_(cfg) {
  lift_ = register_module(
      "lift",
      std::make_shared<nn::PointwiseConv>(cfg.in_channels, cfg.width, rng));
  for (int64_t i = 0; i < cfg.n_layers; ++i) {
    spectral_.push_back(register_module(
        "spectral" + std::to_string(i),
        std::make_shared<SpectralConv3d>(cfg.width, cfg.width, cfg.modes1,
                                         cfg.modes2, cfg.modes3, rng)));
    linear_.push_back(register_module(
        "linear" + std::to_string(i),
        std::make_shared<nn::PointwiseConv>(cfg.width, cfg.width, rng)));
  }
  proj1_ = register_module(
      "proj1",
      std::make_shared<nn::PointwiseConv>(cfg.width, 2 * cfg.width, rng));
  proj2_ = register_module(
      "proj2", std::make_shared<nn::PointwiseConv>(2 * cfg.width,
                                                   cfg.out_channels, rng));
}

Var Fno3d::pointwise5d(nn::PointwiseConv& pw, const Var& x) {
  // PointwiseConv acts per spatial position; fold depth into the height
  // axis, apply, and unfold — exactly equivalent for a 1x1 channel map.
  const int64_t B = x.size(0), C = x.size(1), D = x.size(2), H = x.size(3),
                W = x.size(4);
  Var folded = ops::reshape(x, {B, C, D * H, W});
  Var y = pw.forward(folded);
  return ops::reshape(y, {B, y.size(1), D, H, W});
}

Var Fno3d::forward(const Var& x) {
  plan::TraceScope scope("fno3d");
  SAUFNO_CHECK(x.value().dim() == 5, "Fno3d input must be [B,C,D,H,W]");
  SAUFNO_CHECK(x.size(1) == cfg_.in_channels,
               "Fno3d expects " + std::to_string(cfg_.in_channels) +
                   " channels, got " + std::to_string(x.size(1)));
  Var v = ops::gelu(pointwise5d(*lift_, x));
  for (std::size_t i = 0; i < spectral_.size(); ++i) {
    Var s = ops::add(spectral_[i]->forward(v),
                     pointwise5d(*linear_[i], v));
    v = ops::gelu(s);
  }
  return pointwise5d(*proj2_, ops::gelu(pointwise5d(*proj1_, v)));
}

}  // namespace core
}  // namespace saufno
