#include "core/sau_fno.h"

#include <memory>

#include "common/logging.h"
#include "plan/trace.h"

namespace saufno {
namespace core {

SauFno::Config SauFno::Config::chip_default(int64_t in_ch, int64_t out_ch) {
  Config c;
  c.in_channels = in_ch;
  c.out_channels = out_ch;
  return c;
}

SauFno::SauFno(const Config& cfg, Rng& rng) : cfg_(cfg) {
  SAUFNO_CHECK(cfg.n_fourier + cfg.n_ufourier >= 1,
               "SauFno needs at least one iterative layer");
  // Lifting P: two-layer pointwise MLP a(x) -> R^width.
  lift1_ = register_module(
      "lift1", std::make_shared<nn::PointwiseConv>(cfg.in_channels,
                                                   cfg.width, rng));
  lift2_ = register_module(
      "lift2",
      std::make_shared<nn::PointwiseConv>(cfg.width, cfg.width, rng));

  const int64_t total = cfg.n_fourier + cfg.n_ufourier;
  for (int64_t i = 0; i < total; ++i) {
    UFourierLayer::Config lc;
    lc.width = cfg.width;
    lc.modes1 = cfg.modes1;
    lc.modes2 = cfg.modes2;
    lc.with_unet = i >= cfg.n_fourier;  // plain Fourier first, then U-Fourier
    lc.unet_base = cfg.unet_base;
    lc.unet_depth = cfg.unet_depth;
    lc.final_activation = true;
    layers_.push_back(register_module(
        "layer" + std::to_string(i),
        std::make_shared<UFourierLayer>(lc, rng)));
    if (cfg.attention == AttentionPlacement::kAll) {
      attn_.push_back(register_module(
          "attn" + std::to_string(i),
          std::make_shared<SelfAttentionBlock>(cfg.width, cfg.attention_dim,
                                               rng)));
    }
  }
  if (cfg.attention == AttentionPlacement::kLast) {
    attn_.push_back(register_module(
        "attn_last", std::make_shared<SelfAttentionBlock>(
                         cfg.width, cfg.attention_dim, rng)));
  }

  // Projection Q: pointwise MLP back to the physical output space.
  proj1_ = register_module(
      "proj1",
      std::make_shared<nn::PointwiseConv>(cfg.width, 2 * cfg.width, rng));
  proj2_ = register_module(
      "proj2", std::make_shared<nn::PointwiseConv>(2 * cfg.width,
                                                   cfg.out_channels, rng));
}

Var SauFno::forward(const Var& x) {
  plan::TraceScope scope("sau_fno");
  SAUFNO_CHECK(x.value().dim() == 4, "SauFno input must be [B,C,H,W]");
  SAUFNO_CHECK(x.size(1) == cfg_.in_channels,
               "SauFno expects " + std::to_string(cfg_.in_channels) +
                   " input channels, got " + std::to_string(x.size(1)));
  Var v = lift2_->forward(ops::gelu(lift1_->forward(x)));
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    v = layers_[i]->forward(v);
    if (cfg_.attention == AttentionPlacement::kAll) {
      v = attn_[i]->forward(v);
    }
  }
  // V_t -> V'_t: the attention refinement on the last feature map.
  if (cfg_.attention == AttentionPlacement::kLast) {
    v = attn_.back()->forward(v);
  }
  return proj2_->forward(ops::gelu(proj1_->forward(v)));
}

}  // namespace core
}  // namespace saufno
