#include "core/spectral_conv.h"

#include "plan/trace.h"

namespace saufno {
namespace core {

SpectralConv2d::SpectralConv2d(int64_t cin, int64_t cout, int64_t modes1,
                               int64_t modes2, Rng& rng)
    : cin_(cin), cout_(cout), m1_(modes1), m2_(modes2) {
  weight_ = register_parameter(
      "weight",
      Var(nn::spectral_init({cin_, cout_, 2 * m1_, m2_, 2}, cin_, cout_, rng),
          /*requires_grad=*/true));
}

Var SpectralConv2d::forward(const Var& x) {
  plan::TraceScope scope("spectral");
  return ops::spectral_conv2d(x, weight_, m1_, m2_, cout_);
}

}  // namespace core
}  // namespace saufno
