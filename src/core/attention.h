#pragma once

#include "nn/linear.h"

namespace saufno {
namespace core {

/// Self-attention block of Section III-B (Fig. 2 / Eq. 9-10).
///
/// All embeddings are 1x1 convolutions, which is what preserves the
/// operator's mesh invariance: the block works at any H, W with one
/// parameter set.
///
///   Q = W_q V_t,  K = W_k V_t           (d-channel embeddings)
///   s_ij = Q_i^T K_j / sqrt(d),  A_s = softmax_j(s_ij)   (spatial map)
///   A_c = W_h V_t                        (channel-attention/value map)
///   V'_i = sum_j A_s[i, j] * A_c[:, j]   (combination of Eq. 10)
///   out  = V_t + W_o V'                  (residual, 1x1 output map)
///
/// The paper's literal "A_s (x) A_c elementwise" is shape-inconsistent
/// (A_s is NxN, A_c is CxN); the standard non-local-block reading above is
/// the faithful executable interpretation — each position aggregates the
/// value map with its spatial attention weights (see DESIGN.md).
class SelfAttentionBlock : public nn::Module {
 public:
  /// `channels`: feature channels of V_t; `d`: Q/K embedding dimension
  /// (the paper uses d = 64 at width 64; we default to channels).
  SelfAttentionBlock(int64_t channels, int64_t d, Rng& rng);

  Var forward(const Var& x) override;

 private:
  int64_t channels_, d_;
  nn::PointwiseConv* wq_;
  nn::PointwiseConv* wk_;
  nn::PointwiseConv* wh_;
  nn::PointwiseConv* wo_;
};

}  // namespace core
}  // namespace saufno
