#include "core/unet.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "plan/trace.h"

namespace saufno {
namespace core {

UNet::UNet(int64_t width, int64_t base, int64_t depth, Rng& rng)
    : width_(width), base_(base), depth_(depth) {
  SAUFNO_CHECK(depth >= 1, "UNet depth must be >= 1");
  in_conv_ = register_module(
      "in_conv", std::make_shared<nn::Conv2d>(width, base, 3, rng, 1, 1));
  int64_t ch = base;
  for (int64_t l = 0; l < depth; ++l) {
    enc_.push_back(register_module(
        "enc" + std::to_string(l),
        std::make_shared<nn::Conv2d>(ch, ch * 2, 3, rng, 1, 1)));
    ch *= 2;
  }
  for (int64_t l = depth - 1; l >= 0; --l) {
    // After upsample, the skip connection concatenates the encoder feature
    // (ch/2 channels) with the upsampled one (ch channels).
    dec_.push_back(register_module(
        "dec" + std::to_string(l),
        std::make_shared<nn::Conv2d>(ch + ch / 2, ch / 2, 3, rng, 1, 1)));
    ch /= 2;
  }
  out_conv_ = register_module(
      "out_conv", std::make_shared<nn::PointwiseConv>(base, width, rng));
}

Var UNet::forward(const Var& x) {
  plan::TraceScope scope("unet");
  SAUFNO_CHECK(x.value().dim() == 4, "UNet input must be [B,C,H,W]");
  const int64_t h = x.size(2), w = x.size(3);
  // Clamp depth so the bottleneck keeps at least 4x4 texels.
  int64_t eff = 0;
  {
    int64_t m = std::min(h, w);
    while (eff < depth_ && m >= 8 && m % 2 == 0) {
      m /= 2;
      ++eff;
    }
  }

  Var cur = relu_.forward(in_conv_->forward(x));
  std::vector<Var> skips;  // encoder outputs, finest first
  for (int64_t l = 0; l < eff; ++l) {
    skips.push_back(cur);
    cur = pool_.forward(cur);
    cur = relu_.forward(enc_[static_cast<std::size_t>(l)]->forward(cur));
  }
  for (int64_t l = eff - 1; l >= 0; --l) {
    cur = up_.forward(cur);
    cur = ops::cat({cur, skips[static_cast<std::size_t>(l)]}, 1);
    // dec_ is stored deepest-first: dec_[depth-1-l] handles level l.
    cur = relu_.forward(
        dec_[static_cast<std::size_t>(depth_ - 1 - l)]->forward(cur));
  }
  return out_conv_->forward(cur);
}

}  // namespace core
}  // namespace saufno
