#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

namespace saufno {

using cfloat = std::complex<float>;

namespace fft {

/// Immutable, shareable transform plan for one length. Built once per
/// length by the global cache and used concurrently by every thread —
/// execution never mutates the plan.
struct FftPlan {
  int64_t n = 0;
  bool pow2 = false;

  // Radix-2 tables (pow2 lengths): precomputed bit-reversal permutation and
  // per-stage twiddle factors, computed in double precision and rounded
  // once to float. The seed's `w *= wlen` recurrence accumulated O(len)
  // rounding error across each stage; the tables kill that error AND the
  // per-butterfly complex multiply that maintained it.
  std::vector<int32_t> bitrev;      // size n
  std::vector<cfloat> twiddle_fwd;  // size n-1: stages len=2,4,..,n
  std::vector<cfloat> twiddle_inv;  // concatenated at offset len/2-1

  // Bluestein tables (non-pow2 lengths): the chirp exp(-i*pi*k^2/n) and the
  // PRE-TRANSFORMED b-spectrum for both directions, so each call performs
  // 2 power-of-two FFTs instead of the seed's 3.
  int64_t m = 0;                 // next_pow2(2n-1)
  std::vector<cfloat> chirp_fwd;  // size n; inverse chirp is its conjugate
  std::vector<cfloat> bspec_fwd;  // size m: FFT_m of the forward b sequence
  std::vector<cfloat> bspec_inv;  // size m: same for the inverse sign
  std::shared_ptr<const FftPlan> sub;  // plan for length m
};

/// Real-transform plan: the half-length complex sub-plan (even n) or the
/// full-length fallback plan (odd n), plus the unpack twiddles
/// exp(-2*pi*i*k/n) for k = 0..n/2, double-computed.
struct RfftPlan {
  int64_t n = 0;
  bool even = false;
  std::shared_ptr<const FftPlan> sub;
  std::vector<cfloat> unpack;  // size n/2+1
};

/// Thread-safe, lazily-populated plan lookup. Concurrent first use of the
/// same length may build the plan more than once, but exactly one copy is
/// published and every caller receives it.
std::shared_ptr<const FftPlan> get_plan(int64_t n);
std::shared_ptr<const RfftPlan> get_rfft_plan(int64_t n);

/// Execute one in-place length-plan.n transform using a prefetched plan.
/// Batched drivers fetch the plan once and call this per line, so the cache
/// mutex is off the per-transform path.
void run_plan(cfloat* x, const FftPlan& plan, bool inverse);

/// Test/bench hooks.
void clear_plan_cache();
int64_t plan_cache_size();  // complex + real plans currently cached

}  // namespace fft
}  // namespace saufno
