#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace saufno {

using cfloat = std::complex<float>;

/// In-place 1-D complex DFT of length n (unnormalized forward; the inverse
/// divides by n). Power-of-two lengths use iterative radix-2 Cooley-Tukey;
/// arbitrary lengths fall back to Bluestein's chirp-z algorithm so the
/// spectral convolutions work at any grid resolution (the paper trains at
/// 40×40, which is not a power of two). Bit-reversal permutations, twiddle
/// tables and Bluestein chirp spectra come from the global plan cache
/// (src/fft/plan.h), built once per length and shared by every thread.
void fft_1d(cfloat* x, int64_t n, bool inverse);

/// 2-D transform of `batch` independent row-major [h, w] complex planes
/// stored contiguously. Rows first, then columns via a cache-blocked tiled
/// transpose. Forward is unnormalized; inverse carries the full 1/(h*w)
/// factor.
void fft_2d(cfloat* x, int64_t batch, int64_t h, int64_t w, bool inverse);

/// Convenience: forward 2-D DFT of a real plane into a full complex buffer.
/// Routed through the rfft path; the redundant half of the spectrum is
/// reconstructed by conjugate symmetry.
std::vector<cfloat> fft_2d_real(const float* x, int64_t h, int64_t w);

/// 3-D transform of `batch` independent [d, h, w] complex volumes stored
/// contiguously (used by the volumetric operator that predicts the full
/// 3-D temperature distribution). Forward unnormalized; inverse carries
/// the 1/(d*h*w) factor.
void fft_3d(cfloat* x, int64_t batch, int64_t d, int64_t h, int64_t w,
            bool inverse);

// ---------------------------------------------------------------------------
// Real-input / Hermitian half-spectrum transforms.
//
// A real [h, w] plane has a conjugate-symmetric spectrum
// X[k1, k2] == conj(X[(-k1) mod h, (-k2) mod w]), so only the first
// w/2+1 columns carry information. These entry points compute exactly that
// half (roughly halving FFT flops and spectrum storage versus widening the
// input to complex), and additionally accept a column-truncation count
// `wk <= w/2+1` so spectral layers that keep only m2e low-frequency columns
// pay a per-plane column-pass cost proportional to the KEPT modes, not the
// grid size.
// ---------------------------------------------------------------------------

/// Number of columns in the full half-spectrum of width w.
inline int64_t rfft_cols(int64_t w) { return w / 2 + 1; }

/// Forward real 2-D DFT of `batch` [h, w] real planes into compact [h, wk]
/// complex half-spectra (unnormalized, rows transformed with the real-even
/// packing trick, then full column FFTs on the wk kept columns only).
/// Requires 1 <= wk <= rfft_cols(w).
void rfft_2d(const float* x, cfloat* out, int64_t batch, int64_t h, int64_t w,
             int64_t wk);

/// Inverse of rfft_2d: computes scale * IFFT2 (with the full 1/(h*w)
/// normalization folded in) of the Hermitian extension of the given [h, wk]
/// half-spectra, writing the real result. Columns wk..w/2 are treated as
/// zero. The spec buffer is clobbered (the column pass runs in place).
void irfft_2d(cfloat* spec, float* out, int64_t batch, int64_t h, int64_t w,
              int64_t wk, float scale);

/// 3-D real forward transform into compact [d, h, wk] half-spectra.
/// `mh` prunes the depth pass: the d-axis transform is only performed for
/// h-frequencies kh in [0, mh) ∪ [h-mh, h) (pass mh >= ceil(h/2) for the
/// full set). With a pruned mh, entries at other kh rows hold partially
/// transformed garbage — callers must only read the rows they asked for.
void rfft_3d(const float* x, cfloat* out, int64_t batch, int64_t d, int64_t h,
             int64_t w, int64_t wk, int64_t mh);

/// Inverse of rfft_3d with the same conventions as irfft_2d (full 1/(d*h*w)
/// normalization times `scale`). The caller guarantees the spectrum is zero
/// at kh rows outside the mh set, which lets the depth pass skip them.
/// The spec buffer is clobbered.
void irfft_3d(cfloat* spec, float* out, int64_t batch, int64_t d, int64_t h,
              int64_t w, int64_t wk, int64_t mh, float scale);

}  // namespace saufno
