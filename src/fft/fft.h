#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace saufno {

using cfloat = std::complex<float>;

/// In-place 1-D complex DFT of length n (unnormalized forward; the inverse
/// divides by n). Power-of-two lengths use iterative radix-2 Cooley-Tukey;
/// arbitrary lengths fall back to Bluestein's chirp-z algorithm so the
/// spectral convolutions work at any grid resolution (the paper trains at
/// 40×40, which is not a power of two).
void fft_1d(cfloat* x, int64_t n, bool inverse);

/// 2-D transform of `batch` independent row-major [h, w] complex planes
/// stored contiguously. Rows first, then columns (via a gather buffer).
/// Forward is unnormalized; inverse carries the full 1/(h*w) factor.
void fft_2d(cfloat* x, int64_t batch, int64_t h, int64_t w, bool inverse);

/// Convenience: forward 2-D DFT of a real plane into a complex buffer.
std::vector<cfloat> fft_2d_real(const float* x, int64_t h, int64_t w);

/// 3-D transform of `batch` independent [d, h, w] complex volumes stored
/// contiguously (used by the volumetric operator that predicts the full
/// 3-D temperature distribution). Forward unnormalized; inverse carries
/// the 1/(d*h*w) factor.
void fft_3d(cfloat* x, int64_t batch, int64_t d, int64_t h, int64_t w,
            bool inverse);

}  // namespace saufno
