#include "fft/plan.h"

#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"
#include "obs/metrics.h"
#include "runtime/workspace.h"

namespace saufno {
namespace fft {
namespace {

bool is_pow2(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

int64_t next_pow2(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::mutex g_cache_m;
std::unordered_map<int64_t, std::shared_ptr<const FftPlan>> g_plans;
std::unordered_map<int64_t, std::shared_ptr<const RfftPlan>> g_rplans;

/// Cache telemetry via the metrics registry (batched drivers fetch the
/// plan once per call, so these tick at driver frequency, not per line).
/// Steady-state serving should show misses frozen at the warmup count.
struct PlanCacheMetrics {
  obs::Counter& hits = obs::counter("fft.plan_cache.hits");
  obs::Counter& misses = obs::counter("fft.plan_cache.misses");
};

PlanCacheMetrics& plan_metrics() {
  static PlanCacheMetrics m;
  return m;
}

void fill_pow2_tables(FftPlan& p) {
  const int64_t n = p.n;
  p.bitrev.resize(static_cast<std::size_t>(n));
  for (int64_t i = 0, j = 0; i < n; ++i) {
    p.bitrev[static_cast<std::size_t>(i)] = static_cast<int32_t>(j);
    int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
  }
  p.twiddle_fwd.resize(static_cast<std::size_t>(n - 1));
  p.twiddle_inv.resize(static_cast<std::size_t>(n - 1));
  for (int64_t len = 2; len <= n; len <<= 1) {
    const std::size_t off = static_cast<std::size_t>(len / 2 - 1);
    for (int64_t k = 0; k < len / 2; ++k) {
      const double ang = 2.0 * M_PI * static_cast<double>(k) / len;
      const float c = static_cast<float>(std::cos(ang));
      const float s = static_cast<float>(std::sin(ang));
      p.twiddle_fwd[off + static_cast<std::size_t>(k)] = cfloat(c, -s);
      p.twiddle_inv[off + static_cast<std::size_t>(k)] = cfloat(c, s);
    }
  }
}

/// Radix-2 butterflies on a prefetched plan. The complex multiply is spelled
/// out in float so the compiler vectorizes it instead of calling __mulsc3.
void fft_pow2_exec(cfloat* x, const FftPlan& p, bool inverse) {
  const int64_t n = p.n;
  const int32_t* rev = p.bitrev.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t j = rev[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  const cfloat* tw = (inverse ? p.twiddle_inv : p.twiddle_fwd).data();
  float* xf = reinterpret_cast<float*>(x);
  for (int64_t len = 2; len <= n; len <<= 1) {
    const float* stage = reinterpret_cast<const float*>(tw + (len / 2 - 1));
    const int64_t half = len / 2;
    for (int64_t i = 0; i < n; i += len) {
      float* lo = xf + 2 * i;
      float* hi = lo + 2 * half;
      for (int64_t k = 0; k < half; ++k) {
        const float wr = stage[2 * k], wi = stage[2 * k + 1];
        const float hr = hi[2 * k], hx = hi[2 * k + 1];
        const float vr = hr * wr - hx * wi;
        const float vi = hr * wi + hx * wr;
        const float ur = lo[2 * k], ui = lo[2 * k + 1];
        lo[2 * k] = ur + vr;
        lo[2 * k + 1] = ui + vi;
        hi[2 * k] = ur - vr;
        hi[2 * k + 1] = ui - vi;
      }
    }
  }
  if (inverse) {
    const float inv = 1.f / static_cast<float>(n);
    for (int64_t i = 0; i < 2 * n; ++i) xf[i] *= inv;
  }
}

/// Bluestein chirp-z with cached chirp and pre-transformed b-spectrum:
/// 2 pow2 transforms per call (forward of `a`, inverse of the product).
void fft_bluestein_exec(cfloat* x, const FftPlan& p, bool inverse) {
  const int64_t n = p.n, m = p.m;
  runtime::Scratch<cfloat> buf(static_cast<std::size_t>(m));
  cfloat* a = buf.data();
  const cfloat* chirp = p.chirp_fwd.data();
  for (int64_t k = 0; k < n; ++k) {
    const cfloat c = inverse ? std::conj(chirp[k]) : chirp[k];
    a[k] = x[k] * c;
  }
  for (int64_t k = n; k < m; ++k) a[k] = cfloat(0.f, 0.f);
  fft_pow2_exec(a, *p.sub, false);
  const cfloat* bs = (inverse ? p.bspec_inv : p.bspec_fwd).data();
  for (int64_t k = 0; k < m; ++k) a[k] *= bs[k];
  fft_pow2_exec(a, *p.sub, true);
  for (int64_t k = 0; k < n; ++k) {
    const cfloat c = inverse ? std::conj(chirp[k]) : chirp[k];
    x[k] = a[k] * c;
  }
  if (inverse) {
    const float inv = 1.f / static_cast<float>(n);
    for (int64_t k = 0; k < n; ++k) x[k] *= inv;
  }
}

std::shared_ptr<const FftPlan> build_plan(int64_t n) {
  auto plan = std::make_shared<FftPlan>();
  plan->n = n;
  plan->pow2 = is_pow2(n);
  if (plan->pow2) {
    fill_pow2_tables(*plan);
    return plan;
  }
  plan->m = next_pow2(2 * n - 1);
  plan->sub = get_plan(plan->m);  // pow2, so no further recursion
  plan->chirp_fwd.resize(static_cast<std::size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for large n.
    const int64_t k2 = (k * k) % (2 * n);
    const double ang = -M_PI * static_cast<double>(k2) / static_cast<double>(n);
    plan->chirp_fwd[static_cast<std::size_t>(k)] =
        cfloat(static_cast<float>(std::cos(ang)),
               static_cast<float>(std::sin(ang)));
  }
  auto make_bspec = [&](bool inverse_sign) {
    std::vector<cfloat> b(static_cast<std::size_t>(plan->m), cfloat(0.f, 0.f));
    for (int64_t k = 0; k < n; ++k) {
      const cfloat chirp_k = inverse_sign
                                 ? std::conj(plan->chirp_fwd[static_cast<std::size_t>(k)])
                                 : plan->chirp_fwd[static_cast<std::size_t>(k)];
      const cfloat v = std::conj(chirp_k);
      b[static_cast<std::size_t>(k)] = v;
      if (k > 0) b[static_cast<std::size_t>(plan->m - k)] = v;
    }
    fft_pow2_exec(b.data(), *plan->sub, false);
    return b;
  };
  plan->bspec_fwd = make_bspec(false);
  plan->bspec_inv = make_bspec(true);
  return plan;
}

}  // namespace

std::shared_ptr<const FftPlan> get_plan(int64_t n) {
  SAUFNO_CHECK(n >= 1, "fft plan length must be >= 1");
  {
    std::lock_guard<std::mutex> lk(g_cache_m);
    auto it = g_plans.find(n);
    if (it != g_plans.end()) {
      plan_metrics().hits.add();
      return it->second;
    }
  }
  plan_metrics().misses.add();
  // Build outside the lock: plan construction for non-pow2 lengths calls
  // get_plan(m) recursively and may take a while; racing first users build
  // duplicates, but only the first insert is published.
  auto plan = build_plan(n);
  std::lock_guard<std::mutex> lk(g_cache_m);
  auto [it, inserted] = g_plans.emplace(n, std::move(plan));
  return it->second;
}

std::shared_ptr<const RfftPlan> get_rfft_plan(int64_t n) {
  SAUFNO_CHECK(n >= 1, "rfft plan length must be >= 1");
  {
    std::lock_guard<std::mutex> lk(g_cache_m);
    auto it = g_rplans.find(n);
    if (it != g_rplans.end()) {
      plan_metrics().hits.add();
      return it->second;
    }
  }
  plan_metrics().misses.add();
  auto plan = std::make_shared<RfftPlan>();
  plan->n = n;
  plan->even = (n % 2 == 0);
  if (n > 1) plan->sub = get_plan(plan->even ? n / 2 : n);
  plan->unpack.resize(static_cast<std::size_t>(n / 2 + 1));
  for (int64_t k = 0; k <= n / 2; ++k) {
    const double ang = -2.0 * M_PI * static_cast<double>(k) / n;
    plan->unpack[static_cast<std::size_t>(k)] =
        cfloat(static_cast<float>(std::cos(ang)),
               static_cast<float>(std::sin(ang)));
  }
  std::lock_guard<std::mutex> lk(g_cache_m);
  auto [it, inserted] = g_rplans.emplace(n, std::move(plan));
  return it->second;
}

void run_plan(cfloat* x, const FftPlan& plan, bool inverse) {
  if (plan.n == 1) return;
  if (plan.pow2) {
    fft_pow2_exec(x, plan, inverse);
  } else {
    fft_bluestein_exec(x, plan, inverse);
  }
}

void clear_plan_cache() {
  std::lock_guard<std::mutex> lk(g_cache_m);
  g_plans.clear();
  g_rplans.clear();
}

int64_t plan_cache_size() {
  std::lock_guard<std::mutex> lk(g_cache_m);
  return static_cast<int64_t>(g_plans.size() + g_rplans.size());
}

}  // namespace fft
}  // namespace saufno
