#include "fft/fft.h"

#include <algorithm>
#include <cmath>

#include "common/fault.h"
#include "common/logging.h"
#include "fft/plan.h"
#include "obs/kernel_profile.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace saufno {
namespace {

using fft::FftPlan;
using fft::RfftPlan;
using fft::get_plan;
using fft::get_rfft_plan;
using fft::run_plan;

/// Column tile width for the cache-blocked column pass: a [len x kColTile]
/// block is gathered into contiguous scratch (transposed), transformed line
/// by line, and scattered back, so the strided plane is touched in
/// row-contiguous segments instead of one element per cache line.
constexpr int64_t kColTile = 16;

/// Transform columns [c0, c1) of a [len x stride] strided layout in place:
/// element (l, j) lives at base[l * stride + j]. `tile` must hold
/// kColTile * len cfloats.
void fft_cols(cfloat* base, int64_t len, int64_t stride, int64_t c0,
              int64_t c1, const FftPlan& plan, bool inverse, cfloat* tile) {
  if (len == 1) return;
  for (int64_t j0 = c0; j0 < c1; j0 += kColTile) {
    const int64_t tw = std::min(kColTile, c1 - j0);
    for (int64_t l = 0; l < len; ++l) {
      const cfloat* row = base + l * stride + j0;
      for (int64_t t = 0; t < tw; ++t) tile[t * len + l] = row[t];
    }
    for (int64_t t = 0; t < tw; ++t) run_plan(tile + t * len, plan, inverse);
    for (int64_t l = 0; l < len; ++l) {
      cfloat* row = base + l * stride + j0;
      for (int64_t t = 0; t < tw; ++t) row[t] = tile[t * len + l];
    }
  }
}

/// Forward real FFT of one length-n row into out[0..wk-1] (wk <= n/2+1).
/// Even lengths use the real-even packing trick (one n/2-point complex FFT
/// plus an O(wk) unpack); odd lengths widen and run the full plan.
/// `scratch` must hold n cfloats.
void rfft_row(const float* in, cfloat* out, const RfftPlan& rp, int64_t wk,
              cfloat* scratch) {
  const int64_t n = rp.n;
  if (n == 1) {
    out[0] = cfloat(in[0], 0.f);
    return;
  }
  if (rp.even) {
    const int64_t n2 = n / 2;
    cfloat* z = scratch;
    for (int64_t j = 0; j < n2; ++j) z[j] = cfloat(in[2 * j], in[2 * j + 1]);
    run_plan(z, *rp.sub, false);
    for (int64_t k = 0; k < wk; ++k) {
      const cfloat zk = z[k == n2 ? 0 : k];
      const cfloat zm = std::conj(z[k == 0 ? 0 : n2 - k]);
      const cfloat e = 0.5f * (zk + zm);
      const cfloat d = zk - zm;
      const cfloat o(0.5f * d.imag(), -0.5f * d.real());  // -i/2 * d
      out[k] = e + rp.unpack[static_cast<std::size_t>(k)] * o;
    }
    return;
  }
  for (int64_t j = 0; j < n; ++j) scratch[j] = cfloat(in[j], 0.f);
  run_plan(scratch, *rp.sub, false);
  for (int64_t k = 0; k < wk; ++k) out[k] = scratch[k];
}

/// Inverse of rfft_row: writes scale * the length-n real signal whose
/// half-spectrum is spec[0..wk-1] extended with zeros up to n/2 and by
/// conjugate symmetry beyond. `scratch` must hold n cfloats.
void irfft_row(const cfloat* spec, float* out, const RfftPlan& rp, int64_t wk,
               float scale, cfloat* scratch) {
  const int64_t n = rp.n;
  if (n == 1) {
    out[0] = scale * spec[0].real();
    return;
  }
  auto at = [&](int64_t k) {
    return k < wk ? spec[k] : cfloat(0.f, 0.f);
  };
  if (rp.even) {
    const int64_t n2 = n / 2;
    cfloat* z = scratch;
    for (int64_t k = 0; k < n2; ++k) {
      const cfloat xk = at(k);
      const cfloat xm = std::conj(at(n2 - k));
      const cfloat e = 0.5f * (xk + xm);
      const cfloat d = 0.5f * (xk - xm);
      // O[k] = d * conj(unpack[k]); Z[k] = E[k] + i * O[k].
      const cfloat w = rp.unpack[static_cast<std::size_t>(k)];
      const cfloat o(d.real() * w.real() + d.imag() * w.imag(),
                     d.imag() * w.real() - d.real() * w.imag());
      z[k] = cfloat(e.real() - o.imag(), e.imag() + o.real());
    }
    run_plan(z, *rp.sub, true);
    for (int64_t j = 0; j < n2; ++j) {
      out[2 * j] = scale * z[j].real();
      out[2 * j + 1] = scale * z[j].imag();
    }
    return;
  }
  scratch[0] = at(0);
  for (int64_t k = 1; k <= (n - 1) / 2; ++k) {
    const cfloat v = at(k);
    scratch[k] = v;
    scratch[n - k] = std::conj(v);
  }
  run_plan(scratch, *rp.sub, true);
  for (int64_t j = 0; j < n; ++j) out[j] = scale * scratch[j].real();
}

int64_t plane_grain(int64_t work_per_plane) {
  return std::max<int64_t>(1, 2048 / std::max<int64_t>(1, work_per_plane));
}

}  // namespace

void fft_1d(cfloat* x, int64_t n, bool inverse) {
  SAUFNO_CHECK(n >= 1, "fft_1d length must be >= 1");
  if (n == 1) return;
  const auto plan = get_plan(n);
  run_plan(x, *plan, inverse);
}

void fft_2d(cfloat* x, int64_t batch, int64_t h, int64_t w, bool inverse) {
  static obs::Histogram& prof_hist = obs::histogram("kernel.fft_2d_us");
  obs::KernelTimer prof_timer(prof_hist, "fft.fft_2d");
  SAUFNO_FAULT_POINT("fft");
  // Two parallel seams: batch (outer) and rows/column-tiles within a plane
  // (nested, decomposes onto the pool when lanes are free — see
  // parallel_for.h). Every line/tile is transformed independently and the
  // nested grains depend only on the shape, so results stay bit-identical
  // for any thread count. With many small planes the outer grain batches
  // them and the inner loops collapse to single inline chunks; a lone big
  // plane splits across its rows instead. Plans are fetched once, outside
  // the per-line loops, so the cache mutex is off the hot path.
  const auto pw = get_plan(w);
  const auto ph = get_plan(h);
  runtime::parallel_for(0, batch, plane_grain(h * w), [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      cfloat* plane = x + b * h * w;
      if (w > 1) {
        runtime::parallel_for(0, h, plane_grain(w), [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) run_plan(plane + i * w, *pw, inverse);
        });
      }
      if (h > 1) {
        // Grain == kColTile keeps chunk edges on tile edges, so the gather/
        // scatter tiling is the same as one sequential full-width call.
        runtime::parallel_for(0, w, kColTile, [&](int64_t c0, int64_t c1) {
          runtime::Scratch<cfloat> tile(static_cast<std::size_t>(kColTile * h));
          fft_cols(plane, h, w, c0, c1, *ph, inverse, tile.data());
        });
      }
    }
  });
}

void fft_3d(cfloat* x, int64_t batch, int64_t d, int64_t h, int64_t w,
            bool inverse) {
  static obs::Histogram& prof_hist = obs::histogram("kernel.fft_3d_us");
  obs::KernelTimer prof_timer(prof_hist, "fft.fft_3d");
  SAUFNO_FAULT_POINT("fft");
  // Planes first (h, w), then 1-D transforms along the depth axis. Each
  // volume's depth pass is independent, so volumes parallelize like planes.
  fft_2d(x, batch * d, h, w, inverse);
  if (d == 1) return;
  const auto pd = get_plan(d);
  const int64_t plane = h * w;
  runtime::parallel_for(0, batch, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      cfloat* vol = x + b * d * plane;
      runtime::parallel_for(0, plane, kColTile, [&](int64_t c0, int64_t c1) {
        runtime::Scratch<cfloat> tile(static_cast<std::size_t>(kColTile * d));
        fft_cols(vol, d, plane, c0, c1, *pd, inverse, tile.data());
      });
    }
  });
}

void rfft_2d(const float* x, cfloat* out, int64_t batch, int64_t h, int64_t w,
             int64_t wk) {
  static obs::Histogram& prof_hist = obs::histogram("kernel.rfft_2d_us");
  obs::KernelTimer prof_timer(prof_hist, "fft.rfft_2d");
  SAUFNO_FAULT_POINT("fft");
  SAUFNO_CHECK(wk >= 1 && wk <= rfft_cols(w),
               "rfft_2d: wk out of range for width " + std::to_string(w));
  const auto rp = get_rfft_plan(w);
  const auto ph = get_plan(h);
  runtime::parallel_for(0, batch, plane_grain(h * w), [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* in = x + b * h * w;
      cfloat* plane = out + b * h * wk;
      runtime::parallel_for(0, h, plane_grain(w), [&](int64_t i0, int64_t i1) {
        runtime::Scratch<cfloat> row(static_cast<std::size_t>(w));
        for (int64_t i = i0; i < i1; ++i) {
          rfft_row(in + i * w, plane + i * wk, *rp, wk, row.data());
        }
      });
      if (h > 1) {
        runtime::parallel_for(0, wk, kColTile, [&](int64_t c0, int64_t c1) {
          runtime::Scratch<cfloat> tile(static_cast<std::size_t>(kColTile * h));
          fft_cols(plane, h, wk, c0, c1, *ph, /*inverse=*/false, tile.data());
        });
      }
    }
  });
}

void irfft_2d(cfloat* spec, float* out, int64_t batch, int64_t h, int64_t w,
              int64_t wk, float scale) {
  static obs::Histogram& prof_hist = obs::histogram("kernel.irfft_2d_us");
  obs::KernelTimer prof_timer(prof_hist, "fft.irfft_2d");
  SAUFNO_FAULT_POINT("fft");
  SAUFNO_CHECK(wk >= 1 && wk <= rfft_cols(w),
               "irfft_2d: wk out of range for width " + std::to_string(w));
  const auto rp = get_rfft_plan(w);
  const auto ph = get_plan(h);
  runtime::parallel_for(0, batch, plane_grain(h * w), [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      cfloat* plane = spec + b * h * wk;
      float* dst = out + b * h * w;
      if (h > 1) {
        runtime::parallel_for(0, wk, kColTile, [&](int64_t c0, int64_t c1) {
          runtime::Scratch<cfloat> tile(static_cast<std::size_t>(kColTile * h));
          fft_cols(plane, h, wk, c0, c1, *ph, /*inverse=*/true, tile.data());
        });
      }
      runtime::parallel_for(0, h, plane_grain(w), [&](int64_t i0, int64_t i1) {
        runtime::Scratch<cfloat> row(static_cast<std::size_t>(w));
        for (int64_t i = i0; i < i1; ++i) {
          irfft_row(plane + i * wk, dst + i * w, *rp, wk, scale, row.data());
        }
      });
    }
  });
}

namespace {

/// The pruned kh row set is [0, mh) ∪ [h-mh, h) — or every row when the two
/// halves meet. Expressed as a count + index map so the rows can be walked
/// by a parallel_for (shape-only chunking over [0, kept_row_count)).
int64_t kept_row_count(int64_t h, int64_t mh) {
  return 2 * mh >= h ? h : 2 * mh;
}

int64_t kept_row(int64_t h, int64_t mh, int64_t i) {
  if (2 * mh >= h) return i;
  return i < mh ? i : h - 2 * mh + i;
}

}  // namespace

void rfft_3d(const float* x, cfloat* out, int64_t batch, int64_t d, int64_t h,
             int64_t w, int64_t wk, int64_t mh) {
  static obs::Histogram& prof_hist = obs::histogram("kernel.rfft_3d_us");
  obs::KernelTimer prof_timer(prof_hist, "fft.rfft_3d");
  SAUFNO_FAULT_POINT("fft");
  SAUFNO_CHECK(wk >= 1 && wk <= rfft_cols(w),
               "rfft_3d: wk out of range for width " + std::to_string(w));
  const auto rp = get_rfft_plan(w);
  const auto ph = get_plan(h);
  const auto pd = get_plan(d);
  const int64_t cvol = d * h * wk;  // compact volume
  // Outer seam: volumes. Nested seams (decompose when lanes are free): the
  // d*h real rows, then per-slice h-column passes, then the pruned depth
  // rows. All grains depend only on the shape, so bit-identity holds at
  // every thread count.
  runtime::parallel_for(0, batch, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* in = x + b * d * h * w;
      cfloat* vol = out + b * cvol;
      runtime::parallel_for(0, d * h, plane_grain(w), [&](int64_t l0, int64_t l1) {
        runtime::Scratch<cfloat> row(static_cast<std::size_t>(w));
        for (int64_t l = l0; l < l1; ++l) {
          rfft_row(in + l * w, vol + l * wk, *rp, wk, row.data());
        }
      });
      if (h > 1) {
        runtime::parallel_for(0, d, 1, [&](int64_t d0, int64_t d1) {
          runtime::Scratch<cfloat> tile(static_cast<std::size_t>(kColTile * h));
          for (int64_t id = d0; id < d1; ++id) {
            fft_cols(vol + id * h * wk, h, wk, 0, wk, *ph, /*inverse=*/false,
                     tile.data());
          }
        });
      }
      if (d > 1) {
        const int64_t kept = kept_row_count(h, mh);
        runtime::parallel_for(0, kept, 1, [&](int64_t k0, int64_t k1) {
          runtime::Scratch<cfloat> tile(static_cast<std::size_t>(kColTile * d));
          for (int64_t i = k0; i < k1; ++i) {
            fft_cols(vol + kept_row(h, mh, i) * wk, d, h * wk, 0, wk, *pd,
                     /*inverse=*/false, tile.data());
          }
        });
      }
    }
  });
}

void irfft_3d(cfloat* spec, float* out, int64_t batch, int64_t d, int64_t h,
              int64_t w, int64_t wk, int64_t mh, float scale) {
  static obs::Histogram& prof_hist = obs::histogram("kernel.irfft_3d_us");
  obs::KernelTimer prof_timer(prof_hist, "fft.irfft_3d");
  SAUFNO_FAULT_POINT("fft");
  SAUFNO_CHECK(wk >= 1 && wk <= rfft_cols(w),
               "irfft_3d: wk out of range for width " + std::to_string(w));
  const auto rp = get_rfft_plan(w);
  const auto ph = get_plan(h);
  const auto pd = get_plan(d);
  const int64_t cvol = d * h * wk;
  // Mirror of rfft_3d: pruned depth rows, per-slice h-columns, then the
  // d*h real rows, each a nested shape-only-chunked parallel_for.
  runtime::parallel_for(0, batch, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      cfloat* vol = spec + b * cvol;
      float* dst = out + b * d * h * w;
      if (d > 1) {
        const int64_t kept = kept_row_count(h, mh);
        runtime::parallel_for(0, kept, 1, [&](int64_t k0, int64_t k1) {
          runtime::Scratch<cfloat> tile(static_cast<std::size_t>(kColTile * d));
          for (int64_t i = k0; i < k1; ++i) {
            fft_cols(vol + kept_row(h, mh, i) * wk, d, h * wk, 0, wk, *pd,
                     /*inverse=*/true, tile.data());
          }
        });
      }
      if (h > 1) {
        runtime::parallel_for(0, d, 1, [&](int64_t d0, int64_t d1) {
          runtime::Scratch<cfloat> tile(static_cast<std::size_t>(kColTile * h));
          for (int64_t id = d0; id < d1; ++id) {
            fft_cols(vol + id * h * wk, h, wk, 0, wk, *ph, /*inverse=*/true,
                     tile.data());
          }
        });
      }
      runtime::parallel_for(0, d * h, plane_grain(w), [&](int64_t l0, int64_t l1) {
        runtime::Scratch<cfloat> row(static_cast<std::size_t>(w));
        for (int64_t l = l0; l < l1; ++l) {
          irfft_row(vol + l * wk, dst + l * w, *rp, wk, scale, row.data());
        }
      });
    }
  });
}

std::vector<cfloat> fft_2d_real(const float* x, int64_t h, int64_t w) {
  const int64_t wk = rfft_cols(w);
  runtime::Scratch<cfloat> half(static_cast<std::size_t>(h * wk));
  rfft_2d(x, half.data(), 1, h, w, wk);
  std::vector<cfloat> out(static_cast<std::size_t>(h * w));
  for (int64_t k1 = 0; k1 < h; ++k1) {
    for (int64_t k2 = 0; k2 < w; ++k2) {
      out[static_cast<std::size_t>(k1 * w + k2)] =
          k2 < wk ? half.data()[k1 * wk + k2]
                  : std::conj(half.data()[((h - k1) % h) * wk + (w - k2)]);
    }
  }
  return out;
}

}  // namespace saufno
