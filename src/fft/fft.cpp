#include "fft/fft.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "runtime/parallel_for.h"

namespace saufno {
namespace {

bool is_pow2(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

int64_t next_pow2(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Iterative radix-2 Cooley-Tukey; n must be a power of two.
void fft_pow2(cfloat* x, int64_t n, bool inverse) {
  // Bit-reversal permutation.
  for (int64_t i = 1, j = 0; i < n; ++i) {
    int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  const float sign = inverse ? 1.f : -1.f;
  for (int64_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * M_PI / static_cast<double>(len);
    const cfloat wlen(static_cast<float>(std::cos(ang)),
                      static_cast<float>(std::sin(ang)));
    for (int64_t i = 0; i < n; i += len) {
      cfloat w(1.f, 0.f);
      for (int64_t k = 0; k < len / 2; ++k) {
        const cfloat u = x[i + k];
        const cfloat v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const float inv = 1.f / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) x[i] *= inv;
  }
}

/// Bluestein chirp-z: expresses an arbitrary-length DFT as a power-of-two
/// circular convolution. Twiddle tables are recomputed per call; the solver
/// and models only hit this path for non-pow2 grid sizes, where the O(n)
/// table cost is negligible next to the convolution itself.
void fft_bluestein(cfloat* x, int64_t n, bool inverse) {
  const float sign = inverse ? 1.f : -1.f;
  // chirp[k] = exp(sign * i * pi * k^2 / n)
  std::vector<cfloat> chirp(static_cast<std::size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for large n.
    const int64_t k2 = (k * k) % (2 * n);
    const double ang = sign * M_PI * static_cast<double>(k2) / n;
    chirp[static_cast<std::size_t>(k)] =
        cfloat(static_cast<float>(std::cos(ang)),
               static_cast<float>(std::sin(ang)));
  }
  const int64_t m = next_pow2(2 * n - 1);
  std::vector<cfloat> a(static_cast<std::size_t>(m), cfloat(0.f, 0.f));
  std::vector<cfloat> b(static_cast<std::size_t>(m), cfloat(0.f, 0.f));
  for (int64_t k = 0; k < n; ++k) {
    a[static_cast<std::size_t>(k)] = x[k] * chirp[static_cast<std::size_t>(k)];
  }
  b[0] = std::conj(chirp[0]);
  for (int64_t k = 1; k < n; ++k) {
    b[static_cast<std::size_t>(k)] = b[static_cast<std::size_t>(m - k)] =
        std::conj(chirp[static_cast<std::size_t>(k)]);
  }
  fft_pow2(a.data(), m, false);
  fft_pow2(b.data(), m, false);
  for (int64_t k = 0; k < m; ++k) {
    a[static_cast<std::size_t>(k)] *= b[static_cast<std::size_t>(k)];
  }
  fft_pow2(a.data(), m, true);
  for (int64_t k = 0; k < n; ++k) {
    x[k] = a[static_cast<std::size_t>(k)] * chirp[static_cast<std::size_t>(k)];
  }
  if (inverse) {
    const float inv = 1.f / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) x[i] *= inv;
  }
}

}  // namespace

void fft_1d(cfloat* x, int64_t n, bool inverse) {
  SAUFNO_CHECK(n >= 1, "fft_1d length must be >= 1");
  if (n == 1) return;
  if (is_pow2(n)) {
    fft_pow2(x, n, inverse);
  } else {
    fft_bluestein(x, n, inverse);
  }
}

void fft_2d(cfloat* x, int64_t batch, int64_t h, int64_t w, bool inverse) {
  // The batch axis is the parallel seam: each [h, w] plane is transformed
  // independently by one chunk (its own column gather buffer), so results
  // are bit-identical for any thread count. The spectral layers batch all
  // B*C channel planes into one call, which is what makes this pay off.
  const int64_t grain = std::max<int64_t>(1, 2048 / std::max<int64_t>(1, h * w));
  runtime::parallel_for(0, batch, grain, [&](int64_t b0, int64_t b1) {
    std::vector<cfloat> col(static_cast<std::size_t>(h));
    for (int64_t b = b0; b < b1; ++b) {
      cfloat* plane = x + b * h * w;
      for (int64_t i = 0; i < h; ++i) fft_1d(plane + i * w, w, inverse);
      for (int64_t j = 0; j < w; ++j) {
        for (int64_t i = 0; i < h; ++i) col[static_cast<std::size_t>(i)] = plane[i * w + j];
        fft_1d(col.data(), h, inverse);
        for (int64_t i = 0; i < h; ++i) plane[i * w + j] = col[static_cast<std::size_t>(i)];
      }
    }
  });
}

void fft_3d(cfloat* x, int64_t batch, int64_t d, int64_t h, int64_t w,
            bool inverse) {
  // Planes first (h, w), then 1-D transforms along the depth axis. Each
  // volume's depth pass is independent, so volumes parallelize like planes.
  fft_2d(x, batch * d, h, w, inverse);
  const int64_t plane = h * w;
  runtime::parallel_for(0, batch, 1, [&](int64_t b0, int64_t b1) {
    std::vector<cfloat> line(static_cast<std::size_t>(d));
    for (int64_t b = b0; b < b1; ++b) {
      cfloat* vol = x + b * d * plane;
      for (int64_t p = 0; p < plane; ++p) {
        for (int64_t iz = 0; iz < d; ++iz) {
          line[static_cast<std::size_t>(iz)] = vol[iz * plane + p];
        }
        fft_1d(line.data(), d, inverse);
        for (int64_t iz = 0; iz < d; ++iz) {
          vol[iz * plane + p] = line[static_cast<std::size_t>(iz)];
        }
      }
    }
  });
}

std::vector<cfloat> fft_2d_real(const float* x, int64_t h, int64_t w) {
  std::vector<cfloat> out(static_cast<std::size_t>(h * w));
  for (int64_t i = 0; i < h * w; ++i) {
    out[static_cast<std::size_t>(i)] = cfloat(x[i], 0.f);
  }
  fft_2d(out.data(), 1, h, w, /*inverse=*/false);
  return out;
}

}  // namespace saufno
