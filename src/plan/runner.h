#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "nn/module.h"
#include "plan/executor.h"
#include "tensor/tensor.h"

namespace saufno {
namespace plan {

/// Plan execution policy, selected per engine via Config or the
/// SAUFNO_PLAN environment knob (`on` / `off` / `compile-only`, or 1/0/2).
enum class Mode : int {
  kOff = 0,          // always interpret (define-by-run ops::)
  kOn = 1,           // compile per input shape, execute the plan
  kCompileOnly = 2,  // compile + validate, but still execute interpreted
                     // (deploy canary: proves every shape is plan-clean
                     // without routing traffic through the new path)
};

/// Resolve Mode from SAUFNO_PLAN (hardened env_choice parse; unset => kOn).
Mode mode_from_env();
const char* mode_name(Mode m);

/// Serving-side entry point to the plan subsystem: owns one compiled plan
/// per input shape for a fixed model (the FFT plan cache pattern — compile
/// outside the lock, first published wins) and transparently falls back to
/// the interpreted forward when tracing fails or the mode says so.
///
/// Thread-safe. All forwards run under NoGradGuard semantics — the runner
/// is for inference; training keeps the define-by-run path.
class PlanRunner {
 public:
  PlanRunner(std::shared_ptr<nn::Module> model, Mode mode);

  /// Run one forward. Plan-mode results are bit-identical to the
  /// interpreter's; on any compile failure the runner logs once per shape
  /// and interprets instead, so serving never breaks.
  Tensor forward(const Tensor& input);

  /// Force one interpreted forward regardless of mode: the engine's output
  /// guard retries through this when a plan-mode forward produced non-finite
  /// values (degrade once, then fail only the affected requests).
  Tensor forward_interpreted(const Tensor& input) { return interpret(input); }

  Mode mode() const { return mode_; }
  /// Number of shapes with a cached compile attempt (hit or failed).
  std::size_t cache_size() const;
  /// The compiled plan for `shape`, or nullptr (uncompiled / failed).
  std::shared_ptr<PlanExecutor> executor_for(const Shape& shape) const;

  /// Wall-clock phases of one plan compile. `trace_ms` is the recorded
  /// forward through the model (runs every kernel once on a zero probe —
  /// this, not the compiler, is where a multi-second compile goes);
  /// `lower_ms` is TraceSession graph extraction; `passes_ms` is the
  /// compiler pass pipeline (fusion, liveness, arena layout, leveling).
  struct CompileBreakdown {
    double trace_ms = 0.0;
    double lower_ms = 0.0;
    double passes_ms = 0.0;
    double total_ms = 0.0;
  };

  /// Breakdown of the most recent successful compile_shape (any shape);
  /// all-zero until one completes. Also recorded per-compile into the
  /// plan.compile.{trace,lower,passes}_ms obs histograms.
  CompileBreakdown last_compile_breakdown() const;

 private:
  /// Cached compile result; `exec == nullptr` is a negative entry (the
  /// shape traced to an unsupported op) so failures are not re-attempted.
  std::shared_ptr<PlanExecutor> get_or_compile(const Shape& shape);
  std::shared_ptr<PlanExecutor> compile_shape(const Shape& shape);

  Tensor interpret(const Tensor& input);

  std::shared_ptr<nn::Module> model_;
  Mode mode_;
  mutable std::mutex mu_;
  std::map<Shape, std::shared_ptr<PlanExecutor>> cache_;
  CompileBreakdown last_breakdown_;  // guarded by mu_
};

}  // namespace plan
}  // namespace saufno
