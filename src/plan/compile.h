#pragma once

#include "plan/ir.h"

namespace saufno {
namespace plan {

/// Lower a traced Plan into its executable form. Passes, in order:
///
///  1. Constant folding — instructions whose inputs are all kParam/kConst
///     are evaluated once at compile time (through the executor's own
///     kernels, so folded values are bit-identical to what the interpreter
///     would compute) and their outputs become kConst slots. Weight-derived
///     prep work (reshaped attention projections, constant trunk inputs)
///     disappears from the hot path.
///  2. Reshape aliasing — kReshape instructions become zero-cost slot
///     aliases (same storage, new shape).
///  3. Fusion peephole — act(add) and act(add(add)) collapse into
///     kFusedAddAct (bias+activation in one sweep), an activation following
///     a kConv2d folds into the conv's epilogue, and softmax(mul_scalar)
///     becomes kScaledSoftmax. Only float-exact fusions are performed, so
///     the bit-identity contract survives.
///  4. Dead-code elimination of instructions orphaned by 1–3.
///  5. Level assignment — instruction dependency depths, grouped into
///     Plan::levels; instructions sharing a level are independent and may
///     run concurrently.
///  6. Workspace planning — liveness analysis at level granularity, then
///     first-fit packing of every temp slot into ONE arena reservation
///     (Plan::arena_floats), offsets 16-float aligned.
///
/// The returned plan reports fused_ops / folded_ops for benches and tests.
Plan compile(Plan traced);

}  // namespace plan
}  // namespace saufno
