#include "plan/trace.h"

#include <unordered_map>

#include "common/logging.h"

namespace saufno {
namespace plan {
namespace detail_trace {

thread_local TraceSessionImpl* g_active = nullptr;

class TraceSessionImpl {
 public:
  TraceSessionImpl(const std::vector<std::pair<std::string, Var>>& params,
                   const Var& input) {
    SAUFNO_CHECK(input.defined(), "cannot trace an undefined input");
    for (const auto& [name, v] : params) {
      param_name_[v.impl().get()] = name;
      keepalive_.push_back(v);
    }
    plan_.input_slot = add_slot(SlotKind::kInput, input.shape(), Tensor());
    slot_of_[input.impl().get()] = plan_.input_slot;
    plan_.in_shape = input.shape();
    keepalive_.push_back(input);
  }

  void fail(const std::string& reason) {
    if (!failed_) {
      failed_ = true;
      error_ = reason;
    }
  }
  bool ok() const { return !failed_; }
  const std::string& error() const { return error_; }

  void record(OpCode op, std::initializer_list<const Var*> ins,
              const Var& out, tr::Attrs attrs) {
    std::vector<int32_t> in_slots;
    in_slots.reserve(ins.size());
    for (const Var* v : ins) {
      // conv2d passes an undefined Var for "no bias"; skip it (has_bias in
      // ivals tells the executor how many inputs to expect).
      if (!v->defined()) continue;
      in_slots.push_back(slot_for_input(*v));
    }
    record_common(op, std::move(in_slots), out, std::move(attrs));
  }

  void record_cat(const std::vector<Var>& ins, const Var& out, int64_t dim) {
    std::vector<int32_t> in_slots;
    in_slots.reserve(ins.size());
    for (const Var& v : ins) in_slots.push_back(slot_for_input(v));
    tr::Attrs attrs;
    attrs.ivals = {dim};
    record_common(OpCode::kCat, std::move(in_slots), out, std::move(attrs));
  }

  void push_scope(std::string s) { scopes_.push_back(std::move(s)); }
  void pop_scope() { scopes_.pop_back(); }

  Plan take_plan(const Var& output) {
    SAUFNO_CHECK(ok(), "take_plan on a failed trace: " + error_);
    auto it = slot_of_.find(output.impl().get());
    SAUFNO_CHECK(it != slot_of_.end(),
                 "traced forward returned a value no recorded op produced");
    plan_.output_slot = it->second;
    plan_.out_shape = output.shape();
    return std::move(plan_);
  }

 private:
  int32_t add_slot(SlotKind kind, Shape shape, Tensor value) {
    Slot s;
    s.kind = kind;
    s.shape = std::move(shape);
    s.value = std::move(value);
    plan_.slots.push_back(std::move(s));
    return static_cast<int32_t>(plan_.slots.size() - 1);
  }

  /// Slot for an op input: previously recorded output, a parameter, or a
  /// captured leaf constant. A leaf with a producer node means the value
  /// came from an op the tracer did not hook — poison the trace rather
  /// than freeze a data-dependent value into the plan.
  int32_t slot_for_input(const Var& v) {
    detail::VarImpl* key = v.impl().get();
    auto it = slot_of_.find(key);
    if (it != slot_of_.end()) return it->second;
    int32_t id;
    auto pit = param_name_.find(key);
    if (pit != param_name_.end()) {
      // Shares the parameter's storage: the plan sees in-place weight
      // updates, and checkpoint loads that rebuild tensors invalidate the
      // cache at the engine layer (plans are compiled after loading).
      id = add_slot(SlotKind::kParam, v.shape(), v.value());
    } else {
      if (v.impl()->node != nullptr) {
        fail("input produced by an untraced op (" + v.impl()->node->name +
             ")");
      }
      // Shape-only leaves (coordinate grids etc.): cloned so the plan owns
      // heap storage whatever the leaf was backed by. Sound to bake in
      // because plans are keyed by the full input shape.
      id = add_slot(SlotKind::kConst, v.shape(), v.value().clone());
    }
    slot_of_[key] = id;
    keepalive_.push_back(v);
    return id;
  }

  void record_common(OpCode op, std::vector<int32_t> in_slots, const Var& out,
                     tr::Attrs attrs) {
    if (failed_) return;
    Instr ins;
    ins.op = op;
    ins.in = std::move(in_slots);
    ins.ivals = std::move(attrs.ivals);
    ins.fval = attrs.fval;
    ins.label = scope_path();
    ins.out = add_slot(SlotKind::kTemp, out.shape(), Tensor());
    slot_of_[out.impl().get()] = ins.out;
    // Keeping every produced Var alive pins its impl address: a freed impl
    // whose address the allocator reuses would corrupt the slot map.
    keepalive_.push_back(out);
    plan_.instrs.push_back(std::move(ins));
  }

  std::string scope_path() const {
    std::string s;
    for (const auto& sc : scopes_) {
      if (!s.empty()) s += '/';
      s += sc;
    }
    return s;
  }

  Plan plan_;
  std::unordered_map<const detail::VarImpl*, int32_t> slot_of_;
  std::unordered_map<const detail::VarImpl*, std::string> param_name_;
  std::vector<Var> keepalive_;
  std::vector<std::string> scopes_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace detail_trace

TraceSession::TraceSession(
    const std::vector<std::pair<std::string, Var>>& named_params,
    const Var& input)
    : impl_(new detail_trace::TraceSessionImpl(named_params, input)) {
  SAUFNO_CHECK(detail_trace::g_active == nullptr,
               "nested TraceSessions on one thread are not supported");
  detail_trace::g_active = impl_;
}

TraceSession::~TraceSession() {
  detail_trace::g_active = nullptr;
  delete impl_;
}

bool TraceSession::ok() const { return impl_->ok(); }
const std::string& TraceSession::error() const { return impl_->error(); }

Plan TraceSession::take_plan(const Var& output) {
  return impl_->take_plan(output);
}

TraceScope::TraceScope(const char* label) {
  if (detail_trace::g_active != nullptr) {
    detail_trace::g_active->push_scope(label);
    pushed_ = true;
  }
}

TraceScope::TraceScope(const std::string& label) {
  if (detail_trace::g_active != nullptr) {
    detail_trace::g_active->push_scope(label);
    pushed_ = true;
  }
}

TraceScope::~TraceScope() {
  if (pushed_ && detail_trace::g_active != nullptr) {
    detail_trace::g_active->pop_scope();
  }
}

namespace tr {

void record_op(OpCode op, std::initializer_list<const Var*> ins,
               const Var& out, Attrs attrs) {
  if (detail_trace::g_active != nullptr) {
    detail_trace::g_active->record(op, ins, out, std::move(attrs));
  }
}

void record_cat(const std::vector<Var>& ins, const Var& out, int64_t dim) {
  if (detail_trace::g_active != nullptr) {
    detail_trace::g_active->record_cat(ins, out, dim);
  }
}

void record_unsupported(const char* what) {
  if (detail_trace::g_active != nullptr) {
    detail_trace::g_active->fail(std::string("unsupported op: ") + what);
  }
}

}  // namespace tr
}  // namespace plan
}  // namespace saufno
