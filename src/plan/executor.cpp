#include "plan/executor.h"

#include <array>
#include <cstring>
#include <functional>
#include <string>
#include <utility>

#include "autograd/conv_ops.h"
#include "autograd/spectral3d_ops.h"
#include "autograd/spectral_ops.h"
#include "common/fault.h"
#include "common/logging.h"
#include "obs/kernel_profile.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "runtime/task_group.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace plan {

namespace {

constexpr std::size_t kNumOps = static_cast<std::size_t>(OpCode::kCount);

std::array<KernelFn, kNumOps>& kernel_table() {
  static std::array<KernelFn, kNumOps> table{};
  return table;
}

/// Per-opcode latency histograms ("plan.instr.<op>_us"), materialized once.
obs::Histogram& instr_hist(OpCode op) {
  static std::array<obs::Histogram*, kNumOps>* hists = [] {
    auto* h = new std::array<obs::Histogram*, kNumOps>{};
    for (std::size_t i = 0; i < kNumOps; ++i) {
      (*h)[i] = &obs::histogram(std::string("plan.instr.") +
                                op_name(static_cast<OpCode>(i)) + "_us");
    }
    return h;
  }();
  return *(*hists)[static_cast<std::size_t>(op)];
}

// Registers `exec_<OP>` as the kernel for OpCode::k<OP> at static-init time
// (same registration-table idiom as the FFT driver table): the macro expands
// to a declaration, a self-registering initializer, and the definition
// header, so adding an opcode is one block in this file.
#define SAUFNO_PLAN_KERNEL(OP)                                \
  void exec_##OP(ExecArgs& args);                             \
  [[maybe_unused]] const bool registered_##OP =               \
      (register_kernel(OpCode::k##OP, &exec_##OP), true);     \
  void exec_##OP(ExecArgs& args)

SAUFNO_PLAN_KERNEL(Add) { add_into(args.in(0), args.in(1), args.out); }
SAUFNO_PLAN_KERNEL(Sub) { sub_into(args.in(0), args.in(1), args.out); }
SAUFNO_PLAN_KERNEL(Mul) { mul_into(args.in(0), args.in(1), args.out); }
SAUFNO_PLAN_KERNEL(Div) { div_into(args.in(0), args.in(1), args.out); }
SAUFNO_PLAN_KERNEL(AddScalar) {
  add_scalar_into(args.in(0), args.instr.fval, args.out);
}
SAUFNO_PLAN_KERNEL(MulScalar) {
  mul_scalar_into(args.in(0), args.instr.fval, args.out);
}
SAUFNO_PLAN_KERNEL(Relu) { relu_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(Gelu) { gelu_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(Tanh) { tanh_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(Sigmoid) { sigmoid_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(Exp) { exp_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(Log) { log_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(Sqrt) { sqrt_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(Square) {
  // The interpreter computes square as x*x; same expression, same bits.
  mul_into(args.in(0), args.in(0), args.out);
}
SAUFNO_PLAN_KERNEL(Abs) { abs_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(Reshape) {
  // Compiled plans turn reshapes into slot aliases; this shim only runs for
  // constant folding over an uncompiled trace. Plain element copy.
  std::memcpy(args.out.data(), args.in(0).data(),
              static_cast<std::size_t>(args.in(0).numel()) * sizeof(float));
}
SAUFNO_PLAN_KERNEL(Permute) { permute_into(args.in(0), args.instr.ivals, args.out); }
SAUFNO_PLAN_KERNEL(Slice) {
  slice_into(args.in(0), args.instr.ivals[0], args.instr.ivals[1],
             args.instr.ivals[2], args.out);
}
SAUFNO_PLAN_KERNEL(Cat) {
  std::vector<Tensor> parts;
  parts.reserve(args.instr.in.size());
  for (std::size_t i = 0; i < args.instr.in.size(); ++i) {
    parts.push_back(args.in(i));  // O(1) storage shares
  }
  cat_into(parts, args.instr.ivals[0], args.out);
}
SAUFNO_PLAN_KERNEL(Pad2d) {
  pad2d_into(args.in(0), args.instr.ivals[0], args.instr.ivals[1],
             args.instr.ivals[2], args.instr.ivals[3], args.out);
}
SAUFNO_PLAN_KERNEL(Matmul) { matmul_into(args.in(0), args.in(1), args.out); }
SAUFNO_PLAN_KERNEL(Bmm) { bmm_into(args.in(0), args.in(1), args.out); }
SAUFNO_PLAN_KERNEL(Softmax) { softmax_lastdim_into(args.in(0), args.out); }
SAUFNO_PLAN_KERNEL(SumDim) {
  sum_dim_into(args.in(0), args.instr.ivals[0], args.instr.ivals[1] != 0,
               args.out);
}
SAUFNO_PLAN_KERNEL(ResizeBilinear) {
  resize_bilinear_into(args.in(0), args.instr.ivals[0], args.instr.ivals[1],
                       args.out);
}
SAUFNO_PLAN_KERNEL(Conv2d) {
  const bool has_bias = args.instr.ivals[2] != 0;
  ops::fwd::conv2d_into(args.in(0), args.in(1),
                        has_bias ? &args.in(2) : nullptr, args.instr.ivals[0],
                        args.instr.ivals[1],
                        static_cast<int>(args.instr.act), args.out);
}
SAUFNO_PLAN_KERNEL(MaxPool2d) {
  ops::fwd::maxpool2d_into(args.in(0), args.instr.ivals[0],
                           /*argmax=*/nullptr, args.out);
}
SAUFNO_PLAN_KERNEL(SpectralConv2d) {
  ops::fwd::spectral_conv2d_into(args.in(0), args.in(1), args.instr.ivals[0],
                                 args.instr.ivals[1], args.instr.ivals[2],
                                 args.out);
}
SAUFNO_PLAN_KERNEL(SpectralConv3d) {
  ops::fwd::spectral_conv3d_into(args.in(0), args.in(1), args.instr.ivals[0],
                                 args.instr.ivals[1], args.instr.ivals[2],
                                 args.instr.ivals[3], args.out);
}
SAUFNO_PLAN_KERNEL(FusedAddAct) {
  const bool three = args.instr.in.size() == 3;
  fused_add_act_into(args.in(0), args.in(1), three ? &args.in(2) : nullptr,
                     static_cast<int>(args.instr.act), args.out);
}
SAUFNO_PLAN_KERNEL(ScaledSoftmax) {
  scaled_softmax_lastdim_into(args.in(0), args.instr.fval, args.out);
}

#undef SAUFNO_PLAN_KERNEL

int32_t root_of(const Plan& p, int32_t s) {
  while (p.slots[static_cast<std::size_t>(s)].alias_of >= 0) {
    s = p.slots[static_cast<std::size_t>(s)].alias_of;
  }
  return s;
}

void exec_instr(const Plan& p, std::vector<Tensor>& slots, int32_t idx) {
  const Instr& ins = p.instrs[static_cast<std::size_t>(idx)];
  KernelFn fn = kernel_table()[static_cast<std::size_t>(ins.op)];
  SAUFNO_CHECK(fn != nullptr,
               std::string("plan: no kernel registered for ") +
                   op_name(ins.op));
  Tensor& out = slots[static_cast<std::size_t>(ins.out)];
  obs::KernelTimer timer(instr_hist(ins.op), op_name(ins.op));
  ExecArgs args{ins, slots, out};
  fn(args);
}

}  // namespace

void register_kernel(OpCode op, KernelFn fn) {
  kernel_table()[static_cast<std::size_t>(op)] = fn;
}

Tensor eval_single(const Instr& instr, const std::vector<Tensor>& slot_values,
                   const Shape& out_shape) {
  KernelFn fn = kernel_table()[static_cast<std::size_t>(instr.op)];
  SAUFNO_CHECK(fn != nullptr,
               std::string("plan: no kernel registered for ") +
                   op_name(instr.op));
  Tensor out(out_shape);
  ExecArgs args{instr, slot_values, out};
  fn(args);
  return out;
}

PlanExecutor::PlanExecutor(Plan plan)
    : plan_(std::make_shared<const Plan>(std::move(plan))) {
  for (std::size_t i = 0; i < plan_->slots.size(); ++i) {
    if (plan_->slots[i].alias_of >= 0 &&
        root_of(*plan_, static_cast<int32_t>(i)) == plan_->input_slot) {
      input_aliases_.push_back(static_cast<int32_t>(i));
    }
  }
}

std::unique_ptr<PlanExecutor::BoundBuffer> PlanExecutor::acquire_buffer() {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (!pool_.empty()) {
      auto b = std::move(pool_.back());
      pool_.pop_back();
      return b;
    }
  }
  const Plan& p = *plan_;
  auto b = std::make_unique<BoundBuffer>();
  b->arena = runtime::Reservation(static_cast<std::size_t>(p.arena_floats) *
                                  sizeof(float));
  b->slots.resize(p.slots.size());
  float* base = b->arena.floats();
  // Roots first: params/consts share their captured storage, temps bind
  // into the packed arena reservation at their liveness-planned offsets.
  for (std::size_t i = 0; i < p.slots.size(); ++i) {
    const Slot& s = p.slots[i];
    if (s.alias_of >= 0) continue;
    if (s.kind == SlotKind::kParam || s.kind == SlotKind::kConst) {
      b->slots[i] = s.value;
    } else if (s.kind == SlotKind::kTemp && s.arena_offset >= 0) {
      b->slots[i] = Tensor::wrap_external(base + s.arena_offset, s.shape);
    }
    // kInput (and dead temps) stay default-constructed; the input root and
    // its aliases are rebound at the top of every run().
  }
  for (std::size_t i = 0; i < p.slots.size(); ++i) {
    const Slot& s = p.slots[i];
    if (s.alias_of < 0) continue;
    const int32_t root = root_of(p, static_cast<int32_t>(i));
    if (root == p.input_slot) continue;
    const Tensor& rt = b->slots[static_cast<std::size_t>(root)];
    if (rt.defined()) b->slots[i] = rt.reshape(s.shape);
  }
  return b;
}

void PlanExecutor::release_buffer(std::unique_ptr<BoundBuffer> b) {
  std::lock_guard<std::mutex> lk(pool_mu_);
  pool_.push_back(std::move(b));
}

Tensor PlanExecutor::run(const Tensor& input) {
  SAUFNO_FAULT_POINT("plan");
  const Plan& p = *plan_;
  SAUFNO_CHECK(input.shape() == p.in_shape,
               "plan input shape mismatch: got " + shape_str(input.shape()) +
                   ", plan compiled for " + shape_str(p.in_shape));
  static obs::Counter& runs = obs::counter("plan.runs");
  runs.add();

  auto b = acquire_buffer();
  b->slots[static_cast<std::size_t>(p.input_slot)] = input;  // O(1) share
  for (int32_t s : input_aliases_) {
    b->slots[static_cast<std::size_t>(s)] =
        input.reshape(p.slots[static_cast<std::size_t>(s)].shape);
  }

  for (const auto& level : p.levels) {
    if (level.size() == 1) {
      exec_instr(p, b->slots, level[0]);
    } else {
      // Instructions inside one level are independent by construction and
      // their temp slots occupy disjoint arena bytes (liveness intervals
      // both contain this level), so they can run concurrently. Each
      // instruction is one TaskGroup task; a kernel that parallelizes
      // internally decomposes its own parallel_for onto the pool too
      // (intra-op x inter-op), so a level with one heavy op and several
      // light ones doesn't serialize the heavy op on a single lane. Every
      // kernel is individually bit-deterministic and writes disjoint slots,
      // so scheduling order cannot change the output.
      runtime::TaskGroup g;
      std::vector<Tensor>* slots = &b->slots;
      const Plan* plan = plan_.get();
      for (std::size_t i = 1; i < level.size(); ++i) {
        const int32_t idx = level[i];
        g.run([plan, slots, idx] { exec_instr(*plan, *slots, idx); });
      }
      // First instruction runs on the calling thread; wait() then helps
      // with whatever is still queued.
      {
        const int32_t idx = level[0];
        exec_instr(*plan, *slots, idx);
      }
      g.wait();
    }
  }

  Tensor result =
      b->slots[static_cast<std::size_t>(p.output_slot)].clone();
  // Drop references into the caller's input storage before pooling the
  // buffer (holding them would pin the batch tensor until the next run).
  b->slots[static_cast<std::size_t>(p.input_slot)] = Tensor();
  for (int32_t s : input_aliases_) {
    b->slots[static_cast<std::size_t>(s)] = Tensor();
  }
  release_buffer(std::move(b));
  return result;
}

}  // namespace plan
}  // namespace saufno
