#pragma once

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "plan/ir.h"

namespace saufno {
namespace plan {

namespace detail_trace {
/// Thread-local pointer to the active session; null almost always. Exposed
/// only so the `tracing()` fast check can inline to one TL load + compare.
class TraceSessionImpl;
extern thread_local TraceSessionImpl* g_active;
}  // namespace detail_trace

/// True while a TraceSession is recording on THIS thread. Every ops::
/// function consults this before touching the tracer, so the interpreted
/// path pays one thread-local load and a predictable branch.
inline bool tracing() { return detail_trace::g_active != nullptr; }

/// Records one traced forward of a model as a flat Plan.
///
/// Usage (see plan::PlanRunner):
///   Var in(input);
///   TraceSession sess(model.named_parameters(), in);
///   Var out = model.forward(in);          // ops:: hooks record into sess
///   if (sess.ok()) Plan p = sess.take_plan(out);
///
/// Scope: recording is thread-local and covers exactly the ops:: calls made
/// on the constructing thread between construction and destruction (model
/// kernels parallelize BELOW the ops:: layer, so worker threads never hit
/// the hooks). Input Vars whose impl the session has not seen are captured:
/// module parameters (matched against `named_params`) become kParam slots
/// sharing the parameter storage; other leaves (shape-derived coordinate
/// grids and the like) are cloned into kConst slots. A leaf that was
/// produced by an op the tracer does not support poisons the session
/// (ok() == false) instead of silently mistracing.
class TraceSession {
 public:
  TraceSession(const std::vector<std::pair<std::string, Var>>& named_params,
               const Var& input);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// False when the forward used an op the tracer cannot represent.
  bool ok() const;
  const std::string& error() const;

  /// Finalize: resolves `output` to its slot and moves the recorded Plan
  /// out. Requires ok(); the session records nothing afterwards.
  Plan take_plan(const Var& output);

 private:
  detail_trace::TraceSessionImpl* impl_;
};

/// RAII label pushed onto the active session's scope stack; instructions
/// recorded inside carry "outer/inner" labels. No-op (one TL load) when no
/// tracer is active, so modules open scopes unconditionally.
class TraceScope {
 public:
  explicit TraceScope(const char* label);
  explicit TraceScope(const std::string& label);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool pushed_ = false;
};

// -- Recording hooks used by the autograd ops layer -------------------------
// All are no-ops unless tracing() is true on the calling thread. `record`
// returns its `out` argument so op implementations can wrap their return
// statements without restructuring.
namespace tr {

struct Attrs {
  std::vector<int64_t> ivals;
  float fval = 0.f;
};

void record_op(OpCode op, std::initializer_list<const Var*> ins,
               const Var& out, Attrs attrs);
void record_cat(const std::vector<Var>& ins, const Var& out, int64_t dim);
/// Poison the active session: the forward used `what`, which the plan IR
/// cannot represent. The runner falls back to the interpreter.
void record_unsupported(const char* what);

inline Var record(OpCode op, std::initializer_list<const Var*> ins, Var out,
                  Attrs attrs = {}) {
  if (tracing()) record_op(op, ins, out, std::move(attrs));
  return out;
}

}  // namespace tr

}  // namespace plan
}  // namespace saufno
