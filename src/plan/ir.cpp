#include "plan/ir.h"

#include <sstream>

namespace saufno {
namespace plan {

const char* op_name(OpCode op) {
  switch (op) {
    case OpCode::kAdd: return "add";
    case OpCode::kSub: return "sub";
    case OpCode::kMul: return "mul";
    case OpCode::kDiv: return "div";
    case OpCode::kAddScalar: return "add_scalar";
    case OpCode::kMulScalar: return "mul_scalar";
    case OpCode::kRelu: return "relu";
    case OpCode::kGelu: return "gelu";
    case OpCode::kTanh: return "tanh";
    case OpCode::kSigmoid: return "sigmoid";
    case OpCode::kExp: return "exp";
    case OpCode::kLog: return "log";
    case OpCode::kSqrt: return "sqrt";
    case OpCode::kSquare: return "square";
    case OpCode::kAbs: return "abs";
    case OpCode::kReshape: return "reshape";
    case OpCode::kPermute: return "permute";
    case OpCode::kSlice: return "slice";
    case OpCode::kCat: return "cat";
    case OpCode::kPad2d: return "pad2d";
    case OpCode::kMatmul: return "matmul";
    case OpCode::kBmm: return "bmm";
    case OpCode::kSoftmax: return "softmax";
    case OpCode::kSumDim: return "sum_dim";
    case OpCode::kResizeBilinear: return "resize_bilinear";
    case OpCode::kConv2d: return "conv2d";
    case OpCode::kMaxPool2d: return "maxpool2d";
    case OpCode::kSpectralConv2d: return "spectral_conv2d";
    case OpCode::kSpectralConv3d: return "spectral_conv3d";
    case OpCode::kFusedAddAct: return "fused_add_act";
    case OpCode::kScaledSoftmax: return "scaled_softmax";
    case OpCode::kCount: break;
  }
  return "?";
}

const char* act_name(Act a) {
  switch (a) {
    case Act::kNone: return "none";
    case Act::kRelu: return "relu";
    case Act::kGelu: return "gelu";
    case Act::kTanh: return "tanh";
  }
  return "?";
}

std::string to_string(const Plan& p) {
  std::ostringstream os;
  os << "plan " << shape_str(p.in_shape) << " -> " << shape_str(p.out_shape)
     << ": " << p.instrs.size() << " instrs, " << p.slots.size()
     << " slots, " << p.levels.size() << " levels, arena "
     << p.arena_floats * sizeof(float) / 1024 << " KiB, fused "
     << p.fused_ops << ", folded " << p.folded_ops << "\n";
  auto slot_str = [&](int32_t s) {
    const Slot& sl = p.slots[static_cast<std::size_t>(s)];
    std::ostringstream ss;
    ss << "%" << s;
    if (sl.alias_of >= 0) ss << "->%" << sl.alias_of;
    ss << shape_str(sl.shape);
    return ss.str();
  };
  for (std::size_t i = 0; i < p.instrs.size(); ++i) {
    const Instr& ins = p.instrs[i];
    os << "  [L" << ins.level << "] " << slot_str(ins.out) << " = "
       << op_name(ins.op);
    if (ins.act != Act::kNone) os << "+" << act_name(ins.act);
    os << "(";
    for (std::size_t k = 0; k < ins.in.size(); ++k) {
      if (k) os << ", ";
      os << slot_str(ins.in[k]);
    }
    os << ")";
    if (!ins.ivals.empty()) {
      os << " ivals=[";
      for (std::size_t k = 0; k < ins.ivals.size(); ++k) {
        if (k) os << ",";
        os << ins.ivals[k];
      }
      os << "]";
    }
    if (!ins.label.empty()) os << "  # " << ins.label;
    os << "\n";
  }
  return os.str();
}

}  // namespace plan
}  // namespace saufno
