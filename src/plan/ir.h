#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace saufno {
namespace plan {

// ---------------------------------------------------------------------------
// Flat execution-plan IR (the "ISA" half of the ISA/VM split): a traced
// forward becomes a list of instructions over pre-resolved tensor slots with
// static shapes. The tracer (trace.h) emits it, the compiler (compile.h)
// folds/fuses/lays out workspace on it, and the executor (executor.h) runs
// it through a kernel registration table. Every opcode's runtime kernel is
// the SAME code the interpreted ops:: layer calls (the *_into variants in
// tensor/tensor_ops.h and the ops::fwd helpers), which is what makes the
// plan path bit-identical to the interpreter.
// ---------------------------------------------------------------------------

enum class OpCode : std::uint8_t {
  // Elementwise binary (numpy broadcasting).
  kAdd,
  kSub,
  kMul,
  kDiv,
  // Scalar elementwise (scalar in Instr::fval).
  kAddScalar,
  kMulScalar,
  // Elementwise unary.
  kRelu,
  kGelu,
  kTanh,
  kSigmoid,
  kExp,
  kLog,
  kSqrt,
  kSquare,
  kAbs,
  // Layout. kReshape is compiled away into a slot alias (zero cost).
  kReshape,
  kPermute,         // ivals = permutation
  kSlice,           // ivals = {dim, start, length}
  kCat,             // ivals = {dim}; variadic inputs
  kPad2d,           // ivals = {top, bottom, left, right}
  // Linear algebra / structured ops.
  kMatmul,
  kBmm,
  kSoftmax,         // softmax over the last dim
  kSumDim,          // ivals = {dim, keepdim}
  kResizeBilinear,  // ivals = {oh, ow}
  kConv2d,          // ivals = {stride, pad, has_bias}; in = {x, w[, b]};
                    // act != kNone when an activation was fused in
  kMaxPool2d,       // ivals = {kernel}
  kSpectralConv2d,  // ivals = {m1, m2, cout}; in = {x, w}
  kSpectralConv3d,  // ivals = {m1, m2, m3, cout}; in = {x, w}
  // Compiler-synthesized fusions (never emitted by the tracer).
  kFusedAddAct,     // out = act(in0 + in1 [+ in2]); 2-input form may
                    // broadcast (bias), 3-input form requires equal shapes
  kScaledSoftmax,   // out = softmax_lastdim(in * fval)
  kCount
};

/// Activation fused into a producer instruction. The numeric values match
/// the codes tensor/tensor_ops.h act_apply() understands.
enum class Act : std::uint8_t { kNone = 0, kRelu = 1, kGelu = 2, kTanh = 3 };

/// What a slot binds to at execution time.
enum class SlotKind : std::uint8_t {
  kInput,  // the plan's input tensor, rebound per run
  kParam,  // a module parameter; shares the module's storage
  kConst,  // captured or constant-folded value, owned by the plan
  kTemp    // intermediate; lives in the plan's arena reservation
};

struct Slot {
  SlotKind kind = SlotKind::kTemp;
  Shape shape;
  /// Bound value for kParam (shared with the module) / kConst (owned).
  Tensor value;
  /// Root slot id when this slot is a zero-cost reshape view of another
  /// (same storage, different shape); -1 for a root slot.
  int32_t alias_of = -1;
  /// Float offset of a root kTemp slot inside the plan's arena reservation
  /// (filled by the workspace-planning pass); -1 until assigned.
  int64_t arena_offset = -1;
  /// Liveness at LEVEL granularity (see Instr::level): [def, last_use].
  /// Level intervals are what the arena packer keeps disjoint, so two
  /// instructions running concurrently inside one level can never share
  /// bytes.
  int32_t def_level = 0;
  int32_t last_use_level = 0;
};

struct Instr {
  OpCode op = OpCode::kCount;
  Act act = Act::kNone;  // fused activation (kConv2d, kFusedAddAct)
  float fval = 0.f;      // scalar operand (kAddScalar, kMulScalar, kScaledSoftmax)
  std::vector<int32_t> in;
  int32_t out = -1;
  std::vector<int64_t> ivals;  // op-specific attrs, see OpCode comments
  /// Module scope path recorded by the tracer ("layers.0/unet"), for
  /// debugging dumps and per-instruction profiling.
  std::string label;
  /// Dependency depth: 1 + max(level of producing instrs of inputs), with
  /// plan inputs/params/consts at level 0. Instructions sharing a level are
  /// independent and may run concurrently.
  int32_t level = 0;
};

struct Plan {
  std::vector<Slot> slots;
  std::vector<Instr> instrs;
  int32_t input_slot = -1;
  int32_t output_slot = -1;
  Shape in_shape;
  Shape out_shape;
  /// Instruction indices grouped by level, in level order (compiler-built).
  std::vector<std::vector<int32_t>> levels;
  /// Total floats of the single per-plan arena reservation.
  int64_t arena_floats = 0;
  // Compile statistics (reported by benches / asserted by tests).
  int64_t fused_ops = 0;
  int64_t folded_ops = 0;
};

const char* op_name(OpCode op);
const char* act_name(Act a);

/// Multi-line human-readable dump (debugging / golden plan inspection).
std::string to_string(const Plan& p);

}  // namespace plan
}  // namespace saufno
