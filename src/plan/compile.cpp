#include "plan/compile.h"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "plan/executor.h"

namespace saufno {
namespace plan {
namespace {

int32_t root_of(const Plan& p, int32_t s) {
  while (p.slots[static_cast<std::size_t>(s)].alias_of >= 0) {
    s = p.slots[static_cast<std::size_t>(s)].alias_of;
  }
  return s;
}

/// Use count per ROOT slot: one per live-instruction input reference
/// (references through reshape aliases resolve to the aliased root) plus one
/// for the plan output. A producer may only be fused away when its out slot
/// has exactly one use and is not the output.
std::vector<int32_t> tally_uses(const Plan& p, const std::vector<bool>& dead) {
  std::vector<int32_t> uses(p.slots.size(), 0);
  for (std::size_t i = 0; i < p.instrs.size(); ++i) {
    if (dead[i]) continue;
    for (int32_t s : p.instrs[i].in) {
      ++uses[static_cast<std::size_t>(root_of(p, s))];
    }
  }
  ++uses[static_cast<std::size_t>(root_of(p, p.output_slot))];
  return uses;
}

Act act_code(OpCode op) {
  switch (op) {
    case OpCode::kRelu:
      return Act::kRelu;
    case OpCode::kGelu:
      return Act::kGelu;
    case OpCode::kTanh:
      return Act::kTanh;
    default:
      return Act::kNone;
  }
}

}  // namespace

Plan compile(Plan p) {
  const std::size_t n_slots = p.slots.size();
  std::vector<bool> dead(p.instrs.size(), false);

  // -- Pass 1: constant folding ---------------------------------------------
  // Evaluated through the executor's own kernels, so a folded value is
  // exactly what the interpreter would have computed at run time. Folded
  // consts are snapshots: a plan must be recompiled if parameters change
  // (the runner compiles per loaded checkpoint, so this never bites).
  {
    std::vector<Tensor> vals(n_slots);
    for (std::size_t s = 0; s < n_slots; ++s) {
      if (p.slots[s].kind == SlotKind::kParam ||
          p.slots[s].kind == SlotKind::kConst) {
        vals[s] = p.slots[s].value;
      }
    }
    for (std::size_t i = 0; i < p.instrs.size(); ++i) {
      const Instr& ins = p.instrs[i];
      bool foldable = !ins.in.empty();
      for (int32_t s : ins.in) {
        if (!vals[static_cast<std::size_t>(s)].defined()) {
          foldable = false;
          break;
        }
      }
      if (!foldable) continue;
      Slot& out = p.slots[static_cast<std::size_t>(ins.out)];
      Tensor v = eval_single(ins, vals, out.shape);
      out.kind = SlotKind::kConst;
      out.value = v;
      vals[static_cast<std::size_t>(ins.out)] = std::move(v);
      dead[i] = true;
      ++p.folded_ops;
    }
  }

  // -- Pass 2: reshape aliasing ---------------------------------------------
  for (std::size_t i = 0; i < p.instrs.size(); ++i) {
    if (dead[i] || p.instrs[i].op != OpCode::kReshape) continue;
    Slot& out = p.slots[static_cast<std::size_t>(p.instrs[i].out)];
    out.alias_of = root_of(p, p.instrs[i].in[0]);
    dead[i] = true;
  }

  // -- Pass 3: fusion peephole ----------------------------------------------
  {
    std::vector<int32_t> producer(n_slots, -1);
    for (std::size_t i = 0; i < p.instrs.size(); ++i) {
      if (!dead[i]) {
        producer[static_cast<std::size_t>(p.instrs[i].out)] =
            static_cast<int32_t>(i);
      }
    }
    std::vector<int32_t> uses = tally_uses(p, dead);
    auto fusable_producer = [&](int32_t slot) -> int32_t {
      const int32_t pi = producer[static_cast<std::size_t>(slot)];
      if (pi < 0 || dead[static_cast<std::size_t>(pi)]) return -1;
      if (uses[static_cast<std::size_t>(slot)] != 1) return -1;
      return pi;
    };

    for (std::size_t oi = 0; oi < p.instrs.size(); ++oi) {
      if (dead[oi]) continue;
      Instr& o = p.instrs[oi];
      const Act a = act_code(o.op);
      if (a != Act::kNone) {
        const int32_t pi = fusable_producer(o.in[0]);
        if (pi < 0) continue;
        Instr& pr = p.instrs[static_cast<std::size_t>(pi)];
        if (pr.op == OpCode::kAdd) {
          // Widen to act((x + y) + z) when the inner add is single-use and
          // every operand matches the output shape (no broadcasting, so the
          // fused sweep evaluates the exact same expression tree; float
          // addition is commutative, so either nesting side works).
          const Shape& oshape =
              p.slots[static_cast<std::size_t>(o.out)].shape;
          int32_t qi = -1;
          int side = 0;
          for (int s = 0; s < 2 && qi < 0; ++s) {
            const int32_t c = fusable_producer(pr.in[static_cast<std::size_t>(s)]);
            if (c >= 0 && p.instrs[static_cast<std::size_t>(c)].op == OpCode::kAdd) {
              const Instr& q = p.instrs[static_cast<std::size_t>(c)];
              const bool shapes_ok =
                  p.slots[static_cast<std::size_t>(q.in[0])].shape == oshape &&
                  p.slots[static_cast<std::size_t>(q.in[1])].shape == oshape &&
                  p.slots[static_cast<std::size_t>(pr.in[static_cast<std::size_t>(1 - s)])]
                          .shape == oshape;
              if (shapes_ok) {
                qi = c;
                side = s;
              }
            }
          }
          Instr fused;
          fused.op = OpCode::kFusedAddAct;
          fused.act = a;
          fused.out = o.out;
          fused.label = o.label;
          if (qi >= 0) {
            const Instr& q = p.instrs[static_cast<std::size_t>(qi)];
            fused.in = {q.in[0], q.in[1], pr.in[static_cast<std::size_t>(1 - side)]};
            dead[static_cast<std::size_t>(qi)] = true;
            uses[static_cast<std::size_t>(q.out)] = 0;
            p.fused_ops += 2;
          } else {
            fused.in = pr.in;
            p.fused_ops += 1;
          }
          dead[static_cast<std::size_t>(pi)] = true;
          uses[static_cast<std::size_t>(pr.out)] = 0;
          p.instrs[oi] = std::move(fused);
        } else if (pr.op == OpCode::kConv2d && pr.act == Act::kNone) {
          // Fold the activation into the conv epilogue: the conv kernel
          // applies act_apply over the rows it just wrote.
          pr.act = a;
          const int32_t orphan = pr.out;
          pr.out = o.out;
          producer[static_cast<std::size_t>(o.out)] = pi;
          uses[static_cast<std::size_t>(orphan)] = 0;
          dead[oi] = true;
          p.fused_ops += 1;
        }
      } else if (o.op == OpCode::kSoftmax) {
        const int32_t pi = fusable_producer(o.in[0]);
        if (pi < 0) continue;
        Instr& pr = p.instrs[static_cast<std::size_t>(pi)];
        if (pr.op != OpCode::kMulScalar) continue;
        Instr fused;
        fused.op = OpCode::kScaledSoftmax;
        fused.fval = pr.fval;
        fused.in = {pr.in[0]};
        fused.out = o.out;
        fused.label = o.label;
        dead[static_cast<std::size_t>(pi)] = true;
        uses[static_cast<std::size_t>(pr.out)] = 0;
        p.instrs[oi] = std::move(fused);
        p.fused_ops += 1;
      }
    }
  }

  // -- Pass 4: dead-code elimination ----------------------------------------
  // Iterate to a fixed point so whole unused chains fall away.
  {
    bool changed = true;
    while (changed) {
      changed = false;
      const std::vector<int32_t> uses = tally_uses(p, dead);
      for (std::size_t i = 0; i < p.instrs.size(); ++i) {
        if (dead[i]) continue;
        if (uses[static_cast<std::size_t>(p.instrs[i].out)] == 0) {
          dead[i] = true;
          changed = true;
        }
      }
    }
    std::vector<Instr> live;
    live.reserve(p.instrs.size());
    for (std::size_t i = 0; i < p.instrs.size(); ++i) {
      if (!dead[i]) live.push_back(std::move(p.instrs[i]));
    }
    p.instrs = std::move(live);
  }

  // -- Pass 5: level assignment ---------------------------------------------
  // Inputs/params/consts sit at level 0; an instruction runs one level past
  // its deepest producer. Trace order is topological, and every transform
  // above preserves that, so one forward sweep suffices.
  int32_t max_level = 0;
  {
    std::vector<int32_t> def_level(n_slots, 0);
    for (auto& ins : p.instrs) {
      int32_t lvl = 1;
      for (int32_t s : ins.in) {
        lvl = std::max(lvl,
                       def_level[static_cast<std::size_t>(root_of(p, s))] + 1);
      }
      ins.level = lvl;
      def_level[static_cast<std::size_t>(ins.out)] = lvl;
      p.slots[static_cast<std::size_t>(ins.out)].def_level = lvl;
      max_level = std::max(max_level, lvl);
    }
    p.levels.assign(static_cast<std::size_t>(max_level), {});
    for (std::size_t i = 0; i < p.instrs.size(); ++i) {
      p.levels[static_cast<std::size_t>(p.instrs[i].level - 1)].push_back(
          static_cast<int32_t>(i));
    }
  }

  // -- Pass 6: liveness + arena packing -------------------------------------
  // Liveness is tracked at LEVEL granularity: a slot is live from its
  // defining level through the last level that reads it, so two
  // instructions sharing a level (which may run concurrently) can never be
  // assigned overlapping bytes.
  {
    std::vector<int32_t> last(n_slots, 0);
    for (const auto& ins : p.instrs) {
      last[static_cast<std::size_t>(ins.out)] =
          p.slots[static_cast<std::size_t>(ins.out)].def_level;
    }
    for (const auto& ins : p.instrs) {
      for (int32_t s : ins.in) {
        auto r = static_cast<std::size_t>(root_of(p, s));
        last[r] = std::max(last[r], ins.level);
      }
    }
    // The output root is read after the last level (the executor clones it
    // into the result), so it may never be overwritten.
    last[static_cast<std::size_t>(root_of(p, p.output_slot))] = INT32_MAX;

    struct Placed {
      int64_t off, end;
      int32_t def, last;
    };
    std::vector<Placed> placed;
    p.arena_floats = 0;
    for (const auto& ins : p.instrs) {
      Slot& sl = p.slots[static_cast<std::size_t>(ins.out)];
      if (sl.kind != SlotKind::kTemp || sl.alias_of >= 0) continue;
      sl.last_use_level = last[static_cast<std::size_t>(ins.out)];
      // 16-float (64-byte) granules keep every slot cache-line aligned
      // inside the reservation.
      const int64_t size = (numel_of(sl.shape) + 15) & ~int64_t{15};
      std::vector<Placed> overlapping;
      for (const Placed& q : placed) {
        if (q.def <= sl.last_use_level && sl.def_level <= q.last) {
          overlapping.push_back(q);
        }
      }
      std::sort(overlapping.begin(), overlapping.end(),
                [](const Placed& a, const Placed& b) { return a.off < b.off; });
      int64_t cand = 0;
      for (const Placed& q : overlapping) {
        if (q.off >= cand + size) break;
        cand = std::max(cand, q.end);
      }
      sl.arena_offset = cand;
      placed.push_back({cand, cand + size, sl.def_level, sl.last_use_level});
      p.arena_floats = std::max(p.arena_floats, cand + size);
    }
  }

  return p;
}

}  // namespace plan
}  // namespace saufno
