#include "plan/runner.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/compile.h"
#include "plan/trace.h"

namespace saufno {
namespace plan {

namespace {

struct RunnerMetrics {
  obs::Counter& hits = obs::counter("plan.cache.hits");
  obs::Counter& misses = obs::counter("plan.cache.misses");
  obs::Counter& fallbacks = obs::counter("plan.fallbacks");
  obs::Gauge& size = obs::gauge("plan.cache.size");
  obs::Histogram& compile_ms = obs::histogram("plan.compile_ms");
  obs::Histogram& compile_trace_ms = obs::histogram("plan.compile.trace_ms");
  obs::Histogram& compile_lower_ms = obs::histogram("plan.compile.lower_ms");
  obs::Histogram& compile_passes_ms =
      obs::histogram("plan.compile.passes_ms");
};

RunnerMetrics& runner_metrics() {
  static RunnerMetrics m;
  return m;
}

}  // namespace

Mode mode_from_env() {
  static const char* const kNames[] = {"off", "on", "compile-only"};
  return static_cast<Mode>(
      env_choice("SAUFNO_PLAN", static_cast<int>(Mode::kOn), kNames, 3));
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kOff:
      return "off";
    case Mode::kOn:
      return "on";
    case Mode::kCompileOnly:
      return "compile-only";
  }
  return "?";
}

PlanRunner::PlanRunner(std::shared_ptr<nn::Module> model, Mode mode)
    : model_(std::move(model)), mode_(mode) {
  SAUFNO_CHECK(model_ != nullptr, "PlanRunner requires a model");
}

Tensor PlanRunner::interpret(const Tensor& input) {
  NoGradGuard no_grad;
  return model_->forward(Var(input)).value();
}

std::shared_ptr<PlanExecutor> PlanRunner::compile_shape(const Shape& shape) {
  SAUFNO_TRACE_SPAN("plan.compile");
  const auto ms_since = [](std::chrono::steady_clock::time_point a,
                           std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  const auto t0 = std::chrono::steady_clock::now();
  try {
    NoGradGuard no_grad;
    // Trace on a zero probe: the plan depends only on shapes, and the
    // recorded kernels never branch on values.
    Var in{Tensor(shape)};
    TraceSession sess(model_->named_parameters(), in);
    Var out = model_->forward(in);
    const auto t_traced = std::chrono::steady_clock::now();
    if (!sess.ok()) {
      SAUFNO_WARN << "plan: falling back to interpreter for shape "
                  << shape_str(shape) << ": " << sess.error();
      return nullptr;
    }
    Plan lowered = sess.take_plan(out);
    const auto t_lowered = std::chrono::steady_clock::now();
    Plan compiled = compile(std::move(lowered));
    const auto t1 = std::chrono::steady_clock::now();

    CompileBreakdown bd;
    bd.trace_ms = ms_since(t0, t_traced);
    bd.lower_ms = ms_since(t_traced, t_lowered);
    bd.passes_ms = ms_since(t_lowered, t1);
    bd.total_ms = ms_since(t0, t1);
    RunnerMetrics& rm = runner_metrics();
    rm.compile_ms.record(bd.total_ms);
    rm.compile_trace_ms.record(bd.trace_ms);
    rm.compile_lower_ms.record(bd.lower_ms);
    rm.compile_passes_ms.record(bd.passes_ms);
    {
      std::lock_guard<std::mutex> lk(mu_);
      last_breakdown_ = bd;
    }
    return std::make_shared<PlanExecutor>(std::move(compiled));
  } catch (const std::exception& e) {
    SAUFNO_WARN << "plan: compile failed for shape " << shape_str(shape)
                << " (interpreting instead): " << e.what();
    return nullptr;
  }
}

PlanRunner::CompileBreakdown PlanRunner::last_compile_breakdown() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_breakdown_;
}

std::shared_ptr<PlanExecutor> PlanRunner::get_or_compile(const Shape& shape) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = cache_.find(shape);
    if (it != cache_.end()) {
      runner_metrics().hits.add();
      return it->second;
    }
  }
  runner_metrics().misses.add();
  // Compile OUTSIDE the lock (same discipline as the FFT plan cache): a
  // multi-second first compile must not stall forwards for other shapes.
  // Concurrent first-users may both compile; the first to publish wins and
  // the loser's work is dropped.
  std::shared_ptr<PlanExecutor> exec = compile_shape(shape);
  std::lock_guard<std::mutex> lk(mu_);
  auto ins = cache_.emplace(shape, exec);
  runner_metrics().size.set(static_cast<int64_t>(cache_.size()));
  return ins.first->second;
}

Tensor PlanRunner::forward(const Tensor& input) {
  if (mode_ == Mode::kOff) return interpret(input);
  std::shared_ptr<PlanExecutor> exec = get_or_compile(input.shape());
  if (exec == nullptr) {
    // Negative cache entry: this shape traced to an unsupported op; the
    // warning was logged once at compile time.
    runner_metrics().fallbacks.add();
    return interpret(input);
  }
  if (mode_ == Mode::kCompileOnly) return interpret(input);
  SAUFNO_TRACE_SPAN("plan.execute");
  return exec->run(input);
}

std::size_t PlanRunner::cache_size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.size();
}

std::shared_ptr<PlanExecutor> PlanRunner::executor_for(
    const Shape& shape) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = cache_.find(shape);
  return it == cache_.end() ? nullptr : it->second;
}

}  // namespace plan
}  // namespace saufno
