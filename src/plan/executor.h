#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "plan/ir.h"
#include "runtime/workspace.h"
#include "tensor/tensor.h"

namespace saufno {
namespace plan {

// ---------------------------------------------------------------------------
// Plan VM: dispatches a compiled Plan's instruction stream through a kernel
// registration table. One kernel per opcode, registered from executor.cpp
// via the SAUFNO_PLAN_KERNEL macro; every kernel is a thin shim onto the
// SAME *_into / ops::fwd:: code the interpreter runs, which is what makes
// plan-mode outputs bit-identical to interpreted ones.
// ---------------------------------------------------------------------------

/// Everything a kernel shim needs: the instruction (attrs), the bound slot
/// tensors (inputs), and the prebound destination tensor it must fill.
struct ExecArgs {
  const Instr& instr;
  const std::vector<Tensor>& slots;
  Tensor& out;

  const Tensor& in(std::size_t i) const {
    return slots[static_cast<std::size_t>(instr.in[i])];
  }
};

using KernelFn = void (*)(ExecArgs&);

/// Install `fn` as the kernel for `op` (called by the SAUFNO_PLAN_KERNEL
/// registrars at static-init time; idempotent last-wins for tests).
void register_kernel(OpCode op, KernelFn fn);

/// Evaluate ONE instruction against explicit slot values, allocating the
/// result on the heap. Used by the compiler's constant-folding pass and by
/// unit tests — runs the exact same kernel the executor dispatches.
Tensor eval_single(const Instr& instr, const std::vector<Tensor>& slot_values,
                   const Shape& out_shape);

/// Runs a compiled Plan. Thread-safe: concurrent run() calls check out
/// distinct BoundBuffers (arena reservation + prebound slot tensors) from an
/// internal pool, so steady-state execution performs zero per-op heap
/// allocations — the only allocation per call is the output clone.
class PlanExecutor {
 public:
  explicit PlanExecutor(Plan plan);

  /// Execute the plan on `input` (shape must equal plan().in_shape).
  /// Returns a freshly allocated output tensor; bit-identical to running
  /// the interpreted forward on the same input.
  Tensor run(const Tensor& input);

  const Plan& plan() const { return *plan_; }

 private:
  struct BoundBuffer {
    runtime::Reservation arena;
    std::vector<Tensor> slots;
  };

  std::unique_ptr<BoundBuffer> acquire_buffer();
  void release_buffer(std::unique_ptr<BoundBuffer> b);

  std::shared_ptr<const Plan> plan_;
  /// Slots that alias the input root — rebound at the top of every run().
  std::vector<int32_t> input_aliases_;
  std::mutex pool_mu_;
  std::vector<std::unique_ptr<BoundBuffer>> pool_;
};

}  // namespace plan
}  // namespace saufno
