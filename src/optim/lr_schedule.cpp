#include "optim/lr_schedule.h"

#include <cmath>

namespace saufno {
namespace optim {

StepLR::StepLR(Optimizer& opt, int64_t step_size, double gamma)
    : opt_(opt), base_lr_(opt.lr()), step_size_(step_size), gamma_(gamma) {}

void StepLR::step() {
  ++epoch_;
  const double factor =
      std::pow(gamma_, static_cast<double>(epoch_ / step_size_));
  opt_.set_lr(base_lr_ * factor);
}

}  // namespace optim
}  // namespace saufno
