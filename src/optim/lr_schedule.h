#pragma once

#include "optim/optimizer.h"

namespace saufno {
namespace optim {

/// Step-decay learning-rate schedule: lr <- lr0 * gamma^(epoch / step).
/// The paper uses "a decaying learning rate with the Adam optimizer"; step
/// decay is the standard reading and is what the trainer applies per epoch.
class StepLR {
 public:
  StepLR(Optimizer& opt, int64_t step_size, double gamma);

  /// Call once per finished epoch.
  void step();
  double current_lr() const { return opt_.lr(); }

 private:
  Optimizer& opt_;
  double base_lr_;
  int64_t step_size_;
  double gamma_;
  int64_t epoch_ = 0;
};

}  // namespace optim
}  // namespace saufno
