#include "optim/optimizer.h"

#include <cmath>

namespace saufno {
namespace optim {

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

SGD::SGD(std::vector<Var> params, double lr, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Tensor::zeros(p.value().shape()));
  }
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor g = params_[i].grad();
    if (momentum_ > 0.0) {
      velocity_[i].mul_(static_cast<float>(momentum_));
      velocity_[i].add_(g);
      params_[i].value().add_(velocity_[i], static_cast<float>(-lr_));
    } else {
      params_[i].value().add_(g, static_cast<float>(-lr_));
    }
  }
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p.value().shape()));
    v_.push_back(Tensor::zeros(p.value().shape()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value().data();
    const Tensor g = params_[i].grad();
    const float* gp = g.data();
    float* mp = m_[i].data();
    float* vp = v_[i].data();
    const int64_t n = params_[i].numel();
    const float b1 = static_cast<float>(beta1_), b2 = static_cast<float>(beta2_);
    const float wd = static_cast<float>(weight_decay_);
    const float step_size = static_cast<float>(lr_ / bc1);
    const float inv_bc2 = static_cast<float>(1.0 / bc2);
    const float eps = static_cast<float>(eps_);
    for (int64_t j = 0; j < n; ++j) {
      const float grad = gp[j] + wd * w[j];
      mp[j] = b1 * mp[j] + (1.f - b1) * grad;
      vp[j] = b2 * vp[j] + (1.f - b2) * grad * grad;
      const float vhat = vp[j] * inv_bc2;
      w[j] -= step_size * mp[j] / (std::sqrt(vhat) + eps);
    }
  }
}

}  // namespace optim
}  // namespace saufno
