#pragma once

#include <vector>

#include "autograd/variable.h"

namespace saufno {
namespace optim {

/// Optimizer interface over a fixed parameter list. Parameters are Vars
/// whose grad buffers are filled by loss.backward(); step() consumes them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 protected:
  std::vector<Var> params_;
  double lr_ = 1e-3;
};

/// Plain SGD with optional momentum (kept as a reference optimizer for the
/// optimizer unit tests and ablations).
class SGD : public Optimizer {
 public:
  SGD(std::vector<Var> params, double lr, double momentum = 0.0);
  void step() override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam with decoupled weight decay semantics matching the paper's setup
/// (initial lr 1e-4, weight decay 1e-5; fine-tuning drops lr by 10x).
/// Weight decay is applied L2-style (added to the gradient), matching
/// torch.optim.Adam's `weight_decay` that the authors used.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace optim
}  // namespace saufno
