#include "autograd/conv_ops.h"

#include <cstring>
#include <vector>

#include "common/logging.h"
#include "runtime/workspace.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace ops {
namespace {
using detail::Node;
using detail::accumulate_grad;
}  // namespace

Var conv2d(const Var& x, const Var& w, const Var& b, int64_t stride,
           int64_t pad) {
  SAUFNO_CHECK(x.value().dim() == 4, "conv2d input must be [B,C,H,W]");
  SAUFNO_CHECK(w.value().dim() == 4, "conv2d weight must be [Cout,Cin,kh,kw]");
  const int64_t B = x.size(0), cin = x.size(1), h = x.size(2), w_in = x.size(3);
  const int64_t cout = w.size(0), kh = w.size(2), kw = w.size(3);
  SAUFNO_CHECK(w.size(1) == cin, "conv2d channel mismatch: input has " +
                                     std::to_string(cin) + ", weight expects " +
                                     std::to_string(w.size(1)));
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w_in, kw, stride, pad);
  SAUFNO_CHECK(oh > 0 && ow > 0, "conv2d output would be empty");
  const int64_t ck = cin * kh * kw;
  const int64_t plane = oh * ow;

  Tensor out({B, cout, oh, ow});
  runtime::Scratch<float> cols(static_cast<std::size_t>(ck * plane));
  const bool has_bias = b.defined();
  if (has_bias) {
    SAUFNO_CHECK(b.value().dim() == 1 && b.size(0) == cout,
                 "conv2d bias must be [Cout]");
  }

  for (int64_t n = 0; n < B; ++n) {
    im2col(x.value().data() + n * cin * h * w_in, cols.data(), cin, h, w_in,
           kh, kw, stride, pad);
    float* dst = out.data() + n * cout * plane;
    // out[n] = W[cout, ck] * cols[ck, plane]
    gemm(w.value().data(), cols.data(), dst, cout, plane, ck,
         /*accumulate=*/false);
    if (has_bias) {
      const float* bias = b.value().data();
      for (int64_t co = 0; co < cout; ++co) {
        float* row = dst + co * plane;
        for (int64_t i = 0; i < plane; ++i) row[i] += bias[co];
      }
    }
  }

  if (!any_requires_grad({x, w, b.defined() ? b : Var()})) {
    return Var(std::move(out));
  }
  std::vector<Var> inputs = {x, w};
  if (has_bias) inputs.push_back(b);
  auto node = std::make_shared<Node>();
  node->name = "conv2d";
  for (auto& v : inputs) node->inputs.push_back(v.impl());
  auto ix = x.impl(), iw = w.impl();
  auto ib = has_bias ? b.impl() : nullptr;
  node->backward = [=](const Tensor& g) {
    const int64_t ckl = ck, pl = plane;
    Tensor gx = Tensor::zeros({B, cin, h, w_in});
    Tensor gw = Tensor::zeros({cout, cin, kh, kw});
    Tensor gb = has_bias ? Tensor::zeros({cout}) : Tensor();
    runtime::Scratch<float> colbuf(static_cast<std::size_t>(ckl * pl));
    runtime::Scratch<float> gcol(static_cast<std::size_t>(ckl * pl));
    // wT: [ck, cout] used for gx = wT * gout
    Tensor wt = transpose2d(iw->value.reshape({cout, ckl}));
    for (int64_t n = 0; n < B; ++n) {
      const float* gout = g.data() + n * cout * pl;
      // Weight gradient: gW += gout[cout, plane] * cols^T[plane, ck].
      im2col(ix->value.data() + n * cin * h * w_in, colbuf.data(), cin, h,
             w_in, kh, kw, stride, pad);
      // gw[cout, ck] += gout * colbuf^T  ==  gemm(gout, colbuf^T)
      // colbuf^T computed on the fly: use gemm with B transposed by
      // reinterpreting: we need C[co, c] = sum_p gout[co,p] colbuf[c,p].
      // Transpose colbuf once into gcol (reused as scratch).
      for (int64_t c = 0; c < ckl; ++c) {
        for (int64_t p = 0; p < pl; ++p) {
          gcol.data()[p * ckl + c] = colbuf.data()[c * pl + p];
        }
      }
      gemm(gout, gcol.data(), gw.data(), cout, ckl, pl, /*accumulate=*/true);
      // Input gradient: gcols = wT[ck, cout] * gout[cout, plane].
      gemm(wt.data(), gout, gcol.data(), ckl, pl, cout, /*accumulate=*/false);
      col2im(gcol.data(), gx.data() + n * cin * h * w_in, cin, h, w_in, kh,
             kw, stride, pad);
      if (has_bias) {
        float* gbp = gb.data();
        for (int64_t co = 0; co < cout; ++co) {
          const float* row = gout + co * pl;
          double s = 0.0;
          for (int64_t i = 0; i < pl; ++i) s += row[i];
          gbp[co] += static_cast<float>(s);
        }
      }
    }
    accumulate_grad(ix, gx);
    accumulate_grad(iw, gw);
    if (has_bias) accumulate_grad(ib, gb);
  };
  return Var::from_op(std::move(out), node);
}

Var maxpool2d(const Var& x, int64_t kernel) {
  SAUFNO_CHECK(x.value().dim() == 4, "maxpool2d input must be [B,C,H,W]");
  const int64_t B = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  SAUFNO_CHECK(h >= kernel && w >= kernel,
               "maxpool2d: input smaller than kernel");
  const int64_t oh = conv_out_size(h, kernel, kernel, 0);
  const int64_t ow = conv_out_size(w, kernel, kernel, 0);
  Tensor out({B, c, oh, ow});
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<std::size_t>(B * c * oh * ow));
  for (int64_t n = 0; n < B; ++n) {
    saufno::maxpool2d(x.value().data() + n * c * h * w,
                      out.data() + n * c * oh * ow,
                      argmax->data() + n * c * oh * ow, c, h, w, kernel,
                      kernel);
  }
  if (!should_record(x)) return Var(std::move(out));
  auto node = std::make_shared<Node>();
  node->name = "maxpool2d";
  node->inputs.push_back(x.impl());
  auto ix = x.impl();
  node->backward = [=](const Tensor& g) {
    Tensor gx = Tensor::zeros({B, c, h, w});
    const float* gp = g.data();
    float* gxp = gx.data();
    const int64_t pooled = oh * ow;
    for (int64_t n = 0; n < B; ++n) {
      for (int64_t ci = 0; ci < c; ++ci) {
        const int64_t base = (n * c + ci);
        const float* gplane = gp + base * pooled;
        float* gxplane = gxp + base * h * w;
        const int64_t* arg = argmax->data() + base * pooled;
        for (int64_t i = 0; i < pooled; ++i) gxplane[arg[i]] += gplane[i];
      }
    }
    accumulate_grad(ix, gx);
  };
  return Var::from_op(std::move(out), node);
}

}  // namespace ops
}  // namespace saufno
