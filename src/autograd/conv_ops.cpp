#include "autograd/conv_ops.h"

#include <cstring>
#include <vector>

#include "common/logging.h"
#include "plan/trace.h"
#include "runtime/workspace.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace ops {
namespace {
using detail::Node;
using detail::accumulate_grad;
}  // namespace

namespace fwd {

void conv2d_into(const Tensor& x, const Tensor& w, const Tensor* bias,
                 int64_t stride, int64_t pad, int act, Tensor& out) {
  SAUFNO_CHECK(x.dim() == 4, "conv2d input must be [B,C,H,W]");
  SAUFNO_CHECK(w.dim() == 4, "conv2d weight must be [Cout,Cin,kh,kw]");
  const int64_t B = x.size(0), cin = x.size(1), h = x.size(2),
                w_in = x.size(3);
  const int64_t cout = w.size(0), kh = w.size(2), kw = w.size(3);
  SAUFNO_CHECK(w.size(1) == cin, "conv2d channel mismatch: input has " +
                                     std::to_string(cin) +
                                     ", weight expects " +
                                     std::to_string(w.size(1)));
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w_in, kw, stride, pad);
  SAUFNO_CHECK(oh > 0 && ow > 0, "conv2d output would be empty");
  const int64_t ck = cin * kh * kw;
  const int64_t plane = oh * ow;
  SAUFNO_CHECK(out.numel() == B * cout * plane,
               "conv2d destination numel mismatch");
  if (bias != nullptr) {
    SAUFNO_CHECK(bias->dim() == 1 && bias->size(0) == cout,
                 "conv2d bias must be [Cout]");
  }

  runtime::Scratch<float> cols(static_cast<std::size_t>(ck * plane));
  for (int64_t n = 0; n < B; ++n) {
    im2col(x.data() + n * cin * h * w_in, cols.data(), cin, h, w_in, kh, kw,
           stride, pad);
    float* dst = out.data() + n * cout * plane;
    // out[n] = W[cout, ck] * cols[ck, plane]
    gemm(w.data(), cols.data(), dst, cout, plane, ck,
         /*accumulate=*/false);
    if (bias != nullptr) {
      const float* bp = bias->data();
      for (int64_t co = 0; co < cout; ++co) {
        float* row = dst + co * plane;
        for (int64_t i = 0; i < plane; ++i) row[i] += bp[co];
      }
    }
    if (act != 0) {
      for (int64_t i = 0; i < cout * plane; ++i) {
        dst[i] = act_apply(act, dst[i]);
      }
    }
  }
}

void maxpool2d_into(const Tensor& x, int64_t kernel, int64_t* argmax,
                    Tensor& out) {
  SAUFNO_CHECK(x.dim() == 4, "maxpool2d input must be [B,C,H,W]");
  const int64_t B = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  SAUFNO_CHECK(h >= kernel && w >= kernel,
               "maxpool2d: input smaller than kernel");
  const int64_t oh = conv_out_size(h, kernel, kernel, 0);
  const int64_t ow = conv_out_size(w, kernel, kernel, 0);
  SAUFNO_CHECK(out.numel() == B * c * oh * ow,
               "maxpool2d destination numel mismatch");
  runtime::Scratch<int64_t> local(
      static_cast<std::size_t>(argmax == nullptr ? c * oh * ow : 1));
  for (int64_t n = 0; n < B; ++n) {
    int64_t* arg =
        argmax != nullptr ? argmax + n * c * oh * ow : local.data();
    saufno::maxpool2d(x.data() + n * c * h * w, out.data() + n * c * oh * ow,
                      arg, c, h, w, kernel, kernel);
  }
}

}  // namespace fwd

Var conv2d(const Var& x, const Var& w, const Var& b, int64_t stride,
           int64_t pad) {
  SAUFNO_CHECK(x.value().dim() == 4, "conv2d input must be [B,C,H,W]");
  SAUFNO_CHECK(w.value().dim() == 4, "conv2d weight must be [Cout,Cin,kh,kw]");
  const int64_t B = x.size(0), cin = x.size(1), h = x.size(2), w_in = x.size(3);
  const int64_t cout = w.size(0), kh = w.size(2), kw = w.size(3);
  const int64_t oh = conv_out_size(h, w.size(2), stride, pad);
  const int64_t ow = conv_out_size(w_in, w.size(3), stride, pad);
  const int64_t ck = cin * kh * kw;
  const int64_t plane = oh * ow;
  const bool has_bias = b.defined();

  Tensor out({B, cout, oh, ow});
  fwd::conv2d_into(x.value(), w.value(), has_bias ? &b.value() : nullptr,
                   stride, pad, /*act=*/0, out);

  plan::tr::Attrs attrs;
  attrs.ivals = {stride, pad, has_bias ? 1 : 0};
  if (!any_requires_grad({x, w, b.defined() ? b : Var()})) {
    // The undefined bias Var is skipped by the tracer; ivals' has_bias flag
    // tells the executor how many inputs to expect.
    return plan::tr::record(plan::OpCode::kConv2d, {&x, &w, &b},
                            Var(std::move(out)), attrs);
  }
  std::vector<Var> inputs = {x, w};
  if (has_bias) inputs.push_back(b);
  auto node = std::make_shared<Node>();
  node->name = "conv2d";
  for (auto& v : inputs) node->inputs.push_back(v.impl());
  auto ix = x.impl(), iw = w.impl();
  auto ib = has_bias ? b.impl() : nullptr;
  node->backward = [=](const Tensor& g) {
    const int64_t ckl = ck, pl = plane;
    Tensor gx = Tensor::zeros({B, cin, h, w_in});
    Tensor gw = Tensor::zeros({cout, cin, kh, kw});
    Tensor gb = has_bias ? Tensor::zeros({cout}) : Tensor();
    runtime::Scratch<float> colbuf(static_cast<std::size_t>(ckl * pl));
    runtime::Scratch<float> gcol(static_cast<std::size_t>(ckl * pl));
    // wT: [ck, cout] used for gx = wT * gout
    Tensor wt = transpose2d(iw->value.reshape({cout, ckl}));
    for (int64_t n = 0; n < B; ++n) {
      const float* gout = g.data() + n * cout * pl;
      // Weight gradient: gW += gout[cout, plane] * cols^T[plane, ck].
      im2col(ix->value.data() + n * cin * h * w_in, colbuf.data(), cin, h,
             w_in, kh, kw, stride, pad);
      // gw[cout, ck] += gout * colbuf^T  ==  gemm(gout, colbuf^T)
      // colbuf^T computed on the fly: use gemm with B transposed by
      // reinterpreting: we need C[co, c] = sum_p gout[co,p] colbuf[c,p].
      // Transpose colbuf once into gcol (reused as scratch).
      for (int64_t c = 0; c < ckl; ++c) {
        for (int64_t p = 0; p < pl; ++p) {
          gcol.data()[p * ckl + c] = colbuf.data()[c * pl + p];
        }
      }
      gemm(gout, gcol.data(), gw.data(), cout, ckl, pl, /*accumulate=*/true);
      // Input gradient: gcols = wT[ck, cout] * gout[cout, plane].
      gemm(wt.data(), gout, gcol.data(), ckl, pl, cout, /*accumulate=*/false);
      col2im(gcol.data(), gx.data() + n * cin * h * w_in, cin, h, w_in, kh,
             kw, stride, pad);
      if (has_bias) {
        float* gbp = gb.data();
        for (int64_t co = 0; co < cout; ++co) {
          const float* row = gout + co * pl;
          double s = 0.0;
          for (int64_t i = 0; i < pl; ++i) s += row[i];
          gbp[co] += static_cast<float>(s);
        }
      }
    }
    accumulate_grad(ix, gx);
    accumulate_grad(iw, gw);
    if (has_bias) accumulate_grad(ib, gb);
  };
  return plan::tr::record(plan::OpCode::kConv2d, {&x, &w, &b},
                          Var::from_op(std::move(out), node), attrs);
}

Var maxpool2d(const Var& x, int64_t kernel) {
  SAUFNO_CHECK(x.value().dim() == 4, "maxpool2d input must be [B,C,H,W]");
  const int64_t B = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  SAUFNO_CHECK(h >= kernel && w >= kernel,
               "maxpool2d: input smaller than kernel");
  const int64_t oh = conv_out_size(h, kernel, kernel, 0);
  const int64_t ow = conv_out_size(w, kernel, kernel, 0);
  Tensor out({B, c, oh, ow});
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<std::size_t>(B * c * oh * ow));
  fwd::maxpool2d_into(x.value(), kernel, argmax->data(), out);
  plan::tr::Attrs attrs;
  attrs.ivals = {kernel};
  if (!should_record(x)) {
    return plan::tr::record(plan::OpCode::kMaxPool2d, {&x},
                            Var(std::move(out)), attrs);
  }
  auto node = std::make_shared<Node>();
  node->name = "maxpool2d";
  node->inputs.push_back(x.impl());
  auto ix = x.impl();
  node->backward = [=](const Tensor& g) {
    Tensor gx = Tensor::zeros({B, c, h, w});
    const float* gp = g.data();
    float* gxp = gx.data();
    const int64_t pooled = oh * ow;
    for (int64_t n = 0; n < B; ++n) {
      for (int64_t ci = 0; ci < c; ++ci) {
        const int64_t base = (n * c + ci);
        const float* gplane = gp + base * pooled;
        float* gxplane = gxp + base * h * w;
        const int64_t* arg = argmax->data() + base * pooled;
        for (int64_t i = 0; i < pooled; ++i) gxplane[arg[i]] += gplane[i];
      }
    }
    accumulate_grad(ix, gx);
  };
  return plan::tr::record(plan::OpCode::kMaxPool2d, {&x},
                          Var::from_op(std::move(out), node), attrs);
}

}  // namespace ops
}  // namespace saufno
