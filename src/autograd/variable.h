#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace saufno {

class Var;

namespace detail {

struct VarImpl;

/// A producer node in the define-by-run autograd graph.
struct Node {
  std::string name;  // op name, for debugging / graph dumps
  /// Inputs kept alive by the node; grads are accumulated into their impls.
  std::vector<std::shared_ptr<VarImpl>> inputs;
  /// The impl this node produced. Non-owning: the output impl owns the node
  /// (VarImpl -> shared_ptr<Node>), so the node cannot outlive its output.
  VarImpl* output = nullptr;
  /// Backward rule: receives dL/d(output) and must accumulate dL/d(input_i)
  /// into inputs[i] via accumulate_grad.
  std::function<void(const Tensor& grad_out)> backward;
};

struct VarImpl {
  Tensor value;
  Tensor grad;  // undefined until first accumulation
  bool requires_grad = false;
  std::shared_ptr<Node> node;  // producer; null for leaves
};

/// Accumulate `g` into the impl's grad buffer (allocating on first use).
/// No-op when the impl does not require grad — callers can accumulate
/// unconditionally and keep backward rules simple.
void accumulate_grad(const std::shared_ptr<VarImpl>& impl, const Tensor& g);

}  // namespace detail

/// Thread-local autograd switch. While disabled, every op behaves as if no
/// input required a gradient: values are computed with the same kernels but
/// no Node is recorded and no input handles are retained. Vars themselves
/// keep reporting their own requires_grad flag (so parameter registration
/// and optimizers see the true flag, as in torch.no_grad()); only the
/// record/don't-record decision consults the mode, via should_record /
/// any_requires_grad. The inference engine wraps each batched forward in a
/// NoGradGuard so serving never pays for (or leaks) tape construction.
/// Per-thread on purpose: a training loop and a serving thread can coexist
/// in one process.
class GradMode {
 public:
  static bool enabled();
  static void set_enabled(bool enabled);
};

/// RAII scope that disables gradient recording on the current thread.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Differentiable tensor handle (the "torch.Tensor with requires_grad" of
/// this library). Copying a Var is O(1) and shares value, grad and graph.
///
/// Typical use:
///   Var w(Tensor::randn({k, n}, rng), /*requires_grad=*/true);
///   Var loss = mse_loss(matmul(x, w), target);
///   loss.backward();
///   // w.grad() now holds dL/dw
class Var {
 public:
  /// Undefined Var (no storage). `defined()` is false.
  Var();
  /// Leaf variable wrapping `value`.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr && impl_->value.defined(); }
  const Tensor& value() const;
  Tensor& value();
  const Shape& shape() const { return value().shape(); }
  int64_t size(int64_t i) const { return value().size(i); }
  int64_t numel() const { return value().numel(); }

  bool requires_grad() const;
  /// Gradient tensor; zeros of the value's shape if never accumulated.
  Tensor grad() const;
  void zero_grad();

  /// Runs reverse-mode accumulation from this (scalar) variable:
  /// topologically sorts the producer graph and applies each node's
  /// backward rule exactly once, consumers before producers.
  void backward();

  /// A leaf view of the same value with the graph cut (no grad flows).
  Var detach() const;

  std::shared_ptr<detail::VarImpl> impl() const { return impl_; }

  /// Internal factory used by ops: wraps a computed value together with its
  /// producer node. requires_grad is true iff the node is non-null.
  static Var from_op(Tensor value, std::shared_ptr<detail::Node> node);

 private:
  std::shared_ptr<detail::VarImpl> impl_;
};

/// True if the op must record a node: grad mode enabled AND some input
/// requires grad.
bool any_requires_grad(const std::vector<Var>& vars);

/// Single-input variant of the recording decision (avoids a vector).
inline bool should_record(const Var& v) {
  return GradMode::enabled() && v.requires_grad();
}

}  // namespace saufno
