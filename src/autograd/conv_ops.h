#pragma once

#include "autograd/variable.h"

namespace saufno {
namespace ops {

/// Differentiable 2-D convolution.
///   x: [B, Cin, H, W]
///   w: [Cout, Cin, kh, kw]
///   b: [Cout] (optional: pass an undefined Var to skip)
/// Implemented as im2col + gemm per image; the backward recomputes the
/// column buffer instead of caching it to keep activation memory flat
/// (important for the U-Net encoder at training time on a small machine).
Var conv2d(const Var& x, const Var& w, const Var& b, int64_t stride,
           int64_t pad);

/// Differentiable max pooling, kernel==stride (the U-Net uses 2x2).
/// x: [B, C, H, W] -> [B, C, H/k, W/k]; backward scatters to the argmax.
Var maxpool2d(const Var& x, int64_t kernel);

}  // namespace ops
}  // namespace saufno
