#pragma once

#include "autograd/variable.h"

namespace saufno {
namespace ops {

namespace fwd {

/// Raw conv2d forward (im2col + gemm per image) shared by the autograd op
/// and the plan executor — one implementation is what keeps compiled plans
/// bit-identical to the interpreter. `bias` may be null. `act` is an
/// act_apply code (0 none, 1 relu, 2 gelu, 3 tanh) applied after the bias;
/// the fused application matches a separate activation op exactly because
/// the per-element expressions are the same. `out` must be [B,Cout,oh,ow]
/// (contents ignored; fully overwritten).
void conv2d_into(const Tensor& x, const Tensor& w, const Tensor* bias,
                 int64_t stride, int64_t pad, int act, Tensor& out);

/// Raw maxpool forward (kernel == stride). `argmax` receives the winning
/// flat in-plane index per pooled element (B*C*oh*ow entries) for the
/// backward scatter; pass null when gradients are not needed.
void maxpool2d_into(const Tensor& x, int64_t kernel, int64_t* argmax,
                    Tensor& out);

}  // namespace fwd

/// Differentiable 2-D convolution.
///   x: [B, Cin, H, W]
///   w: [Cout, Cin, kh, kw]
///   b: [Cout] (optional: pass an undefined Var to skip)
/// Implemented as im2col + gemm per image; the backward recomputes the
/// column buffer instead of caching it to keep activation memory flat
/// (important for the U-Net encoder at training time on a small machine).
Var conv2d(const Var& x, const Var& w, const Var& b, int64_t stride,
           int64_t pad);

/// Differentiable max pooling, kernel==stride (the U-Net uses 2x2).
/// x: [B, C, H, W] -> [B, C, H/k, W/k]; backward scatters to the argmax.
Var maxpool2d(const Var& x, int64_t kernel);

}  // namespace ops
}  // namespace saufno
