#include "autograd/spectral_ops.h"

#include <complex>
#include <vector>

#include "common/logging.h"
#include "fft/fft.h"

namespace saufno {
namespace ops {
namespace {

using detail::Node;
using detail::accumulate_grad;

/// Kept-mode row indices in the H-point spectrum for effective mode count
/// m1e out of configured m1: weight row r < m1 maps to k1 = r (kept iff
/// r < m1e), weight row m1 + s maps to k1 = H - m1e + s... see below.
struct ModeMap {
  // (weight_row, spectrum_row) pairs actually used at this resolution.
  std::vector<std::pair<int64_t, int64_t>> rows;
  int64_t m2e = 0;  // columns 0..m2e-1 used
};

ModeMap make_mode_map(int64_t H, int64_t W, int64_t m1, int64_t m2) {
  ModeMap mm;
  const int64_t m1e = std::min(m1, H / 2);
  mm.m2e = std::min(m2, W / 2);
  mm.rows.reserve(static_cast<std::size_t>(2 * m1e));
  // Positive frequencies: weight rows 0..m1e-1 -> spectrum rows 0..m1e-1.
  for (int64_t r = 0; r < m1e; ++r) mm.rows.emplace_back(r, r);
  // Negative frequencies: weight rows m1..m1+m1e-1 -> spectrum rows
  // H-m1e..H-1. Indexing from m1 (not 2*m1-m1e) keeps a given weight row
  // bound to the same frequency k1 at every resolution, which transfer
  // learning across fidelities relies on.
  for (int64_t s = 0; s < m1e; ++s) mm.rows.emplace_back(m1 + s, H - m1e + s);
  return mm;
}

}  // namespace

Var spectral_conv2d(const Var& x, const Var& w, int64_t m1, int64_t m2,
                    int64_t cout) {
  SAUFNO_CHECK(x.value().dim() == 4, "spectral_conv2d input must be [B,C,H,W]");
  SAUFNO_CHECK(w.value().dim() == 5,
               "spectral_conv2d weight must be [Cin,Cout,2*m1,m2,2]");
  const int64_t B = x.size(0), cin = x.size(1), H = x.size(2), W = x.size(3);
  SAUFNO_CHECK(w.size(0) == cin && w.size(1) == cout &&
                   w.size(2) == 2 * m1 && w.size(3) == m2 && w.size(4) == 2,
               "spectral_conv2d weight shape mismatch");
  const int64_t plane = H * W;
  const ModeMap mm = make_mode_map(H, W, m1, m2);

  // FFT of every input channel: Xf[b, i] (complex plane).
  std::vector<cfloat> xf(static_cast<std::size_t>(B * cin * plane));
  {
    const float* xp = x.value().data();
    for (int64_t i = 0; i < B * cin * plane; ++i) {
      xf[static_cast<std::size_t>(i)] = cfloat(xp[i], 0.f);
    }
    fft_2d(xf.data(), B * cin, H, W, /*inverse=*/false);
  }

  auto widx = [m2, m1](int64_t i, int64_t o, int64_t r, int64_t c,
                       int64_t cout_) {
    return (((i * cout_ + o) * (2 * m1) + r) * m2 + c) * 2;
  };

  // Mix channels on the kept modes: Yf[b, o, k] = sum_i W[i,o,k] Xf[b,i,k].
  std::vector<cfloat> yf(static_cast<std::size_t>(B * cout * plane),
                         cfloat(0.f, 0.f));
  const float* wp = w.value().data();
  for (int64_t b = 0; b < B; ++b) {
    for (const auto& [wr, kr] : mm.rows) {
      for (int64_t c = 0; c < mm.m2e; ++c) {
        const int64_t koff = kr * W + c;
        for (int64_t o = 0; o < cout; ++o) {
          cfloat acc(0.f, 0.f);
          for (int64_t i = 0; i < cin; ++i) {
            const float* wc = wp + widx(i, o, wr, c, cout);
            const cfloat wk(wc[0], wc[1]);
            acc += wk * xf[static_cast<std::size_t>((b * cin + i) * plane + koff)];
          }
          yf[static_cast<std::size_t>((b * cout + o) * plane + koff)] = acc;
        }
      }
    }
  }
  fft_2d(yf.data(), B * cout, H, W, /*inverse=*/true);
  Tensor out({B, cout, H, W});
  {
    float* op = out.data();
    for (int64_t i = 0; i < B * cout * plane; ++i) {
      op[i] = yf[static_cast<std::size_t>(i)].real();
    }
  }

  if (!any_requires_grad({x, w})) return Var(std::move(out));

  auto node = std::make_shared<Node>();
  node->name = "spectral_conv2d";
  node->inputs = {x.impl(), w.impl()};
  auto ix = x.impl(), iw = w.impl();
  node->backward = [=](const Tensor& g) {
    // G[b,o] = IFFT2(g[b,o])  (complex).
    std::vector<cfloat> gf(static_cast<std::size_t>(B * cout * plane));
    const float* gp = g.data();
    for (int64_t i = 0; i < B * cout * plane; ++i) {
      gf[static_cast<std::size_t>(i)] = cfloat(gp[i], 0.f);
    }
    fft_2d(gf.data(), B * cout, H, W, /*inverse=*/true);

    // Recompute Xf (cheaper than caching activations across a whole epoch).
    std::vector<cfloat> xf2(static_cast<std::size_t>(B * cin * plane));
    const float* xp = ix->value.data();
    for (int64_t i = 0; i < B * cin * plane; ++i) {
      xf2[static_cast<std::size_t>(i)] = cfloat(xp[i], 0.f);
    }
    fft_2d(xf2.data(), B * cin, H, W, /*inverse=*/false);

    const float* wp2 = iw->value.data();
    Tensor gw = Tensor::zeros(iw->value.shape());
    float* gwp = gw.data();
    // Z[b,i,k] = sum_o G[b,o,k] * W[i,o,k]  -> gx = Re(FFT2(Z)).
    std::vector<cfloat> z(static_cast<std::size_t>(B * cin * plane),
                          cfloat(0.f, 0.f));
    for (int64_t b = 0; b < B; ++b) {
      for (const auto& [wr, kr] : mm.rows) {
        for (int64_t c = 0; c < mm.m2e; ++c) {
          const int64_t koff = kr * W + c;
          for (int64_t o = 0; o < cout; ++o) {
            const cfloat gk =
                gf[static_cast<std::size_t>((b * cout + o) * plane + koff)];
            for (int64_t i = 0; i < cin; ++i) {
              const float* wc = wp2 + widx(i, o, wr, c, cout);
              const cfloat wk(wc[0], wc[1]);
              z[static_cast<std::size_t>((b * cin + i) * plane + koff)] +=
                  gk * wk;
              // gW[i,o,k] += conj(G[b,o,k] * Xf[b,i,k])
              const cfloat gx_w =
                  gk * xf2[static_cast<std::size_t>((b * cin + i) * plane + koff)];
              float* gwc = gwp + widx(i, o, wr, c, cout);
              gwc[0] += gx_w.real();
              gwc[1] -= gx_w.imag();
            }
          }
        }
      }
    }
    fft_2d(z.data(), B * cin, H, W, /*inverse=*/false);
    Tensor gx({B, cin, H, W});
    float* gxp = gx.data();
    for (int64_t i = 0; i < B * cin * plane; ++i) {
      gxp[i] = z[static_cast<std::size_t>(i)].real();
    }
    accumulate_grad(ix, gx);
    accumulate_grad(iw, gw);
  };
  return Var::from_op(std::move(out), node);
}

}  // namespace ops
}  // namespace saufno
