#include "autograd/spectral_ops.h"

#include <complex>
#include <cstring>

#include "common/logging.h"
#include "fft/fft.h"
#include "plan/trace.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace saufno {
namespace ops {

namespace spectral {

ModeMap make_mode_map(int64_t H, int64_t W, int64_t m1, int64_t m2) {
  ModeMap mm;
  const int64_t m1e = std::min(m1, H / 2);
  mm.m2e = std::min(m2, W / 2);
  mm.rows.reserve(static_cast<std::size_t>(2 * m1e));
  // Positive frequencies: weight rows 0..m1e-1 -> spectrum rows 0..m1e-1.
  for (int64_t r = 0; r < m1e; ++r) mm.rows.emplace_back(r, r);
  // Negative frequencies: weight rows m1..m1+m1e-1 -> spectrum rows
  // H-m1e..H-1. Indexing from m1 (not 2*m1-m1e) keeps a given weight row
  // bound to the same frequency k1 at every resolution, which transfer
  // learning across fidelities relies on.
  for (int64_t s = 0; s < m1e; ++s) mm.rows.emplace_back(m1 + s, H - m1e + s);
  return mm;
}

}  // namespace spectral

namespace {

using detail::Node;
using detail::accumulate_grad;
using spectral::ModeMap;
using spectral::make_mode_map;

/// Rewrite one compact [H, wk] spectrum Y (nonzero only on the kept modes)
/// so that irfft_2d(result) == Re(IFFT2(Y embedded in the full H x W
/// spectrum)). Since every kept column satisfies k2 < W/2, the Hermitian
/// mirror of column k2 >= 1 lands outside the kept set and the identity
/// Re(IFFT(Y)) = IFFT((Y + herm(Y))/2) reduces to: symmetrize column 0
/// across rows, halve the remaining kept columns.
void herm_prep(cfloat* plane, int64_t H, int64_t wk,
               const std::vector<std::pair<int64_t, int64_t>>& rows,
               cfloat* colbuf) {
  for (int64_t k1 = 0; k1 < H; ++k1) colbuf[k1] = plane[k1 * wk];
  for (int64_t k1 = 0; k1 < H; ++k1) {
    plane[k1 * wk] = 0.5f * (colbuf[k1] + std::conj(colbuf[(H - k1) % H]));
  }
  for (const auto& [wr, kr] : rows) {
    (void)wr;
    for (int64_t c = 1; c < wk; ++c) plane[kr * wk + c] *= 0.5f;
  }
}

}  // namespace

namespace fwd {

void spectral_conv2d_into(const Tensor& x, const Tensor& w, int64_t m1,
                          int64_t m2, int64_t cout, Tensor& out) {
  SAUFNO_CHECK(x.dim() == 4, "spectral_conv2d input must be [B,C,H,W]");
  SAUFNO_CHECK(w.dim() == 5,
               "spectral_conv2d weight must be [Cin,Cout,2*m1,m2,2]");
  const int64_t B = x.size(0), cin = x.size(1), H = x.size(2), W = x.size(3);
  SAUFNO_CHECK(w.size(0) == cin && w.size(1) == cout &&
                   w.size(2) == 2 * m1 && w.size(3) == m2 && w.size(4) == 2,
               "spectral_conv2d weight shape mismatch");
  SAUFNO_CHECK(out.numel() == B * cout * H * W,
               "spectral_conv2d destination numel mismatch");
  const ModeMap mm = make_mode_map(H, W, m1, m2);
  const int64_t wk = mm.m2e;
  const int64_t nr = static_cast<int64_t>(mm.rows.size());

  auto widx = [m2, m1](int64_t i, int64_t o, int64_t r, int64_t c,
                       int64_t cout_) {
    return (((i * cout_ + o) * (2 * m1) + r) * m2 + c) * 2;
  };

  if (wk == 0 || nr == 0) {
    // Grid too coarse for any kept mode: the operator is identically zero.
    out.fill_(0.f);
    return;
  }

  const int64_t cs = H * wk;  // compact half-spectrum plane size

  runtime::Scratch<cfloat> xf(static_cast<std::size_t>(B * cin * cs));
  runtime::Scratch<cfloat> yf(static_cast<std::size_t>(B * cout * cs));
  rfft_2d(x.data(), xf.data(), B * cin, H, W, wk);
  yf.zero();

  // Mix channels on the kept modes: Yf[b,o,k] = sum_i W[i,o,k] Xf[b,i,k].
  // One chunk owns one (batch, kept-row) pair, so every output row is
  // written by exactly one chunk and the i-accumulation order is fixed —
  // bit-identical for any thread count. The inner c loop runs over three
  // contiguous streams (the kept columns are adjacent in both the compact
  // spectrum and the weight layout), i.e. a small complex GEMM per mode
  // row with the column index vectorized.
  const float* wp = w.data();
  const float* xfp = reinterpret_cast<const float*>(xf.data());
  float* yfp = reinterpret_cast<float*>(yf.data());
  runtime::parallel_for(0, B * nr, 1, [&](int64_t i0, int64_t i1) {
    for (int64_t idx = i0; idx < i1; ++idx) {
      const int64_t b = idx / nr;
      const auto& [wr, kr] = mm.rows[static_cast<std::size_t>(idx % nr)];
      for (int64_t o = 0; o < cout; ++o) {
        float* yrow = yfp + 2 * (((b * cout + o) * H + kr) * wk);
        for (int64_t i = 0; i < cin; ++i) {
          const float* wrow = wp + widx(i, o, wr, 0, cout);
          const float* xrow = xfp + 2 * (((b * cin + i) * H + kr) * wk);
          for (int64_t c = 0; c < wk; ++c) {
            const float xr = xrow[2 * c], xi = xrow[2 * c + 1];
            const float ar = wrow[2 * c], ai = wrow[2 * c + 1];
            yrow[2 * c] += ar * xr - ai * xi;
            yrow[2 * c + 1] += ar * xi + ai * xr;
          }
        }
      }
    }
  });

  runtime::parallel_for(0, B * cout, 1, [&](int64_t p0, int64_t p1) {
    runtime::Scratch<cfloat> colbuf(static_cast<std::size_t>(H));
    for (int64_t p = p0; p < p1; ++p) {
      herm_prep(yf.data() + p * cs, H, wk, mm.rows, colbuf.data());
    }
  });
  irfft_2d(yf.data(), out.data(), B * cout, H, W, wk, 1.f);
}

}  // namespace fwd

Var spectral_conv2d(const Var& x, const Var& w, int64_t m1, int64_t m2,
                    int64_t cout) {
  SAUFNO_CHECK(x.value().dim() == 4, "spectral_conv2d input must be [B,C,H,W]");
  SAUFNO_CHECK(w.value().dim() == 5,
               "spectral_conv2d weight must be [Cin,Cout,2*m1,m2,2]");
  const int64_t B = x.size(0), cin = x.size(1), H = x.size(2), W = x.size(3);
  SAUFNO_CHECK(w.size(0) == cin && w.size(1) == cout &&
                   w.size(2) == 2 * m1 && w.size(3) == m2 && w.size(4) == 2,
               "spectral_conv2d weight shape mismatch");
  const ModeMap mm = make_mode_map(H, W, m1, m2);
  const int64_t wk = mm.m2e;
  const int64_t nr = static_cast<int64_t>(mm.rows.size());

  auto widx = [m2, m1](int64_t i, int64_t o, int64_t r, int64_t c,
                       int64_t cout_) {
    return (((i * cout_ + o) * (2 * m1) + r) * m2 + c) * 2;
  };

  plan::tr::Attrs attrs;
  attrs.ivals = {m1, m2, cout};

  if (wk == 0 || nr == 0) {
    // Grid too coarse for any kept mode: the operator is identically zero.
    Tensor out = Tensor::zeros({B, cout, H, W});
    if (!any_requires_grad({x, w})) {
      return plan::tr::record(plan::OpCode::kSpectralConv2d, {&x, &w},
                              Var(std::move(out)), attrs);
    }
    auto node = std::make_shared<Node>();
    node->name = "spectral_conv2d";
    node->inputs = {x.impl(), w.impl()};
    auto ix = x.impl(), iw = w.impl();
    node->backward = [=](const Tensor&) {
      accumulate_grad(ix, Tensor::zeros(ix->value.shape()));
      accumulate_grad(iw, Tensor::zeros(iw->value.shape()));
    };
    return plan::tr::record(plan::OpCode::kSpectralConv2d, {&x, &w},
                            Var::from_op(std::move(out), node), attrs);
  }

  const int64_t cs = H * wk;  // compact half-spectrum plane size

  // Output and input-gradient tensors are arena scratch: every element is
  // written by the inverse transform, and steady-state training/serving
  // then runs the whole spectral path without touching the heap.
  Tensor out = Tensor::scratch({B, cout, H, W});
  fwd::spectral_conv2d_into(x.value(), w.value(), m1, m2, cout, out);

  if (!any_requires_grad({x, w})) {
    return plan::tr::record(plan::OpCode::kSpectralConv2d, {&x, &w},
                            Var(std::move(out)), attrs);
  }

  auto node = std::make_shared<Node>();
  node->name = "spectral_conv2d";
  node->inputs = {x.impl(), w.impl()};
  auto ix = x.impl(), iw = w.impl();
  node->backward = [=](const Tensor& g) {
    // Adjoints on half-spectra. With R = rfft2(g) (unnormalized) and
    // N = H*W, the seed's G = IFFT2(g) equals conj(R)/N at every kept mode,
    // so:
    //   gW[i,o,k] = sum_b R[b,o,k] * conj(Xf[b,i,k]) / N
    //   gx        = Re(FFT2(z)),  z[b,i,k] = sum_o G[b,o,k] W[i,o,k]
    // and with zc = N * conj(z) = sum_o R[b,o,k] * conj(W[i,o,k]) the
    // identity Re(FFT2(z)) = N * Re(IFFT2(conj z)) makes
    // gx = irfft_2d(herm_prep(zc), scale = 1).
    runtime::Scratch<cfloat> gf(static_cast<std::size_t>(B * cout * cs));
    runtime::Scratch<cfloat> xf2(static_cast<std::size_t>(B * cin * cs));
    runtime::Scratch<cfloat> zc(static_cast<std::size_t>(B * cin * cs));
    rfft_2d(g.data(), gf.data(), B * cout, H, W, wk);
    // Recompute Xf (cheaper than caching activations across a whole epoch).
    rfft_2d(ix->value.data(), xf2.data(), B * cin, H, W, wk);
    zc.zero();

    const float* wp2 = iw->value.data();
    Tensor gw = Tensor::zeros(iw->value.shape());
    float* gwp = gw.data();
    const float* gfp = reinterpret_cast<const float*>(gf.data());
    const float* xfp = reinterpret_cast<const float*>(xf2.data());
    float* zp = reinterpret_cast<float*>(zc.data());
    // One chunk owns one kept row: its weight row wr (for gW) and its
    // spectrum row kr (for zc) are touched by no other chunk, and the b/o
    // accumulation order is fixed — bit-identical for any thread count.
    runtime::parallel_for(0, nr, 1, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const auto& [wr, kr] = mm.rows[static_cast<std::size_t>(r)];
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t o = 0; o < cout; ++o) {
            const float* grow = gfp + 2 * (((b * cout + o) * H + kr) * wk);
            for (int64_t i = 0; i < cin; ++i) {
              float* zrow = zp + 2 * (((b * cin + i) * H + kr) * wk);
              const float* xrow = xfp + 2 * (((b * cin + i) * H + kr) * wk);
              const float* wrow = wp2 + widx(i, o, wr, 0, cout);
              float* gwrow = gwp + widx(i, o, wr, 0, cout);
              for (int64_t c = 0; c < wk; ++c) {
                const float gr = grow[2 * c], gi = grow[2 * c + 1];
                const float ar = wrow[2 * c], ai = wrow[2 * c + 1];
                // zc += R * conj(W)
                zrow[2 * c] += gr * ar + gi * ai;
                zrow[2 * c + 1] += gi * ar - gr * ai;
                // gW_complex += R * conj(Xf)  (scaled by 1/N below)
                const float xr = xrow[2 * c], xi = xrow[2 * c + 1];
                gwrow[2 * c] += gr * xr + gi * xi;
                gwrow[2 * c + 1] += gi * xr - gr * xi;
              }
            }
          }
        }
      }
    });
    gw.mul_(1.f / static_cast<float>(H * W));

    runtime::parallel_for(0, B * cin, 1, [&](int64_t p0, int64_t p1) {
      runtime::Scratch<cfloat> colbuf(static_cast<std::size_t>(H));
      for (int64_t p = p0; p < p1; ++p) {
        herm_prep(zc.data() + p * cs, H, wk, mm.rows, colbuf.data());
      }
    });
    Tensor gx = Tensor::scratch({B, cin, H, W});
    irfft_2d(zc.data(), gx.data(), B * cin, H, W, wk, 1.f);
    accumulate_grad(ix, gx);
    accumulate_grad(iw, gw);
  };
  return plan::tr::record(plan::OpCode::kSpectralConv2d, {&x, &w},
                          Var::from_op(std::move(out), node), attrs);
}

}  // namespace ops
}  // namespace saufno
