#pragma once

#include "autograd/variable.h"

namespace saufno {
namespace ops {

/// Differentiable Fourier-domain convolution — the kernel integral operator
/// K of Eq. (6)/(8) in the paper.
///
///   x: [B, Cin, H, W] real
///   w: [Cin, Cout, 2*m1, m2, 2] — learnable complex kernel rho(xi); the
///      last dim holds (re, im); row r < m1 addresses frequency k1 = r and
///      row r >= m1 addresses the negative frequency k1 = H - (2*m1 - r);
///      columns address k2 = 0..m2-1.
///
/// Forward: y = Re( IFFT2( W(k) * FFT2(x) ) ) with modes outside the kept
/// set zeroed. The op is real-linear in x, so the backward uses the adjoint
/// derived in DESIGN.md:
///   gx = Re( FFT2( IFFT2(g) ⊙ W ) ),   gW = conj( IFFT2(g) ⊙ FFT2(x) ).
///
/// Mesh invariance: when H (or W) is too small for the configured modes the
/// kept set is clamped to m1_eff = min(m1, H/2), m2_eff = min(m2, W/2); the
/// extra weights simply stay unused at coarse resolutions, which is what
/// lets one parameter set serve both fidelities in transfer learning.
Var spectral_conv2d(const Var& x, const Var& w, int64_t m1, int64_t m2,
                    int64_t cout);

}  // namespace ops
}  // namespace saufno
