#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace saufno {
namespace ops {

namespace spectral {

/// Kept-mode row indices in the H-point spectrum for effective mode count
/// m1e out of configured m1: weight row r < m1 maps to k1 = r (kept iff
/// r < m1e), weight row m1 + s maps to k1 = H - m1e + s.
struct ModeMap {
  // (weight_row, spectrum_row) pairs actually used at this resolution.
  std::vector<std::pair<int64_t, int64_t>> rows;
  int64_t m2e = 0;  // columns 0..m2e-1 used
};

/// Exposed so the FFT pruning tests can exercise the exact kept-mode sets
/// the spectral layers produce at every resolution.
ModeMap make_mode_map(int64_t H, int64_t W, int64_t m1, int64_t m2);

}  // namespace spectral

namespace fwd {

/// Raw spectral_conv2d forward shared by the autograd op and the plan
/// executor (single implementation => bit-identical compiled plans). When
/// the grid keeps no modes the operator is identically zero and `out` is
/// zero-filled; otherwise every element is written by the inverse FFT.
void spectral_conv2d_into(const Tensor& x, const Tensor& w, int64_t m1,
                          int64_t m2, int64_t cout, Tensor& out);

}  // namespace fwd

/// Differentiable Fourier-domain convolution — the kernel integral operator
/// K of Eq. (6)/(8) in the paper.
///
///   x: [B, Cin, H, W] real
///   w: [Cin, Cout, 2*m1, m2, 2] — learnable complex kernel rho(xi); the
///      last dim holds (re, im); row r < m1 addresses frequency k1 = r and
///      row r >= m1 addresses the negative frequency k1 = H - (2*m1 - r);
///      columns address k2 = 0..m2-1.
///
/// Forward: y = Re( IFFT2( W(k) * FFT2(x) ) ) with modes outside the kept
/// set zeroed. The op is real-linear in x, so the backward uses the adjoint
/// derived in DESIGN.md:
///   gx = Re( FFT2( IFFT2(g) ⊙ W ) ),   gW = conj( IFFT2(g) ⊙ FFT2(x) ).
///
/// Implementation: the input is real, so both transforms run on compact
/// [H, m2e] Hermitian half-spectra (rfft_2d/irfft_2d) and the column passes
/// only ever touch the m2e kept columns — per-plane cost scales with kept
/// modes, not grid width. Taking the real part of the inverse of the
/// (non-Hermitian) weighted spectrum is algebraically folded into a column-0
/// symmetrization plus halving of the remaining kept columns, which makes
/// the truncated inverse exactly equal to the seed's
/// Re(full-complex-IFFT2). Scratch comes from the workspace arena, so
/// steady-state forwards allocate nothing.
///
/// Mesh invariance: when H (or W) is too small for the configured modes the
/// kept set is clamped to m1_eff = min(m1, H/2), m2_eff = min(m2, W/2); the
/// extra weights simply stay unused at coarse resolutions, which is what
/// lets one parameter set serve both fidelities in transfer learning.
Var spectral_conv2d(const Var& x, const Var& w, int64_t m1, int64_t m2,
                    int64_t cout);

}  // namespace ops
}  // namespace saufno
