#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace saufno {
namespace ops {

namespace spectral {

/// (weight_index, spectrum_index) pairs for one signed-frequency axis:
/// weight slots 0..m-1 hold positive frequencies, slots m..2m-1 negative
/// ones; both clamped to the axis Nyquist limit n/2. Exposed for the FFT
/// pruning tests.
std::vector<std::pair<int64_t, int64_t>> signed_axis_map(int64_t n,
                                                         int64_t m);

}  // namespace spectral

namespace fwd {

/// Raw spectral_conv3d forward shared by the autograd op and the plan
/// executor (single implementation => bit-identical compiled plans). When
/// the grid keeps no modes, `out` is zero-filled; otherwise every element
/// is written by the inverse FFT.
void spectral_conv3d_into(const Tensor& x, const Tensor& w, int64_t m1,
                          int64_t m2, int64_t m3, int64_t cout, Tensor& out);

}  // namespace fwd

/// Differentiable 3-D Fourier-domain convolution — the volumetric kernel
/// integral operator for models that predict the FULL 3-D temperature
/// distribution (Section IV-A: "The model output is a three-dimensional
/// temperature distribution").
///
///   x: [B, Cin, D, H, W] real
///   w: [Cin, Cout, 2*m1, 2*m2, m3, 2] — complex kernel; the first two
///      mode dims carry positive and negative frequencies along D and H
///      (same row convention as the 2-D op), the third keeps k3 = 0..m3-1;
///      the last dim is (re, im).
///
/// Forward: y = Re( IFFT3( W(k) * FFT3(x) ) ) on the kept mode set; the
/// backward applies the same adjoints as the 2-D case extended to three
/// axes (see DESIGN.md):
///   gx = Re( FFT3( IFFT3(g) ⊙ W ) ),   gW = conj( IFFT3(g) ⊙ FFT3(x) ).
/// Modes are clamped to each axis's Nyquist limit, so one parameter set
/// serves every grid — including the thin z-axis of chip stacks.
///
/// Like the 2-D op, all transforms run on compact [D, H, m3e] Hermitian
/// half-spectra with the depth pass pruned to the kept H-frequencies, the
/// real-part-of-inverse folded into a k3=0 symmetrization, and scratch
/// served by the workspace arena.
Var spectral_conv3d(const Var& x, const Var& w, int64_t m1, int64_t m2,
                    int64_t m3, int64_t cout);

}  // namespace ops
}  // namespace saufno
