#pragma once

#include "autograd/variable.h"

namespace saufno {
namespace ops {

// ---------------------------------------------------------------------------
// Differentiable ops over Var. Each function computes the value with the raw
// tensor kernels and, when any input requires grad, records a Node whose
// backward rule accumulates input gradients. Broadcasting follows numpy
// semantics; the backward reduces gradients back to the input shapes.
// ---------------------------------------------------------------------------

// Elementwise arithmetic (broadcasting).
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);
Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);
Var neg(const Var& a);

// Elementwise nonlinearities.
Var relu(const Var& a);
Var gelu(const Var& a);
Var tanh(const Var& a);
Var sigmoid(const Var& a);
Var exp(const Var& a);
Var log(const Var& a);
Var sqrt(const Var& a);
Var square(const Var& a);
Var abs(const Var& a);

// Shape ops.
Var reshape(const Var& a, Shape new_shape);
Var permute(const Var& a, const std::vector<int64_t>& perm);
Var slice(const Var& a, int64_t dim, int64_t start, int64_t length);
Var cat(const std::vector<Var>& vs, int64_t dim);
Var pad2d(const Var& a, int64_t top, int64_t bottom, int64_t left,
          int64_t right);

// Linear algebra.
Var matmul(const Var& a, const Var& b);
Var bmm(const Var& a, const Var& b);

// Reductions.
Var sum_all(const Var& a);   // -> shape [1]
Var mean_all(const Var& a);  // -> shape [1]
Var sum_dim(const Var& a, int64_t dim, bool keepdim);

// Softmax along the last dimension (fused, numerically stable).
Var softmax_lastdim(const Var& a);

// Bilinear resize of the trailing two dims (align_corners=true).
Var resize_bilinear(const Var& a, int64_t oh, int64_t ow);

// Losses.
/// Mean squared error over all elements — Eq. (12) of the paper.
Var mse_loss(const Var& pred, const Var& target);
/// Mean absolute error over all elements.
Var l1_loss(const Var& pred, const Var& target);
/// Relative L2 loss ||pred - target|| / ||target|| — the loss the original
/// FNO line of work trains with; exposed so users can swap it in for the
/// paper's plain MSE (Trainer uses MSE to match the paper).
Var relative_l2_loss(const Var& pred, const Var& target);

}  // namespace ops

// Operator sugar for the common arithmetic cases.
inline Var operator+(const Var& a, const Var& b) { return ops::add(a, b); }
inline Var operator-(const Var& a, const Var& b) { return ops::sub(a, b); }
inline Var operator*(const Var& a, const Var& b) { return ops::mul(a, b); }
inline Var operator*(const Var& a, float s) { return ops::mul_scalar(a, s); }
inline Var operator*(float s, const Var& a) { return ops::mul_scalar(a, s); }

}  // namespace saufno
