#include "autograd/ops.h"

#include <cmath>

#include "common/logging.h"
#include "plan/trace.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace ops {
namespace {

using detail::Node;
using detail::VarImpl;
using detail::accumulate_grad;
using plan::OpCode;
namespace tr = plan::tr;

std::shared_ptr<Node> make_node(std::string name, std::vector<Var> inputs) {
  auto node = std::make_shared<Node>();
  node->name = std::move(name);
  node->inputs.reserve(inputs.size());
  for (auto& v : inputs) node->inputs.push_back(v.impl());
  return node;
}

}  // namespace

// Every op funnels its return through plan::tr::record, which is a no-op
// (one thread-local load) unless a TraceSession is active on this thread —
// that hook is how the plan compiler sees the forward dataflow without the
// model code changing.

Var add(const Var& a, const Var& b) {
  Tensor out = saufno::add(a.value(), b.value());
  if (!any_requires_grad({a, b})) {
    return tr::record(OpCode::kAdd, {&a, &b}, Var(std::move(out)));
  }
  auto node = make_node("add", {a, b});
  auto ia = a.impl(), ib = b.impl();
  node->backward = [ia, ib](const Tensor& g) {
    accumulate_grad(ia, reduce_to(g, ia->value.shape()));
    accumulate_grad(ib, reduce_to(g, ib->value.shape()));
  };
  return tr::record(OpCode::kAdd, {&a, &b}, Var::from_op(std::move(out), node));
}

Var sub(const Var& a, const Var& b) {
  Tensor out = saufno::sub(a.value(), b.value());
  if (!any_requires_grad({a, b})) {
    return tr::record(OpCode::kSub, {&a, &b}, Var(std::move(out)));
  }
  auto node = make_node("sub", {a, b});
  auto ia = a.impl(), ib = b.impl();
  node->backward = [ia, ib](const Tensor& g) {
    accumulate_grad(ia, reduce_to(g, ia->value.shape()));
    accumulate_grad(ib, reduce_to(saufno::neg(g), ib->value.shape()));
  };
  return tr::record(OpCode::kSub, {&a, &b}, Var::from_op(std::move(out), node));
}

Var mul(const Var& a, const Var& b) {
  Tensor out = saufno::mul(a.value(), b.value());
  if (!any_requires_grad({a, b})) {
    return tr::record(OpCode::kMul, {&a, &b}, Var(std::move(out)));
  }
  auto node = make_node("mul", {a, b});
  auto ia = a.impl(), ib = b.impl();
  node->backward = [ia, ib](const Tensor& g) {
    accumulate_grad(ia, reduce_to(saufno::mul(g, ib->value), ia->value.shape()));
    accumulate_grad(ib, reduce_to(saufno::mul(g, ia->value), ib->value.shape()));
  };
  return tr::record(OpCode::kMul, {&a, &b}, Var::from_op(std::move(out), node));
}

Var div(const Var& a, const Var& b) {
  Tensor out = saufno::div(a.value(), b.value());
  if (!any_requires_grad({a, b})) {
    return tr::record(OpCode::kDiv, {&a, &b}, Var(std::move(out)));
  }
  auto node = make_node("div", {a, b});
  auto ia = a.impl(), ib = b.impl();
  node->backward = [ia, ib](const Tensor& g) {
    // d(a/b)/da = 1/b ; d(a/b)/db = -a/b^2
    accumulate_grad(ia, reduce_to(saufno::div(g, ib->value), ia->value.shape()));
    Tensor gb = saufno::neg(
        saufno::div(saufno::mul(g, ia->value),
                    saufno::mul(ib->value, ib->value)));
    accumulate_grad(ib, reduce_to(gb, ib->value.shape()));
  };
  return tr::record(OpCode::kDiv, {&a, &b}, Var::from_op(std::move(out), node));
}

Var add_scalar(const Var& a, float s) {
  tr::Attrs attrs;
  attrs.fval = s;
  Tensor out = saufno::add_scalar(a.value(), s);
  if (!should_record(a)) {
    return tr::record(OpCode::kAddScalar, {&a}, Var(std::move(out)), attrs);
  }
  auto node = make_node("add_scalar", {a});
  auto ia = a.impl();
  node->backward = [ia](const Tensor& g) { accumulate_grad(ia, g); };
  return tr::record(OpCode::kAddScalar, {&a},
                    Var::from_op(std::move(out), node), attrs);
}

Var mul_scalar(const Var& a, float s) {
  tr::Attrs attrs;
  attrs.fval = s;
  Tensor out = saufno::mul_scalar(a.value(), s);
  if (!should_record(a)) {
    return tr::record(OpCode::kMulScalar, {&a}, Var(std::move(out)), attrs);
  }
  auto node = make_node("mul_scalar", {a});
  auto ia = a.impl();
  node->backward = [ia, s](const Tensor& g) {
    accumulate_grad(ia, saufno::mul_scalar(g, s));
  };
  return tr::record(OpCode::kMulScalar, {&a},
                    Var::from_op(std::move(out), node), attrs);
}

Var neg(const Var& a) { return mul_scalar(a, -1.f); }

// Generic unary-op builder: f computes the value, dfdx(x) the local slope.
namespace {
template <typename FwdF, typename GradF>
Var unary_op(const char* name, OpCode op, const Var& a, FwdF fwd,
             GradF grad_of_input) {
  Tensor out = fwd(a.value());
  if (!should_record(a)) return tr::record(op, {&a}, Var(std::move(out)));
  auto node = make_node(name, {a});
  auto ia = a.impl();
  node->backward = [ia, grad_of_input](const Tensor& g) {
    accumulate_grad(ia, saufno::mul(g, grad_of_input(ia->value)));
  };
  return tr::record(op, {&a}, Var::from_op(std::move(out), node));
}
}  // namespace

Var relu(const Var& a) {
  return unary_op(
      "relu", OpCode::kRelu, a,
      [](const Tensor& x) { return saufno::relu(x); },
      [](const Tensor& x) {
        return saufno::map(x, [](float v) { return v > 0.f ? 1.f : 0.f; });
      });
}

Var gelu(const Var& a) {
  return unary_op(
      "gelu", OpCode::kGelu, a,
      [](const Tensor& x) { return saufno::gelu(x); },
      [](const Tensor& x) { return saufno::gelu_grad(x); });
}

Var tanh(const Var& a) {
  return unary_op(
      "tanh", OpCode::kTanh, a,
      [](const Tensor& x) { return saufno::tanh(x); },
      [](const Tensor& x) {
        return saufno::map(x, [](float v) {
          const float t = std::tanh(v);
          return 1.f - t * t;
        });
      });
}

Var sigmoid(const Var& a) {
  return unary_op(
      "sigmoid", OpCode::kSigmoid, a,
      [](const Tensor& x) { return saufno::sigmoid(x); },
      [](const Tensor& x) {
        return saufno::map(x, [](float v) {
          // Same simd::exp1 as the forward kernel, so s here is bitwise the
          // forward activation and the gradient is consistent with it.
          const float s = 1.f / (1.f + simd::exp1(-v));
          return s * (1.f - s);
        });
      });
}

Var exp(const Var& a) {
  return unary_op(
      "exp", OpCode::kExp, a,
      [](const Tensor& x) { return saufno::exp(x); },
      [](const Tensor& x) { return saufno::exp(x); });
}

Var log(const Var& a) {
  return unary_op(
      "log", OpCode::kLog, a,
      [](const Tensor& x) { return saufno::log(x); },
      [](const Tensor& x) {
        return saufno::map(x, [](float v) { return 1.f / v; });
      });
}

Var sqrt(const Var& a) {
  return unary_op(
      "sqrt", OpCode::kSqrt, a,
      [](const Tensor& x) { return saufno::sqrt(x); },
      [](const Tensor& x) {
        return saufno::map(x, [](float v) { return 0.5f / std::sqrt(v); });
      });
}

Var square(const Var& a) {
  return unary_op(
      "square", OpCode::kSquare, a,
      [](const Tensor& x) { return saufno::mul(x, x); },
      [](const Tensor& x) { return saufno::mul_scalar(x, 2.f); });
}

Var abs(const Var& a) {
  return unary_op(
      "abs", OpCode::kAbs, a,
      [](const Tensor& x) { return saufno::abs(x); },
      [](const Tensor& x) {
        return saufno::map(x, [](float v) {
          return v > 0.f ? 1.f : (v < 0.f ? -1.f : 0.f);
        });
      });
}

Var reshape(const Var& a, Shape new_shape) {
  Tensor out = a.value().reshape(std::move(new_shape));
  if (!should_record(a)) {
    return tr::record(OpCode::kReshape, {&a}, Var(std::move(out)));
  }
  auto node = make_node("reshape", {a});
  auto ia = a.impl();
  const Shape in_shape = a.shape();
  node->backward = [ia, in_shape](const Tensor& g) {
    // reshape shares storage; clone so grad accumulation cannot alias the
    // consumer's grad buffer.
    accumulate_grad(ia, g.clone().reshape(in_shape));
  };
  return tr::record(OpCode::kReshape, {&a},
                    Var::from_op(std::move(out), node));
}

Var permute(const Var& a, const std::vector<int64_t>& perm) {
  tr::Attrs attrs;
  attrs.ivals = perm;
  Tensor out = saufno::permute(a.value(), perm);
  if (!should_record(a)) {
    return tr::record(OpCode::kPermute, {&a}, Var(std::move(out)), attrs);
  }
  auto node = make_node("permute", {a});
  auto ia = a.impl();
  std::vector<int64_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  node->backward = [ia, inv](const Tensor& g) {
    accumulate_grad(ia, saufno::permute(g, inv));
  };
  return tr::record(OpCode::kPermute, {&a},
                    Var::from_op(std::move(out), node), attrs);
}

Var slice(const Var& a, int64_t dim, int64_t start, int64_t length) {
  const int64_t d = dim < 0 ? dim + a.value().dim() : dim;
  tr::Attrs attrs;
  attrs.ivals = {d, start, length};
  Tensor out = saufno::slice(a.value(), dim, start, length);
  if (!should_record(a)) {
    return tr::record(OpCode::kSlice, {&a}, Var(std::move(out)), attrs);
  }
  auto node = make_node("slice", {a});
  auto ia = a.impl();
  const Shape in_shape = a.shape();
  node->backward = [ia, in_shape, d, start, length](const Tensor& g) {
    // Scatter the slice gradient into a zero tensor of the input shape.
    Tensor gin = Tensor::zeros(in_shape);
    int64_t outer = 1, inner = 1;
    for (int64_t i = 0; i < d; ++i) outer *= in_shape[static_cast<std::size_t>(i)];
    for (std::size_t i = static_cast<std::size_t>(d) + 1; i < in_shape.size(); ++i) {
      inner *= in_shape[i];
    }
    const int64_t full = in_shape[static_cast<std::size_t>(d)];
    const float* src = g.data();
    float* dst = gin.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(src + o * length * inner, src + (o + 1) * length * inner,
                dst + (o * full + start) * inner);
    }
    accumulate_grad(ia, gin);
  };
  return tr::record(OpCode::kSlice, {&a}, Var::from_op(std::move(out), node),
                    attrs);
}

Var cat(const std::vector<Var>& vs, int64_t dim) {
  std::vector<Tensor> ts;
  ts.reserve(vs.size());
  for (const auto& v : vs) ts.push_back(v.value());
  const int64_t d0 = dim < 0 ? dim + vs[0].value().dim() : dim;
  Tensor out = saufno::cat(ts, dim);
  if (!any_requires_grad(vs)) {
    Var r(std::move(out));
    tr::record_cat(vs, r, d0);
    return r;
  }
  auto node = make_node("cat", vs);
  const int64_t rank = vs[0].value().dim();
  const int64_t d = dim < 0 ? dim + rank : dim;
  std::vector<int64_t> sizes;
  sizes.reserve(vs.size());
  for (const auto& v : vs) sizes.push_back(v.value().shape()[static_cast<std::size_t>(d)]);
  auto impls = node->inputs;
  node->backward = [impls, sizes, d](const Tensor& g) {
    int64_t off = 0;
    for (std::size_t i = 0; i < impls.size(); ++i) {
      accumulate_grad(impls[i], saufno::slice(g, d, off, sizes[i]));
      off += sizes[i];
    }
  };
  Var r = Var::from_op(std::move(out), node);
  tr::record_cat(vs, r, d);
  return r;
}

Var pad2d(const Var& a, int64_t top, int64_t bottom, int64_t left,
          int64_t right) {
  tr::Attrs attrs;
  attrs.ivals = {top, bottom, left, right};
  Tensor out = saufno::pad2d(a.value(), top, bottom, left, right);
  if (!should_record(a)) {
    return tr::record(OpCode::kPad2d, {&a}, Var(std::move(out)), attrs);
  }
  auto node = make_node("pad2d", {a});
  auto ia = a.impl();
  const int64_t rank = a.value().dim();
  const int64_t h = a.value().shape()[static_cast<std::size_t>(rank - 2)];
  const int64_t w = a.value().shape()[static_cast<std::size_t>(rank - 1)];
  node->backward = [ia, top, left, h, w, rank](const Tensor& g) {
    Tensor gi = saufno::slice(g, rank - 2, top, h);
    gi = saufno::slice(gi, rank - 1, left, w);
    accumulate_grad(ia, gi);
  };
  return tr::record(OpCode::kPad2d, {&a}, Var::from_op(std::move(out), node),
                    attrs);
}

Var matmul(const Var& a, const Var& b) {
  Tensor out = saufno::matmul(a.value(), b.value());
  if (!any_requires_grad({a, b})) {
    return tr::record(OpCode::kMatmul, {&a, &b}, Var(std::move(out)));
  }
  auto node = make_node("matmul", {a, b});
  auto ia = a.impl(), ib = b.impl();
  node->backward = [ia, ib](const Tensor& g) {
    // gA = g B^T ; gB = A^T g
    accumulate_grad(ia, saufno::matmul(g, transpose2d(ib->value)));
    accumulate_grad(ib, saufno::matmul(transpose2d(ia->value), g));
  };
  return tr::record(OpCode::kMatmul, {&a, &b},
                    Var::from_op(std::move(out), node));
}

Var bmm(const Var& a, const Var& b) {
  Tensor out = saufno::bmm(a.value(), b.value());
  if (!any_requires_grad({a, b})) {
    return tr::record(OpCode::kBmm, {&a, &b}, Var(std::move(out)));
  }
  auto node = make_node("bmm", {a, b});
  auto ia = a.impl(), ib = b.impl();
  node->backward = [ia, ib](const Tensor& g) {
    // Per-batch matmul adjoints, with batch-1 broadcasting reduced by sum.
    const Tensor& A = ia->value;
    const Tensor& B = ib->value;
    Tensor bt = saufno::permute(B, {0, 2, 1});
    Tensor at = saufno::permute(A, {0, 2, 1});
    Tensor ga = saufno::bmm(g, bt);  // [batch, M, K]
    Tensor gb = saufno::bmm(at, g);  // [batch, K, N] -- requires matching batch
    if (A.shape()[0] == 1 && g.shape()[0] != 1) {
      ga = saufno::sum_dim(ga, 0, /*keepdim=*/true);
    }
    if (B.shape()[0] == 1 && g.shape()[0] != 1) {
      // at has batch 1; bmm broadcast handled it. Reduce gb over batch.
      gb = saufno::sum_dim(gb, 0, /*keepdim=*/true);
    }
    accumulate_grad(ia, ga);
    accumulate_grad(ib, gb);
  };
  return tr::record(OpCode::kBmm, {&a, &b},
                    Var::from_op(std::move(out), node));
}

Var sum_all(const Var& a) {
  // Scalar reductions exist for losses/metrics, not the serving forward;
  // the plan IR does not model them, so a traced forward that reaches one
  // poisons the session and the runner falls back to the interpreter.
  tr::record_unsupported("sum_all");
  Tensor out({1}, {saufno::sum_all(a.value())});
  if (!should_record(a)) return Var(std::move(out));
  auto node = make_node("sum_all", {a});
  auto ia = a.impl();
  node->backward = [ia](const Tensor& g) {
    accumulate_grad(ia, Tensor::full(ia->value.shape(), g.at(0)));
  };
  return Var::from_op(std::move(out), node);
}

Var mean_all(const Var& a) {
  const float inv_n = 1.f / static_cast<float>(a.numel());
  return mul_scalar(sum_all(a), inv_n);
}

Var sum_dim(const Var& a, int64_t dim, bool keepdim) {
  const int64_t rank = a.value().dim();
  const int64_t d = dim < 0 ? dim + rank : dim;
  tr::Attrs attrs;
  attrs.ivals = {d, keepdim ? 1 : 0};
  Tensor out = saufno::sum_dim(a.value(), dim, keepdim);
  if (!should_record(a)) {
    return tr::record(OpCode::kSumDim, {&a}, Var(std::move(out)), attrs);
  }
  auto node = make_node("sum_dim", {a});
  auto ia = a.impl();
  node->backward = [ia, d, keepdim](const Tensor& g) {
    // Broadcast g back along the reduced dim.
    Tensor gk = g;
    if (!keepdim) {
      Shape s = g.shape();
      if (ia->value.dim() == 1 && g.numel() == 1) {
        // reduced a 1-D tensor to scalar-ish [1]
        accumulate_grad(ia, Tensor::full(ia->value.shape(), g.at(0)));
        return;
      }
      s.insert(s.begin() + d, 1);
      gk = g.reshape(s);
    }
    accumulate_grad(
        ia, saufno::add(gk, Tensor::zeros(ia->value.shape())));  // broadcast
  };
  return tr::record(OpCode::kSumDim, {&a},
                    Var::from_op(std::move(out), node), attrs);
}

Var softmax_lastdim(const Var& a) {
  Tensor out = saufno::softmax_lastdim(a.value());
  if (!should_record(a)) {
    return tr::record(OpCode::kSoftmax, {&a}, Var(std::move(out)));
  }
  auto node = make_node("softmax", {a});
  auto ia = a.impl();
  Tensor s = out;  // keep the softmax output for the backward rule
  node->backward = [ia, s](const Tensor& g) {
    // dL/dx = s * (g - sum(g*s, lastdim, keepdim))
    Tensor gs = saufno::mul(g, s);
    Tensor row_sum = saufno::sum_dim(gs, -1, /*keepdim=*/true);
    Tensor gx = saufno::mul(s, saufno::sub(g, row_sum));
    accumulate_grad(ia, gx);
  };
  return tr::record(OpCode::kSoftmax, {&a},
                    Var::from_op(std::move(out), node));
}

Var resize_bilinear(const Var& a, int64_t oh, int64_t ow) {
  tr::Attrs attrs;
  attrs.ivals = {oh, ow};
  Tensor out = saufno::resize_bilinear(a.value(), oh, ow);
  if (!should_record(a)) {
    return tr::record(OpCode::kResizeBilinear, {&a}, Var(std::move(out)),
                      attrs);
  }
  auto node = make_node("resize_bilinear", {a});
  auto ia = a.impl();
  const int64_t rank = a.value().dim();
  const int64_t ih = a.value().shape()[static_cast<std::size_t>(rank - 2)];
  const int64_t iw = a.value().shape()[static_cast<std::size_t>(rank - 1)];
  node->backward = [ia, ih, iw](const Tensor& g) {
    accumulate_grad(ia, saufno::resize_bilinear_adjoint(g, ih, iw));
  };
  return tr::record(OpCode::kResizeBilinear, {&a},
                    Var::from_op(std::move(out), node), attrs);
}

Var mse_loss(const Var& pred, const Var& target) {
  SAUFNO_CHECK(pred.shape() == target.shape(),
               "mse_loss shape mismatch: " + shape_str(pred.shape()) +
                   " vs " + shape_str(target.shape()));
  return mean_all(square(sub(pred, target)));
}

Var l1_loss(const Var& pred, const Var& target) {
  SAUFNO_CHECK(pred.shape() == target.shape(),
               "l1_loss shape mismatch");
  return mean_all(abs(sub(pred, target)));
}

Var relative_l2_loss(const Var& pred, const Var& target) {
  SAUFNO_CHECK(pred.shape() == target.shape(),
               "relative_l2_loss shape mismatch: " +
                   shape_str(pred.shape()) + " vs " +
                   shape_str(target.shape()));
  Var num = sqrt(sum_all(square(sub(pred, target))));
  // Small epsilon keeps the loss defined for an all-zero target and the
  // gradient bounded near it.
  Var den = sqrt(add_scalar(sum_all(square(target)), 1e-12f));
  return div(num, den);
}

}  // namespace ops
}  // namespace saufno
