#include "autograd/variable.h"

#include <unordered_set>

#include "common/logging.h"

namespace saufno {
namespace detail {

void accumulate_grad(const std::shared_ptr<VarImpl>& impl, const Tensor& g) {
  if (!impl || !impl->requires_grad) return;
  SAUFNO_CHECK(g.shape() == impl->value.shape(),
               "gradient shape " + shape_str(g.shape()) +
                   " does not match value shape " +
                   shape_str(impl->value.shape()));
  if (!impl->grad.defined()) {
    impl->grad = g.clone();
  } else {
    impl->grad.add_(g);
  }
}

}  // namespace detail

namespace {
thread_local bool tl_grad_enabled = true;
}  // namespace

bool GradMode::enabled() { return tl_grad_enabled; }

void GradMode::set_enabled(bool enabled) { tl_grad_enabled = enabled; }

Var::Var() = default;

Var::Var(Tensor value, bool requires_grad)
    : impl_(std::make_shared<detail::VarImpl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

const Tensor& Var::value() const {
  SAUFNO_CHECK(impl_ != nullptr, "value() on undefined Var");
  return impl_->value;
}

Tensor& Var::value() {
  SAUFNO_CHECK(impl_ != nullptr, "value() on undefined Var");
  return impl_->value;
}

bool Var::requires_grad() const {
  return impl_ != nullptr && impl_->requires_grad;
}

Tensor Var::grad() const {
  SAUFNO_CHECK(impl_ != nullptr, "grad() on undefined Var");
  if (!impl_->grad.defined()) return Tensor::zeros(impl_->value.shape());
  return impl_->grad;
}

void Var::zero_grad() {
  if (impl_ && impl_->grad.defined()) impl_->grad.fill_(0.f);
}

void Var::backward() {
  SAUFNO_CHECK(impl_ != nullptr, "backward() on undefined Var");
  SAUFNO_CHECK(impl_->value.numel() == 1,
               "backward() requires a scalar loss, got shape " +
                   shape_str(impl_->value.shape()));

  // Iterative post-order DFS over producer nodes (recursion would overflow
  // on deep training graphs). Reversed post-order of a DAG is a valid
  // topological order: every consumer runs before its producers, so a
  // node's output grad is fully accumulated before its backward fires.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  struct Frame {
    detail::Node* node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  if (impl_->node) {
    stack.push_back({impl_->node.get(), 0});
    visited.insert(impl_->node.get());
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < f.node->inputs.size()) {
      detail::Node* child = f.node->inputs[f.next_child]->node.get();
      ++f.next_child;
      if (child != nullptr && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  // Seed dL/dL = 1, then run backward rules consumers-first.
  detail::accumulate_grad(impl_, Tensor::ones(impl_->value.shape()));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* node = *it;
    if (node->output == nullptr || !node->output->grad.defined()) {
      // No gradient reached this branch (e.g. an op feeding only a detached
      // metric); nothing to propagate.
      continue;
    }
    node->backward(node->output->grad);
  }
}

Var Var::detach() const {
  SAUFNO_CHECK(impl_ != nullptr, "detach() on undefined Var");
  return Var(impl_->value, /*requires_grad=*/false);
}

Var Var::from_op(Tensor value, std::shared_ptr<detail::Node> node) {
  Var v(std::move(value), /*requires_grad=*/node != nullptr);
  if (node) {
    node->output = v.impl().get();
    v.impl()->node = std::move(node);
  }
  return v;
}

bool any_requires_grad(const std::vector<Var>& vars) {
  if (!GradMode::enabled()) return false;
  for (const auto& v : vars) {
    if (v.requires_grad()) return true;
  }
  return false;
}

}  // namespace saufno
