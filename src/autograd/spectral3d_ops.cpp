#include "autograd/spectral3d_ops.h"

#include <complex>
#include <vector>

#include "common/logging.h"
#include "fft/fft.h"

namespace saufno {
namespace ops {
namespace {

using detail::Node;
using detail::accumulate_grad;

/// (weight_index, spectrum_index) pairs for one signed-frequency axis:
/// weight slots 0..m-1 hold positive frequencies, slots m..2m-1 negative
/// ones; both clamped to the axis Nyquist limit n/2.
std::vector<std::pair<int64_t, int64_t>> signed_axis_map(int64_t n,
                                                         int64_t m) {
  std::vector<std::pair<int64_t, int64_t>> out;
  const int64_t me = std::min(m, n / 2);
  out.reserve(static_cast<std::size_t>(2 * me));
  for (int64_t r = 0; r < me; ++r) out.emplace_back(r, r);
  for (int64_t s = 0; s < me; ++s) out.emplace_back(m + s, n - me + s);
  return out;
}

}  // namespace

Var spectral_conv3d(const Var& x, const Var& w, int64_t m1, int64_t m2,
                    int64_t m3, int64_t cout) {
  SAUFNO_CHECK(x.value().dim() == 5,
               "spectral_conv3d input must be [B,C,D,H,W]");
  SAUFNO_CHECK(w.value().dim() == 6,
               "spectral_conv3d weight must be [Cin,Cout,2*m1,2*m2,m3,2]");
  const int64_t B = x.size(0), cin = x.size(1), D = x.size(2),
                H = x.size(3), W = x.size(4);
  SAUFNO_CHECK(w.size(0) == cin && w.size(1) == cout &&
                   w.size(2) == 2 * m1 && w.size(3) == 2 * m2 &&
                   w.size(4) == m3 && w.size(5) == 2,
               "spectral_conv3d weight shape mismatch");
  const int64_t vol = D * H * W;
  const auto map_d = signed_axis_map(D, m1);
  const auto map_h = signed_axis_map(H, m2);
  const int64_t m3e = std::min(m3, W / 2);

  auto widx = [=](int64_t i, int64_t o, int64_t r, int64_t c, int64_t k) {
    return ((((i * cout + o) * (2 * m1) + r) * (2 * m2) + c) * m3 + k) * 2;
  };
  auto koff = [=](int64_t kd, int64_t kh, int64_t kw) {
    return (kd * H + kh) * W + kw;
  };

  std::vector<cfloat> xf(static_cast<std::size_t>(B * cin * vol));
  {
    const float* xp = x.value().data();
    for (int64_t i = 0; i < B * cin * vol; ++i) {
      xf[static_cast<std::size_t>(i)] = cfloat(xp[i], 0.f);
    }
    fft_3d(xf.data(), B * cin, D, H, W, /*inverse=*/false);
  }

  std::vector<cfloat> yf(static_cast<std::size_t>(B * cout * vol),
                         cfloat(0.f, 0.f));
  const float* wp = w.value().data();
  for (int64_t b = 0; b < B; ++b) {
    for (const auto& [wr, kd] : map_d) {
      for (const auto& [wc, kh] : map_h) {
        for (int64_t k = 0; k < m3e; ++k) {
          const int64_t off = koff(kd, kh, k);
          for (int64_t o = 0; o < cout; ++o) {
            cfloat acc(0.f, 0.f);
            for (int64_t i = 0; i < cin; ++i) {
              const float* wcplx = wp + widx(i, o, wr, wc, k);
              acc += cfloat(wcplx[0], wcplx[1]) *
                     xf[static_cast<std::size_t>((b * cin + i) * vol + off)];
            }
            yf[static_cast<std::size_t>((b * cout + o) * vol + off)] = acc;
          }
        }
      }
    }
  }
  fft_3d(yf.data(), B * cout, D, H, W, /*inverse=*/true);
  Tensor out({B, cout, D, H, W});
  {
    float* op = out.data();
    for (int64_t i = 0; i < B * cout * vol; ++i) {
      op[i] = yf[static_cast<std::size_t>(i)].real();
    }
  }

  if (!any_requires_grad({x, w})) return Var(std::move(out));

  auto node = std::make_shared<Node>();
  node->name = "spectral_conv3d";
  node->inputs = {x.impl(), w.impl()};
  auto ix = x.impl(), iw = w.impl();
  node->backward = [=](const Tensor& g) {
    std::vector<cfloat> gf(static_cast<std::size_t>(B * cout * vol));
    const float* gp = g.data();
    for (int64_t i = 0; i < B * cout * vol; ++i) {
      gf[static_cast<std::size_t>(i)] = cfloat(gp[i], 0.f);
    }
    fft_3d(gf.data(), B * cout, D, H, W, /*inverse=*/true);

    std::vector<cfloat> xf2(static_cast<std::size_t>(B * cin * vol));
    const float* xp = ix->value.data();
    for (int64_t i = 0; i < B * cin * vol; ++i) {
      xf2[static_cast<std::size_t>(i)] = cfloat(xp[i], 0.f);
    }
    fft_3d(xf2.data(), B * cin, D, H, W, /*inverse=*/false);

    const float* wp2 = iw->value.data();
    Tensor gw = Tensor::zeros(iw->value.shape());
    float* gwp = gw.data();
    std::vector<cfloat> z(static_cast<std::size_t>(B * cin * vol),
                          cfloat(0.f, 0.f));
    for (int64_t b = 0; b < B; ++b) {
      for (const auto& [wr, kd] : map_d) {
        for (const auto& [wc, kh] : map_h) {
          for (int64_t k = 0; k < m3e; ++k) {
            const int64_t off = koff(kd, kh, k);
            for (int64_t o = 0; o < cout; ++o) {
              const cfloat gk =
                  gf[static_cast<std::size_t>((b * cout + o) * vol + off)];
              for (int64_t i = 0; i < cin; ++i) {
                const float* wcplx = wp2 + widx(i, o, wr, wc, k);
                z[static_cast<std::size_t>((b * cin + i) * vol + off)] +=
                    gk * cfloat(wcplx[0], wcplx[1]);
                const cfloat gw_c =
                    gk *
                    xf2[static_cast<std::size_t>((b * cin + i) * vol + off)];
                float* gwc = gwp + widx(i, o, wr, wc, k);
                gwc[0] += gw_c.real();
                gwc[1] -= gw_c.imag();
              }
            }
          }
        }
      }
    }
    fft_3d(z.data(), B * cin, D, H, W, /*inverse=*/false);
    Tensor gx({B, cin, D, H, W});
    float* gxp = gx.data();
    for (int64_t i = 0; i < B * cin * vol; ++i) {
      gxp[i] = z[static_cast<std::size_t>(i)].real();
    }
    accumulate_grad(ix, gx);
    accumulate_grad(iw, gw);
  };
  return Var::from_op(std::move(out), node);
}

}  // namespace ops
}  // namespace saufno
