#include "autograd/spectral3d_ops.h"

#include <complex>
#include <cstring>

#include "common/logging.h"
#include "fft/fft.h"
#include "plan/trace.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace saufno {
namespace ops {

namespace spectral {

std::vector<std::pair<int64_t, int64_t>> signed_axis_map(int64_t n,
                                                         int64_t m) {
  std::vector<std::pair<int64_t, int64_t>> out;
  const int64_t me = std::min(m, n / 2);
  out.reserve(static_cast<std::size_t>(2 * me));
  for (int64_t r = 0; r < me; ++r) out.emplace_back(r, r);
  for (int64_t s = 0; s < me; ++s) out.emplace_back(m + s, n - me + s);
  return out;
}

}  // namespace spectral

namespace {

using detail::Node;
using detail::accumulate_grad;
using spectral::signed_axis_map;

using AxisMap = std::vector<std::pair<int64_t, int64_t>>;

/// 3-D analogue of the 2-D herm_prep: rewrite one compact [D, H, wk]
/// spectrum Y (nonzero only on kept modes, all with k3 < W/2) so that
/// irfft_3d(result) == Re(IFFT3(Y embedded in the full spectrum)):
/// symmetrize the k3 = 0 plane over the (kd, kh) torus, halve the other
/// kept columns. `planebuf` must hold D*H cfloats.
void herm_prep_3d(cfloat* vol, int64_t D, int64_t H, int64_t wk,
                  const AxisMap& map_d, const AxisMap& map_h,
                  cfloat* planebuf) {
  for (int64_t kd = 0; kd < D; ++kd) {
    for (int64_t kh = 0; kh < H; ++kh) {
      planebuf[kd * H + kh] = vol[(kd * H + kh) * wk];
    }
  }
  for (int64_t kd = 0; kd < D; ++kd) {
    for (int64_t kh = 0; kh < H; ++kh) {
      const cfloat mirror =
          std::conj(planebuf[((D - kd) % D) * H + (H - kh) % H]);
      vol[(kd * H + kh) * wk] = 0.5f * (planebuf[kd * H + kh] + mirror);
    }
  }
  for (const auto& [wr, kd] : map_d) {
    (void)wr;
    for (const auto& [wc, kh] : map_h) {
      (void)wc;
      cfloat* row = vol + (kd * H + kh) * wk;
      for (int64_t k = 1; k < wk; ++k) row[k] *= 0.5f;
    }
  }
}

}  // namespace

namespace fwd {

void spectral_conv3d_into(const Tensor& x, const Tensor& w, int64_t m1,
                          int64_t m2, int64_t m3, int64_t cout, Tensor& out) {
  SAUFNO_CHECK(x.dim() == 5, "spectral_conv3d input must be [B,C,D,H,W]");
  SAUFNO_CHECK(w.dim() == 6,
               "spectral_conv3d weight must be [Cin,Cout,2*m1,2*m2,m3,2]");
  const int64_t B = x.size(0), cin = x.size(1), D = x.size(2), H = x.size(3),
                W = x.size(4);
  SAUFNO_CHECK(w.size(0) == cin && w.size(1) == cout &&
                   w.size(2) == 2 * m1 && w.size(3) == 2 * m2 &&
                   w.size(4) == m3 && w.size(5) == 2,
               "spectral_conv3d weight shape mismatch");
  SAUFNO_CHECK(out.numel() == B * cout * D * H * W,
               "spectral_conv3d destination numel mismatch");
  const AxisMap map_d = signed_axis_map(D, m1);
  const AxisMap map_h = signed_axis_map(H, m2);
  const int64_t wk = std::min(m3, W / 2);
  const int64_t nd = static_cast<int64_t>(map_d.size());
  const int64_t mhe = std::min(m2, H / 2);  // per-side kept count along H

  auto widx = [=](int64_t i, int64_t o, int64_t r, int64_t c, int64_t k) {
    return ((((i * cout + o) * (2 * m1) + r) * (2 * m2) + c) * m3 + k) * 2;
  };

  if (wk == 0 || map_d.empty() || map_h.empty()) {
    out.fill_(0.f);
    return;
  }

  const int64_t cvol = D * H * wk;  // compact half-spectrum volume

  runtime::Scratch<cfloat> xf(static_cast<std::size_t>(B * cin * cvol));
  runtime::Scratch<cfloat> yf(static_cast<std::size_t>(B * cout * cvol));
  rfft_3d(x.data(), xf.data(), B * cin, D, H, W, wk, mhe);
  yf.zero();

  // One chunk owns one (batch, kept-kd) pair: disjoint output rows, fixed
  // accumulation order, bit-identical across thread counts. The inner k
  // loop runs over contiguous kept columns in both the compact spectrum
  // and the weight layout.
  const float* wp = w.data();
  const float* xfp = reinterpret_cast<const float*>(xf.data());
  float* yfp = reinterpret_cast<float*>(yf.data());
  runtime::parallel_for(0, B * nd, 1, [&](int64_t i0, int64_t i1) {
    for (int64_t idx = i0; idx < i1; ++idx) {
      const int64_t b = idx / nd;
      const auto& [wr, kd] = map_d[static_cast<std::size_t>(idx % nd)];
      for (const auto& [wc, kh] : map_h) {
        const int64_t off = (kd * H + kh) * wk;
        for (int64_t o = 0; o < cout; ++o) {
          float* yrow = yfp + 2 * ((b * cout + o) * cvol + off);
          for (int64_t i = 0; i < cin; ++i) {
            const float* wrow = wp + widx(i, o, wr, wc, 0);
            const float* xrow = xfp + 2 * ((b * cin + i) * cvol + off);
            for (int64_t k = 0; k < wk; ++k) {
              const float xr = xrow[2 * k], xi = xrow[2 * k + 1];
              const float ar = wrow[2 * k], ai = wrow[2 * k + 1];
              yrow[2 * k] += ar * xr - ai * xi;
              yrow[2 * k + 1] += ar * xi + ai * xr;
            }
          }
        }
      }
    }
  });

  runtime::parallel_for(0, B * cout, 1, [&](int64_t p0, int64_t p1) {
    runtime::Scratch<cfloat> planebuf(static_cast<std::size_t>(D * H));
    for (int64_t p = p0; p < p1; ++p) {
      herm_prep_3d(yf.data() + p * cvol, D, H, wk, map_d, map_h,
                   planebuf.data());
    }
  });
  // The k3=0 symmetrization populates one extra kh row per side, so the
  // inverse depth pass widens its kept set by one.
  irfft_3d(yf.data(), out.data(), B * cout, D, H, W, wk, mhe + 1, 1.f);
}

}  // namespace fwd

Var spectral_conv3d(const Var& x, const Var& w, int64_t m1, int64_t m2,
                    int64_t m3, int64_t cout) {
  SAUFNO_CHECK(x.value().dim() == 5,
               "spectral_conv3d input must be [B,C,D,H,W]");
  SAUFNO_CHECK(w.value().dim() == 6,
               "spectral_conv3d weight must be [Cin,Cout,2*m1,2*m2,m3,2]");
  const int64_t B = x.size(0), cin = x.size(1), D = x.size(2),
                H = x.size(3), W = x.size(4);
  SAUFNO_CHECK(w.size(0) == cin && w.size(1) == cout &&
                   w.size(2) == 2 * m1 && w.size(3) == 2 * m2 &&
                   w.size(4) == m3 && w.size(5) == 2,
               "spectral_conv3d weight shape mismatch");
  const AxisMap map_d = signed_axis_map(D, m1);
  const AxisMap map_h = signed_axis_map(H, m2);
  const int64_t wk = std::min(m3, W / 2);
  const int64_t nd = static_cast<int64_t>(map_d.size());
  const int64_t mhe = std::min(m2, H / 2);  // per-side kept count along H

  auto widx = [=](int64_t i, int64_t o, int64_t r, int64_t c, int64_t k) {
    return ((((i * cout + o) * (2 * m1) + r) * (2 * m2) + c) * m3 + k) * 2;
  };

  plan::tr::Attrs attrs;
  attrs.ivals = {m1, m2, m3, cout};

  if (wk == 0 || map_d.empty() || map_h.empty()) {
    Tensor out = Tensor::zeros({B, cout, D, H, W});
    if (!any_requires_grad({x, w})) {
      return plan::tr::record(plan::OpCode::kSpectralConv3d, {&x, &w},
                              Var(std::move(out)), attrs);
    }
    auto node = std::make_shared<Node>();
    node->name = "spectral_conv3d";
    node->inputs = {x.impl(), w.impl()};
    auto ix = x.impl(), iw = w.impl();
    node->backward = [=](const Tensor&) {
      accumulate_grad(ix, Tensor::zeros(ix->value.shape()));
      accumulate_grad(iw, Tensor::zeros(iw->value.shape()));
    };
    return plan::tr::record(plan::OpCode::kSpectralConv3d, {&x, &w},
                            Var::from_op(std::move(out), node), attrs);
  }

  const int64_t cvol = D * H * wk;  // compact half-spectrum volume

  // Arena-backed like the 2-D op: irfft_3d writes every element.
  Tensor out = Tensor::scratch({B, cout, D, H, W});
  fwd::spectral_conv3d_into(x.value(), w.value(), m1, m2, m3, cout, out);

  if (!any_requires_grad({x, w})) {
    return plan::tr::record(plan::OpCode::kSpectralConv3d, {&x, &w},
                            Var(std::move(out)), attrs);
  }

  auto node = std::make_shared<Node>();
  node->name = "spectral_conv3d";
  node->inputs = {x.impl(), w.impl()};
  auto ix = x.impl(), iw = w.impl();
  node->backward = [=](const Tensor& g) {
    // Same half-spectrum adjoints as the 2-D op (see spectral_ops.cpp):
    // with R = rfft3(g) and N = D*H*W, G = IFFT3(g) = conj(R)/N on kept
    // modes, zc = N*conj(z) = sum_o R * conj(W), gx = irfft_3d(prep(zc)),
    // gW = (sum_b R * conj(Xf)) / N.
    runtime::Scratch<cfloat> gf(static_cast<std::size_t>(B * cout * cvol));
    runtime::Scratch<cfloat> xf2(static_cast<std::size_t>(B * cin * cvol));
    runtime::Scratch<cfloat> zc(static_cast<std::size_t>(B * cin * cvol));
    rfft_3d(g.data(), gf.data(), B * cout, D, H, W, wk, mhe);
    rfft_3d(ix->value.data(), xf2.data(), B * cin, D, H, W, wk, mhe);
    zc.zero();

    const float* wp2 = iw->value.data();
    Tensor gw = Tensor::zeros(iw->value.shape());
    float* gwp = gw.data();
    const float* gfp = reinterpret_cast<const float*>(gf.data());
    const float* xfp = reinterpret_cast<const float*>(xf2.data());
    float* zp = reinterpret_cast<float*>(zc.data());
    // One chunk owns one kept kd: its weight rows (gW) and spectrum rows
    // (zc) are touched by no other chunk.
    runtime::parallel_for(0, nd, 1, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const auto& [wr, kd] = map_d[static_cast<std::size_t>(r)];
        for (const auto& [wc, kh] : map_h) {
          const int64_t off = (kd * H + kh) * wk;
          for (int64_t b = 0; b < B; ++b) {
            for (int64_t o = 0; o < cout; ++o) {
              const float* grow = gfp + 2 * ((b * cout + o) * cvol + off);
              for (int64_t i = 0; i < cin; ++i) {
                float* zrow = zp + 2 * ((b * cin + i) * cvol + off);
                const float* xrow = xfp + 2 * ((b * cin + i) * cvol + off);
                const float* wrow = wp2 + widx(i, o, wr, wc, 0);
                float* gwrow = gwp + widx(i, o, wr, wc, 0);
                for (int64_t k = 0; k < wk; ++k) {
                  const float gr = grow[2 * k], gi = grow[2 * k + 1];
                  const float ar = wrow[2 * k], ai = wrow[2 * k + 1];
                  zrow[2 * k] += gr * ar + gi * ai;
                  zrow[2 * k + 1] += gi * ar - gr * ai;
                  const float xr = xrow[2 * k], xi = xrow[2 * k + 1];
                  gwrow[2 * k] += gr * xr + gi * xi;
                  gwrow[2 * k + 1] += gi * xr - gr * xi;
                }
              }
            }
          }
        }
      }
    });
    gw.mul_(1.f / static_cast<float>(D * H * W));

    runtime::parallel_for(0, B * cin, 1, [&](int64_t p0, int64_t p1) {
      runtime::Scratch<cfloat> planebuf(static_cast<std::size_t>(D * H));
      for (int64_t p = p0; p < p1; ++p) {
        herm_prep_3d(zc.data() + p * cvol, D, H, wk, map_d, map_h,
                     planebuf.data());
      }
    });
    Tensor gx = Tensor::scratch({B, cin, D, H, W});
    irfft_3d(zc.data(), gx.data(), B * cin, D, H, W, wk, mhe + 1, 1.f);
    accumulate_grad(ix, gx);
    accumulate_grad(iw, gw);
  };
  return plan::tr::record(plan::OpCode::kSpectralConv3d, {&x, &w},
                          Var::from_op(std::move(out), node), attrs);
}

}  // namespace ops
}  // namespace saufno
