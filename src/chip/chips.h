#pragma once

#include "chip/floorplan.h"

namespace saufno {
namespace chip {

/// The three 3-D ICs of Section IV-A / Fig. 3 / Table I, all based on the
/// Alpha 21264 EV6 architecture [32] in a face-to-back stack.

/// Chip1 — single-core, two device layers (16 x 16 mm, 0.15 mm each):
///   lower layer: three L2 caches; upper layer: core + two L1s + one L2.
ChipSpec make_chip1();

/// Chip2 — quad-core, three device layers (12.4 x 12.76 mm):
///   two identical L2 layers (two caches each) below a four-core layer
///   closest to the heat sink.
ChipSpec make_chip2();

/// Chip3 — octa-core, two device layers (10 x 10 mm, 0.1 mm):
///   lower layer: four L2 caches; upper layer: eight cores + crossbar.
ChipSpec make_chip3();

/// All three, in order (convenience for the benches).
std::vector<ChipSpec> all_chips();

/// Lookup by name ("chip1".."chip3"); throws on unknown name.
ChipSpec chip_by_name(const std::string& name);

}  // namespace chip
}  // namespace saufno
