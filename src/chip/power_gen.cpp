#include "chip/power_gen.h"

#include <cmath>

#include "common/logging.h"

namespace saufno {
namespace chip {

double PowerAssignment::total() const {
  double t = 0.0;
  for (const auto& layer : power) {
    for (double p : layer) t += p;
  }
  return t;
}

PowerGenerator::PowerGenerator(const ChipSpec& spec) : spec_(spec) {
  spec_.validate();
}

double PowerGenerator::kind_weight(BlockKind k) {
  switch (k) {
    case BlockKind::kCore: return 3.0;
    case BlockKind::kL1Cache: return 1.5;
    case BlockKind::kL2Cache: return 1.0;
    case BlockKind::kInterconnect: return 2.0;
  }
  return 1.0;
}

PowerAssignment PowerGenerator::sample(Rng& rng) const {
  PowerAssignment pa;
  pa.power.resize(spec_.layers.size());
  double raw_total = 0.0;
  for (std::size_t li = 0; li < spec_.layers.size(); ++li) {
    const auto& layer = spec_.layers[li];
    if (!layer.is_device) continue;
    pa.power[li].resize(layer.floorplan.blocks.size(), 0.0);
    for (std::size_t bi = 0; bi < layer.floorplan.blocks.size(); ++bi) {
      const Block& b = layer.floorplan.blocks[bi];
      // Areal density proportional to kind weight, jittered by a wide
      // uniform factor so power distributions vary strongly across samples
      // (the paper picks "significant power distribution variations").
      const double density = kind_weight(b.kind) * rng.uniform(0.25, 1.75);
      const double p = density * b.area_fraction();
      pa.power[li][bi] = p;
      raw_total += p;
    }
  }
  // Rescale so the chip total is uniform in the configured range.
  const double target =
      rng.uniform(spec_.total_power_min, spec_.total_power_max);
  SAUFNO_CHECK(raw_total > 0.0, "degenerate power sample");
  const double s = target / raw_total;
  for (auto& layer : pa.power) {
    for (double& p : layer) p *= s;
  }
  return pa;
}

std::vector<std::vector<float>> PowerGenerator::rasterize(
    const PowerAssignment& pa, int ny, int nx) const {
  SAUFNO_CHECK(ny > 0 && nx > 0, "bad raster size");
  std::vector<std::vector<float>> maps;
  const double cell_area_frac = (1.0 / nx) * (1.0 / ny);
  const double die_area = spec_.die_w * spec_.die_h;
  for (std::size_t li = 0; li < spec_.layers.size(); ++li) {
    const auto& layer = spec_.layers[li];
    if (!layer.is_device) continue;
    std::vector<float> map(static_cast<std::size_t>(ny) * nx, 0.f);
    for (std::size_t bi = 0; bi < layer.floorplan.blocks.size(); ++bi) {
      const Block& b = layer.floorplan.blocks[bi];
      const double p = pa.power[li][bi];
      if (p <= 0.0) continue;
      // W per unit normalized area of the block.
      const double density = p / b.area_fraction();
      for (int i = 0; i < ny; ++i) {
        const double y0 = static_cast<double>(i) / ny;
        const double y1 = static_cast<double>(i + 1) / ny;
        for (int j = 0; j < nx; ++j) {
          const double x0 = static_cast<double>(j) / nx;
          const double x1 = static_cast<double>(j + 1) / nx;
          const double ov = b.overlap(x0, y0, x1, y1);
          if (ov <= 0.0) continue;
          // Watts in this cell -> areal density W/m^2.
          const double watts = density * ov;
          map[static_cast<std::size_t>(i) * nx + j] +=
              static_cast<float>(watts / (cell_area_frac * die_area));
        }
      }
    }
    maps.push_back(std::move(map));
  }
  return maps;
}

}  // namespace chip
}  // namespace saufno
