#pragma once

#include <string>

namespace saufno {
namespace chip {

/// Bulk thermal properties of a stack material (Table I of the paper).
struct Material {
  std::string name;
  double conductivity;    // W/(m K)
  double heat_capacity;   // volumetric, J/(m^3 K)
};

/// The material set of Table I. Device layers and TSVs share k = 100,
/// c = 1.75e6; TIM is k = 4, c = 4.0e6; spreader and sink are k = 400,
/// c = 3.55e6 (copper-class).
namespace materials {
Material device_silicon();
Material tim();
Material copper();
}  // namespace materials

/// Effective vertical conductivity of a layer penetrated by a TSV array
/// (parallel thermal paths, volume-fraction weighted). With Table I's
/// parameters (TSV k equal to layer k) this is the identity, but the
/// helper keeps the physics explicit and is unit-tested for the general
/// case (e.g. copper TSVs through oxide).
double tsv_effective_conductivity(double layer_k, double tsv_k,
                                  double tsv_diameter, double tsv_pitch);

}  // namespace chip
}  // namespace saufno
