#include "chip/floorplan.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace saufno {
namespace chip {

double Block::overlap(double x0, double y0, double x1, double y1) const {
  const double ox = std::max(0.0, std::min(x + w, x1) - std::max(x, x0));
  const double oy = std::max(0.0, std::min(y + h, y1) - std::max(y, y0));
  return ox * oy;
}

void Floorplan::validate() const {
  constexpr double kTol = 1e-9;
  double total = 0.0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const Block& b = blocks[i];
    SAUFNO_CHECK(b.w > 0 && b.h > 0, "block '" + b.name + "' has empty area");
    SAUFNO_CHECK(b.x >= -kTol && b.y >= -kTol && b.x + b.w <= 1.0 + kTol &&
                     b.y + b.h <= 1.0 + kTol,
                 "block '" + b.name + "' extends outside the die");
    total += b.area_fraction();
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      const Block& c = blocks[j];
      const double ov = b.overlap(c.x, c.y, c.x + c.w, c.y + c.h);
      SAUFNO_CHECK(ov <= kTol, "blocks '" + b.name + "' and '" + c.name +
                                   "' overlap");
    }
  }
  SAUFNO_CHECK(total <= 1.0 + 1e-6, "floorplan covers more than the die");
}

const Block* Floorplan::find(const std::string& name) const {
  for (const auto& b : blocks) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

std::vector<int> ChipSpec::device_layer_indices() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].is_device) out.push_back(static_cast<int>(i));
  }
  return out;
}

int ChipSpec::num_device_layers() const {
  return static_cast<int>(device_layer_indices().size());
}

int ChipSpec::num_power_blocks() const {
  int n = 0;
  for (const auto& l : layers) {
    if (l.is_device) n += static_cast<int>(l.floorplan.blocks.size());
  }
  return n;
}

void ChipSpec::validate() const {
  SAUFNO_CHECK(die_w > 0 && die_h > 0, "chip '" + name + "': bad die size");
  SAUFNO_CHECK(!layers.empty(), "chip '" + name + "': no layers");
  SAUFNO_CHECK(num_device_layers() >= 1,
               "chip '" + name + "': no device layers");
  for (const auto& l : layers) {
    SAUFNO_CHECK(l.thickness > 0, "layer '" + l.name + "': bad thickness");
    SAUFNO_CHECK(l.material.conductivity > 0,
                 "layer '" + l.name + "': bad conductivity");
    if (l.is_device) l.floorplan.validate();
  }
  SAUFNO_CHECK(total_power_min > 0 && total_power_max >= total_power_min,
               "chip '" + name + "': bad power range");
}

}  // namespace chip
}  // namespace saufno
