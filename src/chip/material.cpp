#include "chip/material.h"

#include <cmath>

#include "common/logging.h"

namespace saufno {
namespace chip {
namespace materials {

Material device_silicon() { return {"device-silicon", 100.0, 1.75e6}; }
Material tim() { return {"TIM", 4.0, 4.00e6}; }
Material copper() { return {"copper", 400.0, 3.55e6}; }

}  // namespace materials

double tsv_effective_conductivity(double layer_k, double tsv_k,
                                  double tsv_diameter, double tsv_pitch) {
  SAUFNO_CHECK(tsv_pitch > 0.0 && tsv_diameter >= 0.0,
               "bad TSV geometry");
  SAUFNO_CHECK(tsv_diameter <= tsv_pitch,
               "TSV diameter cannot exceed pitch");
  // Area fraction of a square-pitch array of circular vias.
  const double cell = tsv_pitch * tsv_pitch;
  const double via = M_PI * tsv_diameter * tsv_diameter / 4.0;
  const double f = via / cell;
  return (1.0 - f) * layer_k + f * tsv_k;
}

}  // namespace chip
}  // namespace saufno
