#include "chip/chips.h"

#include "common/logging.h"

namespace saufno {
namespace chip {
namespace {

constexpr double kMm = 1e-3;

/// Append TIM + heat spreader + heat-sink base above the device stack.
/// Table I gives the spreader (30x30x1 mm) and sink (60x60x6.9 mm, 21 fins
/// of 1x60x50 mm) at their physical footprints; the solvers model the stack
/// at the die footprint and fold the fins + lateral spreading gain into the
/// effective top-surface coefficient h_top (see DESIGN.md substitutions).
void append_cooling(ChipSpec& c, double tim_thickness) {
  c.layers.push_back({"TIM", tim_thickness, materials::tim(), false, {}});
  c.layers.push_back(
      {"heat-spreader", 1.0 * kMm, materials::copper(), false, {}});
  c.layers.push_back(
      {"heat-sink-base", 6.9 * kMm, materials::copper(), false, {}});
}

Block core(const std::string& n, double x, double y, double w, double h) {
  return {n, BlockKind::kCore, x, y, w, h};
}
Block l1(const std::string& n, double x, double y, double w, double h) {
  return {n, BlockKind::kL1Cache, x, y, w, h};
}
Block l2(const std::string& n, double x, double y, double w, double h) {
  return {n, BlockKind::kL2Cache, x, y, w, h};
}

}  // namespace

ChipSpec make_chip1() {
  ChipSpec c;
  c.name = "chip1";
  c.die_w = 16.0 * kMm;
  c.die_h = 16.0 * kMm;

  // Lower device layer: three L2 caches (Fig. 3, "L2 Cache Layer").
  LayerSpec cache_layer;
  cache_layer.name = "l2-cache-layer";
  cache_layer.thickness = 0.15 * kMm;
  cache_layer.material = materials::device_silicon();
  cache_layer.is_device = true;
  cache_layer.floorplan.blocks = {
      l2("L2_1", 0.00, 0.00, 1.00, 0.34),
      l2("L2_2", 0.00, 0.34, 0.50, 0.66),
      l2("L2_3", 0.50, 0.34, 0.50, 0.66),
  };

  // Upper device layer: core, two L1s, one L2 ("Core & L1 / L2 Cache").
  LayerSpec core_layer;
  core_layer.name = "core-layer";
  core_layer.thickness = 0.15 * kMm;
  core_layer.material = materials::device_silicon();
  core_layer.is_device = true;
  core_layer.floorplan.blocks = {
      core("Core", 0.00, 0.00, 0.60, 0.60),
      l1("L1_1", 0.60, 0.00, 0.40, 0.30),
      l1("L1_2", 0.60, 0.30, 0.40, 0.30),
      l2("L2", 0.00, 0.60, 1.00, 0.40),
  };

  c.layers = {cache_layer, core_layer};
  append_cooling(c, 0.02 * kMm);
  // Calibrated so the field solver's junction temperatures land in the
  // paper's Table IV band (max ~381 K at 318 K ambient).
  c.h_top = 1.4e4;
  c.total_power_min = 90.0;
  c.total_power_max = 195.0;
  c.validate();
  return c;
}

ChipSpec make_chip2() {
  ChipSpec c;
  c.name = "chip2";
  c.die_w = 12.4 * kMm;
  c.die_h = 12.76 * kMm;

  // Two identical L2 layers, two caches each.
  LayerSpec l2_layer;
  l2_layer.name = "l2-cache-layer";
  l2_layer.thickness = 0.15 * kMm;
  l2_layer.material = materials::device_silicon();
  l2_layer.is_device = true;
  l2_layer.floorplan.blocks = {
      l2("L2_1", 0.00, 0.00, 1.00, 0.50),
      l2("L2_2", 0.00, 0.50, 1.00, 0.50),
  };
  LayerSpec l2_layer_b = l2_layer;
  l2_layer_b.name = "l2-cache-layer-2";
  for (auto& b : l2_layer_b.floorplan.blocks) b.name += "b";

  // Four-core layer, closest to the heat sink (paper: "the top layer
  // closest to the heatsink consisting of four cores").
  LayerSpec core_layer;
  core_layer.name = "core-layer";
  core_layer.thickness = 0.15 * kMm;
  core_layer.material = materials::device_silicon();
  core_layer.is_device = true;
  core_layer.floorplan.blocks = {
      core("Core1", 0.00, 0.00, 0.50, 0.50),
      core("Core2", 0.50, 0.00, 0.50, 0.50),
      core("Core3", 0.00, 0.50, 0.50, 0.50),
      core("Core4", 0.50, 0.50, 0.50, 0.50),
  };

  c.layers = {l2_layer, l2_layer_b, core_layer};
  append_cooling(c, 0.02 * kMm);
  // Calibrated toward Table IV's chip2 band (max ~380 K).
  c.h_top = 1.6e4;
  c.total_power_min = 65.0;
  c.total_power_max = 140.0;
  c.validate();
  return c;
}

ChipSpec make_chip3() {
  ChipSpec c;
  c.name = "chip3";
  c.die_w = 10.0 * kMm;
  c.die_h = 10.0 * kMm;

  // Lower device layer: four L2 caches in a 2x2 arrangement.
  LayerSpec cache_layer;
  cache_layer.name = "l2-cache-layer";
  cache_layer.thickness = 0.1 * kMm;
  cache_layer.material = materials::device_silicon();
  cache_layer.is_device = true;
  cache_layer.floorplan.blocks = {
      l2("L2_1", 0.00, 0.00, 0.50, 0.50),
      l2("L2_2", 0.50, 0.00, 0.50, 0.50),
      l2("L2_3", 0.00, 0.50, 0.50, 0.50),
      l2("L2_4", 0.50, 0.50, 0.50, 0.50),
  };

  // Upper device layer: eight cores (with their L1s) around a crossbar.
  LayerSpec core_layer;
  core_layer.name = "core-layer";
  core_layer.thickness = 0.1 * kMm;
  core_layer.material = materials::device_silicon();
  core_layer.is_device = true;
  core_layer.floorplan.blocks = {
      core("C1", 0.00, 0.00, 0.25, 0.40), core("C2", 0.25, 0.00, 0.25, 0.40),
      core("C3", 0.50, 0.00, 0.25, 0.40), core("C4", 0.75, 0.00, 0.25, 0.40),
      {"CrossBar", BlockKind::kInterconnect, 0.00, 0.40, 1.00, 0.20},
      core("C5", 0.00, 0.60, 0.25, 0.40), core("C6", 0.25, 0.60, 0.25, 0.40),
      core("C7", 0.50, 0.60, 0.25, 0.40), core("C8", 0.75, 0.60, 0.25, 0.40),
  };

  c.layers = {cache_layer, core_layer};
  append_cooling(c, 0.052 * kMm);
  // Smaller die at similar power -> the much hotter field of Table IV
  // (max ~422 K vs ~381 K on chip1); h_top calibrated accordingly.
  c.h_top = 1.8e4;
  c.total_power_min = 67.0;
  c.total_power_max = 135.0;
  c.validate();
  return c;
}

std::vector<ChipSpec> all_chips() {
  return {make_chip1(), make_chip2(), make_chip3()};
}

ChipSpec chip_by_name(const std::string& name) {
  if (name == "chip1") return make_chip1();
  if (name == "chip2") return make_chip2();
  if (name == "chip3") return make_chip3();
  fail("unknown chip: " + name);
}

}  // namespace chip
}  // namespace saufno
