#pragma once

#include <map>

#include "chip/floorplan.h"
#include "common/rng.h"

namespace saufno {
namespace chip {

/// One workload: watts per named block, per device layer.
struct PowerAssignment {
  /// power[layer_index][block_index] in W; indices follow
  /// ChipSpec::layers / Floorplan::blocks order.
  std::vector<std::vector<double>> power;

  double total() const;
};

/// Random workload generator (Section IV-A "Data Generation"): power levels
/// are assigned per functional block "while ensuring the total power
/// remained within an appropriate range". Blocks are weighted by kind —
/// cores dissipate roughly 3x the areal density of caches, interconnect
/// sits between — then jittered and rescaled so the total lands uniformly
/// in [total_power_min, total_power_max].
class PowerGenerator {
 public:
  explicit PowerGenerator(const ChipSpec& spec);

  PowerAssignment sample(Rng& rng) const;

  /// Rasterize an assignment to per-device-layer areal power-density maps
  /// (W/m^2), row-major [ny, nx], one map per device layer (stack order).
  /// Cells covered partially by a block receive the overlapped fraction —
  /// this is the model input channel described in DESIGN.md.
  std::vector<std::vector<float>> rasterize(const PowerAssignment& pa,
                                            int ny, int nx) const;

 private:
  const ChipSpec spec_;
  static double kind_weight(BlockKind k);
};

}  // namespace chip
}  // namespace saufno
