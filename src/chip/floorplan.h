#pragma once

#include <string>
#include <vector>

#include "chip/material.h"

namespace saufno {
namespace chip {

/// Functional-block kinds; power sampling weights them differently (cores
/// dissipate far more per area than caches, which is what creates the
/// hotspots the paper's figures show).
enum class BlockKind { kCore, kL1Cache, kL2Cache, kInterconnect };

/// A rectangular functional block in normalized die coordinates
/// (x, y, w, h in [0, 1]; y grows downward like the figures).
struct Block {
  std::string name;
  BlockKind kind;
  double x, y, w, h;

  double area_fraction() const { return w * h; }
  /// Overlap area fraction with the axis-aligned rectangle [x0,x1)x[y0,y1).
  double overlap(double x0, double y0, double x1, double y1) const;
};

/// One floorplan = the blocks of one device layer.
struct Floorplan {
  std::vector<Block> blocks;

  /// Validation: every block inside the die, no pairwise overlap beyond a
  /// tolerance, total coverage <= 1. Throws on violation.
  void validate() const;
  const Block* find(const std::string& name) const;
};

/// One physical layer of the 3-D stack, bottom-up.
struct LayerSpec {
  std::string name;
  double thickness;    // meters
  Material material;
  bool is_device = false;  // true: carries a floorplan and dissipates power
  Floorplan floorplan;     // only for device layers
};

/// Complete 3-D chip description (geometry of Table I + floorplans of
/// Fig. 3 + boundary/power parameters used by the solvers).
struct ChipSpec {
  std::string name;
  double die_w, die_h;            // meters (the device-layer footprint)
  std::vector<LayerSpec> layers;  // ordered bottom (package) -> top (sink)

  // Boundary conditions. The heat sink (spreader + base + 21 fins of
  // Table I) is folded into an effective heat-transfer coefficient at the
  // top of the modeled stack; the package side leaks weakly.
  double ambient = 318.0;   // K
  double h_top = 2.2e4;     // W/(m^2 K), effective fins+convection at sink
  double h_bottom = 150.0;  // W/(m^2 K), through-package leakage

  // Power sampling range for the random workload generator.
  double total_power_min = 40.0, total_power_max = 90.0;  // W

  // TSV array parameters (Table I: diameter 0.01 mm, pitch 0.01 mm).
  double tsv_diameter = 1e-5, tsv_pitch = 1e-5;
  double tsv_conductivity = 100.0;

  std::vector<int> device_layer_indices() const;
  int num_device_layers() const;
  /// Sum of block-count over device layers (used by the power generator).
  int num_power_blocks() const;
  void validate() const;
};

}  // namespace chip
}  // namespace saufno
