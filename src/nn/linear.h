#pragma once

#include "nn/init.h"
#include "nn/module.h"

namespace saufno {
namespace nn {

/// Fully-connected layer y = x W^T + b on the last dimension.
/// Input [..., in_features] -> output [..., out_features]; leading dims are
/// flattened through a reshape, so the same layer serves both the MLPs
/// (DeepOHeat branch/trunk nets) and per-pixel channel maps.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Var forward(const Var& x) override;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

 private:
  int64_t in_, out_;
  Var weight_;  // [in, out] so forward is a plain matmul
  Var bias_;    // [out] (undefined when bias=false)
};

/// 1x1 convolution expressed as a per-pixel Linear over channels:
/// [B, Cin, H, W] -> [B, Cout, H, W]. This is the W "linear bias term" of
/// Eq. (6)/(8) and the Q/K/V embeddings of the attention block; using 1x1
/// kernels everywhere outside the U-Net is what preserves mesh invariance.
class PointwiseConv : public Module {
 public:
  PointwiseConv(int64_t cin, int64_t cout, Rng& rng, bool bias = true);
  Var forward(const Var& x) override;

 private:
  int64_t cin_, cout_;
  Var weight_;  // [cin, cout]
  Var bias_;    // [cout]
};

}  // namespace nn
}  // namespace saufno
