#include "nn/conv.h"

#include "autograd/conv_ops.h"

namespace saufno {
namespace nn {

Conv2d::Conv2d(int64_t cin, int64_t cout, int64_t kernel, Rng& rng,
               int64_t stride, int64_t pad, bool bias)
    : cin_(cin), cout_(cout), kernel_(kernel), stride_(stride), pad_(pad) {
  const int64_t fan_in = cin * kernel * kernel;
  weight_ = register_parameter(
      "weight", Var(kaiming_uniform({cout_, cin_, kernel_, kernel_}, fan_in, rng),
                    /*requires_grad=*/true));
  if (bias) {
    bias_ = register_parameter(
        "bias", Var(Tensor::zeros({cout_}), /*requires_grad=*/true));
  }
}

Var Conv2d::forward(const Var& x) {
  return ops::conv2d(x, weight_, bias_, stride_, pad_);
}

}  // namespace nn
}  // namespace saufno
