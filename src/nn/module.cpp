#include "nn/module.h"

#include "common/logging.h"

namespace saufno {
namespace nn {

std::vector<Var> Module::parameters() const {
  std::vector<Var> out;
  for (const auto& [name, v] : named_parameters()) out.push_back(v);
  return out;
}

std::vector<std::pair<std::string, Var>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Var>> out;
  collect("", &out);
  return out;
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, Var>>* out) const {
  for (const auto& [name, v] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, v);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

void Module::zero_grad() {
  for (auto& v : parameters()) v.zero_grad();
}

int64_t Module::num_parameters() const {
  int64_t n = 0;
  for (const auto& v : parameters()) n += v.numel();
  return n;
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

Var Module::register_parameter(const std::string& name, Var v) {
  SAUFNO_CHECK(v.requires_grad(),
               "parameter '" + name + "' must require grad");
  params_.emplace_back(name, v);
  return v;
}

void Module::add_child(const std::string& name, std::shared_ptr<Module> m) {
  SAUFNO_CHECK(m != nullptr, "registering null module '" + name + "'");
  children_.emplace_back(name, std::move(m));
}

Sequential& Sequential::append(std::shared_ptr<Module> m) {
  Module* raw = m.get();
  add_child(std::to_string(next_id_++), std::move(m));
  mods_.push_back(raw);
  return *this;
}

Var Sequential::forward(const Var& x) {
  Var cur = x;
  if (plan::tracing()) {
    // Scope each child by its registration index so traced instructions
    // carry "0/...", "1/..." labels. The label strings are only built while
    // a trace is recording — the interpreted path stays allocation-free.
    int id = 0;
    for (Module* m : mods_) {
      plan::TraceScope scope(std::to_string(id++));
      cur = m->forward(cur);
    }
  } else {
    for (Module* m : mods_) cur = m->forward(cur);
  }
  return cur;
}

}  // namespace nn
}  // namespace saufno
