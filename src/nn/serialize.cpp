#include "nn/serialize.h"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "common/logging.h"

namespace saufno {
namespace nn {
namespace {

constexpr std::uint64_t kMagicV1 = 0x53415546'4e4f4331ULL;  // "SAUFNOC1"
constexpr std::uint64_t kMagicV2 = 0x53415546'4e4f4332ULL;  // "SAUFNOC2"
constexpr std::uint64_t kMagicV3 = 0x53415546'4e4f4333ULL;  // "SAUFNOC3"

// Sanity bounds for reading untrusted files: no real parameter tensor in
// this codebase comes close to these, so anything larger is corruption,
// and rejecting it up front keeps a garbage dim from turning into a
// multi-gigabyte (or negative-size) allocation.
constexpr std::uint64_t kMaxNameLen = 1u << 20;
constexpr std::uint64_t kMaxRank = 8;
constexpr std::int64_t kMaxDim = int64_t{1} << 24;       // 16M per axis
constexpr std::int64_t kMaxNumel = int64_t{1} << 28;     // 1 GiB of floats

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in, const char* what) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  SAUFNO_CHECK(in.good(), std::string("corrupt checkpoint (truncated ") +
                              what + ")");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in, const char* what) {
  const auto len = read_pod<std::uint64_t>(in, what);
  SAUFNO_CHECK(len <= kMaxNameLen,
               std::string("corrupt checkpoint (oversized ") + what + ")");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  SAUFNO_CHECK(in.good(), std::string("corrupt checkpoint (truncated ") +
                              what + ")");
  return s;
}

void write_params(std::ostream& out, const Module& m) {
  auto params = m.named_parameters();
  write_pod<std::uint64_t>(out, params.size());
  for (const auto& [name, v] : params) {
    write_string(out, name);
    write_pod<std::uint64_t>(out, static_cast<std::uint64_t>(v.value().dim()));
    for (int64_t d : v.value().shape()) write_pod<std::int64_t>(out, d);
    out.write(reinterpret_cast<const char*>(v.value().data()),
              static_cast<std::streamsize>(v.value().numel() *
                                           static_cast<int64_t>(sizeof(float))));
  }
}

std::map<std::string, Tensor> read_params(std::istream& in,
                                          const std::string& path) {
  const auto count = read_pod<std::uint64_t>(in, "count");
  std::map<std::string, Tensor> state;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(in, "parameter name");
    const auto rank = read_pod<std::uint64_t>(in, "rank");
    SAUFNO_CHECK(rank <= kMaxRank, "corrupt checkpoint (rank)");
    // Validate every dim and the running element count BEFORE constructing
    // the tensor: a truncated or corrupt file must fail here, not inside a
    // huge allocation.
    Shape shape(rank);
    std::int64_t numel = 1;
    for (auto& d : shape) {
      const auto dd = read_pod<std::int64_t>(in, "dim");
      SAUFNO_CHECK(dd >= 1 && dd <= kMaxDim, "corrupt checkpoint (dim)");
      SAUFNO_CHECK(numel <= kMaxNumel / dd, "corrupt checkpoint (numel)");
      numel *= dd;
      d = dd;
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() *
                                         static_cast<int64_t>(sizeof(float))));
    SAUFNO_CHECK(in.good(), "corrupt checkpoint (data) in " + path);
    state.emplace(std::move(name), std::move(t));
  }
  return state;
}

void write_meta(std::ostream& out, const CheckpointMeta& meta) {
  write_string(out, meta.model_name);
  write_pod<std::int64_t>(out, meta.in_channels);
  write_pod<std::int64_t>(out, meta.out_channels);
  write_pod<std::int64_t>(out, meta.size_hint);
  write_pod<std::uint8_t>(out, meta.has_normalizer ? 1 : 0);
  if (meta.has_normalizer) meta.normalizer.serialize(out);
  // v3 rollout section: dt + channel split of the autoregressive input.
  write_pod<std::uint8_t>(out, meta.has_rollout ? 1 : 0);
  if (meta.has_rollout) {
    write_pod<double>(out, meta.rollout.dt);
    write_pod<std::int64_t>(out, meta.rollout.state_channels);
    write_pod<std::int64_t>(out, meta.rollout.power_channels);
  }
}

CheckpointMeta read_meta(std::istream& in, int version) {
  CheckpointMeta meta;
  meta.version = version;
  meta.model_name = read_string(in, "model name");
  meta.in_channels = read_pod<std::int64_t>(in, "in_channels");
  meta.out_channels = read_pod<std::int64_t>(in, "out_channels");
  // Same validate-before-allocating rule as parameter dims: these feed
  // straight into make_model's tensor sizes, so a corrupt header must fail
  // here. 0 is legal (weights-only v2 meta, identity unknown).
  SAUFNO_CHECK(meta.in_channels >= 0 && meta.in_channels <= kMaxDim &&
                   meta.out_channels >= 0 && meta.out_channels <= kMaxDim,
               "corrupt checkpoint (channels)");
  meta.size_hint = static_cast<int>(read_pod<std::int64_t>(in, "size_hint"));
  SAUFNO_CHECK(meta.size_hint >= 0 && meta.size_hint <= 8,
               "corrupt checkpoint (size_hint)");
  meta.has_normalizer = read_pod<std::uint8_t>(in, "normalizer flag") != 0;
  if (meta.has_normalizer) {
    meta.normalizer = data::Normalizer::deserialize(in);
  }
  if (version >= 3) {
    meta.has_rollout = read_pod<std::uint8_t>(in, "rollout flag") != 0;
    if (meta.has_rollout) {
      meta.rollout.dt = read_pod<double>(in, "rollout dt");
      meta.rollout.state_channels =
          read_pod<std::int64_t>(in, "rollout state channels");
      meta.rollout.power_channels =
          read_pod<std::int64_t>(in, "rollout power channels");
      // The spec feeds straight into input assembly and model sizing, so a
      // corrupt header must fail here, like the channel counts above.
      SAUFNO_CHECK(std::isfinite(meta.rollout.dt) && meta.rollout.dt > 0,
                   "corrupt checkpoint (rollout dt)");
      SAUFNO_CHECK(meta.rollout.state_channels >= 1 &&
                       meta.rollout.state_channels <= kMaxDim &&
                       meta.rollout.power_channels >= 0 &&
                       meta.rollout.power_channels <= kMaxDim,
                   "corrupt checkpoint (rollout channels)");
    }
  }
  return meta;
}

}  // namespace

std::map<std::string, Tensor> state_dict(const Module& m) {
  std::map<std::string, Tensor> out;
  for (const auto& [name, v] : m.named_parameters()) {
    out.emplace(name, v.value().clone());
  }
  return out;
}

void load_state_dict(Module& m, const std::map<std::string, Tensor>& state,
                     bool strict) {
  for (auto& [name, v] : m.named_parameters()) {
    auto it = state.find(name);
    if (it == state.end()) {
      SAUFNO_CHECK(!strict, "missing parameter in state dict: " + name);
      continue;
    }
    SAUFNO_CHECK(it->second.shape() == v.value().shape(),
                 "shape mismatch loading '" + name + "': " +
                     shape_str(it->second.shape()) + " vs " +
                     shape_str(v.value().shape()));
    // Copy into the existing storage so optimizer references stay valid.
    std::copy(it->second.data(), it->second.data() + it->second.numel(),
              v.value().data());
  }
}

void save_checkpoint(const Module& m, const std::string& path,
                     const CheckpointMeta& meta) {
  std::ofstream out(path, std::ios::binary);
  SAUFNO_CHECK(out.good(), "cannot open checkpoint for writing: " + path);
  write_pod<std::uint64_t>(out, kMagicV3);
  write_meta(out, meta);
  write_params(out, m);
  SAUFNO_CHECK(out.good(), "checkpoint write failed: " + path);
}

void save_checkpoint_v1(const Module& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SAUFNO_CHECK(out.good(), "cannot open checkpoint for writing: " + path);
  write_pod<std::uint64_t>(out, kMagicV1);
  write_params(out, m);
  SAUFNO_CHECK(out.good(), "checkpoint write failed: " + path);
}

CheckpointMeta load_checkpoint(Module& m, const std::string& path,
                               bool strict) {
  std::ifstream in(path, std::ios::binary);
  SAUFNO_CHECK(in.good(), "cannot open checkpoint: " + path);
  const auto magic = read_pod<std::uint64_t>(in, "magic");
  SAUFNO_CHECK(magic == kMagicV1 || magic == kMagicV2 || magic == kMagicV3,
               "bad checkpoint magic in " + path);
  CheckpointMeta meta;
  if (magic != kMagicV1) {
    meta = read_meta(in, magic == kMagicV3 ? 3 : 2);
  } else {
    meta.version = 1;  // legacy weights-only file
  }
  load_state_dict(m, read_params(in, path), strict);
  return meta;
}

CheckpointMeta read_checkpoint_meta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SAUFNO_CHECK(in.good(), "cannot open checkpoint: " + path);
  const auto magic = read_pod<std::uint64_t>(in, "magic");
  SAUFNO_CHECK(magic == kMagicV1 || magic == kMagicV2 || magic == kMagicV3,
               "bad checkpoint magic in " + path);
  if (magic == kMagicV1) {
    CheckpointMeta meta;
    meta.version = 1;
    return meta;
  }
  return read_meta(in, magic == kMagicV3 ? 3 : 2);
}

}  // namespace nn
}  // namespace saufno
