#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "common/logging.h"

namespace saufno {
namespace nn {
namespace {
constexpr std::uint64_t kMagic = 0x53415546'4e4f4331ULL;  // "SAUFNOC1"
}

std::map<std::string, Tensor> state_dict(const Module& m) {
  std::map<std::string, Tensor> out;
  for (const auto& [name, v] : m.named_parameters()) {
    out.emplace(name, v.value().clone());
  }
  return out;
}

void load_state_dict(Module& m, const std::map<std::string, Tensor>& state,
                     bool strict) {
  for (auto& [name, v] : m.named_parameters()) {
    auto it = state.find(name);
    if (it == state.end()) {
      SAUFNO_CHECK(!strict, "missing parameter in state dict: " + name);
      continue;
    }
    SAUFNO_CHECK(it->second.shape() == v.value().shape(),
                 "shape mismatch loading '" + name + "': " +
                     shape_str(it->second.shape()) + " vs " +
                     shape_str(v.value().shape()));
    // Copy into the existing storage so optimizer references stay valid.
    std::copy(it->second.data(), it->second.data() + it->second.numel(),
              v.value().data());
  }
}

void save_checkpoint(const Module& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SAUFNO_CHECK(out.good(), "cannot open checkpoint for writing: " + path);
  auto params = m.named_parameters();
  const std::uint64_t magic = kMagic;
  const std::uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, v] : params) {
    const std::uint64_t name_len = name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), static_cast<std::streamsize>(name_len));
    const std::uint64_t rank = static_cast<std::uint64_t>(v.value().dim());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : v.value().shape()) {
      const std::int64_t dd = d;
      out.write(reinterpret_cast<const char*>(&dd), sizeof(dd));
    }
    out.write(reinterpret_cast<const char*>(v.value().data()),
              static_cast<std::streamsize>(v.value().numel() *
                                           static_cast<int64_t>(sizeof(float))));
  }
  SAUFNO_CHECK(out.good(), "checkpoint write failed: " + path);
}

void load_checkpoint(Module& m, const std::string& path, bool strict) {
  std::ifstream in(path, std::ios::binary);
  SAUFNO_CHECK(in.good(), "cannot open checkpoint: " + path);
  std::uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  SAUFNO_CHECK(magic == kMagic, "bad checkpoint magic in " + path);
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::map<std::string, Tensor> state;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    SAUFNO_CHECK(in.good() && name_len < (1u << 20), "corrupt checkpoint");
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    std::uint64_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    SAUFNO_CHECK(in.good() && rank <= 8, "corrupt checkpoint (rank)");
    Shape shape(rank);
    for (auto& d : shape) {
      std::int64_t dd = 0;
      in.read(reinterpret_cast<char*>(&dd), sizeof(dd));
      d = dd;
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() *
                                         static_cast<int64_t>(sizeof(float))));
    SAUFNO_CHECK(in.good(), "corrupt checkpoint (data) in " + path);
    state.emplace(std::move(name), std::move(t));
  }
  load_state_dict(m, state, strict);
}

}  // namespace nn
}  // namespace saufno
