#include "nn/init.h"

#include <cmath>

namespace saufno {
namespace nn {

Tensor kaiming_uniform(Shape shape, int64_t fan_in, Rng& rng) {
  const float bound = std::sqrt(6.f / static_cast<float>(fan_in));
  return Tensor::rand_uniform(std::move(shape), rng, -bound, bound);
}

Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float bound =
      std::sqrt(6.f / static_cast<float>(fan_in + fan_out));
  return Tensor::rand_uniform(std::move(shape), rng, -bound, bound);
}

Tensor spectral_init(Shape shape, int64_t cin, int64_t cout, Rng& rng) {
  const float scale = 1.f / static_cast<float>(cin * cout);
  return Tensor::rand_uniform(std::move(shape), rng, 0.f, scale);
}

}  // namespace nn
}  // namespace saufno
