#include "nn/linear.h"

#include "common/logging.h"

namespace saufno {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_(in_features), out_(out_features) {
  weight_ = register_parameter(
      "weight",
      Var(xavier_uniform({in_, out_}, in_, out_, rng), /*requires_grad=*/true));
  if (bias) {
    bias_ = register_parameter(
        "bias", Var(Tensor::zeros({out_}), /*requires_grad=*/true));
  }
}

Var Linear::forward(const Var& x) {
  const Shape in_shape = x.shape();
  SAUFNO_CHECK(!in_shape.empty() && in_shape.back() == in_,
               "Linear expects last dim " + std::to_string(in_) + ", got " +
                   shape_str(in_shape));
  Var flat = ops::reshape(x, {-1, in_});
  Var y = ops::matmul(flat, weight_);
  if (bias_.defined()) y = ops::add(y, bias_);
  Shape out_shape = in_shape;
  out_shape.back() = out_;
  return ops::reshape(y, std::move(out_shape));
}

PointwiseConv::PointwiseConv(int64_t cin, int64_t cout, Rng& rng, bool bias)
    : cin_(cin), cout_(cout) {
  weight_ = register_parameter(
      "weight",
      Var(xavier_uniform({cin_, cout_}, cin_, cout_, rng),
          /*requires_grad=*/true));
  if (bias) {
    bias_ = register_parameter(
        "bias", Var(Tensor::zeros({cout_}), /*requires_grad=*/true));
  }
}

Var PointwiseConv::forward(const Var& x) {
  SAUFNO_CHECK(x.value().dim() == 4, "PointwiseConv input must be [B,C,H,W]");
  SAUFNO_CHECK(x.size(1) == cin_, "PointwiseConv expects " +
                                      std::to_string(cin_) + " channels, got " +
                                      std::to_string(x.size(1)));
  const int64_t B = x.size(0), H = x.size(2), W = x.size(3);
  // Channels-last so the channel map is one big gemm.
  Var t = ops::permute(x, {0, 2, 3, 1});           // [B, H, W, Cin]
  t = ops::reshape(t, {B * H * W, cin_});
  t = ops::matmul(t, weight_);
  if (bias_.defined()) t = ops::add(t, bias_);
  t = ops::reshape(t, {B, H, W, cout_});
  return ops::permute(t, {0, 3, 1, 2});            // [B, Cout, H, W]
}

}  // namespace nn
}  // namespace saufno
