#include "nn/pool.h"

#include "autograd/conv_ops.h"

namespace saufno {
namespace nn {

Var MaxPool2d::forward(const Var& x) { return ops::maxpool2d(x, kernel_); }

Var UpsampleBilinear::forward(const Var& x) {
  const int64_t h = x.size(-2), w = x.size(-1);
  return ops::resize_bilinear(x, h * scale_, w * scale_);
}

}  // namespace nn
}  // namespace saufno
