#pragma once

#include "nn/module.h"

namespace saufno {
namespace nn {

/// 2x2 (configurable) max pooling, kernel == stride.
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(int64_t kernel = 2) : kernel_(kernel) {}
  Var forward(const Var& x) override;

 private:
  int64_t kernel_;
};

/// Bilinear upsampling by an integer scale factor (align_corners=true).
/// The U-Net decoder restores resolution with this, matching the paper's
/// "bilinear interpolation and 3x3 convolutions" description.
class UpsampleBilinear : public Module {
 public:
  explicit UpsampleBilinear(int64_t scale = 2) : scale_(scale) {}
  Var forward(const Var& x) override;

 private:
  int64_t scale_;
};

}  // namespace nn
}  // namespace saufno
