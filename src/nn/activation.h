#pragma once

#include "nn/module.h"

namespace saufno {
namespace nn {

/// GELU activation module — the sigma of Eq. (6)/(8) in the paper.
class GELU : public Module {
 public:
  Var forward(const Var& x) override;
};

/// ReLU activation module — used inside the U-Net encoder/decoder.
class ReLU : public Module {
 public:
  Var forward(const Var& x) override;
};

/// Tanh activation (DeepOHeat's branch/trunk nets).
class Tanh : public Module {
 public:
  Var forward(const Var& x) override;
};

}  // namespace nn
}  // namespace saufno
