#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace saufno {
namespace nn {

/// Weight initializers. All draw from an explicit Rng so model construction
/// is reproducible (the benches seed every model identically across runs).

/// Kaiming/He uniform for ReLU-family fan-in layers: U(-b, b) with
/// b = sqrt(6 / fan_in). Standard for the U-Net convolutions.
Tensor kaiming_uniform(Shape shape, int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: U(-b, b), b = sqrt(6 / (fan_in + fan_out)).
/// Used for the lifting/projection networks (GELU activations).
Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

/// FNO spectral-weight init: complex entries scaled by 1/(cin*cout), the
/// convention of the reference FNO implementation (keeps the spectral
/// mixing near-identity at start so deep stacks stay trainable).
Tensor spectral_init(Shape shape, int64_t cin, int64_t cout, Rng& rng);

}  // namespace nn
}  // namespace saufno
