#include "nn/activation.h"

namespace saufno {
namespace nn {

Var GELU::forward(const Var& x) { return ops::gelu(x); }
Var ReLU::forward(const Var& x) { return ops::relu(x); }
Var Tanh::forward(const Var& x) { return ops::tanh(x); }

}  // namespace nn
}  // namespace saufno
