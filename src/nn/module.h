#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "plan/trace.h"

namespace saufno {
namespace nn {

/// Base class for all neural-network building blocks.
///
/// Mirrors the torch.nn.Module contract this codebase's users will expect:
/// parameters and submodules are registered by name, `parameters()` walks
/// the tree, and `state_dict`/`load_state_dict` (see serialize.h) move
/// weights between models — which is exactly how the paper's transfer
/// learning stage initializes the high-fidelity model from the low-fidelity
/// one.
class Module {
 public:
  virtual ~Module() = default;

  /// Single-input forward; every model in this repo maps a [B, Cin, H, W]
  /// input field to a [B, Cout, H, W] output field.
  virtual Var forward(const Var& x) = 0;

  /// forward() wrapped in a plan::TraceScope: while a plan trace is
  /// recording, every instruction emitted inside carries `label` in its
  /// scope path ("layers.0/unet/..."), which is what the plan dump and
  /// per-instruction profiles key on. One thread-local load when no tracer
  /// is active, so callers may use it unconditionally.
  Var traced_forward(const char* label, const Var& x) {
    plan::TraceScope scope(label);
    return forward(x);
  }

  /// All trainable parameters of this module and its children (tree order).
  std::vector<Var> parameters() const;

  /// Name -> parameter pairs with dotted paths ("layers.0.weight").
  std::vector<std::pair<std::string, Var>> named_parameters() const;

  /// Zero every parameter's gradient buffer (call per optimizer step).
  void zero_grad();

  /// Total trainable scalar count (reported by benches; the paper's models
  /// differ strongly in size, which matters for the speed comparison).
  int64_t num_parameters() const;

  /// Training-mode flag propagated to children (reserved for modules with
  /// mode-dependent behaviour; none of the current ones need it but user
  /// extensions might).
  void set_training(bool training);
  bool training() const { return training_; }

 protected:
  /// Register a trainable parameter; returns it for storage convenience.
  Var register_parameter(const std::string& name, Var v);
  /// Register a child module; returns the raw pointer for convenience.
  template <typename M>
  M* register_module(const std::string& name, std::shared_ptr<M> m) {
    M* raw = m.get();
    add_child(name, std::move(m));
    return raw;
  }

  void add_child(const std::string& name, std::shared_ptr<Module> m);

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, Var>>* out) const;

  std::vector<std::pair<std::string, Var>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

/// A module that applies children sequentially (the projection MLPs, the
/// CNN baseline and the U-Net blocks are built from this).
class Sequential : public Module {
 public:
  Sequential() = default;
  /// Append a child; returns *this for chaining.
  Sequential& append(std::shared_ptr<Module> m);
  Var forward(const Var& x) override;
  std::size_t size() const { return mods_.size(); }

 private:
  std::vector<Module*> mods_;
  int next_id_ = 0;
};

/// Wrap a stateless function (activation, reshape...) as a module.
class Lambda : public Module {
 public:
  using Fn = std::function<Var(const Var&)>;
  explicit Lambda(Fn fn) : fn_(std::move(fn)) {}
  Var forward(const Var& x) override { return fn_(x); }

 private:
  Fn fn_;
};

}  // namespace nn
}  // namespace saufno
