#pragma once

#include <map>
#include <string>

#include "nn/module.h"

namespace saufno {
namespace nn {

/// Name -> tensor snapshot of a module's parameters (values are cloned).
std::map<std::string, Tensor> state_dict(const Module& m);

/// Copy matching entries of `state` into `m`'s parameters (by dotted name;
/// shapes must match). Entries in `state` without a counterpart are ignored
/// when `strict` is false — this is the transfer-learning entry point: the
/// high-fidelity model is a fresh instance whose weights are overwritten
/// with the low-fidelity model's state.
void load_state_dict(Module& m, const std::map<std::string, Tensor>& state,
                     bool strict = true);

/// Binary checkpoint IO. Format: magic, count, then per entry
/// (name, rank, dims..., float data). Little-endian, float32.
void save_checkpoint(const Module& m, const std::string& path);
void load_checkpoint(Module& m, const std::string& path, bool strict = true);

}  // namespace nn
}  // namespace saufno
