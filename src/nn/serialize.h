#pragma once

#include <map>
#include <string>

#include "data/normalizer.h"
#include "nn/module.h"

namespace saufno {
namespace nn {

/// Name -> tensor snapshot of a module's parameters (values are cloned).
std::map<std::string, Tensor> state_dict(const Module& m);

/// Copy matching entries of `state` into `m`'s parameters (by dotted name;
/// shapes must match). Entries in `state` without a counterpart are ignored
/// when `strict` is false — this is the transfer-learning entry point: the
/// high-fidelity model is a fresh instance whose weights are overwritten
/// with the low-fidelity model's state.
void load_state_dict(Module& m, const std::map<std::string, Tensor>& state,
                     bool strict = true);

/// Self-describing header persisted by the v2 checkpoint format. A v2
/// artifact records everything needed to rebuild and serve the model:
/// the model-zoo identity (`train::make_model` arguments) and the fitted
/// input/target normalizer, so the serving path can accept raw W-per-pixel
/// power maps and return kelvin fields without out-of-band configuration.
struct CheckpointMeta {
  int version = 2;            // 1 for legacy weights-only files
  std::string model_name;     // train::make_model name ("" when unknown)
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int size_hint = 0;          // model-zoo capacity knob
  bool has_normalizer = false;
  data::Normalizer normalizer;  // valid only when has_normalizer
};

/// Binary checkpoint IO.
///
/// v2 ("SAUFNOC2"): magic, meta (model name, channels, size hint,
/// optional normalizer statistics), count, then per parameter
/// (name, rank, dims..., float data). Little-endian, float32.
/// v1 ("SAUFNOC1"): magic, count, parameters — no meta.
///
/// `save_checkpoint` always writes v2; `load_checkpoint` reads both and
/// returns the meta (defaulted, with version = 1, for legacy files).
void save_checkpoint(const Module& m, const std::string& path,
                     const CheckpointMeta& meta = {});
CheckpointMeta load_checkpoint(Module& m, const std::string& path,
                               bool strict = true);

/// Read only the meta header (cheap; does not touch parameter data).
CheckpointMeta read_checkpoint_meta(const std::string& path);

/// Legacy v1 writer, kept so the v1 compatibility path stays testable.
void save_checkpoint_v1(const Module& m, const std::string& path);

}  // namespace nn
}  // namespace saufno
