#pragma once

#include <map>
#include <string>

#include "data/normalizer.h"
#include "data/rollout_spec.h"
#include "nn/module.h"

namespace saufno {
namespace nn {

/// Name -> tensor snapshot of a module's parameters (values are cloned).
std::map<std::string, Tensor> state_dict(const Module& m);

/// Copy matching entries of `state` into `m`'s parameters (by dotted name;
/// shapes must match). Entries in `state` without a counterpart are ignored
/// when `strict` is false — this is the transfer-learning entry point: the
/// high-fidelity model is a fresh instance whose weights are overwritten
/// with the low-fidelity model's state.
void load_state_dict(Module& m, const std::map<std::string, Tensor>& state,
                     bool strict = true);

/// Self-describing header persisted by the v2+ checkpoint formats. The
/// artifact records everything needed to rebuild and serve the model:
/// the model-zoo identity (`train::make_model` arguments), the fitted
/// input/target normalizer, and — for transient surrogates (v3) — the
/// rollout step semantics (`dt`, state/power channel split), so a serving
/// pipeline can be rebuilt from the file without out-of-band configuration.
struct CheckpointMeta {
  int version = 3;            // 1 = legacy weights-only, 2 = no rollout meta
  std::string model_name;     // train::make_model name ("" when unknown)
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int size_hint = 0;          // model-zoo capacity knob
  bool has_normalizer = false;
  data::Normalizer normalizer;  // valid only when has_normalizer
  bool has_rollout = false;
  data::RolloutSpec rollout;    // valid only when has_rollout
};

/// Binary checkpoint IO.
///
/// v3 ("SAUFNOC3"): magic, meta (model name, channels, size hint,
/// optional normalizer statistics, optional rollout spec), count, then per
/// parameter (name, rank, dims..., float data). Little-endian, float32.
/// v2 ("SAUFNOC2"): as v3 but without the rollout section.
/// v1 ("SAUFNOC1"): magic, count, parameters — no meta.
///
/// `save_checkpoint` always writes v3; `load_checkpoint` reads all three
/// and returns the meta (defaulted, with version = 1, for legacy files).
void save_checkpoint(const Module& m, const std::string& path,
                     const CheckpointMeta& meta = {});
CheckpointMeta load_checkpoint(Module& m, const std::string& path,
                               bool strict = true);

/// Read only the meta header (cheap; does not touch parameter data).
CheckpointMeta read_checkpoint_meta(const std::string& path);

/// Legacy v1 writer, kept so the v1 compatibility path stays testable.
void save_checkpoint_v1(const Module& m, const std::string& path);

}  // namespace nn
}  // namespace saufno
