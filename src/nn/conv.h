#pragma once

#include "nn/init.h"
#include "nn/module.h"

namespace saufno {
namespace nn {

/// Standard 2-D convolution module over [B, Cin, H, W].
/// kernel/stride/pad are square; the U-Net uses 3x3 stride-1 pad-1 so the
/// spatial size is preserved at every scale.
class Conv2d : public Module {
 public:
  Conv2d(int64_t cin, int64_t cout, int64_t kernel, Rng& rng,
         int64_t stride = 1, int64_t pad = 0, bool bias = true);

  Var forward(const Var& x) override;

  int64_t out_channels() const { return cout_; }

 private:
  int64_t cin_, cout_, kernel_, stride_, pad_;
  Var weight_;  // [Cout, Cin, k, k]
  Var bias_;    // [Cout]
};

}  // namespace nn
}  // namespace saufno
