#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace saufno {

// ---------------------------------------------------------------------------
// Raw (non-differentiable) tensor ops. The autograd layer wraps these with
// backward rules; keeping the kernels separate lets the thermal solvers and
// the data pipeline use them without dragging the tape in.
// ---------------------------------------------------------------------------

/// Numpy-style broadcast of two shapes; throws if incompatible.
Shape broadcast_shape(const Shape& a, const Shape& b);

// Elementwise binary ops with broadcasting.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// Scalar variants.
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// Elementwise unary ops.
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
/// Exact GELU: x * Phi(x) with Phi the standard normal CDF (via erf).
Tensor gelu(const Tensor& a);
/// d/dx of exact GELU (needed by the autograd rule).
Tensor gelu_grad(const Tensor& a);
/// Apply an arbitrary scalar function (test/tooling convenience).
Tensor map(const Tensor& a, const std::function<float(float)>& f);

// Reductions.
float sum_all(const Tensor& a);
float max_all(const Tensor& a);
float min_all(const Tensor& a);
float mean_all(const Tensor& a);
/// Sum over the given dimension; optionally keep it (size 1).
Tensor sum_dim(const Tensor& a, int64_t dim, bool keepdim);
/// Reduce `a` (by summation) to `target` shape — the broadcast adjoint.
Tensor reduce_to(const Tensor& a, const Shape& target);

// Layout ops (all copy).
Tensor transpose2d(const Tensor& a);
/// General permutation of dimensions.
Tensor permute(const Tensor& a, const std::vector<int64_t>& perm);
/// Narrow along `dim`: elements [start, start+length).
Tensor slice(const Tensor& a, int64_t dim, int64_t start, int64_t length);
/// Concatenate along `dim`.
Tensor cat(const std::vector<Tensor>& ts, int64_t dim);
/// Zero-pad the last two dims (left/right/top/bottom).
Tensor pad2d(const Tensor& a, int64_t top, int64_t bottom, int64_t left,
             int64_t right);

// Linear algebra.
/// 2-D matmul [M,K] x [K,N] -> [M,N].
Tensor matmul(const Tensor& a, const Tensor& b);
/// Batched matmul [B,M,K] x [B,K,N] -> [B,M,N]; B may broadcast (1 vs B).
Tensor bmm(const Tensor& a, const Tensor& b);

/// Numerically-stable softmax along the last dimension.
Tensor softmax_lastdim(const Tensor& a);

/// Bilinear resize of the last two dims of a [..., H, W] tensor to (oh, ow)
/// using align_corners=true sampling (exact at the grid corners, which is
/// what the U-FNO decoder and GAR's fidelity lifting need).
Tensor resize_bilinear(const Tensor& a, int64_t oh, int64_t ow);
/// Adjoint of resize_bilinear (scatter of output-gradient to input grid).
Tensor resize_bilinear_adjoint(const Tensor& grad_out, int64_t ih, int64_t iw);

// ---------------------------------------------------------------------------
// Out-parameter variants for preallocated destinations. The allocating forms
// above are thin wrappers over these, so the plan executor (src/plan/),
// which writes into arena-reservation slots, runs the IDENTICAL loop as the
// interpreter — the foundation of the bit-identical plan/interpreter
// contract. `out` must already have the exact result shape; contents may be
// uninitialized (pad2d_into zero-fills the destination itself).
// ---------------------------------------------------------------------------

void add_into(const Tensor& a, const Tensor& b, Tensor& out);
void sub_into(const Tensor& a, const Tensor& b, Tensor& out);
void mul_into(const Tensor& a, const Tensor& b, Tensor& out);
void div_into(const Tensor& a, const Tensor& b, Tensor& out);
void add_scalar_into(const Tensor& a, float s, Tensor& out);
void mul_scalar_into(const Tensor& a, float s, Tensor& out);
void relu_into(const Tensor& a, Tensor& out);
void gelu_into(const Tensor& a, Tensor& out);
void tanh_into(const Tensor& a, Tensor& out);
void sigmoid_into(const Tensor& a, Tensor& out);
void exp_into(const Tensor& a, Tensor& out);
void log_into(const Tensor& a, Tensor& out);
void sqrt_into(const Tensor& a, Tensor& out);
void abs_into(const Tensor& a, Tensor& out);
void permute_into(const Tensor& a, const std::vector<int64_t>& perm,
                  Tensor& out);
void slice_into(const Tensor& a, int64_t dim, int64_t start, int64_t length,
                Tensor& out);
void cat_into(const std::vector<Tensor>& ts, int64_t dim, Tensor& out);
void pad2d_into(const Tensor& a, int64_t top, int64_t bottom, int64_t left,
                int64_t right, Tensor& out);
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);
void bmm_into(const Tensor& a, const Tensor& b, Tensor& out);
void softmax_lastdim_into(const Tensor& a, Tensor& out);
void sum_dim_into(const Tensor& a, int64_t dim, bool keepdim, Tensor& out);
void resize_bilinear_into(const Tensor& a, int64_t oh, int64_t ow,
                          Tensor& out);

/// Activation codes shared between the plan IR (plan::Act) and the fused
/// kernels: 0 none, 1 relu, 2 gelu, 3 tanh. The expressions MUST stay
/// bit-identical to the unary kernels above — the plan executor relies on
/// fused act(x) matching a separate activation pass exactly.
float act_apply(int act, float v);

/// Fused out = act(a + b) (c == nullptr) or out = act((a + b) + c).
/// The 2-input form broadcasts like add(); the 3-input form requires equal
/// shapes. Per element the arithmetic matches add-then-activation exactly
/// (same expressions, same order), so fusing never changes bits.
void fused_add_act_into(const Tensor& a, const Tensor& b, const Tensor* c,
                        int act, Tensor& out);
/// Fused out = softmax_lastdim(a * scale): the scaled row is materialized
/// into `out` first and the softmax then runs the identical max/exp/sum/
/// scale sequence as softmax_lastdim_into — bit-identical to mul_scalar
/// followed by softmax.
void scaled_softmax_lastdim_into(const Tensor& a, float scale, Tensor& out);

}  // namespace saufno
