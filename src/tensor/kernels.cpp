#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/fault.h"
#include "obs/kernel_profile.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"
#include "tensor/simd.h"

namespace saufno {
namespace {

// Blocked-gemm geometry. MR x NR is the register tile: 6 rows x 16 columns
// is 12 fp32 accumulator vectors plus 2 B vectors plus 1 broadcast, which
// exactly fills the 16 YMM registers of the AVX2 path (the portable body
// uses the same shape so both paths tile the matrix identically). KC is the
// K-block: one packed B panel slice (KC*NR floats = 32 KB) stays L2-resident
// while every row panel of a chunk streams over it.
constexpr int64_t kMR = 6;
constexpr int64_t kNR = 16;
constexpr int64_t kKC = 512;

// Bench/test hook: route gemm() through the seed kernel so old-vs-new can
// be measured end-to-end through unmodified model code.
std::atomic<bool> g_force_seed_reference{false};

// --- microkernel: tile[MR][NR] = Ap(kc x MR) * Bp(kc x NR) -----------------
//
// Ap is kk-major with MR consecutive rows per k step; Bp is kk-major with NR
// consecutive columns. Per output element the additions form a single
// mul-add chain in kk order, independent of where the tile sits in the
// matrix, of zero-padding in dead lanes, and of which thread runs it — the
// load-bearing fact behind bit-identical C for every SAUFNO_NUM_THREADS.
// There is deliberately NO zero-skip branch: x*0 participates in the chain,
// so NaN/Inf in either operand propagates exactly as IEEE demands, and the
// inner loop stays branch-free for the vectorizer.

void micro_kernel_scalar(int64_t kc, const float* ap, const float* bp,
                         float* tile) {
  float acc[kMR * kNR] = {};
  for (int64_t kk = 0; kk < kc; ++kk, ap += kMR, bp += kNR) {
    for (int64_t r = 0; r < kMR; ++r) {
      const float a = ap[r];
      SAUFNO_IVDEP
      for (int64_t j = 0; j < kNR; ++j) acc[r * kNR + j] += a * bp[j];
    }
  }
  std::memcpy(tile, acc, sizeof(acc));
}

#if SAUFNO_X86_DISPATCH
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(int64_t kc,
                                                           const float* ap,
                                                           const float* bp,
                                                           float* tile) {
  __m256 acc[kMR][2];
  for (int64_t r = 0; r < kMR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < kc; ++kk, ap += kMR, bp += kNR) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    for (int64_t r = 0; r < kMR; ++r) {
      const __m256 a = _mm256_broadcast_ss(ap + r);
      acc[r][0] = _mm256_fmadd_ps(a, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(a, b1, acc[r][1]);
    }
  }
  for (int64_t r = 0; r < kMR; ++r) {
    _mm256_storeu_ps(tile + r * kNR, acc[r][0]);
    _mm256_storeu_ps(tile + r * kNR + 8, acc[r][1]);
  }
}
#endif

using MicroKernelFn = void (*)(int64_t, const float*, const float*, float*);

MicroKernelFn pick_micro_kernel() {
#if SAUFNO_X86_DISPATCH
  if (simd::level() == simd::Level::kAvx2) return micro_kernel_avx2;
#endif
  return micro_kernel_scalar;
}

// Pack B[k x n] into NR-wide column panels, layout [panel][kk][NR], dead
// columns zero-filled. Pure data movement, so the parallel split over
// panels cannot perturb numerics.
void pack_b(const float* b, float* bp, int64_t k, int64_t n) {
  const int64_t npanels = (n + kNR - 1) / kNR;
  runtime::parallel_for(0, npanels, 1, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t j0 = p * kNR;
      const int64_t jw = std::min(kNR, n - j0);
      float* dst = bp + p * k * kNR;
      const float* src = b + j0;
      for (int64_t kk = 0; kk < k; ++kk, dst += kNR, src += n) {
        for (int64_t j = 0; j < jw; ++j) dst[j] = src[j];
        for (int64_t j = jw; j < kNR; ++j) dst[j] = 0.f;
      }
    }
  });
}

// Pack rows [i0, i0+mr) of A into one MR-tall panel, layout [kk][MR], dead
// rows zero-filled.
void pack_a_panel(const float* a, float* panel, int64_t i0, int64_t mr,
                  int64_t k) {
  for (int64_t r = 0; r < mr; ++r) {
    const float* src = a + (i0 + r) * k;
    float* dst = panel + r;
    for (int64_t kk = 0; kk < k; ++kk) dst[kk * kMR] = src[kk];
  }
  for (int64_t r = mr; r < kMR; ++r) {
    float* dst = panel + r;
    for (int64_t kk = 0; kk < k; ++kk) dst[kk * kMR] = 0.f;
  }
}

void gemm_blocked(const float* a, const float* b, float* c, int64_t m,
                  int64_t n, int64_t k, bool accumulate) {
  const MicroKernelFn micro = pick_micro_kernel();
  const int64_t npanels = (n + kNR - 1) / kNR;

  // B is packed once into workspace-arena scratch and then read-only; every
  // row chunk below shares it.
  runtime::Scratch<float> bpack(static_cast<std::size_t>(npanels * k * kNR));
  pack_b(b, bpack.data(), k, n);

  // Row-chunk grain: MR-aligned, sized so a chunk's packed A slab stays
  // ~128 KB, but small enough that short-m gemms (conv's cout x plane) still
  // split across threads. Grain depends only on the shape — never on the
  // thread count — so chunk boundaries (and C) are reproducible.
  int64_t grain = 32768 / std::max<int64_t>(1, k);
  grain = std::min(grain, (m + 7) / 8);
  grain = std::max<int64_t>(kMR, (grain / kMR) * kMR);

  runtime::parallel_for(0, m, grain, [&](int64_t r0, int64_t r1) {
    const int64_t rows = r1 - r0;
    const int64_t rpanels = (rows + kMR - 1) / kMR;
    runtime::Scratch<float> apack(
        static_cast<std::size_t>(rpanels * k * kMR));
    for (int64_t rp = 0; rp < rpanels; ++rp) {
      const int64_t i0 = r0 + rp * kMR;
      pack_a_panel(a, apack.data() + rp * k * kMR, i0,
                   std::min(kMR, r1 - i0), k);
    }
    alignas(32) float tile[kMR * kNR];
    // K-blocked accumulation: partial tiles are folded into C in fixed pc
    // order, so the per-element rounding sequence is the same for every
    // chunking and thread count.
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const bool assign = (pc == 0) && !accumulate;
      for (int64_t p = 0; p < npanels; ++p) {
        const float* bpanel = bpack.data() + (p * k + pc) * kNR;
        const int64_t j0 = p * kNR;
        const int64_t jw = std::min(kNR, n - j0);
        for (int64_t rp = 0; rp < rpanels; ++rp) {
          micro(kc, apack.data() + (rp * k + pc) * kMR, bpanel, tile);
          const int64_t i0 = r0 + rp * kMR;
          const int64_t mr = std::min(kMR, r1 - i0);
          for (int64_t r = 0; r < mr; ++r) {
            float* crow = c + (i0 + r) * n + j0;
            const float* trow = tile + r * kNR;
            if (assign) {
              for (int64_t j = 0; j < jw; ++j) crow[j] = trow[j];
            } else {
              SAUFNO_IVDEP
              for (int64_t j = 0; j < jw; ++j) crow[j] += trow[j];
            }
          }
        }
      }
    }
  });
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool accumulate) {
  SAUFNO_FAULT_POINT("gemm");
  // SAUFNO_PROFILE_KERNELS: time every gemm into the registry (and the
  // trace when one is live). Off by default — a relaxed load and a branch.
  static obs::Histogram& prof_hist = obs::histogram("kernel.gemm_us");
  obs::KernelTimer prof_timer(prof_hist, "kernel.gemm");
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Empty contraction: C (+)= 0.
    if (!accumulate) {
      std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m * n));
    }
    return;
  }
  if (g_force_seed_reference.load(std::memory_order_relaxed)) {
    gemm_seed_reference(a, b, c, m, n, k, accumulate);
    return;
  }
  gemm_blocked(a, b, c, m, n, k, accumulate);
}

void gemm_seed_reference(const float* a, const float* b, float* c, int64_t m,
                         int64_t n, int64_t k, bool accumulate) {
  const int64_t row_cost = std::max<int64_t>(1, n * k);
  const int64_t grain = std::max<int64_t>(1, 32768 / row_cost);
  runtime::parallel_for(0, m, grain, [&](int64_t r0, int64_t r1) {
    if (!accumulate) {
      std::memset(c + r0 * n, 0,
                  sizeof(float) * static_cast<std::size_t>((r1 - r0) * n));
    }
    for (int64_t i = r0; i < r1; ++i) {
      float* crow = c + i * n;
      const float* arow = a + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        // The seed's data-dependent zero-skip, preserved verbatim HERE ONLY
        // so benches/tests can measure against the exact old behavior. It
        // silently drops NaN/Inf columns of B (0 * NaN must be NaN) — the
        // bug the serving kernel above fixes.
        if (aik == 0.f) continue;
        const float* brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  });
}

void gemm_force_seed_reference(bool on) {
  g_force_seed_reference.store(on, std::memory_order_relaxed);
}

void im2col(const float* img, float* cols, int64_t c, int64_t h, int64_t w,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const int64_t plane = oh * ow;
  // cols layout: [(ci*kh*kw + ki*kw + kj), (oi*ow + oj)]
  // Channels write disjoint blocks of `cols`, so the channel loop is the
  // natural deterministic parallel axis.
  runtime::parallel_for(0, c, 1, [&](int64_t c0, int64_t c1) {
  for (int64_t ci = c0; ci < c1; ++ci) {
    const float* src = img + ci * h * w;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        float* dst = cols + ((ci * kh + ki) * kw + kj) * plane;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * stride + ki - pad;
          if (ii < 0 || ii >= h) {
            std::memset(dst + oi * ow, 0,
                        sizeof(float) * static_cast<std::size_t>(ow));
            continue;
          }
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * stride + kj - pad;
            dst[oi * ow + oj] =
                (jj >= 0 && jj < w) ? src[ii * w + jj] : 0.f;
          }
        }
      }
    }
  }
  });
}

void col2im(const float* cols, float* img, int64_t c, int64_t h, int64_t w,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const int64_t plane = oh * ow;
  // Scatter-adds from different (ki, kj) taps overlap within a channel but
  // never across channels, so channels are the safe parallel axis.
  runtime::parallel_for(0, c, 1, [&](int64_t c0, int64_t c1) {
  for (int64_t ci = c0; ci < c1; ++ci) {
    float* dst = img + ci * h * w;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        const float* src = cols + ((ci * kh + ki) * kw + kj) * plane;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * stride + ki - pad;
          if (ii < 0 || ii >= h) continue;
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * stride + kj - pad;
            if (jj >= 0 && jj < w) dst[ii * w + jj] += src[oi * ow + oj];
          }
        }
      }
    }
  }
  });
}

void maxpool2d(const float* img, float* out, int64_t* argmax, int64_t c,
               int64_t h, int64_t w, int64_t kernel, int64_t stride) {
  const int64_t oh = conv_out_size(h, kernel, stride, /*pad=*/0);
  const int64_t ow = conv_out_size(w, kernel, stride, /*pad=*/0);
  runtime::parallel_for(0, c, 1, [&](int64_t c0, int64_t c1) {
  for (int64_t ci = c0; ci < c1; ++ci) {
    const float* src = img + ci * h * w;
    float* dst = out + ci * oh * ow;
    int64_t* arg = argmax + ci * oh * ow;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        const int64_t i0 = oi * stride, j0 = oj * stride;
        float best = src[i0 * w + j0];
        int64_t best_off = i0 * w + j0;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          for (int64_t kj = 0; kj < kernel; ++kj) {
            const int64_t off = (i0 + ki) * w + (j0 + kj);
            if (src[off] > best) {
              best = src[off];
              best_off = off;
            }
          }
        }
        dst[oi * ow + oj] = best;
        arg[oi * ow + oj] = best_off;
      }
    }
  }
  });
}

void bilinear_resize_kernel(const float* src, float* dst, int64_t batch,
                            int64_t ih, int64_t iw, int64_t oh, int64_t ow,
                            bool adjoint) {
  // align_corners=true mapping: out index o maps to in coordinate
  // o * (in-1)/(out-1); degenerate 1-pixel axes map to 0.
  const double sy = oh > 1 ? static_cast<double>(ih - 1) / (oh - 1) : 0.0;
  const double sx = ow > 1 ? static_cast<double>(iw - 1) / (ow - 1) : 0.0;
  // Each plane (forward) / gradient plane (adjoint) is written by exactly
  // one chunk; the adjoint's scatter-adds stay within its own plane.
  const int64_t grain = std::max<int64_t>(1, 4096 / std::max<int64_t>(1, oh * ow));
  runtime::parallel_for(0, batch, grain, [&](int64_t b0, int64_t b1) {
  for (int64_t b = b0; b < b1; ++b) {
    const float* in_plane = src + b * (adjoint ? oh * ow : ih * iw);
    float* out_plane = dst + b * (adjoint ? ih * iw : oh * ow);
    for (int64_t oi = 0; oi < oh; ++oi) {
      const double fy = oi * sy;
      const int64_t y0 = static_cast<int64_t>(fy);
      const int64_t y1 = std::min(y0 + 1, ih - 1);
      const float wy1 = static_cast<float>(fy - y0);
      const float wy0 = 1.f - wy1;
      for (int64_t oj = 0; oj < ow; ++oj) {
        const double fx = oj * sx;
        const int64_t x0 = static_cast<int64_t>(fx);
        const int64_t x1 = std::min(x0 + 1, iw - 1);
        const float wx1 = static_cast<float>(fx - x0);
        const float wx0 = 1.f - wx1;
        if (!adjoint) {
          out_plane[oi * ow + oj] = wy0 * wx0 * in_plane[y0 * iw + x0] +
                                    wy0 * wx1 * in_plane[y0 * iw + x1] +
                                    wy1 * wx0 * in_plane[y1 * iw + x0] +
                                    wy1 * wx1 * in_plane[y1 * iw + x1];
        } else {
          const float g = in_plane[oi * ow + oj];
          out_plane[y0 * iw + x0] += wy0 * wx0 * g;
          out_plane[y0 * iw + x1] += wy0 * wx1 * g;
          out_plane[y1 * iw + x0] += wy1 * wx0 * g;
          out_plane[y1 * iw + x1] += wy1 * wx1 * g;
        }
      }
    }
  }
  });
}

}  // namespace saufno
