#include "tensor/kernels.h"

#include <algorithm>
#include <cstring>

#include "runtime/parallel_for.h"

namespace saufno {

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool accumulate) {
  // Row-block partitioning: every output row is produced by exactly one
  // chunk with the same sequential i-k-j body, so any thread count yields
  // bit-identical C. Grain targets ~32k mul-adds per chunk so small gemms
  // do not pay scheduling overhead.
  const int64_t row_cost = std::max<int64_t>(1, n * k);
  const int64_t grain = std::max<int64_t>(1, 32768 / row_cost);
  runtime::parallel_for(0, m, grain, [&](int64_t r0, int64_t r1) {
    if (!accumulate) {
      std::memset(c + r0 * n, 0,
                  sizeof(float) * static_cast<std::size_t>((r1 - r0) * n));
    }
    // i-k-j order: c_row accumulates A[i,k] * B[k, :]; the inner loop is a
    // contiguous saxpy that GCC auto-vectorizes.
    for (int64_t i = r0; i < r1; ++i) {
      float* crow = c + i * n;
      const float* arow = a + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.f) continue;  // power maps are block-sparse; worth a branch
        const float* brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  });
}

void im2col(const float* img, float* cols, int64_t c, int64_t h, int64_t w,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const int64_t plane = oh * ow;
  // cols layout: [(ci*kh*kw + ki*kw + kj), (oi*ow + oj)]
  // Channels write disjoint blocks of `cols`, so the channel loop is the
  // natural deterministic parallel axis.
  runtime::parallel_for(0, c, 1, [&](int64_t c0, int64_t c1) {
  for (int64_t ci = c0; ci < c1; ++ci) {
    const float* src = img + ci * h * w;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        float* dst = cols + ((ci * kh + ki) * kw + kj) * plane;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * stride + ki - pad;
          if (ii < 0 || ii >= h) {
            std::memset(dst + oi * ow, 0,
                        sizeof(float) * static_cast<std::size_t>(ow));
            continue;
          }
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * stride + kj - pad;
            dst[oi * ow + oj] =
                (jj >= 0 && jj < w) ? src[ii * w + jj] : 0.f;
          }
        }
      }
    }
  }
  });
}

void col2im(const float* cols, float* img, int64_t c, int64_t h, int64_t w,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const int64_t plane = oh * ow;
  // Scatter-adds from different (ki, kj) taps overlap within a channel but
  // never across channels, so channels are the safe parallel axis.
  runtime::parallel_for(0, c, 1, [&](int64_t c0, int64_t c1) {
  for (int64_t ci = c0; ci < c1; ++ci) {
    float* dst = img + ci * h * w;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        const float* src = cols + ((ci * kh + ki) * kw + kj) * plane;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * stride + ki - pad;
          if (ii < 0 || ii >= h) continue;
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * stride + kj - pad;
            if (jj >= 0 && jj < w) dst[ii * w + jj] += src[oi * ow + oj];
          }
        }
      }
    }
  }
  });
}

void maxpool2d(const float* img, float* out, int64_t* argmax, int64_t c,
               int64_t h, int64_t w, int64_t kernel, int64_t stride) {
  const int64_t oh = conv_out_size(h, kernel, stride, /*pad=*/0);
  const int64_t ow = conv_out_size(w, kernel, stride, /*pad=*/0);
  runtime::parallel_for(0, c, 1, [&](int64_t c0, int64_t c1) {
  for (int64_t ci = c0; ci < c1; ++ci) {
    const float* src = img + ci * h * w;
    float* dst = out + ci * oh * ow;
    int64_t* arg = argmax + ci * oh * ow;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        const int64_t i0 = oi * stride, j0 = oj * stride;
        float best = src[i0 * w + j0];
        int64_t best_off = i0 * w + j0;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          for (int64_t kj = 0; kj < kernel; ++kj) {
            const int64_t off = (i0 + ki) * w + (j0 + kj);
            if (src[off] > best) {
              best = src[off];
              best_off = off;
            }
          }
        }
        dst[oi * ow + oj] = best;
        arg[oi * ow + oj] = best_off;
      }
    }
  }
  });
}

void bilinear_resize_kernel(const float* src, float* dst, int64_t batch,
                            int64_t ih, int64_t iw, int64_t oh, int64_t ow,
                            bool adjoint) {
  // align_corners=true mapping: out index o maps to in coordinate
  // o * (in-1)/(out-1); degenerate 1-pixel axes map to 0.
  const double sy = oh > 1 ? static_cast<double>(ih - 1) / (oh - 1) : 0.0;
  const double sx = ow > 1 ? static_cast<double>(iw - 1) / (ow - 1) : 0.0;
  // Each plane (forward) / gradient plane (adjoint) is written by exactly
  // one chunk; the adjoint's scatter-adds stay within its own plane.
  const int64_t grain = std::max<int64_t>(1, 4096 / std::max<int64_t>(1, oh * ow));
  runtime::parallel_for(0, batch, grain, [&](int64_t b0, int64_t b1) {
  for (int64_t b = b0; b < b1; ++b) {
    const float* in_plane = src + b * (adjoint ? oh * ow : ih * iw);
    float* out_plane = dst + b * (adjoint ? ih * iw : oh * ow);
    for (int64_t oi = 0; oi < oh; ++oi) {
      const double fy = oi * sy;
      const int64_t y0 = static_cast<int64_t>(fy);
      const int64_t y1 = std::min(y0 + 1, ih - 1);
      const float wy1 = static_cast<float>(fy - y0);
      const float wy0 = 1.f - wy1;
      for (int64_t oj = 0; oj < ow; ++oj) {
        const double fx = oj * sx;
        const int64_t x0 = static_cast<int64_t>(fx);
        const int64_t x1 = std::min(x0 + 1, iw - 1);
        const float wx1 = static_cast<float>(fx - x0);
        const float wx0 = 1.f - wx1;
        if (!adjoint) {
          out_plane[oi * ow + oj] = wy0 * wx0 * in_plane[y0 * iw + x0] +
                                    wy0 * wx1 * in_plane[y0 * iw + x1] +
                                    wy1 * wx0 * in_plane[y1 * iw + x0] +
                                    wy1 * wx1 * in_plane[y1 * iw + x1];
        } else {
          const float g = in_plane[oi * ow + oj];
          out_plane[y0 * iw + x0] += wy0 * wx0 * g;
          out_plane[y0 * iw + x1] += wy0 * wx1 * g;
          out_plane[y1 * iw + x0] += wy1 * wx0 * g;
          out_plane[y1 * iw + x1] += wy1 * wx1 * g;
        }
      }
    }
  }
  });
}

}  // namespace saufno
