#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "runtime/parallel_for.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"

namespace saufno {
namespace {

/// Grain for flat elementwise loops: big enough that chunk dispatch is
/// noise, small enough that the smoke-scale tensors (tens of thousands of
/// elements) still split across threads.
constexpr int64_t kElemwiseGrain = 8192;

/// Iterate a broadcasted binary op into a preallocated destination. Shapes
/// are right-aligned; a dim of 1 broadcasts by using stride 0, exactly as
/// in numpy. This is the single implementation behind both the allocating
/// public ops and the plan executor's *_into entry points, which is what
/// makes compiled plans bit-identical to the interpreter.
template <typename F>
void broadcast_binary_into_t(const Tensor& a, const Tensor& b, Tensor& out,
                             F f) {
  SAUFNO_CHECK(out.shape() == broadcast_shape(a.shape(), b.shape()),
               "binary op destination shape mismatch: " +
                   shape_str(out.shape()));
  const Shape& out_shape = out.shape();
  const int64_t rank = static_cast<int64_t>(out_shape.size());

  // Effective strides (0 where broadcast) for both inputs, right-aligned.
  std::vector<int64_t> sa(rank, 0), sb(rank, 0);
  {
    const auto ca = contiguous_strides(a.shape());
    const auto cb = contiguous_strides(b.shape());
    const int64_t ra = a.dim(), rb = b.dim();
    for (int64_t i = 0; i < ra; ++i) {
      if (a.shape()[i] != 1) sa[rank - ra + i] = ca[i];
    }
    for (int64_t i = 0; i < rb; ++i) {
      if (b.shape()[i] != 1) sb[rank - rb + i] = cb[i];
    }
  }

  // Fast path: identical shapes -> single flat loop, split across threads
  // (each output index is written by exactly one chunk). The ivdep hint is
  // what lets -O3 vectorize through the three unproven-distinct pointers.
  if (a.shape() == b.shape()) {
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = out.numel();
    runtime::parallel_for(0, n, kElemwiseGrain, [&](int64_t i0, int64_t i1) {
      SAUFNO_IVDEP
      for (int64_t i = i0; i < i1; ++i) po[i] = f(pa[i], pb[i]);
    });
    return;
  }

  // General path: odometer over the output index space.
  std::vector<int64_t> idx(rank, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  int64_t oa = 0, ob = 0;
  for (int64_t lin = 0; lin < n; ++lin) {
    po[lin] = f(pa[oa], pb[ob]);
    // Increment odometer from the innermost dim.
    for (int64_t d = rank - 1; d >= 0; --d) {
      ++idx[d];
      oa += sa[d];
      ob += sb[d];
      if (idx[d] < out_shape[d]) break;
      idx[d] = 0;
      oa -= sa[d] * out_shape[d];
      ob -= sb[d] * out_shape[d];
    }
  }
}

template <typename F>
Tensor broadcast_binary(const Tensor& a, const Tensor& b, F f) {
  Tensor out(broadcast_shape(a.shape(), b.shape()));
  broadcast_binary_into_t(a, b, out, f);
  return out;
}

template <typename F>
void unary_into_t(const Tensor& a, Tensor& out, F f) {
  // Elementwise, so only the element count has to agree: the plan executor
  // may hand us a reshape-alias destination whose dims differ from `a`'s.
  SAUFNO_CHECK(out.numel() == a.numel(),
               "unary op destination numel mismatch");
  const float* p = a.data();
  float* q = out.data();
  const int64_t n = a.numel();
  runtime::parallel_for(0, n, kElemwiseGrain, [&](int64_t i0, int64_t i1) {
    SAUFNO_IVDEP
    for (int64_t i = i0; i < i1; ++i) q[i] = f(p[i]);
  });
}

template <typename F>
Tensor unary(const Tensor& a, F f) {
  Tensor out(a.shape());
  unary_into_t(a, out, f);
  return out;
}

}  // namespace

Shape broadcast_shape(const Shape& a, const Shape& b) {
  const std::size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    SAUFNO_CHECK(da == db || da == 1 || db == 1,
                 "cannot broadcast " + shape_str(a) + " with " + shape_str(b));
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x / y; });
}

void add_into(const Tensor& a, const Tensor& b, Tensor& out) {
  broadcast_binary_into_t(a, b, out, [](float x, float y) { return x + y; });
}
void sub_into(const Tensor& a, const Tensor& b, Tensor& out) {
  broadcast_binary_into_t(a, b, out, [](float x, float y) { return x - y; });
}
void mul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  broadcast_binary_into_t(a, b, out, [](float x, float y) { return x * y; });
}
void div_into(const Tensor& a, const Tensor& b, Tensor& out) {
  broadcast_binary_into_t(a, b, out, [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}

void add_scalar_into(const Tensor& a, float s, Tensor& out) {
  unary_into_t(a, out, [s](float x) { return x + s; });
}
void mul_scalar_into(const Tensor& a, float s, Tensor& out) {
  unary_into_t(a, out, [s](float x) { return x * s; });
}

namespace {

/// Abramowitz & Stegun 7.1.26 rational erf approximation, |err| <= 1.5e-7
/// absolute — inside the golden 1e-6 gates. Built on simd::exp1 so the
/// whole activation stack shares ONE exp implementation: a fused kernel's
/// per-element call and a bulk vexp sweep produce the same bits.
inline float erf_poly(float z) {
  const float az = std::fabs(z);
  const float t = 1.f / (1.f + 0.3275911f * az);
  float y = 1.061405429f;
  y = y * t - 1.453152027f;
  y = y * t + 1.421413741f;
  y = y * t - 0.284496736f;
  y = y * t + 0.254829592f;
  y = 1.f - y * t * simd::exp1(-az * az);
  return z < 0.f ? -y : y;
}

/// Exact GELU x * Phi(x) via erf_poly. Single definition shared by gelu,
/// gelu_into, and act_apply code 2 — the fused kernels depend on all three
/// being bit-identical.
inline float gelu_core(float x) {
  return 0.5f * x * (1.f + erf_poly(x * 0.70710678f));
}

}  // namespace

Tensor neg(const Tensor& a) {
  return unary(a, [](float x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unary(a, [](float x) { return simd::exp1(x); });
}
Tensor log(const Tensor& a) {
  return unary(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}
Tensor abs(const Tensor& a) {
  return unary(a, [](float x) { return std::fabs(x); });
}
Tensor tanh(const Tensor& a) {
  return unary(a, [](float x) { return std::tanh(x); });
}
Tensor relu(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.f ? x : 0.f; });
}
Tensor sigmoid(const Tensor& a) {
  return unary(a, [](float x) { return 1.f / (1.f + simd::exp1(-x)); });
}

Tensor gelu(const Tensor& a) {
  // Exact GELU (the paper's sigma is GELU): x * Phi(x).
  return unary(a, [](float x) { return gelu_core(x); });
}

void exp_into(const Tensor& a, Tensor& out) {
  unary_into_t(a, out, [](float x) { return simd::exp1(x); });
}
void log_into(const Tensor& a, Tensor& out) {
  unary_into_t(a, out, [](float x) { return std::log(x); });
}
void sqrt_into(const Tensor& a, Tensor& out) {
  unary_into_t(a, out, [](float x) { return std::sqrt(x); });
}
void abs_into(const Tensor& a, Tensor& out) {
  unary_into_t(a, out, [](float x) { return std::fabs(x); });
}
void tanh_into(const Tensor& a, Tensor& out) {
  unary_into_t(a, out, [](float x) { return std::tanh(x); });
}
void relu_into(const Tensor& a, Tensor& out) {
  unary_into_t(a, out, [](float x) { return x > 0.f ? x : 0.f; });
}
void sigmoid_into(const Tensor& a, Tensor& out) {
  unary_into_t(a, out, [](float x) { return 1.f / (1.f + simd::exp1(-x)); });
}
void gelu_into(const Tensor& a, Tensor& out) {
  unary_into_t(a, out, [](float x) { return gelu_core(x); });
}

Tensor gelu_grad(const Tensor& a) {
  // d/dx [x Phi(x)] = Phi(x) + x phi(x), on the same erf/exp approximations
  // as the forward so gradient checks see a consistent function.
  return unary(a, [](float x) {
    const float phi_cdf = 0.5f * (1.f + erf_poly(x * 0.70710678f));
    const float phi_pdf = 0.39894228f * simd::exp1(-0.5f * x * x);
    return phi_cdf + x * phi_pdf;
  });
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  return unary(a, [&f](float x) { return f(x); });
}

float act_apply(int act, float v) {
  // Codes match plan::Act. The expressions are copies of the unary kernels
  // above; the fused kernels depend on that for bit-identity, so any change
  // here must change the unary forms in lockstep (and vice versa).
  switch (act) {
    case 1:
      return v > 0.f ? v : 0.f;
    case 2:
      return gelu_core(v);
    case 3:
      return std::tanh(v);
    default:
      return v;
  }
}

void fused_add_act_into(const Tensor& a, const Tensor& b, const Tensor* c,
                        int act, Tensor& out) {
  if (c == nullptr) {
    // Two-input form broadcasts (bias add); per element the compiler sees
    // act(x + y) with the same add and the same activation expression the
    // separate ops would run, in the same order.
    broadcast_binary_into_t(a, b, out, [act](float x, float y) {
      return act_apply(act, x + y);
    });
    return;
  }
  // Three-input form is same-shape only (the fuser enforces this): the
  // grouping (a + b) + c mirrors the traced nesting of the two adds.
  SAUFNO_CHECK(a.shape() == b.shape() && a.shape() == c->shape() &&
                   out.shape() == a.shape(),
               "fused_add_act: 3-input form requires equal shapes");
  const float* pa = a.data();
  const float* pb = b.data();
  const float* pc = c->data();
  float* po = out.data();
  const int64_t n = out.numel();
  runtime::parallel_for(0, n, kElemwiseGrain, [&](int64_t i0, int64_t i1) {
    SAUFNO_IVDEP
    for (int64_t i = i0; i < i1; ++i) {
      po[i] = act_apply(act, (pa[i] + pb[i]) + pc[i]);
    }
  });
}

float sum_all(const Tensor& a) {
  // Double accumulation: datasets hold thousands of ~300 K temperatures and
  // a naive float accumulator loses digits that the metrics actually need.
  // One double partial per fixed-grain chunk, combined in chunk order, so
  // the sum is identical for every SAUFNO_NUM_THREADS.
  const float* p = a.data();
  const double s = runtime::parallel_sum(
      a.numel(), kElemwiseGrain, [&](int64_t i0, int64_t i1) {
        double acc = 0.0;
        for (int64_t i = i0; i < i1; ++i) acc += p[i];
        return acc;
      });
  return static_cast<float>(s);
}

float max_all(const Tensor& a) {
  SAUFNO_CHECK(a.numel() > 0, "max_all of empty tensor");
  const float* p = a.data();
  float m = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::max(m, p[i]);
  return m;
}

float min_all(const Tensor& a) {
  SAUFNO_CHECK(a.numel() > 0, "min_all of empty tensor");
  const float* p = a.data();
  float m = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::min(m, p[i]);
  return m;
}

float mean_all(const Tensor& a) {
  SAUFNO_CHECK(a.numel() > 0, "mean_all of empty tensor");
  return sum_all(a) / static_cast<float>(a.numel());
}

void sum_dim_into(const Tensor& a, int64_t dim, bool keepdim, Tensor& out) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  SAUFNO_CHECK(dim >= 0 && dim < rank, "sum_dim: bad dim");
  (void)keepdim;  // affects only the destination shape, fixed by the caller
  // Collapse to [outer, reduce, inner].
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= a.shape()[i];
  for (int64_t i = dim + 1; i < rank; ++i) inner *= a.shape()[i];
  const int64_t red = a.shape()[dim];
  SAUFNO_CHECK(out.numel() == outer * inner,
               "sum_dim destination numel mismatch");

  const float* p = a.data();
  float* q = out.data();
  // Parallel over output elements: each is a fully sequential reduction, so
  // the result does not depend on the thread count.
  const int64_t grain =
      std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, red));
  runtime::parallel_for(
      0, outer * inner, grain, [&](int64_t t0, int64_t t1) {
        for (int64_t t = t0; t < t1; ++t) {
          const int64_t o = t / inner, in = t % inner;
          double s = 0.0;
          for (int64_t r = 0; r < red; ++r) {
            s += p[(o * red + r) * inner + in];
          }
          q[o * inner + in] = static_cast<float>(s);
        }
      });
}

Tensor sum_dim(const Tensor& a, int64_t dim, bool keepdim) {
  const int64_t rank = a.dim();
  int64_t d = dim < 0 ? dim + rank : dim;
  SAUFNO_CHECK(d >= 0 && d < rank, "sum_dim: bad dim");
  Shape out_shape;
  for (int64_t i = 0; i < rank; ++i) {
    if (i == d) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.shape()[i]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out(out_shape);
  sum_dim_into(a, d, keepdim, out);
  return out;
}

Tensor reduce_to(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  Tensor cur = a;
  // 1. Sum away leading dims that the target lacks.
  while (cur.dim() > static_cast<int64_t>(target.size())) {
    cur = sum_dim(cur, 0, /*keepdim=*/false);
  }
  // 2. Sum (keepdim) dims where target has size 1 but cur does not.
  for (int64_t i = 0; i < cur.dim(); ++i) {
    if (target[static_cast<std::size_t>(i)] == 1 && cur.shape()[i] != 1) {
      cur = sum_dim(cur, i, /*keepdim=*/true);
    }
  }
  SAUFNO_CHECK(cur.shape() == target,
               "reduce_to: cannot reduce " + shape_str(a.shape()) + " to " +
                   shape_str(target));
  return cur;
}

Tensor transpose2d(const Tensor& a) {
  SAUFNO_CHECK(a.dim() == 2, "transpose2d requires a 2-D tensor");
  const int64_t m = a.shape()[0], n = a.shape()[1];
  Tensor out({n, m});
  const float* p = a.data();
  float* q = out.data();
  const int64_t grain =
      std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, n));
  runtime::parallel_for(0, m, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      for (int64_t j = 0; j < n; ++j) q[j * m + i] = p[i * n + j];
    }
  });
  return out;
}

void permute_into(const Tensor& a, const std::vector<int64_t>& perm,
                  Tensor& out) {
  const int64_t rank = a.dim();
  SAUFNO_CHECK(static_cast<int64_t>(perm.size()) == rank,
               "permute rank mismatch");
  Shape out_shape(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out_shape[i] = a.shape()[static_cast<std::size_t>(perm[i])];
  }
  SAUFNO_CHECK(out.shape() == out_shape,
               "permute destination shape mismatch");
  const auto in_strides = contiguous_strides(a.shape());
  std::vector<int64_t> strides(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    strides[i] = in_strides[static_cast<std::size_t>(perm[i])];
  }
  const float* p = a.data();
  float* q = out.data();
  const int64_t n = out.numel();
  // Each chunk re-seeds the odometer from its first linear index, then
  // walks sequentially; chunks cover disjoint output ranges.
  runtime::parallel_for(0, n, 4096, [&](int64_t lin0, int64_t lin1) {
    std::vector<int64_t> idx(static_cast<std::size_t>(rank), 0);
    int64_t off = 0;
    int64_t rem = lin0;
    for (int64_t d = rank - 1; d >= 0; --d) {
      idx[static_cast<std::size_t>(d)] = rem % out_shape[static_cast<std::size_t>(d)];
      rem /= out_shape[static_cast<std::size_t>(d)];
      off += idx[static_cast<std::size_t>(d)] * strides[static_cast<std::size_t>(d)];
    }
    for (int64_t lin = lin0; lin < lin1; ++lin) {
      q[lin] = p[off];
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++idx[d];
        off += strides[d];
        if (idx[d] < out_shape[d]) break;
        idx[d] = 0;
        off -= strides[d] * out_shape[d];
      }
    }
  });
}

Tensor permute(const Tensor& a, const std::vector<int64_t>& perm) {
  SAUFNO_CHECK(static_cast<int64_t>(perm.size()) == a.dim(),
               "permute rank mismatch");
  Shape out_shape(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out_shape[i] = a.shape()[static_cast<std::size_t>(perm[i])];
  }
  Tensor out(out_shape);
  permute_into(a, perm, out);
  return out;
}

void slice_into(const Tensor& a, int64_t dim, int64_t start, int64_t length,
                Tensor& out) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  SAUFNO_CHECK(dim >= 0 && dim < rank, "slice: bad dim");
  SAUFNO_CHECK(start >= 0 && length >= 0 && start + length <= a.shape()[dim],
               "slice out of range on dim " + std::to_string(dim) + " of " +
                   shape_str(a.shape()));
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= a.shape()[i];
  for (int64_t i = dim + 1; i < rank; ++i) inner *= a.shape()[i];
  const int64_t d = a.shape()[dim];
  SAUFNO_CHECK(out.numel() == outer * length * inner,
               "slice destination numel mismatch");

  const float* p = a.data();
  float* q = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = p + (o * d + start) * inner;
    float* dst = q + o * length * inner;
    std::copy(src, src + length * inner, dst);
  }
}

Tensor slice(const Tensor& a, int64_t dim, int64_t start, int64_t length) {
  const int64_t rank = a.dim();
  int64_t d = dim < 0 ? dim + rank : dim;
  SAUFNO_CHECK(d >= 0 && d < rank, "slice: bad dim");
  Shape out_shape = a.shape();
  out_shape[static_cast<std::size_t>(d)] = length;
  Tensor out(out_shape);
  slice_into(a, d, start, length, out);
  return out;
}

void cat_into(const std::vector<Tensor>& ts, int64_t dim, Tensor& out) {
  SAUFNO_CHECK(!ts.empty(), "cat of zero tensors");
  const int64_t rank = ts[0].dim();
  if (dim < 0) dim += rank;
  int64_t cat_size = 0;
  for (const auto& t : ts) {
    SAUFNO_CHECK(t.dim() == rank, "cat: rank mismatch");
    for (int64_t i = 0; i < rank; ++i) {
      if (i != dim) {
        SAUFNO_CHECK(t.shape()[i] == ts[0].shape()[i],
                     "cat: non-cat dims must match");
      }
    }
    cat_size += t.shape()[dim];
  }
  Shape out_shape = ts[0].shape();
  out_shape[static_cast<std::size_t>(dim)] = cat_size;
  SAUFNO_CHECK(out.shape() == out_shape, "cat destination shape mismatch");

  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= out_shape[i];
  for (int64_t i = dim + 1; i < rank; ++i) inner *= out_shape[i];

  float* q = out.data();
  int64_t written = 0;
  for (const auto& t : ts) {
    const int64_t d = t.shape()[dim];
    const float* p = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(p + o * d * inner, p + (o + 1) * d * inner,
                q + (o * cat_size + written) * inner);
    }
    written += d;
  }
}

Tensor cat(const std::vector<Tensor>& ts, int64_t dim) {
  SAUFNO_CHECK(!ts.empty(), "cat of zero tensors");
  const int64_t rank = ts[0].dim();
  int64_t d = dim < 0 ? dim + rank : dim;
  int64_t cat_size = 0;
  for (const auto& t : ts) cat_size += t.shape()[d];
  Shape out_shape = ts[0].shape();
  out_shape[static_cast<std::size_t>(d)] = cat_size;
  Tensor out(out_shape);
  cat_into(ts, d, out);
  return out;
}

void pad2d_into(const Tensor& a, int64_t top, int64_t bottom, int64_t left,
                int64_t right, Tensor& out) {
  const int64_t rank = a.dim();
  SAUFNO_CHECK(rank >= 2, "pad2d needs at least 2 dims");
  const int64_t h = a.shape()[rank - 2], w = a.shape()[rank - 1];
  const int64_t oh = h + top + bottom, ow = w + left + right;
  int64_t batch = 1;
  for (int64_t i = 0; i < rank - 2; ++i) batch *= a.shape()[i];
  SAUFNO_CHECK(out.numel() == batch * oh * ow,
               "pad2d destination numel mismatch");
  const float* p = a.data();
  float* q = out.data();
  // The destination may be an uninitialized arena slot: zero the border
  // explicitly (the allocating wrapper used to rely on zero-init storage).
  std::fill(q, q + out.numel(), 0.f);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t i = 0; i < h; ++i) {
      std::copy(p + (b * h + i) * w, p + (b * h + i + 1) * w,
                q + (b * oh + i + top) * ow + left);
    }
  }
}

Tensor pad2d(const Tensor& a, int64_t top, int64_t bottom, int64_t left,
             int64_t right) {
  const int64_t rank = a.dim();
  SAUFNO_CHECK(rank >= 2, "pad2d needs at least 2 dims");
  Shape out_shape = a.shape();
  out_shape[static_cast<std::size_t>(rank - 2)] += top + bottom;
  out_shape[static_cast<std::size_t>(rank - 1)] += left + right;
  Tensor out(out_shape);
  pad2d_into(a, top, bottom, left, right, out);
  return out;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  SAUFNO_CHECK(a.dim() == 2 && b.dim() == 2, "matmul requires 2-D tensors");
  const int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  SAUFNO_CHECK(b.shape()[0] == k, "matmul inner dims mismatch: " +
                                      shape_str(a.shape()) + " x " +
                                      shape_str(b.shape()));
  SAUFNO_CHECK(out.numel() == m * n, "matmul destination numel mismatch");
  gemm(a.data(), b.data(), out.data(), m, n, k, /*accumulate=*/false);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  SAUFNO_CHECK(a.dim() == 2 && b.dim() == 2, "matmul requires 2-D tensors");
  Tensor out({a.shape()[0], b.shape()[1]});
  matmul_into(a, b, out);
  return out;
}

void bmm_into(const Tensor& a, const Tensor& b, Tensor& out) {
  SAUFNO_CHECK(a.dim() == 3 && b.dim() == 3, "bmm requires 3-D tensors");
  const int64_t ba = a.shape()[0], bb = b.shape()[0];
  SAUFNO_CHECK(ba == bb || ba == 1 || bb == 1, "bmm batch mismatch");
  const int64_t batch = std::max(ba, bb);
  const int64_t m = a.shape()[1], k = a.shape()[2], n = b.shape()[2];
  SAUFNO_CHECK(b.shape()[1] == k, "bmm inner dims mismatch");
  SAUFNO_CHECK(out.numel() == batch * m * n,
               "bmm destination numel mismatch");
  // Parallel over the batch; the nested gemm's own parallel_for decomposes
  // onto the pool too (up to SAUFNO_MAX_NEST), so idle lanes pick up
  // row-blocks of in-flight gemms instead of waiting. Chunk boundaries at
  // both levels depend only on shapes, so results stay bit-identical. With
  // batch == 1 the gemm row-block parallelism takes over entirely.
  runtime::parallel_for(0, batch, 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* pa = a.data() + (ba == 1 ? 0 : i) * m * k;
      const float* pb = b.data() + (bb == 1 ? 0 : i) * k * n;
      gemm(pa, pb, out.data() + i * m * n, m, n, k, /*accumulate=*/false);
    }
  });
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  SAUFNO_CHECK(a.dim() == 3 && b.dim() == 3, "bmm requires 3-D tensors");
  const int64_t batch = std::max(a.shape()[0], b.shape()[0]);
  Tensor out({batch, a.shape()[1], b.shape()[2]});
  bmm_into(a, b, out);
  return out;
}

namespace {

/// Shared softmax core: `scale != 1` first materializes row * scale into
/// the output row with the exact mul_scalar expression, then the standard
/// max/exp/sum/scale sequence runs on the output row — so the fused scaled
/// form is bit-identical to mul_scalar followed by softmax.
void softmax_rows_into(const Tensor& a, bool scaled, float scale,
                       Tensor& out) {
  const int64_t rank = a.dim();
  SAUFNO_CHECK(rank >= 1, "softmax of scalar");
  const int64_t n = a.shape()[rank - 1];
  const int64_t rows = a.numel() / n;
  SAUFNO_CHECK(out.numel() == a.numel(),
               "softmax destination numel mismatch");
  const float* p = a.data();
  float* q = out.data();
  const int64_t grain =
      std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, n));
  runtime::parallel_for(0, rows, grain, [&](int64_t r0, int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
    const float* row = p + r * n;
    float* orow = q + r * n;
    if (scaled) {
      SAUFNO_IVDEP
      for (int64_t i = 0; i < n; ++i) orow[i] = row[i] * scale;
      row = orow;
    }
    // Max, exp, and rescale run through the SIMD helpers (max is
    // associative, exp and scale are per-element, so lane order cannot
    // change the result). The sum stays a scalar double accumulated in row
    // order — that order is part of the determinism contract.
    const float mx = simd::reduce_max(row, n);
    simd::vexp(row, mx, orow, n);
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i) s += orow[i];
    simd::scale(orow, n, static_cast<float>(1.0 / s));
  }
  });
}

}  // namespace

void softmax_lastdim_into(const Tensor& a, Tensor& out) {
  softmax_rows_into(a, /*scaled=*/false, 1.f, out);
}

void scaled_softmax_lastdim_into(const Tensor& a, float scale, Tensor& out) {
  softmax_rows_into(a, /*scaled=*/true, scale, out);
}

Tensor softmax_lastdim(const Tensor& a) {
  Tensor out(a.shape());
  softmax_lastdim_into(a, out);
  return out;
}

void resize_bilinear_into(const Tensor& a, int64_t oh, int64_t ow,
                          Tensor& out) {
  const int64_t rank = a.dim();
  SAUFNO_CHECK(rank >= 2, "resize_bilinear needs >= 2 dims");
  const int64_t ih = a.shape()[rank - 2], iw = a.shape()[rank - 1];
  int64_t batch = 1;
  for (int64_t i = 0; i < rank - 2; ++i) batch *= a.shape()[i];
  SAUFNO_CHECK(out.numel() == batch * oh * ow,
               "resize_bilinear destination numel mismatch");
  bilinear_resize_kernel(a.data(), out.data(), batch, ih, iw, oh, ow,
                         /*adjoint=*/false);
}

Tensor resize_bilinear(const Tensor& a, int64_t oh, int64_t ow) {
  const int64_t rank = a.dim();
  SAUFNO_CHECK(rank >= 2, "resize_bilinear needs >= 2 dims");
  Shape out_shape = a.shape();
  out_shape[static_cast<std::size_t>(rank - 2)] = oh;
  out_shape[static_cast<std::size_t>(rank - 1)] = ow;
  Tensor out(out_shape);
  resize_bilinear_into(a, oh, ow, out);
  return out;
}

Tensor resize_bilinear_adjoint(const Tensor& grad_out, int64_t ih,
                               int64_t iw) {
  const int64_t rank = grad_out.dim();
  SAUFNO_CHECK(rank >= 2, "resize_bilinear_adjoint needs >= 2 dims");
  const int64_t oh = grad_out.shape()[rank - 2],
                ow = grad_out.shape()[rank - 1];
  int64_t batch = 1;
  for (int64_t i = 0; i < rank - 2; ++i) batch *= grad_out.shape()[i];
  Shape in_shape = grad_out.shape();
  in_shape[static_cast<std::size_t>(rank - 2)] = ih;
  in_shape[static_cast<std::size_t>(rank - 1)] = iw;
  Tensor out(in_shape);
  bilinear_resize_kernel(grad_out.data(), out.data(), batch, ih, iw, oh, ow,
                         /*adjoint=*/true);
  return out;
}

}  // namespace saufno
