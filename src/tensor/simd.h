#pragma once

// SIMD dispatch + small vector helpers for the CPU kernel core.
//
// Portable by default: every kernel keeps a plain-C body that the compiler
// auto-vectorizes, and on x86-64 an AVX2+FMA body is additionally compiled
// via per-function target attributes (no global -mavx2, so the binary still
// runs on any x86-64) and selected once per process from cpuid.
// SAUFNO_SIMD=0 forces the portable path (A/B measurement, debugging).
//
// Determinism contract: the selected level is cached on first query and
// never changes for the process lifetime, and level choice never depends on
// the thread count — so the bit-identical-across-SAUFNO_NUM_THREADS
// guarantee is preserved. The AVX2 path's FMA contractions round
// differently than the portable path: results are bit-identical across
// runs/thread counts on the same machine+build, not across SIMD levels.

#include "common/env.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAUFNO_X86_DISPATCH 1
#include <immintrin.h>
#else
#define SAUFNO_X86_DISPATCH 0
#endif

// Hint that a loop has no loop-carried dependence so -O3 vectorizes it even
// when aliasing cannot be proven. Semantics-preserving: it never licenses
// reassociation, only independence.
#if defined(__clang__)
#define SAUFNO_IVDEP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define SAUFNO_IVDEP _Pragma("GCC ivdep")
#else
#define SAUFNO_IVDEP
#endif

namespace saufno {
namespace simd {

enum class Level { kScalar = 0, kAvx2 = 1 };

inline Level detect_level() {
#if SAUFNO_X86_DISPATCH
  // Range-validated knob parser: malformed values ("0x", "false", trailing
  // spaces) warn and fall back to enabled instead of silently running the
  // wrong path during an A/B comparison.
  if (env_int_in_range("SAUFNO_SIMD", 1, 0, 1) == 0) return Level::kScalar;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

/// Process-wide SIMD level, detected once (first call wins; thereafter the
/// level is immutable so kernel results cannot change mid-run).
inline Level level() {
  static const Level lvl = detect_level();
  return lvl;
}

inline const char* level_name() {
  return level() == Level::kAvx2 ? "avx2+fma" : "scalar";
}

#if SAUFNO_X86_DISPATCH
__attribute__((target("avx2"))) inline float reduce_max_avx2(const float* p,
                                                             int64_t n) {
  __m256 best = _mm256_set1_ps(p[0]);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    best = _mm256_max_ps(best, _mm256_loadu_ps(p + i));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, best);
  float m = lanes[0];
  for (int j = 1; j < 8; ++j) m = lanes[j] > m ? lanes[j] : m;
  for (; i < n; ++i) m = p[i] > m ? p[i] : m;
  return m;
}

__attribute__((target("avx2"))) inline void scale_avx2(float* p, int64_t n,
                                                       float s) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(p + i, _mm256_mul_ps(_mm256_loadu_ps(p + i), vs));
  }
  for (; i < n; ++i) p[i] *= s;
}
#endif

/// max over p[0..n) (n >= 1). Max is associative/commutative, so the
/// vector reduction order cannot change the result on non-NaN data (and a
/// softmax over NaN input is already poisoned either way).
inline float reduce_max(const float* p, int64_t n) {
#if SAUFNO_X86_DISPATCH
  if (level() == Level::kAvx2) return reduce_max_avx2(p, n);
#endif
  float m = p[0];
  for (int64_t i = 1; i < n; ++i) m = p[i] > m ? p[i] : m;
  return m;
}

/// p[i] *= s — element-independent, so lane order is irrelevant.
inline void scale(float* p, int64_t n, float s) {
#if SAUFNO_X86_DISPATCH
  if (level() == Level::kAvx2) {
    scale_avx2(p, n, s);
    return;
  }
#endif
  SAUFNO_IVDEP
  for (int64_t i = 0; i < n; ++i) p[i] *= s;
}

}  // namespace simd
}  // namespace saufno
