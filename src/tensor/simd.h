#pragma once

// SIMD dispatch + small vector helpers for the CPU kernel core.
//
// Portable by default: every kernel keeps a plain-C body that the compiler
// auto-vectorizes, and on x86-64 an AVX2+FMA body is additionally compiled
// via per-function target attributes (no global -mavx2, so the binary still
// runs on any x86-64) and selected once per process from cpuid.
// SAUFNO_SIMD=0 forces the portable path (A/B measurement, debugging).
//
// Determinism contract: the selected level is cached on first query and
// never changes for the process lifetime, and level choice never depends on
// the thread count — so the bit-identical-across-SAUFNO_NUM_THREADS
// guarantee is preserved. The AVX2 path's FMA contractions round
// differently than the portable path: results are bit-identical across
// runs/thread counts on the same machine+build, not across SIMD levels.

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/env.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAUFNO_X86_DISPATCH 1
#include <immintrin.h>
#else
#define SAUFNO_X86_DISPATCH 0
#endif

// Hint that a loop has no loop-carried dependence so -O3 vectorizes it even
// when aliasing cannot be proven. Semantics-preserving: it never licenses
// reassociation, only independence.
#if defined(__clang__)
#define SAUFNO_IVDEP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define SAUFNO_IVDEP _Pragma("GCC ivdep")
#else
#define SAUFNO_IVDEP
#endif

namespace saufno {
namespace simd {

enum class Level { kScalar = 0, kAvx2 = 1 };

inline Level detect_level() {
#if SAUFNO_X86_DISPATCH
  // Range-validated knob parser: malformed values ("0x", "false", trailing
  // spaces) warn and fall back to enabled instead of silently running the
  // wrong path during an A/B comparison.
  if (env_int_in_range("SAUFNO_SIMD", 1, 0, 1) == 0) return Level::kScalar;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

/// Process-wide SIMD level, detected once (first call wins; thereafter the
/// level is immutable so kernel results cannot change mid-run).
inline Level level() {
  static const Level lvl = detect_level();
  return lvl;
}

inline const char* level_name() {
  return level() == Level::kAvx2 ? "avx2+fma" : "scalar";
}

#if SAUFNO_X86_DISPATCH
__attribute__((target("avx2"))) inline float reduce_max_avx2(const float* p,
                                                             int64_t n) {
  __m256 best = _mm256_set1_ps(p[0]);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    best = _mm256_max_ps(best, _mm256_loadu_ps(p + i));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, best);
  float m = lanes[0];
  for (int j = 1; j < 8; ++j) m = lanes[j] > m ? lanes[j] : m;
  for (; i < n; ++i) m = p[i] > m ? p[i] : m;
  return m;
}

__attribute__((target("avx2"))) inline void scale_avx2(float* p, int64_t n,
                                                       float s) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(p + i, _mm256_mul_ps(_mm256_loadu_ps(p + i), vs));
  }
  for (; i < n; ++i) p[i] *= s;
}
#endif

/// max over p[0..n) (n >= 1). Max is associative/commutative, so the
/// vector reduction order cannot change the result on non-NaN data (and a
/// softmax over NaN input is already poisoned either way).
inline float reduce_max(const float* p, int64_t n) {
#if SAUFNO_X86_DISPATCH
  if (level() == Level::kAvx2) return reduce_max_avx2(p, n);
#endif
  float m = p[0];
  for (int64_t i = 1; i < n; ++i) m = p[i] > m ? p[i] : m;
  return m;
}

/// p[i] *= s — element-independent, so lane order is irrelevant.
inline void scale(float* p, int64_t n, float s) {
#if SAUFNO_X86_DISPATCH
  if (level() == Level::kAvx2) {
    scale_avx2(p, n, s);
    return;
  }
#endif
  SAUFNO_IVDEP
  for (int64_t i = 0; i < n; ++i) p[i] *= s;
}

// ---------------------------------------------------------------------------
// Polynomial expf (Cephes expf scheme, as in every SIMD math library):
// clamp, split x = n*ln2 + r with Cody-Waite two-constant ln2, degree-5
// minimax polynomial on r, scale by 2^n via exponent-bit assembly. Max
// relative error ~2e-7 — inside the golden 1e-6 gates that pin every model
// output.
//
// Bit-consistency is the load-bearing property here, not just speed. Fused
// kernels evaluate activations one element at a time while bulk sweeps go
// through vexp(), so on the AVX2 level the single-element form
// (exp_poly_fma_scalar) replays the EXACT per-lane operation sequence of
// the 8-wide body with 1-lane SSE intrinsics — same FMA contractions, same
// rounding at every step. The portable form uses plain mul/add only (no
// contraction possible on base x86-64), so portable scalar == portable
// "vector" trivially. As with the rest of this header: identical across
// runs/threads on one machine+build, not across SIMD levels.
// ---------------------------------------------------------------------------

constexpr float kExpHi = 88.02f;           // just under overflow to inf
constexpr float kExpLo = -87.33654f;       // just above underflow to 0
constexpr float kExpLog2e = 1.44269504088896341f;
constexpr float kExpC1 = 0.693359375f;     // ln2 high (Cody-Waite)
constexpr float kExpC2 = -2.12194440e-4f;  // ln2 low
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

/// Portable expf. The clamp keeps n in [-126, 127], so the bit-assembled
/// 2^n below is always a normal float — no inf/denormal edge cases.
inline float exp_poly_portable(float x) {
  x = x > kExpHi ? kExpHi : x;
  x = x < kExpLo ? kExpLo : x;
  const float n = std::nearbyintf(x * kExpLog2e);
  // Two-step reduction keeps r exact to ~2^-45 of ln2 without needing FMA.
  float r = x - n * kExpC1;
  r = r - n * kExpC2;
  const float z = r * r;
  float y = kExpP0;
  y = y * r + kExpP1;
  y = y * r + kExpP2;
  y = y * r + kExpP3;
  y = y * r + kExpP4;
  y = y * r + kExpP5;
  y = y * z + r + 1.0f;
  const std::int32_t e = (static_cast<std::int32_t>(n) + 127) << 23;
  float two_n;
  std::memcpy(&two_n, &e, sizeof(two_n));
  return y * two_n;
}

#if SAUFNO_X86_DISPATCH
__attribute__((target("avx2,fma"))) inline __m256 exp_poly_avx2(__m256 x) {
  x = _mm256_min_ps(x, _mm256_set1_ps(kExpHi));
  x = _mm256_max_ps(x, _mm256_set1_ps(kExpLo));
  const __m256 n = _mm256_round_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(kExpLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(n, _mm256_set1_ps(kExpC1), x);
  r = _mm256_fnmadd_ps(n, _mm256_set1_ps(kExpC2), r);
  const __m256 z = _mm256_mul_ps(r, r);
  __m256 y = _mm256_set1_ps(kExpP0);
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP1));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP2));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP3));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP4));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpP5));
  y = _mm256_fmadd_ps(y, z, _mm256_add_ps(r, _mm256_set1_ps(1.0f)));
  const __m256i e = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(
                           _mm256_round_ps(n, _MM_FROUND_TO_NEAREST_INT |
                                                  _MM_FROUND_NO_EXC)),
                       _mm256_set1_epi32(127)),
      23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(e));
}

/// One-lane mirror of exp_poly_avx2: identical op sequence on SSE+FMA
/// single-lane intrinsics, so a fused kernel's per-element call produces
/// the same bits as the corresponding lane of an 8-wide vexp sweep.
__attribute__((target("avx2,fma"))) inline float exp_poly_fma_scalar(
    float xs) {
  __m128 x = _mm_set_ss(xs);
  x = _mm_min_ss(x, _mm_set_ss(kExpHi));
  x = _mm_max_ss(x, _mm_set_ss(kExpLo));
  const __m128 n = _mm_round_ss(
      x, _mm_mul_ss(x, _mm_set_ss(kExpLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m128 r = _mm_fnmadd_ss(n, _mm_set_ss(kExpC1), x);
  r = _mm_fnmadd_ss(n, _mm_set_ss(kExpC2), r);
  const __m128 z = _mm_mul_ss(r, r);
  __m128 y = _mm_set_ss(kExpP0);
  y = _mm_fmadd_ss(y, r, _mm_set_ss(kExpP1));
  y = _mm_fmadd_ss(y, r, _mm_set_ss(kExpP2));
  y = _mm_fmadd_ss(y, r, _mm_set_ss(kExpP3));
  y = _mm_fmadd_ss(y, r, _mm_set_ss(kExpP4));
  y = _mm_fmadd_ss(y, r, _mm_set_ss(kExpP5));
  y = _mm_fmadd_ss(y, z, _mm_add_ss(r, _mm_set_ss(1.0f)));
  const __m128i e = _mm_slli_epi32(
      _mm_add_epi32(_mm_cvtps_epi32(n), _mm_set1_epi32(127)), 23);
  return _mm_cvtss_f32(_mm_mul_ss(y, _mm_castsi128_ps(e)));
}

__attribute__((target("avx2,fma"))) inline void vexp_avx2(const float* in,
                                                          float bias,
                                                          float* out,
                                                          int64_t n) {
  const __m256 vb = _mm256_set1_ps(bias);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     exp_poly_avx2(_mm256_sub_ps(_mm256_loadu_ps(in + i), vb)));
  }
  for (; i < n; ++i) out[i] = exp_poly_fma_scalar(in[i] - bias);
}
#endif

/// out[i] = exp(in[i] - bias) over [0, n). `bias` is the softmax max-shift
/// (pass 0 for a plain exp sweep); folding it here keeps the subtraction in
/// the same instruction stream at both SIMD levels.
inline void vexp(const float* in, float bias, float* out, int64_t n) {
#if SAUFNO_X86_DISPATCH
  if (level() == Level::kAvx2) {
    vexp_avx2(in, bias, out, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = exp_poly_portable(in[i] - bias);
}

/// Single-element exp, bit-identical to the corresponding vexp lane at the
/// active SIMD level. Fused kernels MUST use this (not std::exp) wherever
/// an unfused sibling sweeps with vexp, or fusion breaks bitwise equality.
inline float exp1(float x) {
#if SAUFNO_X86_DISPATCH
  if (level() == Level::kAvx2) return exp_poly_fma_scalar(x);
#endif
  return exp_poly_portable(x);
}

}  // namespace simd
}  // namespace saufno
