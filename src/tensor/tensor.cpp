#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace saufno {

int64_t numel_of(const Shape& s) {
  int64_t n = 1;
  for (int64_t d : s) n *= d;
  return n;
}

std::string shape_str(const Shape& s) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i];
  }
  os << ']';
  return os.str();
}

std::vector<int64_t> contiguous_strides(const Shape& s) {
  std::vector<int64_t> st(s.size(), 1);
  for (int i = static_cast<int>(s.size()) - 2; i >= 0; --i) {
    st[i] = st[i + 1] * s[i + 1];
  }
  return st;
}

struct Tensor::Storage {
  std::vector<float> heap;
  float* arena = nullptr;
  std::size_t arena_bytes = 0;
  /// Non-owning external pointer (Tensor::wrap_external); never released.
  float* external = nullptr;

  Storage() = default;
  /// Heap storage, zero-initialized (the historical Tensor contract).
  explicit Storage(std::size_t n) : heap(n, 0.f) {}
  /// Arena storage, uninitialized.
  Storage(std::size_t n, bool /*from_arena*/)
      : arena(static_cast<float*>(
            runtime::arena_acquire(n * sizeof(float)))),
        arena_bytes(n * sizeof(float)) {}
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;
  ~Storage() {
    if (arena != nullptr) runtime::arena_release(arena, arena_bytes);
  }

  float* ptr() {
    if (external != nullptr) return external;
    return arena != nullptr ? arena : heap.data();
  }
  const float* ptr() const {
    if (external != nullptr) return external;
    return arena != nullptr ? arena : heap.data();
  }
};

Tensor::Tensor() = default;

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  for (int64_t d : shape_) {
    SAUFNO_CHECK(d >= 0, "negative dimension in shape " + shape_str(shape_));
  }
  numel_ = numel_of(shape_);
  storage_ = std::make_shared<Storage>(static_cast<std::size_t>(numel_));
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)) {
  numel_ = numel_of(shape_);
  SAUFNO_CHECK(static_cast<int64_t>(values.size()) == numel_,
               "value count " + std::to_string(values.size()) +
                   " does not match shape " + shape_str(shape_));
  storage_ = std::make_shared<Storage>();
  storage_->heap = std::move(values);
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::scratch(Shape shape) {
  Tensor t;
  for (int64_t d : shape) {
    SAUFNO_CHECK(d >= 0, "negative dimension in shape " + shape_str(shape));
  }
  t.numel_ = numel_of(shape);
  t.shape_ = std::move(shape);
  t.storage_ = std::make_shared<Storage>(
      static_cast<std::size_t>(t.numel_), /*from_arena=*/true);
  return t;
}

Tensor Tensor::wrap_external(float* data, Shape shape) {
  SAUFNO_CHECK(data != nullptr, "wrap_external of a null pointer");
  Tensor t;
  for (int64_t d : shape) {
    SAUFNO_CHECK(d >= 0, "negative dimension in shape " + shape_str(shape));
  }
  t.numel_ = numel_of(shape);
  t.shape_ = std::move(shape);
  t.storage_ = std::make_shared<Storage>();
  t.storage_->external = data;
  return t;
}

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t({n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t i) const {
  const int64_t d = dim();
  if (i < 0) i += d;
  SAUFNO_CHECK(i >= 0 && i < d, "dimension index out of range for shape " +
                                    shape_str(shape_));
  return shape_[static_cast<std::size_t>(i)];
}

float* Tensor::data() {
  SAUFNO_CHECK(defined(), "accessing data of an undefined tensor");
  return storage_->ptr();
}

const float* Tensor::data() const {
  SAUFNO_CHECK(defined(), "accessing data of an undefined tensor");
  return storage_->ptr();
}

float Tensor::at(int64_t i) const {
  SAUFNO_CHECK(i >= 0 && i < numel_, "linear index out of range");
  return storage_->ptr()[i];
}

float& Tensor::at(int64_t i) {
  SAUFNO_CHECK(i >= 0 && i < numel_, "linear index out of range");
  return storage_->ptr()[i];
}

Tensor Tensor::reshape(Shape new_shape) const {
  // Support one inferred (-1) dimension, torch-style.
  int64_t known = 1;
  int infer = -1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      SAUFNO_CHECK(infer == -1, "at most one -1 allowed in reshape");
      infer = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer >= 0) {
    SAUFNO_CHECK(known != 0 && numel_ % known == 0,
                 "cannot infer reshape dim: " + shape_str(shape_) + " -> " +
                     shape_str(new_shape));
    new_shape[static_cast<std::size_t>(infer)] = numel_ / known;
  }
  SAUFNO_CHECK(numel_of(new_shape) == numel_,
               "reshape element count mismatch: " + shape_str(shape_) +
                   " -> " + shape_str(new_shape));
  Tensor out;
  out.storage_ = storage_;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  return out;
}

Tensor Tensor::clone() const {
  if (!defined()) return Tensor();
  Tensor out;
  // Clones always land on the heap, even when the source was arena scratch:
  // a clone outlives hot-loop scope by definition.
  out.storage_ = std::make_shared<Storage>();
  out.storage_->heap.assign(storage_->ptr(),
                            storage_->ptr() + static_cast<std::size_t>(numel_));
  out.shape_ = shape_;
  out.numel_ = numel_;
  return out;
}

float Tensor::item() const {
  SAUFNO_CHECK(numel_ == 1, "item() requires a single-element tensor, got " +
                                shape_str(shape_));
  return storage_->ptr()[0];
}

void Tensor::fill_(float v) {
  float* p = data();
  for (int64_t i = 0; i < numel_; ++i) p[i] = v;
}

void Tensor::add_(const Tensor& other, float alpha) {
  SAUFNO_CHECK(shape_ == other.shape_,
               "add_ shape mismatch: " + shape_str(shape_) + " vs " +
                   shape_str(other.shape_));
  float* p = data();
  const float* q = other.data();
  // Gradient accumulation and optimizer steps funnel through this axpy;
  // disjoint chunks keep it bit-identical for any thread count.
  runtime::parallel_for(0, numel_, 8192, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) p[i] += alpha * q[i];
  });
}

void Tensor::mul_(float v) {
  float* p = data();
  for (int64_t i = 0; i < numel_; ++i) p[i] *= v;
}

bool Tensor::allclose(const Tensor& other, float rtol, float atol) const {
  if (shape_ != other.shape_) return false;
  const float* p = data();
  const float* q = other.data();
  for (int64_t i = 0; i < numel_; ++i) {
    const float tol = atol + rtol * std::fabs(q[i]);
    if (std::fabs(p[i] - q[i]) > tol) return false;
    if (std::isnan(p[i]) != std::isnan(q[i])) return false;
  }
  return true;
}

}  // namespace saufno
