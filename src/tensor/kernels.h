#pragma once

#include <cstdint>

namespace saufno {

/// Row-major sgemm: C[M,N] (+)= A[M,K] * B[K,N].
///
/// The i-k-j loop order streams B rows through cache and lets the compiler
/// vectorize the inner j loop; on the single-core target this is within a
/// small factor of an optimized BLAS for the matrix sizes the models use
/// (K, N of a few hundred to a few thousand).
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool accumulate);

/// im2col for 2-D convolution with square stride-1 semantics generalized to
/// arbitrary stride/padding. Input is one image [C, H, W]; the column buffer
/// is [C*kh*kw, out_h*out_w] row-major so that conv = weight-matrix * cols.
void im2col(const float* img, float* cols, int64_t c, int64_t h, int64_t w,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad);

/// Adjoint of im2col: scatter-add a column buffer back into an image
/// gradient of shape [C, H, W] (must be pre-zeroed by the caller).
void col2im(const float* cols, float* img, int64_t c, int64_t h, int64_t w,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad);

/// Output spatial size of a convolution/pooling window.
inline int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride,
                             int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// 2x2 (or general kxk) max pooling over one [C, H, W] image; writes pooled
/// values and the argmax linear offsets (into the H*W plane) used by the
/// backward scatter.
void maxpool2d(const float* img, float* out, int64_t* argmax, int64_t c,
               int64_t h, int64_t w, int64_t kernel, int64_t stride);

/// Bilinear resize (align_corners=true) for `batch` independent planes of
/// size [ih, iw] -> [oh, ow]. When `adjoint` is true the roles flip: `src`
/// is the [oh, ow] output-gradient and `dst` the [ih, iw] input-gradient
/// (scatter-add with the same interpolation weights).
void bilinear_resize_kernel(const float* src, float* dst, int64_t batch,
                            int64_t ih, int64_t iw, int64_t oh, int64_t ow,
                            bool adjoint);

}  // namespace saufno
