#pragma once

#include <cstdint>

namespace saufno {

/// Row-major sgemm: C[M,N] (+)= A[M,K] * B[K,N].
///
/// Packed, cache-blocked implementation: A row panels and B column panels
/// are packed into workspace-arena scratch, then an MR x NR register-tiled
/// microkernel (AVX2+FMA when the CPU has it — see tensor/simd.h — with a
/// portable auto-vectorizable body otherwise) runs K-blocked over the
/// panels. Dense and branch-free: NaN/Inf in either operand propagates per
/// IEEE (no data-dependent zero-skip). Row-block partitioning with a
/// thread-count-independent grain keeps C bit-identical for every
/// SAUFNO_NUM_THREADS.
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool accumulate);

/// The seed repo's scalar i-k-j gemm, preserved verbatim (including its
/// data-dependent `a[i,k] == 0` skip, which silently drops NaN/Inf columns
/// of B) as the old-vs-new baseline for bench_kernels and regression tests.
/// Never used by the serving path.
void gemm_seed_reference(const float* a, const float* b, float* c, int64_t m,
                         int64_t n, int64_t k, bool accumulate);

/// Bench/test hook: while on, gemm() routes through gemm_seed_reference so
/// end-to-end old-vs-new comparisons run through unmodified model code.
/// Not for production use (flipping it mid-run changes numerics).
void gemm_force_seed_reference(bool on);

/// im2col for 2-D convolution with square stride-1 semantics generalized to
/// arbitrary stride/padding. Input is one image [C, H, W]; the column buffer
/// is [C*kh*kw, out_h*out_w] row-major so that conv = weight-matrix * cols.
void im2col(const float* img, float* cols, int64_t c, int64_t h, int64_t w,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad);

/// Adjoint of im2col: scatter-add a column buffer back into an image
/// gradient of shape [C, H, W] (must be pre-zeroed by the caller).
void col2im(const float* cols, float* img, int64_t c, int64_t h, int64_t w,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad);

/// Output spatial size of a convolution/pooling window.
inline int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride,
                             int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// 2x2 (or general kxk) max pooling over one [C, H, W] image; writes pooled
/// values and the argmax linear offsets (into the H*W plane) used by the
/// backward scatter.
void maxpool2d(const float* img, float* out, int64_t* argmax, int64_t c,
               int64_t h, int64_t w, int64_t kernel, int64_t stride);

/// Bilinear resize (align_corners=true) for `batch` independent planes of
/// size [ih, iw] -> [oh, ow]. When `adjoint` is true the roles flip: `src`
/// is the [oh, ow] output-gradient and `dst` the [ih, iw] input-gradient
/// (scatter-add with the same interpolation weights).
void bilinear_resize_kernel(const float* src, float* dst, int64_t batch,
                            int64_t ih, int64_t iw, int64_t oh, int64_t ow,
                            bool adjoint);

}  // namespace saufno
