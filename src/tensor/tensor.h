#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace saufno {

using Shape = std::vector<int64_t>;

/// Number of elements described by a shape.
int64_t numel_of(const Shape& s);
/// Human-readable "[2, 3, 4]" form for error messages.
std::string shape_str(const Shape& s);
/// Row-major contiguous strides for a shape.
std::vector<int64_t> contiguous_strides(const Shape& s);

/// Dense row-major float32 tensor with shared storage.
///
/// Design notes (see DESIGN.md §system inventory):
///  - Always contiguous. View-producing ops (`reshape`) share storage; all
///    layout-changing ops (`permute`, `slice`, ...) copy. On a single CPU
///    core the copies are cheap relative to the gemm/FFT work and the
///    simplicity pays for itself in the autograd layer.
///  - Copying a Tensor is O(1) (shared_ptr bump); use `clone()` for a deep
///    copy. This mirrors the semantics ML users expect from torch.Tensor.
///  - All shape errors throw (SAUFNO_CHECK); silent UB is unacceptable in a
///    numerical library.
class Tensor {
 public:
  /// Empty 0-element tensor (shape []). `defined()` is false.
  Tensor();
  /// Uninitialized-to-zero tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Tensor wrapping the given values (copied); values.size() must match.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Arena-backed tensor for hot loops (serving batch assembly, kernel
  /// scratch): storage comes from the calling thread's workspace arena and
  /// returns to it when the last reference drops, so steady-state use does
  /// no heap allocation. Contents are UNINITIALIZED — callers must write
  /// every element (or fill_) before reading.
  static Tensor scratch(Shape shape);
  /// Non-owning view over caller-managed memory (the plan executor's
  /// per-plan arena reservation binds every temp slot this way, so a
  /// compiled forward performs zero per-op allocations). The caller must
  /// keep `data` alive and fixed for the lifetime of every Tensor sharing
  /// this storage — including reshape views and O(1) copies. Contents are
  /// whatever the buffer holds; `clone()` still deep-copies to the heap.
  static Tensor wrap_external(float* data, Shape shape);
  /// Standard-normal entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// Uniform entries in [lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo = 0.f,
                             float hi = 1.f);
  /// 1-D ramp [0, 1, ..., n-1] (useful for coordinate channels).
  static Tensor arange(int64_t n);

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  /// Size along dimension `i`; negative indices count from the back.
  int64_t size(int64_t i) const;
  int64_t numel() const { return numel_; }

  float* data();
  const float* data() const;
  /// Element access for tests / tooling (linear index).
  float at(int64_t i) const;
  float& at(int64_t i);

  /// Shares storage; product of dims must match. A dim of -1 is inferred.
  Tensor reshape(Shape new_shape) const;
  /// Deep copy into fresh contiguous storage.
  Tensor clone() const;
  /// Scalar extraction; requires numel()==1.
  float item() const;

  void fill_(float v);
  /// In-place axpy: this += alpha * other (same shape). Used by autograd
  /// gradient accumulation and the optimizers, where allocating a fresh
  /// tensor per step would dominate runtime.
  void add_(const Tensor& other, float alpha = 1.f);
  void mul_(float v);

  /// True if shapes are equal and all entries are within atol+rtol*|ref|.
  bool allclose(const Tensor& other, float rtol = 1e-5f,
                float atol = 1e-6f) const;

 private:
  /// Storage is either an owned heap vector or a block borrowed from the
  /// workspace arena (Tensor::scratch); the arena block is released when
  /// the last Tensor sharing it drops.
  struct Storage;
  std::shared_ptr<Storage> storage_;
  Shape shape_;
  int64_t numel_ = 0;
};

}  // namespace saufno
