#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/normalizer.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "plan/runner.h"
#include "runtime/errors.h"
#include "runtime/request_queue.h"

namespace saufno {
namespace runtime {

/// Serving-side throughput/latency counters. Latency is measured from
/// submit() to promise fulfilment, i.e. it includes queueing + batching
/// wait, which is what a caller actually experiences. Percentiles come from
/// a log-bucketed obs::Histogram over every VALUE completion (≈6% relative
/// error, exact max) — requests resolved with typed errors (shed, expired,
/// cancelled, faulted) are counted separately and never pollute the latency
/// distribution of served traffic.
struct InferenceStats {
  int64_t requests = 0;   // requests resolved with a value
  int64_t failed = 0;     // requests resolved with an error by the batcher
  int64_t rejected = 0;   // shed at submit() by admission control
  int64_t expired = 0;    // completed with DeadlineExceededError
  int64_t cancelled = 0;  // completed with CancelledError
  int64_t batches = 0;
  double avg_batch_size = 0.0;
  double wall_seconds = 0.0;     // first request enqueued -> last batch done
  double throughput_rps = 0.0;   // completed requests / wall_seconds
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Workspace-arena counters (process-wide, see runtime/workspace.h):
  /// steady-state serving should show arena_hit_rate -> 1.0, i.e. the
  /// spectral hot loop and batch assembly run with zero heap allocation
  /// once every worker thread has warmed its freelists.
  int64_t arena_hits = 0;
  int64_t arena_misses = 0;
  double arena_hit_rate = 0.0;
};

/// Batched inference engine: owns a frozen model and a batcher thread that
/// coalesces concurrent `submit` calls into [B, C, H, W] forwards.
///
/// - Requests are [C, H, W] power-map fields; responses are the model's
///   [C_out, H, W] temperature maps.
/// - When constructed with a Normalizer (the deployable path:
///   `from_checkpoint`, or `from_zoo` on a v2 checkpoint), the contract is
///   raw-in/kelvin-out: `submit` takes unnormalized power maps, inputs are
///   encoded before the forward and outputs decoded after, bit-identical
///   to `Trainer::predict` on the same weights. Without a normalizer the
///   engine forwards tensors untouched (the pre-v2 behavior).
/// - Batching: up to `max_batch` same-shape requests, waiting at most
///   `max_wait_us` after the first request of a batch ARRIVES (the deadline
///   is anchored to enqueue time). The queue is sharded by shape, so
///   interleaved multi-resolution traffic still coalesces per shape instead
///   of collapsing to batch size 1. With `pad_to_full_batch` the batch
///   dimension is zero-padded to `max_batch` so every forward sees one
///   shape (useful when a backend JITs per shape; padding rows cost compute
///   but never change real rows' results, since every kernel in this
///   library is per-sample independent).
/// - Every forward runs under NoGradGuard: no autograd tape is recorded.
/// - Results are bit-identical to calling the same encode/forward/decode
///   one sample at a time, whatever the batch composition or
///   SAUFNO_NUM_THREADS.
///
/// Overload-safety contract (see runtime/errors.h for the taxonomy):
/// - Admission control: the queue is bounded (`queue_capacity`); an
///   over-capacity submit fails fast with OverloadedError carrying a
///   retry-after hint instead of growing the backlog unboundedly.
/// - Deadlines & cancellation: per-request via SubmitOptions; an expired or
///   cancelled request is completed with its typed error at dequeue time,
///   at the batcher's pre-forward check, or at delivery — a future never
///   resolves with a value after its deadline.
/// - Fault isolation: inputs are validated at submit (shape, channels, and
///   — with `validate_finite` — NaN/Inf); a batch forward exception is
///   re-run in bisection so only the culpable request(s) fail; non-finite
///   outputs degrade plan→interpreter once and then fail only the affected
///   requests. A poisoned request never takes down its batch-mates or the
///   engine.
/// - Graceful drain: `drain(timeout)` stops admissions, flushes the queue,
///   and resolves stragglers with ShutdownError. A `watchdog_timeout_ms`
///   watchdog fails pending futures when the batcher stops making progress
///   instead of hanging clients forever.
class InferenceEngine {
 public:
  struct Config {
    int64_t max_batch = 8;
    int64_t max_wait_us = 2000;
    bool pad_to_full_batch = false;
    /// Exact input channel count the model expects ([C, H, W] submissions
    /// are rejected up front with both numbers in the message instead of
    /// dying inside model_->forward with an opaque shape error). 0 means
    /// unknown: submit() then falls back to the weaker normalizer lower
    /// bound. The factories (`from_zoo`, `from_checkpoint`) always fill
    /// this in from their channel arguments / the checkpoint meta.
    int64_t expected_in_channels = 0;
    /// Execution-plan policy for the forward: a plan::Mode value (0 = off /
    /// interpret, 1 = on, 2 = compile-only), or -1 to read the SAUFNO_PLAN
    /// environment knob (the default). Plan-mode forwards are bit-identical
    /// to interpreted ones; any shape the tracer cannot plan falls back to
    /// the interpreter automatically.
    int plan_mode = -1;
    /// Admission control: max queued requests across all shards (0 =
    /// unbounded) and per shape shard (0 = same as queue_capacity). The
    /// default bounds the backlog at 1024 requests — deep enough that no
    /// well-behaved workload notices, shallow enough that overload sheds
    /// with OverloadedError instead of growing the queue without limit.
    /// SAUFNO_QUEUE_CAP overrides the default when the config leaves it.
    int64_t queue_capacity = -1;  // -1 = SAUFNO_QUEUE_CAP or 1024
    int64_t shard_capacity = 0;
    /// Reject non-finite (NaN/Inf) inputs at submit() with RequestError.
    bool validate_finite = true;
    /// On a batch forward exception, re-run in bisection so only the
    /// culpable request(s) get the exception and batch-mates still succeed.
    bool isolate_faults = true;
    /// Scan outputs for NaN/Inf; on a hit, degrade plan→interpreter once,
    /// then fail only the affected request(s) — never the engine.
    bool output_guard = true;
    /// Fail pending futures when the batcher makes no progress on one batch
    /// for this long (a stuck forward must not hang clients forever).
    /// 0 disables the watchdog. The default (10 s) is far beyond any
    /// legitimate batch — sanitizer lanes included.
    int64_t watchdog_timeout_ms = 10000;
    /// Split each batched forward into this many contiguous row partitions
    /// run concurrently as TaskGroup tasks (each partition is its own
    /// plan/interpreter forward; an op inside one partition still
    /// decomposes onto the pool — intra-op x inter-batch). 1 disables
    /// partitioning; 0 (default) = the SAUFNO_BATCH_PARTITIONS env knob,
    /// else an auto heuristic (largest divisor of the batch <= pool lanes
    /// with >= 2 rows per partition, so every partition shares one plan
    /// shape). Results are bit-identical partitioned or not: every kernel
    /// is per-sample independent (pinned by the padded-vs-unpadded and
    /// partitioned-vs-not bitwise tests), and partition outputs are
    /// reassembled in row order.
    int64_t batch_partitions = 0;
  };

  /// Takes shared ownership of `model`, switches it to eval mode and starts
  /// the batcher thread. Without a normalizer the engine serves raw model
  /// outputs.
  InferenceEngine(std::shared_ptr<nn::Module> model, Config cfg);

  /// Same, with the fitted normalizer: submit() then takes raw W-per-pixel
  /// power maps and futures resolve to kelvin temperature fields.
  InferenceEngine(std::shared_ptr<nn::Module> model,
                  std::optional<data::Normalizer> norm, Config cfg);

  /// Build the model from the zoo (train::make_model) and, when `checkpoint`
  /// is non-empty, load weights from it. A v2 checkpoint that carries a
  /// normalizer switches the engine to raw-in/kelvin-out serving.
  static std::unique_ptr<InferenceEngine> from_zoo(
      const std::string& model_name, int64_t in_channels, int64_t out_channels,
      std::uint64_t seed, const std::string& checkpoint, Config cfg);

  /// Build the entire serving pipeline from a self-describing v2 checkpoint
  /// (train::load_deployable): model identity, weights and normalizer all
  /// come from the file.
  static std::unique_ptr<InferenceEngine> from_checkpoint(
      const std::string& checkpoint, Config cfg);

  /// Drains pending requests, then stops the batcher.
  ~InferenceEngine();
  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Thread-safe async submission of one [C, H, W] input field. Throws
  /// ShutdownError after stop()/drain(), OverloadedError (with retry-after)
  /// when admission control sheds, RequestError on invalid input.
  std::future<Tensor> submit(Tensor power_map);
  std::future<Tensor> submit(Tensor power_map, SubmitOptions opts);

  /// Stop accepting work and join the batcher (idempotent; the destructor
  /// calls it). Pending requests are still served before it returns.
  void stop();

  /// Graceful drain: stop admissions immediately (submit throws
  /// ShutdownError), serve what is already queued for up to `timeout`, then
  /// fail any stragglers with ShutdownError and stop. Returns the number of
  /// requests that were failed rather than served.
  std::size_t drain(std::chrono::milliseconds timeout);

  InferenceStats stats() const;
  const Config& config() const { return cfg_; }
  bool has_normalizer() const { return norm_.has_value(); }
  /// Throws when the engine was built without one (has_normalizer() false).
  const data::Normalizer& normalizer() const;
  /// The plan runner serving this engine's forwards (mode, cache stats).
  const plan::PlanRunner& plan_runner() const { return *plan_; }
  /// Estimated milliseconds until a shed request could be admitted, derived
  /// from the current backlog and the recent per-batch serve time (the same
  /// figure OverloadedError carries).
  double estimated_retry_after_ms() const;

 private:
  void batcher_loop();
  void watchdog_loop();
  void serve_batch(std::vector<InferenceRequest> batch);
  /// Forward + deliver `batch[lo, hi)`. Completes every slot (value or
  /// typed error); exceptions split the range in two and retry each half so
  /// only culpable requests fail. `depth` bounds the recursion (log2 B).
  void execute_range(std::vector<InferenceRequest>& batch, std::size_t lo,
                     std::size_t hi, int depth);
  /// One forward attempt over the range. Throws on forward failure;
  /// non-finite outputs degrade plan→interpreter once, then fail only the
  /// affected rows.
  void forward_and_deliver(std::vector<InferenceRequest>& batch,
                           std::size_t lo, std::size_t hi);
  /// Deliver a value honoring the request's deadline (a late value becomes
  /// DeadlineExceededError) and record latency/occupancy accounting.
  void complete_value(InferenceRequest& req, Tensor result,
                      int64_t batch_rows);
  void complete_error(InferenceRequest& req, std::exception_ptr e);
  void note_batch_window(const std::vector<InferenceRequest>& batch,
                         std::size_t lo, std::size_t hi);

  std::shared_ptr<nn::Module> model_;
  std::optional<data::Normalizer> norm_;
  Config cfg_;
  /// Compiles one plan per input shape and runs the flat instruction
  /// stream; transparently interprets when the mode or a trace failure
  /// says so.
  std::unique_ptr<plan::PlanRunner> plan_;
  RequestQueue queue_;
  std::thread batcher_;
  std::thread watchdog_;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};   // admissions closed
  std::atomic<bool> batcher_done_{false};
  std::atomic<int64_t> seq_{0};         // submit sequence numbers

  /// Watchdog view of the in-flight batch: slots registered before the
  /// forward, cleared after; `busy_since_` is the steady_clock tick count
  /// when the current batch started (0 = idle). On a trip the watchdog
  /// completes these slots with EngineError — try_error makes the race with
  /// a recovering batcher safe.
  mutable std::mutex inflight_m_;
  std::vector<std::shared_ptr<ResultSlot>> inflight_slots_;
  std::atomic<int64_t> busy_since_ns_{0};
  std::condition_variable drain_cv_;  // notified as batches finish

  /// EWMA of per-batch serve wall time (ms), stored as double bits: the
  /// retry-after estimator. Seeded at 1 ms until the first batch lands.
  std::atomic<uint64_t> batch_ms_ewma_bits_;

  /// Per-engine latency distribution (submit -> fulfilment, ms). Lock-free
  /// to record and O(buckets) to query.
  obs::Histogram latency_hist_;

  mutable std::mutex stats_m_;
  int64_t batches_ = 0;
  int64_t requests_done_ = 0;
  int64_t requests_failed_ = 0;
  int64_t requests_expired_ = 0;
  int64_t requests_cancelled_ = 0;
  std::atomic<int64_t> rejected_{0};  // shed at submit (not under stats_m_)
  /// Throughput is measured over the busy window [earliest enqueue seen,
  /// latest batch completion], NOT engine lifetime: an engine that sat idle
  /// for an hour before its first request still reports its real serving
  /// rate.
  std::chrono::steady_clock::time_point window_start_;
  std::chrono::steady_clock::time_point window_end_;
  bool window_open_ = false;
};

}  // namespace runtime
}  // namespace saufno
