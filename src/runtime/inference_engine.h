#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/module.h"
#include "runtime/request_queue.h"

namespace saufno {
namespace runtime {

/// Serving-side throughput/latency counters. Latency is measured from
/// submit() to promise fulfilment, i.e. it includes queueing + batching
/// wait, which is what a caller actually experiences. Percentiles are over
/// the most recent completions (a bounded window, see kLatencyWindow).
struct InferenceStats {
  int64_t requests = 0;
  int64_t batches = 0;
  double avg_batch_size = 0.0;
  double wall_seconds = 0.0;     // since engine construction
  double throughput_rps = 0.0;   // completed requests / wall_seconds
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

/// Batched inference engine: owns a frozen model and a batcher thread that
/// coalesces concurrent `submit` calls into [B, C, H, W] forwards.
///
/// - Requests are [C, H, W] power-map fields; responses are the model's
///   [C_out, H, W] temperature maps.
/// - Batching: up to `max_batch` same-shape requests, waiting at most
///   `max_wait_us` after the first request of a batch arrives. With
///   `pad_to_full_batch` the batch dimension is zero-padded to `max_batch`
///   so every forward sees one shape (useful when a backend JITs per shape;
///   padding rows cost compute but never change real rows' results, since
///   every kernel in this library is per-sample independent).
/// - Every forward runs under NoGradGuard: no autograd tape is recorded.
/// - Results are bit-identical to calling `model->forward` one sample at a
///   time, whatever the batch composition or SAUFNO_NUM_THREADS.
class InferenceEngine {
 public:
  struct Config {
    int64_t max_batch = 8;
    int64_t max_wait_us = 2000;
    bool pad_to_full_batch = false;
  };

  /// Takes shared ownership of `model`, switches it to eval mode and starts
  /// the batcher thread.
  InferenceEngine(std::shared_ptr<nn::Module> model, Config cfg);

  /// Build the model from the zoo (train::make_model) and, when `checkpoint`
  /// is non-empty, load weights from a nn::save_checkpoint file.
  static std::unique_ptr<InferenceEngine> from_zoo(
      const std::string& model_name, int64_t in_channels, int64_t out_channels,
      std::uint64_t seed, const std::string& checkpoint, Config cfg);

  /// Drains pending requests, then stops the batcher.
  ~InferenceEngine();
  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Thread-safe async submission of one [C, H, W] input field.
  std::future<Tensor> submit(Tensor power_map);

  /// Stop accepting work and join the batcher (idempotent; the destructor
  /// calls it). Pending requests are still served before it returns.
  void stop();

  InferenceStats stats() const;
  const Config& config() const { return cfg_; }

 private:
  void batcher_loop();
  void serve_batch(std::vector<InferenceRequest> batch);

  std::shared_ptr<nn::Module> model_;
  Config cfg_;
  RequestQueue queue_;
  std::thread batcher_;
  std::atomic<bool> stopped_{false};

  /// Percentiles are computed over a bounded ring of the most recent
  /// completions so a long-lived server neither grows without bound nor
  /// sorts millions of samples per stats() call.
  static constexpr std::size_t kLatencyWindow = 8192;

  mutable std::mutex stats_m_;
  std::vector<double> latencies_ms_;   // ring buffer, capacity kLatencyWindow
  std::size_t latency_next_ = 0;       // ring write cursor
  int64_t batches_ = 0;
  int64_t requests_done_ = 0;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace runtime
}  // namespace saufno
