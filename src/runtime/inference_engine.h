#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/normalizer.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "plan/runner.h"
#include "runtime/request_queue.h"

namespace saufno {
namespace runtime {

/// Serving-side throughput/latency counters. Latency is measured from
/// submit() to promise fulfilment, i.e. it includes queueing + batching
/// wait, which is what a caller actually experiences. Percentiles come from
/// a log-bucketed obs::Histogram over EVERY completion (≈6% relative error,
/// exact max) — not the old sort-the-most-recent-8192 ring, so stats() is
/// O(buckets) and never blocks the batcher on a sort.
struct InferenceStats {
  int64_t requests = 0;
  int64_t batches = 0;
  double avg_batch_size = 0.0;
  double wall_seconds = 0.0;     // first request enqueued -> last batch done
  double throughput_rps = 0.0;   // completed requests / wall_seconds
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Workspace-arena counters (process-wide, see runtime/workspace.h):
  /// steady-state serving should show arena_hit_rate -> 1.0, i.e. the
  /// spectral hot loop and batch assembly run with zero heap allocation
  /// once every worker thread has warmed its freelists.
  int64_t arena_hits = 0;
  int64_t arena_misses = 0;
  double arena_hit_rate = 0.0;
};

/// Batched inference engine: owns a frozen model and a batcher thread that
/// coalesces concurrent `submit` calls into [B, C, H, W] forwards.
///
/// - Requests are [C, H, W] power-map fields; responses are the model's
///   [C_out, H, W] temperature maps.
/// - When constructed with a Normalizer (the deployable path:
///   `from_checkpoint`, or `from_zoo` on a v2 checkpoint), the contract is
///   raw-in/kelvin-out: `submit` takes unnormalized power maps, inputs are
///   encoded before the forward and outputs decoded after, bit-identical
///   to `Trainer::predict` on the same weights. Without a normalizer the
///   engine forwards tensors untouched (the pre-v2 behavior).
/// - Batching: up to `max_batch` same-shape requests, waiting at most
///   `max_wait_us` after the first request of a batch ARRIVES (the deadline
///   is anchored to enqueue time). The queue is sharded by shape, so
///   interleaved multi-resolution traffic still coalesces per shape instead
///   of collapsing to batch size 1. With `pad_to_full_batch` the batch
///   dimension is zero-padded to `max_batch` so every forward sees one
///   shape (useful when a backend JITs per shape; padding rows cost compute
///   but never change real rows' results, since every kernel in this
///   library is per-sample independent).
/// - Every forward runs under NoGradGuard: no autograd tape is recorded.
/// - Results are bit-identical to calling the same encode/forward/decode
///   one sample at a time, whatever the batch composition or
///   SAUFNO_NUM_THREADS.
class InferenceEngine {
 public:
  struct Config {
    int64_t max_batch = 8;
    int64_t max_wait_us = 2000;
    bool pad_to_full_batch = false;
    /// Exact input channel count the model expects ([C, H, W] submissions
    /// are rejected up front with both numbers in the message instead of
    /// dying inside model_->forward with an opaque shape error). 0 means
    /// unknown: submit() then falls back to the weaker normalizer lower
    /// bound. The factories (`from_zoo`, `from_checkpoint`) always fill
    /// this in from their channel arguments / the checkpoint meta.
    int64_t expected_in_channels = 0;
    /// Execution-plan policy for the forward: a plan::Mode value (0 = off /
    /// interpret, 1 = on, 2 = compile-only), or -1 to read the SAUFNO_PLAN
    /// environment knob (the default). Plan-mode forwards are bit-identical
    /// to interpreted ones; any shape the tracer cannot plan falls back to
    /// the interpreter automatically.
    int plan_mode = -1;
  };

  /// Takes shared ownership of `model`, switches it to eval mode and starts
  /// the batcher thread. Without a normalizer the engine serves raw model
  /// outputs.
  InferenceEngine(std::shared_ptr<nn::Module> model, Config cfg);

  /// Same, with the fitted normalizer: submit() then takes raw W-per-pixel
  /// power maps and futures resolve to kelvin temperature fields.
  InferenceEngine(std::shared_ptr<nn::Module> model,
                  std::optional<data::Normalizer> norm, Config cfg);

  /// Build the model from the zoo (train::make_model) and, when `checkpoint`
  /// is non-empty, load weights from it. A v2 checkpoint that carries a
  /// normalizer switches the engine to raw-in/kelvin-out serving.
  static std::unique_ptr<InferenceEngine> from_zoo(
      const std::string& model_name, int64_t in_channels, int64_t out_channels,
      std::uint64_t seed, const std::string& checkpoint, Config cfg);

  /// Build the entire serving pipeline from a self-describing v2 checkpoint
  /// (train::load_deployable): model identity, weights and normalizer all
  /// come from the file.
  static std::unique_ptr<InferenceEngine> from_checkpoint(
      const std::string& checkpoint, Config cfg);

  /// Drains pending requests, then stops the batcher.
  ~InferenceEngine();
  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Thread-safe async submission of one [C, H, W] input field.
  std::future<Tensor> submit(Tensor power_map);

  /// Stop accepting work and join the batcher (idempotent; the destructor
  /// calls it). Pending requests are still served before it returns.
  void stop();

  InferenceStats stats() const;
  const Config& config() const { return cfg_; }
  bool has_normalizer() const { return norm_.has_value(); }
  /// Throws when the engine was built without one (has_normalizer() false).
  const data::Normalizer& normalizer() const;
  /// The plan runner serving this engine's forwards (mode, cache stats).
  const plan::PlanRunner& plan_runner() const { return *plan_; }

 private:
  void batcher_loop();
  void serve_batch(std::vector<InferenceRequest> batch);

  std::shared_ptr<nn::Module> model_;
  std::optional<data::Normalizer> norm_;
  Config cfg_;
  /// Compiles one plan per input shape and runs the flat instruction
  /// stream; transparently interprets when the mode or a trace failure
  /// says so.
  std::unique_ptr<plan::PlanRunner> plan_;
  RequestQueue queue_;
  std::thread batcher_;
  std::atomic<bool> stopped_{false};

  /// Per-engine latency distribution (submit -> fulfilment, ms). Lock-free
  /// to record and O(buckets) to query, replacing the seed's ring buffer
  /// that stats() copied and fully sorted under stats_m_ on every call.
  obs::Histogram latency_hist_;

  mutable std::mutex stats_m_;
  int64_t batches_ = 0;
  int64_t requests_done_ = 0;
  /// Throughput is measured over the busy window [earliest enqueue seen,
  /// latest batch completion], NOT engine lifetime: an engine that sat idle
  /// for an hour before its first request still reports its real serving
  /// rate.
  std::chrono::steady_clock::time_point window_start_;
  std::chrono::steady_clock::time_point window_end_;
  bool window_open_ = false;
};

}  // namespace runtime
}  // namespace saufno
