#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace saufno {
namespace runtime {

/// Global counters for the workspace arena (aggregated over every thread's
/// freelists). `hits` counts acquisitions served from a cached block,
/// `misses` acquisitions that had to touch the heap; a steady-state hot loop
/// should show a hit rate of 1.0 once every participating thread has warmed
/// its freelists.
struct ArenaStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t releases = 0;
  int64_t bytes_cached = 0;    // capacity currently parked in freelists
  int64_t outstanding = 0;     // blocks handed out and not yet released
  int64_t reserved_bytes = 0;  // capacity held by live plan Reservations
  int64_t reservations = 0;    // live plan Reservations
  double hit_rate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// Thread-local, size-bucketed scratch allocator for hot-loop buffers
/// (spectral transforms, im2col columns, inference batch assembly).
///
/// - Requests are rounded up to the next power-of-two bucket (min 256 B);
///   each thread keeps a bounded freelist per bucket (count- and
///   byte-budgeted), so steady-state same-thread reuse never takes a lock
///   and never calls the system allocator.
/// - `arena_release` may run on a different thread than the matching
///   `arena_acquire` (a serving future can drop its result tensor
///   anywhere); the block joins the releasing thread's freelist, and once
///   that freelist is full it overflows into a mutex-protected shared pool
///   that producer threads fall back to on a local miss — so cross-thread
///   block cycles (engine allocates, client frees) still converge to
///   allocation-free steady state instead of stranding memory on consumer
///   threads.
/// - Returned memory is UNINITIALIZED — callers that need zeros must clear
///   it themselves (Scratch::zero()).
/// - Determinism: buffer identity never feeds into numerics, so arena reuse
///   cannot perturb the bit-identical-across-thread-counts guarantee.
void* arena_acquire(std::size_t bytes);
void arena_release(void* p, std::size_t bytes);

ArenaStats arena_stats();
/// Zero the global hit/miss/release counters (test + bench hook).
void arena_reset_counters();
/// Free every block cached by the CALLING thread's freelists and drain the
/// shared overflow pool. Other threads' local caches are untouched (they
/// are only safe to free from their owning thread).
void arena_trim();

/// Whole-plan workspace reservation: ONE 64-byte-aligned block sized at
/// plan-compile time, into which the plan executor binds every temp slot
/// via Tensor::wrap_external (disjoint liveness-packed offsets). Unlike
/// arena_acquire blocks, reservations are long-lived — they live as long as
/// the executor buffer that owns them — so they are plain aligned heap
/// allocations tracked by ArenaStats::{reserved_bytes, reservations}
/// instead of freelist entries that would pin a bucket forever.
class Reservation {
 public:
  Reservation() = default;
  explicit Reservation(std::size_t bytes);
  ~Reservation();
  Reservation(Reservation&& o) noexcept;
  Reservation& operator=(Reservation&& o) noexcept;
  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;

  float* floats() { return static_cast<float*>(p_); }
  std::size_t bytes() const { return bytes_; }

 private:
  void* p_ = nullptr;
  std::size_t bytes_ = 0;
};

/// RAII typed scratch buffer backed by the workspace arena.
template <typename T>
class Scratch {
 public:
  explicit Scratch(std::size_t n)
      : n_(n), p_(static_cast<T*>(arena_acquire(n * sizeof(T)))) {}
  ~Scratch() {
    if (p_ != nullptr) arena_release(p_, n_ * sizeof(T));
  }
  Scratch(Scratch&& o) noexcept : n_(o.n_), p_(o.p_) { o.p_ = nullptr; }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  Scratch& operator=(Scratch&&) = delete;

  T* data() { return p_; }
  const T* data() const { return p_; }
  std::size_t size() const { return n_; }
  void zero() { std::memset(static_cast<void*>(p_), 0, n_ * sizeof(T)); }

 private:
  std::size_t n_;
  T* p_;
};

}  // namespace runtime
}  // namespace saufno
