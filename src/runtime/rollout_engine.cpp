#include "runtime/rollout_engine.h"

#include <algorithm>
#include <cstring>

#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/pipeline.h"
#include "tensor/tensor_ops.h"
#include "train/model_zoo.h"

namespace saufno {
namespace runtime {

RolloutSession::RolloutSession(InferenceEngine* engine,
                               const data::Normalizer* norm,
                               data::RolloutSpec spec, Tensor initial_kelvin)
    : engine_(engine), norm_(norm), spec_(spec) {
  SAUFNO_CHECK(initial_kelvin.dim() == 3 &&
                   initial_kelvin.size(0) == spec_.state_channels,
               "session needs a [C_state, H, W] kelvin start, got " +
                   shape_str(initial_kelvin.shape()));
  kelvin_state_ = std::move(initial_kelvin);
  norm_state_ = norm_->encode_targets(kelvin_state_);
}

void RolloutSession::submit_step(Tensor power_map) {
  submit_step(std::move(power_map), SubmitOptions{});
}

void RolloutSession::submit_step(Tensor power_map, SubmitOptions opts) {
  SAUFNO_CHECK(!pending_.has_value(),
               "submit_step with a step already outstanding (autoregression "
               "needs step n's result before step n+1 can start)");
  SAUFNO_CHECK(power_map.dim() == 3 &&
                   power_map.size(0) == spec_.power_channels &&
                   power_map.size(1) == norm_state_.size(1) &&
                   power_map.size(2) == norm_state_.size(2),
               "step expects a [C_power, H, W] power map matching the "
               "session resolution, got " +
                   shape_str(power_map.shape()));
  try {
    pending_ = engine_->submit(
        data::assemble_step_input(norm_state_, power_map, *norm_),
        std::move(opts));
  } catch (const ShutdownError&) {
    // Re-type with session context: the caller is driving a trajectory, not
    // the inner engine, and must learn the session is still valid (state
    // unchanged) but its server is gone.
    throw ShutdownError(
        "rollout step refused: the RolloutEngine behind this session was "
        "stopped (session at step " +
        std::to_string(steps_) + ")");
  }
}

Tensor RolloutSession::await_step() {
  SAUFNO_CHECK(pending_.has_value(), "await_step with no step submitted");
  // Consume the future BEFORE get(): if the forward threw, the exception
  // propagates here, and the session must be left re-submittable (a second
  // await on a consumed future would raise future_error instead of the
  // real diagnostic). The state is unchanged, so the caller can retry the
  // step.
  std::future<Tensor> fut = std::move(*pending_);
  pending_.reset();
  Tensor out = fut.get();
  SAUFNO_CHECK(out.dim() == 3 && out.size(0) == spec_.state_channels,
               "rollout model returned unexpected shape " +
                   shape_str(out.shape()));
  norm_state_ = std::move(out);
  kelvin_state_ = norm_->decode_targets(norm_state_);
  ++steps_;
  static obs::Counter& steps_served = obs::counter("rollout.steps");
  steps_served.add();
  return kelvin_state_;
}

RolloutEngine::RolloutEngine(std::shared_ptr<nn::Module> model,
                             data::Normalizer norm, data::RolloutSpec spec,
                             Config cfg)
    : norm_(std::move(norm)), spec_(spec), cfg_(cfg) {
  SAUFNO_CHECK(spec_.dt > 0 && spec_.state_channels >= 1 &&
                   spec_.power_channels >= 0,
               "bad rollout spec");
  // The engine serves the model RAW (no normalizer): the rollout codec
  // lives here, per session, because state and power channels encode
  // differently — InferenceEngine's power-map encoding would be wrong for
  // the fed-back temperature channels. The step codec always assembles
  // state + power + 2 coordinate channels (data::assemble_step_input), so
  // the inner engine can still validate the exact count up front.
  cfg_.engine.expected_in_channels =
      spec_.state_channels + spec_.power_channels + 2;
  engine_ = std::make_unique<InferenceEngine>(std::move(model), std::nullopt,
                                              cfg_.engine);
}

std::unique_ptr<RolloutEngine> RolloutEngine::from_checkpoint(
    const std::string& checkpoint, Config cfg) {
  Pipeline pipe = build_pipeline(checkpoint, /*require_rollout=*/true);
  return std::make_unique<RolloutEngine>(std::move(pipe.model),
                                         pipe.meta.normalizer,
                                         pipe.meta.rollout, cfg);
}

RolloutEngine::~RolloutEngine() { stop(); }

void RolloutEngine::stop() { engine_->stop(); }

std::unique_ptr<RolloutSession> RolloutEngine::open_session(
    Tensor initial_kelvin) const {
  return std::unique_ptr<RolloutSession>(new RolloutSession(
      engine_.get(), &norm_, spec_, std::move(initial_kelvin)));
}

std::vector<Tensor> RolloutEngine::run(
    const std::vector<RolloutSession*>& sessions,
    const std::vector<Tensor>& power_sequences) const {
  SAUFNO_CHECK(sessions.size() == power_sequences.size(),
               "one power sequence per session");
  const std::size_t n = sessions.size();
  std::vector<Tensor> trajectories(n);
  int64_t max_k = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const Tensor& p = power_sequences[s];
    SAUFNO_CHECK(p.dim() == 4, "power sequences are [K, C_power, H, W]");
    trajectories[s] = Tensor({p.size(0), spec_.state_channels, p.size(2),
                              p.size(3)});
    max_k = std::max(max_k, p.size(0));
  }
  static obs::Histogram& wave_ms = obs::histogram("rollout.wave_ms");
  for (int64_t k = 0; k < max_k; ++k) {
    const auto t0 = std::chrono::steady_clock::now();
    {
      // Submit the whole wave before awaiting any of it: step k of every
      // still-active session lands in the queue together and coalesces.
      SAUFNO_TRACE_SPAN("rollout.submit_wave");
      for (std::size_t s = 0; s < n; ++s) {
        if (k >= power_sequences[s].size(0)) continue;
        sessions[s]->submit_step(
            slice(power_sequences[s], 0, k, 1)
                .reshape({power_sequences[s].size(1),
                          power_sequences[s].size(2),
                          power_sequences[s].size(3)}));
      }
    }
    SAUFNO_TRACE_SPAN("rollout.await_wave");
    for (std::size_t s = 0; s < n; ++s) {
      if (k >= power_sequences[s].size(0)) continue;
      const Tensor kelvin = sessions[s]->await_step();
      const int64_t row = kelvin.numel();
      std::memcpy(trajectories[s].data() + k * row, kelvin.data(),
                  sizeof(float) * static_cast<std::size_t>(row));
    }
    wave_ms.record(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }
  return trajectories;
}

}  // namespace runtime
}  // namespace saufno
