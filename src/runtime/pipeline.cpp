#include "runtime/pipeline.h"

#include <utility>

#include "common/logging.h"
#include "train/model_zoo.h"

namespace saufno {
namespace runtime {

Pipeline build_pipeline(const std::string& checkpoint, bool require_rollout) {
  train::LoadedModel loaded = train::load_deployable(checkpoint);
  if (require_rollout) {
    SAUFNO_CHECK(loaded.meta.has_rollout,
                 "checkpoint " + checkpoint +
                     " carries no rollout spec; write it with "
                     "train::save_rollout_deployable");
    SAUFNO_CHECK(loaded.meta.has_normalizer,
                 "rollout checkpoint " + checkpoint + " has no normalizer");
  }
  return Pipeline{std::move(loaded.model), std::move(loaded.meta)};
}

}  // namespace runtime
}  // namespace saufno
