#include "runtime/inference_engine.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "runtime/pipeline.h"
#include "runtime/workspace.h"
#include "tensor/tensor_ops.h"
#include "train/model_zoo.h"

namespace saufno {
namespace runtime {
namespace {

/// Engine telemetry, aggregated across every InferenceEngine in the
/// process (each engine additionally keeps its own latency histogram for
/// per-instance stats()).
struct EngineMetrics {
  obs::Counter& requests = obs::counter("engine.requests");
  obs::Counter& batches = obs::counter("engine.batches");
  obs::Counter& batch_errors = obs::counter("engine.batch_errors");
  obs::Histogram& latency_ms = obs::histogram("engine.latency_ms");
  obs::Histogram& forward_ms = obs::histogram("engine.forward_ms");
  obs::Histogram& batch_size = obs::histogram("engine.batch_size");
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

/// Latency histogram for a power-of-two batch-size class (bs1, bs2, bs4,
/// ..., bs1024): mixed traffic shows at a glance whether full batches are
/// actually cheaper per request than stragglers.
obs::Histogram& batch_size_class_hist(int64_t bsz) {
  constexpr int kClasses = 11;  // 2^0 .. 2^10 (max_batch is capped at 1024)
  static obs::Histogram* const* hists = [] {
    static obs::Histogram* h[kClasses];
    for (int i = 0; i < kClasses; ++i) {
      h[i] = &obs::histogram("engine.latency_ms.bs" +
                             std::to_string(int64_t{1} << i));
    }
    return h;
  }();
  int cls = 0;
  while ((int64_t{1} << cls) < bsz && cls < kClasses - 1) ++cls;
  return *hists[cls];
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<nn::Module> model, Config cfg)
    : InferenceEngine(std::move(model), std::nullopt, cfg) {}

InferenceEngine::InferenceEngine(std::shared_ptr<nn::Module> model,
                                 std::optional<data::Normalizer> norm,
                                 Config cfg)
    : model_(std::move(model)), norm_(std::move(norm)), cfg_(cfg) {
  SAUFNO_CHECK(model_ != nullptr, "InferenceEngine needs a model");
  SAUFNO_CHECK(cfg_.max_batch >= 1, "max_batch must be >= 1");
  SAUFNO_CHECK(cfg_.max_wait_us >= 0, "max_wait_us must be >= 0");
  SAUFNO_CHECK(cfg_.plan_mode >= -1 && cfg_.plan_mode <= 2,
               "plan_mode must be -1 (env), 0 (off), 1 (on) or 2 "
               "(compile-only)");
  model_->set_training(false);
  const plan::Mode mode = cfg_.plan_mode < 0
                              ? plan::mode_from_env()
                              : static_cast<plan::Mode>(cfg_.plan_mode);
  plan_ = std::make_unique<plan::PlanRunner>(model_, mode);
  SAUFNO_INFO << "engine: plan mode " << plan::mode_name(mode)
              << (cfg_.plan_mode < 0 ? " (SAUFNO_PLAN)" : " (config)");
  batcher_ = std::thread([this] { batcher_loop(); });
}

std::unique_ptr<InferenceEngine> InferenceEngine::from_zoo(
    const std::string& model_name, int64_t in_channels, int64_t out_channels,
    std::uint64_t seed, const std::string& checkpoint, Config cfg) {
  auto model =
      train::make_model(model_name, in_channels, out_channels, seed);
  std::optional<data::Normalizer> norm;
  if (!checkpoint.empty()) {
    nn::CheckpointMeta meta = nn::load_checkpoint(*model, checkpoint);
    if (meta.has_normalizer) norm = meta.normalizer;
  }
  if (cfg.expected_in_channels == 0) cfg.expected_in_channels = in_channels;
  return std::make_unique<InferenceEngine>(std::move(model), std::move(norm),
                                           cfg);
}

std::unique_ptr<InferenceEngine> InferenceEngine::from_checkpoint(
    const std::string& checkpoint, Config cfg) {
  Pipeline pipe = build_pipeline(checkpoint);
  std::optional<data::Normalizer> norm;
  if (pipe.meta.has_normalizer) norm = pipe.meta.normalizer;
  if (cfg.expected_in_channels == 0) {
    cfg.expected_in_channels = pipe.meta.in_channels;
  }
  return std::make_unique<InferenceEngine>(std::move(pipe.model),
                                           std::move(norm), cfg);
}

InferenceEngine::~InferenceEngine() { stop(); }

const data::Normalizer& InferenceEngine::normalizer() const {
  SAUFNO_CHECK(norm_.has_value(),
               "engine has no normalizer (weights-only checkpoint?)");
  return *norm_;
}

std::future<Tensor> InferenceEngine::submit(Tensor power_map) {
  SAUFNO_CHECK(!stopped_.load(), "submit() after stop()");
  SAUFNO_CHECK(power_map.dim() == 3,
               "submit expects a [C, H, W] field, got " +
                   shape_str(power_map.shape()));
  const int64_t in_ch = power_map.size(0);
  if (cfg_.expected_in_channels > 0) {
    // Exact check: a wider-than-expected input used to slip past the old
    // normalizer lower bound and die inside model_->forward with an opaque
    // shape error.
    SAUFNO_CHECK(in_ch == cfg_.expected_in_channels,
                 "submit: input has " + std::to_string(in_ch) +
                     " channels but the model expects exactly " +
                     std::to_string(cfg_.expected_in_channels));
  } else {
    SAUFNO_CHECK(!norm_ || in_ch >= norm_->n_power_channels(),
                 "submit: input has " + std::to_string(in_ch) +
                     " channels but the checkpoint's normalizer scales the "
                     "first " +
                     std::to_string(norm_ ? norm_->n_power_channels() : 0) +
                     " power channels");
  }
  InferenceRequest req;
  req.input = std::move(power_map);
  req.enqueued_at = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.result.get_future();
  // push() refuses after shutdown, closing the submit/stop race: either the
  // batcher will serve this request, or the caller gets an error here.
  SAUFNO_CHECK(queue_.push(std::move(req)), "submit() raced with stop()");
  return fut;
}

void InferenceEngine::stop() {
  if (stopped_.exchange(true)) return;
  queue_.shutdown();
  if (batcher_.joinable()) batcher_.join();
}

void InferenceEngine::batcher_loop() {
  for (;;) {
    std::vector<InferenceRequest> batch;
    {
      // Dequeue covers both idle waiting and the straggler deadline, so a
      // trace shows exactly how much of a slow request was batching wait.
      SAUFNO_TRACE_SPAN("engine.dequeue");
      batch = queue_.pop_batch(static_cast<std::size_t>(cfg_.max_batch),
                               cfg_.max_wait_us);
    }
    if (batch.empty()) return;  // shutdown + drained
    serve_batch(std::move(batch));
  }
}

void InferenceEngine::serve_batch(std::vector<InferenceRequest> batch) {
  SAUFNO_TRACE_SPAN("engine.batch");
  const int64_t bsz = static_cast<int64_t>(batch.size());
  const Shape& in_shape = batch.front().input.shape();  // [C, H, W]
  const int64_t sample = numel_of(in_shape);
  const int64_t padded = cfg_.pad_to_full_batch ? cfg_.max_batch : bsz;

  // Batch assembly runs through the workspace arena: after the first batch
  // of a given shape, stacking allocates nothing.
  Tensor stacked =
      Tensor::scratch({padded, in_shape[0], in_shape[1], in_shape[2]});
  {
    SAUFNO_TRACE_SPAN("engine.assemble");
    for (int64_t i = 0; i < bsz; ++i) {
      std::memcpy(stacked.data() + i * sample,
                  batch[static_cast<std::size_t>(i)].input.data(),
                  sizeof(float) * static_cast<std::size_t>(sample));
    }
    if (padded > bsz) {
      // Scratch tensors are uninitialized; padding rows must still be zero
      // so they cannot perturb stats-free kernels or produce NaNs
      // downstream.
      std::memset(stacked.data() + bsz * sample, 0,
                  sizeof(float) *
                      static_cast<std::size_t>((padded - bsz) * sample));
    }
  }

  // Counters and the busy window move together under stats_m_ so stats()
  // sees a consistent snapshot; latency samples go to the lock-free
  // histograms outside the critical section.
  auto record_batch_done = [&](bool record_latencies) {
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      batches_ += 1;
      requests_done_ += bsz;
      for (const auto& req : batch) {
        if (!window_open_ || req.enqueued_at < window_start_) {
          window_start_ = req.enqueued_at;
          window_open_ = true;
        }
      }
      window_end_ = now;
    }
    EngineMetrics& em = engine_metrics();
    em.batches.add();
    em.requests.add(bsz);
    em.batch_size.record(static_cast<double>(bsz));
    if (!record_latencies) {
      em.batch_errors.add();
      return;
    }
    obs::Histogram& bs_hist = batch_size_class_hist(bsz);
    for (const auto& req : batch) {
      const double ms =
          std::chrono::duration<double, std::milli>(now - req.enqueued_at)
              .count();
      latency_hist_.record(ms);
      em.latency_ms.record(ms);
      bs_hist.record(ms);
    }
  };

  try {
    // Raw-in/kelvin-out: encode exactly like Trainer::predict does. Both
    // transforms are per-element affine maps, so encoding the stacked batch
    // is bit-identical to encoding each sample alone. Padding rows do NOT
    // stay zero in general — encode_inputs maps them to whatever the
    // encoder sends 0 to — and their outputs are garbage; real rows are
    // untouched because every kernel in this library is per-sample
    // independent (pinned by the padded-vs-unpadded bitwise test).
    if (norm_) {
      SAUFNO_TRACE_SPAN("engine.normalize");
      stacked = norm_->encode_inputs(stacked);
    }
    // The runner picks the path: compiled plan (flat fused instruction
    // stream, zero per-op allocation) or define-by-run interpreter under
    // its own NoGradGuard. Either way the result is bit-identical and no
    // autograd tape survives the forward.
    Tensor fwd_out = [&] {
      SAUFNO_TRACE_SPAN("engine.forward");
      const auto t0 = std::chrono::steady_clock::now();
      Tensor v = plan_->forward(stacked);
      engine_metrics().forward_ms.record(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
      return v;
    }();
    const Shape& os = fwd_out.shape();  // [padded, C_out, H, W]
    SAUFNO_CHECK(os.size() == 4 && os[0] == padded,
                 "model returned unexpected shape " + shape_str(os));
    Tensor decoded;
    {
      SAUFNO_TRACE_SPAN("engine.denormalize");
      decoded = norm_ ? norm_->decode_targets(fwd_out) : fwd_out;
    }
    const Shape result_shape{os[1], os[2], os[3]};
    const int64_t out_sample = numel_of(result_shape);
    // Record stats BEFORE fulfilling promises so a caller that observes its
    // future ready also observes this batch in stats().
    record_batch_done(/*record_latencies=*/true);
    SAUFNO_TRACE_SPAN("engine.scatter");
    for (int64_t i = 0; i < bsz; ++i) {
      // Plain heap tensors, deliberately NOT Tensor::scratch: results cross
      // the engine/client thread boundary and die wherever the caller drops
      // them. An arena-backed result released on a short-lived client
      // thread lands in that thread's freelist and is freed at thread exit
      // (worse, a release after the client's thread-local arena teardown is
      // use-after-destruction), so the engine's arena would never reach
      // allocation-free steady state. Heap storage keeps the arena cycle
      // engine-side only.
      Tensor result(result_shape);
      std::memcpy(result.data(), decoded.data() + i * out_sample,
                  sizeof(float) * static_cast<std::size_t>(out_sample));
      batch[static_cast<std::size_t>(i)].result.set_value(std::move(result));
    }
  } catch (...) {
    const std::exception_ptr e = std::current_exception();
    record_batch_done(/*record_latencies=*/false);
    for (auto& req : batch) req.result.set_exception(e);
  }
}

InferenceStats InferenceEngine::stats() const {
  InferenceStats s;
  {
    // The lock covers only the scalar counters + busy window; percentiles
    // come from the histogram outside it (the seed copied AND fully sorted
    // an 8192-entry ring under this mutex on every call, stalling the
    // batcher's completion path whenever anyone polled stats).
    std::lock_guard<std::mutex> lk(stats_m_);
    s.requests = requests_done_;
    s.batches = batches_;
    // Busy window only — an engine idle before its first request (or after
    // its last batch) reports its actual serving rate, not a lifetime
    // average diluted by idle time.
    s.wall_seconds =
        window_open_
            ? std::chrono::duration<double>(window_end_ - window_start_).count()
            : 0.0;
  }
  s.avg_batch_size =
      s.batches > 0 ? static_cast<double>(s.requests) / s.batches : 0.0;
  s.throughput_rps =
      s.wall_seconds > 0.0 ? static_cast<double>(s.requests) / s.wall_seconds
                           : 0.0;
  s.latency_p50_ms = latency_hist_.quantile(0.50);
  s.latency_p95_ms = latency_hist_.quantile(0.95);
  s.latency_p99_ms = latency_hist_.quantile(0.99);
  s.latency_max_ms = latency_hist_.max();
  const ArenaStats arena = arena_stats();
  s.arena_hits = arena.hits;
  s.arena_misses = arena.misses;
  s.arena_hit_rate = arena.hit_rate();
  return s;
}

}  // namespace runtime
}  // namespace saufno
