#include "runtime/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/env.h"
#include "common/fault.h"
#include "common/logging.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "runtime/pipeline.h"
#include "runtime/task_group.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace.h"
#include "tensor/tensor_ops.h"
#include "train/model_zoo.h"

namespace saufno {
namespace runtime {
namespace {

/// Engine telemetry, aggregated across every InferenceEngine in the
/// process (each engine additionally keeps its own latency histogram for
/// per-instance stats()).
struct EngineMetrics {
  obs::Counter& requests = obs::counter("engine.requests");
  obs::Counter& batches = obs::counter("engine.batches");
  obs::Counter& batch_errors = obs::counter("engine.batch_errors");
  obs::Counter& rejected = obs::counter("engine.rejected");
  obs::Counter& shed_bytes = obs::counter("engine.shed_bytes");
  obs::Counter& deadline_expired = obs::counter("engine.deadline_expired");
  obs::Counter& cancelled = obs::counter("engine.cancelled");
  obs::Counter& isolation_splits = obs::counter("engine.isolation_splits");
  obs::Counter& isolated_failures = obs::counter("engine.isolated_failures");
  obs::Counter& nonfinite_outputs = obs::counter("engine.nonfinite_outputs");
  obs::Counter& plan_degraded = obs::counter("engine.plan_degraded");
  obs::Counter& watchdog_trips = obs::counter("engine.watchdog_trips");
  obs::Counter& drains = obs::counter("engine.drains");
  obs::Histogram& latency_ms = obs::histogram("engine.latency_ms");
  obs::Histogram& forward_ms = obs::histogram("engine.forward_ms");
  obs::Histogram& batch_size = obs::histogram("engine.batch_size");
  obs::Histogram& retry_after_ms = obs::histogram("engine.retry_after_ms");
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

/// Latency histogram for a power-of-two batch-size class (bs1, bs2, bs4,
/// ..., bs1024): mixed traffic shows at a glance whether full batches are
/// actually cheaper per request than stragglers.
obs::Histogram& batch_size_class_hist(int64_t bsz) {
  constexpr int kClasses = 11;  // 2^0 .. 2^10 (max_batch is capped at 1024)
  static obs::Histogram* const* hists = [] {
    static obs::Histogram* h[kClasses];
    for (int i = 0; i < kClasses; ++i) {
      h[i] = &obs::histogram("engine.latency_ms.bs" +
                             std::to_string(int64_t{1} << i));
    }
    return h;
  }();
  int cls = 0;
  while ((int64_t{1} << cls) < bsz && cls < kClasses - 1) ++cls;
  return *hists[cls];
}

/// Index of the first NaN/Inf in p[0, n), or -1 when all values are finite.
int64_t find_nonfinite(const float* p, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) return i;
  }
  return -1;
}

std::uint64_t double_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double bits_double(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<nn::Module> model, Config cfg)
    : InferenceEngine(std::move(model), std::nullopt, cfg) {}

InferenceEngine::InferenceEngine(std::shared_ptr<nn::Module> model,
                                 std::optional<data::Normalizer> norm,
                                 Config cfg)
    : model_(std::move(model)), norm_(std::move(norm)), cfg_(cfg) {
  SAUFNO_CHECK(model_ != nullptr, "InferenceEngine needs a model");
  SAUFNO_CHECK(cfg_.max_batch >= 1, "max_batch must be >= 1");
  SAUFNO_CHECK(cfg_.max_wait_us >= 0, "max_wait_us must be >= 0");
  SAUFNO_CHECK(cfg_.plan_mode >= -1 && cfg_.plan_mode <= 2,
               "plan_mode must be -1 (env), 0 (off), 1 (on) or 2 "
               "(compile-only)");
  SAUFNO_CHECK(cfg_.shard_capacity >= 0, "shard_capacity must be >= 0");
  SAUFNO_CHECK(cfg_.watchdog_timeout_ms >= 0,
               "watchdog_timeout_ms must be >= 0 (0 disables)");
  model_->set_training(false);
  const plan::Mode mode = cfg_.plan_mode < 0
                              ? plan::mode_from_env()
                              : static_cast<plan::Mode>(cfg_.plan_mode);
  plan_ = std::make_unique<plan::PlanRunner>(model_, mode);
  // Resolve the admission-control bound: config wins; -1 defers to the
  // SAUFNO_QUEUE_CAP knob (default 1024); 0 means unbounded. config() then
  // reports the resolved value.
  if (cfg_.queue_capacity < 0) {
    cfg_.queue_capacity = env_int_in_range("SAUFNO_QUEUE_CAP", 1024, 0,
                                           1 << 20);
  }
  queue_.set_capacity(static_cast<std::size_t>(cfg_.queue_capacity),
                      static_cast<std::size_t>(cfg_.shard_capacity));
  batch_ms_ewma_bits_.store(double_bits(1.0), std::memory_order_relaxed);
  SAUFNO_INFO << "engine: plan mode " << plan::mode_name(mode)
              << (cfg_.plan_mode < 0 ? " (SAUFNO_PLAN)" : " (config)")
              << ", queue capacity "
              << (cfg_.queue_capacity > 0 ? std::to_string(cfg_.queue_capacity)
                                          : std::string("unbounded"))
              << ", watchdog "
              << (cfg_.watchdog_timeout_ms > 0
                      ? std::to_string(cfg_.watchdog_timeout_ms) + " ms"
                      : std::string("off"));
  batcher_ = std::thread([this] { batcher_loop(); });
  if (cfg_.watchdog_timeout_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

std::unique_ptr<InferenceEngine> InferenceEngine::from_zoo(
    const std::string& model_name, int64_t in_channels, int64_t out_channels,
    std::uint64_t seed, const std::string& checkpoint, Config cfg) {
  auto model =
      train::make_model(model_name, in_channels, out_channels, seed);
  std::optional<data::Normalizer> norm;
  if (!checkpoint.empty()) {
    nn::CheckpointMeta meta = nn::load_checkpoint(*model, checkpoint);
    if (meta.has_normalizer) norm = meta.normalizer;
  }
  if (cfg.expected_in_channels == 0) cfg.expected_in_channels = in_channels;
  return std::make_unique<InferenceEngine>(std::move(model), std::move(norm),
                                           cfg);
}

std::unique_ptr<InferenceEngine> InferenceEngine::from_checkpoint(
    const std::string& checkpoint, Config cfg) {
  Pipeline pipe = build_pipeline(checkpoint);
  std::optional<data::Normalizer> norm;
  if (pipe.meta.has_normalizer) norm = pipe.meta.normalizer;
  if (cfg.expected_in_channels == 0) {
    cfg.expected_in_channels = pipe.meta.in_channels;
  }
  return std::make_unique<InferenceEngine>(std::move(pipe.model),
                                           std::move(norm), cfg);
}

InferenceEngine::~InferenceEngine() { stop(); }

const data::Normalizer& InferenceEngine::normalizer() const {
  SAUFNO_CHECK(norm_.has_value(),
               "engine has no normalizer (weights-only checkpoint?)");
  return *norm_;
}

std::future<Tensor> InferenceEngine::submit(Tensor power_map) {
  return submit(std::move(power_map), SubmitOptions{});
}

std::future<Tensor> InferenceEngine::submit(Tensor power_map,
                                            SubmitOptions opts) {
  if (stopped_.load(std::memory_order_acquire)) {
    throw ShutdownError("submit() refused: engine is stopped");
  }
  if (draining_.load(std::memory_order_acquire)) {
    throw ShutdownError("submit() refused: engine is draining");
  }
  const int64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  auto who = [&] {
    return " [request seq=" + std::to_string(seq) + " shape=" +
           shape_str(power_map.shape()) + "]";
  };
  if (power_map.dim() != 3) {
    throw RequestError("submit expects a [C, H, W] field, got " +
                       shape_str(power_map.shape()) + who());
  }
  const int64_t in_ch = power_map.size(0);
  if (cfg_.expected_in_channels > 0) {
    // Exact check: a wider-than-expected input used to slip past the old
    // normalizer lower bound and die inside model_->forward with an opaque
    // shape error.
    if (in_ch != cfg_.expected_in_channels) {
      throw RequestError("submit: input has " + std::to_string(in_ch) +
                         " channels but the model expects exactly " +
                         std::to_string(cfg_.expected_in_channels) + who());
    }
  } else if (norm_ && in_ch < norm_->n_power_channels()) {
    throw RequestError(
        "submit: input has " + std::to_string(in_ch) +
        " channels but the checkpoint's normalizer scales the first " +
        std::to_string(norm_->n_power_channels()) + " power channels" + who());
  }
  if (cfg_.validate_finite) {
    // Reject poison at the door: a NaN input would otherwise contaminate
    // only its own rows (every kernel is per-sample independent), but the
    // caller deserves the diagnosis at submit, not a batch-time autopsy.
    const int64_t bad = find_nonfinite(power_map.data(),
                                       numel_of(power_map.shape()));
    if (bad >= 0) {
      throw RequestError("submit: non-finite input value at flat index " +
                         std::to_string(bad) + who());
    }
  }

  InferenceRequest req;
  req.input = std::move(power_map);
  req.result = std::make_shared<ResultSlot>();
  req.enqueued_at = std::chrono::steady_clock::now();
  req.opts = std::move(opts);
  req.seq = seq;
  const int64_t bytes =
      numel_of(req.input.shape()) * static_cast<int64_t>(sizeof(float));
  std::future<Tensor> fut = req.result->get_future();
  // push() refuses after shutdown and over capacity, closing both the
  // submit/stop race and unbounded backlog growth: either the batcher will
  // serve this request, or the caller gets a typed error here.
  const RequestQueue::PushResult pr = queue_.push(std::move(req));
  switch (pr.status) {
    case RequestQueue::PushStatus::kAccepted:
      return fut;
    case RequestQueue::PushStatus::kShutdown:
      throw ShutdownError("submit() raced with stop()");
    case RequestQueue::PushStatus::kQueueFull:
    case RequestQueue::PushStatus::kShardFull: {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      EngineMetrics& em = engine_metrics();
      em.rejected.add();
      em.shed_bytes.add(bytes);
      const double retry_ms = estimated_retry_after_ms();
      em.retry_after_ms.record(retry_ms);
      const bool shard = pr.status == RequestQueue::PushStatus::kShardFull;
      throw OverloadedError(
          "engine overloaded: " +
              std::string(shard ? "shape shard" : "queue") + " at capacity " +
              std::to_string(shard && cfg_.shard_capacity > 0
                                 ? cfg_.shard_capacity
                                 : cfg_.queue_capacity) +
              " (backlog " + std::to_string(pr.depth) +
              "); retry after ~" + std::to_string(retry_ms) + " ms" + who(),
          retry_ms);
    }
  }
  throw EngineError("unreachable push status");  // keeps -Wreturn-type quiet
}

double InferenceEngine::estimated_retry_after_ms() const {
  // Backlog in batches ahead of a would-be arrival, times the EWMA of
  // recent per-batch serve time. Deliberately simple: the hint only has to
  // be the right order of magnitude for a client backoff loop.
  const double ewma = std::max(
      bits_double(batch_ms_ewma_bits_.load(std::memory_order_relaxed)), 0.01);
  const double depth = static_cast<double>(queue_.size());
  const double batches_ahead =
      std::floor(depth / static_cast<double>(cfg_.max_batch)) + 1.0;
  return batches_ahead * ewma;
}

void InferenceEngine::stop() {
  if (stopped_.exchange(true)) return;
  queue_.shutdown();
  if (batcher_.joinable()) batcher_.join();
  {
    // Empty critical section: pairs the notify with the watchdog's
    // predicate check so the wakeup cannot be lost.
    std::lock_guard<std::mutex> lk(inflight_m_);
  }
  drain_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

std::size_t InferenceEngine::drain(std::chrono::milliseconds timeout) {
  draining_.store(true, std::memory_order_release);
  engine_metrics().drains.add();
  {
    // Wait for the already-admitted work to finish: queue empty and no
    // batch in flight (the batcher notifies after every batch).
    std::unique_lock<std::mutex> lk(inflight_m_);
    drain_cv_.wait_for(lk, timeout, [this] {
      return batcher_done_.load(std::memory_order_acquire) ||
             (busy_since_ns_.load(std::memory_order_acquire) == 0 &&
              queue_.size() == 0);
    });
  }
  // Whatever is still queued missed the timeout: resolve those stragglers
  // with ShutdownError so no client is left waiting on a dead engine.
  // Pre-count the backlog before failing it (count-before-resolve rule:
  // a client that observes the error must observe it in stats() too),
  // then reconcile against what fail_pending actually completed — the
  // batcher may still pop a few for service in between.
  const std::size_t backlog = queue_.size();
  if (backlog > 0) {
    std::lock_guard<std::mutex> lk(stats_m_);
    requests_failed_ += static_cast<int64_t>(backlog);
  }
  const std::size_t failed = queue_.fail_pending(std::make_exception_ptr(
      ShutdownError("engine drained: request not served within the drain "
                    "timeout")));
  if (failed != backlog) {
    std::lock_guard<std::mutex> lk(stats_m_);
    requests_failed_ += static_cast<int64_t>(failed) -
                        static_cast<int64_t>(backlog);
  }
  stop();
  return failed;
}

void InferenceEngine::batcher_loop() {
  for (;;) {
    std::vector<InferenceRequest> batch;
    {
      // Dequeue covers both idle waiting and the straggler deadline, so a
      // trace shows exactly how much of a slow request was batching wait.
      SAUFNO_TRACE_SPAN("engine.dequeue");
      batch = queue_.pop_batch(static_cast<std::size_t>(cfg_.max_batch),
                               cfg_.max_wait_us);
    }
    if (batch.empty()) break;  // shutdown + drained
    serve_batch(std::move(batch));
  }
  batcher_done_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(inflight_m_);
  }
  drain_cv_.notify_all();
}

void InferenceEngine::serve_batch(std::vector<InferenceRequest> batch) {
  SAUFNO_TRACE_SPAN("engine.batch");
  // Pre-forward reap: deadline/cancel state may have moved since dequeue
  // (the straggler wait alone can be the whole max_wait_us). Doomed
  // requests must not burn forward compute.
  {
    const auto now = std::chrono::steady_clock::now();
    std::size_t keep = 0;
    for (auto& req : batch) {
      if (req.cancelled()) {
        complete_error(req, std::make_exception_ptr(CancelledError(
                                "request cancelled before forward [" +
                                request_desc(req) + "]")));
      } else if (req.expired(now)) {
        complete_error(req, std::make_exception_ptr(DeadlineExceededError(
                                "deadline exceeded before forward [" +
                                request_desc(req) + "]")));
      } else {
        // Guard the self-move: with nothing reaped yet, req IS batch[keep],
        // and a self-move-assignment would empty the tensor.
        if (&batch[keep] != &req) batch[keep] = std::move(req);
        ++keep;
      }
    }
    batch.resize(keep);
  }
  if (batch.empty()) return;

  note_batch_window(batch, 0, batch.size());

  // Publish the in-flight batch to the watchdog before any model code runs:
  // if the forward wedges, the watchdog completes exactly these slots.
  {
    std::lock_guard<std::mutex> lk(inflight_m_);
    inflight_slots_.clear();
    for (const auto& req : batch) inflight_slots_.push_back(req.result);
  }
  busy_since_ns_.store(now_ns(), std::memory_order_release);

  const auto t0 = std::chrono::steady_clock::now();
  execute_range(batch, 0, batch.size(), /*depth=*/0);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  // Single writer (this thread); readers only ever load. EWMA alpha 0.2
  // follows load shifts within ~5 batches without jittering the hint.
  const double prev =
      bits_double(batch_ms_ewma_bits_.load(std::memory_order_relaxed));
  batch_ms_ewma_bits_.store(double_bits(0.8 * prev + 0.2 * ms),
                            std::memory_order_relaxed);

  busy_since_ns_.store(0, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(inflight_m_);
    inflight_slots_.clear();
  }
  drain_cv_.notify_all();
}

void InferenceEngine::execute_range(std::vector<InferenceRequest>& batch,
                                    std::size_t lo, std::size_t hi,
                                    int depth) {
  if (lo >= hi) return;
  std::string what;
  try {
    forward_and_deliver(batch, lo, hi);
    return;
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
    what = "unknown exception";
  }
  EngineMetrics& em = engine_metrics();
  if (depth == 0) em.batch_errors.add();
  if (hi - lo == 1) {
    // Isolated to one request: fail it, by name, and nobody else.
    em.isolated_failures.add();
    complete_error(batch[lo],
                   std::make_exception_ptr(RequestError(
                       "inference failed: " + what + " [" +
                       request_desc(batch[lo]) + "]")));
    return;
  }
  if (!cfg_.isolate_faults || depth > 12) {
    // Fan the failure out — but still name every request it lands on
    // (an anonymous batch-wide error was the old, useless behavior).
    for (std::size_t i = lo; i < hi; ++i) {
      complete_error(batch[i],
                     std::make_exception_ptr(RequestError(
                         "batch forward failed: " + what + " [" +
                         request_desc(batch[i]) + ", in a batch of " +
                         std::to_string(hi - lo) + "]")));
    }
    return;
  }
  // Bisect and retry each half: log2(B) extra forwards in the worst case,
  // and only the culpable request(s) end with the exception.
  em.isolation_splits.add();
  const std::size_t mid = lo + (hi - lo) / 2;
  execute_range(batch, lo, mid, depth + 1);
  execute_range(batch, mid, hi, depth + 1);
}

namespace {

/// Number of row partitions for one batched forward. Explicit config wins;
/// 0 defers to SAUFNO_BATCH_PARTITIONS, else to an auto heuristic: the
/// largest divisor of the batch that fits the pool lanes with at least 2
/// rows per partition. Whatever the source, the count is rounded down to a
/// divisor of the batch so every partition runs the SAME plan shape (one
/// extra compile, ever) and tiny batches never shatter into per-row
/// forwards.
int64_t resolve_batch_partitions(int64_t configured, int64_t padded) {
  int64_t p = configured;
  if (p == 0) {
    static const int env_p =
        env_int_in_range("SAUFNO_BATCH_PARTITIONS", 0, 0, 1024);
    p = env_p;
  }
  if (p == 0) {
    p = std::min<int64_t>(ThreadPool::instance().num_threads(), padded / 2);
  }
  p = std::max<int64_t>(1, std::min<int64_t>(p, padded));
  while (padded % p != 0) --p;
  return p;
}

}  // namespace

void InferenceEngine::forward_and_deliver(std::vector<InferenceRequest>& batch,
                                          std::size_t lo, std::size_t hi) {
  const int64_t bsz = static_cast<int64_t>(hi - lo);
  const Shape& in_shape = batch[lo].input.shape();  // [C, H, W]
  const int64_t sample = numel_of(in_shape);
  const int64_t padded =
      cfg_.pad_to_full_batch ? std::max<int64_t>(cfg_.max_batch, bsz) : bsz;

  // Batch assembly runs through the workspace arena: after the first batch
  // of a given shape, stacking allocates nothing.
  Tensor stacked =
      Tensor::scratch({padded, in_shape[0], in_shape[1], in_shape[2]});
  {
    SAUFNO_TRACE_SPAN("engine.assemble");
    for (int64_t i = 0; i < bsz; ++i) {
      std::memcpy(stacked.data() + i * sample,
                  batch[lo + static_cast<std::size_t>(i)].input.data(),
                  sizeof(float) * static_cast<std::size_t>(sample));
    }
    if (padded > bsz) {
      // Scratch tensors are uninitialized; padding rows must still be zero
      // so they cannot perturb stats-free kernels or produce NaNs
      // downstream.
      std::memset(stacked.data() + bsz * sample, 0,
                  sizeof(float) *
                      static_cast<std::size_t>((padded - bsz) * sample));
    }
  }

  SAUFNO_FAULT_POINT("forward");

  // Raw-in/kelvin-out: encode exactly like Trainer::predict does. Both
  // transforms are per-element affine maps, so encoding the stacked batch
  // is bit-identical to encoding each sample alone. Padding rows do NOT
  // stay zero in general — encode_inputs maps them to whatever the
  // encoder sends 0 to — and their outputs are garbage; real rows are
  // untouched because every kernel in this library is per-sample
  // independent (pinned by the padded-vs-unpadded bitwise test).
  if (norm_) {
    SAUFNO_TRACE_SPAN("engine.normalize");
    stacked = norm_->encode_inputs(stacked);
  }
  // The runner picks the path: compiled plan (flat fused instruction
  // stream, zero per-op allocation) or define-by-run interpreter under
  // its own NoGradGuard. Either way the result is bit-identical and no
  // autograd tape survives the forward.
  //
  // With batch partitioning the batch is split into contiguous row ranges
  // and each range runs as its OWN forward on a TaskGroup task (ops inside
  // a partition still decompose — intra-op x inter-batch). Every kernel is
  // per-sample independent (pinned by the padded-vs-unpadded and
  // partitioned-vs-not bitwise tests), so forwarding rows [r0, r1) alone
  // and concatenating in row order is bit-identical to one whole-batch
  // forward.
  const int64_t parts = resolve_batch_partitions(cfg_.batch_partitions, padded);
  Tensor fwd_out = [&] {
    SAUFNO_TRACE_SPAN("engine.forward");
    const auto t0 = std::chrono::steady_clock::now();
    Tensor v;
    if (parts <= 1) {
      v = plan_->forward(stacked);
    } else {
      const int64_t rows = padded / parts;  // parts divides padded (resolver)
      std::vector<Tensor> outs(static_cast<std::size_t>(parts));
      {
        TaskGroup g;
        for (int64_t pi = 1; pi < parts; ++pi) {
          g.run([&, pi] {
            Tensor part = Tensor::wrap_external(
                stacked.data() + pi * rows * sample,
                {rows, in_shape[0], in_shape[1], in_shape[2]});
            outs[static_cast<std::size_t>(pi)] = plan_->forward(part);
          });
        }
        Tensor part0 = Tensor::wrap_external(
            stacked.data(), {rows, in_shape[0], in_shape[1], in_shape[2]});
        outs[0] = plan_->forward(part0);
        g.wait();
      }
      const Shape& ps = outs[0].shape();  // [rows, C_out, H, W]
      SAUFNO_CHECK(ps.size() == 4 && ps[0] == rows,
                   "partitioned forward returned unexpected shape " +
                       shape_str(ps));
      const int64_t part_numel = numel_of(ps);
      v = Tensor({padded, ps[1], ps[2], ps[3]});
      for (int64_t pi = 0; pi < parts; ++pi) {
        const Tensor& o = outs[static_cast<std::size_t>(pi)];
        SAUFNO_CHECK(o.shape() == ps,
                     "partitioned forward shape mismatch across partitions");
        std::memcpy(v.data() + pi * part_numel, o.data(),
                    sizeof(float) * static_cast<std::size_t>(part_numel));
      }
    }
    engine_metrics().forward_ms.record(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return v;
  }();
  const Shape& os = fwd_out.shape();  // [padded, C_out, H, W]
  SAUFNO_CHECK(os.size() == 4 && os[0] == padded,
               "model returned unexpected shape " + shape_str(os));
  const int64_t out_sample = os[1] * os[2] * os[3];

  // Output guard: a forward that RETURNED can still carry poison (NaN/Inf
  // from a numeric bug or an injected fault). Degradation policy: if the
  // compiled-plan path produced it, replay once through the interpreter —
  // a plan bug must not fail requests the interpreter can serve — then
  // fail only the still-poisoned rows, never the engine.
  std::vector<char> dead(static_cast<std::size_t>(bsz), 0);
  if (cfg_.output_guard) {
    auto scan = [&](const Tensor& t) {
      std::vector<int64_t> bad;
      for (int64_t i = 0; i < bsz; ++i) {
        if (find_nonfinite(t.data() + i * out_sample, out_sample) >= 0) {
          bad.push_back(i);
        }
      }
      return bad;
    };
    std::vector<int64_t> bad = scan(fwd_out);
    if (!bad.empty() && plan_->mode() == plan::Mode::kOn) {
      engine_metrics().plan_degraded.add();
      SAUFNO_WARN << "engine: non-finite output in " << bad.size() << "/"
                  << bsz << " rows from the plan path; retrying this batch "
                  << "through the interpreter";
      Tensor retry = plan_->forward_interpreted(stacked);
      SAUFNO_CHECK(retry.shape() == os,
                   "interpreter retry returned a different shape " +
                       shape_str(retry.shape()));
      fwd_out = std::move(retry);
      bad = scan(fwd_out);
    }
    for (const int64_t i : bad) {
      engine_metrics().nonfinite_outputs.add();
      dead[static_cast<std::size_t>(i)] = 1;
      complete_error(batch[lo + static_cast<std::size_t>(i)],
                     std::make_exception_ptr(RequestError(
                         "non-finite value in model output [" +
                         request_desc(batch[lo + static_cast<std::size_t>(i)]) +
                         "]")));
    }
  }

  Tensor decoded;
  {
    SAUFNO_TRACE_SPAN("engine.denormalize");
    decoded = norm_ ? norm_->decode_targets(fwd_out) : fwd_out;
  }
  const Shape result_shape{os[1], os[2], os[3]};
  SAUFNO_TRACE_SPAN("engine.scatter");
  for (int64_t i = 0; i < bsz; ++i) {
    if (dead[static_cast<std::size_t>(i)]) continue;
    // Plain heap tensors, deliberately NOT Tensor::scratch: results cross
    // the engine/client thread boundary and die wherever the caller drops
    // them. An arena-backed result released on a short-lived client
    // thread lands in that thread's freelist and is freed at thread exit
    // (worse, a release after the client's thread-local arena teardown is
    // use-after-destruction), so the engine's arena would never reach
    // allocation-free steady state. Heap storage keeps the arena cycle
    // engine-side only.
    Tensor result(result_shape);
    std::memcpy(result.data(), decoded.data() + i * out_sample,
                sizeof(float) * static_cast<std::size_t>(out_sample));
    complete_value(batch[lo + static_cast<std::size_t>(i)], std::move(result),
                   bsz);
  }
}

void InferenceEngine::complete_value(InferenceRequest& req, Tensor result,
                                     int64_t batch_rows) {
  const auto now = std::chrono::steady_clock::now();
  // Last line of the deadline contract: a future never resolves with a
  // value after its deadline, even if the result is sitting right here.
  if (req.cancelled()) {
    complete_error(req, std::make_exception_ptr(CancelledError(
                            "request cancelled before delivery [" +
                            request_desc(req) + "]")));
    return;
  }
  if (req.expired(now)) {
    complete_error(req, std::make_exception_ptr(DeadlineExceededError(
                            "deadline exceeded before delivery [" +
                            request_desc(req) + "]")));
    return;
  }
  // Record stats BEFORE fulfilling the promise so a caller that observes
  // its future ready also observes this request in stats().
  const double ms =
      std::chrono::duration<double, std::milli>(now - req.enqueued_at).count();
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    requests_done_ += 1;
    window_end_ = now;
  }
  EngineMetrics& em = engine_metrics();
  em.requests.add();
  latency_hist_.record(ms);
  em.latency_ms.record(ms);
  batch_size_class_hist(batch_rows).record(ms);
  if (!req.result->try_value(std::move(result))) {
    // The watchdog beat us to this slot and counted it as failed; the
    // client saw an error, so undo the optimistic value count.
    std::lock_guard<std::mutex> lk(stats_m_);
    requests_done_ -= 1;
  }
}

void InferenceEngine::complete_error(InferenceRequest& req,
                                     std::exception_ptr e) {
  // Classify for the typed counters; error completions are rare enough
  // that the rethrow costs nothing that matters.
  enum Kind { kFailed, kExpired, kCancelled };
  Kind kind = kFailed;
  try {
    std::rethrow_exception(e);
  } catch (const DeadlineExceededError&) {
    kind = kExpired;
  } catch (const CancelledError&) {
    kind = kCancelled;
  } catch (...) {
  }
  EngineMetrics& em = engine_metrics();
  const auto now = std::chrono::steady_clock::now();
  // Count BEFORE resolving the promise (same rule as complete_value): a
  // caller that observes its future ready must also observe this request
  // in stats(). Undone below if another resolver beat us to the slot.
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    window_end_ = now;
    if (kind == kExpired) {
      requests_expired_ += 1;
    } else if (kind == kCancelled) {
      requests_cancelled_ += 1;
    } else {
      requests_failed_ += 1;
    }
  }
  if (kind == kExpired) em.deadline_expired.add();
  if (kind == kCancelled) em.cancelled.add();
  if (!req.result->try_error(e)) {
    // Queue/watchdog already resolved this slot and counted it; undo.
    if (kind == kExpired) em.deadline_expired.add(-1);
    if (kind == kCancelled) em.cancelled.add(-1);
    std::lock_guard<std::mutex> lk(stats_m_);
    if (kind == kExpired) {
      requests_expired_ -= 1;
    } else if (kind == kCancelled) {
      requests_cancelled_ -= 1;
    } else {
      requests_failed_ -= 1;
    }
  }
}

void InferenceEngine::note_batch_window(
    const std::vector<InferenceRequest>& batch, std::size_t lo,
    std::size_t hi) {
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    batches_ += 1;
    for (std::size_t i = lo; i < hi; ++i) {
      if (!window_open_ || batch[i].enqueued_at < window_start_) {
        window_start_ = batch[i].enqueued_at;
        window_open_ = true;
      }
    }
    window_end_ = now;
  }
  EngineMetrics& em = engine_metrics();
  em.batches.add();
  em.batch_size.record(static_cast<double>(hi - lo));
}

void InferenceEngine::watchdog_loop() {
  const int64_t timeout_ns = cfg_.watchdog_timeout_ms * 1000000;
  // Poll a few times per timeout window; the cv wait doubles as the prompt
  // exit path (stop()/batcher exit notify under inflight_m_).
  const auto poll = std::chrono::milliseconds(
      std::max<int64_t>(1, std::min<int64_t>(cfg_.watchdog_timeout_ms / 4,
                                             250)));
  std::unique_lock<std::mutex> lk(inflight_m_);
  for (;;) {
    if (stopped_.load(std::memory_order_acquire) ||
        batcher_done_.load(std::memory_order_acquire)) {
      return;
    }
    drain_cv_.wait_for(lk, poll);
    if (stopped_.load(std::memory_order_acquire) ||
        batcher_done_.load(std::memory_order_acquire)) {
      return;
    }
    const int64_t busy = busy_since_ns_.load(std::memory_order_acquire);
    if (busy == 0 || now_ns() - busy < timeout_ns) continue;

    // The batcher has been inside ONE batch longer than any legitimate
    // forward takes. Hanging clients forever is the worst failure mode a
    // serving process has — fail their futures instead, close admissions,
    // and leave the wedged thread to whatever it is stuck on.
    engine_metrics().watchdog_trips.add();
    draining_.store(true, std::memory_order_release);
    std::vector<std::shared_ptr<ResultSlot>> slots = inflight_slots_;
    lk.unlock();
    const auto err = std::make_exception_ptr(EngineError(
        "watchdog: batcher made no progress for " +
        std::to_string(cfg_.watchdog_timeout_ms) +
        " ms; failing in-flight and queued requests (engine is now closed "
        "to new submissions)"));
    // Count each request as failed BEFORE resolving its future so a client
    // that observes the error also observes it in stats(); roll back the
    // ones another resolver won.
    std::size_t failed = 0;
    for (const auto& s : slots) {
      {
        std::lock_guard<std::mutex> slk(stats_m_);
        requests_failed_ += 1;
      }
      if (s->try_error(err)) {
        ++failed;
      } else {
        std::lock_guard<std::mutex> slk(stats_m_);
        requests_failed_ -= 1;
      }
    }
    // Admissions are closed (draining_) and the batcher is wedged, so the
    // backlog can only be resolved by fail_pending below: pre-count it,
    // then reconcile against what fail_pending actually completed.
    const std::size_t backlog = queue_.size();
    {
      std::lock_guard<std::mutex> slk(stats_m_);
      requests_failed_ += static_cast<int64_t>(backlog);
    }
    const std::size_t failed_queued = queue_.fail_pending(err);
    if (failed_queued != backlog) {
      std::lock_guard<std::mutex> slk(stats_m_);
      requests_failed_ += static_cast<int64_t>(failed_queued) -
                          static_cast<int64_t>(backlog);
    }
    failed += failed_queued;
    SAUFNO_WARN << "engine watchdog tripped after "
                << cfg_.watchdog_timeout_ms << " ms; failed " << failed
                << " pending futures";
    return;  // terminal: one trip closes the engine to new work
  }
}

InferenceStats InferenceEngine::stats() const {
  InferenceStats s;
  {
    // The lock covers only the scalar counters + busy window; percentiles
    // come from the histogram outside it (the seed copied AND fully sorted
    // an 8192-entry ring under this mutex on every call, stalling the
    // batcher's completion path whenever anyone polled stats).
    std::lock_guard<std::mutex> lk(stats_m_);
    s.requests = requests_done_;
    s.failed = requests_failed_;
    s.expired = requests_expired_;
    s.cancelled = requests_cancelled_;
    s.batches = batches_;
    // Busy window only — an engine idle before its first request (or after
    // its last batch) reports its actual serving rate, not a lifetime
    // average diluted by idle time.
    s.wall_seconds =
        window_open_
            ? std::chrono::duration<double>(window_end_ - window_start_).count()
            : 0.0;
  }
  s.rejected = rejected_.load(std::memory_order_relaxed);
  // Dequeue-time reaps happen inside the queue; fold them in so expired/
  // cancelled mean "futures resolved with that error", wherever resolved.
  s.expired += queue_.expired_count();
  s.cancelled += queue_.cancelled_count();
  s.avg_batch_size =
      s.batches > 0 ? static_cast<double>(s.requests) / s.batches : 0.0;
  s.throughput_rps =
      s.wall_seconds > 0.0 ? static_cast<double>(s.requests) / s.wall_seconds
                           : 0.0;
  s.latency_p50_ms = latency_hist_.quantile(0.50);
  s.latency_p95_ms = latency_hist_.quantile(0.95);
  s.latency_p99_ms = latency_hist_.quantile(0.99);
  s.latency_max_ms = latency_hist_.max();
  const ArenaStats arena = arena_stats();
  s.arena_hits = arena.hits;
  s.arena_misses = arena.misses;
  s.arena_hit_rate = arena.hit_rate();
  return s;
}

}  // namespace runtime
}  // namespace saufno
