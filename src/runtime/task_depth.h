#pragma once

// Internal to the task runtime (parallel_for.cpp, task_group.cpp): the
// per-thread nesting depth that structured parallel constructs share, and
// the knobs that bound decomposition. Not part of the public API — kernels
// query runtime::in_parallel_region() instead.

#include "common/env.h"

namespace saufno {
namespace runtime {
namespace detail {

/// Nesting depth of task execution on the calling thread: 0 at top level,
/// d+1 while running a chunk/task spawned from depth d. A worker picking a
/// task off the pool inherits the SPAWNER's depth (carried in the task),
/// not its own history, so depth is a property of the lexical task tree —
/// identical for every thread count, which keeps decomposition decisions
/// (and the in_parallel_region() answer) scheduling-independent.
inline int& task_depth_ref() {
  thread_local int depth = 0;
  return depth;
}

/// Depth cap for decomposition: loops/groups nested deeper than this run
/// their chunks inline (same chunk boundaries, chunk order). Three levels
/// cover the deepest real seam — an op inside a plan level inside a batch
/// partition — and the default leaves one spare before fan-out overhead
/// outweighs the win on leaf kernels (a gemm's pack loop inside all that).
inline int max_task_depth() {
  static const int v = env_int_in_range("SAUFNO_MAX_NEST", 4, 1, 64);
  return v;
}

/// Bound on re-entrant "help" (running other pool tasks while waiting for
/// one's own): each helped task can itself wait and help, growing the
/// stack; four levels keeps the lane busy without unbounded recursion.
inline int& help_depth_ref() {
  thread_local int depth = 0;
  return depth;
}

/// RAII depth override around a chunk/task body.
struct DepthScope {
  int prev;
  explicit DepthScope(int depth) : prev(task_depth_ref()) {
    task_depth_ref() = depth;
  }
  ~DepthScope() { task_depth_ref() = prev; }
  DepthScope(const DepthScope&) = delete;
  DepthScope& operator=(const DepthScope&) = delete;
};

}  // namespace detail
}  // namespace runtime
}  // namespace saufno
