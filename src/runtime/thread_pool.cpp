#include "runtime/thread_pool.h"

#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace saufno {
namespace runtime {
namespace {

int default_num_threads() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  // Range-validated env override; a pool larger than ~1024 lanes is a typo.
  return env_int_in_range("SAUFNO_NUM_THREADS", hw, 1, 1024);
}

int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Pool telemetry. Counters are process-wide (the pool is a singleton);
/// idle time is measured only around the cv sleep (2 clock reads per
/// sleep/wake cycle — off the task-execution fast path), and per-task busy
/// time only under SAUFNO_PROFILE_KERNELS so a fine-grained parallel_for is
/// never taxed with clock reads by default.
struct PoolMetrics {
  obs::Counter& submitted = obs::counter("pool.tasks_submitted");
  obs::Counter& inline_runs = obs::counter("pool.tasks_inline");
  obs::Counter& steals = obs::counter("pool.tasks_stolen");
  obs::Counter& helped = obs::counter("pool.tasks_helped");
  obs::Counter& idle_us = obs::counter("pool.worker_idle_us");
  obs::Counter& busy_us = obs::counter("pool.worker_busy_us");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(default_num_threads());
  return pool;
}

ThreadPool::ThreadPool(int n) {
  start(n);
  obs::Registry::instance().register_callback(
      "pool.queue_depth",
      [this] { return static_cast<double>(queued_tasks()); });
  obs::Registry::instance().register_callback(
      "pool.lanes", [this] { return static_cast<double>(num_threads()); });
}

ThreadPool::~ThreadPool() {
  obs::Registry::instance().unregister_callback("pool.queue_depth");
  obs::Registry::instance().unregister_callback("pool.lanes");
  stop_and_join();
}

void ThreadPool::start(int n) {
  if (n < 1) n = 1;
  n_threads_ = n;
  stop_.store(false, std::memory_order_relaxed);
  const int n_workers = n - 1;
  workers_.reserve(static_cast<std::size_t>(n_workers));
  threads_.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < n_workers; ++i) {
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
#if defined(__linux__)
  // Optional affinity: SAUFNO_PIN_THREADS=1 pins worker i to core (i+1) mod
  // hw (core 0 is left to the submitting thread). Best-effort — failures
  // (cgroup CPU masks, fewer cores than lanes) are ignored, and the setting
  // never affects results, only placement.
  if (env_int_in_range("SAUFNO_PIN_THREADS", 0, 0, 1) == 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) {
      for (int i = 0; i < n_workers; ++i) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET((static_cast<unsigned>(i) + 1) % hw, &set);
        pthread_setaffinity_np(threads_[static_cast<std::size_t>(i)]
                                   .native_handle(),
                               sizeof(set), &set);
      }
    }
  }
#endif
}

void ThreadPool::stop_and_join() {
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  workers_.clear();
}

void ThreadPool::resize(int n) {
  if (n < 1) n = 1;
  if (n == n_threads_) return;
  stop_and_join();
  SAUFNO_CHECK(task_count_.load() == 0,
               "ThreadPool::resize with tasks still queued");
  start(n);
}

void ThreadPool::submit(std::function<void()> task) {
  PoolMetrics& pm = pool_metrics();
  if (workers_.empty()) {
    pm.inline_runs.add();
    task();
    return;
  }
  pm.submitted.add();
  const std::size_t idx =
      static_cast<std::size_t>(next_queue_.fetch_add(1, std::memory_order_relaxed)) %
      workers_.size();
  {
    std::lock_guard<std::mutex> lk(workers_[idx]->m);
    workers_[idx]->q.push_back(std::move(task));
  }
  {
    // Bump the count under the wake mutex: a worker that just evaluated the
    // wait predicate cannot block before seeing this increment, so the
    // notification is never lost.
    std::lock_guard<std::mutex> lk(wake_m_);
    task_count_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_help_one() {
  if (workers_.empty() ||
      task_count_.load(std::memory_order_acquire) <= 0) {
    return false;
  }
  std::function<void()> task;
  const std::size_t n = workers_.size();
  const std::size_t start = static_cast<std::size_t>(
      next_help_.fetch_add(1, std::memory_order_relaxed));
  for (std::size_t k = 0; k < n && !task; ++k) {
    Worker& w = *workers_[(start + k) % n];
    std::lock_guard<std::mutex> lk(w.m);
    if (!w.q.empty()) {
      task = std::move(w.q.front());
      w.q.pop_front();
    }
  }
  if (!task) return false;
  task_count_.fetch_sub(1, std::memory_order_acq_rel);
  pool_metrics().helped.add();
  task();
  return true;
}

bool ThreadPool::run_one(std::size_t id) {
  std::function<void()> task;
  // Own deque first, newest task (LIFO keeps the working set warm)...
  {
    Worker& w = *workers_[id];
    std::lock_guard<std::mutex> lk(w.m);
    if (!w.q.empty()) {
      task = std::move(w.q.back());
      w.q.pop_back();
    }
  }
  // ...then steal the oldest task from a sibling (FIFO spreads big batches).
  if (!task) {
    const std::size_t n = workers_.size();
    for (std::size_t k = 1; k < n && !task; ++k) {
      Worker& v = *workers_[(id + k) % n];
      std::lock_guard<std::mutex> lk(v.m);
      if (!v.q.empty()) {
        task = std::move(v.q.front());
        v.q.pop_front();
        pool_metrics().steals.add();
      }
    }
  }
  if (!task) return false;
  task_count_.fetch_sub(1, std::memory_order_acq_rel);
  if (obs::profile_kernels()) {
    const int64_t t0 = now_us();
    task();
    pool_metrics().busy_us.add(now_us() - t0);
  } else {
    task();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    if (run_one(id)) continue;
    std::unique_lock<std::mutex> lk(wake_m_);
    const int64_t t0 = now_us();
    wake_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             task_count_.load(std::memory_order_acquire) > 0;
    });
    pool_metrics().idle_us.add(now_us() - t0);
    if (stop_.load(std::memory_order_relaxed) &&
        task_count_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace runtime
}  // namespace saufno
