#include "runtime/request_queue.h"

namespace saufno {
namespace runtime {

bool RequestQueue::push(InferenceRequest req) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (shutdown_) return false;  // batcher may already have drained + exited
    shards_[req.input.shape()].push_back(std::move(req));
    ++pending_;
  }
  cv_.notify_one();
  return true;
}

std::vector<InferenceRequest> RequestQueue::pop_batch(std::size_t max_batch,
                                                      int64_t max_wait_us) {
  if (max_batch < 1) max_batch = 1;
  std::vector<InferenceRequest> batch;
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [this] { return shutdown_ || pending_ > 0; });
  if (pending_ == 0) return batch;  // shut down and drained

  // Round-robin shard pick: the first shape after the last one served, in
  // key order, wrapping. With K live shapes each gets every K-th batch, so
  // one hot resolution cannot starve the others.
  auto it = shards_.upper_bound(last_served_);
  if (it == shards_.end()) it = shards_.begin();
  // push() never leaves an empty shard behind and pop_batch erases drained
  // ones, so every map entry is non-empty here.
  std::deque<InferenceRequest>& shard = it->second;

  batch.push_back(std::move(shard.front()));
  shard.pop_front();
  --pending_;
  // Anchor the straggler deadline to when the head request was ENQUEUED,
  // not to now: if it already sat in the queue for max_wait_us (behind
  // other shards, or behind a slow forward), it must not wait again.
  const auto deadline = batch.front().enqueued_at +
                        std::chrono::microseconds(max_wait_us);
  while (batch.size() < max_batch) {
    if (shard.empty()) {
      if (shutdown_) break;
      // Map inserts don't invalidate `shard`/`it`, and this (sole) consumer
      // only erases the shard below, so the reference stays valid across
      // the wait.
      if (cv_.wait_until(lk, deadline, [this, &shard] {
            return shutdown_ || !shard.empty();
          })) {
        if (shard.empty()) break;  // woken by shutdown
      } else {
        break;  // the head has now waited max_wait_us; ship a partial batch
      }
    }
    batch.push_back(std::move(shard.front()));
    shard.pop_front();
    --pending_;
  }
  last_served_ = it->first;
  if (shard.empty()) shards_.erase(it);
  return batch;
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return pending_;
}

std::size_t RequestQueue::shard_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return shards_.size();
}

}  // namespace runtime
}  // namespace saufno
