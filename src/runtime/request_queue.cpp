#include "runtime/request_queue.h"

namespace saufno {
namespace runtime {

bool RequestQueue::push(InferenceRequest req) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (shutdown_) return false;  // batcher may already have drained + exited
    q_.push_back(std::move(req));
  }
  cv_.notify_one();
  return true;
}

std::vector<InferenceRequest> RequestQueue::pop_batch(std::size_t max_batch,
                                                      int64_t max_wait_us) {
  if (max_batch < 1) max_batch = 1;
  std::vector<InferenceRequest> batch;
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [this] { return shutdown_ || !q_.empty(); });
  if (q_.empty()) return batch;  // shut down and drained

  batch.push_back(std::move(q_.front()));
  q_.pop_front();
  const Shape& shape = batch.front().input.shape();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(max_wait_us);
  while (batch.size() < max_batch) {
    if (q_.empty()) {
      if (shutdown_) break;
      if (cv_.wait_until(lk, deadline, [this] {
            return shutdown_ || !q_.empty();
          })) {
        if (q_.empty()) break;  // woken by shutdown
      } else {
        break;  // max_wait elapsed with a partial batch
      }
    }
    if (q_.front().input.shape() != shape) break;  // next batch's head
    batch.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return batch;
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return q_.size();
}

}  // namespace runtime
}  // namespace saufno
