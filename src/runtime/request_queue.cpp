#include "runtime/request_queue.h"

#include <string>

#include "obs/metrics.h"

namespace saufno {
namespace runtime {
namespace {

/// Queue telemetry, aggregated across every RequestQueue in the process
/// (instances are per-engine; depth uses gauge add/sub so concurrent
/// queues sum correctly). Recorded under the queue mutex — all plain
/// relaxed RMWs, noise next to the lock itself.
struct QueueMetrics {
  obs::Counter& pushed = obs::counter("queue.requests_pushed");
  obs::Counter& batches = obs::counter("queue.batches_popped");
  obs::Counter& rejected = obs::counter("queue.rejected");
  obs::Counter& expired = obs::counter("queue.deadline_expired");
  obs::Counter& cancelled = obs::counter("queue.cancelled");
  obs::Gauge& depth = obs::gauge("queue.depth");
  obs::Histogram& occupancy = obs::histogram("queue.batch_occupancy");
  obs::Histogram& head_wait_ms = obs::histogram("queue.head_wait_ms");
  obs::Histogram& live_shards = obs::histogram("queue.live_shards");
};

QueueMetrics& queue_metrics() {
  static QueueMetrics m;
  return m;
}

}  // namespace

std::string request_desc(const InferenceRequest& req) {
  return "request seq=" + std::to_string(req.seq) + " shape=" +
         shape_str(req.input.shape());
}

void RequestQueue::set_capacity(std::size_t total, std::size_t per_shard) {
  std::lock_guard<std::mutex> lk(m_);
  cap_total_ = total;
  cap_shard_ = per_shard;
}

RequestQueue::PushResult RequestQueue::push(InferenceRequest req) {
  PushResult res;
  {
    std::lock_guard<std::mutex> lk(m_);
    res.depth = pending_;
    if (shutdown_) {
      // Batcher may already have drained + exited.
      res.status = PushStatus::kShutdown;
      return res;
    }
    if (cap_total_ > 0 && pending_ >= cap_total_) {
      res.status = PushStatus::kQueueFull;
      queue_metrics().rejected.add();
      return res;
    }
    std::deque<InferenceRequest>& shard = shards_[req.input.shape()];
    const std::size_t shard_cap = cap_shard_ > 0 ? cap_shard_ : cap_total_;
    if (shard_cap > 0 && shard.size() >= shard_cap) {
      // Creating the shard entry above is harmless: an empty shard left
      // behind would break pop_batch's "every map entry is non-empty"
      // invariant, so erase it again if this push created it.
      if (shard.empty()) shards_.erase(req.input.shape());
      res.status = PushStatus::kShardFull;
      queue_metrics().rejected.add();
      return res;
    }
    shard.push_back(std::move(req));
    ++pending_;
    res.depth = pending_;
    queue_metrics().pushed.add();
    queue_metrics().depth.add(1);
  }
  cv_.notify_one();
  return res;
}

std::vector<InferenceRequest> RequestQueue::pop_batch(std::size_t max_batch,
                                                      int64_t max_wait_us) {
  if (max_batch < 1) max_batch = 1;
  std::vector<InferenceRequest> batch;
  QueueMetrics& qm = queue_metrics();

  // Dead requests (deadline passed / cancel token fired) are completed with
  // their typed error HERE, outside a batch: they must not occupy batch
  // slots, anchor the straggler deadline, or count toward occupancy.
  // Collected under the lock, completed after it drops (set_value/exception
  // wakes the waiting client; no reason to hold the queue mutex for that).
  std::vector<InferenceRequest> dead;
  auto reap_front = [&](std::deque<InferenceRequest>& shard) {
    // Returns once the shard head (if any) is live.
    const auto now = std::chrono::steady_clock::now();
    while (!shard.empty() &&
           (shard.front().expired(now) || shard.front().cancelled())) {
      dead.push_back(std::move(shard.front()));
      shard.pop_front();
      --pending_;
      qm.depth.add(-1);
    }
  };
  auto complete_dead = [&] {
    for (auto& req : dead) {
      if (req.cancelled()) {
        qm.cancelled.add();
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        req.result->try_error(std::make_exception_ptr(
            CancelledError("request cancelled before dispatch [" +
                           request_desc(req) + "]")));
      } else {
        qm.expired.add();
        expired_.fetch_add(1, std::memory_order_relaxed);
        req.result->try_error(std::make_exception_ptr(DeadlineExceededError(
            "deadline exceeded while queued [" + request_desc(req) + "]")));
      }
    }
    dead.clear();
  };

  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_.wait(lk, [this] { return shutdown_ || pending_ > 0; });
    if (pending_ == 0) return batch;  // shut down and drained

    // Round-robin shard pick: the first shape after the last one served, in
    // key order, wrapping. With K live shapes each gets every K-th batch, so
    // one hot resolution cannot starve the others.
    auto it = shards_.upper_bound(last_served_);
    if (it == shards_.end()) it = shards_.begin();
    // push() never leaves an empty shard behind and pop_batch erases drained
    // ones, so every map entry is non-empty here.
    std::deque<InferenceRequest>& shard = it->second;
    reap_front(shard);
    if (shard.empty()) {
      // The whole shard was dead requests. Erase it and retry the pick —
      // but deliver the errors first (outside the lock) so cancelled
      // clients are not serialized behind further queue scanning.
      last_served_ = it->first;
      shards_.erase(it);
      if (!dead.empty()) {
        lk.unlock();
        complete_dead();
        lk.lock();
      }
      continue;
    }

    batch.push_back(std::move(shard.front()));
    shard.pop_front();
    --pending_;
    // Anchor the straggler deadline to when the head request was ENQUEUED,
    // not to now: if it already sat in the queue for max_wait_us (behind
    // other shards, or behind a slow forward), it must not wait again.
    const auto deadline = batch.front().enqueued_at +
                          std::chrono::microseconds(max_wait_us);
    while (batch.size() < max_batch) {
      reap_front(shard);
      if (shard.empty()) {
        if (shutdown_) break;
        // Map inserts don't invalidate `shard`/`it`, and this (sole)
        // consumer only erases the shard below, so the reference stays
        // valid across the wait.
        if (cv_.wait_until(lk, deadline, [this, &shard] {
              return shutdown_ || !shard.empty();
            })) {
          if (shard.empty()) break;  // woken by shutdown
          continue;                  // recheck liveness of the new arrivals
        } else {
          break;  // the head has now waited max_wait_us; ship a partial batch
        }
      }
      batch.push_back(std::move(shard.front()));
      shard.pop_front();
      --pending_;
    }
    last_served_ = it->first;
    const std::size_t live_shards = shards_.size();  // incl. the one served
    if (shard.empty()) shards_.erase(it);
    // Batch-shape telemetry: how full batches actually run, how long heads
    // waited for stragglers, and how many shapes were live when this batch
    // shipped — the occupancy histogram is the observable the batching
    // deadline and max_batch knobs get tuned against.
    qm.batches.add();
    qm.depth.add(-static_cast<int64_t>(batch.size()));
    qm.occupancy.record(static_cast<double>(batch.size()));
    qm.live_shards.record(static_cast<double>(live_shards));
    qm.head_wait_ms.record(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - batch.front().enqueued_at)
            .count());
    break;
  }
  lk.unlock();
  complete_dead();
  return batch;
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::fail_pending(std::exception_ptr error) {
  std::vector<InferenceRequest> doomed;
  {
    std::lock_guard<std::mutex> lk(m_);
    for (auto& kv : shards_) {
      for (auto& req : kv.second) doomed.push_back(std::move(req));
    }
    shards_.clear();
    queue_metrics().depth.add(-static_cast<int64_t>(pending_));
    pending_ = 0;
  }
  // Complete outside the lock; try_error keeps this safe against a batcher
  // or watchdog racing to complete the same request.
  for (auto& req : doomed) req.result->try_error(error);
  cv_.notify_all();
  return doomed.size();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return pending_;
}

std::size_t RequestQueue::shard_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return shards_.size();
}

}  // namespace runtime
}  // namespace saufno
