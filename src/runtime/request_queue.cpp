#include "runtime/request_queue.h"

#include "obs/metrics.h"

namespace saufno {
namespace runtime {
namespace {

/// Queue telemetry, aggregated across every RequestQueue in the process
/// (instances are per-engine; depth uses gauge add/sub so concurrent
/// queues sum correctly). Recorded under the queue mutex — all plain
/// relaxed RMWs, noise next to the lock itself.
struct QueueMetrics {
  obs::Counter& pushed = obs::counter("queue.requests_pushed");
  obs::Counter& batches = obs::counter("queue.batches_popped");
  obs::Gauge& depth = obs::gauge("queue.depth");
  obs::Histogram& occupancy = obs::histogram("queue.batch_occupancy");
  obs::Histogram& head_wait_ms = obs::histogram("queue.head_wait_ms");
  obs::Histogram& live_shards = obs::histogram("queue.live_shards");
};

QueueMetrics& queue_metrics() {
  static QueueMetrics m;
  return m;
}

}  // namespace

bool RequestQueue::push(InferenceRequest req) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (shutdown_) return false;  // batcher may already have drained + exited
    shards_[req.input.shape()].push_back(std::move(req));
    ++pending_;
    queue_metrics().pushed.add();
    queue_metrics().depth.add(1);
  }
  cv_.notify_one();
  return true;
}

std::vector<InferenceRequest> RequestQueue::pop_batch(std::size_t max_batch,
                                                      int64_t max_wait_us) {
  if (max_batch < 1) max_batch = 1;
  std::vector<InferenceRequest> batch;
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [this] { return shutdown_ || pending_ > 0; });
  if (pending_ == 0) return batch;  // shut down and drained

  // Round-robin shard pick: the first shape after the last one served, in
  // key order, wrapping. With K live shapes each gets every K-th batch, so
  // one hot resolution cannot starve the others.
  auto it = shards_.upper_bound(last_served_);
  if (it == shards_.end()) it = shards_.begin();
  // push() never leaves an empty shard behind and pop_batch erases drained
  // ones, so every map entry is non-empty here.
  std::deque<InferenceRequest>& shard = it->second;

  batch.push_back(std::move(shard.front()));
  shard.pop_front();
  --pending_;
  // Anchor the straggler deadline to when the head request was ENQUEUED,
  // not to now: if it already sat in the queue for max_wait_us (behind
  // other shards, or behind a slow forward), it must not wait again.
  const auto deadline = batch.front().enqueued_at +
                        std::chrono::microseconds(max_wait_us);
  while (batch.size() < max_batch) {
    if (shard.empty()) {
      if (shutdown_) break;
      // Map inserts don't invalidate `shard`/`it`, and this (sole) consumer
      // only erases the shard below, so the reference stays valid across
      // the wait.
      if (cv_.wait_until(lk, deadline, [this, &shard] {
            return shutdown_ || !shard.empty();
          })) {
        if (shard.empty()) break;  // woken by shutdown
      } else {
        break;  // the head has now waited max_wait_us; ship a partial batch
      }
    }
    batch.push_back(std::move(shard.front()));
    shard.pop_front();
    --pending_;
  }
  last_served_ = it->first;
  const std::size_t live_shards = shards_.size();  // incl. the one served
  if (shard.empty()) shards_.erase(it);
  // Batch-shape telemetry: how full batches actually run, how long heads
  // waited for stragglers, and how many shapes were live when this batch
  // shipped — the occupancy histogram is the observable the batching
  // deadline and max_batch knobs get tuned against.
  QueueMetrics& qm = queue_metrics();
  qm.batches.add();
  qm.depth.add(-static_cast<int64_t>(batch.size()));
  qm.occupancy.record(static_cast<double>(batch.size()));
  qm.live_shards.record(static_cast<double>(live_shards));
  qm.head_wait_ms.record(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - batch.front().enqueued_at)
          .count());
  return batch;
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return pending_;
}

std::size_t RequestQueue::shard_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return shards_.size();
}

}  // namespace runtime
}  // namespace saufno
