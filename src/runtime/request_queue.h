#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace saufno {
namespace runtime {

/// One in-flight inference request: a [C, H, W] input field, the promise
/// its caller is waiting on, and the enqueue timestamp used for latency
/// percentiles and the batching deadline.
struct InferenceRequest {
  Tensor input;
  std::promise<Tensor> result;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// Shape-sharded MPSC queue the batcher thread drains. Requests are
/// bucketed by input shape, and `pop_batch` drains the buckets round-robin:
/// it picks the next non-empty shard, takes its head, then keeps collecting
/// from that shard (only) until the batch is full or the head request's
/// age exceeds `max_wait_us`.
///
/// Sharding is what keeps mixed-resolution traffic batchable: with a single
/// FIFO, an interleaved A,B,A,B,... stream makes every batch end at the
/// first foreign shape (head-of-line blocking, batch size collapses to 1).
/// Here a foreign-shape arrival lands in its own shard and the current
/// batch keeps filling. The deadline is anchored to the head request's
/// `enqueued_at` — not to pop time — so no request ever waits more than
/// `max_wait_us` for stragglers, no matter how long it sat queued behind
/// other shards.
class RequestQueue {
 public:
  /// Enqueue; returns false (without taking ownership of the promise's
  /// consumer-side obligations) if the queue has already been shut down, so
  /// a racing submit cannot strand a request with no batcher to serve it.
  bool push(InferenceRequest req);

  /// Collect up to `max_batch` same-shape requests from the next shard in
  /// round-robin order. Returns an empty vector only when the queue has
  /// been shut down and fully drained.
  std::vector<InferenceRequest> pop_batch(std::size_t max_batch,
                                          int64_t max_wait_us);

  /// Wake the batcher; pop_batch keeps returning queued work until the
  /// queue is empty, then returns empty batches.
  void shutdown();

  /// Total pending requests across all shards.
  std::size_t size() const;

  /// Number of distinct shapes currently queued.
  std::size_t shard_count() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  /// Per-shape buckets. Shards are created on first push of a shape and
  /// erased once drained, so long-lived servers don't accumulate entries
  /// for resolutions they no longer see.
  std::map<Shape, std::deque<InferenceRequest>> shards_;
  Shape last_served_;        // round-robin cursor over shard keys
  std::size_t pending_ = 0;  // total across shards
  bool shutdown_ = false;
};

}  // namespace runtime
}  // namespace saufno
