#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/errors.h"
#include "tensor/tensor.h"

namespace saufno {
namespace runtime {

/// Single-completion promise wrapper shared between the queue/batcher and
/// whoever may need to fail a request from another thread (deadline expiry
/// at dequeue, drain timeout, the watchdog). std::promise itself must only
/// be completed once and is not safe against concurrent completion attempts,
/// so the atomic flag elects exactly one winner; losers are told (false) and
/// simply drop their result.
class ResultSlot {
 public:
  std::future<Tensor> get_future() { return promise_.get_future(); }

  bool try_value(Tensor v) {
    if (done_.exchange(true, std::memory_order_acq_rel)) return false;
    promise_.set_value(std::move(v));
    return true;
  }

  bool try_error(std::exception_ptr e) {
    if (done_.exchange(true, std::memory_order_acq_rel)) return false;
    promise_.set_exception(std::move(e));
    return true;
  }

  bool completed() const { return done_.load(std::memory_order_acquire); }

 private:
  std::promise<Tensor> promise_;
  std::atomic<bool> done_{false};
};

/// Per-request submission options (deadline + cancellation). Defaults are
/// inert: no deadline, no cancel token.
struct SubmitOptions {
  /// Absolute completion deadline. A request whose deadline passes is
  /// completed with DeadlineExceededError at dequeue time (it never takes a
  /// batch slot), at the batcher's pre-forward check, or — last line — at
  /// result delivery, so a future NEVER resolves with a value after its
  /// deadline. time_point::max() means no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  CancelToken cancel;
};

/// One in-flight inference request: a [C, H, W] input field, the shared
/// result slot its caller is waiting on, the enqueue timestamp used for
/// latency percentiles and the batching deadline, plus per-request deadline/
/// cancellation and the submit sequence number that names the request in
/// error messages.
struct InferenceRequest {
  Tensor input;
  std::shared_ptr<ResultSlot> result;
  std::chrono::steady_clock::time_point enqueued_at;
  SubmitOptions opts;
  int64_t seq = 0;  // engine-wide submit sequence number

  bool expired(std::chrono::steady_clock::time_point now) const {
    return now >= opts.deadline;
  }
  bool cancelled() const { return opts.cancel.cancelled(); }
};

/// "request seq=N shape=[C, H, W]" — the identity string used by every
/// per-request error message (a batch-wide failure must still name which
/// request it is talking about).
std::string request_desc(const InferenceRequest& req);

/// Shape-sharded MPSC queue the batcher thread drains. Requests are
/// bucketed by input shape, and `pop_batch` drains the buckets round-robin:
/// it picks the next non-empty shard, takes its head, then keeps collecting
/// from that shard (only) until the batch is full or the head request's
/// age exceeds `max_wait_us`.
///
/// Sharding is what keeps mixed-resolution traffic batchable: with a single
/// FIFO, an interleaved A,B,A,B,... stream makes every batch end at the
/// first foreign shape (head-of-line blocking, batch size collapses to 1).
/// Here a foreign-shape arrival lands in its own shard and the current
/// batch keeps filling. The deadline is anchored to the head request's
/// `enqueued_at` — not to pop time — so no request ever waits more than
/// `max_wait_us` for stragglers, no matter how long it sat queued behind
/// other shards.
///
/// Admission control: `set_capacity` bounds the total backlog and each
/// shard's backlog; an over-capacity push is refused (the caller turns that
/// into an OverloadedError with a retry-after hint). Expired or cancelled
/// requests are completed with their typed error at dequeue time instead of
/// occupying batch slots.
class RequestQueue {
 public:
  enum class PushStatus { kAccepted, kShutdown, kQueueFull, kShardFull };

  struct PushResult {
    PushStatus status = PushStatus::kAccepted;
    std::size_t depth = 0;  // total pending at decision time
    bool ok() const { return status == PushStatus::kAccepted; }
  };

  /// Bound the queue: at most `total` requests across all shards and
  /// `per_shard` within one shape shard. 0 means unbounded (the default, and
  /// `per_shard` 0 falls back to `total`).
  void set_capacity(std::size_t total, std::size_t per_shard);

  /// Enqueue. Refused pushes (shutdown / over capacity) leave the request's
  /// promise untouched — the caller still owns the failure path, so a
  /// racing submit cannot strand a request with no batcher to serve it.
  PushResult push(InferenceRequest req);

  /// Collect up to `max_batch` same-shape requests from the next shard in
  /// round-robin order. Requests whose deadline already passed (or whose
  /// cancel token fired) are completed with DeadlineExceededError /
  /// CancelledError right here and never take a batch slot. Returns an
  /// empty vector only when the queue has been shut down and fully drained.
  std::vector<InferenceRequest> pop_batch(std::size_t max_batch,
                                          int64_t max_wait_us);

  /// Wake the batcher; pop_batch keeps returning queued work until the
  /// queue is empty, then returns empty batches.
  void shutdown();

  /// Complete every queued request with `error` and empty the queue (drain
  /// timeout, watchdog trip). Returns how many requests were failed.
  std::size_t fail_pending(std::exception_ptr error);

  /// Total pending requests across all shards.
  std::size_t size() const;

  /// Number of distinct shapes currently queued.
  std::size_t shard_count() const;

  /// Requests this queue completed with DeadlineExceededError / CancelledError
  /// at dequeue time (per-instance; the engine folds these into stats()).
  int64_t expired_count() const {
    return expired_.load(std::memory_order_relaxed);
  }
  int64_t cancelled_count() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  /// Per-shape buckets. Shards are created on first push of a shape and
  /// erased once drained, so long-lived servers don't accumulate entries
  /// for resolutions they no longer see.
  std::map<Shape, std::deque<InferenceRequest>> shards_;
  Shape last_served_;           // round-robin cursor over shard keys
  std::size_t pending_ = 0;     // total across shards
  std::size_t cap_total_ = 0;   // 0 = unbounded
  std::size_t cap_shard_ = 0;   // 0 = cap_total_
  bool shutdown_ = false;
  std::atomic<int64_t> expired_{0};    // completed dead at dequeue
  std::atomic<int64_t> cancelled_{0};
};

}  // namespace runtime
}  // namespace saufno
