#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace saufno {
namespace runtime {

/// One in-flight inference request: a [C, H, W] input field, the promise
/// its caller is waiting on, and the enqueue timestamp used for latency
/// percentiles.
struct InferenceRequest {
  Tensor input;
  std::promise<Tensor> result;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// MPSC queue the batcher thread drains. `pop_batch` implements the
/// coalescing policy: block for the first request, then keep collecting
/// same-shape requests until the batch is full or `max_wait_us` has elapsed
/// since the first one was taken. A request whose shape differs from the
/// batch head is left at the front for the next batch, so mixed-resolution
/// traffic still makes progress (in shape-homogeneous batches).
class RequestQueue {
 public:
  /// Enqueue; returns false (without taking ownership of the promise's
  /// consumer-side obligations) if the queue has already been shut down, so
  /// a racing submit cannot strand a request with no batcher to serve it.
  bool push(InferenceRequest req);

  /// Collect up to `max_batch` same-shape requests. Returns an empty vector
  /// only when the queue has been shut down and fully drained.
  std::vector<InferenceRequest> pop_batch(std::size_t max_batch,
                                          int64_t max_wait_us);

  /// Wake the batcher; pop_batch keeps returning queued work until the
  /// queue is empty, then returns empty batches.
  void shutdown();

  std::size_t size() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<InferenceRequest> q_;
  bool shutdown_ = false;
};

}  // namespace runtime
}  // namespace saufno
