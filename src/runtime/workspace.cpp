#include "runtime/workspace.h"

#include <atomic>
#include <mutex>
#include <new>
#include <vector>

#include "common/fault.h"

namespace saufno {
namespace runtime {
namespace {

// Buckets are powers of two from 256 B to 1 GiB; anything larger bypasses
// the cache and goes straight to the heap (such a block would pin an
// unreasonable amount of memory in a freelist).
constexpr int kMinBucketLog2 = 8;
constexpr int kMaxBucketLog2 = 30;
constexpr int kNumBuckets = kMaxBucketLog2 - kMinBucketLog2 + 1;
constexpr std::size_t kMaxBlocksPerBucket = 16;
// Per-thread retention budget: past this, released blocks overflow to the
// shared pool (or the heap) instead of ratcheting a thread's RSS forever.
constexpr int64_t kMaxCachedBytesPerThread = int64_t{512} << 20;
// Shared overflow pool cap per bucket. The pool is what lets blocks whose
// release happens on a DIFFERENT thread than the acquire (serving result
// tensors dropped by client threads) flow back to the producer instead of
// dying in a consumer freelist.
constexpr std::size_t kMaxGlobalBlocksPerBucket = 64;

/// Bucket index for a request, or -1 when the size bypasses the cache.
int bucket_of(std::size_t bytes) {
  std::size_t cap = std::size_t{1} << kMinBucketLog2;
  for (int b = kMinBucketLog2; b <= kMaxBucketLog2; ++b, cap <<= 1) {
    if (bytes <= cap) return b;
  }
  return -1;
}

/// Counters are kept per thread (each arena owns its own cache lines) and
/// summed in arena_stats(), so the hot path never touches shared state.
/// They are still atomics so stats()/reset() from other threads are safe.
struct Counters {
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> misses{0};
  std::atomic<int64_t> releases{0};
  std::atomic<int64_t> bytes_cached{0};
  std::atomic<int64_t> outstanding{0};
};

struct ThreadArena;

struct Registry {
  std::mutex m;
  std::vector<ThreadArena*> arenas;
  // Totals inherited from exited threads, so stats stay monotone.
  Counters retired;
};

Registry& registry() {
  // Intentionally immortal (never destroyed): thread_local ThreadArena
  // destructors run during process teardown, AFTER function-local statics
  // have been destroyed — a destructible Registry turns every pool-thread
  // exit at shutdown into a use-after-free (caught by the ASan CI lane).
  // The one Registry is reachable through this static pointer for the whole
  // process lifetime, so leak checkers treat it as reachable, not leaked.
  static Registry* r = new Registry();
  return *r;
}

/// Mutex-protected overflow pool shared by every thread. Touched only when
/// a thread's own freelist cannot serve (cold start, cross-thread block
/// migration) — the steady-state same-thread path stays lock-free.
struct GlobalPool {
  std::mutex m;
  std::vector<void*> lists[kNumBuckets];
  std::atomic<int64_t> bytes{0};

  // No destructor: the pool is immortal for the same teardown-ordering
  // reason as the Registry (arena_release from a late-exiting thread must
  // not touch a destroyed pool). Cached blocks stay reachable through it;
  // the OS reclaims everything at process exit, and arena_trim() drains it
  // explicitly for tests.

  void* try_pop(int b) {
    std::lock_guard<std::mutex> lk(m);
    auto& list = lists[b - kMinBucketLog2];
    if (list.empty()) return nullptr;
    void* p = list.back();
    list.pop_back();
    bytes.fetch_sub(int64_t{1} << b, std::memory_order_relaxed);
    return p;
  }

  bool try_push(int b, void* p) {
    std::lock_guard<std::mutex> lk(m);
    auto& list = lists[b - kMinBucketLog2];
    if (list.size() >= kMaxGlobalBlocksPerBucket) return false;
    list.push_back(p);
    bytes.fetch_add(int64_t{1} << b, std::memory_order_relaxed);
    return true;
  }

  void drain() {
    std::lock_guard<std::mutex> lk(m);
    for (int i = 0; i < kNumBuckets; ++i) {
      for (void* p : lists[i]) ::operator delete(p);
      lists[i].clear();
    }
    bytes.store(0, std::memory_order_relaxed);
  }
};

GlobalPool& global_pool() {
  static GlobalPool* pool = new GlobalPool();
  return *pool;
}

struct ThreadArena {
  std::vector<void*> lists[kNumBuckets];
  Counters c;

  ThreadArena() {
    auto& r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    r.arenas.push_back(this);
  }

  ~ThreadArena() {
    trim();
    auto& r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    r.retired.hits += c.hits.load(std::memory_order_relaxed);
    r.retired.misses += c.misses.load(std::memory_order_relaxed);
    r.retired.releases += c.releases.load(std::memory_order_relaxed);
    // A thread can release blocks another thread acquired (and vice versa),
    // so per-arena outstanding may be negative; only the sum is meaningful.
    r.retired.outstanding += c.outstanding.load(std::memory_order_relaxed);
    for (auto it = r.arenas.begin(); it != r.arenas.end(); ++it) {
      if (*it == this) {
        r.arenas.erase(it);
        break;
      }
    }
  }

  void trim() {
    for (int b = kMinBucketLog2; b <= kMaxBucketLog2; ++b) {
      auto& list = lists[b - kMinBucketLog2];
      for (void* p : list) {
        ::operator delete(p);
        c.bytes_cached.fetch_sub(int64_t{1} << b, std::memory_order_relaxed);
      }
      list.clear();
    }
  }
};

ThreadArena& local_arena() {
  thread_local ThreadArena arena;
  return arena;
}

// Plan-reservation accounting (process-global: reservations are created on
// whatever thread compiles a plan and destroyed wherever the last executor
// buffer drops, so per-thread counters would only confuse).
std::atomic<int64_t> g_reserved_bytes{0};
std::atomic<int64_t> g_reservations{0};

}  // namespace

Reservation::Reservation(std::size_t bytes) : bytes_(bytes) {
  if (bytes == 0) return;
  p_ = ::operator new(bytes, std::align_val_t{64});
  g_reserved_bytes.fetch_add(static_cast<int64_t>(bytes),
                             std::memory_order_relaxed);
  g_reservations.fetch_add(1, std::memory_order_relaxed);
}

Reservation::~Reservation() {
  if (p_ == nullptr) return;
  ::operator delete(p_, std::align_val_t{64});
  g_reserved_bytes.fetch_sub(static_cast<int64_t>(bytes_),
                             std::memory_order_relaxed);
  g_reservations.fetch_sub(1, std::memory_order_relaxed);
}

Reservation::Reservation(Reservation&& o) noexcept
    : p_(o.p_), bytes_(o.bytes_) {
  o.p_ = nullptr;
  o.bytes_ = 0;
}

Reservation& Reservation::operator=(Reservation&& o) noexcept {
  if (this != &o) {
    this->~Reservation();
    p_ = o.p_;
    bytes_ = o.bytes_;
    o.p_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

void* arena_acquire(std::size_t bytes) {
  SAUFNO_FAULT_POINT("alloc");
  const int b = bucket_of(bytes);
  ThreadArena& a = local_arena();
  a.c.outstanding.fetch_add(1, std::memory_order_relaxed);
  if (b >= 0) {
    auto& list = a.lists[b - kMinBucketLog2];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      a.c.bytes_cached.fetch_sub(int64_t{1} << b, std::memory_order_relaxed);
      a.c.hits.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    if (void* p = global_pool().try_pop(b)) {
      a.c.hits.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    a.c.misses.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(std::size_t{1} << b);
  }
  a.c.misses.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(bytes);
}

void arena_release(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  const int b = bucket_of(bytes);
  ThreadArena& a = local_arena();
  a.c.outstanding.fetch_sub(1, std::memory_order_relaxed);
  a.c.releases.fetch_add(1, std::memory_order_relaxed);
  if (b >= 0) {
    auto& list = a.lists[b - kMinBucketLog2];
    const int64_t size = int64_t{1} << b;
    if (list.size() < kMaxBlocksPerBucket &&
        a.c.bytes_cached.load(std::memory_order_relaxed) + size <=
            kMaxCachedBytesPerThread) {
      list.push_back(p);
      a.c.bytes_cached.fetch_add(size, std::memory_order_relaxed);
      return;
    }
    if (global_pool().try_push(b, p)) return;
  }
  ::operator delete(p);
}

ArenaStats arena_stats() {
  ArenaStats s;
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  s.hits = r.retired.hits.load(std::memory_order_relaxed);
  s.misses = r.retired.misses.load(std::memory_order_relaxed);
  s.releases = r.retired.releases.load(std::memory_order_relaxed);
  s.outstanding = r.retired.outstanding.load(std::memory_order_relaxed);
  for (const ThreadArena* a : r.arenas) {
    s.hits += a->c.hits.load(std::memory_order_relaxed);
    s.misses += a->c.misses.load(std::memory_order_relaxed);
    s.releases += a->c.releases.load(std::memory_order_relaxed);
    s.bytes_cached += a->c.bytes_cached.load(std::memory_order_relaxed);
    s.outstanding += a->c.outstanding.load(std::memory_order_relaxed);
  }
  s.bytes_cached += global_pool().bytes.load(std::memory_order_relaxed);
  s.reserved_bytes = g_reserved_bytes.load(std::memory_order_relaxed);
  s.reservations = g_reservations.load(std::memory_order_relaxed);
  return s;
}

void arena_reset_counters() {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  r.retired.hits = 0;
  r.retired.misses = 0;
  r.retired.releases = 0;
  for (ThreadArena* a : r.arenas) {
    a->c.hits.store(0, std::memory_order_relaxed);
    a->c.misses.store(0, std::memory_order_relaxed);
    a->c.releases.store(0, std::memory_order_relaxed);
  }
}

void arena_trim() {
  local_arena().trim();
  global_pool().drain();
}

}  // namespace runtime
}  // namespace saufno
