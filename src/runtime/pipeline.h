#pragma once

#include <memory>
#include <string>

#include "nn/module.h"
#include "nn/serialize.h"

namespace saufno {
namespace runtime {

/// A deployable model rebuilt from a self-describing checkpoint: the module
/// with weights loaded, plus the checkpoint metadata (channels, optional
/// normalizer, optional rollout spec) the engines configure themselves
/// from.
struct Pipeline {
  std::shared_ptr<nn::Module> model;
  nn::CheckpointMeta meta;
};

/// Single checkpoint -> serving-pipeline rebuild shared by
/// InferenceEngine::from_checkpoint and RolloutEngine::from_checkpoint
/// (previously duplicated in both factories). Validates once, with the
/// checkpoint path in every message:
///  - the file must be a v2+ self-describing checkpoint (train::
///    load_deployable enforces this),
///  - with `require_rollout`, it must carry a rollout spec AND a normalizer
///    (autoregression feeds model outputs back through the codec, which is
///    meaningless without the normalization statistics).
Pipeline build_pipeline(const std::string& checkpoint,
                        bool require_rollout = false);

}  // namespace runtime
}  // namespace saufno
