#pragma once

#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/normalizer.h"
#include "data/sequence.h"
#include "runtime/inference_engine.h"

namespace saufno {
namespace runtime {

class RolloutEngine;

/// One streaming transient trajectory. A session owns its evolving
/// temperature field: every step takes that step's raw power map, feeds the
/// assembled [state | power | coords] input through the engine's batched
/// forward, and the prediction becomes the state the next step starts from.
///
/// The two-phase submit/await split is what lets many sessions batch:
/// submit step n of every live session, then await them — the engine
/// coalesces the concurrent submissions into one forward, so throughput
/// scales with session count, not rollout length. `step()` is the
/// single-call convenience for callers driving one session per thread.
///
/// A session is NOT thread-safe (one client drives it) and must not outlive
/// the RolloutEngine that opened it. At most one step may be outstanding —
/// autoregression makes step n+1's input depend on step n's output.
class RolloutSession {
 public:
  /// Submit this step's [C_power, H, W] raw power-density map. Returns
  /// immediately; the forward happens on the engine's batcher. Throws
  /// ShutdownError (naming the session) if the RolloutEngine behind this
  /// session was stopped; the session itself is left re-submittable.
  /// The overload threads a per-step deadline / cancel token through to the
  /// underlying engine (await_step then surfaces DeadlineExceededError /
  /// CancelledError, state unchanged, so the caller can retry the step).
  void submit_step(Tensor power_map);
  void submit_step(Tensor power_map, SubmitOptions opts);

  /// Wait for the submitted step, advance the internal state, and return
  /// the kelvin temperature field [C_state, H, W] after the step.
  Tensor await_step();

  /// submit_step + await_step.
  Tensor step(Tensor power_map) {
    submit_step(std::move(power_map));
    return await_step();
  }

  bool step_pending() const { return pending_.has_value(); }
  /// Current kelvin temperature field [C_state, H, W].
  const Tensor& state_kelvin() const { return kelvin_state_; }
  int64_t steps_done() const { return steps_; }

 private:
  friend class RolloutEngine;
  RolloutSession(InferenceEngine* engine, const data::Normalizer* norm,
                 data::RolloutSpec spec, Tensor initial_kelvin);

  InferenceEngine* engine_;
  const data::Normalizer* norm_;
  data::RolloutSpec spec_;
  Tensor norm_state_;    // fed back into the next step (normalized space)
  Tensor kelvin_state_;  // decoded copy for the caller
  std::optional<std::future<Tensor>> pending_;
  int64_t steps_ = 0;
};

/// Transient rollout server: turns the batched one-shot InferenceEngine
/// into a multi-step thermal-trajectory service. Each open session holds an
/// evolving temperature field; the engine batches the CURRENT step of many
/// concurrent sessions into one forward (the underlying shape-sharded queue
/// keeps mixed-resolution sessions coalescing too).
///
/// Results are bit-identical whether a trajectory is rolled out alone, in a
/// crowd of concurrent sessions, or offline through train::rollout_unroll
/// on the same checkpoint: input assembly and the normalizer codec are the
/// same code (data::assemble_step_input), and the engine's batched forward
/// is per-sample independent.
class RolloutEngine {
 public:
  struct Config {
    /// Batching knobs for the underlying engine. Rollout steps tolerate
    /// more batching latency than interactive one-shot serving, so the
    /// default wait is longer than InferenceEngine's.
    InferenceEngine::Config engine;
    Config() {
      engine.max_batch = 16;
      engine.max_wait_us = 5000;
    }
  };

  /// Takes shared ownership of the one-step model. The normalizer encodes
  /// state/power channels; `spec` fixes the input layout and dt semantics.
  RolloutEngine(std::shared_ptr<nn::Module> model, data::Normalizer norm,
                data::RolloutSpec spec, Config cfg = {});

  /// Rebuild the whole transient pipeline from a self-describing v3
  /// rollout checkpoint (train::save_rollout_deployable): model identity,
  /// weights, normalizer and step semantics all come from the file.
  static std::unique_ptr<RolloutEngine> from_checkpoint(
      const std::string& checkpoint, Config cfg = {});

  ~RolloutEngine();
  RolloutEngine(const RolloutEngine&) = delete;
  RolloutEngine& operator=(const RolloutEngine&) = delete;

  /// Open a session from a [C_state, H, W] kelvin starting field (e.g. a
  /// uniform ambient field for a cold power-on, or a measured map).
  std::unique_ptr<RolloutSession> open_session(Tensor initial_kelvin) const;

  /// Lockstep driver: advance every session through its [K_i, C_power, H,
  /// W] power sequence, submitting step k of all sessions before awaiting
  /// any of them so each wave coalesces into large batches. Sessions may
  /// have different lengths and resolutions. Returns one [K_i, C_state, H,
  /// W] kelvin trajectory per session.
  std::vector<Tensor> run(
      const std::vector<RolloutSession*>& sessions,
      const std::vector<Tensor>& power_sequences) const;

  /// Stop the underlying engine (idempotent; the destructor calls it).
  /// Outstanding steps are still served.
  void stop();

  InferenceStats stats() const { return engine_->stats(); }
  const data::RolloutSpec& spec() const { return spec_; }
  const data::Normalizer& normalizer() const { return norm_; }
  const Config& config() const { return cfg_; }

 private:
  data::Normalizer norm_;
  data::RolloutSpec spec_;
  Config cfg_;
  std::unique_ptr<InferenceEngine> engine_;
};

}  // namespace runtime
}  // namespace saufno
