#include "runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "runtime/task_depth.h"
#include "runtime/thread_pool.h"

namespace saufno {
namespace runtime {
namespace {

/// Shared state of one parallel_for call. Kept alive by shared_ptr because a
/// worker may wake after the caller has already collected all chunks and
/// returned; such a late worker only reads `next`/`n_chunks` and exits.
struct LoopState {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t n_chunks = 0;
  int chunk_depth = 1;  // task_depth while a chunk of THIS loop executes
  const std::function<void(int64_t, int64_t)>* fn = nullptr;

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::atomic<bool> has_error{false};
  std::exception_ptr eptr;
  std::mutex m;
  std::condition_variable cv;

  void run_chunks() {
    detail::DepthScope scope(chunk_depth);
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) break;
      const int64_t b = begin + c * grain;
      const int64_t e = std::min(end, b + grain);
      if (!has_error.load(std::memory_order_relaxed)) {
        try {
          (*fn)(b, e);
        } catch (...) {
          std::lock_guard<std::mutex> lk(m);
          if (!has_error.exchange(true)) eptr = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n_chunks) {
        std::lock_guard<std::mutex> lk(m);
        cv.notify_all();
      }
    }
  }
};

/// Wait for every chunk of `st` to finish. While chunks are in flight on
/// other threads, this thread helps by running other queued pool tasks
/// (bounded depth, so a chain of helped tasks that themselves wait cannot
/// grow the stack without limit) before falling back to a cv sleep.
void wait_all(LoopState& st, ThreadPool& pool) {
  if (detail::help_depth_ref() < 4) {
    ++detail::help_depth_ref();
    while (st.done.load(std::memory_order_acquire) < st.n_chunks) {
      if (!pool.try_help_one()) break;
    }
    --detail::help_depth_ref();
  }
  std::unique_lock<std::mutex> lk(st.m);
  st.cv.wait(lk, [&] {
    return st.done.load(std::memory_order_acquire) == st.n_chunks;
  });
}

}  // namespace

bool in_parallel_region() { return detail::task_depth_ref() > 0; }

void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t n_chunks = (n + grain - 1) / grain;

  ThreadPool& pool = ThreadPool::instance();
  const int depth = detail::task_depth_ref();
  if (pool.num_threads() <= 1 || n_chunks <= 1 ||
      depth >= detail::max_task_depth()) {
    // Inline path runs the SAME chunking in chunk order so reductions built
    // on per-chunk partials match the decomposed path bit-for-bit. The
    // depth still advances: in_parallel_region() and nested decomposition
    // decisions see the same task tree whatever path was taken.
    detail::DepthScope scope(depth + 1);
    for (int64_t c = 0; c < n_chunks; ++c) {
      const int64_t b = begin + c * grain;
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->n_chunks = n_chunks;
  state->chunk_depth = depth + 1;
  state->fn = &fn;  // caller blocks below, so the reference stays valid

  const int helpers = static_cast<int>(
      std::min<int64_t>(pool.num_threads() - 1, n_chunks - 1));
  for (int i = 0; i < helpers; ++i) {
    pool.submit([state] { state->run_chunks(); });
  }
  state->run_chunks();

  wait_all(*state, pool);
  if (state->has_error.load()) std::rethrow_exception(state->eptr);
}

void parallel_invoke(std::vector<std::function<void()>> fns) {
  if (fns.empty()) return;
  parallel_for(0, static_cast<int64_t>(fns.size()), 1,
               [&](int64_t b, int64_t e) {
                 for (int64_t i = b; i < e; ++i) fns[static_cast<std::size_t>(i)]();
               });
}

double parallel_sum(int64_t n, int64_t grain,
                    const std::function<double(int64_t, int64_t)>& chunk_sum) {
  if (n <= 0) return 0.0;
  if (grain < 1) grain = 1;
  const int64_t n_chunks = (n + grain - 1) / grain;
  std::vector<double> partials(static_cast<std::size_t>(n_chunks), 0.0);
  parallel_for(0, n, grain, [&](int64_t b, int64_t e) {
    partials[static_cast<std::size_t>(b / grain)] = chunk_sum(b, e);
  });
  double s = 0.0;
  for (const double p : partials) s += p;
  return s;
}

}  // namespace runtime
}  // namespace saufno
